//===- Harness.cpp - Shared experiment harness -----------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "core/Report.h"
#include "support/Statistics.h"

using namespace djx;

RunResult djx::runNative(const VmConfig &Config,
                         const std::function<void(JavaVm &)> &Fn) {
  JavaVm Vm(Config);
  Fn(Vm);
  RunResult R;
  R.Cycles = Vm.totalCycles();
  R.PeakHeapBytes = Vm.peakHeapBytes();
  R.Machine = Vm.machine().stats();
  return R;
}

RunResult djx::runProfiled(const VmConfig &Config,
                           const DjxPerfConfig &Agent,
                           const std::function<void(JavaVm &)> &Fn,
                           std::string *ObjectReport,
                           std::string *CodeReport,
                           MergedProfile *ProfileOut) {
  JavaVm Vm(Config);
  DjxPerf Profiler(Vm, Agent);
  Profiler.start();
  Fn(Vm);
  Profiler.stop();

  RunResult R;
  R.Cycles = Vm.totalCycles() + Profiler.auxOverheadCycles();
  R.PeakHeapBytes = Vm.peakHeapBytes();
  R.ProfilerBytes = Profiler.memoryFootprint();
  R.Samples = Profiler.samplesHandled();
  R.AllocationCallbacks = Profiler.allocationCallbacks();
  R.Machine = Vm.machine().stats();

  if (ObjectReport || CodeReport || ProfileOut) {
    MergedProfile P = Profiler.analyze();
    if (ObjectReport)
      *ObjectReport = renderObjectCentric(P, Vm.methods());
    if (CodeReport)
      *CodeReport = renderCodeCentric(P, Vm.methods());
    if (ProfileOut)
      *ProfileOut = std::move(P);
  }
  return R;
}

std::pair<double, double> djx::measureSpeedup(const CaseStudy &C, int Reps) {
  std::vector<double> Speedups;
  for (int I = 0; I < Reps; ++I) {
    RunResult Base = runNative(C.Config, C.Baseline);
    RunResult Opt = runNative(C.Config, C.Optimized);
    Speedups.push_back(static_cast<double>(Base.Cycles) /
                       static_cast<double>(Opt.Cycles));
  }
  SampleStats S = summarize(Speedups);
  return {S.Mean, S.Ci95};
}

OverheadResult djx::measureOverhead(const VmConfig &Config,
                                    const DjxPerfConfig &Agent,
                                    const std::function<void(JavaVm &)> &Fn) {
  OverheadResult R;
  R.Native = runNative(Config, Fn);
  R.Profiled = runProfiled(Config, Agent, Fn);
  R.RuntimeOverhead = static_cast<double>(R.Profiled.Cycles) /
                      static_cast<double>(R.Native.Cycles);
  uint64_t NativeMem = R.Native.PeakHeapBytes;
  uint64_t ProfiledMem = R.Profiled.PeakHeapBytes + R.Profiled.ProfilerBytes;
  R.MemoryOverhead = NativeMem
                         ? static_cast<double>(ProfiledMem) /
                               static_cast<double>(NativeMem)
                         : 1.0;
  return R;
}
