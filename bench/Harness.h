//===- Harness.h - Shared experiment harness --------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the table/figure reproduction binaries: run a
/// workload on a fresh VM natively or under DJXPerf, report simulated
/// cycles (the runtime metric), peak heap + profiler footprint (the memory
/// metric), and repeat-with-seed-jitter to produce mean +- 95% CI rows the
/// way the paper reports results (§7).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_BENCH_HARNESS_H
#define DJX_BENCH_HARNESS_H

#include "core/DjxPerf.h"
#include "workloads/CaseStudies.h"

#include <functional>
#include <optional>

namespace djx {

/// Outcome of one workload execution.
struct RunResult {
  /// Simulated runtime: thread cycles plus profiler auxiliary work.
  uint64_t Cycles = 0;
  uint64_t PeakHeapBytes = 0;
  /// Profiler data-structure footprint (0 for native runs).
  size_t ProfilerBytes = 0;
  uint64_t Samples = 0;
  uint64_t AllocationCallbacks = 0;
  HierarchyStats Machine;
};

/// Runs \p Fn on a fresh VM without any profiler.
RunResult runNative(const VmConfig &Config,
                    const std::function<void(JavaVm &)> &Fn);

/// Runs \p Fn on a fresh VM under DJXPerf; optionally returns the merged
/// profile and the report rendered against the VM's method registry.
RunResult runProfiled(const VmConfig &Config, const DjxPerfConfig &Agent,
                      const std::function<void(JavaVm &)> &Fn,
                      std::string *ObjectReport = nullptr,
                      std::string *CodeReport = nullptr,
                      MergedProfile *ProfileOut = nullptr);

/// Baseline-vs-optimized speedup for one case study, averaged over
/// \p Reps repetitions. Returns {meanSpeedup, ci95HalfWidth}.
std::pair<double, double> measureSpeedup(const CaseStudy &C, int Reps = 3);

/// Convenience: measured runtime and memory overheads of profiling \p Fn.
struct OverheadResult {
  double RuntimeOverhead = 1.0;
  double MemoryOverhead = 1.0;
  RunResult Native;
  RunResult Profiled;
};
OverheadResult measureOverhead(const VmConfig &Config,
                               const DjxPerfConfig &Agent,
                               const std::function<void(JavaVm &)> &Fn);

} // namespace djx

#endif // DJX_BENCH_HARNESS_H
