//===- ablation_event_kinds.cpp - Footnote 1: other precise events ----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper presets L1 misses but notes (§1.1 footnote, §4.1) that any
/// memory-related precise event works — L3 misses, TLB misses, load
/// latency. This ablation profiles the FFT case study under each event
/// kind and shows the diagnosis (the data array's allocation context on
/// top) is stable across metrics, while the metric mix itself shifts as
/// expected (strided access inflates TLB misses most).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "core/Report.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace djx;

int main() {
  std::printf("=== Ablation: alternative precise events (paper footnote:"
              " \"we can measure myriad other events\") ===\n\n");

  auto Cases = table1CaseStudies();
  const CaseStudy &C = findCaseStudy(Cases, "SPECjvm2008: Scimark.fft.large");
  std::string Expect = C.ExpectClass + "." + C.ExpectMethod;

  struct Row {
    PerfEventKind Kind;
    uint64_t Period;
  };
  const Row Rows[] = {
      {PerfEventKind::L1Miss, 64},
      {PerfEventKind::L2Miss, 32},
      {PerfEventKind::L3Miss, 32},
      {PerfEventKind::TlbMiss, 16},
      {PerfEventKind::LoadLatency, 64},
  };

  TextTable T({"event", "samples", "top object", "share", "stable"});
  bool AllStable = true;
  for (const Row &R : Rows) {
    DjxPerfConfig Agent;
    Agent.Events = {PerfEventAttr{R.Kind, R.Period, 64}};
    JavaVm Vm(C.Config);
    DjxPerf Prof(Vm, Agent);
    Prof.start();
    C.Baseline(Vm);
    Prof.stop();
    MergedProfile M = Prof.analyze();
    auto Sorted = M.groupsByMetric(R.Kind);
    std::string Top = "-";
    double Share = 0.0;
    if (!Sorted.empty() && Sorted[0]->Metrics.get(R.Kind) > 0) {
      auto Path = M.Tree.path(Sorted[0]->AllocNode);
      if (!Path.empty())
        Top = Vm.methods().qualifiedName(Path.back().Method);
      Share = M.shareOf(*Sorted[0], R.Kind);
    }
    bool Stable = Top == Expect;
    AllStable &= Stable;
    T.addRow({perfEventName(R.Kind), std::to_string(Prof.samplesHandled()),
              Top, TextTable::fmtPercent(Share), Stable ? "yes" : "NO"});
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  T.print();
  std::printf("\n%s\n",
              AllStable
                  ? "the diagnosis is metric-independent: every precise "
                    "event points at the same object"
                  : "WARNING: diagnosis varies across events");
  return AllStable ? 0 : 1;
}
