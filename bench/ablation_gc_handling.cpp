//===- ablation_gc_handling.cpp - Section 4.5 GC-interference ablation ------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §4.5: "Ignoring GC, DJXPerf may yield incorrect object attribution."
/// Runs a GC-heavy workload (survivors moved by every compaction, dead
/// objects' address ranges recycled) with the relocation-map machinery on
/// vs off and reports correct / misattributed / lost sample fractions.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "core/Report.h"
#include "support/TextTable.h"
#include "workloads/Kernels.h"

#include <cstdio>

using namespace djx;

namespace {

/// GC-churn workload: a long-lived survivor array is read continuously
/// while an "anchor" object below it dies every round, so each compaction
/// slides the survivor to a new address (40 moves in total).
void churnWorkload(JavaVm &Vm) {
  JavaThread &T = Vm.startThread("main", 0);
  MethodRegistry &MR = Vm.methods();
  MethodId MSurv = MR.getOrRegister("App", "allocSurvivor", {{0, 10}});
  MethodId MJunk = MR.getOrRegister("App", "churn", {{0, 20}});
  MethodId MUse = MR.getOrRegister("App", "scan", {{0, 30}});
  TypeId LongArr = Vm.types().longArray();
  RootScope Roots(Vm);
  ObjectRef &Anchor = Roots.add();
  {
    FrameScope F(T, MJunk, 0);
    Anchor = Vm.allocateArray(T, LongArr, 1024);
  }
  ObjectRef &Survivor = Roots.add();
  {
    FrameScope F(T, MSurv, 0);
    Survivor = Vm.allocateArray(T, LongArr, 1024);
  }
  for (int Round = 0; Round < 40; ++Round) {
    // Kill the anchor sitting below the survivor and compact: the
    // survivor slides left. Re-allocate the anchor above it so the next
    // round moves it again.
    Anchor = kNullRef;
    Vm.requestGc();
    {
      FrameScope F(T, MJunk, 0);
      Anchor = Vm.allocateArray(T, LongArr, 1024);
    }
    { // Sampled reads over the moved survivor.
      FrameScope F(T, MUse, 0);
      for (int I = 0; I < 1600; ++I)
        Vm.readWord(T, Survivor, (static_cast<uint64_t>(I) % 1024) * 8);
    }
  }
  Vm.endThread(T);
}

struct Attribution {
  double Correct = 0.0;
  double Misattributed = 0.0;
  double Lost = 0.0;
  uint64_t Collections = 0;
  uint64_t Moves = 0;
};

Attribution measure(bool HandleGc) {
  VmConfig Cfg;
  Cfg.HeapBytes = 192 * 1024;
  JavaVm Vm(Cfg);
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::MemAccess, 16, 64}};
  Agent.MinObjectSize = 1024;
  Agent.HandleGcMoves = HandleGc;
  Agent.HandleGcFrees = HandleGc;
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  churnWorkload(Vm);
  Prof.stop();

  MergedProfile M = Prof.analyze();
  uint64_t Total = M.Totals.get(PerfEventKind::MemAccess);
  uint64_t Correct = 0, Attributed = 0;
  for (const auto &[Node, G] : M.Groups) {
    uint64_t N = G.Metrics.get(PerfEventKind::MemAccess);
    Attributed += N;
    auto Path = M.Tree.path(Node);
    if (!Path.empty() &&
        Vm.methods().qualifiedName(Path.back().Method) ==
            "App.allocSurvivor")
      Correct = N;
  }
  Attribution A;
  A.Correct = static_cast<double>(Correct) / Total;
  A.Misattributed = static_cast<double>(Attributed - Correct) / Total;
  A.Lost = static_cast<double>(M.UnattributedSamples) / Total;
  A.Collections = Vm.gcTotals().Collections;
  A.Moves = Vm.gcTotals().ObjectsMoved;
  return A;
}

} // namespace

int main() {
  std::printf("=== Ablation: GC interference handling (paper 4.5) ===\n"
              "workload: a survivor array moved by ~40 compactions while"
              " being sampled\n\n");
  TextTable T({"gc handling", "correct", "misattributed", "lost",
               "collections", "objects moved"});
  for (bool On : {true, false}) {
    Attribution A = measure(On);
    T.addRow({On ? "on (relocation map + frees)" : "off (ablation)",
              TextTable::fmtPercent(A.Correct),
              TextTable::fmtPercent(A.Misattributed),
              TextTable::fmtPercent(A.Lost), std::to_string(A.Collections),
              std::to_string(A.Moves)});
  }
  T.print();
  std::printf("\nexpected shape: with handling on, nearly all samples"
              " attribute to the survivor's true context; with it off,"
              " samples are lost to stale intervals or blamed on dead"
              " objects whose ranges were recycled.\n");
  return 0;
}
