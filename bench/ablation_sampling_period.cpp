//===- ablation_sampling_period.cpp - Section 5.1 period trade-off ----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.1: "a high sampling rate brings high overhead, and a low sampling
/// rate obtains insufficient samples". Sweeps the L1-miss sampling period
/// over the ObjectLayout case study and reports overhead, sample volume,
/// and attribution accuracy (share of the profile pointing at the true
/// problematic object).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "core/Report.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace djx;

int main() {
  std::printf("=== Ablation: PMU sampling period (paper uses 5M on real"
              " hardware, targeting 20-200 samples/s/thread) ===\n\n");

  auto Cases = table1CaseStudies();
  const CaseStudy &C = findCaseStudy(Cases, "ObjectLayout 1.0.5");
  std::string Expect = C.ExpectClass + "." + C.ExpectMethod;

  TextTable T({"period", "runtime-ov", "samples", "top object",
               "bug share"});
  for (uint64_t Period : {8ULL, 32ULL, 128ULL, 512ULL, 2048ULL, 8192ULL}) {
    DjxPerfConfig Agent;
    Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, Period, 64}};
    OverheadResult R = measureOverhead(C.Config, Agent, C.Baseline);

    JavaVm Vm(C.Config);
    DjxPerf Prof(Vm, Agent);
    Prof.start();
    C.Baseline(Vm);
    Prof.stop();
    MergedProfile M = Prof.analyze();
    auto Sorted = M.groupsByMetric(PerfEventKind::L1Miss);
    std::string Top = "-";
    double Share = 0.0;
    if (!Sorted.empty()) {
      auto Path = M.Tree.path(Sorted[0]->AllocNode);
      if (!Path.empty())
        Top = Vm.methods().qualifiedName(Path.back().Method);
      Share = M.shareOf(*Sorted[0], PerfEventKind::L1Miss);
    }
    T.addRow({std::to_string(Period), TextTable::fmt(R.RuntimeOverhead),
              std::to_string(R.Profiled.Samples),
              Top == Expect ? Top + " (correct)" : Top,
              TextTable::fmtPercent(Share)});
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  T.print();
  std::printf("\nexpected shape: short periods inflate overhead; very long"
              " periods starve the profile of samples, but the top object"
              " stays stable over a wide middle band (statistical"
              " robustness of PMU sampling).\n");
  return 0;
}
