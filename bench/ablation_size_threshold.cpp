//===- ablation_size_threshold.cpp - Section 6 "S" sweep --------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.1/§6: the size filter S trades overhead for coverage. The paper's
/// extreme S=0 (monitor every allocation) costs 1.8x-3.6x on Renaissance;
/// the default S=1 KiB keeps the typical ~8%. This sweep measures runtime
/// overhead and tracked-object counts at S in {0, 256, 1024, 4096} over
/// the callback-heavy Renaissance entries.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/TextTable.h"
#include "workloads/Suites.h"

#include <cstdio>

using namespace djx;

int main() {
  std::printf("=== Ablation: size filter S (paper: S=0 costs 1.8x-3.6x on"
              " Renaissance; S=1KiB is the default trade-off) ===\n\n");

  const uint64_t Thresholds[] = {0, 256, 1024, 4096};
  TextTable T({"benchmark", "S", "runtime-ov", "tracked-allocs",
               "profiler-KiB"});
  // Callback-heavy Renaissance entries stress S the most.
  const char *Names[] = {"akka-uct", "mnemonics", "par-mnemonics",
                         "scrabble", "db-shootout"};
  for (const char *Name : Names) {
    for (const SuiteEntry &E : figure4Suites()) {
      if (E.Name != Name || E.Suite != "Renaissance")
        continue;
      for (uint64_t S : Thresholds) {
        DjxPerfConfig Agent;
        Agent.MinObjectSize = S;
        OverheadResult R = measureOverhead(
            E.Config, Agent, [&E](JavaVm &Vm) { runSuiteEntry(Vm, E); });
        // Tracked count comes from a direct profiled run.
        JavaVm Vm(E.Config);
        DjxPerf Prof(Vm, Agent);
        Prof.start();
        runSuiteEntry(Vm, E);
        Prof.stop();
        T.addRow({Name, std::to_string(S),
                  TextTable::fmt(R.RuntimeOverhead),
                  std::to_string(Prof.allocationsTracked()),
                  std::to_string(Prof.memoryFootprint() / 1024)});
      }
      T.addSeparator();
      std::fprintf(stderr, ".");
    }
  }
  std::fprintf(stderr, "\n");
  T.print();
  std::printf("\nexpected shape: overhead rises sharply as S drops to 0 "
              "while insight (see §6) barely improves.\n");
  return 0;
}
