//===- ablation_splay_tree.cpp - Section 4.2 data-structure choice ----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §4.2 picks an interval *splay* tree for object attribution because PMU
/// samples cluster on hot objects, which splaying moves to the root. This
/// bench has two parts:
///
///  1. A three-way comparison of the *index designs* the repo has grown
///     through — inline splay (one tree + one spin lock, the paper's
///     original), sharded splay (per-address-range trees + locks, PR 3),
///     and batched snapshot (lock-free epoch-snapshot reads with an
///     address-sorted batch + hint, this PR) — measured as sample-
///     resolution lookups/s and emitted to BENCH_index.json so CI archives
///     the trajectory. Per-mode index lock acquisitions are recorded too:
///     the snapshot mode's count stays zero.
///
///  2. The original google-benchmark micro-comparison of the splay tree
///     against a std::map interval index and a linear scan, under skewed
///     (hot-object) and uniform lookup mixes.
///
/// Usage: bench_ablation_splay_tree [--quick] [--json-only] [--out PATH]
///                                  [--benchmark_* flags...]
///
//===----------------------------------------------------------------------===//

#include "core/LiveObjectIndex.h"
#include "support/IntervalSplayTree.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace djx;

namespace {

constexpr uint64_t kObjSize = 256;

std::vector<uint64_t> makeStarts(size_t N) {
  std::vector<uint64_t> Starts;
  Starts.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Starts.push_back(I * kObjSize * 2); // Gaps between objects.
  return Starts;
}

/// Skewed address stream: 90% of lookups hit 10% of objects — the access
/// pattern PMU samples exhibit on real workloads.
std::vector<uint64_t> makeQueries(const std::vector<uint64_t> &Starts,
                                  size_t NumQueries, bool Skewed) {
  Random Rng(42);
  std::vector<uint64_t> Qs;
  Qs.reserve(NumQueries);
  size_t Hot = std::max<size_t>(Starts.size() / 10, 1);
  for (size_t I = 0; I < NumQueries; ++I) {
    size_t Idx = (Skewed && Rng.nextBool(0.9))
                     ? Rng.nextBelow(Hot)
                     : Rng.nextBelow(Starts.size());
    Qs.push_back(Starts[Idx] + Rng.nextBelow(kObjSize));
  }
  return Qs;
}

// --- Part 1: three-way index-design comparison -> BENCH_index.json --------

constexpr unsigned kIndexShards = 4;
/// Wide enough that the largest (non-quick) population — 16384 objects
/// per shard at a 512-byte stride, 8 MB — fits its shard range with
/// room to spare; colliding starts across shards would silently evict
/// earlier shards' intervals and invalidate the comparison.
constexpr uint64_t kShardSpan = 1ULL << 24;
/// Ring capacity of the batched resolver: the snapshot mode resolves in
/// sorted batches of this size, like the real drain.
constexpr size_t kDrainBatch = 4096;

/// Objects laid out like a sharded heap: N/kIndexShards per shard-range,
/// bump-ordered within each.
std::vector<uint64_t> makeShardedStarts(size_t N) {
  std::vector<uint64_t> Starts;
  Starts.reserve(N);
  size_t PerShard = N / kIndexShards;
  static_assert(kObjSize * 2 * 16384 + 64 <= kShardSpan,
                "per-shard layout must fit the shard span");
  for (unsigned S = 0; S < kIndexShards; ++S)
    for (size_t I = 0; I < PerShard; ++I)
      Starts.push_back(S * kShardSpan + 64 + I * kObjSize * 2);
  return Starts;
}

void populate(LiveObjectIndex &Idx, const std::vector<uint64_t> &Starts) {
  for (uint64_t S : Starts)
    Idx.insert(S, kObjSize, LiveObject{1 + S % 7, kCctRoot, 0, kObjSize});
}

struct ModeResult {
  double PerSec = 0;
  uint64_t Hits = 0;
  uint64_t LockAcquisitions = 0; ///< On the lookup phase only.
};

using Clock = std::chrono::steady_clock;

/// Measures one lookup mode over \p Queries, best of \p Reps.
template <typename LookupPhase>
ModeResult measureMode(const std::vector<uint64_t> &Starts,
                       const std::vector<uint64_t> &Queries, int Reps,
                       unsigned Shards, LookupPhase &&Phase) {
  ModeResult Best;
  for (int R = 0; R < Reps; ++R) {
    LiveObjectIndex Idx;
    if (Shards > 1)
      Idx.configureShards(Shards, kShardSpan);
    populate(Idx, Starts);
    uint64_t LocksBefore = Idx.lockAcquisitions();
    Clock::time_point T0 = Clock::now();
    uint64_t Hits = Phase(Idx, Queries);
    double Seconds = std::chrono::duration<double>(Clock::now() - T0).count();
    double PerSec =
        Seconds > 0 ? static_cast<double>(Queries.size()) / Seconds : 0;
    if (PerSec > Best.PerSec) {
      Best.PerSec = PerSec;
      Best.Hits = Hits;
      Best.LockAcquisitions = Idx.lockAcquisitions() - LocksBefore;
    }
  }
  return Best;
}

uint64_t inlineLookupPhase(LiveObjectIndex &Idx,
                           const std::vector<uint64_t> &Queries) {
  uint64_t Hits = 0;
  for (uint64_t Q : Queries)
    if (Idx.lookup(Q))
      ++Hits;
  return Hits;
}

/// The batched drain's shape: resolve in ring-sized batches, each sorted
/// by address, through the lock-free snapshot with the hint memo.
uint64_t snapshotBatchPhase(LiveObjectIndex &Idx,
                            const std::vector<uint64_t> &Queries) {
  uint64_t Hits = 0;
  std::vector<uint64_t> Batch;
  Batch.reserve(kDrainBatch);
  for (size_t I = 0; I < Queries.size(); I += kDrainBatch) {
    size_t End = std::min(Queries.size(), I + kDrainBatch);
    Batch.assign(Queries.begin() + I, Queries.begin() + End);
    std::sort(Batch.begin(), Batch.end());
    LiveObjectIndex::SnapshotHint Hint;
    for (uint64_t Q : Batch)
      if (Idx.lookupSnapshot(Q, &Hint))
        ++Hits;
  }
  return Hits;
}

int runIndexComparison(bool Quick, const std::string &OutPath) {
  const size_t NumObjects = Quick ? 4096 : 65536;
  const size_t NumQueries = Quick ? 1 << 18 : 1 << 21;
  const int Reps = Quick ? 2 : 3;
  auto Starts = makeShardedStarts(NumObjects);
  auto Queries = makeQueries(Starts, NumQueries, /*Skewed=*/true);

  std::printf("=== index designs: %zu objects, %zu skewed lookups ===\n",
              Starts.size(), Queries.size());
  ModeResult Inline =
      measureMode(Starts, Queries, Reps, 1, inlineLookupPhase);
  ModeResult Sharded =
      measureMode(Starts, Queries, Reps, kIndexShards, inlineLookupPhase);
  ModeResult Snapshot =
      measureMode(Starts, Queries, Reps, kIndexShards, snapshotBatchPhase);

  struct Row {
    const char *Name;
    const ModeResult *R;
  } Rows[] = {{"inline_splay", &Inline},
              {"sharded_splay", &Sharded},
              {"batched_snapshot", &Snapshot}};
  for (const Row &R : Rows)
    std::printf("%-17s %12.0f lookups/s   (%llu hits, %llu index lock "
                "acquisitions)\n",
                R.Name, R.R->PerSec,
                static_cast<unsigned long long>(R.R->Hits),
                static_cast<unsigned long long>(R.R->LockAcquisitions));
  std::printf("speedup vs inline: x%.2f (sharded), x%.2f (snapshot)\n",
              Inline.PerSec > 0 ? Sharded.PerSec / Inline.PerSec : 0,
              Inline.PerSec > 0 ? Snapshot.PerSec / Inline.PerSec : 0);

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out,
               "{\n  \"bench\": \"index\",\n  \"quick\": %s,\n"
               "  \"objects\": %zu,\n  \"queries\": %zu,\n"
               "  \"lookups_per_sec\": {\n",
               Quick ? "true" : "false", Starts.size(), Queries.size());
  for (size_t I = 0; I < 3; ++I)
    std::fprintf(Out,
                 "    \"%s\": { \"per_sec\": %.0f, \"hits\": %llu, "
                 "\"lock_acquisitions\": %llu }%s\n",
                 Rows[I].Name, Rows[I].R->PerSec,
                 static_cast<unsigned long long>(Rows[I].R->Hits),
                 static_cast<unsigned long long>(
                     Rows[I].R->LockAcquisitions),
                 I == 2 ? "" : ",");
  std::fprintf(Out,
               "  },\n  \"speedup_vs_inline\": {\n"
               "    \"sharded_splay\": %.2f,\n"
               "    \"batched_snapshot\": %.2f\n  }\n}\n",
               Inline.PerSec > 0 ? Sharded.PerSec / Inline.PerSec : 0,
               Inline.PerSec > 0 ? Snapshot.PerSec / Inline.PerSec : 0);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}

// --- Part 2: tree-level micro-benchmarks (google-benchmark) ---------------

void BM_SplayTreeLookup(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  bool Skewed = State.range(1) != 0;
  auto Starts = makeStarts(N);
  auto Queries = makeQueries(Starts, 4096, Skewed);
  IntervalSplayTree<uint64_t> T;
  for (uint64_t S : Starts)
    T.insert(S, kObjSize, S);
  size_t Q = 0;
  for (auto _ : State) {
    auto E = T.lookup(Queries[Q++ & 4095]);
    benchmark::DoNotOptimize(E);
  }
}

void BM_StdMapLookup(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  bool Skewed = State.range(1) != 0;
  auto Starts = makeStarts(N);
  auto Queries = makeQueries(Starts, 4096, Skewed);
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> M;
  for (uint64_t S : Starts)
    M[S] = {S + kObjSize, S};
  size_t Q = 0;
  for (auto _ : State) {
    uint64_t Addr = Queries[Q++ & 4095];
    auto It = M.upper_bound(Addr);
    uint64_t V = 0;
    if (It != M.begin()) {
      --It;
      if (Addr < It->second.first)
        V = It->second.second;
    }
    benchmark::DoNotOptimize(V);
  }
}

void BM_LinearScanLookup(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  bool Skewed = State.range(1) != 0;
  auto Starts = makeStarts(N);
  auto Queries = makeQueries(Starts, 4096, Skewed);
  struct Entry {
    uint64_t Start, End, Value;
  };
  std::vector<Entry> V;
  for (uint64_t S : Starts)
    V.push_back({S, S + kObjSize, S});
  size_t Q = 0;
  for (auto _ : State) {
    uint64_t Addr = Queries[Q++ & 4095];
    uint64_t Found = 0;
    for (const Entry &E : V)
      if (Addr >= E.Start && Addr < E.End) {
        Found = E.Value;
        break;
      }
    benchmark::DoNotOptimize(Found);
  }
}

void BM_SplayTreeChurn(benchmark::State &State) {
  // Allocation/free churn: half inserts, half erases, as the Java agent
  // sees during memory bloat.
  size_t N = static_cast<size_t>(State.range(0));
  IntervalSplayTree<uint64_t> T;
  auto Starts = makeStarts(N);
  for (uint64_t S : Starts)
    T.insert(S, kObjSize, S);
  size_t I = 0;
  for (auto _ : State) {
    uint64_t S = Starts[I++ % N];
    T.removeAt(S);
    T.insert(S, kObjSize, S);
  }
}

} // namespace

BENCHMARK(BM_SplayTreeLookup)
    ->ArgsProduct({{256, 4096, 65536}, {0, 1}})
    ->ArgNames({"objects", "skewed"});
BENCHMARK(BM_StdMapLookup)
    ->ArgsProduct({{256, 4096, 65536}, {0, 1}})
    ->ArgNames({"objects", "skewed"});
BENCHMARK(BM_LinearScanLookup)
    ->ArgsProduct({{256, 4096}, {0, 1}})
    ->ArgNames({"objects", "skewed"});
BENCHMARK(BM_SplayTreeChurn)->Arg(4096)->ArgNames({"objects"});

int main(int Argc, char **Argv) {
  bool Quick = false;
  bool JsonOnly = false;
  std::string OutPath = "BENCH_index.json";
  std::vector<char *> BenchArgs;
  BenchArgs.push_back(Argv[0]);
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(Argv[I], "--json-only") == 0)
      JsonOnly = true;
    else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc)
      OutPath = Argv[++I];
    else
      BenchArgs.push_back(Argv[I]); // --benchmark_* passthrough.
  }
  if (int Rc = runIndexComparison(Quick, OutPath))
    return Rc;
  if (JsonOnly)
    return 0;
  int BenchArgc = static_cast<int>(BenchArgs.size());
  benchmark::Initialize(&BenchArgc, BenchArgs.data());
  if (benchmark::ReportUnrecognizedArguments(BenchArgc, BenchArgs.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
