//===- ablation_splay_tree.cpp - Section 4.2 data-structure choice ----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §4.2 picks an interval *splay* tree for object attribution because PMU
/// samples cluster on hot objects, which splaying moves to the root.
/// google-benchmark comparison of the splay tree against a std::map
/// interval index and a linear scan, under skewed (hot-object) and
/// uniform lookup mixes.
///
//===----------------------------------------------------------------------===//

#include "support/IntervalSplayTree.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

using namespace djx;

namespace {

constexpr uint64_t kObjSize = 256;

std::vector<uint64_t> makeStarts(size_t N) {
  std::vector<uint64_t> Starts;
  Starts.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Starts.push_back(I * kObjSize * 2); // Gaps between objects.
  return Starts;
}

/// Skewed address stream: 90% of lookups hit 10% of objects — the access
/// pattern PMU samples exhibit on real workloads.
std::vector<uint64_t> makeQueries(const std::vector<uint64_t> &Starts,
                                  size_t NumQueries, bool Skewed) {
  Random Rng(42);
  std::vector<uint64_t> Qs;
  Qs.reserve(NumQueries);
  size_t Hot = std::max<size_t>(Starts.size() / 10, 1);
  for (size_t I = 0; I < NumQueries; ++I) {
    size_t Idx = (Skewed && Rng.nextBool(0.9))
                     ? Rng.nextBelow(Hot)
                     : Rng.nextBelow(Starts.size());
    Qs.push_back(Starts[Idx] + Rng.nextBelow(kObjSize));
  }
  return Qs;
}

void BM_SplayTreeLookup(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  bool Skewed = State.range(1) != 0;
  auto Starts = makeStarts(N);
  auto Queries = makeQueries(Starts, 4096, Skewed);
  IntervalSplayTree<uint64_t> T;
  for (uint64_t S : Starts)
    T.insert(S, kObjSize, S);
  size_t Q = 0;
  for (auto _ : State) {
    auto E = T.lookup(Queries[Q++ & 4095]);
    benchmark::DoNotOptimize(E);
  }
}

void BM_StdMapLookup(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  bool Skewed = State.range(1) != 0;
  auto Starts = makeStarts(N);
  auto Queries = makeQueries(Starts, 4096, Skewed);
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> M;
  for (uint64_t S : Starts)
    M[S] = {S + kObjSize, S};
  size_t Q = 0;
  for (auto _ : State) {
    uint64_t Addr = Queries[Q++ & 4095];
    auto It = M.upper_bound(Addr);
    uint64_t V = 0;
    if (It != M.begin()) {
      --It;
      if (Addr < It->second.first)
        V = It->second.second;
    }
    benchmark::DoNotOptimize(V);
  }
}

void BM_LinearScanLookup(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  bool Skewed = State.range(1) != 0;
  auto Starts = makeStarts(N);
  auto Queries = makeQueries(Starts, 4096, Skewed);
  struct Entry {
    uint64_t Start, End, Value;
  };
  std::vector<Entry> V;
  for (uint64_t S : Starts)
    V.push_back({S, S + kObjSize, S});
  size_t Q = 0;
  for (auto _ : State) {
    uint64_t Addr = Queries[Q++ & 4095];
    uint64_t Found = 0;
    for (const Entry &E : V)
      if (Addr >= E.Start && Addr < E.End) {
        Found = E.Value;
        break;
      }
    benchmark::DoNotOptimize(Found);
  }
}

void BM_SplayTreeChurn(benchmark::State &State) {
  // Allocation/free churn: half inserts, half erases, as the Java agent
  // sees during memory bloat.
  size_t N = static_cast<size_t>(State.range(0));
  IntervalSplayTree<uint64_t> T;
  auto Starts = makeStarts(N);
  for (uint64_t S : Starts)
    T.insert(S, kObjSize, S);
  size_t I = 0;
  for (auto _ : State) {
    uint64_t S = Starts[I++ % N];
    T.removeAt(S);
    T.insert(S, kObjSize, S);
  }
}

} // namespace

BENCHMARK(BM_SplayTreeLookup)
    ->ArgsProduct({{256, 4096, 65536}, {0, 1}})
    ->ArgNames({"objects", "skewed"});
BENCHMARK(BM_StdMapLookup)
    ->ArgsProduct({{256, 4096, 65536}, {0, 1}})
    ->ArgNames({"objects", "skewed"});
BENCHMARK(BM_LinearScanLookup)
    ->ArgsProduct({{256, 4096}, {0, 1}})
    ->ArgNames({"objects", "skewed"});
BENCHMARK(BM_SplayTreeChurn)->Arg(4096)->ArgNames({"objects"});

BENCHMARK_MAIN();
