//===- accuracy_known_bugs.cpp - Reproduces the Section 6 accuracy study ----===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §6 accuracy: DJXPerf must rediscover the locality issues previously
/// reported in luindex, bloat, lusearch, xalan (Dacapo 2006) and
/// SPECjbb2000. For each benchmark the harness profiles the buggy run and
/// checks the known allocation context tops the object-centric ranking.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "core/Report.h"
#include "support/TextTable.h"
#include "workloads/AccuracyCases.h"

#include <cstdio>

using namespace djx;

int main() {
  std::printf("=== Section 6 accuracy: known locality bugs ===\n"
              "paper: DJXPerf successfully identified all five issues"
              " reported by prior work [Xu, OOPSLA'12]\n\n");

  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, 64, 64}};

  TextTable T({"benchmark", "known bug", "rank", "L1-miss share",
               "found"});
  bool AllFound = true;
  for (const CaseStudy &C : section6AccuracyCases()) {
    JavaVm Vm(C.Config);
    DjxPerf Prof(Vm, Agent);
    Prof.start();
    C.Baseline(Vm);
    Prof.stop();
    MergedProfile M = Prof.analyze();
    std::string Expect = C.ExpectClass + "." + C.ExpectMethod;
    int Rank = 0, FoundRank = -1;
    double Share = 0.0;
    for (const MergedGroup *G : M.groupsByMetric(PerfEventKind::L1Miss)) {
      ++Rank;
      auto Path = M.Tree.path(G->AllocNode);
      if (!Path.empty() &&
          Vm.methods().qualifiedName(Path.back().Method) == Expect) {
        FoundRank = Rank;
        Share = M.shareOf(*G, PerfEventKind::L1Miss);
        break;
      }
    }
    bool Found = FoundRank == 1;
    AllFound &= Found;
    T.addRow({C.Application, C.ProblematicCode,
              FoundRank < 0 ? "-" : "#" + std::to_string(FoundRank),
              TextTable::fmtPercent(Share), Found ? "yes" : "NO"});
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  T.print();
  std::printf("\n%s\n", AllFound ? "5/5 known issues identified (top-1)"
                                 : "WARNING: some issues were missed");
  return AllFound ? 0 : 1;
}
