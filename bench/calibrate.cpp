//===- calibrate.cpp - Developer utility: check experiment shapes ---------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints measured vs paper numbers for every experiment family in one
/// quick pass. Used to calibrate workload parameters; the real
/// reproduction binaries live next to this file (one per table/figure).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/TextTable.h"
#include "workloads/Insignificant.h"
#include "workloads/Suites.h"

#include <cstdio>

using namespace djx;

int main(int Argc, char **Argv) {
  bool Quick = Argc > 1 && std::string(Argv[1]) == "--quick";
  (void)Quick;

  std::printf("== Table 1 case studies ==\n");
  TextTable T1({"application", "paper", "measured"});
  for (const CaseStudy &C : table1CaseStudies()) {
    auto [S, Ci] = measureSpeedup(C, 1);
    T1.addRow({C.Application, TextTable::fmt(C.PaperSpeedup),
               TextTable::fmtPlusMinus(S, Ci)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  T1.print();

  std::printf("\n== Table 2 insignificant ==\n");
  TextTable T2({"application", "paper", "measured"});
  for (const InsignificantCase &IC : table2InsignificantCases()) {
    auto [S, Ci] = measureSpeedup(IC.Study, 1);
    T2.addRow({IC.Study.Application, TextTable::fmt(IC.Study.PaperSpeedup),
               TextTable::fmtPlusMinus(S, Ci)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  T2.print();

  std::printf("\n== Figure 4 suites (subset) ==\n");
  TextTable T4({"bench", "paper-rt", "meas-rt", "paper-mem", "meas-mem"});
  DjxPerfConfig Agent;
  int Count = 0;
  for (const SuiteEntry &E : figure4Suites()) {
    if (++Count % 5 != 1)
      continue; // Subset for speed.
    OverheadResult R = measureOverhead(
        E.Config, Agent, [&E](JavaVm &Vm) { runSuiteEntry(Vm, E); });
    T4.addRow({E.Name, TextTable::fmt(E.PaperRuntimeOverhead),
               TextTable::fmt(R.RuntimeOverhead),
               TextTable::fmt(E.PaperMemoryOverhead),
               TextTable::fmt(R.MemoryOverhead)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  T4.print();
  return 0;
}
