//===- fig1_motivation.cpp - Reproduces Figure 1 ---------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 1: code-centric vs object-centric profiling of the same access
/// timeline. Prints both views plus the per-object aggregation table the
/// figure shows (O1 50%, O2 26%, O3 24% with per-instruction breakdowns).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "core/Report.h"
#include "support/TextTable.h"
#include "workloads/Figure1.h"

#include <cstdio>

using namespace djx;

int main() {
  std::printf("=== Figure 1: code-centric vs object-centric profiling ===\n"
              "paper: Ic tops the code view (24%%); O1 tops the object view"
              " (50%% vs O2 26%%, O3 24%%)\n\n");

  VmConfig Cfg;
  Cfg.HeapBytes = 8 << 20;
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, 16, 64}};

  JavaVm Vm(Cfg);
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  runFigure1Workload(Vm);
  Prof.stop();
  MergedProfile M = Prof.analyze();

  ReportOptions Opts;
  Opts.TopGroups = 3;
  Opts.TopAccessContexts = 6;
  Opts.ShowNuma = false;
  std::fputs(renderCodeCentric(M, Vm.methods(), Opts).c_str(), stdout);
  std::printf("\n");
  std::fputs(renderObjectCentric(M, Vm.methods(), Opts).c_str(), stdout);

  // The figure's aggregation table.
  TextTable T({"object", "measured share", "paper share"});
  const char *Paper[] = {"50%", "26%", "24%"};
  int I = 0;
  for (const MergedGroup *G : M.groupsByMetric(PerfEventKind::L1Miss)) {
    if (I >= 3)
      break;
    auto Path = M.Tree.path(G->AllocNode);
    std::string Name = Path.empty()
                           ? "<?>"
                           : Vm.methods().qualifiedName(Path.back().Method);
    T.addRow({Name, TextTable::fmtPercent(
                        M.shareOf(*G, PerfEventKind::L1Miss)),
              Paper[I]});
    ++I;
  }
  std::printf("\n");
  T.print();
  return 0;
}
