//===- fig4_overhead.cpp - Reproduces Figure 4a and 4b ---------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4: runtime (4a) and memory (4b) overhead of DJXPerf across the
/// Renaissance / Dacapo 9.12 / SPECjvm2008 suites, with the paper's values
/// side by side and geomean/median summary rows. Pass --quick to run every
/// 5th benchmark.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Statistics.h"
#include "support/TextTable.h"
#include "workloads/Suites.h"

#include <cstdio>
#include <cstring>

using namespace djx;

int main(int Argc, char **Argv) {
  bool Quick = Argc > 1 && std::strcmp(Argv[1], "--quick") == 0;
  std::printf("=== Figure 4: DJXPerf runtime and memory overheads ===\n"
              "paper: geomean runtime 1.15 / median 1.08; geomean memory"
              " 1.06 / median 1.05 (5M period)\n"
              "callback-heavy entries (akka-uct, mnemonics, scrabble, ...)"
              " dominate the runtime overhead\n\n");

  DjxPerfConfig Agent; // Paper defaults: L1-miss event, S = 1 KiB.

  TextTable T({"suite", "benchmark", "rt-paper", "rt-meas", "mem-paper",
               "mem-meas", "alloc-callbacks", "samples"});
  std::vector<double> RtMeas, MemMeas;
  std::string LastSuite;
  int Index = 0;
  for (const SuiteEntry &E : figure4Suites()) {
    if (Quick && Index++ % 5 != 0)
      continue;
    if (!LastSuite.empty() && E.Suite != LastSuite)
      T.addSeparator();
    LastSuite = E.Suite;
    OverheadResult R = measureOverhead(
        E.Config, Agent, [&E](JavaVm &Vm) { runSuiteEntry(Vm, E); });
    RtMeas.push_back(R.RuntimeOverhead);
    MemMeas.push_back(R.MemoryOverhead);
    T.addRow({E.Suite, E.Name, TextTable::fmt(E.PaperRuntimeOverhead),
              TextTable::fmt(R.RuntimeOverhead),
              TextTable::fmt(E.PaperMemoryOverhead),
              TextTable::fmt(R.MemoryOverhead),
              std::to_string(R.Profiled.AllocationCallbacks),
              std::to_string(R.Profiled.Samples)});
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  T.addSeparator();
  T.addRow({"", "GeoMean", "1.15", TextTable::fmt(geomean(RtMeas)), "1.06",
            TextTable::fmt(geomean(MemMeas)), "", ""});
  T.addRow({"", "Median", "1.08", TextTable::fmt(median(RtMeas)), "1.05",
            TextTable::fmt(median(MemMeas)), "", ""});
  T.print();
  return 0;
}
