//===- mtscale.cpp - Multithreaded executor scaling benchmark --------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock scaling of the parallel profiling runtime: the same
/// 4-simulated-thread workload (identical logical schedule, byte-identical
/// results) is driven with 1, 2, and 4 host workers, and the benchmark
/// reports aggregate interpreter steps per second plus speedup versus the
/// serial --jobs 1 path. Results are written to BENCH_mtscale.json so CI
/// can archive the trajectory next to BENCH_simspeed.json. Speedups only
/// carry meaning on hosts with at least as many cores as workers — on a
/// single-core container every jobs value collapses to ~1x.
///
/// A second section measures round-barrier cost directly: the same
/// workload at QuantumSteps 1k/16k/64k, jobs=1 vs jobs=4. Shrinking the
/// quantum multiplies the number of round transitions (64x between the
/// extremes), so the barrier's per-round overhead dominates the jobs=4
/// column at 1k — visible even on few-core hosts, where no parallel
/// speedup can mask it. This is the metric the ticket-based barrier
/// elision moves.
///
/// Usage: bench_mtscale [--quick] [--out PATH]
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "workloads/Parallel.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

using namespace djx;

namespace {

using Clock = std::chrono::steady_clock;

struct ScalePoint {
  unsigned Jobs = 1;
  double StepsPerSec = 0;
  double Seconds = 0;
  uint64_t Steps = 0;
  uint64_t Safepoints = 0;
  uint64_t Rounds = 0;
};

ScalePoint measure(unsigned Jobs, int Reps, const ParallelConfig &Base) {
  ScalePoint Best;
  Best.Jobs = Jobs;
  for (int R = 0; R < Reps; ++R) {
    ParallelConfig Pc = Base;
    Pc.Jobs = Jobs;
    JavaVm Vm(parallelVmConfig(Pc));
    Clock::time_point Start = Clock::now();
    ParallelOutcome Out = runParallelWorkload(Vm, nullptr, Pc);
    double Seconds =
        std::chrono::duration<double>(Clock::now() - Start).count();
    double PerSec =
        Seconds > 0 ? static_cast<double>(Out.Steps) / Seconds : 0;
    if (PerSec > Best.StepsPerSec) {
      Best.StepsPerSec = PerSec;
      Best.Seconds = Seconds;
      Best.Steps = Out.Steps;
      Best.Safepoints = Out.Safepoints;
      Best.Rounds = Out.Rounds;
    }
  }
  return Best;
}

/// One barrier-cost cell: the scaling workload at a given QuantumSteps
/// and jobs value. Small quanta mean many rounds; the jobs>1 steps/s
/// deficit against jobs=1 at the same quantum is (almost entirely) the
/// per-round transition cost.
struct BarrierPoint {
  uint64_t QuantumSteps = 0;
  ScalePoint J1;
  ScalePoint J4;
};

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::string OutPath = "BENCH_mtscale.json";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", Argv[0]);
      return 2;
    }
  }

  ParallelConfig Base;
  Base.SimThreads = 4;
  Base.Iters = Quick ? 400 : 1600;
  Base.Nlen = 256;
  Base.HotElems = 16384;
  Base.HeapBytesPerThread = 512 << 10; // Churn forces safepoint GCs.
  const int Reps = Quick ? 2 : 3;

  std::printf("=== mtscale: executor scaling, %u simulated threads "
              "(host cores: %u) ===\n",
              Base.SimThreads, std::thread::hardware_concurrency());

  const unsigned JobValues[] = {1, 2, 4};
  ScalePoint Points[3];
  for (int I = 0; I < 3; ++I) {
    Points[I] = measure(JobValues[I], Reps, Base);
    std::printf("jobs=%u: %12.0f steps/s   (%llu steps, %llu safepoints, "
                "%.3f s)\n",
                Points[I].Jobs, Points[I].StepsPerSec,
                static_cast<unsigned long long>(Points[I].Steps),
                static_cast<unsigned long long>(Points[I].Safepoints),
                Points[I].Seconds);
  }
  double Base1 = Points[0].StepsPerSec;
  std::printf("speedup vs jobs=1: x%.2f (jobs=2), x%.2f (jobs=4)\n",
              Base1 > 0 ? Points[1].StepsPerSec / Base1 : 0,
              Base1 > 0 ? Points[2].StepsPerSec / Base1 : 0);

  // Barrier-cost microbench: same workload, shrinking quanta. A lighter
  // churn (larger heap, fewer iterations) keeps safepoints out of the
  // picture so the numbers isolate the round transition itself.
  std::printf("--- barrier cost: steps/s at shrinking QuantumSteps ---\n");
  ParallelConfig Bb = Base;
  Bb.Iters = Quick ? 200 : 800;
  Bb.HeapBytesPerThread = 4ULL << 20; // Roomy shards: no safepoint GCs.
  const uint64_t Quanta[] = {1024, 16384, 65536};
  BarrierPoint Barrier[3];
  for (int I = 0; I < 3; ++I) {
    Bb.QuantumSteps = Quanta[I];
    Barrier[I].QuantumSteps = Quanta[I];
    Barrier[I].J1 = measure(1, Reps, Bb);
    Barrier[I].J4 = measure(4, Reps, Bb);
    double Ratio = Barrier[I].J1.StepsPerSec > 0
                       ? Barrier[I].J4.StepsPerSec /
                             Barrier[I].J1.StepsPerSec
                       : 0;
    std::printf("quantum=%6llu: jobs1 %12.0f  jobs4 %12.0f steps/s "
                "(x%.2f, %llu rounds)\n",
                static_cast<unsigned long long>(Quanta[I]),
                Barrier[I].J1.StepsPerSec, Barrier[I].J4.StepsPerSec, Ratio,
                static_cast<unsigned long long>(Barrier[I].J4.Rounds));
  }

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out,
               "{\n  \"bench\": \"mtscale\",\n  \"quick\": %s,\n"
               "  \"sim_threads\": %u,\n  \"host_cores\": %u,\n"
               "  \"steps_per_sec\": {\n",
               Quick ? "true" : "false", Base.SimThreads,
               std::thread::hardware_concurrency());
  for (int I = 0; I < 3; ++I)
    std::fprintf(Out,
                 "    \"jobs%u\": { \"per_sec\": %.0f, \"steps\": %llu, "
                 "\"safepoints\": %llu, \"seconds\": %.6f }%s\n",
                 Points[I].Jobs, Points[I].StepsPerSec,
                 static_cast<unsigned long long>(Points[I].Steps),
                 static_cast<unsigned long long>(Points[I].Safepoints),
                 Points[I].Seconds, I == 2 ? "" : ",");
  std::fprintf(Out,
               "  },\n  \"speedup_vs_jobs1\": {\n"
               "    \"jobs2\": %.2f,\n    \"jobs4\": %.2f\n  },\n",
               Base1 > 0 ? Points[1].StepsPerSec / Base1 : 0,
               Base1 > 0 ? Points[2].StepsPerSec / Base1 : 0);
  std::fprintf(Out, "  \"barrier_cost\": {\n");
  for (int I = 0; I < 3; ++I)
    std::fprintf(
        Out,
        "    \"quantum%llu\": { \"jobs1_per_sec\": %.0f, "
        "\"jobs4_per_sec\": %.0f, \"jobs4_vs_jobs1\": %.2f, "
        "\"rounds\": %llu }%s\n",
        static_cast<unsigned long long>(Barrier[I].QuantumSteps),
        Barrier[I].J1.StepsPerSec, Barrier[I].J4.StepsPerSec,
        Barrier[I].J1.StepsPerSec > 0
            ? Barrier[I].J4.StepsPerSec / Barrier[I].J1.StepsPerSec
            : 0,
        static_cast<unsigned long long>(Barrier[I].J4.Rounds),
        I == 2 ? "" : ",");
  std::fprintf(Out, "  }\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
