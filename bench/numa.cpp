//===- numa.cpp - NUMA placement-policy benchmark --------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the numaRemote case-study workload (producer/consumer handoff:
/// each simulated thread sweeps its neighbour's hot array) under every
/// shard placement policy and reports the remote-access ratio plus
/// wall-clock steps/s per policy — the paper's §7.5/§7.6 "diagnose, then
/// fix placement" loop as one measurement. The remote ratio is a
/// simulated (deterministic) quantity; steps/s is host wall-clock and
/// only meaningful relative to the same machine. Results are written to
/// BENCH_numa.json so CI can archive the trajectory next to
/// BENCH_mtscale.json.
///
/// Usage: bench_numa [--quick] [--out PATH]
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "workloads/Parallel.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

using namespace djx;

namespace {

using Clock = std::chrono::steady_clock;

struct PolicyPoint {
  NumaPolicy Policy = NumaPolicy::FirstTouch;
  /// Remote share of DRAM accesses (the NUMA-relevant denominator:
  /// cache-absorbed accesses never touch a memory controller).
  double RemoteRatio = 0;
  uint64_t RemoteAccesses = 0;
  uint64_t DramAccesses = 0;
  uint64_t Accesses = 0;
  uint64_t Steps = 0;
  uint64_t Safepoints = 0;
  double StepsPerSec = 0;
  double Seconds = 0;
};

PolicyPoint measure(NumaPolicy Policy, int Reps, const ParallelConfig &Base) {
  PolicyPoint Best;
  Best.Policy = Policy;
  for (int R = 0; R < Reps; ++R) {
    ParallelConfig Pc = Base;
    Pc.Policy = Policy;
    JavaVm Vm(numaRemoteVmConfig(Pc));
    Clock::time_point Start = Clock::now();
    ParallelOutcome Out = runNumaRemoteWorkload(Vm, nullptr, Pc);
    double Seconds =
        std::chrono::duration<double>(Clock::now() - Start).count();
    double PerSec =
        Seconds > 0 ? static_cast<double>(Out.Steps) / Seconds : 0;
    if (PerSec > Best.StepsPerSec) {
      Best.StepsPerSec = PerSec;
      Best.Seconds = Seconds;
    }
    // Simulated quantities are identical across reps; record once.
    Best.Steps = Out.Steps;
    Best.Safepoints = Out.Safepoints;
    Best.RemoteAccesses = Out.Machine.RemoteAccesses;
    Best.DramAccesses = Out.Machine.L3Misses;
    Best.Accesses = Out.Machine.Accesses;
    Best.RemoteRatio =
        Out.Machine.L3Misses
            ? static_cast<double>(Out.Machine.RemoteAccesses) /
                  static_cast<double>(Out.Machine.L3Misses)
            : 0;
  }
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::string OutPath = "BENCH_numa.json";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", Argv[0]);
      return 2;
    }
  }

  ParallelConfig Base;
  Base.SimThreads = 4;
  Base.Jobs = std::max(1u, std::thread::hardware_concurrency());
  Base.Iters = Quick ? 300 : 1200;
  Base.Nlen = 256;
  // 256 KiB hot arrays: above the numaRemote machine's 128 KiB L3, so
  // every sweep pass reaches DRAM.
  Base.HotElems = 32768;
  Base.HeapBytesPerThread = 512 << 10; // Churn forces safepoint GCs.
  const int Reps = Quick ? 2 : 3;

  std::printf("=== numa: placement policies on the numaRemote handoff, "
              "%u simulated threads ===\n",
              Base.SimThreads);

  const NumaPolicy Policies[] = {NumaPolicy::FirstTouch, NumaPolicy::Bind,
                                 NumaPolicy::Interleave};
  PolicyPoint Points[3];
  for (int I = 0; I < 3; ++I) {
    Points[I] = measure(Policies[I], Reps, Base);
    std::printf("%-12s remote %5.1f%% of DRAM (%llu/%llu)  %12.0f steps/s"
                "  (%llu safepoints)\n",
                numaPolicyName(Points[I].Policy),
                Points[I].RemoteRatio * 100.0,
                static_cast<unsigned long long>(Points[I].RemoteAccesses),
                static_cast<unsigned long long>(Points[I].DramAccesses),
                Points[I].StepsPerSec,
                static_cast<unsigned long long>(Points[I].Safepoints));
  }
  double BaseRatio = Points[0].RemoteRatio;
  std::printf("remote-ratio drop vs first-touch: %.1f%% (bind), "
              "%.1f%% (interleave)\n",
              (BaseRatio - Points[1].RemoteRatio) * 100.0,
              (BaseRatio - Points[2].RemoteRatio) * 100.0);

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out,
               "{\n  \"bench\": \"numa\",\n  \"quick\": %s,\n"
               "  \"sim_threads\": %u,\n  \"host_cores\": %u,\n"
               "  \"policies\": {\n",
               Quick ? "true" : "false", Base.SimThreads,
               std::thread::hardware_concurrency());
  for (int I = 0; I < 3; ++I)
    std::fprintf(
        Out,
        "    \"%s\": { \"remote_ratio\": %.4f, \"remote\": %llu, "
        "\"dram\": %llu, \"accesses\": %llu, \"steps\": %llu, "
        "\"safepoints\": %llu, \"per_sec\": %.0f, \"seconds\": %.6f }%s\n",
        numaPolicyName(Points[I].Policy), Points[I].RemoteRatio,
        static_cast<unsigned long long>(Points[I].RemoteAccesses),
        static_cast<unsigned long long>(Points[I].DramAccesses),
        static_cast<unsigned long long>(Points[I].Accesses),
        static_cast<unsigned long long>(Points[I].Steps),
        static_cast<unsigned long long>(Points[I].Safepoints),
        Points[I].StepsPerSec, Points[I].Seconds, I == 2 ? "" : ",");
  std::fprintf(Out, "  }\n}\n");
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
