//===- simspeed.cpp - Wall-clock simulator throughput benchmark -----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repo's wall-clock perf trajectory. Unlike the figure/table benches
/// (which report *simulated* cycles), this one measures how fast the
/// simulator itself runs on the host: interpreter steps per second and
/// simulated memory accesses per second, both native and under DJXPerf.
/// Results are written to BENCH_simspeed.json so CI can archive the
/// trajectory; every hot-path optimisation PR is measured against it.
///
/// Usage: bench_simspeed [--quick] [--out PATH]
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "bytecode/MethodBuilder.h"
#include "io/ProfileJournal.h"
#include "workloads/BytecodePrograms.h"
#include "workloads/Parallel.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

using namespace djx;

namespace {

/// Pre-optimisation baseline measured at the PR 2 fork point with the
/// release preset (same container class as CI). The JSON reports current
/// throughput against these so the trajectory is visible in one file;
/// ratios only carry meaning on comparable hosts.
constexpr double kBaselineInterpStepsPerSec = 87433966.0;
constexpr double kBaselineSimAccessesPerSec = 14655322.0;

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// One measured phase: best-of-N throughput plus the work/time detail of
/// the best repetition.
struct PhaseResult {
  double PerSec = 0;
  double Seconds = 0;
  uint64_t Units = 0;
  /// Profiled phases only: PMU samples handled / dropped (ring-overflow
  /// or injected), summed over all repetitions. Feeds the
  /// sample_keep_ratio metric — a sample path that silently starts
  /// shedding load would otherwise look like a throughput win.
  uint64_t Samples = 0;
  uint64_t Dropped = 0;
};

void keepBest(PhaseResult &Best, uint64_t Units, double Seconds) {
  double PerSec = Seconds > 0 ? static_cast<double>(Units) / Seconds : 0;
  if (PerSec > Best.PerSec) {
    Best.PerSec = PerSec;
    Best.Seconds = Seconds;
    Best.Units = Units;
  }
}

/// Interpreter phase: batik's makeRoom loop — method calls, allocation,
/// a primitive-array store loop, and GC churn, i.e. every interpreter
/// hot path at once.
PhaseResult interpPhase(bool Profiled, int Reps, int64_t Iters,
                        int64_t Nlen, bool Super = false) {
  PhaseResult Best;
  for (int R = 0; R < Reps; ++R) {
    VmConfig Cfg;
    Cfg.HeapBytes = 8ULL << 20;
    JavaVm Vm(Cfg);
    BytecodeProgram Program = buildBatikProgram(Vm.types());
    Program.load(Vm);
    JavaThread &T = Vm.startThread("simspeed", 0);
    Interpreter Interp(Vm, Program, T);
    if (Super) {
      TierConfig Tc;
      Tc.Tier = ExecTier::Super;
      Interp.setTier(Tc);
    }

    std::unique_ptr<DjxPerf> Prof;
    if (Profiled) {
      Prof = std::make_unique<DjxPerf>(Vm);
      Prof->instrument(Program, Interp);
      Prof->start();
    }

    Clock::time_point Start = Clock::now();
    Interp.run("Main.run", {Value::fromInt(Iters), Value::fromInt(Nlen)});
    double Seconds = secondsSince(Start);
    if (Prof) {
      Prof->stop();
      Best.Samples += Prof->samplesHandled();
      Best.Dropped += Prof->samplesDropped();
    }
    Vm.endThread(T);
    keepBest(Best, Interp.stepsExecuted(), Seconds);
  }
  return Best;
}

/// Simulated-access phase: a pointer-free hot loop of readWord/writeWord
/// over an array larger than L1+L2, so the cache/TLB/NUMA/PMU pipeline
/// runs at full tilt without interpreter dispatch in the way.
PhaseResult accessPhase(bool Profiled, int Reps, uint64_t Accesses) {
  PhaseResult Best;
  for (int R = 0; R < Reps; ++R) {
    VmConfig Cfg;
    Cfg.HeapBytes = 8ULL << 20;
    JavaVm Vm(Cfg);

    std::unique_ptr<DjxPerf> Prof;
    if (Profiled) {
      Prof = std::make_unique<DjxPerf>(Vm);
      Prof->start();
    }

    JavaThread &T = Vm.startThread("simspeed", 0);
    MethodId Main =
        Vm.methods().getOrRegister("SimSpeed", "main", {{0, 1}});
    FrameScope F(T, Main, 0);
    RootScope Roots(Vm);
    constexpr uint64_t Elems = (512 * 1024) / 8; // 512 KiB > L1+L2.
    ObjectRef &Hot =
        Roots.add(Vm.allocateArray(T, Vm.types().longArray(), Elems));

    Clock::time_point Start = Clock::now();
    uint64_t Acc = 0;
    for (uint64_t I = 0; I < Accesses; ++I) {
      uint64_t Off = (I % Elems) * 8;
      if ((I & 7) == 0)
        Vm.writeWord(T, Hot, Off, Acc);
      else
        Acc += Vm.readWord(T, Hot, Off);
    }
    double Seconds = secondsSince(Start);
    uint64_t Done = Vm.machine().stats().Accesses;
    if (Prof) {
      Prof->stop();
      Best.Samples += Prof->samplesHandled();
      Best.Dropped += Prof->samplesDropped();
    }
    Vm.endThread(T);
    keepBest(Best, Done, Seconds);
  }
  return Best;
}

/// Journaled parallel phase: the executor workload with --journal wired
/// exactly as the CLI wires it (a full epoch flushed at every round
/// barrier). Journaling is an observer; this metric pins its overhead
/// inside the same perf band as the other step rates.
PhaseResult journalPhase(int Reps, int64_t Iters) {
  PhaseResult Best;
  const std::string Path = "BENCH_journal.djxj.tmp";
  for (int R = 0; R < Reps; ++R) {
    ParallelConfig Pc;
    Pc.SimThreads = 2;
    Pc.Jobs = 2;
    Pc.Iters = Iters;
    Pc.Nlen = 128;
    Pc.HeapBytesPerThread = 512 << 10;
    JavaVm Vm(parallelVmConfig(Pc));
    DjxPerf Prof(Vm, parallelAgentConfig(Pc));
    Prof.start();
    JournalMeta Meta;
    Meta.Workload = "bench-journal";
    auto Journal = ProfileJournal::open(Path, Meta);
    Pc.OnRoundEnd = [&](uint64_t Round) {
      if (Journal)
        Journal->flush(Prof, Vm.methods(), Round);
      return false;
    };
    Clock::time_point Start = Clock::now();
    ParallelOutcome Run = runParallelWorkload(Vm, &Prof, Pc);
    double Seconds = secondsSince(Start);
    Prof.stop();
    if (Journal)
      Journal->closeClean(Prof, Vm.methods());
    Best.Samples += Prof.samplesHandled();
    Best.Dropped += Prof.samplesDropped();
    keepBest(Best, Run.Steps, Seconds);
  }
  std::remove(Path.c_str());
  return Best;
}

void jsonPhase(std::FILE *Out, const char *Name, const PhaseResult &P,
               bool Last = false) {
  std::fprintf(Out,
               "    \"%s\": { \"per_sec\": %.0f, \"units\": %llu, "
               "\"seconds\": %.6f }%s\n",
               Name, P.PerSec, static_cast<unsigned long long>(P.Units),
               P.Seconds, Last ? "" : ",");
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::string OutPath = "BENCH_simspeed.json";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc)
      OutPath = Argv[++I];
    else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", Argv[0]);
      return 2;
    }
  }

  const int Reps = Quick ? 2 : 3;
  const int64_t Iters = Quick ? 2000 : 10000;
  const int64_t Nlen = 256;
  const uint64_t Accesses = Quick ? 1000000 : 5000000;

  std::printf("=== simspeed: simulator wall-clock throughput ===\n");

  PhaseResult InterpNative = interpPhase(false, Reps, Iters, Nlen);
  std::printf("interpreter (native):    %12.0f steps/s   (%llu steps, "
              "%.3f s)\n",
              InterpNative.PerSec,
              static_cast<unsigned long long>(InterpNative.Units),
              InterpNative.Seconds);

  PhaseResult InterpProf = interpPhase(true, Reps, Iters, Nlen);
  std::printf("interpreter (profiled):  %12.0f steps/s   (%llu steps, "
              "%.3f s)\n",
              InterpProf.PerSec,
              static_cast<unsigned long long>(InterpProf.Units),
              InterpProf.Seconds);

  PhaseResult SuperNative =
      interpPhase(false, Reps, Iters, Nlen, /*Super=*/true);
  std::printf("super tier (native):     %12.0f steps/s   (%llu steps, "
              "%.3f s)\n",
              SuperNative.PerSec,
              static_cast<unsigned long long>(SuperNative.Units),
              SuperNative.Seconds);

  PhaseResult SuperProf = interpPhase(true, Reps, Iters, Nlen,
                                      /*Super=*/true);
  std::printf("super tier (profiled):   %12.0f steps/s   (%llu steps, "
              "%.3f s)\n",
              SuperProf.PerSec,
              static_cast<unsigned long long>(SuperProf.Units),
              SuperProf.Seconds);

  PhaseResult AccessNative = accessPhase(false, Reps, Accesses);
  std::printf("sim access (native):     %12.0f accesses/s (%llu accesses, "
              "%.3f s)\n",
              AccessNative.PerSec,
              static_cast<unsigned long long>(AccessNative.Units),
              AccessNative.Seconds);

  PhaseResult AccessProf = accessPhase(true, Reps, Accesses);
  std::printf("sim access (profiled):   %12.0f accesses/s (%llu accesses, "
              "%.3f s)\n",
              AccessProf.PerSec,
              static_cast<unsigned long long>(AccessProf.Units),
              AccessProf.Seconds);

  PhaseResult Journaled = journalPhase(Reps, Quick ? 100 : 300);
  std::printf("journaled mt (profiled): %12.0f steps/s   (%llu steps, "
              "%.3f s)\n",
              Journaled.PerSec,
              static_cast<unsigned long long>(Journaled.Units),
              Journaled.Seconds);

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n  \"bench\": \"simspeed\",\n  \"quick\": %s,\n"
                    "  \"metrics\": {\n",
               Quick ? "true" : "false");
  jsonPhase(Out, "interp_steps_per_sec", InterpNative);
  jsonPhase(Out, "interp_steps_per_sec_profiled", InterpProf);
  jsonPhase(Out, "super_steps_per_sec", SuperNative);
  jsonPhase(Out, "super_steps_per_sec_profiled", SuperProf);
  // Tier speedup on the same workload/host/run: the tiered compiler's
  // whole reason to exist, gated like any throughput metric (the leaf is
  // named per_sec so perf_diff.py bands it; it is really a ratio).
  {
    double Ratio = InterpNative.PerSec > 0
                       ? SuperNative.PerSec / InterpNative.PerSec
                       : 0;
    std::fprintf(Out,
                 "    \"super_vs_interp\": { \"per_sec\": %.4f },\n",
                 Ratio);
  }
  jsonPhase(Out, "sim_accesses_per_sec", AccessNative);
  jsonPhase(Out, "sim_accesses_per_sec_profiled", AccessProf);
  jsonPhase(Out, "journal_steps_per_sec", Journaled);
  // Sample drop rate across the profiled phases. Not a rate despite the
  // leaf name: "per_sec" is the key perf_diff.py treats as a gateable
  // leaf, and the ratio (kept / handled) is what the tight band in
  // bench/perf_gates.json pins at ~1.0 — a regression that sheds
  // samples under load fails the gate even if throughput improves.
  {
    uint64_t Handled =
        InterpProf.Samples + SuperProf.Samples + AccessProf.Samples;
    uint64_t Dropped =
        InterpProf.Dropped + SuperProf.Dropped + AccessProf.Dropped;
    double Keep =
        Handled > 0
            ? static_cast<double>(Handled - std::min(Handled, Dropped)) /
                  static_cast<double>(Handled)
            : 1.0;
    std::fprintf(Out,
                 "    \"sample_keep_ratio\": { \"per_sec\": %.6f, "
                 "\"handled\": %llu, \"dropped\": %llu }\n",
                 Keep, static_cast<unsigned long long>(Handled),
                 static_cast<unsigned long long>(Dropped));
  }
  std::fprintf(Out,
               "  },\n  \"baseline_pr2_preopt\": {\n"
               "    \"interp_steps_per_sec\": %.0f,\n"
               "    \"sim_accesses_per_sec\": %.0f\n  },\n"
               "  \"speedup_vs_baseline\": {\n"
               "    \"interp_steps_per_sec\": %.2f,\n"
               "    \"sim_accesses_per_sec\": %.2f\n  }\n}\n",
               kBaselineInterpStepsPerSec, kBaselineSimAccessesPerSec,
               InterpNative.PerSec / kBaselineInterpStepsPerSec,
               AccessNative.PerSec / kBaselineSimAccessesPerSec);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
