//===- table1_case_studies.cpp - Reproduces Table 1 -------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: whole-program speedups of the thirteen case-study
/// optimizations DJXPerf guided. For each application the harness (a)
/// profiles the baseline and reports the problematic object DJXPerf
/// surfaces, and (b) measures the baseline-vs-optimized speedup in
/// simulated cycles.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/TextTable.h"

#include <cstdio>

using namespace djx;

int main() {
  std::printf("=== Table 1: optimizations guided by DJXPerf ===\n"
              "WS = whole-program speedup (paper band reproduced in shape,"
              " not absolute)\n\n");

  TextTable T({"application", "problematic code", "optimization",
               "WS-paper", "WS-measured"});
  bool AllInBand = true;
  for (const CaseStudy &C : table1CaseStudies()) {
    auto [S, Ci] = measureSpeedup(C, 3);
    bool InBand = S >= C.MinSpeedup && S <= C.MaxSpeedup;
    AllInBand &= InBand;
    T.addRow({C.Application, C.ProblematicCode, C.Optimization,
              TextTable::fmtPlusMinus(C.PaperSpeedup, C.PaperError),
              TextTable::fmtPlusMinus(S, Ci) + (InBand ? "" : "  <-- !")});
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  T.print();
  std::printf("\n%s\n", AllInBand
                            ? "all measured speedups fall in the expected "
                              "bands (shape reproduced)"
                            : "WARNING: some speedups left their bands");
  return AllInBand ? 0 : 1;
}
