//===- table2_insignificant.cpp - Reproduces Table 2 -------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2 (§7.7): optimizing frequently-allocated objects with negligible
/// cache-miss shares yields negligible speedups. For each row the harness
/// reports the site's allocation count, its measured share of L1 misses
/// (DJXPerf's evidence that it is insignificant), and the speedup from
/// "optimizing" it anyway.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "core/Report.h"
#include "support/TextTable.h"
#include "workloads/Insignificant.h"

#include <cstdio>

using namespace djx;

int main() {
  std::printf("=== Table 2: optimizing insignificant objects ===\n"
              "paper: every row shows <1%% of L1 misses and ~0%% speedup,\n"
              "demonstrating why PMU metrics must gate bloat optimization\n"
              "(allocation counts above 1500 are scaled down; see"
              " EXPERIMENTS.md)\n\n");

  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, 32, 64}};
  Agent.MinObjectSize = 128; // Track the small objects for evidence.

  TextTable T({"application", "problematic code", "allocs-paper",
               "allocs-meas", "L1-miss share", "WS-paper", "WS-measured"});
  bool AllFlat = true;
  for (const InsignificantCase &IC : table2InsignificantCases()) {
    const CaseStudy &C = IC.Study;

    // Profile the baseline to measure the site's miss share.
    JavaVm Vm(C.Config);
    DjxPerf Prof(Vm, Agent);
    Prof.start();
    C.Baseline(Vm);
    Prof.stop();
    MergedProfile M = Prof.analyze();
    double Share = 0.0;
    uint64_t Allocs = 0;
    for (const auto &[Node, G] : M.Groups) {
      auto Path = M.Tree.path(Node);
      if (Path.empty())
        continue;
      if (Vm.methods().qualifiedName(Path.back().Method) ==
          C.ExpectClass + "." + C.ExpectMethod) {
        Share = M.shareOf(G, PerfEventKind::L1Miss);
        Allocs = G.AllocCount;
      }
    }

    auto [S, Ci] = measureSpeedup(C, 3);
    bool Flat = S >= C.MinSpeedup && S <= C.MaxSpeedup && Share < 0.05;
    AllFlat &= Flat;
    T.addRow({C.Application, C.ProblematicCode,
              std::to_string(IC.PaperAllocationTimes),
              std::to_string(Allocs), TextTable::fmtPercent(Share),
              TextTable::fmt(C.PaperSpeedup),
              TextTable::fmtPlusMinus(S, Ci) + (Flat ? "" : "  <-- !")});
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  T.print();
  std::printf("\n%s\n",
              AllFlat ? "all rows: negligible miss share, negligible speedup"
                      : "WARNING: some rows deviate");
  return AllFlat ? 0 : 1;
}
