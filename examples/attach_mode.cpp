//===- attach_mode.cpp - Attach/detach to a running service ------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §5.1: "DJXPerf can attach and detach to any running Java program ...
/// particularly useful to monitor long-running programs such as web
/// servers". A "service" loop runs request batches; the profiler attaches
/// for a measurement window mid-run, detaches, and the report covers only
/// the window. Objects allocated before attach are untracked, and objects
/// the GC moves while attached are picked up from their move records.
///
/// Run: ./build/examples/attach_mode
///
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"
#include "core/Report.h"

#include <cstdio>

using namespace djx;

namespace {

/// One batch of "requests": each request allocates a response buffer and
/// fills it.
void serveBatch(JavaVm &Vm, JavaThread &T, MethodId Handler, int Requests) {
  RootScope Roots(Vm);
  TypeId LongArr = Vm.types().longArray();
  for (int R = 0; R < Requests; ++R) {
    FrameScope F(T, Handler, 0);
    ObjectRef Buf = Vm.allocateArray(T, LongArr, 512); // 4 KiB response.
    for (int I = 0; I < 512; ++I)
      Vm.writeWord(T, Buf, static_cast<uint64_t>(I) * 8, R + I);
  }
}

} // namespace

int main() {
  VmConfig Cfg;
  Cfg.HeapBytes = 1 << 20; // Small heap: GC churn while attached.
  JavaVm Vm(Cfg);
  MethodId Handler =
      Vm.methods().getOrRegister("RequestHandler", "handle", {{0, 88}});
  JavaThread &Service = Vm.startThread("service-worker", 2);

  // The service has been running for a while before anyone profiles it.
  std::printf("service warming up (no profiler attached)...\n");
  serveBatch(Vm, Service, Handler, 300);

  // Ops engineer attaches DJXPerf to the live process.
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, 32, 64}};
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  std::printf("attached; sampling a measurement window...\n");
  serveBatch(Vm, Service, Handler, 300);
  Prof.stop();
  std::printf("detached; service keeps running unperturbed...\n");
  serveBatch(Vm, Service, Handler, 300);
  Vm.endThread(Service);

  std::printf("\nwindow stats: %llu allocation callbacks, %llu tracked,"
              " %llu samples\n",
              (unsigned long long)Prof.allocationCallbacks(),
              (unsigned long long)Prof.allocationsTracked(),
              (unsigned long long)Prof.samplesHandled());

  ReportOptions Opts;
  Opts.TopGroups = 3;
  Opts.ShowNuma = false;
  std::fputs(
      renderObjectCentric(Prof.analyze(), Vm.methods(), Opts).c_str(),
      stdout);
  std::printf("only the middle 300 requests were measured — overhead is"
              " paid solely during the window (§6: attach mode on"
              " production services).\n");
  return 0;
}
