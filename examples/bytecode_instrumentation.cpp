//===- bytecode_instrumentation.cpp - The ASM rewriting pathway --------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows the Java agent's bytecode half (§4.1): the batik makeRoom method
/// before and after the ASM-style pass wraps its `newarray` with
/// pre-/post-allocation hooks, then runs the instrumented program under
/// DJXPerf and prints the resulting object-centric profile.
///
/// Run: ./build/examples/bytecode_instrumentation
///
//===----------------------------------------------------------------------===//

#include "bytecode/Disassembler.h"
#include "core/DjxPerf.h"
#include "core/Report.h"
#include "workloads/BytecodePrograms.h"

#include <cstdio>

using namespace djx;

int main() {
  VmConfig Cfg;
  Cfg.HeapBytes = 4 << 20;
  JavaVm Vm(Cfg);
  BytecodeProgram Program = buildBatikProgram(Vm.types());
  Program.load(Vm);

  size_t MakeRoom = Program.methodIndex("ExtendedGeneralPath.makeRoom");
  std::printf("=== before instrumentation ===\n%s\n",
              disassemble(Program.method(MakeRoom)).c_str());

  DjxPerfConfig Agent;
  Agent.MinObjectSize = 1024;
  Agent.Events = {PerfEventAttr{PerfEventKind::MemAccess, 16, 64}};
  DjxPerf Prof(Vm, Agent);
  JavaThread &T = Vm.startThread("main", 0);
  Interpreter Interp(Vm, Program, T);
  unsigned Sites = Prof.instrument(Program, Interp);
  std::printf("=== after instrumentation (%u allocation site(s)) ===\n%s\n",
              Sites, disassemble(Program.method(MakeRoom)).c_str());

  for (const AllocationSite &S : Prof.sites().sites())
    std::printf("site %llu: %s at %s bci %u (line %u)\n",
                (unsigned long long)S.SiteId, opcodeName(S.AllocOp).c_str(),
                Vm.methods().qualifiedName(S.Method).c_str(), S.OriginalBci,
                S.Line);

  Prof.start();
  Interp.run("Main.run", {Value::fromInt(100), Value::fromInt(512)});
  Prof.stop();
  Vm.endThread(T);

  std::printf("\nexecuted %llu bytecode instructions; %llu allocation"
              " hooks fired\n\n",
              (unsigned long long)Interp.stepsExecuted(),
              (unsigned long long)Prof.allocationCallbacks());
  ReportOptions Opts;
  Opts.TopGroups = 2;
  Opts.ShowNuma = false;
  std::fputs(
      renderObjectCentric(Prof.analyze(), Vm.methods(), Opts).c_str(),
      stdout);
  return 0;
}
