//===- memory_bloat_hunt.cpp - Find and fix a memory-bloat bug ---------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks the full Listing 1 story (Dacapo batik, §1.1): profile the
/// makeRoom loop, see DJXPerf point at the nvals allocation site with a
/// large miss share, apply the singleton-pattern fix, and measure the
/// speedup plus peak-heap reduction.
///
/// Run: ./build/examples/memory_bloat_hunt
///
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"
#include "core/Report.h"
#include "workloads/Kernels.h"

#include <cstdio>

using namespace djx;

int main() {
  VmConfig Cfg;
  Cfg.HeapBytes = 2 << 20;

  BloatParams Batik;
  Batik.ClassName = "ExtendedGeneralPath";
  Batik.MethodName = "makeRoom";
  Batik.AllocLine = 743;
  Batik.CallerClass = "PathParser";
  Batik.CallerMethod = "parsePath";
  Batik.CallLine = 310;
  Batik.Iterations = 2478; // The paper's batik allocation count.
  Batik.ObjectBytes = 4096;
  Batik.AccessesPerObject = 512;

  std::printf("step 1: profile the suspicious run\n");
  std::printf("-----------------------------------\n");
  uint64_t BaselineCycles, BaselinePeak;
  {
    JavaVm Vm(Cfg);
    DjxPerfConfig Agent;
    Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, 64, 64}};
    DjxPerf Prof(Vm, Agent);
    Prof.start();
    JavaThread &T = Vm.startThread("main", 0);
    runBloatKernel(Vm, T, Batik);
    Vm.endThread(T);
    Prof.stop();
    BaselineCycles = Vm.totalCycles();
    BaselinePeak = Vm.peakHeapBytes();
    ReportOptions Opts;
    Opts.TopGroups = 3;
    Opts.ShowNuma = false;
    std::fputs(renderObjectCentric(Prof.analyze(), Vm.methods(), Opts)
                   .c_str(),
               stdout);
  }

  std::printf("step 2: apply the fix DJXPerf suggests (hoist the"
              " allocation: singleton pattern)\n");
  std::printf("--------------------------------------------------------"
              "-----------------------\n");
  BloatParams Fixed = Batik;
  Fixed.Hoist = true;
  uint64_t FixedCycles, FixedPeak;
  {
    JavaVm Vm(Cfg);
    JavaThread &T = Vm.startThread("main", 0);
    runBloatKernel(Vm, T, Fixed);
    Vm.endThread(T);
    FixedCycles = Vm.totalCycles();
    FixedPeak = Vm.peakHeapBytes();
  }

  std::printf("\nbaseline : %12llu cycles, peak heap %7llu KiB\n",
              (unsigned long long)BaselineCycles,
              (unsigned long long)(BaselinePeak / 1024));
  std::printf("fixed    : %12llu cycles, peak heap %7llu KiB\n",
              (unsigned long long)FixedCycles,
              (unsigned long long)(FixedPeak / 1024));
  std::printf("speedup  : %.2fx   (paper's batik fix: 1.15x +- 0.03)\n",
              static_cast<double>(BaselineCycles) /
                  static_cast<double>(FixedCycles));
  std::printf("note the peak-heap drop too — FindBugs' fix halved memory"
              " (1.8 GB -> 0.9 GB) in the paper.\n");
  return 0;
}
