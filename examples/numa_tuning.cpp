//===- numa_tuning.cpp - Diagnose and fix NUMA remote accesses ---------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §7.6 Apache Druid story: a bitmap is built by one thread (all its
/// pages land on that thread's node) and scanned by workers on every
/// node. DJXPerf's NUMA diagnosis (§4.3: move_pages + PERF_SAMPLE_CPU)
/// flags the remote-access rate; parallelizing allocation/initialisation
/// fixes it.
///
/// Run: ./build/examples/numa_tuning
///
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"
#include "core/Report.h"
#include "workloads/Kernels.h"

#include <cstdio>

using namespace djx;

static void profileOnce(const char *Label, const VmConfig &Cfg,
                        const NumaParams &P, uint64_t &CyclesOut) {
  JavaVm Vm(Cfg);
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, 64, 64}};
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  runNumaKernel(Vm, P);
  Prof.stop();
  CyclesOut = Vm.totalCycles();

  MergedProfile M = Prof.analyze();
  auto Sorted = M.groupsByMetric(PerfEventKind::L1Miss);
  std::printf("%s\n", Label);
  if (!Sorted.empty()) {
    const MergedGroup &G = *Sorted[0];
    auto Path = M.Tree.path(G.AllocNode);
    std::printf("  hottest object: %s (%s)\n",
                Path.empty() ? "<?>"
                             : Vm.methods()
                                   .qualifiedName(Path.back().Method)
                                   .c_str(),
                G.TypeName.c_str());
    double Remote = G.AddressSamples
                        ? static_cast<double>(G.RemoteSamples) /
                              static_cast<double>(G.AddressSamples)
                        : 0.0;
    std::printf("  NUMA remote accesses: %.1f%%  (%llu of %llu sampled)\n",
                Remote * 100.0, (unsigned long long)G.RemoteSamples,
                (unsigned long long)G.AddressSamples);
  }
  std::printf("  run cycles: %llu\n\n", (unsigned long long)CyclesOut);
}

int main() {
  VmConfig Cfg;
  Cfg.HeapBytes = 64ULL << 20;
  Cfg.Machine.L3 = CacheConfig{512 * 1024, 64, 16};

  NumaParams Druid;
  Druid.ArrayBytes = 8ULL << 20;
  Druid.Workers = 8;
  Druid.ReadsPerWorker = 1 << 17;

  std::printf("=== NUMA tuning with DJXPerf (the Apache Druid story) ==="
              "\n\n");
  uint64_t Before = 0, After = 0;
  Druid.Place = NumaParams::Placement::MasterFirstTouch;
  profileOnce("BEFORE: constructor thread first-touches every page", Cfg,
              Druid, Before);

  Druid.Place = NumaParams::Placement::WorkerPartitions;
  profileOnce("AFTER: parallel allocation+init (per-thread first touch)",
              Cfg, Druid, After);

  std::printf("throughput improvement: %.2fx  (paper: 1.75x +- 0.05,"
              " remote accesses -47%%)\n",
              static_cast<double>(Before) / static_cast<double>(After));

  std::printf("\nalternative fix (NPB SP, §7): numa_alloc_interleaved\n");
  Druid.Place = NumaParams::Placement::Interleaved;
  uint64_t Interleaved = 0;
  profileOnce("AFTER (interleaved): pages spread round-robin", Cfg, Druid,
              Interleaved);
  std::printf("interleaving improvement: %.2fx — remote rate stays ~50%%"
              " but both memory controllers share the load.\n",
              static_cast<double>(Before) /
                  static_cast<double>(Interleaved));
  return 0;
}
