//===- objectlayout_report.cpp - The Figure 5 GUI view -----------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Figure 5 presentation: the ObjectLayout case study's
/// object-centric view — the problematic intAddressableElements array's
/// allocation site, its full allocation call path, all access call paths
/// ordered by contribution, and the metrics pane — rendered as text
/// instead of the paper's Python GUI. Also writes the per-thread profile
/// files the offline analyzer consumes (Figure 3's workflow).
///
/// Run: ./build/examples/objectlayout_report [profile-output-dir]
///
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"
#include "core/Report.h"
#include "workloads/CaseStudies.h"

#include <cstdio>

using namespace djx;

int main(int Argc, char **Argv) {
  auto Cases = table1CaseStudies();
  const CaseStudy &C = findCaseStudy(Cases, "ObjectLayout 1.0.5");

  JavaVm Vm(C.Config);
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, 64, 64}};
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  C.Baseline(Vm);
  Prof.stop();

  // Figure 3 workflow: collector emits one profile file per thread; the
  // offline analyzer merges them.
  std::string Dir = Argc > 1 ? Argv[1] : "/tmp/djxperf_objectlayout";
  unsigned Files = Prof.writeProfiles(Dir);
  std::printf("collector wrote %u per-thread profile file(s) to %s\n",
              Files, Dir.c_str());

  auto Merged = mergeProfileDir(Dir);
  if (!Merged) {
    std::fprintf(stderr, "error: no profiles found in %s\n", Dir.c_str());
    return 1;
  }

  std::printf("\n=== DJXPerf top-down view (paper Figure 5) ===\n"
              "paper: the intAddressableElements allocation at\n"
              "AbstractStructuredArrayBase.allocateInternalStorage:292"
              " accounts for ~30%% of L1 misses;\nfour such objects cover"
              " 84%% of the program's misses.\n\n");
  ReportOptions Opts;
  Opts.TopGroups = 4;
  Opts.TopAccessContexts = 6;
  std::fputs(renderObjectCentric(*Merged, Vm.methods(), Opts).c_str(),
             stdout);

  std::printf("=== the same data, code-centric (what perf shows) ===\n\n");
  std::fputs(renderCodeCentric(*Merged, Vm.methods(), Opts).c_str(),
             stdout);
  return 0;
}
