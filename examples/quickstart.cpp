//===- quickstart.cpp - Five-minute DJXPerf tour -----------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build a tiny workload on the MiniJVM, profile it with
/// DJXPerf, and print the object-centric report. The workload allocates
/// two arrays; one is accessed with terrible locality (random strides),
/// one sequentially — the report ranks the former first.
///
/// Run: ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"
#include "core/Report.h"
#include "support/Random.h"

#include <cstdio>

using namespace djx;

int main() {
  // 1. Bring up a VM (heap, simulated caches/NUMA, PMU).
  JavaVm Vm;

  // 2. Construct the profiler (launch mode: before the workload) and
  //    start it. Default config: L1-miss sampling, S = 1 KiB.
  DjxPerfConfig Config;
  Config.Events = {PerfEventAttr{PerfEventKind::L1Miss, 64, 64}};
  DjxPerf Profiler(Vm, Config);
  Profiler.start();

  // 3. The "Java program": two allocation sites, two access patterns.
  JavaThread &Main = Vm.startThread("main", 0);
  MethodRegistry &MR = Vm.methods();
  MethodId MakeCold = MR.getOrRegister("Demo", "makeColdBuffer", {{0, 12}});
  MethodId MakeWarm = MR.getOrRegister("Demo", "makeWarmBuffer", {{0, 17}});
  MethodId Work = MR.getOrRegister("Demo", "work", {{0, 25}, {1, 26}});

  RootScope Roots(Vm);
  constexpr uint64_t kElems = 1 << 16; // 512 KiB each.
  ObjectRef &Cold = Roots.add();
  ObjectRef &Warm = Roots.add();
  {
    FrameScope F(Main, MakeCold, 0);
    Cold = Vm.allocateArray(Main, Vm.types().longArray(), kElems);
  }
  {
    FrameScope F(Main, MakeWarm, 0);
    Warm = Vm.allocateArray(Main, Vm.types().longArray(), kElems);
  }
  {
    FrameScope F(Main, Work, 0);
    Random Rng(7);
    uint64_t Acc = 0;
    for (int I = 0; I < 60000; ++I) {
      F.setBci(0); // line 25: random strides -> every access misses.
      Acc += Vm.readWord(Main, Cold, Rng.nextBelow(kElems) * 8);
      F.setBci(1); // line 26: sequential -> mostly L1 hits.
      Acc += Vm.readWord(Main, Warm,
                         (static_cast<uint64_t>(I) % kElems) * 8);
    }
    (void)Acc;
  }
  Vm.endThread(Main);

  // 4. Stop, analyze (merges per-thread profiles), report.
  Profiler.stop();
  MergedProfile Profile = Profiler.analyze();
  ReportOptions Opts;
  Opts.TopGroups = 5;
  std::fputs(renderObjectCentric(Profile, Vm.methods(), Opts).c_str(),
             stdout);

  std::printf("note: both buffers are the same size and receive the same"
              " number of reads;\nonly the *locality* differs — which is"
              " exactly what the PMU metrics expose.\n");
  return 0;
}
