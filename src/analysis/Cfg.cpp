//===- Cfg.cpp - Control-flow graph over bytecode --------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace djx;

namespace {

bool isTerminal(Opcode Op) {
  return Op == Opcode::Return || Op == Opcode::IReturn ||
         Op == Opcode::AReturn;
}

/// Flat successors of the instruction at \p Pc, clamped to the code.
void flatSuccessors(const std::vector<Instruction> &Code, uint32_t Pc,
                    std::vector<uint32_t> &Out) {
  Out.clear();
  const Instruction &I = Code[Pc];
  uint32_t N = static_cast<uint32_t>(Code.size());
  if (isTerminal(I.Op))
    return;
  if (I.Op == Opcode::Goto) {
    if (I.A >= 0 && static_cast<uint32_t>(I.A) < N)
      Out.push_back(static_cast<uint32_t>(I.A));
    return;
  }
  if (Pc + 1 < N)
    Out.push_back(Pc + 1);
  if (isBranch(I.Op) && I.A >= 0 && static_cast<uint32_t>(I.A) < N &&
      static_cast<uint32_t>(I.A) != Pc + 1)
    Out.push_back(static_cast<uint32_t>(I.A));
}

} // namespace

Cfg Cfg::build(const BytecodeMethod &M) {
  Cfg G;
  const std::vector<Instruction> &Code = M.Code;
  const uint32_t N = static_cast<uint32_t>(Code.size());
  assert(N > 0 && "CFG over empty code");

  // Leaders: pc 0, every branch target, and every pc after a control
  // transfer (including after terminals — the following code may still
  // be a branch target, or dead).
  std::vector<bool> Leader(N, false);
  Leader[0] = true;
  for (uint32_t Pc = 0; Pc < N; ++Pc) {
    const Instruction &I = Code[Pc];
    bool Transfer = isTerminal(I.Op) || I.Op == Opcode::Goto ||
                    isBranch(I.Op);
    if (Transfer && Pc + 1 < N)
      Leader[Pc + 1] = true;
    if ((I.Op == Opcode::Goto || isBranch(I.Op)) && I.A >= 0 &&
        static_cast<uint32_t>(I.A) < N)
      Leader[I.A] = true;
  }

  G.PcToBlock.assign(N, kNoBlock);
  for (uint32_t Pc = 0; Pc < N; ++Pc) {
    if (Leader[Pc]) {
      BasicBlock B;
      B.Start = Pc;
      G.Blocks.push_back(B);
    }
    G.PcToBlock[Pc] = static_cast<uint32_t>(G.Blocks.size() - 1);
    G.Blocks.back().End = Pc + 1;
  }

  std::vector<uint32_t> Succs;
  for (uint32_t BI = 0; BI < G.Blocks.size(); ++BI) {
    BasicBlock &B = G.Blocks[BI];
    flatSuccessors(Code, B.End - 1, Succs);
    for (uint32_t SuccPc : Succs) {
      uint32_t SB = G.PcToBlock[SuccPc];
      assert(SuccPc == G.Blocks[SB].Start && "edge into the middle of a block");
      B.Succs.push_back(SB);
    }
  }
  for (uint32_t BI = 0; BI < G.Blocks.size(); ++BI)
    for (uint32_t SB : G.Blocks[BI].Succs)
      G.Blocks[SB].Preds.push_back(BI);

  G.computeDominators();
  G.computeLoops();
  return G;
}

void Cfg::computeDominators() {
  const uint32_t NumBlocks = static_cast<uint32_t>(Blocks.size());
  // Reverse postorder via iterative DFS from the entry block.
  std::vector<uint8_t> Color(NumBlocks, 0); // 0 white, 1 on stack, 2 done
  std::vector<uint32_t> PostOrder;
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.emplace_back(0, 0);
  Color[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    if (NextSucc < Blocks[B].Succs.size()) {
      uint32_t S = Blocks[B].Succs[NextSucc++];
      if (Color[S] == 0) {
        Color[S] = 1;
        Stack.emplace_back(S, 0);
      }
    } else {
      Color[B] = 2;
      PostOrder.push_back(B);
      Stack.pop_back();
    }
  }
  Rpo.assign(PostOrder.rbegin(), PostOrder.rend());

  // Postorder numbers for the CHK intersect walk.
  std::vector<uint32_t> PoNum(NumBlocks, 0);
  for (uint32_t I = 0; I < PostOrder.size(); ++I)
    PoNum[PostOrder[I]] = I;

  Idom.assign(NumBlocks, kNoBlock);
  Idom[0] = 0;
  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (PoNum[A] < PoNum[B])
        A = Idom[A];
      while (PoNum[B] < PoNum[A])
        B = Idom[B];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : Rpo) {
      if (B == 0)
        continue;
      uint32_t NewIdom = kNoBlock;
      for (uint32_t P : Blocks[B].Preds) {
        if (Idom[P] == kNoBlock)
          continue; // Predecessor not yet reached.
        NewIdom = NewIdom == kNoBlock ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != kNoBlock && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool Cfg::dominates(uint32_t A, uint32_t B) const {
  if (Idom[A] == kNoBlock || Idom[B] == kNoBlock)
    return false;
  // Walk B's dominator chain up to the entry.
  while (true) {
    if (B == A)
      return true;
    if (B == 0)
      return false;
    B = Idom[B];
  }
}

void Cfg::computeLoops() {
  const uint32_t NumBlocks = static_cast<uint32_t>(Blocks.size());
  BlockLoopDepth.assign(NumBlocks, 0);
  for (uint32_t B = 0; B < NumBlocks; ++B)
    for (uint32_t S : Blocks[B].Succs)
      if (dominates(S, B))
        BackEdges.emplace_back(B, S);

  // Each back edge Tail->Head closes the natural loop {Head} ∪ {blocks
  // that reach Tail without passing through Head}; nesting depth of a
  // block is how many such loops contain it. Loops sharing a header
  // (two back edges into one head) count once.
  std::vector<std::vector<uint32_t>> HeadTails(NumBlocks);
  for (auto &[Tail, Head] : BackEdges)
    HeadTails[Head].push_back(Tail);
  for (uint32_t Head = 0; Head < NumBlocks; ++Head) {
    if (HeadTails[Head].empty())
      continue;
    std::vector<bool> InLoop(NumBlocks, false);
    InLoop[Head] = true;
    std::vector<uint32_t> Work;
    for (uint32_t Tail : HeadTails[Head])
      if (!InLoop[Tail]) {
        InLoop[Tail] = true;
        Work.push_back(Tail);
      }
    while (!Work.empty()) {
      uint32_t B = Work.back();
      Work.pop_back();
      for (uint32_t P : Blocks[B].Preds)
        if (!InLoop[P]) {
          InLoop[P] = true;
          Work.push_back(P);
        }
    }
    for (uint32_t B = 0; B < NumBlocks; ++B)
      if (InLoop[B])
        ++BlockLoopDepth[B];
  }
}

std::string Cfg::str() const {
  std::ostringstream OS;
  for (uint32_t BI = 0; BI < Blocks.size(); ++BI) {
    const BasicBlock &B = Blocks[BI];
    OS << "b" << BI << " [" << B.Start << "," << B.End << ")";
    if (!reachable(BI))
      OS << " unreachable";
    else if (BlockLoopDepth[BI] > 0)
      OS << " depth=" << BlockLoopDepth[BI];
    OS << " ->";
    for (uint32_t S : B.Succs)
      OS << " b" << S;
    OS << "\n";
  }
  return OS.str();
}
