//===- Cfg.h - Control-flow graph over bytecode -----------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graph for one bytecode method: basic blocks split at
/// branch targets and fall-ins, immediate dominators (iterative
/// Cooper-Harvey-Kennedy over reverse postorder), and natural-loop
/// nesting depth derived from back edges. This is the substrate every
/// dataflow pass in src/analysis/ runs on; the static allocation-site
/// report uses the loop depths directly (an allocation at depth 2 in a
/// hot method is the paper's classic object-centric finding).
///
/// The builder assumes structurally valid code (branch targets in
/// range, code ends on an unconditional transfer) — the Verifier's
/// structural pass runs first and gates everything downstream.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_ANALYSIS_CFG_H
#define DJX_ANALYSIS_CFG_H

#include "bytecode/ClassFile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace djx {

/// Half-open pc range [Start, End) of straight-line code plus its CFG
/// edges. Block indices are positions in Cfg::blocks(), entry first.
struct BasicBlock {
  uint32_t Start = 0;
  uint32_t End = 0;
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;
};

/// Sentinel for "no block" / "no dominator".
constexpr uint32_t kNoBlock = ~0u;

class Cfg {
public:
  /// Builds the CFG of \p M. Requires structurally valid code.
  static Cfg build(const BytecodeMethod &M);

  const std::vector<BasicBlock> &blocks() const { return Blocks; }

  /// Index of the block containing \p Pc (kNoBlock when out of range).
  uint32_t blockOf(uint32_t Pc) const {
    return Pc < PcToBlock.size() ? PcToBlock[Pc] : kNoBlock;
  }

  /// Immediate dominator of block \p B; the entry block's idom is
  /// itself, an entry-unreachable block's is kNoBlock.
  uint32_t idom(uint32_t B) const { return Idom[B]; }

  /// Does block \p A dominate block \p B? (Reflexive; false when either
  /// is unreachable from the entry.)
  bool dominates(uint32_t A, uint32_t B) const;

  /// True when block \p B lies on some path from the entry block.
  bool reachable(uint32_t B) const { return Idom[B] != kNoBlock; }

  /// Natural-loop nesting depth of the block containing \p Pc: 0 for
  /// straight-line code, 1 inside one loop, 2 doubly nested, ...
  unsigned loopDepth(uint32_t Pc) const {
    uint32_t B = blockOf(Pc);
    return B == kNoBlock ? 0 : BlockLoopDepth[B];
  }

  /// Back edges (Tail -> Head block indices) where Head dominates Tail;
  /// each one closes a natural loop.
  const std::vector<std::pair<uint32_t, uint32_t>> &backEdges() const {
    return BackEdges;
  }

  /// Reverse postorder over reachable blocks (entry first) — the
  /// iteration order that makes forward dataflow converge fastest.
  const std::vector<uint32_t> &rpo() const { return Rpo; }

  /// Multi-line debug listing ("b0 [0,4) -> b1 b2 ..."), for tests and
  /// oracle-building.
  std::string str() const;

private:
  std::vector<BasicBlock> Blocks;
  std::vector<uint32_t> PcToBlock;
  std::vector<uint32_t> Idom;
  std::vector<uint32_t> Rpo;
  std::vector<unsigned> BlockLoopDepth;
  std::vector<std::pair<uint32_t, uint32_t>> BackEdges;

  void computeDominators();
  void computeLoops();
};

} // namespace djx

#endif // DJX_ANALYSIS_CFG_H
