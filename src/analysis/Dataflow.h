//===- Dataflow.h - Generic worklist dataflow solver ------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worklist fixpoint engine shared by every pass in src/analysis/.
/// A problem supplies its lattice as a state type plus three callbacks;
/// the solver owns iteration order (reverse postorder for forward
/// problems, its mirror for backward ones) and the convergence loop.
/// Type-state inference and escape analysis run it forward; liveness
/// runs it backward.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_ANALYSIS_DATAFLOW_H
#define DJX_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"

#include <deque>
#include <vector>

namespace djx {

enum class DataflowDirection : uint8_t {
  Forward,  ///< Facts flow entry -> exit along CFG edges.
  Backward, ///< Facts flow exit -> entry against CFG edges.
};

/// Solves a dataflow problem to fixpoint over \p G and returns the
/// per-block input state (block entry for forward problems, block exit
/// for backward ones).
///
/// \p Problem must provide:
///   using State = ...;                 // copyable lattice element
///   State boundary();                  // entry (fwd) / exit (bwd) state
///   State initial();                   // bottom, for not-yet-reached
///   // Applies the block body; In is the block's input state.
///   State transfer(uint32_t Block, const State &In);
///   // Joins Src into Dest; returns true when Dest changed.
///   bool join(State &Dest, const State &Src);
template <typename P>
std::vector<typename P::State> solveDataflow(const Cfg &G,
                                             DataflowDirection Dir,
                                             P &Problem) {
  const std::vector<BasicBlock> &Blocks = G.blocks();
  const uint32_t NumBlocks = static_cast<uint32_t>(Blocks.size());
  std::vector<typename P::State> In(NumBlocks, Problem.initial());

  // Seed boundary blocks and build the visit order. Backward problems
  // seed every block with a terminal-ended body (no successors) — a
  // method can have several Return blocks.
  std::deque<uint32_t> Work;
  std::vector<bool> Queued(NumBlocks, false);
  auto Enqueue = [&](uint32_t B) {
    if (!Queued[B]) {
      Queued[B] = true;
      Work.push_back(B);
    }
  };
  if (Dir == DataflowDirection::Forward) {
    In[0] = Problem.boundary();
    Enqueue(0);
  } else {
    for (uint32_t B : G.rpo()) {
      if (Blocks[B].Succs.empty())
        In[B] = Problem.boundary();
      Enqueue(B); // Mirror of RPO would be ideal; a deque converges too.
    }
  }

  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    Queued[B] = false;
    typename P::State Out = Problem.transfer(B, In[B]);
    const std::vector<uint32_t> &Edges = Dir == DataflowDirection::Forward
                                             ? Blocks[B].Succs
                                             : Blocks[B].Preds;
    for (uint32_t Next : Edges)
      if (Problem.join(In[Next], Out))
        Enqueue(Next);
  }
  return In;
}

} // namespace djx

#endif // DJX_ANALYSIS_DATAFLOW_H
