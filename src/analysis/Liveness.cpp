//===- Liveness.cpp - Backward liveness of locals and stack slots ----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "analysis/Dataflow.h"
#include "bytecode/Verifier.h"

#include <cassert>

using namespace djx;

unsigned LivenessResult::liveStackSlotsAbove(uint32_t Pc,
                                             uint32_t FromDepth) const {
  if (!knownAt(Pc))
    return 0;
  unsigned N = 0;
  for (size_t I = FromDepth; I < StackAt[Pc].size(); ++I)
    N += StackAt[Pc][I] ? 1 : 0;
  return N;
}

namespace {

struct LiveState {
  std::vector<bool> Locals;
  std::vector<bool> Stack;
  bool Known = false;
};

struct LivenessProblem {
  using State = LiveState;
  const BytecodeMethod &M;
  const Cfg &G;
  const TypeStateResult &TS;

  State initial() { return {}; }

  State boundary() {
    State S;
    S.Known = true;
    S.Locals.assign(M.NumLocals, false);
    return S;
  }

  /// Stack depth entering \p Pc, or -1 when type-state never got there.
  int depthBefore(uint32_t Pc) const { return TS.depthAt(Pc); }

  /// Push count of the instruction at \p Pc, recovered from the exact
  /// depths (which resolves Invoke's callee-dependent push for free).
  int pushesOf(uint32_t Pc, int DBefore, int DAfter) const {
    StackEffect E = instructionStackEffect(M.Code[Pc]);
    if (M.Code[Pc].Op == Opcode::Invoke)
      return DAfter - DBefore + static_cast<int>(E.Pops);
    return static_cast<int>(E.Pushes);
  }

  /// Applies the instruction at \p Pc backwards: \p S is the state
  /// after it; on return it is the state before it. \p DBefore is the
  /// entering stack depth.
  void applyBackward(State &S, uint32_t Pc, int DBefore, int DAfter) {
    const Instruction &I = M.Code[Pc];
    StackEffect E = instructionStackEffect(I);
    int P = static_cast<int>(E.Pops);
    int Q = pushesOf(Pc, DBefore, DAfter);
    assert(static_cast<int>(S.Stack.size()) == DAfter && "depth drift");

    // Pull the liveness of the pushed result slots off, then append the
    // operand slots with their use-liveness.
    std::vector<bool> Pushed(S.Stack.end() - Q, S.Stack.end());
    S.Stack.resize(S.Stack.size() - Q);
    auto PushOperands = [&](std::initializer_list<bool> Ops) {
      for (bool L : Ops)
        S.Stack.push_back(L);
    };

    switch (I.Op) {
    case Opcode::Pop:
      PushOperands({false}); // The one opcode that discards its operand.
      break;
    case Opcode::Dup:
      // One operand, two result copies: used when either copy is.
      PushOperands({Pushed[0] || Pushed[1]});
      break;
    case Opcode::Swap:
      PushOperands({Pushed[1], Pushed[0]});
      break;
    case Opcode::ILoad:
    case Opcode::ALoad:
      // The local is read only when the loaded value is itself live.
      if (Pushed[0])
        S.Locals[I.A] = true;
      break;
    case Opcode::IStore:
    case Opcode::AStore:
      // The stored value matters only when the local is live below;
      // the store kills the local's previous value.
      PushOperands({S.Locals[I.A]});
      S.Locals[I.A] = false;
      break;
    case Opcode::AllocHookPost:
      // Peeks TOS: the hook observes it regardless of later uses.
      PushOperands({true});
      break;
    default:
      // Every other opcode observes all of its operands.
      for (int K = 0; K < P; ++K)
        S.Stack.push_back(true);
      break;
    }
    assert(static_cast<int>(S.Stack.size()) == DBefore && "depth drift");
  }

  /// Depth after the last instruction of \p B (its exit depth).
  int exitDepth(uint32_t B) const {
    const BasicBlock &Blk = G.blocks()[B];
    if (!Blk.Succs.empty())
      return depthBefore(G.blocks()[Blk.Succs[0]].Start);
    uint32_t Last = Blk.End - 1;
    int D = depthBefore(Last);
    if (D < 0)
      return -1;
    StackEffect E = instructionStackEffect(M.Code[Last]);
    return D - static_cast<int>(E.Pops) + static_cast<int>(E.Pushes);
  }

  /// True when every pc of \p B has a type-state depth (the backward
  /// walk needs them all).
  bool analyzable(uint32_t B) const {
    const BasicBlock &Blk = G.blocks()[B];
    for (uint32_t Pc = Blk.Start; Pc < Blk.End; ++Pc)
      if (depthBefore(Pc) < 0)
        return false;
    return exitDepth(B) >= 0;
  }

  State transfer(uint32_t B, const State &In) {
    if (!In.Known || !analyzable(B))
      return {};
    const BasicBlock &Blk = G.blocks()[B];
    State S = In;
    S.Locals.resize(M.NumLocals, false);
    S.Stack.resize(static_cast<size_t>(exitDepth(B)), false);
    for (uint32_t Pc = Blk.End; Pc-- > Blk.Start;) {
      int DBefore = depthBefore(Pc);
      int DAfter = Pc + 1 < Blk.End
                       ? depthBefore(Pc + 1)
                       : exitDepth(B);
      applyBackward(S, Pc, DBefore, DAfter);
    }
    return S;
  }

  bool join(State &Dest, const State &Src) {
    if (!Src.Known)
      return false;
    if (!Dest.Known) {
      Dest = Src;
      return true;
    }
    bool Changed = false;
    if (Dest.Locals.size() < Src.Locals.size())
      Dest.Locals.resize(Src.Locals.size(), false);
    for (size_t I = 0; I < Src.Locals.size(); ++I)
      if (Src.Locals[I] && !Dest.Locals[I]) {
        Dest.Locals[I] = true;
        Changed = true;
      }
    if (Dest.Stack.size() < Src.Stack.size())
      Dest.Stack.resize(Src.Stack.size(), false);
    for (size_t I = 0; I < Src.Stack.size(); ++I)
      if (Src.Stack[I] && !Dest.Stack[I]) {
        Dest.Stack[I] = true;
        Changed = true;
      }
    return Changed;
  }
};

} // namespace

LivenessResult djx::computeLiveness(const BytecodeMethod &M, const Cfg &G,
                                    const TypeStateResult &TS) {
  LivenessResult R;
  const size_t N = M.Code.size();
  R.LocalsAt.assign(N, {});
  R.StackAt.assign(N, {});
  R.Known.assign(N, false);

  LivenessProblem P{M, G, TS};
  std::vector<LiveState> Exit =
      solveDataflow(G, DataflowDirection::Backward, P);

  // Record pass: replay each analyzable block backwards once from its
  // fixpoint exit state, storing the per-pc before-states.
  for (uint32_t B = 0; B < G.blocks().size(); ++B) {
    if (!Exit[B].Known || !P.analyzable(B))
      continue;
    const BasicBlock &Blk = G.blocks()[B];
    LiveState S = Exit[B];
    S.Locals.resize(M.NumLocals, false);
    S.Stack.resize(static_cast<size_t>(P.exitDepth(B)), false);
    for (uint32_t Pc = Blk.End; Pc-- > Blk.Start;) {
      int DBefore = P.depthBefore(Pc);
      int DAfter = Pc + 1 < Blk.End ? P.depthBefore(Pc + 1) : P.exitDepth(B);
      P.applyBackward(S, Pc, DBefore, DAfter);
      R.LocalsAt[Pc] = S.Locals;
      R.StackAt[Pc] = S.Stack;
      R.Known[Pc] = true;
    }
  }
  return R;
}
