//===- Liveness.h - Backward liveness of locals and stack slots -*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward dataflow computing, for every pc, which local slots and
/// which operand-stack slots hold values that may still be observed
/// before being overwritten or discarded. A slot feeding only a Pop is
/// dead; a local rewritten before its next load is dead. Runs on the
/// same CFG/solver as type-state inference and uses its per-pc stack
/// depths to size the stack bit-vectors.
///
/// Consumers: the TraceCompiler's fusion gate (a side-exit fusion is
/// admitted when every stack slot the fused form fails to materialise
/// is dead at the exit target) and the analysis test oracles.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_ANALYSIS_LIVENESS_H
#define DJX_ANALYSIS_LIVENESS_H

#include "analysis/TypeState.h"

#include <vector>

namespace djx {

struct LivenessResult {
  /// Per pc (before the instruction executes): bit per local slot.
  std::vector<std::vector<bool>> LocalsAt;
  /// Per pc: bit per operand-stack slot, bottom up (size = stack depth
  /// entering the pc).
  std::vector<std::vector<bool>> StackAt;
  /// False where the backward fixpoint has no information (pc
  /// unreachable, or no path to any return).
  std::vector<bool> Known;

  bool knownAt(uint32_t Pc) const { return Pc < Known.size() && Known[Pc]; }
  bool localLiveAt(uint32_t Pc, uint32_t Slot) const {
    return knownAt(Pc) && Slot < LocalsAt[Pc].size() && LocalsAt[Pc][Slot];
  }
  bool stackLiveAt(uint32_t Pc, uint32_t Slot) const {
    return knownAt(Pc) && Slot < StackAt[Pc].size() && StackAt[Pc][Slot];
  }
  /// Number of live stack slots at or above \p FromDepth entering \p Pc
  /// (0 when the pc is unknown). The fusion gate asks for 0 here.
  unsigned liveStackSlotsAbove(uint32_t Pc, uint32_t FromDepth) const;
};

/// Computes liveness over \p M; \p TS supplies per-pc stack depths (and
/// reachability), so run type-state inference first.
LivenessResult computeLiveness(const BytecodeMethod &M, const Cfg &G,
                               const TypeStateResult &TS);

} // namespace djx

#endif // DJX_ANALYSIS_LIVENESS_H
