//===- MethodAnalysis.h - One-stop per-method analysis bundle ---*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience facade running the full src/analysis/ pipeline over one
/// method: CFG + dominators/loops, type-state inference (with escape
/// facts), and liveness. The TraceCompiler and the static allocation-
/// site report consume this; the Verifier drives the passes directly
/// because it wants the intermediate diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_ANALYSIS_METHODANALYSIS_H
#define DJX_ANALYSIS_METHODANALYSIS_H

#include "analysis/Liveness.h"

namespace djx {

struct MethodAnalysis {
  Cfg G;
  TypeStateResult Types;
  LivenessResult Live;

  static MethodAnalysis analyze(const BytecodeMethod &M,
                                const CalleeResolver &Resolve = nullptr) {
    MethodAnalysis A;
    A.G = Cfg::build(M);
    A.Types = inferTypeStates(M, A.G, Resolve);
    A.Live = computeLiveness(M, A.G, A.Types);
    return A;
  }
};

} // namespace djx

#endif // DJX_ANALYSIS_METHODANALYSIS_H
