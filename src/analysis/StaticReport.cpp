//===- StaticReport.cpp - Static + dynamic allocation-site report ----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/StaticReport.h"

#include "analysis/MethodAnalysis.h"
#include "pmu/PerfEvent.h"
#include "support/TextTable.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace djx;

std::vector<StaticSiteFacts>
djx::collectStaticSiteFacts(const BytecodeProgram &P,
                            const AllocationSiteTable &Sites) {
  // Linked Invoke operands are global method indices, so the resolver is
  // a table lookup; unlinked programs fall back to Incomplete analyses.
  CalleeResolver Resolve = nullptr;
  if (P.isLoaded())
    Resolve = [&P](const Instruction &I) -> const BytecodeMethod * {
      size_t Idx = static_cast<size_t>(I.A);
      return Idx < P.numMethods() ? &P.method(Idx) : nullptr;
    };

  std::vector<StaticSiteFacts> Facts(Sites.size());
  for (size_t I = 0; I < Sites.size(); ++I) {
    const AllocationSite &S = Sites.get(I);
    Facts[I].SiteId = S.SiteId;
    Facts[I].Method = S.Method;
    Facts[I].Line = S.Line;
    Facts[I].AllocOp = S.AllocOp;
  }

  for (const ClassFile &C : P.classes()) {
    for (const BytecodeMethod &M : C.Methods) {
      bool Instrumented = false;
      for (const Instruction &I : M.Code)
        if (I.Op == Opcode::AllocHookPre) {
          Instrumented = true;
          break;
        }
      if (!Instrumented)
        continue;

      MethodAnalysis A = MethodAnalysis::analyze(M, Resolve);
      for (uint32_t Pc = 0; Pc + 1 < M.Code.size(); ++Pc) {
        if (M.Code[Pc].Op != Opcode::AllocHookPre)
          continue;
        uint64_t SiteId = static_cast<uint64_t>(M.Code[Pc].A);
        if (SiteId >= Facts.size())
          continue; // Site table from a different instrumentation run.
        uint32_t AllocPc = Pc + 1;
        StaticSiteFacts &F = Facts[SiteId];
        F.MethodName = M.qualifiedName();
        F.LoopDepth = A.G.loopDepth(AllocPc);
        const AllocSiteFact *Site = A.Types.siteAtPc(AllocPc);
        // Proven facts require the fixpoint to have reached the site
        // with its ordinal tracked and every callee resolved; anything
        // less reports as unknown rather than falsely local.
        if (Site && Site->Tracked && !A.Types.Incomplete &&
            A.Types.reachable(AllocPc)) {
          F.Analyzed = true;
          F.Routes = Site->Routes;
        }
      }
    }
  }
  return Facts;
}

std::string djx::renderStaticReport(const std::vector<StaticSiteFacts> &Facts,
                                    const MergedProfile &Prof,
                                    const MethodRegistry &Methods,
                                    PerfEventKind Kind) {
  std::ostringstream OS;
  OS << "=== DJXPerf static allocation-site report ===\n";
  if (Facts.empty()) {
    OS << "no instrumented allocation sites (static analysis runs over "
          "bytecode-instrumented workloads)\n\n";
    return OS.str();
  }

  // Dynamic side of the join: aggregate every merged group under the
  // (method, line) of its allocation-context leaf frame. Instrumentation
  // shifts bcis but preserves source lines, so line is the stable key
  // shared with the AllocationSiteTable.
  struct DynAgg {
    uint64_t AllocCount = 0;
    uint64_t AllocBytes = 0;
    uint64_t Samples = 0;
  };
  std::map<std::pair<MethodId, uint32_t>, DynAgg> Dynamic;
  for (const auto &[Node, G] : Prof.Groups) {
    if (G.AllocNode == kCctRoot)
      continue;
    MethodId Leaf = Prof.Tree.methodOf(G.AllocNode);
    uint32_t Line = Methods.lineForBci(Leaf, Prof.Tree.bciOf(G.AllocNode));
    DynAgg &D = Dynamic[{Leaf, Line}];
    D.AllocCount += G.AllocCount;
    D.AllocBytes += G.AllocBytes;
    D.Samples += G.Metrics.get(Kind);
  }

  unsigned ProvenLocal = 0, Escaping = 0, Unknown = 0;
  for (const StaticSiteFacts &F : Facts) {
    if (!F.Analyzed)
      ++Unknown;
    else if (F.Routes == 0)
      ++ProvenLocal;
    else
      ++Escaping;
  }
  OS << Facts.size() << " instrumented site(s): " << ProvenLocal
     << " proven method-local, " << Escaping << " escaping, " << Unknown
     << " unknown\n";

  TextTable T({"site", "method", "line", "alloc", "loop", "escape",
               "allocs", "bytes", perfEventName(Kind)});
  uint64_t TotalSamples = Prof.Totals.get(Kind);
  for (const StaticSiteFacts &F : Facts) {
    std::string Escape = !F.Analyzed ? "unknown" : escapeRoutesStr(F.Routes);
    DynAgg D;
    auto It = Dynamic.find({F.Method, F.Line});
    if (It != Dynamic.end())
      D = It->second;
    std::string Samples = std::to_string(D.Samples);
    if (TotalSamples > 0 && D.Samples > 0)
      Samples += " (" +
                 TextTable::fmtPercent(static_cast<double>(D.Samples) /
                                       static_cast<double>(TotalSamples)) +
                 ")";
    T.addRow({"#" + std::to_string(F.SiteId),
              F.MethodName.empty() ? Methods.qualifiedName(F.Method)
                                   : F.MethodName,
              std::to_string(F.Line), opcodeName(F.AllocOp),
              "depth " + std::to_string(F.LoopDepth), Escape,
              std::to_string(D.AllocCount), std::to_string(D.AllocBytes),
              Samples});
  }
  OS << T.render() << "\n";
  return OS.str();
}
