//===- StaticReport.h - Static + dynamic allocation-site report -*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Joins the static-analysis view of allocation sites (escape class and
/// enclosing loop depth, from src/analysis/ over the instrumented
/// bytecode) with the dynamic object-centric profile (allocation counts
/// and PMU samples per site). The CLI's --static-report section renders
/// the join so a hot site shows both views at once: "escaping store
/// inside a depth-2 loop, 38% of L1 misses" is the paper's optimisation
/// recipe in one table row.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_ANALYSIS_STATICREPORT_H
#define DJX_ANALYSIS_STATICREPORT_H

#include "analysis/TypeState.h"
#include "core/Analyzer.h"
#include "instrument/AllocationInstrumenter.h"

#include <string>
#include <vector>

namespace djx {

/// Static facts about one instrumented allocation site, resolved to the
/// source coordinates the dynamic profile uses.
struct StaticSiteFacts {
  uint64_t SiteId = 0;
  MethodId Method = kInvalidMethod; ///< Registry id (profile join key).
  std::string MethodName;           ///< Qualified "Class.method".
  uint32_t Line = 0;                ///< Source line (profile join key).
  Opcode AllocOp = Opcode::New;
  /// Loop nesting depth of the allocation, from the dominator-based
  /// natural-loop pass (0 = straight-line code).
  unsigned LoopDepth = 0;
  /// EscapeRoute bits; meaningful only when Analyzed.
  uint8_t Routes = 0;
  /// False when the analysis could not prove anything for this site
  /// (unresolved callee, untracked ordinal, or unreachable): the report
  /// then shows the escape class as unknown.
  bool Analyzed = false;

  bool provenLocal() const { return Analyzed && Routes == 0; }
};

/// Runs the analysis pipeline over every instrumented method of the
/// loaded program \p P and returns one fact record per site in \p Sites,
/// in site-id order. Methods without allocation hooks are skipped.
std::vector<StaticSiteFacts>
collectStaticSiteFacts(const BytecodeProgram &P,
                       const AllocationSiteTable &Sites);

/// Renders the --static-report section: one row per site with its static
/// facts joined against \p Prof by (method, line) of each group's
/// allocation-context leaf frame. \p Kind selects the sample column.
std::string renderStaticReport(const std::vector<StaticSiteFacts> &Facts,
                               const MergedProfile &Prof,
                               const MethodRegistry &Methods,
                               PerfEventKind Kind);

} // namespace djx

#endif // DJX_ANALYSIS_STATICREPORT_H
