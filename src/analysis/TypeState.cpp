//===- TypeState.cpp - Abstract stack/locals type inference ----------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/TypeState.h"

#include "analysis/Dataflow.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace djx;

std::string AbsValue::str() const {
  if (Tags == 0)
    return "bottom";
  if (Tags == kTop)
    return "top";
  std::string Out;
  auto Add = [&](const char *Name) {
    if (!Out.empty())
      Out += "|";
    Out += Name;
  };
  if ((Tags & kIntAny) == kIntAny)
    Add("int");
  else if (Tags & kIntZero)
    Add("int0");
  else if (Tags & kIntNZ)
    Add("int");
  if (Tags & kNull)
    Add("null");
  if (Tags & kObj)
    Add("obj");
  if (Tags & kArr)
    Add("arr");
  if (Sites != 0) {
    Out += "@{";
    bool First = true;
    for (unsigned B = 0; B < 64; ++B)
      if (Sites & (1ull << B)) {
        if (!First)
          Out += ",";
        Out += std::to_string(B);
        First = false;
      }
    Out += "}";
  }
  return Out;
}

std::string djx::escapeRoutesStr(uint8_t Routes) {
  if (Routes == 0)
    return "none";
  std::string Out;
  auto Add = [&](const char *Name) {
    if (!Out.empty())
      Out += "+";
    Out += Name;
  };
  if (Routes & kEscStore)
    Add("store");
  if (Routes & kEscReturn)
    Add("return");
  if (Routes & kEscCall)
    Add("call");
  return Out;
}

const AllocSiteFact *TypeStateResult::siteAtPc(uint32_t Pc) const {
  for (const AllocSiteFact &S : Sites)
    if (S.Pc == Pc)
      return &S;
  return nullptr;
}

namespace {

/// Renders the top of the abstract stack for diagnostics.
std::string renderStack(const AbsFrame &F) {
  constexpr size_t kMaxSlots = 4;
  std::ostringstream OS;
  OS << "stack: [";
  size_t N = F.Stack.size();
  size_t First = N > kMaxSlots ? N - kMaxSlots : 0;
  if (First > 0)
    OS << "... ";
  for (size_t I = First; I < N; ++I) {
    if (I > First)
      OS << ", ";
    OS << F.Stack[I].str();
  }
  OS << "]";
  return OS.str();
}

/// Return-kind tag set of a callee: which of IReturn / AReturn its body
/// can reach the caller through.
uint8_t calleeReturnTags(const BytecodeMethod &Callee) {
  uint8_t T = 0;
  for (const Instruction &I : Callee.Code) {
    if (I.Op == Opcode::IReturn)
      T |= 1;
    else if (I.Op == Opcode::AReturn)
      T |= 2;
  }
  return T;
}

/// The instruction-level abstract interpreter. One instance drives both
/// the fixpoint (Record=false: pure transfer) and the final extraction
/// pass (Record=true: per-pc states, diagnostics, escape routes).
struct AbsInterp {
  const BytecodeMethod &M;
  const CalleeResolver &Resolve;
  TypeStateResult &R;
  /// Pc -> index into R.Sites (kNoBlock when not an allocation).
  std::vector<uint32_t> SiteIndex;
  bool Record = false;

  AbsInterp(const BytecodeMethod &M, const CalleeResolver &Resolve,
            TypeStateResult &R)
      : M(M), Resolve(Resolve), R(R) {
    SiteIndex.assign(M.Code.size(), kNoBlock);
    for (uint32_t Pc = 0; Pc < M.Code.size(); ++Pc)
      if (isAllocation(M.Code[Pc].Op)) {
        uint32_t Ord = static_cast<uint32_t>(R.Sites.size());
        SiteIndex[Pc] = Ord;
        AllocSiteFact F;
        F.Pc = Pc;
        F.Op = M.Code[Pc].Op;
        F.Tracked = Ord < 64;
        R.Sites.push_back(F);
      }
  }

  void error(uint32_t Pc, const std::string &Msg) {
    if (Record)
      R.Errors.push_back({Pc, Msg});
  }

  void escape(const AbsValue &V, uint8_t Route) {
    if (!Record || V.Sites == 0)
      return;
    for (unsigned B = 0; B < 64 && B < R.Sites.size(); ++B)
      if (V.Sites & (1ull << B))
        R.Sites[B].Routes |= Route;
  }

  uint64_t siteBit(uint32_t Pc) const {
    uint32_t Ord = SiteIndex[Pc];
    return Ord < 64 ? (1ull << Ord) : 0;
  }

  /// Applies the instruction at \p Pc to \p F. Returns false when the
  /// rest of the block cannot be reasoned about (operand underflow, or
  /// an Invoke with no resolution).
  bool apply(AbsFrame &F, uint32_t Pc) {
    const Instruction &I = M.Code[Pc];
    const std::string Op = opcodeName(I.Op);

    // Local indices are the structural verifier's job; hand-built code
    // reaching the analysis directly still must not fault it.
    switch (I.Op) {
    case Opcode::ILoad:
    case Opcode::IStore:
    case Opcode::ALoad:
    case Opcode::AStore:
      if (I.A < 0 || static_cast<size_t>(I.A) >= F.Locals.size()) {
        error(Pc, std::string(Op) + " local slot out of range");
        return false;
      }
      break;
    default:
      break;
    }

    auto Underflow = [&](size_t Pops) {
      if (F.Stack.size() >= Pops)
        return false;
      error(Pc, std::string("stack underflow: ") + Op + " pops " +
                    std::to_string(Pops) + " with " +
                    std::to_string(F.Stack.size()) + " on the stack");
      return true;
    };
    auto Pop = [&]() {
      AbsValue V = F.Stack.back();
      F.Stack.pop_back();
      return V;
    };
    auto Push = [&](AbsValue V) { F.Stack.push_back(V); };
    // "The popped operand must be able to be X": flag definite misuse
    // (no possible concrete value satisfies the opcode), then push on
    // with the shape the runtime assert would have guaranteed.
    auto NeedInt = [&](AbsValue &V, const std::string &What) {
      if (!V.mayInt()) {
        error(Pc, What + " (" + renderStack(F) + " <- after pop of " +
                      V.str() + ")");
        V = AbsValue::intAny();
      }
    };

    switch (I.Op) {
    case Opcode::Nop:
    case Opcode::Goto:
    case Opcode::Return:
    case Opcode::AllocHookPre:
      break;
    case Opcode::IConst:
      Push(AbsValue::intConst(I.A));
      break;
    case Opcode::ILoad: {
      AbsValue &L = F.Locals[I.A];
      if (!L.mayInt())
        error(Pc, "iload of a reference local L" + std::to_string(I.A) +
                      " (local: " + L.str() + ")");
      uint8_t T = L.Tags & AbsValue::kIntAny;
      Push(AbsValue::make(T ? T : AbsValue::kIntAny));
      break;
    }
    case Opcode::ALoad: {
      AbsValue &L = F.Locals[I.A];
      if (!L.mayALoad())
        error(Pc, "aload of an integer local L" + std::to_string(I.A) +
                      " (local: " + L.str() + ")");
      // A zero-initialised (int-tagged zero) slot loads as null.
      uint8_t T = (L.Tags & AbsValue::kRefAny) |
                  ((L.Tags & AbsValue::kIntZero) ? AbsValue::kNull : 0);
      Push(AbsValue::make(T ? T : AbsValue::kRefAny, L.Sites));
      break;
    }
    case Opcode::IStore: {
      if (Underflow(1))
        return false;
      AbsValue V = Pop();
      if (!V.mayInt())
        error(Pc, "istore of a reference into L" + std::to_string(I.A) +
                      " (value: " + V.str() + ")");
      uint8_t T = V.Tags & AbsValue::kIntAny;
      F.Locals[I.A] = AbsValue::make(T ? T : AbsValue::kIntAny);
      break;
    }
    case Opcode::AStore: {
      if (Underflow(1))
        return false;
      AbsValue V = Pop();
      if (!V.mayRefTagged())
        error(Pc, "astore of a non-reference into L" + std::to_string(I.A) +
                      " (value: " + V.str() + ")");
      uint8_t T = V.Tags & AbsValue::kRefAny;
      F.Locals[I.A] = AbsValue::make(T ? T : AbsValue::kRefAny, V.Sites);
      break;
    }
    case Opcode::Pop:
      if (Underflow(1))
        return false;
      Pop();
      break;
    case Opcode::Dup:
      if (Underflow(1))
        return false;
      Push(F.Stack.back());
      break;
    case Opcode::Swap:
      if (Underflow(2))
        return false;
      std::swap(F.Stack[F.Stack.size() - 1], F.Stack[F.Stack.size() - 2]);
      break;
    case Opcode::IAdd:
    case Opcode::ISub:
    case Opcode::IMul:
    case Opcode::IDiv:
    case Opcode::IRem:
    case Opcode::IAnd:
    case Opcode::IOr:
    case Opcode::IXor:
    case Opcode::IShl:
    case Opcode::IShr: {
      if (Underflow(2))
        return false;
      AbsValue B = Pop();
      AbsValue A = Pop();
      NeedInt(B, std::string(Op) + " on a reference operand");
      NeedInt(A, std::string(Op) + " on a reference operand");
      Push(AbsValue::intAny());
      break;
    }
    case Opcode::INeg: {
      if (Underflow(1))
        return false;
      AbsValue V = Pop();
      NeedInt(V, "ineg on a reference operand");
      Push(AbsValue::intAny());
      break;
    }
    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfGe: {
      if (Underflow(1))
        return false;
      AbsValue V = Pop();
      NeedInt(V, std::string(Op) + " on a reference operand");
      break;
    }
    case Opcode::IfICmpEq:
    case Opcode::IfICmpNe:
    case Opcode::IfICmpLt:
    case Opcode::IfICmpGe:
    case Opcode::IfICmpGt:
    case Opcode::IfICmpLe: {
      if (Underflow(2))
        return false;
      AbsValue B = Pop();
      AbsValue A = Pop();
      NeedInt(B, std::string(Op) + " on a reference operand");
      NeedInt(A, std::string(Op) + " on a reference operand");
      break;
    }
    case Opcode::IfNull:
    case Opcode::IfNonNull: {
      if (Underflow(1))
        return false;
      AbsValue V = Pop();
      if (!V.mayRefTagged() && !(V.Tags & AbsValue::kIntZero))
        error(Pc, std::string(Op) + " on an integer operand (value: " +
                      V.str() + ")");
      break;
    }
    case Opcode::New:
      Push(AbsValue::make(AbsValue::kObj, siteBit(Pc)));
      break;
    case Opcode::NewArray:
    case Opcode::ANewArray: {
      if (Underflow(1))
        return false;
      AbsValue Len = Pop();
      NeedInt(Len, std::string(Op) + " length must be an integer");
      Push(AbsValue::make(AbsValue::kArr, siteBit(Pc)));
      break;
    }
    case Opcode::MultiANewArray: {
      size_t NDims = I.B > 0 ? static_cast<size_t>(I.B) : 0;
      if (Underflow(NDims))
        return false;
      for (size_t D = 0; D < NDims; ++D) {
        AbsValue Len = Pop();
        NeedInt(Len, "multianewarray dimension must be an integer");
      }
      Push(AbsValue::make(AbsValue::kArr, siteBit(Pc)));
      break;
    }
    case Opcode::PALoad:
    case Opcode::AALoad: {
      if (Underflow(2))
        return false;
      AbsValue Idx = Pop();
      AbsValue Arr = Pop();
      NeedInt(Idx, std::string(Op) + " index must be an integer");
      if (!Arr.mayArray())
        error(Pc, std::string(Op) + " on a non-array operand (operand: " +
                      Arr.str() + ", " + renderStack(F) + ")");
      Push(I.Op == Opcode::PALoad ? AbsValue::intAny() : AbsValue::refAny());
      break;
    }
    case Opcode::PAStore: {
      if (Underflow(3))
        return false;
      AbsValue V = Pop();
      AbsValue Idx = Pop();
      AbsValue Arr = Pop();
      NeedInt(V, "pastore value must be an integer");
      NeedInt(Idx, "pastore index must be an integer");
      if (!Arr.mayArray())
        error(Pc, std::string("pastore on a non-array operand (operand: ") +
                      Arr.str() + ", " + renderStack(F) + ")");
      break;
    }
    case Opcode::AAStore: {
      if (Underflow(3))
        return false;
      AbsValue V = Pop();
      AbsValue Idx = Pop();
      AbsValue Arr = Pop();
      if (!V.mayRefTagged())
        error(Pc, "aastore of a non-reference value (value: " + V.str() +
                      ")");
      escape(V, kEscStore);
      NeedInt(Idx, "aastore index must be an integer");
      if (!Arr.mayArray())
        error(Pc, std::string("aastore on a non-array operand (operand: ") +
                      Arr.str() + ")");
      break;
    }
    case Opcode::ArrayLength: {
      if (Underflow(1))
        return false;
      AbsValue Arr = Pop();
      if (!Arr.mayArray())
        error(Pc, "arraylength on a non-array operand (operand: " +
                      Arr.str() + ")");
      Push(AbsValue::intAny());
      break;
    }
    case Opcode::GetField:
    case Opcode::GetRefField: {
      if (Underflow(1))
        return false;
      AbsValue Obj = Pop();
      if (!Obj.mayObject())
        error(Pc, std::string(Op) + " on a non-object operand (operand: " +
                      Obj.str() + ")");
      Push(I.Op == Opcode::GetField ? AbsValue::intAny()
                                    : AbsValue::refAny());
      break;
    }
    case Opcode::PutField: {
      if (Underflow(2))
        return false;
      AbsValue V = Pop();
      AbsValue Obj = Pop();
      NeedInt(V, "putfield value must be an integer");
      if (!Obj.mayObject())
        error(Pc, "putfield on a non-object operand (operand: " +
                      Obj.str() + ")");
      break;
    }
    case Opcode::PutRefField: {
      if (Underflow(2))
        return false;
      AbsValue V = Pop();
      AbsValue Obj = Pop();
      if (!V.mayRefTagged())
        error(Pc, "putreffield of a non-reference value (value: " +
                      V.str() + ")");
      escape(V, kEscStore);
      if (!Obj.mayObject())
        error(Pc, "putreffield on a non-object operand (operand: " +
                      Obj.str() + ")");
      break;
    }
    case Opcode::Invoke: {
      size_t NArgs = I.B > 0 ? static_cast<size_t>(I.B) : 0;
      if (Underflow(NArgs))
        return false;
      const BytecodeMethod *Callee = Resolve ? Resolve(I) : nullptr;
      if (!Callee) {
        R.Incomplete = true;
        return false;
      }
      for (size_t A = 0; A < NArgs; ++A) {
        AbsValue V = Pop();
        escape(V, kEscCall);
      }
      switch (calleeReturnTags(*Callee)) {
      case 1:
        Push(AbsValue::intAny());
        break;
      case 2:
        Push(AbsValue::refAny());
        break;
      case 3:
        Push(AbsValue::top());
        break;
      default:
        break;
      }
      break;
    }
    case Opcode::IReturn: {
      if (Underflow(1))
        return false;
      AbsValue V = Pop();
      NeedInt(V, "ireturn of a reference");
      break;
    }
    case Opcode::AReturn: {
      if (Underflow(1))
        return false;
      AbsValue V = Pop();
      if (!V.mayRefTagged())
        error(Pc, "areturn of a non-reference (value: " + V.str() + ")");
      escape(V, kEscReturn);
      break;
    }
    case Opcode::AllocHookPost: {
      if (Underflow(1))
        return false;
      // Peeks (and requires) the freshly allocated ref on TOS.
      if (!F.Stack.back().mayRefTagged())
        error(Pc, "allochook_post without a reference on TOS (" +
                      renderStack(F) + ")");
      break;
    }
    }
    return true;
  }
};

/// The dataflow problem: states are abstract frames at block entry.
struct TypeStateProblem {
  using State = AbsFrame;
  const BytecodeMethod &M;
  const Cfg &G;
  AbsInterp &AI;
  /// Depth-mismatch joins observed (target block -> the two depths);
  /// reported once per block by the extraction pass.
  std::vector<std::pair<int, int>> Conflicts;

  TypeStateProblem(const BytecodeMethod &M, const Cfg &G, AbsInterp &AI)
      : M(M), G(G), AI(AI) {
    Conflicts.assign(G.blocks().size(), {-1, -1});
  }

  State initial() { return {}; }

  State boundary() {
    State F;
    F.Reachable = true;
    F.Locals.assign(M.NumLocals, AbsValue::make(AbsValue::kIntZero));
    // Argument slots arrive from the caller with unknown shapes.
    for (uint32_t A = 0; A < M.NumArgs && A < M.NumLocals; ++A)
      F.Locals[A] = AbsValue::top();
    return F;
  }

  State transfer(uint32_t Block, const State &In) {
    if (!In.Reachable)
      return {};
    State Out = In;
    const BasicBlock &B = G.blocks()[Block];
    for (uint32_t Pc = B.Start; Pc < B.End; ++Pc)
      if (!AI.apply(Out, Pc))
        return {};
    return Out;
  }

  bool join(State &Dest, const State &Src) {
    return joinInto(Dest, Src, kNoBlock);
  }

  bool joinInto(State &Dest, const State &Src, uint32_t DestBlock) {
    if (!Src.Reachable)
      return false;
    if (!Dest.Reachable) {
      Dest = Src;
      return true;
    }
    bool Changed = false;
    assert(Dest.Locals.size() == Src.Locals.size());
    for (size_t I = 0; I < Dest.Locals.size(); ++I)
      Changed |= Dest.Locals[I].join(Src.Locals[I]);
    if (Dest.Stack.size() != Src.Stack.size()) {
      // Merging frames of different depths is a verification error; keep
      // Dest's stack (no sound merge exists) and remember the conflict.
      if (DestBlock != kNoBlock && Conflicts[DestBlock].first < 0) {
        Conflicts[DestBlock] = {static_cast<int>(Dest.Stack.size()),
                                static_cast<int>(Src.Stack.size())};
        Changed = true;
      }
      return Changed;
    }
    for (size_t I = 0; I < Dest.Stack.size(); ++I)
      Changed |= Dest.Stack[I].join(Src.Stack[I]);
    return Changed;
  }
};

} // namespace

TypeStateResult djx::inferTypeStates(const BytecodeMethod &M, const Cfg &G,
                                     const CalleeResolver &Resolve) {
  TypeStateResult R;
  R.AtPc.assign(M.Code.size(), {});
  AbsInterp AI(M, Resolve, R);
  TypeStateProblem P(M, G, AI);

  // Fixpoint (pure transfers: no diagnostics, no escape recording).
  std::vector<AbsFrame> In = solveDataflow(G, DataflowDirection::Forward, P);

  // Re-join every edge once against the fixpoint to attribute depth
  // conflicts to their target blocks (the solver's joins mutated the
  // vector as it grew, so attribution there would be unstable).
  {
    std::vector<AbsFrame> Out(G.blocks().size());
    for (uint32_t B = 0; B < G.blocks().size(); ++B)
      Out[B] = P.transfer(B, In[B]);
    for (uint32_t B = 0; B < G.blocks().size(); ++B)
      for (uint32_t S : G.blocks()[B].Succs)
        P.joinInto(In[S], Out[B], S);
  }

  // Extraction pass: replay each reachable block from its fixpoint
  // in-state in RPO (deterministic diagnostics order), recording per-pc
  // states, type errors, and escape routes.
  AI.Record = true;
  for (uint32_t B : G.rpo()) {
    const BasicBlock &Blk = G.blocks()[B];
    AbsFrame F = In[B];
    if (auto [D1, D2] = P.Conflicts[B]; D1 >= 0)
      R.Errors.push_back(
          {Blk.Start, "operand stack depth mismatch at merge (" +
                          std::to_string(D1) + " vs " + std::to_string(D2) +
                          ")"});
    if (!F.Reachable)
      continue;
    for (uint32_t Pc = Blk.Start; Pc < Blk.End; ++Pc) {
      R.AtPc[Pc] = F;
      if (!AI.apply(F, Pc))
        break;
    }
  }

  // Entry-unreachable code is dead by construction; report it unless an
  // unresolved Invoke left reachability partial. (CFG reachability is
  // structural, so this cannot false-positive on executed code.)
  if (!R.Incomplete)
    for (uint32_t B = 0; B < G.blocks().size(); ++B)
      if (!G.reachable(B))
        R.Errors.push_back({G.blocks()[B].Start,
                            "unreachable code (no control path from method "
                            "entry reaches this block)"});

  // Keep diagnostics sorted by pc for stable caller-side aggregation.
  std::stable_sort(R.Errors.begin(), R.Errors.end(),
                   [](const TypeStateError &A, const TypeStateError &B) {
                     return A.Pc < B.Pc;
                   });
  return R;
}
