//===- TypeState.h - Abstract stack/locals type inference -------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward dataflow over an abstract interpreter state: per-pc operand
/// stack and locals, each slot an AbsValue over the Int/Ref/ArrayRef/Top
/// lattice (refined with null/zero knowledge so the checks exactly
/// mirror the flat dispatch loop's runtime asserts). References also
/// carry the set of in-method allocation sites that may have produced
/// them, which makes allocation-site escape analysis a by-product of
/// the same fixpoint: a site escapes its method when one of its values
/// is stored into the heap, returned, or passed to a callee.
///
/// Error policy is *definite misuse only*: an operand is flagged when no
/// possible concrete value it abstracts satisfies the opcode (zero
/// false positives on valid code by construction — Top is never an
/// error). This is what upgrades the Verifier from underflow-only to
/// full type-state checking, and what the TraceCompiler consults to
/// prove fusions and hook-spanning traces safe.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_ANALYSIS_TYPESTATE_H
#define DJX_ANALYSIS_TYPESTATE_H

#include "analysis/Cfg.h"

#include <functional>
#include <string>
#include <vector>

namespace djx {

/// One abstract slot: the set of runtime tag shapes the value may have,
/// plus the allocation sites (bit N = the method's Nth allocation
/// instruction) that may have produced it when it can be a reference.
struct AbsValue {
  // A slot's concrete runtime shape is one of: an int-tagged zero (also
  // legal for aload — the interpreter treats it as null), an int-tagged
  // nonzero, a ref-tagged null, a plain object ref, or an array ref.
  static constexpr uint8_t kIntZero = 1;
  static constexpr uint8_t kIntNZ = 2;
  static constexpr uint8_t kNull = 4;
  static constexpr uint8_t kObj = 8;
  static constexpr uint8_t kArr = 16;
  static constexpr uint8_t kIntAny = kIntZero | kIntNZ;
  static constexpr uint8_t kRefAny = kNull | kObj | kArr;
  static constexpr uint8_t kTop = kIntAny | kRefAny;

  uint8_t Tags = 0; ///< Empty set = bottom (unreachable).
  uint64_t Sites = 0;

  static AbsValue top() { return {kTop, 0}; }
  static AbsValue intAny() { return {kIntAny, 0}; }
  static AbsValue intConst(int64_t V) {
    return {V == 0 ? kIntZero : kIntNZ, 0};
  }
  static AbsValue refAny() { return {kRefAny, 0}; }
  static AbsValue make(uint8_t Tags, uint64_t Sites = 0) {
    return {Tags, Sites};
  }

  bool mayInt() const { return (Tags & kIntAny) != 0; }
  bool mayRefTagged() const { return (Tags & kRefAny) != 0; }
  bool mayObject() const { return (Tags & (kObj | kArr)) != 0; }
  bool mayArray() const { return (Tags & kArr) != 0; }
  /// May this slot satisfy the interpreter's aload assert
  /// (IsRef || Bits == 0)?
  bool mayALoad() const { return (Tags & (kRefAny | kIntZero)) != 0; }

  bool join(const AbsValue &O) {
    uint8_t T = Tags | O.Tags;
    uint64_t S = Sites | O.Sites;
    bool Changed = T != Tags || S != Sites;
    Tags = T;
    Sites = S;
    return Changed;
  }

  /// Compact rendering for diagnostics: "int", "null", "obj@{1}",
  /// "arr", "int|null", "top", ...
  std::string str() const;
};

/// Abstract frame at one pc: locals and the operand stack (bottom up).
struct AbsFrame {
  std::vector<AbsValue> Locals;
  std::vector<AbsValue> Stack;
  bool Reachable = false;
};

/// How an allocation site's object leaves its allocating method.
enum EscapeRoute : uint8_t {
  kEscStore = 1,  ///< Stored into the heap (putreffield / aastore).
  kEscReturn = 2, ///< Returned (areturn).
  kEscCall = 4,   ///< Passed as an Invoke argument.
};

/// "none" or a "+"-joined route list ("store+call").
std::string escapeRoutesStr(uint8_t Routes);

/// Static facts about one allocation instruction, in code order.
struct AllocSiteFact {
  uint32_t Pc = 0; ///< Pc of the allocation opcode itself.
  Opcode Op = Opcode::Nop;
  uint8_t Routes = 0;
  /// False when the method has more sites than the 64-bit site mask
  /// tracks; such a site is conservatively treated as escaping.
  bool Tracked = true;
  bool escapes() const { return !Tracked || Routes != 0; }
};

struct TypeStateError {
  uint32_t Pc = 0;
  std::string Msg; ///< Includes the rendered inferred state.
};

/// Resolves an Invoke instruction to its callee, or null when unknown.
using CalleeResolver =
    std::function<const BytecodeMethod *(const Instruction &)>;

struct TypeStateResult {
  /// An Invoke could not be resolved: states downstream of it are
  /// missing and reachability is partial (no unreachable-code claims).
  bool Incomplete = false;
  /// In-state (before execution) per pc; Reachable=false where the
  /// fixpoint never arrived.
  std::vector<AbsFrame> AtPc;
  std::vector<TypeStateError> Errors;
  /// Per allocation instruction, in code order (bit N of a value's site
  /// mask refers to Sites[N]).
  std::vector<AllocSiteFact> Sites;

  bool reachable(uint32_t Pc) const {
    return Pc < AtPc.size() && AtPc[Pc].Reachable;
  }
  /// Operand-stack depth entering \p Pc; -1 when unreachable/unknown.
  int depthAt(uint32_t Pc) const {
    return reachable(Pc) ? static_cast<int>(AtPc[Pc].Stack.size()) : -1;
  }
  /// The site fact whose allocation opcode sits at \p Pc, if any.
  const AllocSiteFact *siteAtPc(uint32_t Pc) const;
};

/// Runs the type-state fixpoint over \p M. \p Resolve may be null: any
/// Invoke then marks the result Incomplete (facts before it are valid).
TypeStateResult inferTypeStates(const BytecodeMethod &M, const Cfg &G,
                                const CalleeResolver &Resolve = nullptr);

} // namespace djx

#endif // DJX_ANALYSIS_TYPESTATE_H
