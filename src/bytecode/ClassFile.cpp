//===- ClassFile.cpp - Bytecode methods, classes, programs -----------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bytecode/ClassFile.h"

#include "bytecode/Verifier.h"
#include "jvm/JavaVm.h"
#include "support/VmError.h"

#include <cassert>
#include <unordered_map>

using namespace djx;

size_t BytecodeProgram::addClass(ClassFile C) {
  assert(!Loaded && "cannot add classes after load()");
  Classes.push_back(std::move(C));
  return Classes.size() - 1;
}

void BytecodeProgram::load(JavaVm &Vm) {
  assert(!Loaded && "program already loaded");
  // Class-load-time verification: reject malformed programs (bad operand
  // counts, out-of-range jump targets, arity mismatches) with a typed
  // error before any of it can reach the interpreter's asserts.
  VerifyResult VR = verifyProgram(*this);
  if (!VR.ok()) {
    std::string Msg = "program verification failed: ";
    for (size_t I = 0; I < VR.Errors.size(); ++I) {
      if (I) {
        if (I >= 4) {
          Msg += "; (+" + std::to_string(VR.Errors.size() - I) + " more)";
          break;
        }
        Msg += "; ";
      }
      Msg += VR.Errors[I];
    }
    throw VmError(VmErrorKind::InvalidBytecode, Msg);
  }
  std::unordered_map<std::string, size_t> NameToIndex;
  for (size_t CI = 0; CI < Classes.size(); ++CI) {
    ClassFile &C = Classes[CI];
    for (size_t MI = 0; MI < C.Methods.size(); ++MI) {
      BytecodeMethod &M = C.Methods[MI];
      assert(M.ClassName == C.Name && "method/class name mismatch");
      size_t Index = MethodList.size();
      bool Fresh = NameToIndex.emplace(M.qualifiedName(), Index).second;
      (void)Fresh;
      assert(Fresh && "duplicate method name in program");
      MethodList.emplace_back(CI, MI);
      M.RegistryId =
          Vm.methods().registerMethod(M.ClassName, M.MethodName, M.LineTable);
    }
  }
  // Link Invoke sites: rewrite A from a CalleeRefs index to the global
  // method index.
  for (auto &[CI, MI] : MethodList) {
    BytecodeMethod &M = Classes[CI].Methods[MI];
    for (Instruction &I : M.Code) {
      if (I.Op != Opcode::Invoke)
        continue;
      assert(I.A >= 0 &&
             static_cast<size_t>(I.A) < M.CalleeRefs.size() &&
             "bad callee table index");
      const std::string &Callee = M.CalleeRefs[I.A];
      auto It = NameToIndex.find(Callee);
      assert(It != NameToIndex.end() && "unresolved callee");
      I.A = static_cast<int64_t>(It->second);
    }
  }
  Loaded = true;
}

size_t BytecodeProgram::methodIndex(const std::string &QualifiedName) const {
  assert(Loaded && "program not loaded");
  for (size_t I = 0; I < MethodList.size(); ++I)
    if (method(I).qualifiedName() == QualifiedName)
      return I;
  assert(false && "unknown method");
  return 0;
}

BytecodeMethod &BytecodeProgram::method(size_t Index) {
  assert(Index < MethodList.size() && "method index out of range");
  auto &[CI, MI] = MethodList[Index];
  return Classes[CI].Methods[MI];
}

const BytecodeMethod &BytecodeProgram::method(size_t Index) const {
  assert(Index < MethodList.size() && "method index out of range");
  const auto &[CI, MI] = MethodList[Index];
  return Classes[CI].Methods[MI];
}
