//===- ClassFile.h - Bytecode methods, classes, programs --------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Containers for bytecode: a BytecodeMethod (code + line table + callee
/// references), a ClassFile grouping methods, and a BytecodeProgram that
/// links Invoke sites by qualified name and registers every method with
/// the VM's MethodRegistry (so profilers can symbolise frames).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_BYTECODE_CLASSFILE_H
#define DJX_BYTECODE_CLASSFILE_H

#include "bytecode/Opcode.h"
#include "jvm/MethodRegistry.h"

#include <string>
#include <vector>

namespace djx {

class JavaVm;

/// One bytecode method body.
struct BytecodeMethod {
  std::string ClassName;
  std::string MethodName;
  std::vector<Instruction> Code;
  /// Sorted (BCI, source line) pairs.
  std::vector<LineEntry> LineTable;
  /// Number of local variable slots (arguments occupy slots 0..N-1).
  uint32_t NumLocals = 0;
  uint32_t NumArgs = 0;
  /// Qualified callee names referenced by Invoke instructions; the A
  /// operand of an unlinked Invoke indexes this table.
  std::vector<std::string> CalleeRefs;
  /// Filled by BytecodeProgram::load: the registry id for this method.
  MethodId RegistryId = kInvalidMethod;

  std::string qualifiedName() const { return ClassName + "." + MethodName; }
};

/// A group of methods sharing a class name.
struct ClassFile {
  std::string Name;
  std::vector<BytecodeMethod> Methods;
};

/// A linked program: all classes, with Invoke operands resolved to global
/// method indices and methods registered in the VM's MethodRegistry.
class BytecodeProgram {
public:
  /// Adds a class before load(). Returns its index.
  size_t addClass(ClassFile C);

  /// Registers every method with \p Vm and links Invoke sites. Must be
  /// called exactly once before execution; asserts on unresolved callees.
  void load(JavaVm &Vm);

  /// True once load() has run.
  bool isLoaded() const { return Loaded; }

  /// Global method index for "Class.method"; asserts when missing.
  size_t methodIndex(const std::string &QualifiedName) const;

  BytecodeMethod &method(size_t Index);
  const BytecodeMethod &method(size_t Index) const;
  size_t numMethods() const { return MethodList.size(); }

  std::vector<ClassFile> &classes() { return Classes; }
  const std::vector<ClassFile> &classes() const { return Classes; }

private:
  std::vector<ClassFile> Classes;
  /// Flattened (class, method) indices in load order.
  std::vector<std::pair<size_t, size_t>> MethodList;
  bool Loaded = false;
};

} // namespace djx

#endif // DJX_BYTECODE_CLASSFILE_H
