//===- Disassembler.cpp - Human-readable bytecode listings -----------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Disassembler.h"

#include <sstream>

using namespace djx;

namespace {

const char *superOpName(SuperOp K) {
  switch (K) {
  case SuperOp::Nop:
    return "nop";
  case SuperOp::IConst:
    return "iconst";
  case SuperOp::ILoad:
    return "iload";
  case SuperOp::ALoad:
    return "aload";
  case SuperOp::IStore:
    return "istore";
  case SuperOp::AStore:
    return "astore";
  case SuperOp::PopV:
    return "pop";
  case SuperOp::DupV:
    return "dup";
  case SuperOp::SwapV:
    return "swap";
  case SuperOp::Alu:
    return "alu";
  case SuperOp::INeg:
    return "ineg";
  case SuperOp::Br:
    return "br";
  case SuperOp::GotoExit:
    return "goto_exit";
  case SuperOp::Access:
    return "access";
  case SuperOp::Alloc:
    return "alloc";
  case SuperOp::CmpBranchLL:
    return "cmp_branch_ll";
  case SuperOp::IncLocal:
    return "inc_local";
  case SuperOp::AccumLocal:
    return "accum_local";
  case SuperOp::PALoadLL:
    return "pa_load_ll";
  case SuperOp::PAStoreLLL:
    return "pa_store_lll";
  case SuperOp::CmpBranchLI:
    return "cmp_branch_li";
  case SuperOp::HookPre:
    return "hook_pre";
  case SuperOp::HookPost:
    return "hook_post";
  }
  return "?";
}

} // namespace

std::string djx::disassemble(const BytecodeMethod &M) {
  std::ostringstream OS;
  OS << M.qualifiedName() << " (args=" << M.NumArgs
     << ", locals=" << M.NumLocals << ")\n";
  size_t LineIdx = 0;
  for (size_t Bci = 0; Bci < M.Code.size(); ++Bci) {
    while (LineIdx < M.LineTable.size() && M.LineTable[LineIdx].Bci == Bci) {
      OS << "  // line " << M.LineTable[LineIdx].Line << "\n";
      ++LineIdx;
    }
    const Instruction &I = M.Code[Bci];
    OS << "  " << Bci << ": " << opcodeName(I.Op);
    switch (I.Op) {
    case Opcode::Nop:
    case Opcode::Pop:
    case Opcode::Dup:
    case Opcode::Swap:
    case Opcode::IAdd:
    case Opcode::ISub:
    case Opcode::IMul:
    case Opcode::IDiv:
    case Opcode::IRem:
    case Opcode::INeg:
    case Opcode::IAnd:
    case Opcode::IOr:
    case Opcode::IXor:
    case Opcode::IShl:
    case Opcode::IShr:
    case Opcode::PALoad:
    case Opcode::PAStore:
    case Opcode::AALoad:
    case Opcode::AAStore:
    case Opcode::ArrayLength:
    case Opcode::Return:
    case Opcode::IReturn:
    case Opcode::AReturn:
      break;
    case Opcode::Invoke:
      if (M.RegistryId == kInvalidMethod &&
          static_cast<size_t>(I.A) < M.CalleeRefs.size())
        OS << " " << M.CalleeRefs[I.A];
      else
        OS << " #" << I.A;
      OS << " args=" << I.B;
      break;
    case Opcode::GetField:
    case Opcode::PutField:
      OS << " off=" << I.A << " width=" << I.B;
      break;
    case Opcode::GetRefField:
    case Opcode::PutRefField:
      OS << " off=" << I.A;
      break;
    case Opcode::MultiANewArray:
      OS << " leaf-type=" << I.A << " dims=" << I.B;
      break;
    default:
      OS << " " << I.A;
      break;
    }
    OS << "\n";
  }
  return OS.str();
}

std::string djx::disassembleTrace(const BytecodeMethod &M,
                                  const CompiledTrace &T) {
  std::ostringstream OS;
  OS << "trace " << M.qualifiedName() << " @" << T.EntryPc << ": "
     << T.Ops.size() << " superops / " << T.NumSteps << " steps, exit -> "
     << T.EndPc << " (growth=" << T.MaxStackGrowth
     << ", floor=" << T.MinStackDepth << ")\n";
  for (const TraceOp &O : T.Ops) {
    OS << "  " << O.Pc;
    if (O.NumSteps > 1)
      OS << ".." << (O.Pc + O.NumSteps - 1);
    OS << ": " << superOpName(O.Kind);
    switch (O.Kind) {
    case SuperOp::IConst:
      OS << " " << O.A;
      break;
    case SuperOp::ILoad:
    case SuperOp::ALoad:
    case SuperOp::IStore:
    case SuperOp::AStore:
      OS << " L" << O.A;
      break;
    case SuperOp::Alu:
    case SuperOp::Access:
      OS << " (" << opcodeName(O.Src) << ")";
      break;
    case SuperOp::Br:
      OS << " (" << opcodeName(O.Src) << ") -> " << O.A << " [side exit]";
      break;
    case SuperOp::GotoExit:
      OS << " -> " << O.A << " [exit]";
      break;
    case SuperOp::Alloc:
      OS << " (" << opcodeName(O.Src) << ") type=" << O.A;
      break;
    case SuperOp::CmpBranchLL:
      OS << " (" << opcodeName(O.Src) << ") L" << O.A << ", L" << O.B
         << " -> " << O.C << " [side exit]";
      break;
    case SuperOp::CmpBranchLI:
      OS << " (" << opcodeName(O.Src) << ") L" << O.A << ", #" << O.B
         << " -> " << O.C << " [side exit]";
      break;
    case SuperOp::HookPre:
    case SuperOp::HookPost:
      OS << " site=" << O.A;
      break;
    case SuperOp::IncLocal:
      OS << " L" << O.A << " += " << O.B;
      break;
    case SuperOp::AccumLocal:
      OS << " L" << O.A;
      break;
    case SuperOp::PALoadLL:
      OS << " arr=L" << O.A << " idx=L" << O.B;
      break;
    case SuperOp::PAStoreLLL:
      OS << " arr=L" << O.A << " idx=L" << O.B << " val=L" << O.C;
      break;
    default:
      break;
    }
    OS << "\n";
  }
  if (T.Ops.empty() || T.Ops.back().Kind != SuperOp::GotoExit)
    OS << "  " << T.EndPc << ": [fall-through]\n";
  return OS.str();
}
