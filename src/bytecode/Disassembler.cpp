//===- Disassembler.cpp - Human-readable bytecode listings -----------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Disassembler.h"

#include <sstream>

using namespace djx;

std::string djx::disassemble(const BytecodeMethod &M) {
  std::ostringstream OS;
  OS << M.qualifiedName() << " (args=" << M.NumArgs
     << ", locals=" << M.NumLocals << ")\n";
  size_t LineIdx = 0;
  for (size_t Bci = 0; Bci < M.Code.size(); ++Bci) {
    while (LineIdx < M.LineTable.size() && M.LineTable[LineIdx].Bci == Bci) {
      OS << "  // line " << M.LineTable[LineIdx].Line << "\n";
      ++LineIdx;
    }
    const Instruction &I = M.Code[Bci];
    OS << "  " << Bci << ": " << opcodeName(I.Op);
    switch (I.Op) {
    case Opcode::Nop:
    case Opcode::Pop:
    case Opcode::Dup:
    case Opcode::Swap:
    case Opcode::IAdd:
    case Opcode::ISub:
    case Opcode::IMul:
    case Opcode::IDiv:
    case Opcode::IRem:
    case Opcode::INeg:
    case Opcode::IAnd:
    case Opcode::IOr:
    case Opcode::IXor:
    case Opcode::IShl:
    case Opcode::IShr:
    case Opcode::PALoad:
    case Opcode::PAStore:
    case Opcode::AALoad:
    case Opcode::AAStore:
    case Opcode::ArrayLength:
    case Opcode::Return:
    case Opcode::IReturn:
    case Opcode::AReturn:
      break;
    case Opcode::Invoke:
      if (M.RegistryId == kInvalidMethod &&
          static_cast<size_t>(I.A) < M.CalleeRefs.size())
        OS << " " << M.CalleeRefs[I.A];
      else
        OS << " #" << I.A;
      OS << " args=" << I.B;
      break;
    case Opcode::GetField:
    case Opcode::PutField:
      OS << " off=" << I.A << " width=" << I.B;
      break;
    case Opcode::GetRefField:
    case Opcode::PutRefField:
      OS << " off=" << I.A;
      break;
    case Opcode::MultiANewArray:
      OS << " leaf-type=" << I.A << " dims=" << I.B;
      break;
    default:
      OS << " " << I.A;
      break;
    }
    OS << "\n";
  }
  return OS.str();
}
