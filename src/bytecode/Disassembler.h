//===- Disassembler.h - Human-readable bytecode listings --------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders bytecode as text (one instruction per line, with BCIs, source
/// lines and callee names). Used by the instrumentation example to show the
/// before/after of allocation-site rewriting, as ASM's Textifier would.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_BYTECODE_DISASSEMBLER_H
#define DJX_BYTECODE_DISASSEMBLER_H

#include "bytecode/ClassFile.h"
#include "bytecode/TraceCompiler.h"

#include <string>

namespace djx {

/// Renders one method as a text listing.
std::string disassemble(const BytecodeMethod &M);

/// Renders one compiled trace: entry pc, shape facts, then one
/// superinstruction per line with its constituent run and exit kind
/// (side-exit / exit / fall-through). Backs the `--dump-traces` CLI
/// flag, for debugging tier-parity failures.
std::string disassembleTrace(const BytecodeMethod &M,
                             const CompiledTrace &T);

} // namespace djx

#endif // DJX_BYTECODE_DISASSEMBLER_H
