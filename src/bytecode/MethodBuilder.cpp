//===- MethodBuilder.cpp - Bytecode assembler ------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bytecode/MethodBuilder.h"

#include <cassert>

using namespace djx;

MethodBuilder::MethodBuilder(std::string ClassName, std::string MethodName,
                             uint32_t NumArgs, uint32_t NumLocals) {
  assert(NumArgs <= NumLocals && "arguments live in local slots");
  M.ClassName = std::move(ClassName);
  M.MethodName = std::move(MethodName);
  M.NumArgs = NumArgs;
  M.NumLocals = NumLocals;
}

MethodBuilder &MethodBuilder::emit(Opcode Op, int64_t A, int64_t B) {
  assert(!Built && "builder already consumed");
  if (PendingLine != 0) {
    M.LineTable.push_back(
        LineEntry{static_cast<uint32_t>(M.Code.size()), PendingLine});
    PendingLine = 0;
  }
  M.Code.push_back(Instruction{Op, A, B});
  return *this;
}

MethodBuilder &MethodBuilder::line(uint32_t L) {
  assert(L > 0 && "line numbers are 1-based");
  PendingLine = L;
  return *this;
}

MethodBuilder &MethodBuilder::iconst(int64_t V) {
  return emit(Opcode::IConst, V);
}
MethodBuilder &MethodBuilder::iload(uint32_t Slot) {
  assert(Slot < M.NumLocals && "local slot out of range");
  return emit(Opcode::ILoad, Slot);
}
MethodBuilder &MethodBuilder::istore(uint32_t Slot) {
  assert(Slot < M.NumLocals && "local slot out of range");
  return emit(Opcode::IStore, Slot);
}
MethodBuilder &MethodBuilder::aload(uint32_t Slot) {
  assert(Slot < M.NumLocals && "local slot out of range");
  return emit(Opcode::ALoad, Slot);
}
MethodBuilder &MethodBuilder::astore(uint32_t Slot) {
  assert(Slot < M.NumLocals && "local slot out of range");
  return emit(Opcode::AStore, Slot);
}
MethodBuilder &MethodBuilder::pop() { return emit(Opcode::Pop); }
MethodBuilder &MethodBuilder::dup() { return emit(Opcode::Dup); }
MethodBuilder &MethodBuilder::swap() { return emit(Opcode::Swap); }

MethodBuilder &MethodBuilder::iadd() { return emit(Opcode::IAdd); }
MethodBuilder &MethodBuilder::isub() { return emit(Opcode::ISub); }
MethodBuilder &MethodBuilder::imul() { return emit(Opcode::IMul); }
MethodBuilder &MethodBuilder::idiv() { return emit(Opcode::IDiv); }
MethodBuilder &MethodBuilder::irem() { return emit(Opcode::IRem); }
MethodBuilder &MethodBuilder::ineg() { return emit(Opcode::INeg); }
MethodBuilder &MethodBuilder::iand() { return emit(Opcode::IAnd); }
MethodBuilder &MethodBuilder::ior() { return emit(Opcode::IOr); }
MethodBuilder &MethodBuilder::ixor() { return emit(Opcode::IXor); }
MethodBuilder &MethodBuilder::ishl() { return emit(Opcode::IShl); }
MethodBuilder &MethodBuilder::ishr() { return emit(Opcode::IShr); }

Label MethodBuilder::newLabel() {
  Label L;
  L.Id = static_cast<uint32_t>(LabelBci.size());
  LabelBci.push_back(~0U);
  return L;
}

MethodBuilder &MethodBuilder::bind(Label L) {
  assert(L.Id < LabelBci.size() && "unknown label");
  assert(LabelBci[L.Id] == ~0U && "label bound twice");
  LabelBci[L.Id] = static_cast<uint32_t>(M.Code.size());
  return *this;
}

MethodBuilder &MethodBuilder::emitBranch(Opcode Op, Label L) {
  assert(L.Id < LabelBci.size() && "unknown label");
  Fixups.emplace_back(M.Code.size(), L.Id);
  return emit(Op, -1);
}

MethodBuilder &MethodBuilder::jmp(Label L) {
  return emitBranch(Opcode::Goto, L);
}
MethodBuilder &MethodBuilder::ifEq(Label L) {
  return emitBranch(Opcode::IfEq, L);
}
MethodBuilder &MethodBuilder::ifNe(Label L) {
  return emitBranch(Opcode::IfNe, L);
}
MethodBuilder &MethodBuilder::ifLt(Label L) {
  return emitBranch(Opcode::IfLt, L);
}
MethodBuilder &MethodBuilder::ifGe(Label L) {
  return emitBranch(Opcode::IfGe, L);
}
MethodBuilder &MethodBuilder::ifICmp(Opcode CmpOp, Label L) {
  assert((CmpOp == Opcode::IfICmpEq || CmpOp == Opcode::IfICmpNe ||
          CmpOp == Opcode::IfICmpLt || CmpOp == Opcode::IfICmpGe ||
          CmpOp == Opcode::IfICmpGt || CmpOp == Opcode::IfICmpLe) &&
         "not a compare-branch opcode");
  return emitBranch(CmpOp, L);
}
MethodBuilder &MethodBuilder::ifNull(Label L) {
  return emitBranch(Opcode::IfNull, L);
}
MethodBuilder &MethodBuilder::ifNonNull(Label L) {
  return emitBranch(Opcode::IfNonNull, L);
}

MethodBuilder &MethodBuilder::newObject(int64_t TypeId) {
  return emit(Opcode::New, TypeId);
}
MethodBuilder &MethodBuilder::newArray(int64_t ArrayTypeId) {
  return emit(Opcode::NewArray, ArrayTypeId);
}
MethodBuilder &MethodBuilder::aNewArray(int64_t RefArrayTypeId) {
  return emit(Opcode::ANewArray, RefArrayTypeId);
}
MethodBuilder &MethodBuilder::multiANewArray(int64_t LeafArrayTypeId,
                                             uint32_t Dims) {
  assert(Dims >= 1 && "need at least one dimension");
  return emit(Opcode::MultiANewArray, LeafArrayTypeId, Dims);
}

MethodBuilder &MethodBuilder::paLoad() { return emit(Opcode::PALoad); }
MethodBuilder &MethodBuilder::paStore() { return emit(Opcode::PAStore); }
MethodBuilder &MethodBuilder::aaLoad() { return emit(Opcode::AALoad); }
MethodBuilder &MethodBuilder::aaStore() { return emit(Opcode::AAStore); }
MethodBuilder &MethodBuilder::arrayLength() {
  return emit(Opcode::ArrayLength);
}
MethodBuilder &MethodBuilder::getField(uint64_t Offset, uint32_t Width) {
  assert((Width == 4 || Width == 8) && "field width must be 4 or 8");
  return emit(Opcode::GetField, static_cast<int64_t>(Offset), Width);
}
MethodBuilder &MethodBuilder::putField(uint64_t Offset, uint32_t Width) {
  assert((Width == 4 || Width == 8) && "field width must be 4 or 8");
  return emit(Opcode::PutField, static_cast<int64_t>(Offset), Width);
}
MethodBuilder &MethodBuilder::getRefField(uint64_t Offset) {
  return emit(Opcode::GetRefField, static_cast<int64_t>(Offset));
}
MethodBuilder &MethodBuilder::putRefField(uint64_t Offset) {
  return emit(Opcode::PutRefField, static_cast<int64_t>(Offset));
}

MethodBuilder &MethodBuilder::invoke(const std::string &QualifiedCallee,
                                     uint32_t NumArgs) {
  int64_t Index = static_cast<int64_t>(M.CalleeRefs.size());
  M.CalleeRefs.push_back(QualifiedCallee);
  return emit(Opcode::Invoke, Index, NumArgs);
}

MethodBuilder &MethodBuilder::ret() { return emit(Opcode::Return); }
MethodBuilder &MethodBuilder::iret() { return emit(Opcode::IReturn); }
MethodBuilder &MethodBuilder::aret() { return emit(Opcode::AReturn); }

uint32_t MethodBuilder::currentBci() const {
  return static_cast<uint32_t>(M.Code.size());
}

BytecodeMethod MethodBuilder::build() {
  assert(!Built && "build() called twice");
  for (auto &[InstIndex, LabelId] : Fixups) {
    assert(LabelBci[LabelId] != ~0U && "unbound label at build()");
    M.Code[InstIndex].A = LabelBci[LabelId];
  }
  Built = true;
  return std::move(M);
}
