//===- MethodBuilder.h - Bytecode assembler ---------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent assembler for BytecodeMethod bodies, with forward-reference
/// labels and a line-number marker that populates the BCI -> line table
/// DJXPerf resolves through GetLineNumberTable.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_BYTECODE_METHODBUILDER_H
#define DJX_BYTECODE_METHODBUILDER_H

#include "bytecode/ClassFile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace djx {

/// Forward-referencable jump target.
struct Label {
  uint32_t Id = ~0U;
};

/// Assembles one BytecodeMethod.
class MethodBuilder {
public:
  MethodBuilder(std::string ClassName, std::string MethodName,
                uint32_t NumArgs, uint32_t NumLocals);

  // Source mapping: subsequent instructions belong to source line L.
  MethodBuilder &line(uint32_t L);

  // Constants, locals, stack.
  MethodBuilder &iconst(int64_t V);
  MethodBuilder &iload(uint32_t Slot);
  MethodBuilder &istore(uint32_t Slot);
  MethodBuilder &aload(uint32_t Slot);
  MethodBuilder &astore(uint32_t Slot);
  MethodBuilder &pop();
  MethodBuilder &dup();
  MethodBuilder &swap();

  // Arithmetic.
  MethodBuilder &iadd();
  MethodBuilder &isub();
  MethodBuilder &imul();
  MethodBuilder &idiv();
  MethodBuilder &irem();
  MethodBuilder &ineg();
  MethodBuilder &iand();
  MethodBuilder &ior();
  MethodBuilder &ixor();
  MethodBuilder &ishl();
  MethodBuilder &ishr();

  // Control flow.
  Label newLabel();
  MethodBuilder &bind(Label L);
  MethodBuilder &jmp(Label L);
  MethodBuilder &ifEq(Label L);
  MethodBuilder &ifNe(Label L);
  MethodBuilder &ifLt(Label L);
  MethodBuilder &ifGe(Label L);
  MethodBuilder &ifICmp(Opcode CmpOp, Label L);
  MethodBuilder &ifNull(Label L);
  MethodBuilder &ifNonNull(Label L);

  // Allocation.
  MethodBuilder &newObject(int64_t TypeId);
  MethodBuilder &newArray(int64_t ArrayTypeId);
  MethodBuilder &aNewArray(int64_t RefArrayTypeId);
  MethodBuilder &multiANewArray(int64_t LeafArrayTypeId, uint32_t Dims);

  // Arrays and fields.
  MethodBuilder &paLoad();
  MethodBuilder &paStore();
  MethodBuilder &aaLoad();
  MethodBuilder &aaStore();
  MethodBuilder &arrayLength();
  MethodBuilder &getField(uint64_t Offset, uint32_t Width);
  MethodBuilder &putField(uint64_t Offset, uint32_t Width);
  MethodBuilder &getRefField(uint64_t Offset);
  MethodBuilder &putRefField(uint64_t Offset);

  // Calls and returns.
  MethodBuilder &invoke(const std::string &QualifiedCallee, uint32_t NumArgs);
  MethodBuilder &ret();
  MethodBuilder &iret();
  MethodBuilder &aret();

  /// Current BCI (index of the next instruction).
  uint32_t currentBci() const;

  /// Finalises the method; asserts all labels are bound.
  BytecodeMethod build();

private:
  MethodBuilder &emit(Opcode Op, int64_t A = 0, int64_t B = 0);
  MethodBuilder &emitBranch(Opcode Op, Label L);

  BytecodeMethod M;
  /// Label id -> bound BCI (or ~0U while unbound).
  std::vector<uint32_t> LabelBci;
  /// (instruction index, label id) fixups.
  std::vector<std::pair<size_t, uint32_t>> Fixups;
  uint32_t PendingLine = 0;
  bool Built = false;
};

} // namespace djx

#endif // DJX_BYTECODE_METHODBUILDER_H
