//===- Opcode.cpp - MiniJVM bytecode instruction set -----------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Opcode.h"

using namespace djx;

std::string djx::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::IConst:
    return "iconst";
  case Opcode::ILoad:
    return "iload";
  case Opcode::IStore:
    return "istore";
  case Opcode::ALoad:
    return "aload";
  case Opcode::AStore:
    return "astore";
  case Opcode::Pop:
    return "pop";
  case Opcode::Dup:
    return "dup";
  case Opcode::Swap:
    return "swap";
  case Opcode::IAdd:
    return "iadd";
  case Opcode::ISub:
    return "isub";
  case Opcode::IMul:
    return "imul";
  case Opcode::IDiv:
    return "idiv";
  case Opcode::IRem:
    return "irem";
  case Opcode::INeg:
    return "ineg";
  case Opcode::IAnd:
    return "iand";
  case Opcode::IOr:
    return "ior";
  case Opcode::IXor:
    return "ixor";
  case Opcode::IShl:
    return "ishl";
  case Opcode::IShr:
    return "ishr";
  case Opcode::Goto:
    return "goto";
  case Opcode::IfEq:
    return "ifeq";
  case Opcode::IfNe:
    return "ifne";
  case Opcode::IfLt:
    return "iflt";
  case Opcode::IfGe:
    return "ifge";
  case Opcode::IfICmpEq:
    return "if_icmpeq";
  case Opcode::IfICmpNe:
    return "if_icmpne";
  case Opcode::IfICmpLt:
    return "if_icmplt";
  case Opcode::IfICmpGe:
    return "if_icmpge";
  case Opcode::IfICmpGt:
    return "if_icmpgt";
  case Opcode::IfICmpLe:
    return "if_icmple";
  case Opcode::IfNull:
    return "ifnull";
  case Opcode::IfNonNull:
    return "ifnonnull";
  case Opcode::New:
    return "new";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::ANewArray:
    return "anewarray";
  case Opcode::MultiANewArray:
    return "multianewarray";
  case Opcode::PALoad:
    return "paload";
  case Opcode::PAStore:
    return "pastore";
  case Opcode::AALoad:
    return "aaload";
  case Opcode::AAStore:
    return "aastore";
  case Opcode::ArrayLength:
    return "arraylength";
  case Opcode::GetField:
    return "getfield";
  case Opcode::PutField:
    return "putfield";
  case Opcode::GetRefField:
    return "getreffield";
  case Opcode::PutRefField:
    return "putreffield";
  case Opcode::Invoke:
    return "invoke";
  case Opcode::Return:
    return "return";
  case Opcode::IReturn:
    return "ireturn";
  case Opcode::AReturn:
    return "areturn";
  case Opcode::AllocHookPre:
    return "allochook_pre";
  case Opcode::AllocHookPost:
    return "allochook_post";
  }
  return "bad";
}

bool djx::isBranch(Opcode Op) {
  switch (Op) {
  case Opcode::Goto:
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfGe:
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpGe:
  case Opcode::IfICmpGt:
  case Opcode::IfICmpLe:
  case Opcode::IfNull:
  case Opcode::IfNonNull:
    return true;
  default:
    return false;
  }
}

bool djx::isAllocation(Opcode Op) {
  switch (Op) {
  case Opcode::New:
  case Opcode::NewArray:
  case Opcode::ANewArray:
  case Opcode::MultiANewArray:
    return true;
  default:
    return false;
  }
}
