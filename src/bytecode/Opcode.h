//===- Opcode.h - MiniJVM bytecode instruction set --------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stack-machine instruction set executed by the interpreter. It is a
/// compact subset of JVM bytecode sufficient for the paper's workload
/// kernels, and crucially contains the four object-allocation opcodes the
/// Java agent instruments (§4.1): New, NewArray, ANewArray and
/// MultiANewArray. AllocHookPre/AllocHookPost are the pseudo-instructions
/// the ASM-style instrumenter inserts around them.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_BYTECODE_OPCODE_H
#define DJX_BYTECODE_OPCODE_H

#include <cstdint>
#include <string>

namespace djx {

/// Bytecode operation codes. Operand meaning is listed per opcode; A and B
/// are the two immediate slots of Instruction.
enum class Opcode : uint8_t {
  Nop,
  /// Push constant A.
  IConst,
  /// Push local[A] (integer slot).
  ILoad,
  /// local[A] = pop (integer slot).
  IStore,
  /// Push local[A] (reference slot).
  ALoad,
  /// local[A] = pop (reference slot).
  AStore,
  Pop,
  Dup,
  Swap,
  // Integer arithmetic on the top of stack.
  IAdd,
  ISub,
  IMul,
  IDiv,
  IRem,
  INeg,
  IAnd,
  IOr,
  IXor,
  IShl,
  IShr,
  /// Unconditional jump to BCI A.
  Goto,
  /// Pop V; jump to A when V == 0.
  IfEq,
  /// Pop V; jump to A when V != 0.
  IfNe,
  /// Pop V; jump to A when V < 0.
  IfLt,
  /// Pop V; jump to A when V >= 0.
  IfGe,
  // Pop R then L; jump to A on the comparison L <op> R.
  IfICmpEq,
  IfICmpNe,
  IfICmpLt,
  IfICmpGe,
  IfICmpGt,
  IfICmpLe,
  /// Pop ref; jump to A when null.
  IfNull,
  /// Pop ref; jump to A when non-null.
  IfNonNull,
  /// Allocate instance of type A; push ref.
  New,
  /// Pop length; allocate primitive array of type A; push ref.
  NewArray,
  /// Pop length; allocate reference array of type A; push ref.
  ANewArray,
  /// Pop B dimension lengths (outermost pushed first); allocate nested
  /// arrays with leaf array type A; push ref.
  MultiANewArray,
  /// Pop index, pop array ref; push element (width = array elem size).
  PALoad,
  /// Pop value, pop index, pop array ref; store element.
  PAStore,
  /// Pop index, pop array ref; push reference element.
  AALoad,
  /// Pop ref value, pop index, pop array ref; store reference element.
  AAStore,
  /// Pop array ref; push its length.
  ArrayLength,
  /// Pop obj ref; push B-byte field at offset A.
  GetField,
  /// Pop value, pop obj ref; store B-byte field at offset A.
  PutField,
  /// Pop obj ref; push reference field at offset A.
  GetRefField,
  /// Pop ref value, pop obj ref; store reference field at offset A.
  PutRefField,
  /// Call method (linked index A) with B arguments popped right-to-left.
  Invoke,
  Return,
  /// Pop V; return V to the caller's stack.
  IReturn,
  /// Pop ref; return it to the caller's stack.
  AReturn,
  /// Instrumentation hook before an allocation site (site id A).
  AllocHookPre,
  /// Instrumentation hook after an allocation site (site id A); peeks the
  /// freshly allocated reference on top of the stack.
  AllocHookPost,
};

/// Printable mnemonic for \p Op.
std::string opcodeName(Opcode Op);

/// True for opcodes whose A operand is a branch-target BCI (needed by the
/// instrumentation framework when it remaps code).
bool isBranch(Opcode Op);

/// True for the four allocation opcodes the Java agent instruments.
bool isAllocation(Opcode Op);

/// One decoded instruction.
struct Instruction {
  Opcode Op = Opcode::Nop;
  int64_t A = 0;
  int64_t B = 0;
};

} // namespace djx

#endif // DJX_BYTECODE_OPCODE_H
