//===- TraceCompiler.cpp - Hot-trace superinstruction compiler ------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bytecode/TraceCompiler.h"

#include "analysis/MethodAnalysis.h"
#include "bytecode/Verifier.h"

#include <algorithm>
#include <cassert>

using namespace djx;

const char *djx::execTierName(ExecTier Tier) {
  return Tier == ExecTier::Super ? "super" : "interp";
}

bool djx::parseExecTier(const std::string &Name, ExecTier &Out) {
  if (Name == "interp") {
    Out = ExecTier::Interp;
    return true;
  }
  if (Name == "super") {
    Out = ExecTier::Super;
    return true;
  }
  return false;
}

namespace {

/// Opcodes a trace must stop before: frame switches and agent hook
/// dispatches execute only in the flat loop (hooks may re-enter run()).
bool endsTrace(Opcode Op) {
  switch (Op) {
  case Opcode::Invoke:
  case Opcode::Return:
  case Opcode::IReturn:
  case Opcode::AReturn:
  case Opcode::AllocHookPre:
  case Opcode::AllocHookPost:
    return true;
  default:
    return false;
  }
}

bool isICmpBranch(Opcode Op) {
  switch (Op) {
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpGe:
  case Opcode::IfICmpGt:
  case Opcode::IfICmpLe:
    return true;
  default:
    return false;
  }
}

/// Running operand-stack depth relative to trace entry, tracked at
/// constituent granularity via the Verifier's stack-effect table. Min
/// bounds the operands the trace consumes below its entry depth; Max
/// bounds its peak growth (both conservative for fused ops, which skip
/// the intermediate pushes entirely).
struct ShapeTracker {
  int Depth = 0;
  int Min = 0;
  int Max = 0;

  void apply(const Instruction &I) {
    StackEffect E = instructionStackEffect(I);
    Depth -= static_cast<int>(E.Pops);
    Min = std::min(Min, Depth);
    Depth += static_cast<int>(E.Pushes);
    Max = std::max(Max, Depth);
  }
};

/// Below this many constituents a trace cannot pay for its entry
/// (budget admission + frame sync), so the site is marked dead.
constexpr uint32_t kMinTraceSteps = 3;

} // namespace

std::optional<CompiledTrace> djx::compileTrace(const BytecodeMethod &M,
                                               uint32_t EntryPc,
                                               const TierConfig &Cfg,
                                               const MethodAnalysis *MA) {
  const std::vector<Instruction> &Code = M.Code;
  const uint32_t N = static_cast<uint32_t>(Code.size());
  CompiledTrace T;
  T.EntryPc = EntryPc;
  ShapeTracker Shape;
  uint32_t Pc = EntryPc;
  uint32_t Steps = 0;
  bool Ended = false; // Goto reached: the trace carries its own exit.

  auto emit = [&](SuperOp Kind, Opcode Src, uint32_t Len, int64_t A = 0,
                  int64_t B = 0, int64_t C = 0) {
    TraceOp O;
    O.Kind = Kind;
    O.Src = Src;
    O.NumSteps = static_cast<uint16_t>(Len);
    O.Pc = Pc;
    O.A = A;
    O.B = B;
    O.C = C;
    T.Ops.push_back(O);
    for (uint32_t K = 0; K < Len; ++K)
      Shape.apply(Code[Pc + K]);
    Pc += Len;
    Steps += Len;
  };

  while (!Ended && Pc < N && Steps < Cfg.MaxTraceLength) {
    const Instruction &I = Code[Pc];
    const uint32_t Left = Cfg.MaxTraceLength - Steps;

    // Analysis-proven superblock extension: an instrumented allocation
    // (allochook_pre; alloc; allochook_post) whose site the escape
    // analysis proves never leaves this method keeps the trace going
    // instead of ending it. The hook superops dispatch the agent
    // callbacks with full frame sync, so the profile is byte-identical
    // to flat dispatch; escape is the admission predicate (an escaping
    // object may be relocated or observed concurrently mid-trace, so
    // those sites stay in the flat loop).
    if (I.Op == Opcode::AllocHookPre && MA && Left >= 3 && Pc + 2 < N &&
        isAllocation(Code[Pc + 1].Op) &&
        Code[Pc + 2].Op == Opcode::AllocHookPost && !MA->Types.Incomplete &&
        MA->Types.reachable(Pc + 1)) {
      const AllocSiteFact *Site = MA->Types.siteAtPc(Pc + 1);
      if (Site && !Site->escapes()) {
        emit(SuperOp::HookPre, Opcode::AllocHookPre, 1, I.A);
        const Instruction &AI = Code[Pc]; // emit() advanced to the alloc.
        emit(SuperOp::Alloc, AI.Op, 1, AI.A,
             AI.Op == Opcode::MultiANewArray ? AI.B : 0);
        emit(SuperOp::HookPost, Opcode::AllocHookPost, 1, Code[Pc].A);
        continue;
      }
    }
    if (endsTrace(I.Op))
      break;

    // Fused idioms first, longest match wins; a pattern that does not fit
    // the remaining length budget falls back to its base encodings.
    if (I.Op == Opcode::ALoad && Left >= 4 && Pc + 3 < N &&
        Code[Pc + 1].Op == Opcode::ILoad &&
        Code[Pc + 2].Op == Opcode::ILoad &&
        Code[Pc + 3].Op == Opcode::PAStore) {
      emit(SuperOp::PAStoreLLL, Opcode::PAStore, 4, I.A, Code[Pc + 1].A,
           Code[Pc + 2].A);
      continue;
    }
    if (I.Op == Opcode::ALoad && Left >= 3 && Pc + 2 < N &&
        Code[Pc + 1].Op == Opcode::ILoad &&
        Code[Pc + 2].Op == Opcode::PALoad) {
      emit(SuperOp::PALoadLL, Opcode::PALoad, 3, I.A, Code[Pc + 1].A);
      continue;
    }
    if (I.Op == Opcode::ILoad && Left >= 4 && Pc + 3 < N &&
        Code[Pc + 1].Op == Opcode::IConst &&
        (Code[Pc + 2].Op == Opcode::IAdd ||
         Code[Pc + 2].Op == Opcode::ISub) &&
        Code[Pc + 3].Op == Opcode::IStore && Code[Pc + 3].A == I.A) {
      int64_t Delta = Code[Pc + 2].Op == Opcode::IAdd ? Code[Pc + 1].A
                                                      : -Code[Pc + 1].A;
      emit(SuperOp::IncLocal, Code[Pc + 2].Op, 4, I.A, Delta);
      continue;
    }
    if (I.Op == Opcode::ILoad && Left >= 3 && Pc + 2 < N &&
        Code[Pc + 1].Op == Opcode::ILoad && isICmpBranch(Code[Pc + 2].Op)) {
      emit(SuperOp::CmpBranchLL, Code[Pc + 2].Op, 3, I.A, Code[Pc + 1].A,
           Code[Pc + 2].A);
      continue;
    }
    // Local-vs-immediate compare: admitted only under the analysis
    // proof that the side exit elides no observable stack traffic —
    // the type-state depth at the taken target equals the depth
    // entering the pattern, and liveness shows nothing live above the
    // materialised depth there. (Holds for every well-formed loop
    // guard; the proof is what lets the fused form skip the two pushes
    // without a flat-state mismatch at the deopt point.)
    if (I.Op == Opcode::ILoad && MA && Left >= 3 && Pc + 2 < N &&
        Code[Pc + 1].Op == Opcode::IConst && isICmpBranch(Code[Pc + 2].Op)) {
      uint32_t Target = static_cast<uint32_t>(Code[Pc + 2].A);
      int D0 = MA->Types.depthAt(Pc);
      if (D0 >= 0 && MA->Types.depthAt(Target) == D0 &&
          MA->Live.knownAt(Target) &&
          MA->Live.liveStackSlotsAbove(Target,
                                       static_cast<uint32_t>(D0)) == 0) {
        emit(SuperOp::CmpBranchLI, Code[Pc + 2].Op, 3, I.A, Code[Pc + 1].A,
             Target);
        continue;
      }
    }
    if (I.Op == Opcode::ILoad && Left >= 3 && Pc + 2 < N &&
        Code[Pc + 1].Op == Opcode::IAdd &&
        Code[Pc + 2].Op == Opcode::IStore && Code[Pc + 2].A == I.A) {
      emit(SuperOp::AccumLocal, Opcode::IAdd, 3, I.A);
      continue;
    }

    switch (I.Op) {
    case Opcode::Nop:
      emit(SuperOp::Nop, I.Op, 1);
      break;
    case Opcode::IConst:
      emit(SuperOp::IConst, I.Op, 1, I.A);
      break;
    case Opcode::ILoad:
      emit(SuperOp::ILoad, I.Op, 1, I.A);
      break;
    case Opcode::ALoad:
      emit(SuperOp::ALoad, I.Op, 1, I.A);
      break;
    case Opcode::IStore:
      emit(SuperOp::IStore, I.Op, 1, I.A);
      break;
    case Opcode::AStore:
      emit(SuperOp::AStore, I.Op, 1, I.A);
      break;
    case Opcode::Pop:
      emit(SuperOp::PopV, I.Op, 1);
      break;
    case Opcode::Dup:
      emit(SuperOp::DupV, I.Op, 1);
      break;
    case Opcode::Swap:
      emit(SuperOp::SwapV, I.Op, 1);
      break;
    case Opcode::IAdd:
    case Opcode::ISub:
    case Opcode::IMul:
    case Opcode::IDiv:
    case Opcode::IRem:
    case Opcode::IAnd:
    case Opcode::IOr:
    case Opcode::IXor:
    case Opcode::IShl:
    case Opcode::IShr:
      emit(SuperOp::Alu, I.Op, 1);
      break;
    case Opcode::INeg:
      emit(SuperOp::INeg, I.Op, 1);
      break;
    case Opcode::Goto:
      emit(SuperOp::GotoExit, I.Op, 1, I.A);
      Ended = true;
      break;
    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfGe:
    case Opcode::IfICmpEq:
    case Opcode::IfICmpNe:
    case Opcode::IfICmpLt:
    case Opcode::IfICmpGe:
    case Opcode::IfICmpGt:
    case Opcode::IfICmpLe:
    case Opcode::IfNull:
    case Opcode::IfNonNull:
      emit(SuperOp::Br, I.Op, 1, I.A);
      break;
    case Opcode::New:
    case Opcode::NewArray:
    case Opcode::ANewArray:
      emit(SuperOp::Alloc, I.Op, 1, I.A);
      break;
    case Opcode::MultiANewArray:
      emit(SuperOp::Alloc, I.Op, 1, I.A, I.B);
      break;
    case Opcode::PALoad:
    case Opcode::PAStore:
    case Opcode::AALoad:
    case Opcode::AAStore:
    case Opcode::ArrayLength:
    case Opcode::GetField:
    case Opcode::PutField:
    case Opcode::GetRefField:
    case Opcode::PutRefField:
      emit(SuperOp::Access, I.Op, 1, I.A, I.B);
      break;
    case Opcode::Invoke:
    case Opcode::Return:
    case Opcode::IReturn:
    case Opcode::AReturn:
    case Opcode::AllocHookPre:
    case Opcode::AllocHookPost:
      assert(false && "endsTrace() filtered these");
      Ended = true;
      break;
    }
  }

  if (Steps < kMinTraceSteps)
    return std::nullopt;
  T.EndPc = Pc;
  T.NumSteps = Steps;
  T.MaxStackGrowth = static_cast<uint32_t>(std::max(0, Shape.Max));
  T.MinStackDepth = static_cast<uint32_t>(std::max(0, -Shape.Min));
  uint32_t Remaining = Steps;
  for (TraceOp &O : T.Ops) {
    Remaining -= O.NumSteps;
    O.StepsAfter = Remaining;
  }
  return T;
}
