//===- TraceCompiler.h - Hot-trace superinstruction compiler ----*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second execution tier's compiler: turns a hot straight-line
/// bytecode region (a superblock starting at one entry pc) into a
/// sequence of superinstructions the interpreter executes without
/// per-opcode dispatch overhead. Shape analysis reuses the Verifier's
/// stack-effect table to compute the trace's operand floor and peak
/// stack growth, so the executing tier can do one arena headroom check
/// per trace instead of one per push.
///
/// Legality is deliberately conservative — a trace must be
/// observationally equivalent to flat dispatch, instruction by
/// instruction, under every profiling observer:
///  - Invoke / Return* / AllocHook* end trace formation (frame switches
///    and agent hook dispatches stay in the flat loop).
///  - Conditional branches are *side exits*: fall-through continues the
///    trace, taken deopts back to the flat loop at the target.
///  - Goto terminates the trace with an exit to its target.
///  - Allocations are included (they dominate the catalog's hot loops)
///    but compile to ops that sync frame state first, preserving the
///    peek-then-commit contract so a GcRequest unwind re-executes the
///    faulting instruction in the flat loop.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_BYTECODE_TRACECOMPILER_H
#define DJX_BYTECODE_TRACECOMPILER_H

#include "bytecode/ClassFile.h"

#include <optional>
#include <string>
#include <vector>

namespace djx {

/// Which tier executes bytecode (`--tier {interp,super}`).
enum class ExecTier : uint8_t {
  Interp, ///< Flat dispatch loop only (the reference semantics).
  Super,  ///< Hot-region detection + superinstruction traces.
};

/// Tier selection plus the tuning knobs the CLI exposes.
struct TierConfig {
  ExecTier Tier = ExecTier::Interp;
  /// Flat dispatches of a trace-head pc before it compiles
  /// (`--hot-threshold`). Counted per interpreter, per (method, pc).
  uint32_t HotThreshold = 16;
  /// Cap on constituent instructions per trace (`--max-trace-len`).
  uint32_t MaxTraceLength = 64;
  /// Consult the src/analysis/ passes for analysis-proven fusions:
  /// side-exit fusions gated on liveness/depth proofs and superblocks
  /// spanning non-escaping allocation sites (`--no-analysis-fusion`
  /// reverts to the purely syntactic compiler).
  bool AnalysisFusion = true;
};

/// "interp" / "super".
const char *execTierName(ExecTier Tier);

/// Parses an ExecTier name; returns false (Out untouched) when unknown.
bool parseExecTier(const std::string &Name, ExecTier &Out);

/// Superinstruction kinds. The base kinds mirror single opcodes (minus
/// dispatch overhead); the fused kinds collapse the multi-opcode idioms
/// the workload catalog's hot loops are built from.
enum class SuperOp : uint8_t {
  Nop,
  IConst,     ///< A = immediate.
  ILoad,      ///< A = local slot.
  ALoad,      ///< A = local slot.
  IStore,     ///< A = local slot.
  AStore,     ///< A = local slot.
  PopV,
  DupV,
  SwapV,
  Alu,        ///< Src selects IAdd..IShr.
  INeg,
  Br,         ///< Side exit. Src selects the If*; A = taken target.
  GotoExit,   ///< Unconditional exit; A = target.
  Access,     ///< Simulated memory access; Src selects the opcode,
              ///< A/B carry its immediates (field offset/width).
  Alloc,      ///< Allocation; Src selects the opcode, A = TypeId,
              ///< B = MultiANewArray dim count.
  // --- Fused idioms -----------------------------------------------------
  CmpBranchLL, ///< iload A; iload B; if_icmp<Src> C  (side exit).
  IncLocal,    ///< iload A; iconst; iadd/isub; istore A  => L[A] += B.
  AccumLocal,  ///< iload A; iadd; istore A  => L[A] += pop().
  PALoadLL,    ///< aload A; iload B; paload  (one simulated access).
  PAStoreLLL,  ///< aload A; iload B; iload C; pastore  (one access).
  // --- Analysis-proven forms (emitted only with a MethodAnalysis) -------
  CmpBranchLI, ///< iload A; iconst B; if_icmp<Src> C  (side exit);
               ///< admitted via the liveness/depth proof at C.
  HookPre,     ///< allochook_pre, A = site id; dispatches the agent
               ///< hook with full frame sync, exactly as flat dispatch.
  HookPost,    ///< allochook_post, A = site id (peeks the fresh ref).
};

/// One compiled superinstruction.
struct TraceOp {
  SuperOp Kind = SuperOp::Nop;
  /// Source opcode (selector for Alu/Br/Access/Alloc/CmpBranchLL;
  /// informational for the rest).
  Opcode Src = Opcode::Nop;
  /// Constituent flat instructions this op retires — its step and
  /// dispatch-tick charge.
  uint16_t NumSteps = 1;
  /// Bci of the first constituent.
  uint32_t Pc = 0;
  /// Constituents retired by the ops after this one when the trace runs
  /// to its fall-through end; the executing tier's post-allocation
  /// budget check uses it to decide whether to deopt.
  uint32_t StepsAfter = 0;
  int64_t A = 0;
  int64_t B = 0;
  int64_t C = 0;
};

/// One compiled trace: the superblock's ops plus the static shape facts
/// the executing tier needs.
struct CompiledTrace {
  uint32_t EntryPc = 0;
  /// Flat pc after the last constituent (the fall-through exit target).
  uint32_t EndPc = 0;
  /// Total constituent instructions when the trace runs end-to-end; the
  /// quantum/step-deadline admission check charges this worst case.
  uint32_t NumSteps = 0;
  /// Peak operand-stack growth above the entry depth (arena headroom).
  uint32_t MaxStackGrowth = 0;
  /// Operands consumed below the entry depth (entry Sp must cover it).
  uint32_t MinStackDepth = 0;
  std::vector<TraceOp> Ops;
};

struct MethodAnalysis;

/// Compiles the superblock starting at \p EntryPc in \p M. Returns
/// nullopt when the region is too short to pay for trace entry (the
/// site is dead — e.g. the pc sits right before an Invoke).
///
/// \p MA, when given, unlocks the analysis-proven forms: superblocks
/// extend across allocation sites the escape analysis proves
/// non-escaping (HookPre/Alloc/HookPost instead of ending the trace),
/// and CmpBranchLI side exits are admitted where the type-state depth
/// at the target matches the pattern entry and liveness shows no live
/// stack slot above the materialised depth. Null \p MA (or a proof
/// that does not hold) falls back to the base encodings, so traces
/// stay observationally identical to flat dispatch either way.
std::optional<CompiledTrace> compileTrace(const BytecodeMethod &M,
                                          uint32_t EntryPc,
                                          const TierConfig &Cfg,
                                          const MethodAnalysis *MA = nullptr);

} // namespace djx

#endif // DJX_BYTECODE_TRACECOMPILER_H
