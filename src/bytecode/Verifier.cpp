//===- Verifier.cpp - Structural bytecode checks ---------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Verifier.h"

#include "analysis/TypeState.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <unordered_map>

using namespace djx;

static void addError(VerifyResult &R, size_t Bci, const std::string &Msg) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "bci %zu: ", Bci);
  R.Errors.push_back(Buf + Msg);
}

StackEffect djx::instructionStackEffect(const Instruction &Inst) {
  switch (Inst.Op) {
  case Opcode::Nop:
  case Opcode::Goto:
  case Opcode::Return:
  case Opcode::AllocHookPre:
    return {0, 0};
  case Opcode::IConst:
  case Opcode::ILoad:
  case Opcode::ALoad:
  case Opcode::New:
    return {0, 1};
  case Opcode::IStore:
  case Opcode::AStore:
  case Opcode::Pop:
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfGe:
  case Opcode::IfNull:
  case Opcode::IfNonNull:
  case Opcode::IReturn:
  case Opcode::AReturn:
    return {1, 0};
  case Opcode::Dup:
    return {1, 2};
  case Opcode::Swap:
    return {2, 2};
  case Opcode::INeg:
  case Opcode::NewArray:
  case Opcode::ANewArray:
  case Opcode::ArrayLength:
  case Opcode::GetField:
  case Opcode::GetRefField:
    return {1, 1};
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::IDiv:
  case Opcode::IRem:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::IXor:
  case Opcode::IShl:
  case Opcode::IShr:
    return {2, 1};
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpGe:
  case Opcode::IfICmpGt:
  case Opcode::IfICmpLe:
    return {2, 0};
  case Opcode::PALoad:
  case Opcode::AALoad:
    return {2, 1};
  case Opcode::PutField:
  case Opcode::PutRefField:
    return {2, 0};
  case Opcode::PAStore:
  case Opcode::AAStore:
    return {3, 0};
  case Opcode::MultiANewArray:
    return {Inst.B > 0 ? static_cast<unsigned>(Inst.B) : 0u, 1};
  case Opcode::AllocHookPost:
    return {1, 1}; // Peeks the freshly allocated ref.
  case Opcode::Invoke:
    // Pops handled here; pushes resolved by the caller.
    return {Inst.B > 0 ? static_cast<unsigned>(Inst.B) : 0u, 0};
  }
  return {0, 0};
}

namespace {

bool isTerminal(Opcode Op) {
  return Op == Opcode::Return || Op == Opcode::IReturn ||
         Op == Opcode::AReturn;
}

/// Abstract operand-stack depth interval at one bci. The only source of
/// uncertainty is an Invoke whose callee return kind is unresolved
/// (verifyMethod on a lone method): it may push 0 or 1. With a resolver
/// (verifyProgram) the interval stays exact.
struct DepthRange {
  unsigned Lo = 0;
  unsigned Hi = 0;
  bool Visited = false;
};

/// Depth cap: deeper means an unbalanced loop is pumping the stack.
constexpr unsigned kMaxTrackedDepth = 1 << 16;

/// Worklist dataflow over depth intervals. \p InvokePush returns 0 or 1
/// for a resolved callee, -1 for unknown. Reports definite underflow
/// (even the maximal depth cannot feed the instruction's pops) — the
/// "bad operand count" class of malformed programs — without false
/// positives on valid code.
void verifyStackDepths(const BytecodeMethod &M,
                       int (*InvokePush)(const void *, const Instruction &),
                       const void *Ctx, VerifyResult &R) {
  size_t N = M.Code.size();
  std::vector<DepthRange> At(N);
  std::deque<size_t> Work;
  At[0] = {0, 0, true};
  Work.push_back(0);
  while (!Work.empty()) {
    size_t I = Work.front();
    Work.pop_front();
    const Instruction &Inst = M.Code[I];
    DepthRange Cur = At[I];
    StackEffect E = instructionStackEffect(Inst);
    if (Cur.Hi < E.Pops) {
      addError(R, I,
               "stack underflow: pops " + std::to_string(E.Pops) +
                   " with at most " + std::to_string(Cur.Hi) +
                   " on the stack");
      continue; // Successors of a broken state would cascade noise.
    }
    unsigned PushLo = E.Pushes;
    unsigned PushHi = E.Pushes;
    if (Inst.Op == Opcode::Invoke) {
      int P = InvokePush ? InvokePush(Ctx, Inst) : -1;
      PushLo = P < 0 ? 0 : static_cast<unsigned>(P);
      PushHi = P < 0 ? 1 : static_cast<unsigned>(P);
    }
    // Lo may dip below the pops when the uncertainty came from earlier
    // unresolved pushes; clamp at zero rather than flag a maybe.
    unsigned NextLo = Cur.Lo > E.Pops ? Cur.Lo - E.Pops + PushLo : PushLo;
    unsigned NextHi = Cur.Hi - E.Pops + PushHi;
    if (NextHi > kMaxTrackedDepth) {
      addError(R, I, "stack depth grows without bound (unbalanced loop?)");
      continue;
    }
    auto Flow = [&](size_t Succ) {
      if (Succ >= N)
        return; // Range errors are reported by the structural pass.
      DepthRange &D = At[Succ];
      if (D.Visited && D.Lo <= NextLo && D.Hi >= NextHi)
        return;
      D.Lo = D.Visited ? std::min(D.Lo, NextLo) : NextLo;
      D.Hi = D.Visited ? std::max(D.Hi, NextHi) : NextHi;
      D.Visited = true;
      Work.push_back(Succ);
    };
    if (isTerminal(Inst.Op))
      continue;
    if (Inst.Op == Opcode::Goto) {
      if (Inst.A >= 0)
        Flow(static_cast<size_t>(Inst.A));
      continue;
    }
    Flow(I + 1);
    if (isBranch(Inst.Op) && Inst.A >= 0)
      Flow(static_cast<size_t>(Inst.A));
  }
}

/// Program-level context for resolving Invoke callees by qualified name
/// (unlinked) or flattened method index (linked).
struct ProgramContext {
  std::unordered_map<std::string, const BytecodeMethod *> ByName;
  std::vector<const BytecodeMethod *> ByIndex;

  const BytecodeMethod *callee(const BytecodeMethod &Caller,
                               const Instruction &Inst) const {
    if (Inst.A < 0)
      return nullptr;
    if (Caller.RegistryId == kInvalidMethod) {
      if (static_cast<size_t>(Inst.A) >= Caller.CalleeRefs.size())
        return nullptr;
      auto It = ByName.find(Caller.CalleeRefs[Inst.A]);
      return It == ByName.end() ? nullptr : It->second;
    }
    return static_cast<size_t>(Inst.A) < ByIndex.size()
               ? ByIndex[Inst.A]
               : nullptr;
  }
};

} // namespace

VerifyResult djx::verifyMethod(const BytecodeMethod &M) {
  VerifyResult R;
  if (M.Code.empty()) {
    R.Errors.push_back("empty code");
    return R;
  }
  if (M.NumArgs > M.NumLocals)
    R.Errors.push_back("argument count exceeds local slots");
  size_t N = M.Code.size();
  for (size_t I = 0; I < N; ++I) {
    const Instruction &Inst = M.Code[I];
    if (isBranch(Inst.Op)) {
      if (Inst.A < 0 || static_cast<size_t>(Inst.A) >= N)
        addError(R, I, "branch target out of range");
    }
    switch (Inst.Op) {
    case Opcode::ILoad:
    case Opcode::IStore:
    case Opcode::ALoad:
    case Opcode::AStore:
      if (Inst.A < 0 || static_cast<size_t>(Inst.A) >= M.NumLocals)
        addError(R, I, "local slot out of range");
      break;
    case Opcode::Invoke:
      if (Inst.B < 0)
        addError(R, I, "negative argument count");
      // Unlinked methods index the callee table; linked ones index the
      // program, which the interpreter checks at call time.
      if (M.RegistryId == kInvalidMethod &&
          (Inst.A < 0 || static_cast<size_t>(Inst.A) >= M.CalleeRefs.size()))
        addError(R, I, "callee table index out of range");
      break;
    case Opcode::MultiANewArray:
      if (Inst.B < 1)
        addError(R, I, "multianewarray needs >= 1 dimension");
      break;
    default:
      break;
    }
  }
  Opcode LastOp = M.Code.back().Op;
  if (LastOp != Opcode::Return && LastOp != Opcode::IReturn &&
      LastOp != Opcode::AReturn && LastOp != Opcode::Goto)
    R.Errors.push_back("code does not end with a return or goto");
  for (size_t I = 1; I < M.LineTable.size(); ++I)
    if (M.LineTable[I - 1].Bci >= M.LineTable[I].Bci)
      R.Errors.push_back("line table not sorted by BCI");
  // Operand-count / stack-shape pass, only once the structure is sound
  // (the dataflow assumes in-range branch targets). Without a program,
  // Invoke pushes are unknown; the interval analysis stays conservative.
  if (R.ok())
    verifyStackDepths(M, nullptr, nullptr, R);
  return R;
}

VerifyResult djx::verifyProgram(const BytecodeProgram &P) {
  // Walk classes directly so unloaded programs can be verified before
  // linking, like a class-load-time verifier.
  VerifyResult All;
  ProgramContext Ctx;
  for (const ClassFile &C : P.classes())
    for (const BytecodeMethod &M : C.Methods) {
      Ctx.ByName.emplace(M.qualifiedName(), &M);
      Ctx.ByIndex.push_back(&M);
    }
  for (const ClassFile &C : P.classes())
    for (const BytecodeMethod &M : C.Methods) {
      VerifyResult R = verifyMethod(M);
      // Cross-method checks: Invoke operand counts against the callee's
      // declared arity, and a second depth pass with callee return
      // kinds resolved (exact where verifyMethod's was conservative).
      bool InvokesOk = true;
      for (size_t I = 0; I < M.Code.size(); ++I) {
        const Instruction &Inst = M.Code[I];
        if (Inst.Op != Opcode::Invoke)
          continue;
        const BytecodeMethod *Callee = Ctx.callee(M, Inst);
        if (!Callee) {
          std::string Name = "(bad callee table index)";
          if (M.RegistryId == kInvalidMethod && Inst.A >= 0 &&
              static_cast<size_t>(Inst.A) < M.CalleeRefs.size())
            Name = "'" + M.CalleeRefs[Inst.A] + "'";
          addError(R, I, "unresolved callee " + Name);
          InvokesOk = false;
          continue;
        }
        if (Inst.B < 0 || static_cast<uint32_t>(Inst.B) != Callee->NumArgs) {
          addError(R, I,
                   "invoke passes " + std::to_string(Inst.B) +
                       " arguments but " + Callee->qualifiedName() +
                       " takes " + std::to_string(Callee->NumArgs));
          InvokesOk = false;
        }
      }
      if (R.ok() && InvokesOk) {
        // Full type-state pass (src/analysis/): exact stack depths with
        // callee return kinds resolved, plus type-confusion checks
        // mirroring the dispatch loop's runtime asserts, merge-depth
        // conflicts, and unreachable-code detection. Subsumes the old
        // exact depth-only second pass; verifyMethod's conservative
        // interval pass already rejected definite underflow, so this
        // only runs on structurally sound methods.
        Cfg G = Cfg::build(M);
        CalleeResolver Resolve =
            [&Ctx, &M](const Instruction &Inst) -> const BytecodeMethod * {
          return Ctx.callee(M, Inst);
        };
        TypeStateResult TS = inferTypeStates(M, G, Resolve);
        for (const TypeStateError &E : TS.Errors)
          addError(R, E.Pc, E.Msg);
      }
      for (const std::string &E : R.Errors)
        All.Errors.push_back(M.qualifiedName() + ": " + E);
    }
  return All;
}
