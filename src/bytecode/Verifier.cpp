//===- Verifier.cpp - Structural bytecode checks ---------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Verifier.h"

#include <cstdio>

using namespace djx;

static void addError(VerifyResult &R, size_t Bci, const std::string &Msg) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "bci %zu: ", Bci);
  R.Errors.push_back(Buf + Msg);
}

VerifyResult djx::verifyMethod(const BytecodeMethod &M) {
  VerifyResult R;
  if (M.Code.empty()) {
    R.Errors.push_back("empty code");
    return R;
  }
  size_t N = M.Code.size();
  for (size_t I = 0; I < N; ++I) {
    const Instruction &Inst = M.Code[I];
    if (isBranch(Inst.Op)) {
      if (Inst.A < 0 || static_cast<size_t>(Inst.A) >= N)
        addError(R, I, "branch target out of range");
    }
    switch (Inst.Op) {
    case Opcode::ILoad:
    case Opcode::IStore:
    case Opcode::ALoad:
    case Opcode::AStore:
      if (Inst.A < 0 || static_cast<size_t>(Inst.A) >= M.NumLocals)
        addError(R, I, "local slot out of range");
      break;
    case Opcode::Invoke:
      if (Inst.B < 0)
        addError(R, I, "negative argument count");
      // Unlinked methods index the callee table; linked ones index the
      // program, which the interpreter checks at call time.
      if (M.RegistryId == kInvalidMethod &&
          (Inst.A < 0 || static_cast<size_t>(Inst.A) >= M.CalleeRefs.size()))
        addError(R, I, "callee table index out of range");
      break;
    case Opcode::MultiANewArray:
      if (Inst.B < 1)
        addError(R, I, "multianewarray needs >= 1 dimension");
      break;
    default:
      break;
    }
  }
  Opcode LastOp = M.Code.back().Op;
  if (LastOp != Opcode::Return && LastOp != Opcode::IReturn &&
      LastOp != Opcode::AReturn && LastOp != Opcode::Goto)
    R.Errors.push_back("code does not end with a return or goto");
  for (size_t I = 1; I < M.LineTable.size(); ++I)
    if (M.LineTable[I - 1].Bci >= M.LineTable[I].Bci)
      R.Errors.push_back("line table not sorted by BCI");
  return R;
}

VerifyResult djx::verifyProgram(const BytecodeProgram &P) {
  // Walk classes directly so unloaded programs can be verified before
  // linking, like a class-load-time verifier.
  VerifyResult All;
  for (const ClassFile &C : P.classes())
    for (const BytecodeMethod &M : C.Methods) {
      VerifyResult R = verifyMethod(M);
      for (const std::string &E : R.Errors)
        All.Errors.push_back(M.qualifiedName() + ": " + E);
    }
  return All;
}
