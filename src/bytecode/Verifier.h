//===- Verifier.h - Structural bytecode checks ------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight structural verifier run before a method executes or is
/// instrumented: branch targets in range, local indices in range, code
/// ends on an unconditional control transfer, and line table sorted.
/// Returns diagnostics instead of aborting so tests can assert on them.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_BYTECODE_VERIFIER_H
#define DJX_BYTECODE_VERIFIER_H

#include "bytecode/ClassFile.h"

#include <string>
#include <vector>

namespace djx {

/// Structural problems found in one method.
struct VerifyResult {
  std::vector<std::string> Errors;
  bool ok() const { return Errors.empty(); }
};

/// Static stack effect of one instruction: operands popped and results
/// pushed. Invoke is the one opcode whose push count depends on the
/// callee (void vs value return) and is handled by the caller.
struct StackEffect {
  unsigned Pops = 0;
  unsigned Pushes = 0;
};

/// The stack effect table behind the verifier's depth dataflow; also the
/// legality oracle for the trace compiler's shape analysis (a trace's
/// operand floor and peak growth are running sums of these).
StackEffect instructionStackEffect(const Instruction &Inst);

/// Verifies one method body.
VerifyResult verifyMethod(const BytecodeMethod &M);

/// Verifies every method of \p P; aggregates errors with method prefixes.
VerifyResult verifyProgram(const BytecodeProgram &P);

} // namespace djx

#endif // DJX_BYTECODE_VERIFIER_H
