//===- Analyzer.cpp - Offline profile merging -------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <unordered_map>

using namespace djx;

std::vector<const MergedGroup *>
MergedProfile::groupsByMetric(PerfEventKind Kind) const {
  std::vector<const MergedGroup *> Out;
  Out.reserve(Groups.size());
  for (const auto &[Node, G] : Groups) {
    (void)Node;
    Out.push_back(&G);
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [Kind](const MergedGroup *A, const MergedGroup *B) {
                     return A->Metrics.get(Kind) > B->Metrics.get(Kind);
                   });
  return Out;
}

double MergedProfile::shareOf(const MergedGroup &G,
                              PerfEventKind Kind) const {
  uint64_t Total = Totals.get(Kind);
  if (Total == 0)
    return 0.0;
  return static_cast<double>(G.Metrics.get(Kind)) /
         static_cast<double>(Total);
}

PlacementAdvice djx::placementAdvice(const MergedGroup &G) {
  PlacementAdvice Advice;
  if (G.AddressSamples == 0 || G.RemoteSamples * 20 < G.AddressSamples)
    return Advice; // Below a 5% remote share the placement is fine.
  uint64_t TotalAccessSide = 0;
  uint64_t DominantCount = 0;
  NumaNodeId DominantNode = kInvalidNode;
  for (const auto &[Node, Count] : G.AccessNodeSamples) {
    TotalAccessSide += Count;
    if (Count > DominantCount) { // '>' keeps the lowest node id on ties.
      DominantCount = Count;
      DominantNode = Node;
    }
  }
  if (TotalAccessSide == 0)
    return Advice; // No node attribution (NUMA tracking off).
  if (DominantCount * 4 >= TotalAccessSide * 3) {
    Advice.Hint = PlacementHint::Bind;
    Advice.TargetNode = DominantNode;
  } else {
    Advice.Hint = PlacementHint::Interleave;
  }
  return Advice;
}

MergedProfile
djx::mergeProfiles(const std::vector<const ThreadProfile *> &Parts) {
  MergedProfile Out;
  Out.ThreadsMerged = Parts.size();

  // Index profiles by thread so allocation identities resolve.
  std::unordered_map<uint64_t, const ThreadProfile *> ByThread;
  for (const ThreadProfile *P : Parts)
    ByThread.emplace(P->threadId(), P);

  // Resolves an AllocKey to a leaf node in the merged tree by replaying
  // the allocating thread's call path — the "merge call paths top-down"
  // step of §5.2.
  auto ResolveAllocNode = [&](const AllocKey &Key) -> CctNodeId {
    auto It = ByThread.find(Key.AllocThread);
    if (It == ByThread.end() || Key.AllocNode == kCctRoot)
      return kCctRoot; // Unknown provenance.
    return Out.Tree.insertPath(It->second->cct().path(Key.AllocNode));
  };

  for (const ThreadProfile *P : Parts) {
    // Per-thread access contexts remap through the merged tree.
    auto Remap = [&](CctNodeId Node) {
      return Out.Tree.insertPath(P->cct().path(Node));
    };

    for (const auto &[Key, G] : P->groups()) {
      CctNodeId AllocNode = ResolveAllocNode(Key);
      MergedGroup &M = Out.Groups[AllocNode];
      M.AllocNode = AllocNode;
      if (M.TypeName.empty())
        M.TypeName = G.TypeName;
      M.AllocCount += G.AllocCount;
      M.AllocBytes += G.AllocBytes;
      M.Metrics += G.Metrics;
      M.RemoteSamples += G.RemoteSamples;
      M.AddressSamples += G.AddressSamples;
      for (const auto &[Node, Count] : G.HomeNodeSamples)
        M.HomeNodeSamples[Node] += Count;
      for (const auto &[Node, Count] : G.AccessNodeSamples)
        M.AccessNodeSamples[Node] += Count;
      for (const auto &[Node, Counts] : G.AccessBreakdown)
        M.AccessBreakdown[Remap(Node)] += Counts;
    }
    for (const auto &[Node, Counts] : P->codeCentric())
      Out.CodeCentric[Remap(Node)] += Counts;
    Out.Totals += P->totals();
    Out.UnattributedSamples += P->unattributedSamples();
  }
  return Out;
}

std::optional<MergedProfile> djx::mergeProfileDir(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<ThreadProfile> Loaded;
  std::error_code Ec;
  for (const auto &Entry : fs::directory_iterator(Dir, Ec)) {
    if (Entry.path().extension() != ".djxprof")
      continue;
    std::ifstream In(Entry.path());
    ThreadProfile P;
    if (In && P.readFrom(In))
      Loaded.push_back(std::move(P));
  }
  if (Loaded.empty())
    return std::nullopt;
  std::vector<const ThreadProfile *> Ptrs;
  Ptrs.reserve(Loaded.size());
  for (const ThreadProfile &P : Loaded)
    Ptrs.push_back(&P);
  return mergeProfiles(Ptrs);
}

HierarchyStats
djx::mergeHierarchyStats(const std::vector<HierarchyStats> &Parts) {
  HierarchyStats Out;
  for (const HierarchyStats &P : Parts) {
    Out.Accesses += P.Accesses;
    Out.L1Misses += P.L1Misses;
    Out.L2Misses += P.L2Misses;
    Out.L3Misses += P.L3Misses;
    Out.TlbMisses += P.TlbMisses;
    Out.RemoteAccesses += P.RemoteAccesses;
    Out.TotalLatency += P.TotalLatency;
  }
  return Out;
}
