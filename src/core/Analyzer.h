//===- Analyzer.h - Offline profile merging ---------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DJXPerf's offline analyzer (§5.2): merges the per-thread profiles into
/// one view. CCTs are coalesced top-down — call paths equal across threads
/// share merged nodes and their metrics sum — and object groups whose
/// allocation call paths are identical are combined even when different
/// threads allocated or accessed them.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_CORE_ANALYZER_H
#define DJX_CORE_ANALYZER_H

#include "core/ThreadProfile.h"
#include "sim/MemoryHierarchy.h"

#include <map>
#include <string>
#include <vector>

namespace djx {

/// One object group after cross-thread merging.
struct MergedGroup {
  /// Leaf of the allocation call path in the merged CCT.
  CctNodeId AllocNode = kCctRoot;
  std::string TypeName;
  uint64_t AllocCount = 0;
  uint64_t AllocBytes = 0;
  MetricCounts Metrics;
  uint64_t RemoteSamples = 0;
  uint64_t AddressSamples = 0;
  /// Merged NUMA residency histograms (sums of the per-thread ones):
  /// where the sampled pages lived, and which nodes the accesses came
  /// from. Plain keyed sums, so the merge is interleaving-independent.
  std::map<NumaNodeId, uint64_t> HomeNodeSamples;
  std::map<NumaNodeId, uint64_t> AccessNodeSamples;
  /// Access contexts in the merged CCT.
  std::map<CctNodeId, MetricCounts> AccessBreakdown;
};

/// Placement remediation suggested for one merged group, mirroring the
/// paper's §7.5/§7.6 fixes.
enum class PlacementHint {
  None,       ///< Remote share too low to bother.
  Bind,       ///< One node issues nearly all accesses: numa_alloc_onnode.
  Interleave, ///< Accesses spread across nodes: numa_alloc_interleaved.
};

struct PlacementAdvice {
  PlacementHint Hint = PlacementHint::None;
  /// Bind target (the dominant accessing node); kInvalidNode otherwise.
  NumaNodeId TargetNode = kInvalidNode;
};

/// Derives the remediation hint from a group's access-node distribution:
/// no hint below a 5% remote share; bind to the dominant accessing node
/// when it issues >= 75% of the node-attributed accesses; interleave when
/// accesses are spread. Deterministic (ties break toward the lowest node
/// id via the ordered map).
PlacementAdvice placementAdvice(const MergedGroup &G);

/// The analyzer's output: one merged CCT plus merged tables.
struct MergedProfile {
  Cct Tree;
  /// Keyed by merged allocation node.
  std::map<CctNodeId, MergedGroup> Groups;
  std::map<CctNodeId, MetricCounts> CodeCentric;
  MetricCounts Totals;
  uint64_t UnattributedSamples = 0;
  uint64_t ThreadsMerged = 0;

  /// Groups sorted descending by \p Kind (poor locality first) — the
  /// presentation order of the paper's GUI.
  std::vector<const MergedGroup *> groupsByMetric(PerfEventKind Kind) const;

  /// Fraction of all samples of \p Kind attributed to \p G.
  double shareOf(const MergedGroup &G, PerfEventKind Kind) const;
};

/// Merges per-thread profiles. Allocation identities referring to a thread
/// whose profile is missing degrade to an "unknown context" group under
/// the merged root.
MergedProfile mergeProfiles(const std::vector<const ThreadProfile *> &Parts);

/// Convenience: loads every "*.djxprof" file in \p Dir and merges.
/// \returns nullopt when the directory holds no readable profiles.
std::optional<MergedProfile> mergeProfileDir(const std::string &Dir);

/// Deterministic merge of per-CPU / worker-private memory-hierarchy
/// counters (the parallel runtime keeps one hierarchy per simulated
/// thread): plain sums, so the result is identical for any host
/// interleaving. Callers pass parts in thread-id order by convention.
HierarchyStats mergeHierarchyStats(const std::vector<HierarchyStats> &Parts);

} // namespace djx

#endif // DJX_CORE_ANALYZER_H
