//===- Cct.cpp - Compact calling context tree -------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Cct.h"

#include <cassert>

using namespace djx;

Cct::Cct() {
  Nodes.push_back(Node{}); // Root.
}

CctNodeId Cct::child(CctNodeId Parent, MethodId Method, uint32_t Bci) {
  assert(Parent < Nodes.size() && "bad parent node");
  EdgeKey Key{Parent, Method, Bci};
  auto It = Edges.find(Key);
  if (It != Edges.end())
    return It->second;
  CctNodeId Id = static_cast<CctNodeId>(Nodes.size());
  Nodes.push_back(Node{Method, Bci, Parent});
  Edges.emplace(Key, Id);
  return Id;
}

CctNodeId Cct::insertPath(const std::vector<StackFrame> &Frames) {
  CctNodeId Cur = kCctRoot;
  for (const StackFrame &F : Frames)
    Cur = child(Cur, F.Method, F.Bci);
  return Cur;
}

std::vector<StackFrame> Cct::path(CctNodeId Node) const {
  assert(Node < Nodes.size() && "bad node");
  std::vector<StackFrame> Out;
  for (CctNodeId Cur = Node; Cur != kCctRoot; Cur = Nodes[Cur].Parent)
    Out.push_back(StackFrame{Nodes[Cur].Method, Nodes[Cur].Bci});
  std::vector<StackFrame> Reversed(Out.rbegin(), Out.rend());
  return Reversed;
}

size_t Cct::memoryFootprint() const {
  return Nodes.size() * sizeof(Node) +
         Edges.size() * (sizeof(EdgeKey) + sizeof(CctNodeId) + 16);
}
