//===- Cct.h - Compact calling context tree ---------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Calling context tree (Arnold & Sweeney): call paths sharing a prefix
/// share nodes, so per-thread context storage stays compact (§5.1). Nodes
/// are identified by (parent, method, BCI); node 0 is the synthetic root.
/// The profiler interns every allocation and sample context here and
/// attaches metrics externally, keyed by node id.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_CORE_CCT_H
#define DJX_CORE_CCT_H

#include "jvm/JavaThread.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace djx {

/// Index of a CCT node; 0 is the root.
using CctNodeId = uint32_t;
constexpr CctNodeId kCctRoot = 0;

/// Prefix-sharing calling context tree.
class Cct {
public:
  Cct();

  /// Interns one edge: the child of \p Parent labelled (Method, Bci).
  CctNodeId child(CctNodeId Parent, MethodId Method, uint32_t Bci);

  /// Interns a full root-first call path; returns the leaf node.
  CctNodeId insertPath(const std::vector<StackFrame> &Frames);

  /// Reconstructs the root-first path ending at \p Node.
  std::vector<StackFrame> path(CctNodeId Node) const;

  MethodId methodOf(CctNodeId Node) const { return Nodes[Node].Method; }
  uint32_t bciOf(CctNodeId Node) const { return Nodes[Node].Bci; }
  CctNodeId parentOf(CctNodeId Node) const { return Nodes[Node].Parent; }

  size_t size() const { return Nodes.size(); }
  size_t memoryFootprint() const;

private:
  struct Node {
    MethodId Method = kInvalidMethod;
    uint32_t Bci = 0;
    CctNodeId Parent = kCctRoot;
  };

  struct EdgeKey {
    CctNodeId Parent;
    MethodId Method;
    uint32_t Bci;
    bool operator==(const EdgeKey &O) const {
      return Parent == O.Parent && Method == O.Method && Bci == O.Bci;
    }
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey &K) const {
      uint64_t H = K.Parent;
      H = H * 0x9E3779B97F4A7C15ULL + K.Method;
      H = H * 0x9E3779B97F4A7C15ULL + K.Bci;
      return static_cast<size_t>(H ^ (H >> 32));
    }
  };

  std::vector<Node> Nodes;
  std::unordered_map<EdgeKey, CctNodeId, EdgeKeyHash> Edges;
};

} // namespace djx

#endif // DJX_CORE_CCT_H
