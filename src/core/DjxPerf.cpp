//===- DjxPerf.cpp - The DJXPerf object-centric profiler -------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"

#include <cassert>
#include <filesystem>
#include <fstream>

using namespace djx;

DjxPerf::DjxPerf(JavaVm &Vm, DjxPerfConfig Cfg)
    : Vm(Vm), Config(std::move(Cfg)) {
  if (Config.IndexShards > 1) {
    // Mirror the heap's shard geometry so a thread's inserts and lookups
    // land in "its" index shard (correct for any geometry; contention-free
    // for this one).
    uint64_t Span = Vm.config().HeapBytes / Config.IndexShards;
    Index.configureShards(Config.IndexShards, Span ? Span : 1);
  }
  JvmtiEnv &Jvmti = Vm.jvmti();

  Jvmti.onThreadStart([this](JavaThread &T) { onThreadStart(T); });
  Jvmti.onThreadEnd([this](JavaThread &T) { onThreadEnd(T); });

  // The Java agent's allocation channel (VM events stand in for the
  // instrumented hooks when the workload is API-level; see instrument()).
  Jvmti.onAllocation([this](const AllocationEvent &E) {
    if (!Active)
      return;
    recordAllocation(*E.Thread, E.Object, E.Type, E.TypeName, E.Size);
  });

  // memmove interposition: append to the relocation map (§4.5).
  Jvmti.onObjectMove([this](const ObjectMoveEvent &E) {
    if (!Active || !Config.HandleGcMoves)
      return;
    Index.recordMove(E.OldAddr, E.NewAddr, E.Size);
    AuxCycles.fetch_add(Config.MovePerObjectCycles,
                        std::memory_order_relaxed);
  });

  // finalize interposition: remove reclaimed intervals.
  Jvmti.onObjectFree([this](const ObjectFreeEvent &E) {
    if (!Active || !Config.HandleGcFrees)
      return;
    if (Index.erase(E.Addr))
      AuxCycles.fetch_add(Config.FreePerObjectCycles,
                          std::memory_order_relaxed);
  });

  // MXBean GC-finish notification: apply the relocation batch. Under the
  // Executor this fires at the stop-the-world safepoint — same code path,
  // same batch semantics.
  Jvmti.onGcFinish([this](const GcStats &) {
    if (!Active || !Config.HandleGcMoves)
      return;
    LiveObject Unknown; // AllocThread 0 / root node = unknown provenance.
    unsigned Applied = Index.applyRelocations(Unknown);
    AuxCycles.fetch_add(static_cast<uint64_t>(Applied) *
                            Config.GcBatchPerObjectCycles,
                        std::memory_order_relaxed);
  });
}

void DjxPerf::onThreadStart(JavaThread &T) {
  // Program the PMU once per thread, whether or not we are active yet; the
  // enable bit is what start()/stop() toggle. Lock-guarded: threads may be
  // started from host workers, and attach-mode start() enumerates
  // concurrently.
  SampleCtx *Ctx = nullptr;
  {
    SpinLockGuard G(AgentLock);
    if (PmuProgrammed.insert(T.id()).second) {
      // Deque keeps context addresses stable across later insertions.
      SampleCtxs.push_back(SampleCtx{this, &T});
      Ctx = &SampleCtxs.back();
    }
  }
  if (Ctx) {
    for (const PerfEventAttr &Attr : Config.Events)
      T.pmu().openEvent(Attr);
    // Devirtualised handler: a raw function pointer + stable context
    // instead of a std::function dispatch per delivered sample.
    T.pmu().setSampleHandler(
        [](void *C, const PerfSample &S) {
          auto *Sc = static_cast<SampleCtx *>(C);
          Sc->Prof->handleSample(*Sc->Thread, S);
        },
        Ctx);
  }
  if (Active)
    T.pmu().enable();
}

void DjxPerf::onThreadEnd(JavaThread &T) { T.pmu().disable(); }

void DjxPerf::start() {
  Active = true;
  // Attach mode: threads may already be running. allThreads() snapshots
  // the lock-guarded, reference-stable thread list, so enumeration is safe
  // even while workers start further threads.
  for (JavaThread *T : Vm.allThreads()) {
    if (!T->isAlive())
      continue;
    onThreadStart(*T);
    T->pmu().enable();
  }
}

void DjxPerf::stop() {
  Active = false;
  for (JavaThread *T : Vm.allThreads())
    T->pmu().disable();
}

unsigned DjxPerf::instrument(BytecodeProgram &Program) {
  return instrumentProgram(Program, Sites);
}

void DjxPerf::attachInterpreter(Interpreter &Interp) {
  Interp.setPublishVmAllocationEvents(false);
  AllocationHooks Hooks;
  Hooks.Pre = [this, &Interp](uint64_t) {
    if (Active)
      Vm.tick(Interp.thread(), Config.HookDispatchCycles / 2);
  };
  Hooks.Post = [this, &Interp](uint64_t SiteId, ObjectRef Obj) {
    (void)SiteId;
    if (!Active)
      return;
    JavaThread &T = Interp.thread();
    const ObjectInfo &Info = Vm.heap().info(Obj);
    recordAllocation(T, Obj, Info.Type, Vm.types().get(Info.Type).Name,
                     Info.Size);
  };
  Interp.setAllocationHooks(std::move(Hooks));
}

unsigned DjxPerf::instrument(BytecodeProgram &Program, Interpreter &Interp) {
  unsigned Count = instrument(Program);
  attachInterpreter(Interp);
  return Count;
}

ThreadProfile &DjxPerf::profileOf(JavaThread &T) {
  SpinLockGuard G(ProfilesLock);
  auto It = Profiles.find(T.id());
  if (It == Profiles.end())
    It = Profiles
             .emplace(T.id(),
                      std::make_unique<ThreadProfile>(T.id(), T.name()))
             .first;
  return *It->second;
}

void DjxPerf::recordAllocation(JavaThread &T, ObjectRef Obj, TypeId Type,
                               const std::string &TypeName, uint64_t Size) {
  AllocCallbacks.fetch_add(1, std::memory_order_relaxed);
  // The hook dispatch itself costs cycles even when the size filter
  // rejects the object — this is why callback-heavy benchmarks (mnemonics,
  // scrabble, ...) show the highest overheads in Figure 4.
  T.addCycles(Config.HookDispatchCycles);
  if (Size < Config.MinObjectSize)
    return;
  T.addCycles(Config.AllocCaptureCycles);
  ThreadProfile &P = profileOf(T);
  CctNodeId Node = P.cct().insertPath(Vm.asyncGetCallTrace(T));
  P.recordAllocation(Node, TypeName, Size);
  Index.insert(Obj, Size, LiveObject{T.id(), Node, Type, Size});
  Tracked.fetch_add(1, std::memory_order_relaxed);
}

void DjxPerf::handleSample(JavaThread &T, const PerfSample &S) {
  if (!Active)
    return;
  Samples.fetch_add(1, std::memory_order_relaxed);
  T.addCycles(Config.SampleHandleCycles);
  ThreadProfile &P = profileOf(T);
  CctNodeId AccessNode = P.cct().insertPath(Vm.asyncGetCallTrace(T));
  if (Config.CollectCodeCentric)
    P.recordCodeSample(AccessNode, S.Kind);

  std::optional<LiveObject> Obj = Index.lookup(S.EffectiveAddress);
  if (!Obj) {
    P.recordUnattributed(S.Kind);
    return;
  }
  bool Remote = false;
  NumaNodeId Home = kInvalidNode;
  NumaNodeId CpuNode = kInvalidNode;
  if (Config.TrackNuma) {
    // §4.3: move_pages gives the page's home node; PERF_SAMPLE_CPU gives
    // the accessing CPU's node. Resolved against the *thread's* hierarchy:
    // the shared machine in serial mode, the worker-private one under the
    // Executor.
    T.addCycles(Config.NumaQueryCycles);
    NumaTopology &Numa = T.machine().numa();
    Home = Numa.nodeOfAddr(S.EffectiveAddress);
    CpuNode = Numa.nodeOfCpu(S.Cpu);
    Remote = Home != kInvalidNode && Home != CpuNode;
  }
  bool Unknown = Obj->AllocThread == 0 && Obj->AllocNode == kCctRoot;
  const std::string &TypeName =
      Unknown ? std::string("<unknown>") : Vm.types().get(Obj->Type).Name;
  P.recordObjectSample(AllocKey{Obj->AllocThread, Obj->AllocNode}, TypeName,
                       S.Kind, AccessNode, Remote, Home, CpuNode);
}

std::vector<const ThreadProfile *> DjxPerf::profiles() const {
  SpinLockGuard G(ProfilesLock);
  std::vector<const ThreadProfile *> Out;
  Out.reserve(Profiles.size());
  for (const auto &[Tid, P] : Profiles) {
    (void)Tid;
    Out.push_back(P.get());
  }
  return Out;
}

const ThreadProfile *DjxPerf::profileForThread(uint64_t ThreadId) const {
  SpinLockGuard G(ProfilesLock);
  auto It = Profiles.find(ThreadId);
  return It == Profiles.end() ? nullptr : It->second.get();
}

MergedProfile DjxPerf::analyze() const { return mergeProfiles(profiles()); }

unsigned DjxPerf::writeProfiles(const std::string &Dir) const {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  unsigned Written = 0;
  for (const auto &[Tid, P] : Profiles) {
    std::ofstream Out(Dir + "/thread_" + std::to_string(Tid) + ".djxprof");
    if (!Out)
      continue;
    P->writeTo(Out);
    ++Written;
  }
  return Written;
}

size_t DjxPerf::memoryFootprint() const {
  size_t Bytes = const_cast<LiveObjectIndex &>(Index).memoryFootprint();
  for (const auto &[Tid, P] : Profiles) {
    (void)Tid;
    Bytes += P->memoryFootprint();
  }
  Bytes += Sites.size() * sizeof(AllocationSite);
  return Bytes;
}
