//===- DjxPerf.cpp - The DJXPerf object-centric profiler -------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"

#include "io/AtomicFile.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace djx;

DjxPerf::DjxPerf(JavaVm &Vm, DjxPerfConfig Cfg)
    : Vm(Vm), Config(std::move(Cfg)) {
  // Batched resolution requires the index to be mutation-quiescent
  // between drain points; only the GC interpositions guarantee that
  // (without them stale intervals linger and later inserts evict them
  // mid-window, so a deferred lookup could diverge from an inline one).
  Batching = Config.BatchedSampleResolution && Config.HandleGcMoves &&
             Config.HandleGcFrees;
  if (Config.IndexShards > 1) {
    // Mirror the heap's shard geometry so a thread's inserts and lookups
    // land in "its" index shard (correct for any geometry; contention-free
    // for this one).
    uint64_t Span = Vm.config().HeapBytes / Config.IndexShards;
    Index.configureShards(Config.IndexShards, Span ? Span : 1);
  }
  JvmtiEnv &Jvmti = Vm.jvmti();

  Jvmti.onThreadStart([this](JavaThread &T) { onThreadStart(T); });
  Jvmti.onThreadEnd([this](JavaThread &T) { onThreadEnd(T); });

  // The Java agent's allocation channel (VM events stand in for the
  // instrumented hooks when the workload is API-level; see instrument()).
  Jvmti.onAllocation([this](const AllocationEvent &E) {
    if (!Active)
      return;
    recordAllocation(*E.Thread, E.Object, E.Type, E.TypeName, E.Size);
  });

  // GC start: resolve every buffered sample against the pre-GC index
  // state — the free/move interpositions below are about to mutate it.
  // The world is stopped wherever a GC runs (the single mutator in
  // serial mode, a safepoint under the Executor), so draining all rings
  // here is race-free.
  Jvmti.onGcStart([this] {
    if (Batching)
      drainAllRings();
  });

  // Executor quantum boundary: drain the thread's ring on the worker
  // that just ran it (the per-quantum batch point of the hot path).
  Jvmti.onQuantumEnd([this](JavaThread &T) {
    if (!Batching)
      return;
    auto *Ctx = static_cast<SampleCtx *>(T.agentData());
    if (Ctx && Ctx->Prof == this)
      drainSampleRing(*Ctx);
  });

  // memmove interposition: append to the relocation map (§4.5).
  Jvmti.onObjectMove([this](const ObjectMoveEvent &E) {
    if (!Active || !Config.HandleGcMoves)
      return;
    Index.recordMove(E.OldAddr, E.NewAddr, E.Size);
    AuxCycles.fetch_add(Config.MovePerObjectCycles,
                        std::memory_order_relaxed);
  });

  // finalize interposition: remove reclaimed intervals.
  Jvmti.onObjectFree([this](const ObjectFreeEvent &E) {
    if (!Active || !Config.HandleGcFrees)
      return;
    if (Index.erase(E.Addr))
      AuxCycles.fetch_add(Config.FreePerObjectCycles,
                          std::memory_order_relaxed);
  });

  // MXBean GC-finish notification: apply the relocation batch. Under the
  // Executor this fires at the stop-the-world safepoint — same code path,
  // same batch semantics.
  Jvmti.onGcFinish([this](const GcStats &) {
    if (!Active || !Config.HandleGcMoves)
      return;
    LiveObject Unknown; // AllocThread 0 / root node = unknown provenance.
    unsigned Applied = Index.applyRelocations(Unknown);
    // GC finish is the one point where the world is provably stopped
    // and every ring was drained (at GC start), so no snapshot reader
    // can be in flight: reclaim the epochs retired by the relocation
    // batch and by this cycle's appends.
    Index.reclaimRetiredSnapshots();
    AuxCycles.fetch_add(static_cast<uint64_t>(Applied) *
                            Config.GcBatchPerObjectCycles,
                        std::memory_order_relaxed);
  });
}

void DjxPerf::onThreadStart(JavaThread &T) {
  // Program the PMU once per thread, whether or not we are active yet; the
  // enable bit is what start()/stop() toggle. Lock-guarded: threads may be
  // started from host workers, and attach-mode start() enumerates
  // concurrently.
  SampleCtx *Ctx = nullptr;
  {
    SpinLockGuard G(AgentLock);
    if (PmuProgrammed.insert(T.id()).second) {
      // Deque keeps context addresses stable across later insertions.
      SampleCtxs.push_back(SampleCtx{this, &T, SampleRing()});
      Ctx = &SampleCtxs.back();
    }
  }
  if (Ctx) {
    for (const PerfEventAttr &Attr : Config.Events)
      T.pmu().openEvent(Attr);
    // JVMTI thread-local storage: quantum-end callbacks reach the
    // thread's ring through this slot without a registry lookup.
    T.setAgentData(Ctx);
    // Devirtualised handler: a raw function pointer + stable context
    // instead of a std::function dispatch per delivered sample.
    T.pmu().setSampleHandler(
        [](void *C, const PerfSample &S) {
          auto *Sc = static_cast<SampleCtx *>(C);
          Sc->Prof->handleSample(*Sc, S);
        },
        Ctx);
  }
  if (Active)
    T.pmu().enable();
}

void DjxPerf::onThreadEnd(JavaThread &T) { T.pmu().disable(); }

void DjxPerf::start() {
  Active = true;
  // Attach mode: threads may already be running. allThreads() snapshots
  // the lock-guarded, reference-stable thread list, so enumeration is safe
  // even while workers start further threads.
  for (JavaThread *T : Vm.allThreads()) {
    if (!T->isAlive())
      continue;
    onThreadStart(*T);
    T->pmu().enable();
  }
}

void DjxPerf::stop() {
  Active = false;
  for (JavaThread *T : Vm.allThreads())
    T->pmu().disable();
  // Samples buffered since the last drain point still belong to the
  // profile; the world is quiescent by the stop() contract (no monitored
  // execution in flight).
  if (Batching)
    drainAllRings();
}

unsigned DjxPerf::instrument(BytecodeProgram &Program) {
  return instrumentProgram(Program, Sites);
}

void DjxPerf::attachInterpreter(Interpreter &Interp) {
  Interp.setPublishVmAllocationEvents(false);
  AllocationHooks Hooks;
  Hooks.Pre = [this, &Interp](uint64_t) {
    if (Active)
      Vm.tick(Interp.thread(), Config.HookDispatchCycles / 2);
  };
  Hooks.Post = [this, &Interp](uint64_t SiteId, ObjectRef Obj) {
    (void)SiteId;
    if (!Active)
      return;
    JavaThread &T = Interp.thread();
    const ObjectInfo &Info = Vm.heap().info(Obj);
    recordAllocation(T, Obj, Info.Type, Vm.types().get(Info.Type).Name,
                     Info.Size);
  };
  Interp.setAllocationHooks(std::move(Hooks));
}

unsigned DjxPerf::instrument(BytecodeProgram &Program, Interpreter &Interp) {
  // Launch mode: the profiler config carries the execution tier, applied
  // here before any instruction has run. (Executor-driven interpreters
  // get theirs from ExecutorConfig; attachInterpreter cannot retier an
  // interpreter whose call is already pending.)
  if (Config.Tier.Tier == ExecTier::Super &&
      Interp.tier() != ExecTier::Super)
    Interp.setTier(Config.Tier);
  unsigned Count = instrument(Program);
  attachInterpreter(Interp);
  return Count;
}

ThreadProfile &DjxPerf::profileOf(JavaThread &T) {
  SpinLockGuard G(ProfilesLock);
  auto It = Profiles.find(T.id());
  if (It == Profiles.end())
    It = Profiles
             .emplace(T.id(),
                      std::make_unique<ThreadProfile>(T.id(), T.name()))
             .first;
  return *It->second;
}

void DjxPerf::recordAllocation(JavaThread &T, ObjectRef Obj, TypeId Type,
                               const std::string &TypeName, uint64_t Size) {
  AllocCallbacks.fetch_add(1, std::memory_order_relaxed);
  // The hook dispatch itself costs cycles even when the size filter
  // rejects the object — this is why callback-heavy benchmarks (mnemonics,
  // scrabble, ...) show the highest overheads in Figure 4.
  T.addCycles(Config.HookDispatchCycles);
  if (Size < Config.MinObjectSize)
    return;
  T.addCycles(Config.AllocCaptureCycles);
  ThreadProfile &P = profileOf(T);
  CctNodeId Node = P.cct().insertPath(Vm.asyncGetCallTrace(T));
  P.recordAllocation(Node, TypeName, Size);
  // Allocation commit is a mutation batch point: samples this thread
  // buffered so far (its own zero-fill stores included) predate the
  // insert and must resolve against the pre-insert index — exactly what
  // inline resolution would have seen. Other threads cannot hold
  // pre-insert samples of this address: the object is unpublished until
  // the hook returns.
  if (Batching)
    if (auto *Ctx = static_cast<SampleCtx *>(T.agentData()))
      if (Ctx->Prof == this)
        drainSampleRing(*Ctx);
  Index.insert(Obj, Size, LiveObject{T.id(), Node, Type, Size});
  Tracked.fetch_add(1, std::memory_order_relaxed);
}

void DjxPerf::handleSample(SampleCtx &Ctx, const PerfSample &S) {
  if (!Active)
    return;
  JavaThread &T = *Ctx.Thread;
  Samples.fetch_add(1, std::memory_order_relaxed);
  T.addCycles(Config.SampleHandleCycles);
  ThreadProfile &P = profileOf(T);
  // The access context must be interned while the shadow stack is live —
  // and interning order defines CCT node ids — so it happens at sample
  // time in both modes; the code-centric view needs nothing else.
  CctNodeId AccessNode = P.cct().insertPath(Vm.asyncGetCallTrace(T));
  if (Config.CollectCodeCentric)
    P.recordCodeSample(AccessNode, S.Kind);

  if (!Batching) {
    resolveSampleInline(T, P, S.EffectiveAddress, AccessNode, S.Kind,
                        S.Cpu);
    return;
  }
  // Injected ring overflow (FaultInjector): the sample is dropped and
  // counted instead of buffered. Keyed on (thread, per-ring append
  // ordinal) — logical coordinates, so the same samples drop for every
  // --jobs value. Surfaced in reports as captured-vs-dropped.
  if (FaultInjector::shouldFail(FaultSite::RingPush, T.id(),
                                Ctx.Ring.totalAppends())) {
    Ctx.Ring.noteDrop();
    T.pmu().noteRingDroppedSample();
    RingDrops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Batched: identity resolution and the NUMA query are deferred to the
  // drain. A full ring drains in place on the owning worker, bounding
  // memory for long GC-free windows. A capacity-forced self-drain is
  // counted (it was previously silent) so overhead accounting can see
  // how often the mid-quantum path fires.
  if (Ctx.Ring.push(BufferedSample{S.EffectiveAddress, AccessNode, S.Cpu,
                                   S.Kind})) {
    Ctx.Ring.noteCapacityDrain();
    T.pmu().noteRingOverflowDrain();
    RingDrains.fetch_add(1, std::memory_order_relaxed);
    drainSampleRing(Ctx);
  }
}

void DjxPerf::resolveSampleInline(JavaThread &T, ThreadProfile &P,
                                  uint64_t Addr, CctNodeId AccessNode,
                                  PerfEventKind Kind, uint32_t Cpu) {
  std::optional<LiveObject> Obj = Index.lookup(Addr);
  if (!Obj) {
    P.recordUnattributed(Kind);
    return;
  }
  bool Remote = false;
  NumaNodeId Home = kInvalidNode;
  NumaNodeId CpuNode = kInvalidNode;
  if (Config.TrackNuma) {
    // §4.3: move_pages gives the page's home node; PERF_SAMPLE_CPU gives
    // the accessing CPU's node. Resolved against the *thread's* hierarchy:
    // the shared machine in serial mode, the worker-private one under the
    // Executor.
    T.addCycles(Config.NumaQueryCycles);
    NumaTopology &Numa = T.machine().numa();
    Home = Numa.nodeOfAddr(Addr);
    CpuNode = Numa.nodeOfCpu(Cpu);
    Remote = Home != kInvalidNode && Home != CpuNode;
  }
  bool Unknown = Obj->AllocThread == 0 && Obj->AllocNode == kCctRoot;
  const std::string &TypeName =
      Unknown ? std::string("<unknown>") : Vm.types().get(Obj->Type).Name;
  P.recordObjectSample(AllocKey{Obj->AllocThread, Obj->AllocNode}, TypeName,
                       Kind, AccessNode, Remote, Home, CpuNode);
}

void DjxPerf::drainSampleRing(SampleCtx &Ctx) {
  if (Ctx.Ring.empty())
    return;
  JavaThread &T = *Ctx.Thread;
  ThreadProfile &P = profileOf(T);
  std::vector<BufferedSample> &Batch = Ctx.Ring.entries();
  // Address order turns the batch's index walk into runs over the same
  // interval and page: the snapshot hint and the page memo below make
  // consecutive hits O(1). Deferral is result-invariant — lookups and
  // move_pages queries answer the same at the drain as at sample time,
  // because inserts land at fresh bump addresses, erases/relocations only
  // happen inside a GC (which drains first), and a page's home node
  // cannot change between its first touch and the next placement
  // mutation (also GC-fenced). stable_sort keeps equal addresses in
  // sample order, so aggregation order is deterministic too.
  std::stable_sort(Batch.begin(), Batch.end(),
                   [](const BufferedSample &A, const BufferedSample &B) {
                     return A.EffectiveAddress < B.EffectiveAddress;
                   });
  NumaTopology *Numa = Config.TrackNuma ? &T.machine().numa() : nullptr;
  const std::string UnknownName = "<unknown>";
  LiveObjectIndex::SnapshotHint Hint;
  uint64_t MemoPage = ~0ULL;
  NumaNodeId MemoHome = kInvalidNode;
  for (const BufferedSample &B : Batch) {
    std::optional<LiveObject> Obj =
        Index.lookupSnapshot(B.EffectiveAddress, &Hint);
    if (!Obj) {
      P.recordUnattributed(B.Kind);
      continue;
    }
    bool Remote = false;
    NumaNodeId Home = kInvalidNode;
    NumaNodeId CpuNode = kInvalidNode;
    if (Numa) {
      T.addCycles(Config.NumaQueryCycles);
      uint64_t Page = Numa->pageOf(B.EffectiveAddress);
      if (Page != MemoPage) {
        MemoPage = Page;
        MemoHome = Numa->nodeOfAddr(B.EffectiveAddress);
      }
      Home = MemoHome;
      CpuNode = Numa->nodeOfCpu(B.Cpu);
      Remote = Home != kInvalidNode && Home != CpuNode;
    }
    bool Unknown = Obj->AllocThread == 0 && Obj->AllocNode == kCctRoot;
    const std::string &TypeName =
        Unknown ? UnknownName : Vm.types().get(Obj->Type).Name;
    P.recordObjectSample(AllocKey{Obj->AllocThread, Obj->AllocNode},
                         TypeName, B.Kind, B.AccessNode, Remote, Home,
                         CpuNode);
  }
  Ctx.Ring.clear();
}

void DjxPerf::drainAllRings() {
  // Serialize whole-profiler drains against each other (concurrent
  // analyze()/profiles() callers); quantum-end and capacity drains stay
  // outside this lock because they are confined to the owning worker.
  std::lock_guard<std::mutex> DrainGuard(DrainAllLock);
  // Snapshot the context list under the agent lock, then drain without
  // it: draining touches the Profiles leaf lock and the index, and the
  // documented lock order forbids holding two profiler locks at once.
  std::vector<SampleCtx *> All;
  {
    SpinLockGuard G(AgentLock);
    All.reserve(SampleCtxs.size());
    for (SampleCtx &Ctx : SampleCtxs)
      All.push_back(&Ctx);
  }
  for (SampleCtx *Ctx : All)
    drainSampleRing(*Ctx);
}

std::vector<const ThreadProfile *> DjxPerf::profiles() const {
  // Results must reflect every delivered sample: flush rings that have
  // not hit a drain point yet (mid-run reads were already specified as
  // quiescent-only; see drainAllRings).
  if (Batching)
    const_cast<DjxPerf *>(this)->drainAllRings();
  SpinLockGuard G(ProfilesLock);
  std::vector<const ThreadProfile *> Out;
  Out.reserve(Profiles.size());
  for (const auto &[Tid, P] : Profiles) {
    (void)Tid;
    Out.push_back(P.get());
  }
  return Out;
}

const ThreadProfile *DjxPerf::profileForThread(uint64_t ThreadId) const {
  if (Batching)
    const_cast<DjxPerf *>(this)->drainAllRings();
  SpinLockGuard G(ProfilesLock);
  auto It = Profiles.find(ThreadId);
  return It == Profiles.end() ? nullptr : It->second.get();
}

MergedProfile DjxPerf::analyze() const { return mergeProfiles(profiles()); }

unsigned DjxPerf::writeProfiles(const std::string &Dir) const {
  if (Batching)
    const_cast<DjxPerf *>(this)->drainAllRings();
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  unsigned Written = 0;
  SpinLockGuard G(ProfilesLock);
  for (const auto &[Tid, P] : Profiles) {
    std::ostringstream OS;
    P->writeTo(OS);
    // Atomic replacement: a reader (or a crash) never sees a torn
    // .djxprof file.
    if (writeFileAtomic(Dir + "/thread_" + std::to_string(Tid) + ".djxprof",
                        OS.str()))
      ++Written;
  }
  return Written;
}

size_t DjxPerf::memoryFootprint() const {
  size_t Bytes = const_cast<LiveObjectIndex &>(Index).memoryFootprint();
  SpinLockGuard G(ProfilesLock);
  for (const auto &[Tid, P] : Profiles) {
    (void)Tid;
    Bytes += P->memoryFootprint();
  }
  Bytes += Sites.size() * sizeof(AllocationSite);
  return Bytes;
}
