//===- DjxPerf.h - The DJXPerf object-centric profiler ----------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Public entry point of the profiler. DjxPerf bundles the paper's two
/// agents:
///
///  * the **Java agent** (§4.1): captures object allocations — either from
///    the VM's allocation events, or from bytecode rewritten by
///    instrument() exactly as ASM would rewrite new/newarray/anewarray/
///    multianewarray — applies the size filter S, walks the allocation call
///    path, and inserts the object's address range into the shared
///    interval splay tree;
///
///  * the **JVMTI agent** (§4.1, §4.2): programs per-thread PMU events at
///    thread start, handles overflow "signals", attributes each sampled
///    effective address to the enclosing object, and diagnoses NUMA
///    remote accesses via the move_pages analogue (§4.3). Attribution
///    runs batched by default: the handler buffers samples in a
///    thread-private ring and a per-quantum drain resolves them against
///    the index's lock-free epoch snapshot (see
///    DjxPerfConfig::BatchedSampleResolution).
///
/// GC interference (§4.5) is handled by the memmove/finalize
/// interpositions feeding a relocation map that is applied in batch on the
/// GC-finish (MXBean) notification.
///
/// Typical usage:
/// \code
///   JavaVm Vm;
///   DjxPerf Profiler(Vm);          // launch mode: before the workload
///   Profiler.start();
///   runWorkload(Vm);
///   Profiler.stop();
///   MergedProfile P = Profiler.analyze();
///   puts(renderObjectCentric(P, Vm.methods()).c_str());
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DJX_CORE_DJXPERF_H
#define DJX_CORE_DJXPERF_H

#include "core/Analyzer.h"
#include "core/LiveObjectIndex.h"
#include "core/ThreadProfile.h"
#include "instrument/AllocationInstrumenter.h"
#include "interp/Interpreter.h"
#include "jvm/JavaVm.h"
#include "pmu/SampleRing.h"
#include "support/SpinLock.h"
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace djx {

/// Profiler configuration, including the measurement cost model used for
/// the overhead experiments (cycles charged to monitored threads for the
/// work the profiler performs on their behalf).
struct DjxPerfConfig {
  /// PMU events to sample. The default is the paper's preset: L1 cache
  /// misses. Periods are scaled to the simulator's event rates; the paper
  /// uses 5M on real hardware targeting 20-200 samples/s/thread (§5.1).
  std::vector<PerfEventAttr> Events = {
      PerfEventAttr{PerfEventKind::L1Miss, 512, 64}};
  /// Size filter S: allocations below this are not tracked (§5.1;
  /// default 1 KiB, 0 monitors every object).
  uint64_t MinObjectSize = 1024;
  /// GC handling (§4.5); disabling either is the abl-gc ablation.
  bool HandleGcMoves = true;
  bool HandleGcFrees = true;
  /// NUMA remote-access diagnosis (§4.3).
  bool TrackNuma = true;
  /// Also collect the code-centric (perf-style) view.
  bool CollectCodeCentric = true;
  /// Shards for the live-object index (1 = the paper's single splay tree;
  /// parallel workloads set one shard per simulated thread so inserts and
  /// lookups from different threads don't serialize). The shard span is
  /// derived from the VM's heap geometry. Part of the workload
  /// configuration, NOT of --jobs: results must not depend on host
  /// parallelism.
  unsigned IndexShards = 1;
  /// Batched sample resolution (the default hot path): the overflow
  /// handler appends (address, context, metrics) to the thread's ring and
  /// a per-quantum drain resolves the batch — sorted by address — against
  /// the index's lock-free epoch snapshot. Reports are byte-identical to
  /// inline resolution because the index only mutates observably at drain
  /// boundaries: inserts land at fresh bump addresses, and erases /
  /// relocations happen only inside a GC, which drains first. Set false
  /// to resolve inline through the locked splay tree (the paper's
  /// original design; bench_ablation_splay_tree's baseline). Forced off
  /// when either GC interposition is disabled — without them the index
  /// can evict stale intervals mid-window, which would make deferred
  /// lookups diverge from inline ones.
  bool BatchedSampleResolution = true;
  /// Execution tier for interpreters this profiler launches with
  /// (`--tier`): instrument(Program, Interp) applies it before the first
  /// instruction runs. Executor-driven interpreters take their tier from
  /// ExecutorConfig/ParallelConfig instead (the CLI forwards this field
  /// there). Never changes results — super-tier profiles are
  /// byte-identical to interp-tier ones.
  TierConfig Tier;

  // --- Measurement cost model (cycles) ----------------------------------
  /// Dispatch of an allocation hook, paid even when the size filter
  /// rejects the object. The inserted hook is a call into the agent (a
  /// JNI crossing on a real JVM), so it costs ~100 cycles even when it
  /// does no work — the reason callback-heavy benchmarks dominate
  /// Figure 4's runtime overhead.
  uint32_t HookDispatchCycles = 100;
  /// Call-path capture + splay insertion for a tracked allocation.
  uint32_t AllocCaptureCycles = 180;
  /// Overflow signal handling + splay lookup + CCT update per sample.
  uint32_t SampleHandleCycles = 350;
  /// move_pages query per sample when TrackNuma.
  uint32_t NumaQueryCycles = 120;
  /// finalize interposition per reclaimed object.
  uint32_t FreePerObjectCycles = 25;
  /// memmove interposition per moved object (relocation-map append).
  uint32_t MovePerObjectCycles = 30;
  /// Batched splay update per relocation at GC finish.
  uint32_t GcBatchPerObjectCycles = 45;
};

/// The profiler. Construct against a VM, start() before (launch mode) or
/// during (attach mode) the workload, stop() when done, then analyze().
/// The DjxPerf object must outlive all monitored execution.
class DjxPerf {
public:
  explicit DjxPerf(JavaVm &Vm, DjxPerfConfig Config = DjxPerfConfig());

  DjxPerf(const DjxPerf &) = delete;
  DjxPerf &operator=(const DjxPerf &) = delete;

  /// Begins monitoring. In attach mode (threads already running), enables
  /// PMUs on every live thread; allocations made before attach are
  /// untracked, exactly as in the paper's attach mode.
  void start();

  /// Stops monitoring (detach). Profiles remain available.
  void stop();

  bool isActive() const { return Active; }

  /// Bytecode mode: rewrites \p Program's allocation opcodes with ASM-style
  /// hooks and routes them to this agent via \p Interp. Disables the VM's
  /// own allocation events to avoid double counting.
  /// \returns the number of allocation sites instrumented.
  unsigned instrument(BytecodeProgram &Program, Interpreter &Interp);

  /// Rewrite-only half of instrument(): instruments \p Program without
  /// binding an interpreter. Use with attachInterpreter() when several
  /// interpreters (one per simulated thread) execute the same program.
  unsigned instrument(BytecodeProgram &Program);

  /// Routes \p Interp's allocation hooks to this agent and disables the
  /// VM-level allocation channel (no double counting). One call per
  /// interpreter; must precede execution.
  void attachInterpreter(Interpreter &Interp);

  // --- Results ------------------------------------------------------------
  std::vector<const ThreadProfile *> profiles() const;
  const ThreadProfile *profileForThread(uint64_t ThreadId) const;

  /// Runs the offline analyzer over all per-thread profiles.
  MergedProfile analyze() const;

  /// Writes one "<Dir>/thread_<id>.djxprof" file per thread profile.
  /// \returns the number of files written.
  unsigned writeProfiles(const std::string &Dir) const;

  LiveObjectIndex &index() { return Index; }
  const AllocationSiteTable &sites() const { return Sites; }

  // --- Instrumentation statistics ------------------------------------------
  // Relaxed atomics: bumped from concurrent host workers under the
  // Executor; sums are interleaving-independent, so still deterministic.
  uint64_t samplesHandled() const {
    return Samples.load(std::memory_order_relaxed);
  }
  uint64_t allocationCallbacks() const {
    return AllocCallbacks.load(std::memory_order_relaxed);
  }
  uint64_t allocationsTracked() const {
    return Tracked.load(std::memory_order_relaxed);
  }
  /// Profiler work not attributable to one thread (GC batch updates).
  uint64_t auxOverheadCycles() const {
    return AuxCycles.load(std::memory_order_relaxed);
  }
  /// Samples dropped at ring-append time (injected overflow). Counted in
  /// samplesHandled() but absent from every profile: captured =
  /// samplesHandled() - samplesDropped().
  uint64_t samplesDropped() const {
    return RingDrops.load(std::memory_order_relaxed);
  }
  /// Capacity-forced mid-quantum ring self-drains (previously silent).
  uint64_t ringOverflowDrains() const {
    return RingDrains.load(std::memory_order_relaxed);
  }
  /// Bytes held by profiler data structures (splay tree, CCTs, tables).
  size_t memoryFootprint() const;

  const DjxPerfConfig &config() const { return Config; }

  /// Whether samples are being resolved batched (config flag AND both GC
  /// interpositions enabled — see DjxPerfConfig::BatchedSampleResolution).
  bool batchedResolutionActive() const { return Batching; }

private:
  /// Context for the devirtualised PMU overflow handler (one per
  /// monitored thread; deque keeps addresses stable). Owns the thread's
  /// sample ring; Ring is thread-confined to whichever host worker is
  /// executing the thread's quantum.
  struct SampleCtx {
    DjxPerf *Prof;
    JavaThread *Thread;
    SampleRing Ring;
  };

  void onThreadStart(JavaThread &T);
  void onThreadEnd(JavaThread &T);
  void recordAllocation(JavaThread &T, ObjectRef Obj, TypeId Type,
                        const std::string &TypeName, uint64_t Size);
  void handleSample(SampleCtx &Ctx, const PerfSample &S);
  /// Inline (locked splay) resolution of one sample: the ablation path.
  void resolveSampleInline(JavaThread &T, ThreadProfile &P, uint64_t Addr,
                           CctNodeId AccessNode, PerfEventKind Kind,
                           uint32_t Cpu);
  /// Batched resolution: sorts \p Ctx's ring by address and resolves it
  /// against the index's epoch snapshot with zero locks. Must run on the
  /// worker owning the thread's quantum, or with the world stopped.
  void drainSampleRing(SampleCtx &Ctx);
  /// Drains every thread's ring. Only legal at quiescent points (GC
  /// start, stop(), post-run analysis): no quantum may be in flight.
  /// Serialized by DrainAllLock so concurrent result readers (two
  /// threads calling analyze()/profiles() after a run) cannot race each
  /// other over the same rings.
  void drainAllRings();
  ThreadProfile &profileOf(JavaThread &T);

  JavaVm &Vm;
  DjxPerfConfig Config;
  LiveObjectIndex Index;
  AllocationSiteTable Sites;
  std::deque<SampleCtx> SampleCtxs DJX_GUARDED_BY(AgentLock);
  std::map<uint64_t, std::unique_ptr<ThreadProfile>> Profiles
      DJX_GUARDED_BY(ProfilesLock);
  std::set<uint64_t> PmuProgrammed DJX_GUARDED_BY(AgentLock);
  // Locking order (innermost last; a thread never holds two of these):
  //   1. LiveObjectIndex shard locks (leaf; applyRelocations takes all
  //      shard locks in index order, and is the only multi-lock site),
  //   2. AgentLock  — guards SampleCtxs + PmuProgrammed (thread start/end,
  //      attach enumeration),
  //   3. ProfilesLock — guards the Profiles map (find-or-create only; the
  //      per-thread ThreadProfile itself is owned by the simulated
  //      thread's worker and needs no lock).
  // JavaVm's ThreadsLock/RootsLock are independent leaves; DjxPerf code
  // never calls into the VM while holding AgentLock/ProfilesLock.
  SpinLock AgentLock;
  // Mutable: the read-side accessors (profiles(), profileForThread()) are
  // logically const but still synchronize.
  mutable SpinLock ProfilesLock;
  /// Outermost drain-all serialization (held across AgentLock and the
  /// per-ring drains; never taken while holding another profiler lock).
  std::mutex DrainAllLock;
  bool Active = false;
  /// Effective batching switch (config AND both GC interpositions on).
  bool Batching = false;
  std::atomic<uint64_t> Samples{0};
  std::atomic<uint64_t> AllocCallbacks{0};
  std::atomic<uint64_t> Tracked{0};
  std::atomic<uint64_t> AuxCycles{0};
  std::atomic<uint64_t> RingDrops{0};
  std::atomic<uint64_t> RingDrains{0};
};

} // namespace djx

#endif // DJX_CORE_DJXPERF_H
