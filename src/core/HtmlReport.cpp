//===- HtmlReport.cpp - Self-contained HTML profile view -------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/HtmlReport.h"

#include "io/AtomicFile.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace djx;

static std::string escapeHtml(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '&':
      Out += "&amp;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

static std::string fmtPct(double F) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", F * 100.0);
  return Buf;
}

/// Renders a call path as nested list items, root first (the GUI's
/// top-down tree pane).
static void emitPath(std::ostringstream &OS, const Cct &Tree,
                     CctNodeId Leaf, const MethodRegistry &Methods,
                     const char *CssClass) {
  if (Leaf == kCctRoot) {
    OS << "<div class=\"" << CssClass
       << "\">&lt;unknown allocation context&gt;</div>\n";
    return;
  }
  std::vector<StackFrame> Frames = Tree.path(Leaf);
  OS << "<div class=\"" << CssClass << "\">";
  for (size_t I = 0; I < Frames.size(); ++I) {
    const StackFrame &F = Frames[I];
    if (I)
      OS << "<span class=\"arrow\"> &rarr; </span>";
    OS << escapeHtml(Methods.qualifiedName(F.Method)) << ":"
       << Methods.lineForBci(F.Method, F.Bci);
  }
  OS << "</div>\n";
}

std::string djx::renderHtmlReport(const MergedProfile &P,
                                  const MethodRegistry &Methods,
                                  const ReportOptions &Opts,
                                  const std::string &Title) {
  PerfEventKind Kind = Opts.SortKind;
  uint64_t Total = P.Totals.get(Kind);
  std::ostringstream OS;
  OS << "<!doctype html><html><head><meta charset=\"utf-8\">\n"
     << "<title>" << escapeHtml(Title) << "</title>\n<style>\n"
     << "body{font:14px/1.45 -apple-system,Segoe UI,sans-serif;margin:2em;"
        "max-width:70em}\n"
     << "h1{font-size:1.4em} .meta{color:#555}\n"
     << ".group{border:1px solid #ddd;border-radius:6px;margin:1em 0;"
        "padding:.8em 1em}\n"
     << ".bar{background:#e8eefc;height:1.1em;border-radius:3px;"
        "position:relative;margin:.3em 0}\n"
     << ".bar>span{background:#4a7bd8;display:block;height:100%;"
        "border-radius:3px}\n"
     << ".alloc{color:#b03030;font-family:monospace;margin:.2em 0}\n"
     << ".access{color:#2050a0;font-family:monospace;margin:.15em 0 "
        ".15em 1.5em}\n"
     << ".arrow{color:#999} .pct{font-weight:600}\n"
     << "table{border-collapse:collapse;margin-top:.5em}\n"
     << "td,th{border:1px solid #ddd;padding:.25em .6em;text-align:left;"
        "font-family:monospace}\n"
     << "</style></head><body>\n";
  OS << "<h1>" << escapeHtml(Title) << "</h1>\n";
  OS << "<p class=\"meta\">sorted by " << perfEventName(Kind) << " &middot; "
     << Total << " samples &middot; " << P.ThreadsMerged
     << " thread(s) merged &middot; " << P.UnattributedSamples
     << " unattributed</p>\n";

  unsigned Shown = 0;
  for (const MergedGroup *G : P.groupsByMetric(Kind)) {
    if (Shown >= Opts.TopGroups || G->Metrics.get(Kind) == 0)
      break;
    double Share = P.shareOf(*G, Kind);
    if (Share < Opts.MinShare)
      break;
    ++Shown;
    OS << "<div class=\"group\">\n<b>#" << Shown << " "
       << escapeHtml(G->TypeName) << "</b> <span class=\"pct\">"
       << fmtPct(Share) << "</span> (" << G->Metrics.get(Kind)
       << " samples), allocated " << G->AllocCount << " time(s), "
       << G->AllocBytes << " bytes total";
    if (Opts.ShowNuma && G->AddressSamples)
      OS << ", NUMA remote "
         << fmtPct(static_cast<double>(G->RemoteSamples) /
                   static_cast<double>(G->AddressSamples));
    OS << "\n<div class=\"bar\"><span style=\"width:"
       << fmtPct(Share) << "\"></span></div>\n";
    if (Opts.ShowNuma && G->RemoteSamples) {
      // Node residency + remediation, shown only for groups with remote
      // traffic (NUMA-clean reports keep their previous bytes, so the
      // style is inline rather than a new rule in the shared header).
      OS << "<div style=\"color:#6a40a0;font-family:monospace;"
            "margin:.2em 0\">residency:";
      for (const auto &[Node, Count] : G->HomeNodeSamples)
        OS << " node" << Node << ":" << Count;
      OS << " &middot; accessed-from:";
      for (const auto &[Node, Count] : G->AccessNodeSamples)
        OS << " node" << Node << ":" << Count;
      PlacementAdvice Advice = placementAdvice(*G);
      if (Advice.Hint == PlacementHint::Bind)
        OS << " &middot; <b>hint: numa_alloc_onnode(node "
           << Advice.TargetNode << ")</b>";
      else if (Advice.Hint == PlacementHint::Interleave)
        OS << " &middot; <b>hint: numa_alloc_interleaved</b>";
      OS << "</div>\n";
    }
    emitPath(OS, P.Tree, G->AllocNode, Methods, "alloc");

    std::vector<std::pair<CctNodeId, uint64_t>> Accesses;
    for (const auto &[Node, M] : G->AccessBreakdown)
      if (M.get(Kind))
        Accesses.emplace_back(Node, M.get(Kind));
    std::stable_sort(Accesses.begin(), Accesses.end(),
                     [](const auto &A, const auto &B) {
                       return A.second > B.second;
                     });
    unsigned AShown = 0;
    for (const auto &[Node, Count] : Accesses) {
      if (AShown++ >= Opts.TopAccessContexts)
        break;
      double AShare = static_cast<double>(Count) /
                      static_cast<double>(G->Metrics.get(Kind));
      OS << "<div class=\"access\">[" << fmtPct(AShare) << "] ";
      std::vector<StackFrame> Frames = P.Tree.path(Node);
      for (size_t I = 0; I < Frames.size(); ++I) {
        if (I)
          OS << "<span class=\"arrow\"> &rarr; </span>";
        OS << escapeHtml(Methods.qualifiedName(Frames[I].Method)) << ":"
           << Methods.lineForBci(Frames[I].Method, Frames[I].Bci);
      }
      OS << "</div>\n";
    }
    OS << "</div>\n";
  }
  if (Shown == 0)
    OS << "<p>(no object groups with " << perfEventName(Kind)
       << " samples)</p>\n";

  // Flat code-centric comparison table.
  OS << "<h1>code-centric view (perf-style)</h1>\n<table>\n"
     << "<tr><th>share</th><th>samples</th><th>context</th></tr>\n";
  std::vector<std::pair<CctNodeId, uint64_t>> Rows;
  for (const auto &[Node, M] : P.CodeCentric)
    if (M.get(Kind))
      Rows.emplace_back(Node, M.get(Kind));
  std::stable_sort(
      Rows.begin(), Rows.end(),
      [](const auto &A, const auto &B) { return A.second > B.second; });
  unsigned CShown = 0;
  for (const auto &[Node, Count] : Rows) {
    if (CShown++ >= Opts.TopGroups)
      break;
    OS << "<tr><td>"
       << fmtPct(Total ? static_cast<double>(Count) /
                             static_cast<double>(Total)
                       : 0.0)
       << "</td><td>" << Count << "</td><td>";
    std::vector<StackFrame> Frames = P.Tree.path(Node);
    for (size_t I = 0; I < Frames.size(); ++I) {
      if (I)
        OS << " &rarr; ";
      OS << escapeHtml(Methods.qualifiedName(Frames[I].Method)) << ":"
         << Methods.lineForBci(Frames[I].Method, Frames[I].Bci);
    }
    OS << "</td></tr>\n";
  }
  OS << "</table>\n</body></html>\n";
  return OS.str();
}

bool djx::writeHtmlReport(const MergedProfile &P,
                          const MethodRegistry &Methods,
                          const std::string &Path,
                          const ReportOptions &Opts,
                          const std::string &Title) {
  // Atomic replacement (tmp + fsync + rename): an interrupted CLI never
  // leaves a truncated HTML report behind.
  return writeFileAtomic(Path, renderHtmlReport(P, Methods, Opts, Title));
}
