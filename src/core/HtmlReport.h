//===- HtmlReport.h - Self-contained HTML profile view ---------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HTML analogue of the paper's Python GUI (Figure 5): one self-contained
/// page with the top object groups, expandable allocation/access call
/// paths, per-group metric bars, NUMA remote-access percentages, and the
/// flat code-centric table for comparison. No external assets.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_CORE_HTMLREPORT_H
#define DJX_CORE_HTMLREPORT_H

#include "core/Analyzer.h"
#include "core/Report.h"
#include "jvm/MethodRegistry.h"

#include <string>

namespace djx {

/// Renders \p P as a self-contained HTML document.
std::string renderHtmlReport(const MergedProfile &P,
                             const MethodRegistry &Methods,
                             const ReportOptions &Opts = ReportOptions(),
                             const std::string &Title = "DJXPerf profile");

/// Renders and writes to \p Path. \returns false on I/O failure.
bool writeHtmlReport(const MergedProfile &P, const MethodRegistry &Methods,
                     const std::string &Path,
                     const ReportOptions &Opts = ReportOptions(),
                     const std::string &Title = "DJXPerf profile");

} // namespace djx

#endif // DJX_CORE_HTMLREPORT_H
