//===- LiveObjectIndex.cpp - Sharded object interval index -----------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/LiveObjectIndex.h"

#include <cassert>
#include <vector>

using namespace djx;

void LiveObjectIndex::configureShards(unsigned NumShards,
                                      uint64_t SpanBytes) {
  assert(NumShards >= 1 && "index needs at least one shard");
  assert((NumShards == 1 || SpanBytes > 0) &&
         "multi-shard index needs an address span");
#ifndef NDEBUG
  for (Shard &S : Shards)
    assert(S.Tree.size() == 0 && S.RelocationMap.empty() &&
           "reconfiguring a non-empty index");
#endif
  Shards.clear();
  Shards.resize(NumShards);
  this->SpanBytes = SpanBytes ? SpanBytes : ~0ULL;
}

void LiveObjectIndex::rebuildSnapshotLocked(Shard &S) {
  // Publish a fresh epoch built from the tree: sorted by Start, live
  // entries only, with headroom for sorted appends. The previous epoch
  // stays in SnapStorage — a reader that loaded its pointer before the
  // publish may still be walking it.
  auto Entries = S.Tree.entries();
  size_t Cap = Entries.size() * 2;
  if (Cap < 64)
    Cap = 64;
  auto Fresh = std::make_unique<Snapshot>(Cap);
  for (size_t I = 0; I < Entries.size(); ++I)
    Fresh->Entries[I] =
        SnapEntry{Entries[I].Start, Entries[I].End, Entries[I].Value};
  Fresh->Count.store(Entries.size(), std::memory_order_relaxed);
  S.LastSnapStart = Entries.empty() ? 0 : Entries.back().Start;
  // Entry/count stores above happen-before this release publication.
  S.Snap.store(Fresh.get(), std::memory_order_release);
  S.SnapStorage.push_back(std::move(Fresh));
}

void LiveObjectIndex::snapshotAppendLocked(Shard &S, uint64_t Start,
                                           uint64_t End,
                                           const LiveObject &Obj,
                                           bool ForceRebuild) {
  Snapshot *Sn = S.Snap.load(std::memory_order_relaxed);
  size_t N = Sn ? Sn->Count.load(std::memory_order_relaxed) : 0;
  if (!Sn || ForceRebuild || N == Sn->Capacity ||
      (N > 0 && Start <= S.LastSnapStart)) {
    // Overlap eviction, out-of-order address (only possible outside the
    // bump-allocation pattern), or a full buffer: republish from the
    // tree, which already contains the new interval.
    rebuildSnapshotLocked(S);
    return;
  }
  Sn->Entries[N] = SnapEntry{Start, End, Obj};
  Sn->Dead[N].store(0, std::memory_order_relaxed);
  // Make the entry visible: readers acquire-load Count before touching
  // Entries[N].
  Sn->Count.store(N + 1, std::memory_order_release);
  S.LastSnapStart = Start;
}

void LiveObjectIndex::snapshotEraseLocked(Shard &S, uint64_t Start) {
  Snapshot *Sn = S.Snap.load(std::memory_order_relaxed);
  if (!Sn)
    return;
  size_t N = Sn->Count.load(std::memory_order_relaxed);
  size_t Lo = 0, Hi = N;
  while (Lo < Hi) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    if (Sn->Entries[Mid].Start < Start)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  if (Lo < N && Sn->Entries[Lo].Start == Start)
    Sn->Dead[Lo].store(1, std::memory_order_release);
}

std::optional<LiveObject>
LiveObjectIndex::snapshotFind(const Snapshot *Sn, uint64_t Addr,
                              SnapshotHint *Hint) {
  if (!Sn)
    return std::nullopt;
  size_t N = Sn->Count.load(std::memory_order_acquire);
  // Greatest Start <= Addr.
  size_t Lo = 0, Hi = N;
  while (Lo < Hi) {
    size_t Mid = Lo + (Hi - Lo) / 2;
    if (Sn->Entries[Mid].Start <= Addr)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  // Walk left over tombstones: live intervals are mutually disjoint and
  // sorted, so the nearest *live* predecessor is the only candidate.
  for (size_t I = Lo; I-- > 0;) {
    const SnapEntry &E = Sn->Entries[I];
    if (Sn->Dead[I].load(std::memory_order_acquire))
      continue;
    if (Addr >= E.Start && Addr < E.End) {
      if (Hint) {
        Hint->Buf = Sn;
        Hint->Idx = I;
      }
      return E.Obj;
    }
    break;
  }
  return std::nullopt;
}

std::optional<LiveObject>
LiveObjectIndex::lookupSnapshot(uint64_t Addr, SnapshotHint *Hint) {
  size_t Idx = shardIndexFor(Addr);
  Shard &S = Shards[Idx];
  S.SnapLookups.fetch_add(1, std::memory_order_relaxed);
  const Snapshot *Sn = S.Snap.load(std::memory_order_acquire);
  // Memo fast path: valid only against the currently published epoch of
  // this address's shard, so a hit is indistinguishable from a search.
  if (Hint && Hint->Buf == Sn && Sn) {
    const SnapEntry &E = Sn->Entries[Hint->Idx];
    if (Addr >= E.Start && Addr < E.End &&
        !Sn->Dead[Hint->Idx].load(std::memory_order_acquire))
      return E.Obj;
  }
  if (auto R = snapshotFind(Sn, Addr, Hint))
    return R;
  if (Idx > 0) {
    // An interval that crosses a shard boundary is keyed by its start
    // address — re-check the preceding shard's epoch, like lookup().
    Shard &P = Shards[Idx - 1];
    const Snapshot *PSn = P.Snap.load(std::memory_order_acquire);
    if (auto R = snapshotFind(PSn, Addr, nullptr))
      return R;
  }
  S.SnapMisses.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void LiveObjectIndex::insert(uint64_t Addr, uint64_t Size,
                             const LiveObject &Obj) {
  Shard &S = shardFor(Addr);
  SpinLockGuard G(S.Lock);
  unsigned Evicted = S.Tree.insert(Addr, Size, Obj);
  ++S.Inserts;
  S.LiveEntries.store(S.Tree.size(), std::memory_order_relaxed);
  snapshotAppendLocked(S, Addr, Addr + Size, Obj, Evicted > 0);
}

std::optional<LiveObject> LiveObjectIndex::lookup(uint64_t Addr) {
  size_t Idx = shardIndexFor(Addr);
  {
    Shard &S = Shards[Idx];
    SpinLockGuard G(S.Lock);
    ++S.Lookups;
    auto E = S.Tree.lookup(Addr);
    if (E)
      return E->Value;
    if (Idx == 0) {
      // No preceding shard to probe: a definitive miss, counted inside
      // the same critical section (the exact single-shard legacy path).
      ++S.LookupMisses;
      return std::nullopt;
    }
  }
  // An interval that crosses a shard boundary is keyed (and stored) by
  // its start address — re-check the preceding shard for a range
  // enclosing Addr before declaring a miss. Rare, so the extra probe and
  // the re-lock for the miss counter stay off the hot path.
  {
    Shard &P = Shards[Idx - 1];
    SpinLockGuard G(P.Lock);
    auto E = P.Tree.lookup(Addr);
    if (E)
      return E->Value;
  }
  Shard &S = Shards[Idx];
  SpinLockGuard G(S.Lock);
  ++S.LookupMisses;
  return std::nullopt;
}

bool LiveObjectIndex::erase(uint64_t Addr) {
  Shard &S = shardFor(Addr);
  SpinLockGuard G(S.Lock);
  ++S.Erases;
  bool Removed = S.Tree.removeAt(Addr);
  if (Removed) {
    S.LiveEntries.store(S.Tree.size(), std::memory_order_relaxed);
    snapshotEraseLocked(S, Addr);
  }
  return Removed;
}

void LiveObjectIndex::recordMove(uint64_t OldAddr, uint64_t NewAddr,
                                 uint64_t Size) {
  // Striped by the *old* address: that is the key applyRelocations()
  // resolves against the trees.
  Shard &S = shardFor(OldAddr);
  SpinLockGuard G(S.Lock);
  // If the object moved earlier in the same GC epoch (it cannot under a
  // single sliding pass, but a future collector might), the latest move
  // wins for its original key.
  S.RelocationMap[OldAddr] = Relocation{NewAddr, Size};
  S.RelocEntries.store(S.RelocationMap.size(), std::memory_order_relaxed);
}

unsigned LiveObjectIndex::applyRelocations(const LiveObject &Unknown) {
  // Whole-index operation: moves may cross shard boundaries, so take every
  // shard lock, in index order (the only place two index locks are ever
  // held at once).
  for (Shard &S : Shards)
    S.Lock.lock();

  // Two phases: first detach every moving interval, then re-insert at the
  // new addresses. A one-pass relocate would be order-sensitive, because a
  // new range may overlap the *old* range of an object whose relocation
  // has not been applied yet.
  struct Pending {
    uint64_t NewAddr;
    uint64_t Size;
    LiveObject Obj;
  };
  std::vector<Pending> Moves;
  for (Shard &S : Shards) {
    for (const auto &[OldAddr, R] : S.RelocationMap) {
      auto E = S.Tree.lookup(OldAddr);
      if (E && E->Start == OldAddr) {
        S.Tree.removeAt(OldAddr);
        Moves.push_back(Pending{R.NewAddr, R.Size, E->Value});
      } else {
        // Attach mode missed this allocation: insert the new interval
        // directly so future samples at least map to the object (§4.5).
        LiveObject O = Unknown;
        O.Size = R.Size;
        Moves.push_back(Pending{R.NewAddr, R.Size, O});
      }
    }
    S.RelocationMap.clear();
    S.RelocEntries.store(0, std::memory_order_relaxed);
  }
  for (const Pending &P : Moves)
    shardFor(P.NewAddr).Tree.insert(P.NewAddr, P.Size, P.Obj);

  // Republish every shard's epoch before the locks drop: the relocation
  // batch is a mutation batch point (the world is stopped under the
  // Executor; serial mode is single-threaded), so readers switch from the
  // pre-GC epoch to the post-GC epoch atomically per shard.
  for (Shard &S : Shards) {
    S.LiveEntries.store(S.Tree.size(), std::memory_order_relaxed);
    rebuildSnapshotLocked(S);
  }

  for (size_t I = Shards.size(); I-- > 0;)
    Shards[I].Lock.unlock();
  return static_cast<unsigned>(Moves.size());
}

void LiveObjectIndex::reclaimRetiredSnapshots() {
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    // The published snapshot is always the storage's most recent entry.
    if (S.SnapStorage.size() > 1)
      S.SnapStorage.erase(S.SnapStorage.begin(), S.SnapStorage.end() - 1);
  }
}

size_t LiveObjectIndex::retainedSnapshotBuffers() {
  size_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.SnapStorage.size();
  }
  return Sum;
}

void LiveObjectIndex::discardRelocations() {
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    S.RelocationMap.clear();
    S.RelocEntries.store(0, std::memory_order_relaxed);
  }
}

size_t LiveObjectIndex::liveCount() const {
  size_t Sum = 0;
  for (const Shard &S : Shards)
    Sum += S.LiveEntries.load(std::memory_order_relaxed);
  return Sum;
}

size_t LiveObjectIndex::pendingRelocations() const {
  size_t Sum = 0;
  for (const Shard &S : Shards)
    Sum += S.RelocEntries.load(std::memory_order_relaxed);
  return Sum;
}

size_t LiveObjectIndex::memoryFootprint() const {
  // Same accounting basis as the locked structures (splay nodes plus the
  // relocation map): the snapshot is a rebuildable cache of the tree, not
  // part of the §7 memory-overhead surface. Reading the atomic mirrors
  // keeps this reporting path off the shard locks entirely.
  size_t Sum = 0;
  for (const Shard &S : Shards)
    Sum += S.LiveEntries.load(std::memory_order_relaxed) *
               IntervalSplayTree<LiveObject>::nodeBytes() +
           S.RelocEntries.load(std::memory_order_relaxed) *
               (sizeof(uint64_t) + sizeof(Relocation) + 16);
  return Sum;
}

uint64_t LiveObjectIndex::inserts() {
  uint64_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.Inserts;
  }
  return Sum;
}

uint64_t LiveObjectIndex::lookups() {
  uint64_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.Lookups + S.SnapLookups.load(std::memory_order_relaxed);
  }
  return Sum;
}

uint64_t LiveObjectIndex::lookupMisses() {
  uint64_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.LookupMisses + S.SnapMisses.load(std::memory_order_relaxed);
  }
  return Sum;
}

uint64_t LiveObjectIndex::erases() {
  uint64_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.Erases;
  }
  return Sum;
}

uint64_t LiveObjectIndex::lockAcquisitions() const {
  uint64_t Sum = 0;
  for (const Shard &S : Shards)
    Sum += S.Lock.acquisitions();
  return Sum;
}
