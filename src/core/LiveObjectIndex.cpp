//===- LiveObjectIndex.cpp - Sharded object interval index -----------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/LiveObjectIndex.h"

#include <cassert>
#include <vector>

using namespace djx;

void LiveObjectIndex::configureShards(unsigned NumShards,
                                      uint64_t SpanBytes) {
  assert(NumShards >= 1 && "index needs at least one shard");
  assert((NumShards == 1 || SpanBytes > 0) &&
         "multi-shard index needs an address span");
#ifndef NDEBUG
  for (Shard &S : Shards)
    assert(S.Tree.size() == 0 && S.RelocationMap.empty() &&
           "reconfiguring a non-empty index");
#endif
  Shards.clear();
  Shards.resize(NumShards);
  this->SpanBytes = SpanBytes ? SpanBytes : ~0ULL;
}

void LiveObjectIndex::insert(uint64_t Addr, uint64_t Size,
                             const LiveObject &Obj) {
  Shard &S = shardFor(Addr);
  SpinLockGuard G(S.Lock);
  S.Tree.insert(Addr, Size, Obj);
  ++S.Inserts;
}

std::optional<LiveObject> LiveObjectIndex::lookup(uint64_t Addr) {
  size_t Idx = shardIndexFor(Addr);
  {
    Shard &S = Shards[Idx];
    SpinLockGuard G(S.Lock);
    ++S.Lookups;
    auto E = S.Tree.lookup(Addr);
    if (E)
      return E->Value;
    if (Idx == 0) {
      // No preceding shard to probe: a definitive miss, counted inside
      // the same critical section (the exact single-shard legacy path).
      ++S.LookupMisses;
      return std::nullopt;
    }
  }
  // An interval that crosses a shard boundary is keyed (and stored) by
  // its start address — re-check the preceding shard for a range
  // enclosing Addr before declaring a miss. Rare, so the extra probe and
  // the re-lock for the miss counter stay off the hot path.
  {
    Shard &P = Shards[Idx - 1];
    SpinLockGuard G(P.Lock);
    auto E = P.Tree.lookup(Addr);
    if (E)
      return E->Value;
  }
  Shard &S = Shards[Idx];
  SpinLockGuard G(S.Lock);
  ++S.LookupMisses;
  return std::nullopt;
}

bool LiveObjectIndex::erase(uint64_t Addr) {
  Shard &S = shardFor(Addr);
  SpinLockGuard G(S.Lock);
  ++S.Erases;
  return S.Tree.removeAt(Addr);
}

void LiveObjectIndex::recordMove(uint64_t OldAddr, uint64_t NewAddr,
                                 uint64_t Size) {
  // Striped by the *old* address: that is the key applyRelocations()
  // resolves against the trees.
  Shard &S = shardFor(OldAddr);
  SpinLockGuard G(S.Lock);
  // If the object moved earlier in the same GC epoch (it cannot under a
  // single sliding pass, but a future collector might), the latest move
  // wins for its original key.
  S.RelocationMap[OldAddr] = Relocation{NewAddr, Size};
}

unsigned LiveObjectIndex::applyRelocations(const LiveObject &Unknown) {
  // Whole-index operation: moves may cross shard boundaries, so take every
  // shard lock, in index order (the only place two index locks are ever
  // held at once).
  for (Shard &S : Shards)
    S.Lock.lock();

  // Two phases: first detach every moving interval, then re-insert at the
  // new addresses. A one-pass relocate would be order-sensitive, because a
  // new range may overlap the *old* range of an object whose relocation
  // has not been applied yet.
  struct Pending {
    uint64_t NewAddr;
    uint64_t Size;
    LiveObject Obj;
  };
  std::vector<Pending> Moves;
  for (Shard &S : Shards) {
    for (const auto &[OldAddr, R] : S.RelocationMap) {
      auto E = S.Tree.lookup(OldAddr);
      if (E && E->Start == OldAddr) {
        S.Tree.removeAt(OldAddr);
        Moves.push_back(Pending{R.NewAddr, R.Size, E->Value});
      } else {
        // Attach mode missed this allocation: insert the new interval
        // directly so future samples at least map to the object (§4.5).
        LiveObject O = Unknown;
        O.Size = R.Size;
        Moves.push_back(Pending{R.NewAddr, R.Size, O});
      }
    }
    S.RelocationMap.clear();
  }
  for (const Pending &P : Moves)
    shardFor(P.NewAddr).Tree.insert(P.NewAddr, P.Size, P.Obj);

  for (size_t I = Shards.size(); I-- > 0;)
    Shards[I].Lock.unlock();
  return static_cast<unsigned>(Moves.size());
}

void LiveObjectIndex::discardRelocations() {
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    S.RelocationMap.clear();
  }
}

size_t LiveObjectIndex::liveCount() {
  size_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.Tree.size();
  }
  return Sum;
}

size_t LiveObjectIndex::pendingRelocations() {
  size_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.RelocationMap.size();
  }
  return Sum;
}

size_t LiveObjectIndex::memoryFootprint() {
  size_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.Tree.memoryFootprint() +
           S.RelocationMap.size() *
               (sizeof(uint64_t) + sizeof(Relocation) + 16);
  }
  return Sum;
}

uint64_t LiveObjectIndex::inserts() {
  uint64_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.Inserts;
  }
  return Sum;
}

uint64_t LiveObjectIndex::lookups() {
  uint64_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.Lookups;
  }
  return Sum;
}

uint64_t LiveObjectIndex::lookupMisses() {
  uint64_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.LookupMisses;
  }
  return Sum;
}

uint64_t LiveObjectIndex::erases() {
  uint64_t Sum = 0;
  for (Shard &S : Shards) {
    SpinLockGuard G(S.Lock);
    Sum += S.Erases;
  }
  return Sum;
}

uint64_t LiveObjectIndex::lockAcquisitions() const {
  uint64_t Sum = 0;
  for (const Shard &S : Shards)
    Sum += S.Lock.acquisitions();
  return Sum;
}
