//===- LiveObjectIndex.cpp - Shared object interval index -----------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/LiveObjectIndex.h"

using namespace djx;

void LiveObjectIndex::insert(uint64_t Addr, uint64_t Size,
                             const LiveObject &Obj) {
  SpinLockGuard G(Lock);
  Tree.insert(Addr, Size, Obj);
  ++Inserts;
}

std::optional<LiveObject> LiveObjectIndex::lookup(uint64_t Addr) {
  SpinLockGuard G(Lock);
  ++Lookups;
  auto E = Tree.lookup(Addr);
  if (!E) {
    ++LookupMisses;
    return std::nullopt;
  }
  return E->Value;
}

bool LiveObjectIndex::erase(uint64_t Addr) {
  SpinLockGuard G(Lock);
  ++Erases;
  return Tree.removeAt(Addr);
}

void LiveObjectIndex::recordMove(uint64_t OldAddr, uint64_t NewAddr,
                                 uint64_t Size) {
  SpinLockGuard G(Lock);
  // If the object moved earlier in the same GC epoch (it cannot under a
  // single sliding pass, but a future collector might), the latest move
  // wins for its original key.
  RelocationMap[OldAddr] = Relocation{NewAddr, Size};
}

unsigned LiveObjectIndex::applyRelocations(const LiveObject &Unknown) {
  SpinLockGuard G(Lock);
  // Two phases: first detach every moving interval, then re-insert at the
  // new addresses. A one-pass relocate would be order-sensitive, because a
  // new range may overlap the *old* range of an object whose relocation
  // has not been applied yet.
  struct Pending {
    uint64_t NewAddr;
    uint64_t Size;
    LiveObject Obj;
  };
  std::vector<Pending> Moves;
  Moves.reserve(RelocationMap.size());
  for (const auto &[OldAddr, R] : RelocationMap) {
    auto E = Tree.lookup(OldAddr);
    if (E && E->Start == OldAddr) {
      Tree.removeAt(OldAddr);
      Moves.push_back(Pending{R.NewAddr, R.Size, E->Value});
    } else {
      // Attach mode missed this allocation: insert the new interval
      // directly so future samples at least map to the object (§4.5).
      LiveObject O = Unknown;
      O.Size = R.Size;
      Moves.push_back(Pending{R.NewAddr, R.Size, O});
    }
  }
  for (const Pending &P : Moves)
    Tree.insert(P.NewAddr, P.Size, P.Obj);
  unsigned Applied = static_cast<unsigned>(Moves.size());
  RelocationMap.clear();
  return Applied;
}

size_t LiveObjectIndex::liveCount() {
  SpinLockGuard G(Lock);
  return Tree.size();
}

size_t LiveObjectIndex::memoryFootprint() {
  SpinLockGuard G(Lock);
  return Tree.memoryFootprint() +
         RelocationMap.size() * (sizeof(uint64_t) + sizeof(Relocation) + 16);
}
