//===- LiveObjectIndex.h - Sharded object interval index --------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiler's only cross-thread data structure (§5.1): interval splay
/// trees mapping live object address ranges to their allocation identity,
/// each guarded by a spin lock. The index is *sharded by address range* so
/// allocation inserts and sample lookups from different threads (whose
/// heap shards occupy disjoint address ranges) serialize only when they
/// genuinely touch the same region; with one shard (the default) it is
/// exactly the paper's single splay-tree-plus-spin-lock design. Also owns
/// the GC relocation map of §4.5: moves recorded per memmove interposition
/// are applied to the trees in one batch when the GC-finish (MXBean)
/// notification arrives — under the Executor that notification fires at a
/// stop-the-world safepoint, through this same code path.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_CORE_LIVEOBJECTINDEX_H
#define DJX_CORE_LIVEOBJECTINDEX_H

#include "core/Cct.h"
#include "jvm/ObjectModel.h"
#include "support/IntervalSplayTree.h"
#include "support/SpinLock.h"

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>

namespace djx {

/// Allocation identity of a tracked object: which thread allocated it, at
/// which context (a node of that thread's CCT), and what it is.
struct LiveObject {
  uint64_t AllocThread = 0;
  CctNodeId AllocNode = kCctRoot;
  TypeId Type = 0;
  uint64_t Size = 0;
};

/// Thread-shared, address-sharded splay-tree index of live monitored
/// objects. All entry points are safe to call concurrently; see the
/// locking-order note in DjxPerf.h.
class LiveObjectIndex {
public:
  /// Single-shard index (the original design).
  LiveObjectIndex() { configureShards(1, 0); }

  /// Splits the address space into \p NumShards ranges of \p SpanBytes
  /// each (addresses at or beyond the last boundary map to the last
  /// shard). Must be called before any object is tracked. Matching the
  /// heap's shard geometry gives contention-free operation for
  /// thread-private data. Geometry constraint: every tracked interval
  /// must be smaller than \p SpanBytes — an interval is keyed by its
  /// start address and lookups fall back to exactly one preceding shard
  /// on a miss, so an interval spanning more than two shards would be
  /// unfindable for its tail addresses (DjxPerf derives the span from
  /// the heap, where no object can exceed a shard).
  void configureShards(unsigned NumShards, uint64_t SpanBytes);

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }

  /// Tracks a freshly allocated object.
  void insert(uint64_t Addr, uint64_t Size, const LiveObject &Obj);

  /// Splay lookup by sampled effective address.
  std::optional<LiveObject> lookup(uint64_t Addr);

  /// Object reclaimed (finalize interposition): drop its interval.
  /// \returns true when the address was tracked.
  bool erase(uint64_t Addr);

  /// memmove interposition: records a move into the relocation map; the
  /// trees are not touched until applyRelocations().
  void recordMove(uint64_t OldAddr, uint64_t NewAddr, uint64_t Size);

  /// GC-finish notification: applies the batched relocation maps across
  /// all shards (moves may cross shard boundaries). Objects missing from
  /// the trees (allocations the attach mode missed, §4.5) are inserted
  /// fresh with \p UnknownIdentity. Takes every shard lock in index order.
  /// \returns the number of relocations applied.
  unsigned applyRelocations(const LiveObject &UnknownIdentity);

  /// Drops any pending relocations without applying (ablation support).
  void discardRelocations();

  size_t liveCount();
  size_t pendingRelocations();
  size_t memoryFootprint();

  /// Total operations, for the overhead model and ablation benches
  /// (summed across shards under the shard locks; order-independent, so
  /// deterministic under any host interleaving).
  uint64_t inserts();
  uint64_t lookups();
  uint64_t lookupMisses();
  uint64_t erases();
  /// Lock-free read: SpinLock's acquisition counter is atomic.
  uint64_t lockAcquisitions() const;

private:
  struct Relocation {
    uint64_t NewAddr;
    uint64_t Size;
  };

  /// One address-range shard: the paper's splay tree + spin lock, plus a
  /// striped slice of the relocation map and its own op counters.
  struct Shard {
    SpinLock Lock;
    IntervalSplayTree<LiveObject> Tree;
    std::unordered_map<uint64_t, Relocation> RelocationMap;
    uint64_t Inserts = 0;
    uint64_t Lookups = 0;
    uint64_t LookupMisses = 0;
    uint64_t Erases = 0;
  };

  Shard &shardFor(uint64_t Addr) { return Shards[shardIndexFor(Addr)]; }
  size_t shardIndexFor(uint64_t Addr) const {
    if (Shards.size() == 1)
      return 0;
    uint64_t Idx = Addr / SpanBytes;
    size_t Last = Shards.size() - 1;
    return Idx < Last ? static_cast<size_t>(Idx) : Last;
  }

  /// Deque: shards are non-movable (SpinLock) and addresses must stay
  /// stable.
  std::deque<Shard> Shards;
  uint64_t SpanBytes = 0;
};

} // namespace djx

#endif // DJX_CORE_LIVEOBJECTINDEX_H
