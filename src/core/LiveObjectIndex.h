//===- LiveObjectIndex.h - Shared object interval index ---------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiler's only cross-thread data structure (§5.1): an interval
/// splay tree mapping live object address ranges to their allocation
/// identity, guarded by a spin lock. Also owns the GC relocation map of
/// §4.5: moves recorded per memmove interposition are applied to the tree
/// in one batch when the GC-finish (MXBean) notification arrives.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_CORE_LIVEOBJECTINDEX_H
#define DJX_CORE_LIVEOBJECTINDEX_H

#include "core/Cct.h"
#include "jvm/ObjectModel.h"
#include "support/IntervalSplayTree.h"
#include "support/SpinLock.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

namespace djx {

/// Allocation identity of a tracked object: which thread allocated it, at
/// which context (a node of that thread's CCT), and what it is.
struct LiveObject {
  uint64_t AllocThread = 0;
  CctNodeId AllocNode = kCctRoot;
  TypeId Type = 0;
  uint64_t Size = 0;
};

/// Thread-shared splay-tree index of live monitored objects.
class LiveObjectIndex {
public:
  /// Tracks a freshly allocated object.
  void insert(uint64_t Addr, uint64_t Size, const LiveObject &Obj);

  /// Splay lookup by sampled effective address.
  std::optional<LiveObject> lookup(uint64_t Addr);

  /// Object reclaimed (finalize interposition): drop its interval.
  /// \returns true when the address was tracked.
  bool erase(uint64_t Addr);

  /// memmove interposition: records a move into the relocation map; the
  /// tree is not touched until applyRelocations().
  void recordMove(uint64_t OldAddr, uint64_t NewAddr, uint64_t Size);

  /// GC-finish notification: applies the batched relocation map. Objects
  /// missing from the tree (allocations the attach mode missed, §4.5) are
  /// inserted fresh with \p UnknownIdentity.
  /// \returns the number of relocations applied.
  unsigned applyRelocations(const LiveObject &UnknownIdentity);

  /// Drops any pending relocations without applying (ablation support).
  void discardRelocations() { RelocationMap.clear(); }

  size_t liveCount();
  size_t pendingRelocations() const { return RelocationMap.size(); }
  size_t memoryFootprint();

  /// Total operations, for the overhead model and ablation benches.
  uint64_t inserts() const { return Inserts; }
  uint64_t lookups() const { return Lookups; }
  uint64_t lookupMisses() const { return LookupMisses; }
  uint64_t erases() const { return Erases; }
  uint64_t lockAcquisitions() const { return Lock.acquisitions(); }

private:
  struct Relocation {
    uint64_t NewAddr;
    uint64_t Size;
  };

  SpinLock Lock;
  IntervalSplayTree<LiveObject> Tree;
  std::unordered_map<uint64_t, Relocation> RelocationMap;
  uint64_t Inserts = 0;
  uint64_t Lookups = 0;
  uint64_t LookupMisses = 0;
  uint64_t Erases = 0;
};

} // namespace djx

#endif // DJX_CORE_LIVEOBJECTINDEX_H
