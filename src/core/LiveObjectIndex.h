//===- LiveObjectIndex.h - Sharded object interval index --------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiler's only cross-thread data structure (§5.1): interval splay
/// trees mapping live object address ranges to their allocation identity,
/// each guarded by a spin lock. The index is *sharded by address range* so
/// allocation inserts and sample lookups from different threads (whose
/// heap shards occupy disjoint address ranges) serialize only when they
/// genuinely touch the same region; with one shard (the default) it is
/// exactly the paper's single splay-tree-plus-spin-lock design. Also owns
/// the GC relocation map of §4.5: moves recorded per memmove interposition
/// are applied to the trees in one batch when the GC-finish (MXBean)
/// notification arrives — under the Executor that notification fires at a
/// stop-the-world safepoint, through this same code path.
///
/// Epoch-snapshot read path: each shard additionally publishes a flat,
/// Start-sorted array of its live intervals through an atomic pointer +
/// release-stored entry count. Mutators maintain it under the existing
/// shard lock — allocation inserts append (bump allocation keeps shard
/// addresses monotonic, so appends stay sorted), reclamation tombstones
/// the entry in place, and relocation batches / overlap evictions rebuild
/// the array wholesale — while readers (the batched PMU sample drain) walk
/// the published snapshot with *zero* locks: an acquire load of the
/// pointer, an acquire load of the count, and a binary search. Retired
/// snapshot buffers are kept alive — a concurrent reader can never
/// chase a freed epoch — until reclaimRetiredSnapshots(), which the
/// profiler calls at the stop-the-world GC-finish point, bounding
/// retention to the growth since the previous collection. The locked
/// splay lookup() remains the
/// mutation-side structure and the ablation baseline
/// (bench_ablation_splay_tree compares all three designs).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_CORE_LIVEOBJECTINDEX_H
#define DJX_CORE_LIVEOBJECTINDEX_H

#include "core/Cct.h"
#include "jvm/ObjectModel.h"
#include "support/IntervalSplayTree.h"
#include "support/SpinLock.h"
#include "support/ThreadAnnotations.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace djx {

/// Allocation identity of a tracked object: which thread allocated it, at
/// which context (a node of that thread's CCT), and what it is.
struct LiveObject {
  uint64_t AllocThread = 0;
  CctNodeId AllocNode = kCctRoot;
  TypeId Type = 0;
  uint64_t Size = 0;
};

/// Thread-shared, address-sharded splay-tree index of live monitored
/// objects. All entry points are safe to call concurrently; see the
/// locking-order note in DjxPerf.h.
class LiveObjectIndex {
public:
  /// Resolution memo carried across one batch of snapshot lookups. A
  /// drain sorted by address revisits the same hot interval for runs of
  /// consecutive samples; the hint turns those into one containment check
  /// (after validating that the hinted snapshot is still the published
  /// epoch of the address's shard).
  struct SnapshotHint {
    const void *Buf = nullptr;
    size_t Idx = 0;
  };

  /// Single-shard index (the original design).
  LiveObjectIndex() { configureShards(1, 0); }

  /// Splits the address space into \p NumShards ranges of \p SpanBytes
  /// each (addresses at or beyond the last boundary map to the last
  /// shard). Must be called before any object is tracked. Matching the
  /// heap's shard geometry gives contention-free operation for
  /// thread-private data. Geometry constraint: every tracked interval
  /// must be smaller than \p SpanBytes — an interval is keyed by its
  /// start address and lookups fall back to exactly one preceding shard
  /// on a miss, so an interval spanning more than two shards would be
  /// unfindable for its tail addresses (DjxPerf derives the span from
  /// the heap, where no object can exceed a shard). Runs before any
  /// concurrent use (and asserts the shards are empty), so it touches
  /// guarded members lock-free by design.
  void configureShards(unsigned NumShards,
                       uint64_t SpanBytes) DJX_NO_THREAD_SAFETY_ANALYSIS;

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }

  /// Tracks a freshly allocated object.
  void insert(uint64_t Addr, uint64_t Size, const LiveObject &Obj);

  /// Splay lookup by sampled effective address (the paper's inline path:
  /// takes the shard spin lock and restructures the tree).
  std::optional<LiveObject> lookup(uint64_t Addr);

  /// Lock-free lookup against the shard's published epoch snapshot: the
  /// batched sample-resolution path. Never touches a SpinLock and never
  /// restructures anything; misses fall back to the preceding shard
  /// exactly like lookup(). \p Hint (optional) memoizes the last hit.
  std::optional<LiveObject> lookupSnapshot(uint64_t Addr,
                                           SnapshotHint *Hint = nullptr);

  /// Object reclaimed (finalize interposition): drop its interval.
  /// \returns true when the address was tracked.
  bool erase(uint64_t Addr);

  /// memmove interposition: records a move into the relocation map; the
  /// trees are not touched until applyRelocations().
  void recordMove(uint64_t OldAddr, uint64_t NewAddr, uint64_t Size);

  /// GC-finish notification: applies the batched relocation maps across
  /// all shards (moves may cross shard boundaries). Objects missing from
  /// the trees (allocations the attach mode missed, §4.5) are inserted
  /// fresh with \p UnknownIdentity. Takes every shard lock in index order
  /// and republishes every shard's epoch snapshot before releasing them —
  /// a dynamic lock set the static analysis cannot model, hence the
  /// opt-out.
  /// \returns the number of relocations applied.
  unsigned
  applyRelocations(const LiveObject &UnknownIdentity)
      DJX_NO_THREAD_SAFETY_ANALYSIS;

  /// Drops any pending relocations without applying (ablation support).
  void discardRelocations();

  /// Frees every retired snapshot epoch (buffers superseded by rebuilds
  /// and capacity growth), keeping only each shard's published one.
  /// Contract: the caller asserts no lookupSnapshot() is concurrently in
  /// flight — true at the profiler's stop-the-world GC-finish point,
  /// which invokes this right after the relocation batch. Bounds
  /// retained snapshot memory to O(live set) regardless of GC count.
  void reclaimRetiredSnapshots();

  /// Snapshot buffers currently held across all shards (published +
  /// retired); diagnostics for the reclamation tests.
  size_t retainedSnapshotBuffers();

  // Lock-free diagnostics: read from per-shard atomic mirrors maintained
  // under the shard locks, so mid-run reporting (CLI footprint lines,
  // watchdogs) never contends with the sample path. Values match the
  // locked structures exactly at any quiescent point; under concurrent
  // mutation they are a momentary snapshot.
  size_t liveCount() const;
  size_t pendingRelocations() const;
  size_t memoryFootprint() const;

  /// Total operations, for the overhead model and ablation benches
  /// (summed across shards under the shard locks; order-independent, so
  /// deterministic under any host interleaving). lookups()/lookupMisses()
  /// include both the locked splay path and the snapshot path.
  uint64_t inserts();
  uint64_t lookups();
  uint64_t lookupMisses();
  uint64_t erases();
  /// Lock-free read: SpinLock's acquisition counter is atomic.
  uint64_t lockAcquisitions() const;

private:
  struct Relocation {
    uint64_t NewAddr;
    uint64_t Size;
  };

  /// One published epoch of a shard's live intervals: Entries[0, Count)
  /// sorted by Start, erasures marked in Dead. Entries/Dead are written
  /// only by the shard-lock holder at slots >= the published Count (or as
  /// monotone tombstone flips), then made visible with a release store of
  /// Count — readers acquire-load Count and never look past it.
  struct SnapEntry {
    uint64_t Start;
    uint64_t End;
    LiveObject Obj;
  };
  struct Snapshot {
    explicit Snapshot(size_t Cap)
        : Entries(Cap), Dead(new std::atomic<uint8_t>[Cap]), Capacity(Cap) {
      for (size_t I = 0; I < Cap; ++I)
        Dead[I].store(0, std::memory_order_relaxed);
    }
    std::vector<SnapEntry> Entries;
    std::unique_ptr<std::atomic<uint8_t>[]> Dead;
    std::atomic<size_t> Count{0};
    size_t Capacity;
  };

  /// One address-range shard: the paper's splay tree + spin lock, plus a
  /// striped slice of the relocation map, its own op counters, and the
  /// published epoch snapshot.
  struct Shard {
    SpinLock Lock;
    IntervalSplayTree<LiveObject> Tree DJX_GUARDED_BY(Lock);
    std::unordered_map<uint64_t, Relocation> RelocationMap
        DJX_GUARDED_BY(Lock);
    uint64_t Inserts DJX_GUARDED_BY(Lock) = 0;
    uint64_t Lookups DJX_GUARDED_BY(Lock) = 0;
    uint64_t LookupMisses DJX_GUARDED_BY(Lock) = 0;
    uint64_t Erases DJX_GUARDED_BY(Lock) = 0;

    /// Published epoch (acquire-loaded by lock-free readers — Snap itself
    /// is deliberately *not* guarded; its pointee is mutated only by the
    /// lock holder). Storage keeps every epoch ever published alive until
    /// clear/reconfigure so a reader holding an old pointer stays safe.
    std::atomic<Snapshot *> Snap{nullptr};
    std::vector<std::unique_ptr<Snapshot>> SnapStorage DJX_GUARDED_BY(Lock);
    /// Largest Start in the current snapshot (writer-side bookkeeping:
    /// detects out-of-order inserts that would break the sorted-append
    /// invariant and force a rebuild).
    uint64_t LastSnapStart DJX_GUARDED_BY(Lock) = 0;

    /// Atomic mirrors for the lock-free diagnostics / op totals.
    std::atomic<size_t> LiveEntries{0};
    std::atomic<size_t> RelocEntries{0};
    std::atomic<uint64_t> SnapLookups{0};
    std::atomic<uint64_t> SnapMisses{0};
  };

  Shard &shardFor(uint64_t Addr) { return Shards[shardIndexFor(Addr)]; }
  size_t shardIndexFor(uint64_t Addr) const {
    if (Shards.size() == 1)
      return 0;
    uint64_t Idx = Addr / SpanBytes;
    size_t Last = Shards.size() - 1;
    return Idx < Last ? static_cast<size_t>(Idx) : Last;
  }

  /// Appends one interval to the shard's snapshot, or rebuilds it when
  /// the append would violate the sorted/non-overlapping invariants
  /// (overlap eviction, out-of-order address, capacity). Caller holds the
  /// shard lock and has already updated the tree.
  void snapshotAppendLocked(Shard &S, uint64_t Start, uint64_t End,
                            const LiveObject &Obj, bool ForceRebuild)
      DJX_REQUIRES(S.Lock);
  /// Republishes the shard's snapshot from its tree (sorted, live-only).
  /// Caller holds the shard lock.
  void rebuildSnapshotLocked(Shard &S) DJX_REQUIRES(S.Lock);
  /// Tombstones \p Start's entry in the published snapshot, if present.
  /// Caller holds the shard lock.
  void snapshotEraseLocked(Shard &S, uint64_t Start) DJX_REQUIRES(S.Lock);
  /// Lock-free search of one published snapshot.
  static std::optional<LiveObject>
  snapshotFind(const Snapshot *Sn, uint64_t Addr, SnapshotHint *Hint);

  /// Deque: shards are non-movable (SpinLock, atomics) and addresses must
  /// stay stable.
  std::deque<Shard> Shards;
  uint64_t SpanBytes = 0;
};

} // namespace djx

#endif // DJX_CORE_LIVEOBJECTINDEX_H
