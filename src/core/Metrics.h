//===- Metrics.h - Per-event metric counters --------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-size counter block indexed by PerfEventKind, attached to CCT
/// nodes, object groups and code-centric entries.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_CORE_METRICS_H
#define DJX_CORE_METRICS_H

#include "pmu/PerfEvent.h"

#include <array>
#include <cstddef>
#include <cstdint>

namespace djx {

/// Number of PerfEventKind enumerators.
constexpr size_t kNumPerfEventKinds = 7;

/// One counter per event kind.
struct MetricCounts {
  std::array<uint64_t, kNumPerfEventKinds> Counts{};

  void add(PerfEventKind Kind, uint64_t N = 1) {
    Counts[static_cast<size_t>(Kind)] += N;
  }
  uint64_t get(PerfEventKind Kind) const {
    return Counts[static_cast<size_t>(Kind)];
  }
  MetricCounts &operator+=(const MetricCounts &O) {
    for (size_t I = 0; I < kNumPerfEventKinds; ++I)
      Counts[I] += O.Counts[I];
    return *this;
  }
  bool empty() const {
    for (uint64_t C : Counts)
      if (C)
        return false;
    return true;
  }
};

} // namespace djx

#endif // DJX_CORE_METRICS_H
