//===- Report.cpp - Object-centric and code-centric report text -----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace djx;

std::string djx::renderPath(const Cct &Tree, CctNodeId Leaf,
                            const MethodRegistry &Methods) {
  if (Leaf == kCctRoot)
    return "<unknown allocation context>";
  std::vector<StackFrame> Frames = Tree.path(Leaf);
  std::ostringstream OS;
  for (size_t I = Frames.size(); I-- > 0;) {
    const StackFrame &F = Frames[I];
    OS << Methods.qualifiedName(F.Method) << ":"
       << Methods.lineForBci(F.Method, F.Bci);
    if (I != 0)
      OS << " <- ";
  }
  return OS.str();
}

static std::string pct(double Fraction) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Fraction * 100.0);
  return Buf;
}

std::string djx::renderObjectCentric(const MergedProfile &P,
                                     const MethodRegistry &Methods,
                                     const ReportOptions &Opts) {
  std::ostringstream OS;
  PerfEventKind Kind = Opts.SortKind;
  OS << "=== DJXPerf object-centric profile ===\n";
  OS << "sorted by " << perfEventName(Kind) << "; total "
     << P.Totals.get(Kind) << " samples across " << P.ThreadsMerged
     << " thread(s); " << P.UnattributedSamples
     << " unattributed sample(s)\n\n";

  unsigned Shown = 0;
  for (const MergedGroup *G : P.groupsByMetric(Kind)) {
    if (Shown >= Opts.TopGroups)
      break;
    double Share = P.shareOf(*G, Kind);
    if (G->Metrics.get(Kind) == 0 || Share < Opts.MinShare)
      break;
    ++Shown;
    OS << "#" << Shown << " object " << G->TypeName << "  [" << pct(Share)
       << " of " << perfEventName(Kind) << ", " << G->Metrics.get(Kind)
       << " samples]\n";
    OS << "   allocated " << G->AllocCount << " time(s), " << G->AllocBytes
       << " bytes total\n";
    if (Opts.ShowNuma && G->AddressSamples > 0) {
      double Remote = static_cast<double>(G->RemoteSamples) /
                      static_cast<double>(G->AddressSamples);
      OS << "   NUMA: " << pct(Remote) << " remote accesses ("
         << G->RemoteSamples << "/" << G->AddressSamples << ")\n";
      // Residency + remediation only when there is remote traffic to fix
      // (keeps NUMA-clean reports unchanged).
      if (G->RemoteSamples > 0) {
        OS << "   NUMA residency:";
        for (const auto &[Node, Count] : G->HomeNodeSamples)
          OS << " node" << Node << ":" << Count;
        OS << "  accessed-from:";
        for (const auto &[Node, Count] : G->AccessNodeSamples)
          OS << " node" << Node << ":" << Count;
        OS << "\n";
        PlacementAdvice Advice = placementAdvice(*G);
        if (Advice.Hint == PlacementHint::Bind)
          OS << "   NUMA hint: numa_alloc_onnode(node " << Advice.TargetNode
             << "), accesses concentrate on node " << Advice.TargetNode
             << "\n";
        else if (Advice.Hint == PlacementHint::Interleave)
          OS << "   NUMA hint: numa_alloc_interleaved, accesses are "
                "spread across nodes\n";
      }
    }
    OS << "   alloc ctx: " << renderPath(P.Tree, G->AllocNode, Methods)
       << "\n";

    // Access contexts ordered by contribution to this group.
    std::vector<std::pair<CctNodeId, uint64_t>> Accesses;
    for (const auto &[Node, M] : G->AccessBreakdown)
      if (M.get(Kind) > 0)
        Accesses.emplace_back(Node, M.get(Kind));
    std::stable_sort(Accesses.begin(), Accesses.end(),
                     [](const auto &A, const auto &B) {
                       return A.second > B.second;
                     });
    unsigned AShown = 0;
    for (const auto &[Node, Count] : Accesses) {
      if (AShown++ >= Opts.TopAccessContexts)
        break;
      double AShare = G->Metrics.get(Kind)
                          ? static_cast<double>(Count) /
                                static_cast<double>(G->Metrics.get(Kind))
                          : 0.0;
      OS << "     access [" << pct(AShare) << "] "
         << renderPath(P.Tree, Node, Methods) << "\n";
    }
    OS << "\n";
  }
  if (Shown == 0)
    OS << "(no object groups with " << perfEventName(Kind) << " samples)\n";
  return OS.str();
}

std::string djx::renderCodeCentric(const MergedProfile &P,
                                   const MethodRegistry &Methods,
                                   const ReportOptions &Opts) {
  std::ostringstream OS;
  PerfEventKind Kind = Opts.SortKind;
  OS << "=== code-centric profile (perf-style) ===\n";
  OS << "sorted by " << perfEventName(Kind) << "; total "
     << P.Totals.get(Kind) << " samples\n\n";

  std::vector<std::pair<CctNodeId, uint64_t>> Rows;
  for (const auto &[Node, M] : P.CodeCentric)
    if (M.get(Kind) > 0)
      Rows.emplace_back(Node, M.get(Kind));
  std::stable_sort(
      Rows.begin(), Rows.end(),
      [](const auto &A, const auto &B) { return A.second > B.second; });

  uint64_t Total = P.Totals.get(Kind);
  unsigned Shown = 0;
  for (const auto &[Node, Count] : Rows) {
    if (Shown++ >= Opts.TopGroups)
      break;
    double Share =
        Total ? static_cast<double>(Count) / static_cast<double>(Total) : 0.0;
    OS << "  [" << pct(Share) << ", " << Count << "] "
       << renderPath(P.Tree, Node, Methods) << "\n";
  }
  if (Shown == 0)
    OS << "(no samples)\n";
  return OS.str();
}

std::string djx::renderDegradedBanner(const VmError &E,
                                      uint64_t SamplesHandled,
                                      uint64_t SamplesDropped) {
  std::ostringstream OS;
  uint64_t Captured = SamplesHandled - std::min(SamplesHandled, SamplesDropped);
  OS << "=== DJXPerf DEGRADED report: run failed, partial profile salvaged "
        "===\n";
  OS << "failure:  " << vmErrorKindName(E.Kind) << " (exit code "
     << vmErrorExitCode(E.Kind) << ")\n";
  OS << "detail:   " << E.Message << "\n";
  if (E.ThreadId != VmError::kNoThread)
    OS << "thread:   " << E.ThreadId << "\n";
  if (E.Steps != 0)
    OS << "steps:    " << E.Steps << "\n";
  if (E.Shard != VmError::kNoShard)
    OS << "shard:    " << E.Shard << "\n";
  OS << "samples:  " << Captured << " captured, " << SamplesDropped
     << " dropped before the failure\n";
  OS << "The profile below covers execution up to the failure point only.\n\n";
  return OS.str();
}
