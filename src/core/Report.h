//===- Report.h - Object-centric and code-centric report text --*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text renderers for merged profiles. renderObjectCentric produces the
/// top-down view of the paper's GUI (Figure 5): each problematic object's
/// allocation site and full allocation call path, followed by the access
/// call paths ordered by their contribution, with metrics alongside.
/// renderCodeCentric is the Linux-perf-style flat view used as the Figure 1
/// baseline.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_CORE_REPORT_H
#define DJX_CORE_REPORT_H

#include "core/Analyzer.h"
#include "jvm/MethodRegistry.h"
#include "support/VmError.h"

#include <string>

namespace djx {

/// Presentation options.
struct ReportOptions {
  /// Metric to order by (poorest locality first).
  PerfEventKind SortKind = PerfEventKind::L1Miss;
  /// Maximum object groups shown.
  unsigned TopGroups = 10;
  /// Maximum access contexts shown per group.
  unsigned TopAccessContexts = 5;
  /// Hide groups below this share of total samples.
  double MinShare = 0.0;
  /// Include NUMA remote-access percentages.
  bool ShowNuma = true;
};

/// Renders one call path as "Class.method:line <- ..." (leaf first).
std::string renderPath(const Cct &Tree, CctNodeId Leaf,
                       const MethodRegistry &Methods);

/// Renders the object-centric view.
std::string renderObjectCentric(const MergedProfile &P,
                                const MethodRegistry &Methods,
                                const ReportOptions &Opts = ReportOptions());

/// Renders the flat code-centric view (what perf/VTune would report).
std::string renderCodeCentric(const MergedProfile &P,
                              const MethodRegistry &Methods,
                              const ReportOptions &Opts = ReportOptions());

/// Banner prepended to every report of a run that failed: marks the
/// profile as DEGRADED (partial — everything up to the failure point was
/// salvaged from the sample rings) and carries the failure metadata
/// (kind, message, thread, step count, shard) plus captured-vs-dropped
/// sample accounting. Emitted *only* on failure, so fault-free reports
/// stay byte-identical to a build without the failure model.
std::string renderDegradedBanner(const VmError &E, uint64_t SamplesHandled,
                                 uint64_t SamplesDropped);

} // namespace djx

#endif // DJX_CORE_REPORT_H
