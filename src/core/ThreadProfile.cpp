//===- ThreadProfile.cpp - Per-thread object-centric profile --------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/ThreadProfile.h"

#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>

using namespace djx;

void ThreadProfile::recordAllocation(CctNodeId AllocNode,
                                     const std::string &TypeName,
                                     uint64_t Bytes) {
  AllocKey Key{ThreadId, AllocNode};
  ObjectGroupStats &G = Groups[Key];
  if (G.TypeName.empty())
    G.TypeName = TypeName;
  ++G.AllocCount;
  G.AllocBytes += Bytes;
  ++Version;
}

void ThreadProfile::recordObjectSample(const AllocKey &Key,
                                       const std::string &TypeName,
                                       PerfEventKind Kind,
                                       CctNodeId AccessNode, bool Remote,
                                       NumaNodeId HomeNode,
                                       NumaNodeId CpuNode) {
  ObjectGroupStats &G = Groups[Key];
  if (G.TypeName.empty())
    G.TypeName = TypeName;
  G.Metrics.add(Kind);
  G.AccessBreakdown[AccessNode].add(Kind);
  ++G.AddressSamples;
  if (Remote)
    ++G.RemoteSamples;
  if (HomeNode != kInvalidNode)
    ++G.HomeNodeSamples[HomeNode];
  if (CpuNode != kInvalidNode)
    ++G.AccessNodeSamples[CpuNode];
  Totals.add(Kind);
  ++Version;
}

void ThreadProfile::recordCodeSample(CctNodeId AccessNode,
                                     PerfEventKind Kind) {
  CodeCentric[AccessNode].add(Kind);
  ++Version;
}

void ThreadProfile::recordUnattributed(PerfEventKind Kind) {
  Totals.add(Kind);
  ++Unattributed;
  ++Version;
}

size_t ThreadProfile::memoryFootprint() const {
  size_t Bytes = Tree.memoryFootprint();
  for (const auto &[Key, G] : Groups) {
    (void)Key;
    Bytes += sizeof(AllocKey) + sizeof(ObjectGroupStats) +
             G.TypeName.size() +
             G.AccessBreakdown.size() *
                 (sizeof(CctNodeId) + sizeof(MetricCounts) + 32) +
             (G.HomeNodeSamples.size() + G.AccessNodeSamples.size()) *
                 (sizeof(NumaNodeId) + sizeof(uint64_t) + 32);
  }
  Bytes += CodeCentric.size() *
           (sizeof(CctNodeId) + sizeof(MetricCounts) + 32);
  return Bytes;
}

// --- Serialisation ---------------------------------------------------------

static void writeMetrics(std::ostream &OS, const MetricCounts &M) {
  for (size_t I = 0; I < kNumPerfEventKinds; ++I)
    OS << ' ' << M.Counts[I];
}

static bool readMetrics(std::istringstream &IS, MetricCounts &M) {
  for (size_t I = 0; I < kNumPerfEventKinds; ++I)
    if (!(IS >> M.Counts[I]))
      return false;
  return true;
}

void ThreadProfile::writeTo(std::ostream &OS) const {
  OS << "djxprofile v1\n";
  OS << "thread " << ThreadId << ' ' << ThreadName << '\n';
  OS << "cct " << Tree.size() << '\n';
  for (CctNodeId N = 1; N < Tree.size(); ++N)
    OS << "node " << N << ' ' << Tree.parentOf(N) << ' ' << Tree.methodOf(N)
       << ' ' << Tree.bciOf(N) << '\n';
  for (const auto &[Key, G] : Groups) {
    OS << "group " << Key.AllocThread << ' ' << Key.AllocNode << ' '
       << (G.TypeName.empty() ? "?" : G.TypeName) << ' ' << G.AllocCount
       << ' ' << G.AllocBytes << ' ' << G.RemoteSamples << ' '
       << G.AddressSamples;
    writeMetrics(OS, G.Metrics);
    OS << '\n';
    for (const auto &[Node, M] : G.AccessBreakdown) {
      OS << "access " << Key.AllocThread << ' ' << Key.AllocNode << ' '
         << Node;
      writeMetrics(OS, M);
      OS << '\n';
    }
    // NUMA residency histograms (absent when NUMA tracking is off).
    for (const auto &[Node, Count] : G.HomeNodeSamples)
      OS << "homenode " << Key.AllocThread << ' ' << Key.AllocNode << ' '
         << Node << ' ' << Count << '\n';
    for (const auto &[Node, Count] : G.AccessNodeSamples)
      OS << "cpunode " << Key.AllocThread << ' ' << Key.AllocNode << ' '
         << Node << ' ' << Count << '\n';
  }
  for (const auto &[Node, M] : CodeCentric) {
    OS << "code " << Node;
    writeMetrics(OS, M);
    OS << '\n';
  }
  OS << "totals";
  writeMetrics(OS, Totals);
  OS << '\n';
  OS << "unattributed " << Unattributed << '\n';
  OS << "end\n";
}

bool ThreadProfile::readFrom(std::istream &IS) {
  *this = ThreadProfile();
  std::string Line;
  if (!std::getline(IS, Line) || Line != "djxprofile v1")
    return false;
  bool SawEnd = false;
  while (std::getline(IS, Line)) {
    std::istringstream LS(Line);
    std::string Tag;
    if (!(LS >> Tag))
      continue;
    if (Tag == "thread") {
      if (!(LS >> ThreadId >> ThreadName))
        return false;
    } else if (Tag == "cct") {
      uint64_t N;
      if (!(LS >> N))
        return false;
    } else if (Tag == "node") {
      CctNodeId Id, Parent;
      MethodId Method;
      uint32_t Bci;
      if (!(LS >> Id >> Parent >> Method >> Bci))
        return false;
      CctNodeId Got = Tree.child(Parent, Method, Bci);
      if (Got != Id)
        return false; // Nodes must arrive in id order.
    } else if (Tag == "group") {
      AllocKey Key;
      ObjectGroupStats G;
      if (!(LS >> Key.AllocThread >> Key.AllocNode >> G.TypeName >>
            G.AllocCount >> G.AllocBytes >> G.RemoteSamples >>
            G.AddressSamples))
        return false;
      if (!readMetrics(LS, G.Metrics))
        return false;
      if (G.TypeName == "?")
        G.TypeName.clear();
      Groups[Key] = std::move(G);
    } else if (Tag == "access") {
      AllocKey Key;
      CctNodeId Node;
      MetricCounts M;
      if (!(LS >> Key.AllocThread >> Key.AllocNode >> Node))
        return false;
      if (!readMetrics(LS, M))
        return false;
      Groups[Key].AccessBreakdown[Node] = M;
    } else if (Tag == "homenode" || Tag == "cpunode") {
      AllocKey Key;
      NumaNodeId Node;
      uint64_t Count;
      if (!(LS >> Key.AllocThread >> Key.AllocNode >> Node >> Count))
        return false;
      ObjectGroupStats &G = Groups[Key];
      (Tag == "homenode" ? G.HomeNodeSamples
                         : G.AccessNodeSamples)[Node] = Count;
    } else if (Tag == "code") {
      CctNodeId Node;
      MetricCounts M;
      if (!(LS >> Node))
        return false;
      if (!readMetrics(LS, M))
        return false;
      CodeCentric[Node] = M;
    } else if (Tag == "totals") {
      if (!readMetrics(LS, Totals))
        return false;
    } else if (Tag == "unattributed") {
      if (!(LS >> Unattributed))
        return false;
    } else if (Tag == "end") {
      SawEnd = true;
      break;
    } else {
      return false;
    }
  }
  return SawEnd;
}
