//===- ThreadProfile.h - Per-thread object-centric profile ------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread measurement state (§5.1): each thread owns a compact CCT and
/// the object-centric metric tables keyed by allocation identity; the
/// offline analyzer merges these across threads (§5.2). A profile also
/// records the plain code-centric view (what Linux perf would report) for
/// the Figure 1 comparison.
///
/// Profiles are serialisable to a line-oriented text format, so the
/// collector can emit one file per thread and the analyzer can load them
/// back — the exact workflow of Figure 3.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_CORE_THREADPROFILE_H
#define DJX_CORE_THREADPROFILE_H

#include "core/Cct.h"
#include "core/LiveObjectIndex.h"
#include "core/Metrics.h"
#include "sim/NumaTopology.h"

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace djx {

/// Allocation identity used as the object-group key: the allocating thread
/// plus the allocation-context node in *that thread's* CCT.
struct AllocKey {
  uint64_t AllocThread = 0;
  CctNodeId AllocNode = kCctRoot;

  bool operator<(const AllocKey &O) const {
    if (AllocThread != O.AllocThread)
      return AllocThread < O.AllocThread;
    return AllocNode < O.AllocNode;
  }
  bool operator==(const AllocKey &O) const {
    return AllocThread == O.AllocThread && AllocNode == O.AllocNode;
  }
};

/// Aggregated measurements for all objects sharing one allocation context.
struct ObjectGroupStats {
  std::string TypeName;
  /// Allocation-side statistics (filled by the allocating thread only).
  uint64_t AllocCount = 0;
  uint64_t AllocBytes = 0;
  /// PMU metrics aggregated over all sampled accesses to the group.
  MetricCounts Metrics;
  /// NUMA diagnosis: sampled accesses whose page resided on a different
  /// node than the accessing CPU (§4.3).
  uint64_t RemoteSamples = 0;
  uint64_t AddressSamples = 0;
  /// Node residency histogram: per sampled access, the home node the
  /// move_pages analogue reported for the effective address.
  std::map<NumaNodeId, uint64_t> HomeNodeSamples;
  /// Accessing-side histogram: the node of the sampling CPU
  /// (PERF_SAMPLE_CPU). Together with HomeNodeSamples this drives the
  /// placement remediation hint (bind vs. interleave, §7.5/§7.6).
  std::map<NumaNodeId, uint64_t> AccessNodeSamples;
  /// Disaggregated access contexts (nodes of the owning profile's CCT).
  std::map<CctNodeId, MetricCounts> AccessBreakdown;
};

/// One thread's complete profile.
class ThreadProfile {
public:
  ThreadProfile() = default;
  ThreadProfile(uint64_t ThreadId, std::string ThreadName)
      : ThreadId(ThreadId), ThreadName(std::move(ThreadName)) {}

  uint64_t threadId() const { return ThreadId; }
  const std::string &threadName() const { return ThreadName; }

  Cct &cct() { return Tree; }
  const Cct &cct() const { return Tree; }

  /// Records an allocation of \p Bytes at context \p AllocNode (a node of
  /// this thread's CCT).
  void recordAllocation(CctNodeId AllocNode, const std::string &TypeName,
                        uint64_t Bytes);

  /// Attributes one sample to the object group identified by \p Key, with
  /// the access context \p AccessNode (a node of this thread's CCT).
  /// \p HomeNode / \p CpuNode feed the per-object NUMA residency
  /// histograms when known (kInvalidNode: NUMA tracking off or the page
  /// was never placed).
  void recordObjectSample(const AllocKey &Key, const std::string &TypeName,
                          PerfEventKind Kind, CctNodeId AccessNode,
                          bool Remote, NumaNodeId HomeNode = kInvalidNode,
                          NumaNodeId CpuNode = kInvalidNode);

  /// Records the code-centric view of one sample.
  void recordCodeSample(CctNodeId AccessNode, PerfEventKind Kind);

  /// Records a sample that hit no tracked object.
  void recordUnattributed(PerfEventKind Kind);

  const std::map<AllocKey, ObjectGroupStats> &groups() const {
    return Groups;
  }
  const std::map<CctNodeId, MetricCounts> &codeCentric() const {
    return CodeCentric;
  }
  const MetricCounts &totals() const { return Totals; }
  uint64_t unattributedSamples() const { return Unattributed; }

  /// Monotonic change counter, bumped by every record* call. The profile
  /// journal snapshots a thread only when its version moved since the
  /// last flush, so idle threads cost no journal bytes per epoch.
  uint64_t version() const { return Version; }

  size_t memoryFootprint() const;

  /// Serialises to the line-oriented profile format.
  void writeTo(std::ostream &OS) const;

  /// Parses a profile written by writeTo. \returns false on malformed
  /// input.
  bool readFrom(std::istream &IS);

private:
  uint64_t ThreadId = 0;
  std::string ThreadName;
  Cct Tree;
  std::map<AllocKey, ObjectGroupStats> Groups;
  std::map<CctNodeId, MetricCounts> CodeCentric;
  MetricCounts Totals;
  uint64_t Unattributed = 0;
  uint64_t Version = 0;
};

} // namespace djx

#endif // DJX_CORE_THREADPROFILE_H
