//===- AllocationInstrumenter.cpp - Java-agent bytecode rewriting ---------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "instrument/AllocationInstrumenter.h"

#include <cassert>

using namespace djx;

static uint32_t lineAt(const BytecodeMethod &M, uint32_t Bci) {
  uint32_t Line = 0;
  for (const LineEntry &E : M.LineTable) {
    if (E.Bci > Bci)
      break;
    Line = E.Line;
  }
  return Line;
}

unsigned djx::instrumentAllocations(BytecodeMethod &M,
                                    AllocationSiteTable &Table) {
  assert(M.RegistryId != kInvalidMethod &&
         "instrument after the program is loaded");
  unsigned Count = 0;
  transformMethod(M, [&](const Instruction &I, uint32_t OldBci,
                         std::vector<Instruction> &Out) {
    if (!isAllocation(I.Op)) {
      Out.push_back(I);
      return;
    }
    AllocationSite Site;
    Site.Method = M.RegistryId;
    Site.OriginalBci = OldBci;
    Site.Line = lineAt(M, OldBci);
    Site.AllocOp = I.Op;
    Site.TypeOperand = I.A;
    uint64_t Id = Table.addSite(Site);
    Out.push_back(
        Instruction{Opcode::AllocHookPre, static_cast<int64_t>(Id), 0});
    Out.push_back(I);
    Out.push_back(
        Instruction{Opcode::AllocHookPost, static_cast<int64_t>(Id), 0});
    ++Count;
  });
  return Count;
}

unsigned djx::instrumentProgram(BytecodeProgram &P,
                                AllocationSiteTable &Table) {
  unsigned Count = 0;
  for (size_t I = 0; I < P.numMethods(); ++I)
    Count += instrumentAllocations(P.method(I), Table);
  return Count;
}
