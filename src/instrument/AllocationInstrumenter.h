//===- AllocationInstrumenter.h - Java-agent bytecode rewriting -*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode-rewriting half of DJXPerf's Java agent (§4.1): scans
/// methods and wraps the four allocation opcodes — new, newarray,
/// anewarray, multianewarray — with pre-/post-allocation hooks. Each
/// rewritten site is recorded in an AllocationSiteTable carrying the
/// method, original BCI and source line, so the runtime hooks can report
/// exactly which site allocated.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_INSTRUMENT_ALLOCATIONINSTRUMENTER_H
#define DJX_INSTRUMENT_ALLOCATIONINSTRUMENTER_H

#include "bytecode/ClassFile.h"
#include "instrument/MethodTransformer.h"

#include <cstdint>
#include <vector>

namespace djx {

/// One instrumented allocation site.
struct AllocationSite {
  uint64_t SiteId = 0;
  MethodId Method = kInvalidMethod;
  uint32_t OriginalBci = 0;
  uint32_t Line = 0;
  Opcode AllocOp = Opcode::New;
  /// The allocated type (leaf type for multianewarray).
  int64_t TypeOperand = 0;
};

/// Registry of all sites discovered by instrumentation.
class AllocationSiteTable {
public:
  uint64_t addSite(AllocationSite Site) {
    Site.SiteId = Sites.size();
    Sites.push_back(Site);
    return Site.SiteId;
  }

  const AllocationSite &get(uint64_t SiteId) const {
    assert(SiteId < Sites.size() && "bad site id");
    return Sites[SiteId];
  }

  size_t size() const { return Sites.size(); }
  const std::vector<AllocationSite> &sites() const { return Sites; }

private:
  std::vector<AllocationSite> Sites;
};

/// Rewrites one method; records new sites into \p Table.
/// \returns the number of allocation sites instrumented.
unsigned instrumentAllocations(BytecodeMethod &M, AllocationSiteTable &Table);

/// Rewrites every method of a loaded program.
/// \returns total sites instrumented.
unsigned instrumentProgram(BytecodeProgram &P, AllocationSiteTable &Table);

} // namespace djx

#endif // DJX_INSTRUMENT_ALLOCATIONINSTRUMENTER_H
