//===- MethodTransformer.cpp - ASM-style bytecode rewriting ---------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "instrument/MethodTransformer.h"

#include <cassert>

using namespace djx;

int64_t djx::transformMethod(BytecodeMethod &M,
                             const InstructionVisitor &Visitor) {
  std::vector<Instruction> NewCode;
  NewCode.reserve(M.Code.size());
  std::vector<uint32_t> OldToNew(M.Code.size() + 1, 0);

  for (size_t OldBci = 0; OldBci < M.Code.size(); ++OldBci) {
    OldToNew[OldBci] = static_cast<uint32_t>(NewCode.size());
    size_t Before = NewCode.size();
    Visitor(M.Code[OldBci], static_cast<uint32_t>(OldBci), NewCode);
    assert(NewCode.size() > Before &&
           "visitor must emit at least one instruction");
    (void)Before;
  }
  OldToNew[M.Code.size()] = static_cast<uint32_t>(NewCode.size());

  // Remap branch targets. Branch operands in NewCode still hold old BCIs.
  for (Instruction &I : NewCode) {
    if (!isBranch(I.Op))
      continue;
    assert(I.A >= 0 && static_cast<size_t>(I.A) < OldToNew.size() &&
           "branch target out of range before remap");
    I.A = OldToNew[static_cast<size_t>(I.A)];
  }

  // Remap the line table.
  for (LineEntry &E : M.LineTable) {
    assert(E.Bci < OldToNew.size() && "line entry beyond code");
    E.Bci = OldToNew[E.Bci];
  }

  int64_t Added = static_cast<int64_t>(NewCode.size()) -
                  static_cast<int64_t>(M.Code.size());
  M.Code = std::move(NewCode);
  return Added;
}
