//===- MethodTransformer.h - ASM-style bytecode rewriting ------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic bytecode rewriting framework in the spirit of the ASM library
/// (§3): a transformer visits every instruction of a method and may expand
/// it into a replacement sequence; the framework rebuilds branch targets
/// and the line-number table against the new code layout. DJXPerf's Java
/// agent is one client (AllocationInstrumenter); tests exercise others.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_INSTRUMENT_METHODTRANSFORMER_H
#define DJX_INSTRUMENT_METHODTRANSFORMER_H

#include "bytecode/ClassFile.h"

#include <functional>
#include <vector>

namespace djx {

/// Callback deciding how one instruction is rewritten. It receives the
/// original instruction and its original BCI and appends the replacement
/// sequence to \p Out (append the instruction itself for a no-op visit).
using InstructionVisitor = std::function<void(
    const Instruction &I, uint32_t OldBci, std::vector<Instruction> &Out)>;

/// Rewrites \p M in place through \p Visitor, remapping branch targets and
/// line-table entries. A branch to old BCI b lands on the first
/// replacement instruction emitted for b.
/// \returns the number of instructions added (new size - old size).
int64_t transformMethod(BytecodeMethod &M, const InstructionVisitor &Visitor);

} // namespace djx

#endif // DJX_INSTRUMENT_METHODTRANSFORMER_H
