//===- Interpreter.cpp - Bytecode interpreter ------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "support/VmError.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace djx;

Interpreter::Interpreter(JavaVm &Vm, BytecodeProgram &Program,
                         JavaThread &Thread)
    : Vm(Vm), Program(Program), Thread(Thread) {
  assert(Program.isLoaded() && "program must be linked before execution");
  Arena.resize(256);
  RootToken = Vm.addRootProvider(
      [this](std::vector<ObjectRef *> &Slots) { collectRoots(Slots); });
}

Interpreter::~Interpreter() { Vm.removeRootProvider(RootToken); }

void Interpreter::setPublishVmAllocationEvents(bool On) {
  Vm.setAllocationEventsEnabled(On);
}

void Interpreter::setTier(const TierConfig &Cfg) {
  assert(Steps == 0 && CallStack.empty() &&
         "the tier must be selected before any instruction executes");
  Traces.reset();
  if (Cfg.Tier == ExecTier::Super)
    Traces = std::make_unique<TraceCache>(Cfg, &Program);
}

void Interpreter::collectRoots(std::vector<ObjectRef *> &Slots) {
  for (Frame &F : CallStack) {
    Value *L = Arena.data() + F.LocalsBase;
    for (uint32_t I = 0, N = F.M->NumLocals; I < N; ++I)
      if (L[I].IsRef && L[I].Bits != kNullRef)
        Slots.push_back(&L[I].Bits);
    Value *S = Arena.data() + F.StackBase;
    for (uint32_t I = 0, N = F.Sp; I < N; ++I)
      if (S[I].IsRef && S[I].Bits != kNullRef)
        Slots.push_back(&S[I].Bits);
  }
}

void Interpreter::growArena(size_t Needed) {
  Arena.resize(std::max(Arena.size() * 2, Needed));
}

Interpreter::Frame &Interpreter::pushActivation(size_t MethodIndex,
                                                uint32_t ArgsBase) {
  const BytecodeMethod &M = Program.method(MethodIndex);
  size_t Needed = static_cast<size_t>(ArgsBase) + M.NumLocals;
  if (Needed > Arena.size())
    growArena(Needed);
  // Non-argument locals start zeroed (and must: the GC scans them).
  std::fill(Arena.begin() + ArgsBase + M.NumArgs,
            Arena.begin() + ArgsBase + M.NumLocals, Value{});
  Frame F;
  F.M = &M;
  F.MethodIndex = MethodIndex;
  F.LocalsBase = ArgsBase;
  F.StackBase = ArgsBase + M.NumLocals;
  F.Sp = 0;
  F.Pc = 0;
  CallStack.push_back(F);
  ArenaTop = F.StackBase;
  return CallStack.back();
}

void Interpreter::fatalStepLimit() const {
  VmError E(VmErrorKind::StepLimit,
            "interpreter step limit (" + std::to_string(StepLimit) +
                ") exceeded (runaway loop?)");
  E.ThreadId = Thread.id();
  E.Steps = Steps;
  throw E;
}

std::optional<Value> Interpreter::run(const std::string &QualifiedName,
                                      const std::vector<Value> &Args) {
  return execute(Program.methodIndex(QualifiedName), Args);
}

void Interpreter::beginCall(size_t MethodIndex,
                            const std::vector<Value> &Args) {
  {
    const BytecodeMethod &M0 = Program.method(MethodIndex);
    assert(Args.size() == M0.NumArgs && "argument count mismatch");
    (void)M0;
  }
  const uint32_t BaseTop = ArenaTop;
  // The step limit is per run(): budget from the cumulative counter at
  // top-level entry (nested entries inherit the outer budget).
  if (CallStack.empty())
    StepDeadline =
        Steps > ~0ULL - StepLimit ? ~0ULL : Steps + StepLimit;

  // Materialise the entry arguments in the arena, then push the activation
  // over them (pushActivation treats them as in-place locals 0..N-1).
  if (ArenaTop + Args.size() > Arena.size())
    growArena(ArenaTop + Args.size());
  std::copy(Args.begin(), Args.end(), Arena.begin() + BaseTop);
  Frame &F0 = pushActivation(MethodIndex, BaseTop);
  Thread.pushFrame(F0.M->RegistryId, 0);
}

std::optional<Value> Interpreter::execute(size_t MethodIndex,
                                          const std::vector<Value> &Args) {
  const size_t BaseDepth = CallStack.size();
  const uint32_t BaseTop = ArenaTop;
  beginCall(MethodIndex, Args);
  std::optional<Value> Out;
  bool Returned = loop(BaseDepth, BaseTop, ~0ULL, Out);
  assert(Returned && "unbounded loop() paused");
  (void)Returned;
  return Out;
}

void Interpreter::startCall(const std::string &QualifiedName,
                            const std::vector<Value> &Args) {
  assert(CallStack.empty() && "a call is already pending");
  SessionResult.reset();
  beginCall(Program.methodIndex(QualifiedName), Args);
}

RunState Interpreter::resume(uint64_t MaxSteps) {
  assert(!CallStack.empty() && "no pending call to resume");
  assert(MaxSteps > 0 && "resume needs a positive step budget");
  uint64_t QuantumEnd =
      Steps > ~0ULL - MaxSteps ? ~0ULL : Steps + MaxSteps;
  std::optional<Value> Out;
  try {
    if (!loop(/*BaseDepth=*/0, /*BaseTop=*/0, QuantumEnd, Out))
      return RunState::Paused;
  } catch (const GcRequest &) {
    // Executor mode: a shard allocation faulted. The opcode's operands
    // are still on the stack (peek-then-commit) and its frame state was
    // synced before the VM call — roll back its step count and dispatch
    // tick too, so the re-execution after the safepoint GC is observed
    // exactly once by every counter (and so the Executor can detect a
    // fault that repeats at the same step count as OutOfMemory). The
    // hot-site counter must skip the re-execution's dispatch for the same
    // reason: a double bump would make trace selection GC-timing-
    // dependent and break --jobs invariance.
    --Steps;
    Thread.subCycles(1);
    GcRetryPending = true;
    throw;
  }
  SessionResult = Out;
  return RunState::Done;
}

std::optional<Value> Interpreter::takeResult() {
  std::optional<Value> Out = SessionResult;
  SessionResult.reset();
  return Out;
}

bool Interpreter::loop(size_t BaseDepth, uint32_t BaseTop,
                       uint64_t QuantumEnd, std::optional<Value> &Out) {
  // Cached execution registers for the top frame; Reload refreshes them
  // after any frame switch or arena growth, SyncTop publishes them back
  // before anything that can trigger a GC (the root scan reads frames).
  Frame *F = nullptr;
  const Instruction *Code = nullptr;
  uint32_t CodeSize = 0;
  Value *L = nullptr; // Locals base.
  Value *S = nullptr; // Operand stack base.
  uint32_t Sp = 0;
  uint32_t Pc = 0;
  // Super tier: the top frame's hot-site array (null in the interp tier).
  // Site storage mutates in place, so the pointer survives compiles and
  // invalidations; only a frame switch refreshes it.
  TraceCache::Site *TraceSites = nullptr;

  auto Reload = [&] {
    F = &CallStack.back();
    Code = F->M->Code.data();
    CodeSize = static_cast<uint32_t>(F->M->Code.size());
    L = Arena.data() + F->LocalsBase;
    S = Arena.data() + F->StackBase;
    Sp = F->Sp;
    Pc = F->Pc;
    ArenaTop = F->StackBase + Sp;
    TraceSites =
        Traces ? Traces->sitesFor(F->MethodIndex, CodeSize) : nullptr;
  };
  auto SyncTop = [&] {
    F->Pc = Pc;
    F->Sp = Sp;
    ArenaTop = F->StackBase + Sp;
  };
  auto Push = [&](Value V) {
    if (static_cast<size_t>(F->StackBase) + Sp == Arena.size()) {
      SyncTop();
      growArena(Arena.size() + 1);
      Reload();
    }
    S[Sp++] = V;
  };
  auto Pop = [&]() -> Value {
    assert(Sp > 0 && "operand stack underflow");
    return S[--Sp];
  };
  Reload();

  for (;;) {
    // Quantum boundary: pause *before* the next instruction so it has not
    // been counted or charged; the frame sync makes the pause a clean GC /
    // resume point. run() passes ~0 and never pauses.
    if (Steps >= QuantumEnd) {
      SyncTop();
      return false;
    }
    if (Pc >= CodeSize) {
      SyncTop();
      VmError E(VmErrorKind::InvalidBytecode,
                "control fell off the end of " + F->M->qualifiedName());
      E.ThreadId = Thread.id();
      E.Steps = Steps;
      throw E;
    }
    if (TraceSites) {
      TraceCache::Site &TS = TraceSites[Pc];
      const bool SkipBump = GcRetryPending;
      GcRetryPending = false;
      const CompiledTrace *T = nullptr;
      if (TS.St == TraceCache::Site::Compiled)
        T = TS.Trace.get();
      else if (TS.St == TraceCache::Site::Cold && !SkipBump)
        T = Traces->bump(TS, *F->M, Pc);
      // Admission is all-or-nothing against both budgets: the full trace
      // must fit, else it runs flat this quantum — observationally
      // identical, since a trace is the same instruction stream.
      if (T && Steps + T->NumSteps <= QuantumEnd &&
          Steps + T->NumSteps <= StepDeadline) {
        SyncTop();
        execTrace(*T, QuantumEnd);
        Reload();
        continue;
      }
    }
    if (++Steps > StepDeadline)
      fatalStepLimit();
    const Instruction &I = Code[Pc];
    Thread.setBci(Pc);
    Vm.tick(Thread, 1);
    uint32_t NextPc = Pc + 1;

    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::IConst:
      Push(Value::fromInt(I.A));
      break;
    case Opcode::ILoad:
      assert(!L[I.A].IsRef && "iload of a reference slot");
      Push(L[I.A]);
      break;
    case Opcode::IStore: {
      Value V = Pop();
      assert(!V.IsRef && "istore of a reference");
      L[I.A] = V;
      break;
    }
    case Opcode::ALoad:
      assert((L[I.A].IsRef || L[I.A].Bits == kNullRef) &&
             "aload of a non-reference slot");
      Push(Value::fromRef(L[I.A].Bits));
      break;
    case Opcode::AStore: {
      Value V = Pop();
      assert(V.IsRef && "astore of a non-reference");
      L[I.A] = V;
      break;
    }
    case Opcode::Pop:
      Pop();
      break;
    case Opcode::Dup:
      assert(Sp > 0 && "operand stack underflow");
      Push(S[Sp - 1]);
      break;
    case Opcode::Swap: {
      Value B = Pop(), A = Pop();
      Push(B);
      Push(A);
      break;
    }
    case Opcode::IAdd:
    case Opcode::ISub:
    case Opcode::IMul:
    case Opcode::IDiv:
    case Opcode::IRem:
    case Opcode::IAnd:
    case Opcode::IOr:
    case Opcode::IXor:
    case Opcode::IShl:
    case Opcode::IShr: {
      int64_t B = Pop().asInt();
      int64_t A = Pop().asInt();
      int64_t R = 0;
      switch (I.Op) {
      case Opcode::IAdd:
        R = A + B;
        break;
      case Opcode::ISub:
        R = A - B;
        break;
      case Opcode::IMul:
        R = A * B;
        break;
      case Opcode::IDiv:
        assert(B != 0 && "division by zero");
        R = A / B;
        break;
      case Opcode::IRem:
        assert(B != 0 && "remainder by zero");
        R = A % B;
        break;
      case Opcode::IAnd:
        R = A & B;
        break;
      case Opcode::IOr:
        R = A | B;
        break;
      case Opcode::IXor:
        R = A ^ B;
        break;
      case Opcode::IShl:
        R = A << (B & 63);
        break;
      case Opcode::IShr:
        R = A >> (B & 63);
        break;
      default:
        assert(false && "unreachable");
      }
      Push(Value::fromInt(R));
      break;
    }
    case Opcode::INeg:
      Push(Value::fromInt(-Pop().asInt()));
      break;
    case Opcode::Goto:
      NextPc = static_cast<uint32_t>(I.A);
      break;
    case Opcode::IfEq:
      if (Pop().asInt() == 0)
        NextPc = static_cast<uint32_t>(I.A);
      break;
    case Opcode::IfNe:
      if (Pop().asInt() != 0)
        NextPc = static_cast<uint32_t>(I.A);
      break;
    case Opcode::IfLt:
      if (Pop().asInt() < 0)
        NextPc = static_cast<uint32_t>(I.A);
      break;
    case Opcode::IfGe:
      if (Pop().asInt() >= 0)
        NextPc = static_cast<uint32_t>(I.A);
      break;
    case Opcode::IfICmpEq:
    case Opcode::IfICmpNe:
    case Opcode::IfICmpLt:
    case Opcode::IfICmpGe:
    case Opcode::IfICmpGt:
    case Opcode::IfICmpLe: {
      int64_t B = Pop().asInt();
      int64_t A = Pop().asInt();
      bool Taken = false;
      switch (I.Op) {
      case Opcode::IfICmpEq:
        Taken = A == B;
        break;
      case Opcode::IfICmpNe:
        Taken = A != B;
        break;
      case Opcode::IfICmpLt:
        Taken = A < B;
        break;
      case Opcode::IfICmpGe:
        Taken = A >= B;
        break;
      case Opcode::IfICmpGt:
        Taken = A > B;
        break;
      case Opcode::IfICmpLe:
        Taken = A <= B;
        break;
      default:
        assert(false && "unreachable");
      }
      if (Taken)
        NextPc = static_cast<uint32_t>(I.A);
      break;
    }
    case Opcode::IfNull:
      if (Pop().asRef() == kNullRef)
        NextPc = static_cast<uint32_t>(I.A);
      break;
    case Opcode::IfNonNull:
      if (Pop().asRef() != kNullRef)
        NextPc = static_cast<uint32_t>(I.A);
      break;
    case Opcode::New: {
      SyncTop();
      ObjectRef Obj = Vm.allocateObject(Thread, static_cast<TypeId>(I.A));
      // Reload: an allocation-event observer may have re-entered run()
      // and grown the arena under the cached pointers.
      Reload();
      Push(Value::fromRef(Obj));
      break;
    }
    case Opcode::NewArray:
    case Opcode::ANewArray: {
      // Peek the length and pop only after the allocation commits: a
      // GcRequest unwind (executor mode) must leave the operand stack
      // intact so this instruction re-executes after the safepoint GC.
      assert(Sp > 0 && "operand stack underflow");
      int64_t Len = S[Sp - 1].asInt();
      assert(Len >= 0 && "negative array length");
      SyncTop();
      ObjectRef Obj = Vm.allocateArray(Thread, static_cast<TypeId>(I.A),
                                       static_cast<uint64_t>(Len));
      Reload();
      --Sp;
      Push(Value::fromRef(Obj));
      break;
    }
    case Opcode::MultiANewArray: {
      // Same peek-then-commit discipline as NewArray (dims are ints, so
      // leaving them on the stack adds no GC roots).
      uint32_t NDims = static_cast<uint32_t>(I.B);
      assert(Sp >= NDims && "operand stack underflow");
      std::vector<uint64_t> Dims(NDims);
      for (uint32_t D = 0; D < NDims; ++D) {
        int64_t Len = S[Sp - NDims + D].asInt();
        assert(Len >= 0 && "negative array length");
        Dims[D] = static_cast<uint64_t>(Len);
      }
      SyncTop();
      ObjectRef Obj = Vm.allocateMultiArray(
          Thread, static_cast<TypeId>(I.A), Dims);
      Reload();
      Sp -= NDims;
      Push(Value::fromRef(Obj));
      break;
    }
    case Opcode::PALoad: {
      int64_t Idx = Pop().asInt();
      ObjectRef Arr = Pop().asRef();
      const ObjectInfo &Info = Vm.objectInfo(Thread, Arr);
      const TypeDescriptor &Desc = Vm.objectType(Thread, Arr);
      assert(Desc.IsArray && !Desc.ElemIsRef && "paload needs a prim array");
      assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
             "array index out of bounds");
      (void)Info;
      uint64_t Off = static_cast<uint64_t>(Idx) * Desc.ElemSize;
      uint64_t V = 0;
      if (Desc.ElemSize == 1)
        V = Vm.readU8(Thread, Arr, Off);
      else if (Desc.ElemSize == 4)
        V = Vm.readU32(Thread, Arr, Off);
      else
        V = Vm.readWord(Thread, Arr, Off);
      Push(Value::fromInt(static_cast<int64_t>(V)));
      break;
    }
    case Opcode::PAStore: {
      uint64_t V = static_cast<uint64_t>(Pop().asInt());
      int64_t Idx = Pop().asInt();
      ObjectRef Arr = Pop().asRef();
      const ObjectInfo &Info = Vm.objectInfo(Thread, Arr);
      const TypeDescriptor &Desc = Vm.objectType(Thread, Arr);
      assert(Desc.IsArray && !Desc.ElemIsRef && "pastore needs a prim array");
      assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
             "array index out of bounds");
      (void)Info;
      uint64_t Off = static_cast<uint64_t>(Idx) * Desc.ElemSize;
      if (Desc.ElemSize == 1)
        Vm.writeU8(Thread, Arr, Off, static_cast<uint8_t>(V));
      else if (Desc.ElemSize == 4)
        Vm.writeU32(Thread, Arr, Off, static_cast<uint32_t>(V));
      else
        Vm.writeWord(Thread, Arr, Off, V);
      break;
    }
    case Opcode::AALoad: {
      int64_t Idx = Pop().asInt();
      ObjectRef Arr = Pop().asRef();
#ifndef NDEBUG
      const ObjectInfo &Info = Vm.objectInfo(Thread, Arr);
      assert(Vm.objectType(Thread, Arr).ElemIsRef && "aaload needs ref array");
      assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
             "array index out of bounds");
#endif
      Push(Value::fromRef(
          Vm.readRef(Thread, Arr, static_cast<uint64_t>(Idx) * 8)));
      break;
    }
    case Opcode::AAStore: {
      ObjectRef V = Pop().asRef();
      int64_t Idx = Pop().asInt();
      ObjectRef Arr = Pop().asRef();
#ifndef NDEBUG
      const ObjectInfo &Info = Vm.objectInfo(Thread, Arr);
      assert(Vm.objectType(Thread, Arr).ElemIsRef && "aastore needs ref array");
      assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
             "array index out of bounds");
#endif
      Vm.writeRef(Thread, Arr, static_cast<uint64_t>(Idx) * 8, V);
      break;
    }
    case Opcode::ArrayLength: {
      ObjectRef Arr = Pop().asRef();
      // Length lives in the header word; touching it is a real access.
      Vm.readWord(Thread, Arr, 0);
      Push(Value::fromInt(static_cast<int64_t>(Vm.objectInfo(Thread, Arr).Length)));
      break;
    }
    case Opcode::GetField: {
      ObjectRef Obj = Pop().asRef();
      uint64_t V = I.B == 4
                       ? Vm.readU32(Thread, Obj, static_cast<uint64_t>(I.A))
                       : Vm.readWord(Thread, Obj, static_cast<uint64_t>(I.A));
      Push(Value::fromInt(static_cast<int64_t>(V)));
      break;
    }
    case Opcode::PutField: {
      uint64_t V = static_cast<uint64_t>(Pop().asInt());
      ObjectRef Obj = Pop().asRef();
      if (I.B == 4)
        Vm.writeU32(Thread, Obj, static_cast<uint64_t>(I.A),
                    static_cast<uint32_t>(V));
      else
        Vm.writeWord(Thread, Obj, static_cast<uint64_t>(I.A), V);
      break;
    }
    case Opcode::GetRefField: {
      ObjectRef Obj = Pop().asRef();
      Push(Value::fromRef(
          Vm.readRef(Thread, Obj, static_cast<uint64_t>(I.A))));
      break;
    }
    case Opcode::PutRefField: {
      ObjectRef V = Pop().asRef();
      ObjectRef Obj = Pop().asRef();
      Vm.writeRef(Thread, Obj, static_cast<uint64_t>(I.A), V);
      break;
    }
    case Opcode::Invoke: {
      size_t Callee = static_cast<size_t>(I.A);
      const BytecodeMethod &CM = Program.method(Callee);
      assert(static_cast<uint32_t>(I.B) == CM.NumArgs &&
             "invoke argument count mismatch");
      assert(Sp >= CM.NumArgs && "operand stack underflow at invoke");
      // Consume the arguments in place: they become the callee's first
      // locals without being copied (the activation overlaps them).
      Sp -= CM.NumArgs;
      F->Pc = NextPc;
      F->Sp = Sp;
      uint32_t ArgsBase = F->StackBase + Sp;
      Frame &NF = pushActivation(Callee, ArgsBase);
      Thread.pushFrame(CM.RegistryId, 0);
      (void)NF;
      Reload();
      continue;
    }
    case Opcode::Return:
    case Opcode::IReturn:
    case Opcode::AReturn: {
      bool HasValue = I.Op != Opcode::Return;
      Value RV;
      if (HasValue) {
        RV = Pop();
        assert((I.Op == Opcode::IReturn ? !RV.IsRef : RV.IsRef) &&
               "return value tag mismatch");
      }
      Thread.popFrame();
      CallStack.pop_back();
      if (CallStack.size() == BaseDepth) {
        ArenaTop = BaseTop;
        if (HasValue)
          Out = RV;
        else
          Out = std::nullopt;
        return true;
      }
      Reload(); // Caller frame: Pc already advanced past the Invoke.
      if (HasValue)
        Push(RV);
      continue;
    }
    case Opcode::AllocHookPre:
      if (Hooks.Pre) {
        // Sync/reload around the dispatch: a hook may re-enter run() (the
        // old recursive interpreter allowed it), which needs fresh frame
        // state and may grow the arena under our cached pointers.
        SyncTop();
        Hooks.Pre(static_cast<uint64_t>(I.A));
        Reload();
      }
      break;
    case Opcode::AllocHookPost:
      if (Hooks.Post) {
        assert(Sp > 0 && "operand stack underflow");
        assert(S[Sp - 1].IsRef &&
               "allochook_post expects the fresh ref on TOS");
        ObjectRef Fresh = S[Sp - 1].asRef();
        SyncTop();
        Hooks.Post(static_cast<uint64_t>(I.A), Fresh);
        Reload();
      }
      break;
    }
    Pc = NextPc;
  }
}

void Interpreter::execTrace(const CompiledTrace &T, uint64_t QuantumEnd) {
  Frame *F = &CallStack.back();
  assert(F->Pc == T.EntryPc && "trace entered at the wrong pc");
  assert(F->Sp >= T.MinStackDepth &&
         "trace entered below its operand floor");
  // One arena headroom check for the whole trace replaces the flat loop's
  // per-push check: every slot the trace can touch is reserved up front,
  // so pushes below are single stores. (Arena growth is host memory
  // management — nothing simulated observes it.)
  size_t Peak = static_cast<size_t>(F->StackBase) + F->Sp + T.MaxStackGrowth;
  if (Peak > Arena.size())
    growArena(Peak);
  Value *L = Arena.data() + F->LocalsBase;
  Value *S = Arena.data() + F->StackBase;
  uint32_t Sp = F->Sp;

  // Steps and dispatch ticks are batched: Pending counts retired
  // constituent instructions and is flushed before anything that can
  // observe the step counter or the simulated clock — memory accesses
  // (PMU sampling reads both, plus Bci), allocations, and every exit.
  uint64_t Pending = 0;
  auto Flush = [&] {
    Steps += Pending;
    Vm.tick(Thread, Pending);
    Pending = 0;
  };
  auto Exit = [&](uint32_t Pc) {
    F->Pc = Pc;
    F->Sp = Sp;
    ArenaTop = F->StackBase + Sp;
  };

  for (const TraceOp &O : T.Ops) {
    Pending += O.NumSteps;
    switch (O.Kind) {
    case SuperOp::Nop:
      break;
    case SuperOp::IConst:
      S[Sp++] = Value::fromInt(O.A);
      break;
    case SuperOp::ILoad:
      assert(!L[O.A].IsRef && "iload of a reference slot");
      S[Sp++] = L[O.A];
      break;
    case SuperOp::ALoad:
      assert((L[O.A].IsRef || L[O.A].Bits == kNullRef) &&
             "aload of a non-reference slot");
      S[Sp++] = Value::fromRef(L[O.A].Bits);
      break;
    case SuperOp::IStore:
      assert(Sp > 0 && "operand stack underflow");
      assert(!S[Sp - 1].IsRef && "istore of a reference");
      L[O.A] = S[--Sp];
      break;
    case SuperOp::AStore:
      assert(Sp > 0 && "operand stack underflow");
      assert(S[Sp - 1].IsRef && "astore of a non-reference");
      L[O.A] = S[--Sp];
      break;
    case SuperOp::PopV:
      assert(Sp > 0 && "operand stack underflow");
      --Sp;
      break;
    case SuperOp::DupV:
      assert(Sp > 0 && "operand stack underflow");
      S[Sp] = S[Sp - 1];
      ++Sp;
      break;
    case SuperOp::SwapV:
      assert(Sp > 1 && "operand stack underflow");
      std::swap(S[Sp - 1], S[Sp - 2]);
      break;
    case SuperOp::Alu: {
      assert(Sp > 1 && "operand stack underflow");
      int64_t B = S[--Sp].asInt();
      int64_t A = S[Sp - 1].asInt();
      int64_t R = 0;
      switch (O.Src) {
      case Opcode::IAdd:
        R = A + B;
        break;
      case Opcode::ISub:
        R = A - B;
        break;
      case Opcode::IMul:
        R = A * B;
        break;
      case Opcode::IDiv:
        assert(B != 0 && "division by zero");
        R = A / B;
        break;
      case Opcode::IRem:
        assert(B != 0 && "remainder by zero");
        R = A % B;
        break;
      case Opcode::IAnd:
        R = A & B;
        break;
      case Opcode::IOr:
        R = A | B;
        break;
      case Opcode::IXor:
        R = A ^ B;
        break;
      case Opcode::IShl:
        R = A << (B & 63);
        break;
      case Opcode::IShr:
        R = A >> (B & 63);
        break;
      default:
        assert(false && "unreachable");
      }
      S[Sp - 1] = Value::fromInt(R);
      break;
    }
    case SuperOp::INeg:
      assert(Sp > 0 && "operand stack underflow");
      S[Sp - 1] = Value::fromInt(-S[Sp - 1].asInt());
      break;
    case SuperOp::GotoExit:
      Flush();
      Exit(static_cast<uint32_t>(O.A));
      return;
    case SuperOp::Br: {
      bool Taken = false;
      switch (O.Src) {
      case Opcode::IfEq:
        Taken = S[--Sp].asInt() == 0;
        break;
      case Opcode::IfNe:
        Taken = S[--Sp].asInt() != 0;
        break;
      case Opcode::IfLt:
        Taken = S[--Sp].asInt() < 0;
        break;
      case Opcode::IfGe:
        Taken = S[--Sp].asInt() >= 0;
        break;
      case Opcode::IfNull:
        Taken = S[--Sp].asRef() == kNullRef;
        break;
      case Opcode::IfNonNull:
        Taken = S[--Sp].asRef() != kNullRef;
        break;
      case Opcode::IfICmpEq:
      case Opcode::IfICmpNe:
      case Opcode::IfICmpLt:
      case Opcode::IfICmpGe:
      case Opcode::IfICmpGt:
      case Opcode::IfICmpLe: {
        assert(Sp > 1 && "operand stack underflow");
        int64_t B = S[--Sp].asInt();
        int64_t A = S[--Sp].asInt();
        switch (O.Src) {
        case Opcode::IfICmpEq:
          Taken = A == B;
          break;
        case Opcode::IfICmpNe:
          Taken = A != B;
          break;
        case Opcode::IfICmpLt:
          Taken = A < B;
          break;
        case Opcode::IfICmpGe:
          Taken = A >= B;
          break;
        case Opcode::IfICmpGt:
          Taken = A > B;
          break;
        case Opcode::IfICmpLe:
          Taken = A <= B;
          break;
        default:
          assert(false && "unreachable");
        }
        break;
      }
      default:
        assert(false && "unreachable");
      }
      if (Taken) {
        Flush();
        Exit(static_cast<uint32_t>(O.A));
        return;
      }
      break;
    }
    case SuperOp::CmpBranchLL: {
      assert(!L[O.A].IsRef && !L[O.B].IsRef &&
             "icmp branch of a reference slot");
      int64_t A = L[O.A].asInt();
      int64_t B = L[O.B].asInt();
      bool Taken = false;
      switch (O.Src) {
      case Opcode::IfICmpEq:
        Taken = A == B;
        break;
      case Opcode::IfICmpNe:
        Taken = A != B;
        break;
      case Opcode::IfICmpLt:
        Taken = A < B;
        break;
      case Opcode::IfICmpGe:
        Taken = A >= B;
        break;
      case Opcode::IfICmpGt:
        Taken = A > B;
        break;
      case Opcode::IfICmpLe:
        Taken = A <= B;
        break;
      default:
        assert(false && "unreachable");
      }
      if (Taken) {
        Flush();
        Exit(static_cast<uint32_t>(O.C));
        return;
      }
      break;
    }
    case SuperOp::IncLocal:
      assert(!L[O.A].IsRef && "iinc of a reference slot");
      L[O.A] = Value::fromInt(L[O.A].asInt() + O.B);
      break;
    case SuperOp::AccumLocal:
      assert(Sp > 0 && "operand stack underflow");
      assert(!S[Sp - 1].IsRef && !L[O.A].IsRef &&
             "accumulate of a reference");
      L[O.A] = Value::fromInt(L[O.A].asInt() + S[--Sp].asInt());
      break;
    case SuperOp::PALoadLL: {
      // The access constituent is the fused run's last instruction; the
      // sample a PMU overflow captures must carry its bci and the exact
      // pre-access step/cycle counts, as in flat dispatch.
      Flush();
      Thread.setBci(O.Pc + O.NumSteps - 1);
      assert((L[O.A].IsRef || L[O.A].Bits == kNullRef) &&
             "aload of a non-reference slot");
      assert(!L[O.B].IsRef && "iload of a reference slot");
      ObjectRef Arr = L[O.A].Bits;
      int64_t Idx = L[O.B].asInt();
      const ObjectInfo &Info = Vm.objectInfo(Thread, Arr);
      const TypeDescriptor &Desc = Vm.objectType(Thread, Arr);
      assert(Desc.IsArray && !Desc.ElemIsRef && "paload needs a prim array");
      assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
             "array index out of bounds");
      (void)Info;
      uint64_t Off = static_cast<uint64_t>(Idx) * Desc.ElemSize;
      uint64_t V = 0;
      if (Desc.ElemSize == 1)
        V = Vm.readU8(Thread, Arr, Off);
      else if (Desc.ElemSize == 4)
        V = Vm.readU32(Thread, Arr, Off);
      else
        V = Vm.readWord(Thread, Arr, Off);
      S[Sp++] = Value::fromInt(static_cast<int64_t>(V));
      break;
    }
    case SuperOp::PAStoreLLL: {
      Flush();
      Thread.setBci(O.Pc + O.NumSteps - 1);
      assert((L[O.A].IsRef || L[O.A].Bits == kNullRef) &&
             "aload of a non-reference slot");
      assert(!L[O.B].IsRef && !L[O.C].IsRef &&
             "iload of a reference slot");
      ObjectRef Arr = L[O.A].Bits;
      int64_t Idx = L[O.B].asInt();
      uint64_t V = static_cast<uint64_t>(L[O.C].asInt());
      const ObjectInfo &Info = Vm.objectInfo(Thread, Arr);
      const TypeDescriptor &Desc = Vm.objectType(Thread, Arr);
      assert(Desc.IsArray && !Desc.ElemIsRef && "pastore needs a prim array");
      assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
             "array index out of bounds");
      (void)Info;
      uint64_t Off = static_cast<uint64_t>(Idx) * Desc.ElemSize;
      if (Desc.ElemSize == 1)
        Vm.writeU8(Thread, Arr, Off, static_cast<uint8_t>(V));
      else if (Desc.ElemSize == 4)
        Vm.writeU32(Thread, Arr, Off, static_cast<uint32_t>(V));
      else
        Vm.writeWord(Thread, Arr, Off, V);
      break;
    }
    case SuperOp::Access: {
      Flush();
      Thread.setBci(O.Pc);
      switch (O.Src) {
      case Opcode::PALoad: {
        assert(Sp > 1 && "operand stack underflow");
        int64_t Idx = S[--Sp].asInt();
        ObjectRef Arr = S[--Sp].asRef();
        const ObjectInfo &Info = Vm.objectInfo(Thread, Arr);
        const TypeDescriptor &Desc = Vm.objectType(Thread, Arr);
        assert(Desc.IsArray && !Desc.ElemIsRef &&
               "paload needs a prim array");
        assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
               "array index out of bounds");
        (void)Info;
        uint64_t Off = static_cast<uint64_t>(Idx) * Desc.ElemSize;
        uint64_t V = 0;
        if (Desc.ElemSize == 1)
          V = Vm.readU8(Thread, Arr, Off);
        else if (Desc.ElemSize == 4)
          V = Vm.readU32(Thread, Arr, Off);
        else
          V = Vm.readWord(Thread, Arr, Off);
        S[Sp++] = Value::fromInt(static_cast<int64_t>(V));
        break;
      }
      case Opcode::PAStore: {
        assert(Sp > 2 && "operand stack underflow");
        uint64_t V = static_cast<uint64_t>(S[--Sp].asInt());
        int64_t Idx = S[--Sp].asInt();
        ObjectRef Arr = S[--Sp].asRef();
        const ObjectInfo &Info = Vm.objectInfo(Thread, Arr);
        const TypeDescriptor &Desc = Vm.objectType(Thread, Arr);
        assert(Desc.IsArray && !Desc.ElemIsRef &&
               "pastore needs a prim array");
        assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
               "array index out of bounds");
        (void)Info;
        uint64_t Off = static_cast<uint64_t>(Idx) * Desc.ElemSize;
        if (Desc.ElemSize == 1)
          Vm.writeU8(Thread, Arr, Off, static_cast<uint8_t>(V));
        else if (Desc.ElemSize == 4)
          Vm.writeU32(Thread, Arr, Off, static_cast<uint32_t>(V));
        else
          Vm.writeWord(Thread, Arr, Off, V);
        break;
      }
      case Opcode::AALoad: {
        assert(Sp > 1 && "operand stack underflow");
        int64_t Idx = S[--Sp].asInt();
        ObjectRef Arr = S[--Sp].asRef();
#ifndef NDEBUG
        const ObjectInfo &Info = Vm.objectInfo(Thread, Arr);
        assert(Vm.objectType(Thread, Arr).ElemIsRef &&
               "aaload needs ref array");
        assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
               "array index out of bounds");
#endif
        S[Sp++] = Value::fromRef(
            Vm.readRef(Thread, Arr, static_cast<uint64_t>(Idx) * 8));
        break;
      }
      case Opcode::AAStore: {
        assert(Sp > 2 && "operand stack underflow");
        ObjectRef V = S[--Sp].asRef();
        int64_t Idx = S[--Sp].asInt();
        ObjectRef Arr = S[--Sp].asRef();
#ifndef NDEBUG
        const ObjectInfo &Info = Vm.objectInfo(Thread, Arr);
        assert(Vm.objectType(Thread, Arr).ElemIsRef &&
               "aastore needs ref array");
        assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
               "array index out of bounds");
#endif
        Vm.writeRef(Thread, Arr, static_cast<uint64_t>(Idx) * 8, V);
        break;
      }
      case Opcode::ArrayLength: {
        assert(Sp > 0 && "operand stack underflow");
        ObjectRef Arr = S[--Sp].asRef();
        Vm.readWord(Thread, Arr, 0);
        S[Sp++] = Value::fromInt(
            static_cast<int64_t>(Vm.objectInfo(Thread, Arr).Length));
        break;
      }
      case Opcode::GetField: {
        assert(Sp > 0 && "operand stack underflow");
        ObjectRef Obj = S[--Sp].asRef();
        uint64_t V =
            O.B == 4
                ? Vm.readU32(Thread, Obj, static_cast<uint64_t>(O.A))
                : Vm.readWord(Thread, Obj, static_cast<uint64_t>(O.A));
        S[Sp++] = Value::fromInt(static_cast<int64_t>(V));
        break;
      }
      case Opcode::PutField: {
        assert(Sp > 1 && "operand stack underflow");
        uint64_t V = static_cast<uint64_t>(S[--Sp].asInt());
        ObjectRef Obj = S[--Sp].asRef();
        if (O.B == 4)
          Vm.writeU32(Thread, Obj, static_cast<uint64_t>(O.A),
                      static_cast<uint32_t>(V));
        else
          Vm.writeWord(Thread, Obj, static_cast<uint64_t>(O.A), V);
        break;
      }
      case Opcode::GetRefField: {
        assert(Sp > 0 && "operand stack underflow");
        ObjectRef Obj = S[--Sp].asRef();
        S[Sp++] = Value::fromRef(
            Vm.readRef(Thread, Obj, static_cast<uint64_t>(O.A)));
        break;
      }
      case Opcode::PutRefField: {
        assert(Sp > 1 && "operand stack underflow");
        ObjectRef V = S[--Sp].asRef();
        ObjectRef Obj = S[--Sp].asRef();
        Vm.writeRef(Thread, Obj, static_cast<uint64_t>(O.A), V);
        break;
      }
      default:
        assert(false && "unreachable");
      }
      break;
    }
    case SuperOp::Alloc: {
      // The allocation observes Steps/cycles/Bci, can fault (GcRequest)
      // and can re-enter run() from an allocation observer: flush and
      // fully sync first, with the operands still on the stack
      // (peek-then-commit, exactly as the flat loop), so an unwind
      // re-executes this constituent flat after the safepoint GC.
      Flush();
      Thread.setBci(O.Pc);
      F->Pc = O.Pc;
      F->Sp = Sp;
      ArenaTop = F->StackBase + Sp;
      ObjectRef Obj = kNullRef;
      uint32_t NPops = 0;
      switch (O.Src) {
      case Opcode::New:
        Obj = Vm.allocateObject(Thread, static_cast<TypeId>(O.A));
        break;
      case Opcode::NewArray:
      case Opcode::ANewArray: {
        assert(Sp > 0 && "operand stack underflow");
        int64_t Len = S[Sp - 1].asInt();
        assert(Len >= 0 && "negative array length");
        Obj = Vm.allocateArray(Thread, static_cast<TypeId>(O.A),
                               static_cast<uint64_t>(Len));
        NPops = 1;
        break;
      }
      case Opcode::MultiANewArray: {
        uint32_t NDims = static_cast<uint32_t>(O.B);
        assert(Sp >= NDims && "operand stack underflow");
        std::vector<uint64_t> Dims(NDims);
        for (uint32_t D = 0; D < NDims; ++D) {
          int64_t Len = S[Sp - NDims + D].asInt();
          assert(Len >= 0 && "negative array length");
          Dims[D] = static_cast<uint64_t>(Len);
        }
        Obj = Vm.allocateMultiArray(Thread, static_cast<TypeId>(O.A), Dims);
        NPops = NDims;
        break;
      }
      default:
        assert(false && "unreachable");
      }
      // An allocation observer may have re-entered run() and moved the
      // arena: re-derive every cached pointer before committing.
      F = &CallStack.back();
      L = Arena.data() + F->LocalsBase;
      S = Arena.data() + F->StackBase;
      Sp -= NPops;
      S[Sp++] = Value::fromRef(Obj);
      // A nested re-entry burns shared Steps: deopt when the remainder no
      // longer fits a budget, so the flat loop pauses (or hits the step
      // limit) at exactly the instruction it would have anyway.
      if (Steps + O.StepsAfter > QuantumEnd ||
          Steps + O.StepsAfter > StepDeadline) {
        Exit(O.Pc + 1);
        return;
      }
      break;
    }
    case SuperOp::CmpBranchLI: {
      assert(!L[O.A].IsRef && "icmp branch of a reference slot");
      int64_t A = L[O.A].asInt();
      int64_t B = O.B;
      bool Taken = false;
      switch (O.Src) {
      case Opcode::IfICmpEq:
        Taken = A == B;
        break;
      case Opcode::IfICmpNe:
        Taken = A != B;
        break;
      case Opcode::IfICmpLt:
        Taken = A < B;
        break;
      case Opcode::IfICmpGe:
        Taken = A >= B;
        break;
      case Opcode::IfICmpGt:
        Taken = A > B;
        break;
      case Opcode::IfICmpLe:
        Taken = A <= B;
        break;
      default:
        assert(false && "unreachable");
      }
      if (Taken) {
        Flush();
        Exit(static_cast<uint32_t>(O.C));
        return;
      }
      break;
    }
    case SuperOp::HookPre:
    case SuperOp::HookPost: {
      // Agent hook dispatch mid-trace, exactly as the flat loop: flush
      // the batched steps (the flat loop ticks before dispatching), set
      // the bci and sync the frame (the hook records contexts and may
      // re-enter run()), then re-derive the cached pointers.
      const bool IsPost = O.Kind == SuperOp::HookPost;
      if (IsPost ? Hooks.Post != nullptr : Hooks.Pre != nullptr) {
        ObjectRef Fresh = kNullRef;
        if (IsPost) {
          assert(Sp > 0 && "operand stack underflow");
          assert(S[Sp - 1].IsRef &&
                 "allochook_post expects the fresh ref on TOS");
          Fresh = S[Sp - 1].asRef();
        }
        Flush();
        Thread.setBci(O.Pc);
        F->Pc = O.Pc;
        F->Sp = Sp;
        ArenaTop = F->StackBase + Sp;
        if (IsPost)
          Hooks.Post(static_cast<uint64_t>(O.A), Fresh);
        else
          Hooks.Pre(static_cast<uint64_t>(O.A));
        F = &CallStack.back();
        L = Arena.data() + F->LocalsBase;
        S = Arena.data() + F->StackBase;
        // A hook re-entry burns shared Steps, like an allocation
        // observer: deopt when the trace remainder no longer fits.
        if (Steps + O.StepsAfter > QuantumEnd ||
            Steps + O.StepsAfter > StepDeadline) {
          Exit(O.Pc + 1);
          return;
        }
      }
      break;
    }
    }
  }
  Flush();
  Exit(T.EndPc);
}
