//===- Interpreter.cpp - Bytecode interpreter ------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include <cassert>

using namespace djx;

Interpreter::Interpreter(JavaVm &Vm, BytecodeProgram &Program,
                         JavaThread &Thread)
    : Vm(Vm), Program(Program), Thread(Thread) {
  assert(Program.isLoaded() && "program must be linked before execution");
  RootToken = Vm.addRootProvider(
      [this](std::vector<ObjectRef *> &Slots) { collectRoots(Slots); });
}

Interpreter::~Interpreter() { Vm.removeRootProvider(RootToken); }

void Interpreter::setPublishVmAllocationEvents(bool On) {
  Vm.setAllocationEventsEnabled(On);
}

void Interpreter::collectRoots(std::vector<ObjectRef *> &Slots) {
  for (Frame &F : CallStack) {
    for (Value &V : F.Locals)
      if (V.IsRef && V.Bits != kNullRef)
        Slots.push_back(&V.Bits);
    for (Value &V : F.Stack)
      if (V.IsRef && V.Bits != kNullRef)
        Slots.push_back(&V.Bits);
  }
}

Value Interpreter::pop(Frame &F) {
  assert(!F.Stack.empty() && "operand stack underflow");
  Value V = F.Stack.back();
  F.Stack.pop_back();
  return V;
}

Value &Interpreter::peek(Frame &F) {
  assert(!F.Stack.empty() && "operand stack underflow");
  return F.Stack.back();
}

void Interpreter::push(Frame &F, Value V) { F.Stack.push_back(V); }

std::optional<Value> Interpreter::run(const std::string &QualifiedName,
                                      const std::vector<Value> &Args) {
  return execute(Program.methodIndex(QualifiedName), Args);
}

std::optional<Value> Interpreter::execute(size_t MethodIndex,
                                          const std::vector<Value> &Args) {
  const BytecodeMethod &M = Program.method(MethodIndex);
  assert(Args.size() == M.NumArgs && "argument count mismatch");

  CallStack.emplace_back();
  size_t FrameIdx = CallStack.size() - 1;
  {
    Frame &F = CallStack.back();
    F.MethodIndex = MethodIndex;
    F.M = &M;
    F.Locals.resize(M.NumLocals);
    for (size_t I = 0; I < Args.size(); ++I)
      F.Locals[I] = Args[I];
  }
  Thread.pushFrame(M.RegistryId, 0);

  while (CallStack[FrameIdx].Pc < M.Code.size()) {
    // Re-fetch each iteration: a recursive execute() inside Invoke may
    // reallocate CallStack and invalidate frame references.
    Frame &F = CallStack[FrameIdx];
    ++Steps;
    assert(Steps <= StepLimit && "interpreter step limit exceeded");
    const Instruction &I = M.Code[F.Pc];
    Thread.setBci(static_cast<uint32_t>(F.Pc));
    Vm.tick(Thread, 1);
    size_t NextPc = F.Pc + 1;

    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::IConst:
      push(F, Value::fromInt(I.A));
      break;
    case Opcode::ILoad:
      assert(!F.Locals[I.A].IsRef && "iload of a reference slot");
      push(F, F.Locals[I.A]);
      break;
    case Opcode::IStore: {
      Value V = pop(F);
      assert(!V.IsRef && "istore of a reference");
      F.Locals[I.A] = V;
      break;
    }
    case Opcode::ALoad:
      assert((F.Locals[I.A].IsRef || F.Locals[I.A].Bits == kNullRef) &&
             "aload of a non-reference slot");
      push(F, Value::fromRef(F.Locals[I.A].Bits));
      break;
    case Opcode::AStore: {
      Value V = pop(F);
      assert(V.IsRef && "astore of a non-reference");
      F.Locals[I.A] = V;
      break;
    }
    case Opcode::Pop:
      pop(F);
      break;
    case Opcode::Dup:
      push(F, peek(F));
      break;
    case Opcode::Swap: {
      Value B = pop(F), A = pop(F);
      push(F, B);
      push(F, A);
      break;
    }
    case Opcode::IAdd:
    case Opcode::ISub:
    case Opcode::IMul:
    case Opcode::IDiv:
    case Opcode::IRem:
    case Opcode::IAnd:
    case Opcode::IOr:
    case Opcode::IXor:
    case Opcode::IShl:
    case Opcode::IShr: {
      int64_t B = pop(F).asInt();
      int64_t A = pop(F).asInt();
      int64_t R = 0;
      switch (I.Op) {
      case Opcode::IAdd:
        R = A + B;
        break;
      case Opcode::ISub:
        R = A - B;
        break;
      case Opcode::IMul:
        R = A * B;
        break;
      case Opcode::IDiv:
        assert(B != 0 && "division by zero");
        R = A / B;
        break;
      case Opcode::IRem:
        assert(B != 0 && "remainder by zero");
        R = A % B;
        break;
      case Opcode::IAnd:
        R = A & B;
        break;
      case Opcode::IOr:
        R = A | B;
        break;
      case Opcode::IXor:
        R = A ^ B;
        break;
      case Opcode::IShl:
        R = A << (B & 63);
        break;
      case Opcode::IShr:
        R = A >> (B & 63);
        break;
      default:
        assert(false && "unreachable");
      }
      push(F, Value::fromInt(R));
      break;
    }
    case Opcode::INeg:
      push(F, Value::fromInt(-pop(F).asInt()));
      break;
    case Opcode::Goto:
      NextPc = static_cast<size_t>(I.A);
      break;
    case Opcode::IfEq:
      if (pop(F).asInt() == 0)
        NextPc = static_cast<size_t>(I.A);
      break;
    case Opcode::IfNe:
      if (pop(F).asInt() != 0)
        NextPc = static_cast<size_t>(I.A);
      break;
    case Opcode::IfLt:
      if (pop(F).asInt() < 0)
        NextPc = static_cast<size_t>(I.A);
      break;
    case Opcode::IfGe:
      if (pop(F).asInt() >= 0)
        NextPc = static_cast<size_t>(I.A);
      break;
    case Opcode::IfICmpEq:
    case Opcode::IfICmpNe:
    case Opcode::IfICmpLt:
    case Opcode::IfICmpGe:
    case Opcode::IfICmpGt:
    case Opcode::IfICmpLe: {
      int64_t B = pop(F).asInt();
      int64_t A = pop(F).asInt();
      bool Taken = false;
      switch (I.Op) {
      case Opcode::IfICmpEq:
        Taken = A == B;
        break;
      case Opcode::IfICmpNe:
        Taken = A != B;
        break;
      case Opcode::IfICmpLt:
        Taken = A < B;
        break;
      case Opcode::IfICmpGe:
        Taken = A >= B;
        break;
      case Opcode::IfICmpGt:
        Taken = A > B;
        break;
      case Opcode::IfICmpLe:
        Taken = A <= B;
        break;
      default:
        assert(false && "unreachable");
      }
      if (Taken)
        NextPc = static_cast<size_t>(I.A);
      break;
    }
    case Opcode::IfNull:
      if (pop(F).asRef() == kNullRef)
        NextPc = static_cast<size_t>(I.A);
      break;
    case Opcode::IfNonNull:
      if (pop(F).asRef() != kNullRef)
        NextPc = static_cast<size_t>(I.A);
      break;
    case Opcode::New:
      push(F, Value::fromRef(Vm.allocateObject(
                 Thread, static_cast<TypeId>(I.A))));
      break;
    case Opcode::NewArray:
    case Opcode::ANewArray: {
      int64_t Len = pop(F).asInt();
      assert(Len >= 0 && "negative array length");
      push(F, Value::fromRef(Vm.allocateArray(
                 Thread, static_cast<TypeId>(I.A),
                 static_cast<uint64_t>(Len))));
      break;
    }
    case Opcode::MultiANewArray: {
      std::vector<uint64_t> Dims(static_cast<size_t>(I.B));
      for (size_t D = Dims.size(); D-- > 0;) {
        int64_t Len = pop(F).asInt();
        assert(Len >= 0 && "negative array length");
        Dims[D] = static_cast<uint64_t>(Len);
      }
      push(F, Value::fromRef(Vm.allocateMultiArray(
                 Thread, static_cast<TypeId>(I.A), Dims)));
      break;
    }
    case Opcode::PALoad: {
      int64_t Idx = pop(F).asInt();
      ObjectRef Arr = pop(F).asRef();
      const ObjectInfo &Info = Vm.heap().info(Arr);
      const TypeDescriptor &Desc = Vm.types().get(Info.Type);
      assert(Desc.IsArray && !Desc.ElemIsRef && "paload needs a prim array");
      assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
             "array index out of bounds");
      uint64_t Off = static_cast<uint64_t>(Idx) * Desc.ElemSize;
      uint64_t V = 0;
      if (Desc.ElemSize == 1)
        V = Vm.readU8(Thread, Arr, Off);
      else if (Desc.ElemSize == 4)
        V = Vm.readU32(Thread, Arr, Off);
      else
        V = Vm.readWord(Thread, Arr, Off);
      push(F, Value::fromInt(static_cast<int64_t>(V)));
      break;
    }
    case Opcode::PAStore: {
      uint64_t V = static_cast<uint64_t>(pop(F).asInt());
      int64_t Idx = pop(F).asInt();
      ObjectRef Arr = pop(F).asRef();
      const ObjectInfo &Info = Vm.heap().info(Arr);
      const TypeDescriptor &Desc = Vm.types().get(Info.Type);
      assert(Desc.IsArray && !Desc.ElemIsRef && "pastore needs a prim array");
      assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
             "array index out of bounds");
      uint64_t Off = static_cast<uint64_t>(Idx) * Desc.ElemSize;
      if (Desc.ElemSize == 1)
        Vm.writeU8(Thread, Arr, Off, static_cast<uint8_t>(V));
      else if (Desc.ElemSize == 4)
        Vm.writeU32(Thread, Arr, Off, static_cast<uint32_t>(V));
      else
        Vm.writeWord(Thread, Arr, Off, V);
      break;
    }
    case Opcode::AALoad: {
      int64_t Idx = pop(F).asInt();
      ObjectRef Arr = pop(F).asRef();
#ifndef NDEBUG
      const ObjectInfo &Info = Vm.heap().info(Arr);
      assert(Vm.types().get(Info.Type).ElemIsRef && "aaload needs ref array");
      assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
             "array index out of bounds");
#endif
      push(F, Value::fromRef(
                 Vm.readRef(Thread, Arr, static_cast<uint64_t>(Idx) * 8)));
      break;
    }
    case Opcode::AAStore: {
      ObjectRef V = pop(F).asRef();
      int64_t Idx = pop(F).asInt();
      ObjectRef Arr = pop(F).asRef();
#ifndef NDEBUG
      const ObjectInfo &Info = Vm.heap().info(Arr);
      assert(Vm.types().get(Info.Type).ElemIsRef &&
             "aastore needs ref array");
      assert(Idx >= 0 && static_cast<uint64_t>(Idx) < Info.Length &&
             "array index out of bounds");
#endif
      Vm.writeRef(Thread, Arr, static_cast<uint64_t>(Idx) * 8, V);
      break;
    }
    case Opcode::ArrayLength: {
      ObjectRef Arr = pop(F).asRef();
      // Length lives in the header word; touching it is a real access.
      Vm.readWord(Thread, Arr, 0);
      push(F, Value::fromInt(
                 static_cast<int64_t>(Vm.heap().info(Arr).Length)));
      break;
    }
    case Opcode::GetField: {
      ObjectRef Obj = pop(F).asRef();
      uint64_t V = I.B == 4
                       ? Vm.readU32(Thread, Obj, static_cast<uint64_t>(I.A))
                       : Vm.readWord(Thread, Obj, static_cast<uint64_t>(I.A));
      push(F, Value::fromInt(static_cast<int64_t>(V)));
      break;
    }
    case Opcode::PutField: {
      uint64_t V = static_cast<uint64_t>(pop(F).asInt());
      ObjectRef Obj = pop(F).asRef();
      if (I.B == 4)
        Vm.writeU32(Thread, Obj, static_cast<uint64_t>(I.A),
                    static_cast<uint32_t>(V));
      else
        Vm.writeWord(Thread, Obj, static_cast<uint64_t>(I.A), V);
      break;
    }
    case Opcode::GetRefField: {
      ObjectRef Obj = pop(F).asRef();
      push(F, Value::fromRef(
                 Vm.readRef(Thread, Obj, static_cast<uint64_t>(I.A))));
      break;
    }
    case Opcode::PutRefField: {
      ObjectRef V = pop(F).asRef();
      ObjectRef Obj = pop(F).asRef();
      Vm.writeRef(Thread, Obj, static_cast<uint64_t>(I.A), V);
      break;
    }
    case Opcode::Invoke: {
      size_t Callee = static_cast<size_t>(I.A);
      const BytecodeMethod &CM = Program.method(Callee);
      assert(static_cast<uint32_t>(I.B) == CM.NumArgs &&
             "invoke argument count mismatch");
      std::vector<Value> CallArgs(CM.NumArgs);
      for (size_t AI = CallArgs.size(); AI-- > 0;)
        CallArgs[AI] = pop(F);
      // `F` dangles across execute() (CallStack may reallocate); use the
      // stable index to touch our frame afterwards.
      std::optional<Value> RV = execute(Callee, CallArgs);
      Frame &Self = CallStack[FrameIdx];
      if (RV)
        push(Self, *RV);
      Self.Pc = NextPc;
      continue;
    }
    case Opcode::Return:
      Thread.popFrame();
      CallStack.pop_back();
      return std::nullopt;
    case Opcode::IReturn: {
      Value V = pop(F);
      assert(!V.IsRef && "ireturn of a reference");
      Thread.popFrame();
      CallStack.pop_back();
      return V;
    }
    case Opcode::AReturn: {
      Value V = pop(F);
      assert(V.IsRef && "areturn of a non-reference");
      Thread.popFrame();
      CallStack.pop_back();
      return V;
    }
    case Opcode::AllocHookPre:
      if (Hooks.Pre)
        Hooks.Pre(static_cast<uint64_t>(I.A));
      break;
    case Opcode::AllocHookPost:
      if (Hooks.Post) {
        Value &Top = peek(F);
        assert(Top.IsRef && "allochook_post expects the fresh ref on TOS");
        Hooks.Post(static_cast<uint64_t>(I.A), Top.asRef());
      }
      break;
    }
    F.Pc = NextPc;
  }
  assert(false && "fell off the end of a method (verifier should catch)");
  return std::nullopt;
}
