//===- Interpreter.h - Bytecode interpreter ---------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stack interpreter executing BytecodeProgram methods on a MiniJVM
/// thread. Every array/field access is a simulated memory access (cache,
/// TLB, NUMA, PMU), every instruction burns a cycle, and the thread's
/// shadow stack tracks (method, BCI) so AsyncGetCallTrace sees exact
/// positions. Interpreter frames are GC roots via a root provider, so a
/// collection triggered mid-execution relocates live operands correctly.
///
/// Execution is a flat frame loop over a contiguous Value arena: every
/// activation's locals and operand stack are slices of one growable
/// buffer, and Invoke pushes a frame whose locals alias the caller's
/// argument slots (zero-copy argument passing, as on a real JVM stack).
/// There is no C++ recursion and no per-call heap allocation.
/// Re-entering run() from an allocation hook or a JVMTI allocation
/// observer is supported (the frame state is synced around those
/// dispatches); re-entering from a PMU overflow handler is not.
///
/// Execution can also be driven in *quanta* (startCall()/resume()) — the
/// Executor slices each simulated thread into fixed step budgets and runs
/// them on host workers. The flat frame loop makes suspension trivial:
/// all activation state already lives in the member CallStack/Arena, so a
/// pause is one state sync. In executor mode a failed allocation throws
/// GcRequest; allocation opcodes read their operands without popping and
/// commit only after the allocation succeeds, so the unwound instruction
/// re-executes cleanly after the safepoint GC. (Hooks that re-enter run()
/// and allocate are not supported in executor mode.)
///
/// The AllocHookPre/AllocHookPost pseudo-instructions inserted by the
/// instrumenter dispatch to registered hooks — the runtime half of the
/// paper's ASM-based Java agent.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_INTERP_INTERPRETER_H
#define DJX_INTERP_INTERPRETER_H

#include "bytecode/ClassFile.h"
#include "interp/TraceCache.h"
#include "jvm/JavaVm.h"

#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace djx {

/// One operand-stack / local slot. References are tagged so the GC root
/// provider can distinguish them.
struct Value {
  uint64_t Bits = 0;
  bool IsRef = false;

  static Value fromInt(int64_t V) {
    return Value{static_cast<uint64_t>(V), false};
  }
  static Value fromRef(ObjectRef R) { return Value{R, true}; }
  int64_t asInt() const { return static_cast<int64_t>(Bits); }
  ObjectRef asRef() const { return Bits; }
};

/// Hooks called by the AllocHook pseudo-instructions; the DJXPerf Java
/// agent installs these when it instruments a program.
struct AllocationHooks {
  /// Before the allocation executes.
  std::function<void(uint64_t SiteId)> Pre;
  /// After the allocation; \p Obj is the fresh object.
  std::function<void(uint64_t SiteId, ObjectRef Obj)> Post;
};

/// Outcome of one resume() quantum.
enum class RunState {
  Done,   ///< The pending call returned; takeResult() has the value.
  Paused, ///< Step budget exhausted; call resume() again to continue.
};

/// Executes bytecode on one JavaThread.
class Interpreter {
public:
  Interpreter(JavaVm &Vm, BytecodeProgram &Program, JavaThread &Thread);
  ~Interpreter();

  Interpreter(const Interpreter &) = delete;
  Interpreter &operator=(const Interpreter &) = delete;

  /// Installs instrumentation hooks (may be empty functions).
  void setAllocationHooks(AllocationHooks Hooks) {
    this->Hooks = std::move(Hooks);
  }

  /// When false (default true), the VM-level allocation event is the Java
  /// agent's information channel; instrumented programs set this to false
  /// so the bytecode hooks are the only channel (no double counting).
  void setPublishVmAllocationEvents(bool On);

  /// Runs "Class.method" with \p Args; returns the method's return value,
  /// or std::nullopt for void methods.
  std::optional<Value> run(const std::string &QualifiedName,
                           const std::vector<Value> &Args = {});

  // --- Resumable execution (Executor quanta) ------------------------------
  /// Begins a top-level call without executing any instruction; drive it
  /// with resume(). Exactly one call may be pending at a time.
  void startCall(const std::string &QualifiedName,
                 const std::vector<Value> &Args = {});

  /// Executes up to \p MaxSteps instructions of the pending call. Frame
  /// state is fully synced whenever this returns — and also when a
  /// GcRequest propagates out of an allocation opcode, whose operands stay
  /// on the stack until the allocation commits, so the instruction
  /// re-executes cleanly on the next resume() after the safepoint GC.
  RunState resume(uint64_t MaxSteps);

  /// True while startCall()'s call has not yet returned.
  bool hasPendingCall() const { return !CallStack.empty(); }

  /// Return value of the completed call (nullopt for void methods).
  std::optional<Value> takeResult();

  /// Upper bound on executed instructions per run() (runaway-loop guard).
  /// Enforced in every build mode; exceeding it is a fatal error.
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }

  // --- Tiered execution ---------------------------------------------------
  /// Selects the execution tier. The super tier installs a per-interpreter
  /// TraceCache: hot straight-line regions compile into superinstruction
  /// traces executed without per-opcode dispatch, deopting back to the
  /// flat loop at side exits, calls, hooks and allocation faults — with
  /// observably identical semantics (profiles are byte-identical). Must be
  /// selected before any instruction executes.
  void setTier(const TierConfig &Cfg);

  ExecTier tier() const {
    return Traces ? ExecTier::Super : ExecTier::Interp;
  }

  /// Safepoint hook: drops compiled traces so the flat loop owns every
  /// resumed frame (mirrors JVM deopt-at-safepoint). Hot sites recompile
  /// on their next flat visit. No-op in the interp tier.
  void invalidateTraces() {
    if (Traces)
      Traces->invalidate();
  }

  /// Null in the interp tier.
  const TraceCache *traceCache() const { return Traces.get(); }

  /// Text listing of every live compiled trace (--dump-traces).
  std::string renderTraces() const {
    return Traces ? Traces->renderAll(Program) : std::string();
  }

  uint64_t stepsExecuted() const { return Steps; }

  JavaThread &thread() { return Thread; }
  JavaVm &vm() { return Vm; }

private:
  /// One activation record. Locals and operand stack are slices of the
  /// shared arena: locals at [LocalsBase, LocalsBase + M->NumLocals),
  /// operands at [StackBase, StackBase + Sp).
  struct Frame {
    const BytecodeMethod *M = nullptr;
    size_t MethodIndex = 0;
    uint32_t LocalsBase = 0;
    uint32_t StackBase = 0;
    uint32_t Sp = 0;
    uint32_t Pc = 0;
  };

  std::optional<Value> execute(size_t MethodIndex,
                               const std::vector<Value> &Args);

  /// Pushes the entry activation for \p MethodIndex over \p Args; shared
  /// prologue of execute() and startCall().
  void beginCall(size_t MethodIndex, const std::vector<Value> &Args);

  /// The dispatch loop: executes until the call stack returns to
  /// \p BaseDepth (true; \p Out holds the return value) or the cumulative
  /// step counter reaches \p QuantumEnd (false; state synced for resume).
  bool loop(size_t BaseDepth, uint32_t BaseTop, uint64_t QuantumEnd,
            std::optional<Value> &Out);

  void collectRoots(std::vector<ObjectRef *> &Slots);

  /// Pushes the activation of \p MethodIndex whose arguments already sit
  /// at [ArgsBase, ArgsBase + NumArgs) in the arena; zero-fills the
  /// remaining locals and claims arena space up to the operand stack base.
  Frame &pushActivation(size_t MethodIndex, uint32_t ArgsBase);

  /// Grows the arena to hold at least \p Needed slots (geometric).
  void growArena(size_t Needed);

  /// Executes one compiled trace end-to-end or to an exit. Entry
  /// contract: the caller synced the top frame and admitted the trace's
  /// full NumSteps against QuantumEnd and StepDeadline. Exit contract:
  /// frame state (Pc, Sp, ArenaTop) is synced and Steps/cycles charged
  /// for exactly the constituents retired.
  void execTrace(const CompiledTrace &T, uint64_t QuantumEnd);

  [[noreturn]] void fatalStepLimit() const;

  JavaVm &Vm;
  BytecodeProgram &Program;
  JavaThread &Thread;
  AllocationHooks Hooks;
  /// Contiguous locals + operand-stack storage for all live frames.
  std::vector<Value> Arena;
  /// First free arena slot (top frame's stack end, kept in sync at any
  /// point where a GC can occur).
  uint32_t ArenaTop = 0;
  std::vector<Frame> CallStack;
  uint64_t RootToken = 0;
  uint64_t StepLimit = 1ULL << 32;
  uint64_t Steps = 0;
  /// Cumulative Steps value at which the current run() overruns its
  /// per-run StepLimit (saturated; recomputed at each top-level entry).
  uint64_t StepDeadline = ~0ULL;
  /// Result of the last completed startCall() session.
  std::optional<Value> SessionResult;
  /// Super tier only (null in the interp tier).
  std::unique_ptr<TraceCache> Traces;
  /// Set when a GcRequest unwound resume(): the next flat dispatch
  /// re-executes the faulting instruction, and its hot-site counter must
  /// not be bumped again — double-counting would make trace selection
  /// GC-timing-dependent and break --jobs invariance.
  bool GcRetryPending = false;
};

} // namespace djx

#endif // DJX_INTERP_INTERPRETER_H
