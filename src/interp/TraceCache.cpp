//===- TraceCache.cpp - Per-interpreter hot-trace cache --------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "interp/TraceCache.h"

#include "analysis/MethodAnalysis.h"
#include "bytecode/ClassFile.h"
#include "bytecode/Disassembler.h"

#include <cassert>

using namespace djx;

const MethodAnalysis *TraceCache::analysisFor(const BytecodeMethod &M) {
  auto It = Analyses.find(&M);
  if (It != Analyses.end())
    return It->second.get();
  CalleeResolver Resolve = nullptr;
  if (Program && Program->isLoaded())
    Resolve = [P = Program](const Instruction &I) -> const BytecodeMethod * {
      size_t Idx = static_cast<size_t>(I.A);
      return Idx < P->numMethods() ? &P->method(Idx) : nullptr;
    };
  auto A =
      std::make_unique<MethodAnalysis>(MethodAnalysis::analyze(M, Resolve));
  const MethodAnalysis *Out = A.get();
  Analyses.emplace(&M, std::move(A));
  return Out;
}

const CompiledTrace *TraceCache::bump(Site &S, const BytecodeMethod &M,
                                      uint32_t Pc) {
  assert(S.St == Site::Cold && "bump on a non-cold site");
  if (++S.Count < Cfg.HotThreshold)
    return nullptr;
  // Saturate so an invalidated site re-crosses the threshold on its very
  // next visit instead of warming up from zero again.
  S.Count = Cfg.HotThreshold;
  const MethodAnalysis *MA = Cfg.AnalysisFusion ? analysisFor(M) : nullptr;
  if (std::optional<CompiledTrace> T = compileTrace(M, Pc, Cfg, MA)) {
    S.Trace = std::make_unique<CompiledTrace>(std::move(*T));
    S.St = Site::Compiled;
    ++St.Compiles;
    return S.Trace.get();
  }
  S.St = Site::Dead;
  ++St.DeadSites;
  return nullptr;
}

void TraceCache::invalidate() {
  for (std::vector<Site> &Sites : Methods)
    for (Site &S : Sites)
      if (S.St == Site::Compiled) {
        S.Trace.reset();
        S.St = Site::Cold;
      }
  ++St.Invalidations;
}

uint32_t TraceCache::siteCount(size_t MethodIndex, uint32_t Pc) const {
  if (MethodIndex >= Methods.size())
    return 0;
  const std::vector<Site> &Sites = Methods[MethodIndex];
  if (Pc >= Sites.size())
    return 0;
  return Sites[Pc].Count;
}

std::string TraceCache::renderAll(const BytecodeProgram &P) const {
  std::string Out;
  for (size_t MI = 0; MI < Methods.size(); ++MI)
    for (const Site &S : Methods[MI])
      if (S.St == Site::Compiled && S.Trace)
        Out += disassembleTrace(P.method(MI), *S.Trace);
  return Out;
}
