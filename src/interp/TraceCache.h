//===- TraceCache.h - Per-interpreter hot-trace cache -----------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hot-region detection and compiled-trace storage for one interpreter
/// (one simulated thread — no sharing, no locks). Every flat dispatch in
/// the super tier bumps the (method, pc) site counter; at the hot
/// threshold the site compiles via compileTrace() or is marked dead.
/// Safepoints invalidate compiled traces (mirroring a JVM deopting
/// compiled frames at a safepoint) but keep the counters saturated, so a
/// hot site recompiles on its next flat visit.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_INTERP_TRACECACHE_H
#define DJX_INTERP_TRACECACHE_H

#include "analysis/MethodAnalysis.h"
#include "bytecode/TraceCompiler.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace djx {

class BytecodeProgram;

/// Aggregate tier activity, for tests and the --dump-traces listing.
struct TraceCacheStats {
  uint64_t Compiles = 0;      ///< Successful compiles (recompiles included).
  uint64_t DeadSites = 0;     ///< Entry pcs compileTrace() rejected.
  uint64_t Invalidations = 0; ///< Safepoint invalidation sweeps.
};

/// One interpreter's trace store: a flat Site array per method, indexed
/// by entry pc (O(1) on the dispatch hot path).
class TraceCache {
public:
  struct Site {
    enum State : uint8_t { Cold, Compiled, Dead };
    State St = Cold;
    uint32_t Count = 0;
    std::unique_ptr<CompiledTrace> Trace;
  };

  /// \p P (the linked program) resolves Invoke callees for the
  /// analysis passes when Cfg.AnalysisFusion is on; null still
  /// compiles, with the analyses running calleeless (Incomplete).
  explicit TraceCache(const TierConfig &Cfg,
                      const BytecodeProgram *P = nullptr)
      : Cfg(Cfg), Program(P) {}

  /// The site array for \p MethodIndex, created on first touch with
  /// \p CodeSize entries. The returned pointer stays valid across later
  /// sitesFor() calls and invalidate() (sites mutate in place).
  Site *sitesFor(size_t MethodIndex, size_t CodeSize) {
    if (MethodIndex >= Methods.size())
      Methods.resize(MethodIndex + 1);
    std::vector<Site> &Sites = Methods[MethodIndex];
    if (Sites.empty())
      Sites.resize(CodeSize);
    return Sites.data();
  }

  /// Cold-site counter bump on one flat dispatch; compiles at the
  /// threshold. Returns the fresh trace when this visit crossed it
  /// (null otherwise — still warming, or the site went dead).
  const CompiledTrace *bump(Site &S, const BytecodeMethod &M, uint32_t Pc);

  /// Safepoint invalidation: frees every compiled trace but leaves the
  /// counters saturated, so hot sites recompile on their next visit.
  void invalidate();

  const TierConfig &config() const { return Cfg; }
  const TraceCacheStats &stats() const { return St; }

  /// The hotness counter at (method, pc); 0 when never visited.
  uint32_t siteCount(size_t MethodIndex, uint32_t Pc) const;

  /// Renders every live compiled trace (--dump-traces).
  std::string renderAll(const BytecodeProgram &P) const;

private:
  /// The cached analysis bundle for \p M, built on first demand. Keyed
  /// by method identity: method bodies are immutable once execution
  /// starts (instrumentation rewrites happen before the first step).
  const MethodAnalysis *analysisFor(const BytecodeMethod &M);

  TierConfig Cfg;
  const BytecodeProgram *Program = nullptr;
  std::vector<std::vector<Site>> Methods;
  std::unordered_map<const BytecodeMethod *, std::unique_ptr<MethodAnalysis>>
      Analyses;
  TraceCacheStats St;
};

} // namespace djx

#endif // DJX_INTERP_TRACECACHE_H
