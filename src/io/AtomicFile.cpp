//===- io/AtomicFile.cpp - Atomic whole-file replacement -------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "io/AtomicFile.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

using namespace djx;

namespace {

bool writeAll(int Fd, const char *Data, size_t Len) {
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::write(Fd, Data + Done, Len - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

void setError(std::string *Error, const std::string &What) {
  if (Error)
    *Error = What + ": " + std::strerror(errno);
}

} // namespace

bool djx::writeFileAtomic(const std::string &Path, const std::string &Contents,
                          std::string *Error) {
  const std::string Tmp = Path + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    setError(Error, "open " + Tmp);
    return false;
  }
  if (!writeAll(Fd, Contents.data(), Contents.size()) || ::fsync(Fd) != 0) {
    setError(Error, "write " + Tmp);
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return false;
  }
  if (::close(Fd) != 0) {
    setError(Error, "close " + Tmp);
    ::unlink(Tmp.c_str());
    return false;
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    setError(Error, "rename " + Tmp + " -> " + Path);
    ::unlink(Tmp.c_str());
    return false;
  }
  // Durability of the rename itself: fsync the containing directory,
  // best-effort (some filesystems refuse O_RDONLY directory fsync).
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
  return true;
}
