//===- io/AtomicFile.h - Atomic whole-file replacement ----------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe report writing: every final artifact (text report, HTML
/// report, per-thread .djxprof files) is written to "<path>.tmp", fsynced,
/// and renamed over the destination. A reader therefore only ever sees
/// the old complete file or the new complete file — an interrupted CLI
/// can never leave a truncated report behind.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_IO_ATOMICFILE_H
#define DJX_IO_ATOMICFILE_H

#include <string>

namespace djx {

/// Atomically replaces \p Path with \p Contents via write-to-temp +
/// fsync + rename. On failure the temp file is removed, \p Error (when
/// non-null) receives a description, and \p Path is left untouched.
bool writeFileAtomic(const std::string &Path, const std::string &Contents,
                     std::string *Error = nullptr);

} // namespace djx

#endif // DJX_IO_ATOMICFILE_H
