//===- io/Checksum.h - CRC32C for journal segments --------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Software CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the
/// checksum guarding every profile-journal segment. Table-driven, one
/// byte per step: plenty for flush-sized buffers, and dependency-free so
/// the recovery path works in any build.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_IO_CHECKSUM_H
#define DJX_IO_CHECKSUM_H

#include <cstddef>
#include <cstdint>

namespace djx {

class Crc32c {
public:
  /// CRC32C of \p Len bytes at \p Data. \p Seed chains computations:
  /// compute(B, n, compute(A, m)) == compute(AB, m + n).
  static uint32_t compute(const void *Data, size_t Len, uint32_t Seed = 0) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    uint32_t Crc = ~Seed;
    const uint32_t *T = table();
    for (size_t I = 0; I < Len; ++I)
      Crc = T[(Crc ^ P[I]) & 0xffu] ^ (Crc >> 8);
    return ~Crc;
  }

private:
  struct Table {
    uint32_t Entries[256];
    Table() {
      for (uint32_t I = 0; I < 256; ++I) {
        uint32_t C = I;
        for (int K = 0; K < 8; ++K)
          C = (C & 1) ? (0x82f63b78u ^ (C >> 1)) : (C >> 1);
        Entries[I] = C;
      }
    }
  };

  static const uint32_t *table() {
    static const Table T;
    return T.Entries;
  }
};

} // namespace djx

#endif // DJX_IO_CHECKSUM_H
