//===- io/JournalReader.cpp - Journal scan/verify/recover ------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "io/JournalReader.h"

#include "io/Checksum.h"

#include <cstring>
#include <fstream>
#include <sstream>

using namespace djx;

namespace {

uint32_t readU32(const char *P) {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(P[I]);
  return V;
}

uint64_t readU64(const char *P) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(P[I]);
  return V;
}

/// Bounded cursor over one payload; every read checks remaining bytes.
struct PayloadCursor {
  const char *P;
  size_t Len;
  size_t Off = 0;

  bool u32(uint32_t &V) {
    if (Len - Off < 4)
      return false;
    V = readU32(P + Off);
    Off += 4;
    return true;
  }
  bool u64(uint64_t &V) {
    if (Len - Off < 8)
      return false;
    V = readU64(P + Off);
    Off += 8;
    return true;
  }
  bool bytes(std::string &S, size_t N) {
    if (Len - Off < N)
      return false;
    S.assign(P + Off, N);
    Off += N;
    return true;
  }
  std::string rest() {
    std::string S(P + Off, Len - Off);
    Off = Len;
    return S;
  }
};

} // namespace

JournalRecovery djx::readJournal(const std::string &Path) {
  JournalRecovery R;
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    R.HeaderError = "cannot open file";
    return R;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  const std::string Data = Buf.str();

  if (Data.size() < kJournalFileHeaderBytes) {
    R.HeaderError = "file shorter than the journal header";
    return R;
  }
  if (std::memcmp(Data.data(), kJournalFileMagic,
                  sizeof(kJournalFileMagic)) != 0) {
    R.HeaderError = "bad file magic";
    return R;
  }
  if (readU32(Data.data() + 8) != kJournalFormatVersion) {
    R.HeaderError = "unsupported journal version";
    return R;
  }
  if (readU32(Data.data() + 12) != Crc32c::compute(Data.data(), 12)) {
    R.HeaderError = "file header checksum mismatch";
    return R;
  }
  R.HeaderValid = true;
  R.BytesKept = kJournalFileHeaderBytes;

  // Pending state: promoted to committed only by a Commit/Close
  // sentinel, so a tear between a snapshot and its commit drops the
  // snapshot — the state is always the one at the last sentinel.
  std::vector<MethodInfo> PendingMethods;
  std::map<uint64_t, std::string> PendingSnapshots;
  uint64_t NextSeq = 1;
  size_t Off = kJournalFileHeaderBytes;
  size_t LastValidEnd = Off;

  auto Truncate = [&](const std::string &Why) { R.TruncationReason = Why; };

  auto Promote = [&](size_t EndOff) {
    for (auto &M : PendingMethods)
      R.Methods.push_back(std::move(M));
    PendingMethods.clear();
    for (auto &[Tid, Text] : PendingSnapshots)
      R.Snapshots[Tid] = std::move(Text);
    PendingSnapshots.clear();
    R.SegmentsCommitted = R.Segments.size();
    R.BytesKept = EndOff;
  };

  while (Off < Data.size() && !R.Closed) {
    if (Data.size() - Off < kJournalSegmentHeaderBytes) {
      Truncate("truncated segment header");
      break;
    }
    const char *H = Data.data() + Off;
    if (readU32(H) != kJournalSegmentMagic) {
      Truncate("bad segment magic");
      break;
    }
    uint32_t Type = readU32(H + 4);
    uint64_t Seq = readU64(H + 8);
    uint64_t Epoch = readU64(H + 16);
    uint32_t PayloadLen = readU32(H + 24);
    uint32_t Crc = readU32(H + 28);
    if (PayloadLen > kJournalMaxPayloadBytes ||
        PayloadLen > Data.size() - Off - kJournalSegmentHeaderBytes) {
      Truncate("segment length out of bounds");
      break;
    }
    const char *Payload = H + kJournalSegmentHeaderBytes;
    uint32_t Want = Crc32c::compute(H + 4, kJournalSegmentHeaderBytes - 8);
    Want = Crc32c::compute(Payload, PayloadLen, Want);
    if (Want != Crc) {
      Truncate("segment checksum mismatch");
      break;
    }
    if (Seq != NextSeq) {
      Truncate("sequence break");
      break;
    }

    PayloadCursor C{Payload, PayloadLen};
    bool Ok = true;
    switch (static_cast<SegmentType>(Type)) {
    case SegmentType::Meta: {
      JournalMeta M;
      Ok = decodeJournalMeta(C.rest(), M);
      if (Ok) {
        R.Meta = M;
        R.HasMeta = true;
      }
      break;
    }
    case SegmentType::MethodTable: {
      uint32_t First = 0, Count = 0;
      Ok = C.u32(First) && C.u32(Count) &&
           First == R.Methods.size() + PendingMethods.size();
      for (uint32_t I = 0; Ok && I < Count; ++I) {
        uint32_t ClassLen = 0, MethodLen = 0, LineCount = 0;
        Ok = C.u32(ClassLen) && C.u32(MethodLen) && C.u32(LineCount);
        if (!Ok)
          break;
        MethodInfo M;
        Ok = C.bytes(M.ClassName, ClassLen) &&
             C.bytes(M.MethodName, MethodLen);
        for (uint32_t L = 0; Ok && L < LineCount; ++L) {
          LineEntry E{0, 0};
          Ok = C.u32(E.Bci) && C.u32(E.Line);
          if (Ok)
            M.LineTable.push_back(E);
        }
        if (Ok)
          PendingMethods.push_back(std::move(M));
      }
      break;
    }
    case SegmentType::Snapshot: {
      uint64_t Tid = 0;
      Ok = C.u64(Tid);
      if (Ok)
        PendingSnapshots[Tid] = C.rest();
      break;
    }
    case SegmentType::Commit: {
      uint64_t Round = 0;
      Ok = C.u64(Round) && C.Off == C.Len;
      if (Ok) {
        R.Segments.push_back({Off, kJournalSegmentHeaderBytes + PayloadLen,
                              Type, Seq, Epoch});
        R.LastEpoch = Epoch;
        R.LastRound = Round;
        Promote(Off + kJournalSegmentHeaderBytes + PayloadLen);
      }
      break;
    }
    case SegmentType::Close: {
      uint32_t Failed = 0, Kind = 0, Shard = 0, MsgLen = 0;
      uint64_t Tid = 0, Steps = 0;
      std::string Msg;
      Ok = C.u32(Failed) && C.u32(Kind) && C.u64(Tid) && C.u64(Steps) &&
           C.u32(Shard) && C.u32(MsgLen) && C.bytes(Msg, MsgLen) &&
           C.u64(R.CloseSamplesHandled) && C.u64(R.CloseSamplesDropped);
      if (Ok) {
        R.Segments.push_back({Off, kJournalSegmentHeaderBytes + PayloadLen,
                              Type, Seq, Epoch});
        R.Closed = true;
        R.CloseClean = Failed == 0;
        if (Failed) {
          R.CloseError.Kind = static_cast<VmErrorKind>(Kind);
          R.CloseError.Message = std::move(Msg);
          R.CloseError.ThreadId = Tid;
          R.CloseError.Steps = Steps;
          R.CloseError.Shard = Shard;
        }
        Promote(Off + kJournalSegmentHeaderBytes + PayloadLen);
      }
      break;
    }
    default:
      Ok = false;
      break;
    }
    if (!Ok) {
      Truncate("malformed segment payload");
      break;
    }
    if (Type != static_cast<uint32_t>(SegmentType::Commit) &&
        Type != static_cast<uint32_t>(SegmentType::Close))
      R.Segments.push_back({Off, kJournalSegmentHeaderBytes + PayloadLen,
                            Type, Seq, Epoch});
    Off += kJournalSegmentHeaderBytes + PayloadLen;
    LastValidEnd = Off;
    ++NextSeq;
  }

  R.SegmentsUncommitted = R.Segments.size() - R.SegmentsCommitted;
  R.TrailingBytes = Data.size() - LastValidEnd;
  if (R.Closed && R.TrailingBytes != 0 && R.TruncationReason.empty())
    R.TruncationReason = "bytes after the Close sentinel";

  // Materialize the committed snapshots. A CRC-valid but unparseable
  // snapshot means a writer bug or hash collision; drop that thread and
  // record it, never crash.
  for (const auto &[Tid, Text] : R.Snapshots) {
    ThreadProfile P;
    std::istringstream IS(Text);
    if (!P.readFrom(IS)) {
      if (R.TruncationReason.empty())
        R.TruncationReason =
            "unparseable snapshot for thread " + std::to_string(Tid);
      continue;
    }
    R.Profiles.push_back(std::move(P));
  }
  return R;
}

MethodRegistry djx::buildJournalMethodRegistry(const JournalRecovery &R) {
  MethodRegistry Reg;
  for (const MethodInfo &M : R.Methods)
    Reg.registerMethod(M.ClassName, M.MethodName, M.LineTable);
  return Reg;
}

std::string djx::remapSnapshotText(const std::string &Text,
                                   uint64_t ThreadOffset,
                                   const std::vector<MethodId> &MethodMap) {
  // Rewrites the line-oriented djxprofile format in place of a field-by-
  // field rebuild: thread ids live in fixed token positions per tag, and
  // method ids only appear in "node" lines. CCT node ids are indices
  // into the owning profile's tree and need no remapping.
  auto MapTid = [&](uint64_t Tid) {
    return Tid == 0 ? 0 : Tid + ThreadOffset;
  };
  auto MapMethod = [&](MethodId M) {
    return M < MethodMap.size() ? MethodMap[M] : M;
  };
  std::istringstream IS(Text);
  std::ostringstream OS;
  std::string Line;
  while (std::getline(IS, Line)) {
    std::istringstream LS(Line);
    std::string Tag;
    LS >> Tag;
    if (Tag == "thread") {
      uint64_t Tid;
      std::string Name;
      if (LS >> Tid >> Name) {
        OS << "thread " << MapTid(Tid) << ' ' << Name << '\n';
        continue;
      }
    } else if (Tag == "node") {
      uint64_t Id, Parent;
      MethodId Method;
      uint32_t Bci;
      if (LS >> Id >> Parent >> Method >> Bci) {
        OS << "node " << Id << ' ' << Parent << ' ' << MapMethod(Method)
           << ' ' << Bci << '\n';
        continue;
      }
    } else if (Tag == "group" || Tag == "access" || Tag == "homenode" ||
               Tag == "cpunode") {
      uint64_t AllocThread, AllocNode;
      if (LS >> AllocThread >> AllocNode) {
        std::string Rest;
        std::getline(LS, Rest);
        OS << Tag << ' ' << MapTid(AllocThread) << ' ' << AllocNode << Rest
           << '\n';
        continue;
      }
    }
    OS << Line << '\n';
  }
  return OS.str();
}
