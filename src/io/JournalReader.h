//===- io/JournalReader.h - Journal scan/verify/recover ---------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recovery side of the profile journal (`djxperf recover` / `merge`):
/// scan the byte stream front to back, verify every segment's magic,
/// CRC32C, bounds and sequence number, and stop at the first violation —
/// the truncation rule is "salvage exactly the valid prefix", never
/// resynchronize past damage. Recovered state is the state at the last
/// valid Commit (or Close) sentinel; structurally valid segments after
/// it are uncommitted and reported as dropped.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_IO_JOURNALREADER_H
#define DJX_IO_JOURNALREADER_H

#include "core/ThreadProfile.h"
#include "io/ProfileJournal.h"
#include "jvm/MethodRegistry.h"
#include "support/VmError.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace djx {

/// One structurally valid segment, as the scanner saw it.
struct JournalSegmentInfo {
  uint64_t Offset = 0; ///< File offset of the segment header.
  uint64_t Length = 0; ///< Header + payload bytes.
  uint32_t Type = 0;   ///< SegmentType value.
  uint64_t Seq = 0;
  uint64_t Epoch = 0;
};

/// Everything salvageable from one journal file.
struct JournalRecovery {
  /// File header present and checksummed; when false nothing below is
  /// meaningful and the CLI reports JournalCorrupt.
  bool HeaderValid = false;
  std::string HeaderError;

  JournalMeta Meta;
  bool HasMeta = false;

  /// Rebuilt method registry content; index == original MethodId.
  std::vector<MethodInfo> Methods;
  /// Committed snapshot text per thread (last writer wins), and the
  /// parsed profiles, in thread-id order.
  std::map<uint64_t, std::string> Snapshots;
  std::vector<ThreadProfile> Profiles;

  /// Structurally valid segments, in file order (committed or not).
  std::vector<JournalSegmentInfo> Segments;
  uint64_t SegmentsCommitted = 0;
  /// Valid segments after the last Commit/Close — appended but never
  /// made durable; dropped by the truncation rule.
  uint64_t SegmentsUncommitted = 0;
  /// File bytes contributing to the recovered state (header + committed
  /// segments).
  uint64_t BytesKept = 0;
  /// Bytes after the last structurally valid segment (torn/corrupt
  /// tail).
  uint64_t TrailingBytes = 0;
  /// Why the scan stopped before EOF; empty when the file ended exactly
  /// at a segment boundary.
  std::string TruncationReason;

  uint64_t LastEpoch = 0; ///< Epoch of the last valid Commit.
  uint64_t LastRound = 0; ///< Executor round stamped in that Commit.

  /// Close sentinel, when the journal is complete.
  bool Closed = false;
  bool CloseClean = false;
  VmError CloseError;
  uint64_t CloseSamplesHandled = 0;
  uint64_t CloseSamplesDropped = 0;

  /// True when the recovered report does not cover the full run: no
  /// clean Close, or data was dropped getting here.
  bool degraded() const {
    return !Closed || SegmentsUncommitted != 0 || TrailingBytes != 0;
  }
};

/// Scans \p Path and salvages the valid prefix. Never throws; an
/// unreadable or unrecognizable file comes back with HeaderValid ==
/// false.
JournalRecovery readJournal(const std::string &Path);

/// Registry whose MethodIds equal the journal's original ids.
MethodRegistry buildJournalMethodRegistry(const JournalRecovery &R);

/// Merge support: rewrites one snapshot's text, adding \p ThreadOffset
/// to every real thread id (id 0 — unknown provenance — is preserved)
/// and mapping method ids through \p MethodMap (index = original id).
/// Ids absent from \p MethodMap pass through unchanged.
std::string remapSnapshotText(const std::string &Text, uint64_t ThreadOffset,
                              const std::vector<MethodId> &MethodMap);

} // namespace djx

#endif // DJX_IO_JOURNALREADER_H
