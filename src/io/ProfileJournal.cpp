//===- io/ProfileJournal.cpp - Crash-durable profile journal ---------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "io/ProfileJournal.h"

#include "core/DjxPerf.h"
#include "io/Checksum.h"
#include "jvm/MethodRegistry.h"
#include "support/FaultInjector.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace djx;

namespace {

void appendU32(std::string &Out, uint32_t V) {
  char B[4];
  for (int I = 0; I < 4; ++I)
    B[I] = static_cast<char>((V >> (8 * I)) & 0xff);
  Out.append(B, 4);
}

void appendU64(std::string &Out, uint64_t V) {
  char B[8];
  for (int I = 0; I < 8; ++I)
    B[I] = static_cast<char>((V >> (8 * I)) & 0xff);
  Out.append(B, 8);
}

/// Resumable full write: advances \p Done so a retry after a transient
/// error continues where the kernel left off instead of duplicating
/// bytes in the append-only stream.
bool writeFrom(int Fd, const std::string &Data, size_t &Done) {
  while (Done < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Done, Data.size() - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

/// Deterministic byte/cut positions for the injection sites: a pure
/// function of the logical key, same splitmix finalizer as the injector.
uint64_t posMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

constexpr unsigned kMaxWriteAttempts = 3;

} // namespace

std::string djx::encodeJournalMeta(const JournalMeta &Meta) {
  std::ostringstream OS;
  OS << "event " << Meta.EventKind << '\n';
  OS << "mode " << Meta.ReportMode << '\n';
  OS << "top " << Meta.TopGroups << '\n';
  OS << "accessctx " << Meta.TopAccessContexts << '\n';
  uint64_t Bits = 0;
  static_assert(sizeof(Bits) == sizeof(Meta.MinShare), "double is 64-bit");
  std::memcpy(&Bits, &Meta.MinShare, sizeof(Bits));
  OS << "minshare " << std::hex << Bits << std::dec << '\n';
  OS << "shownuma " << (Meta.ShowNuma ? 1 : 0) << '\n';
  OS << "workload " << Meta.Workload << '\n';
  OS << "title " << Meta.Title << '\n';
  return OS.str();
}

bool djx::decodeJournalMeta(const std::string &Payload, JournalMeta &Meta) {
  std::istringstream IS(Payload);
  std::string Line;
  while (std::getline(IS, Line)) {
    std::istringstream LS(Line);
    std::string Tag;
    if (!(LS >> Tag))
      continue;
    if (Tag == "event") {
      if (!(LS >> Meta.EventKind))
        return false;
    } else if (Tag == "mode") {
      if (!(LS >> Meta.ReportMode))
        return false;
    } else if (Tag == "top") {
      if (!(LS >> Meta.TopGroups))
        return false;
    } else if (Tag == "accessctx") {
      if (!(LS >> Meta.TopAccessContexts))
        return false;
    } else if (Tag == "minshare") {
      uint64_t Bits = 0;
      if (!(LS >> std::hex >> Bits))
        return false;
      std::memcpy(&Meta.MinShare, &Bits, sizeof(Bits));
    } else if (Tag == "shownuma") {
      int V = 0;
      if (!(LS >> V))
        return false;
      Meta.ShowNuma = V != 0;
    } else if (Tag == "workload" || Tag == "title") {
      std::string Rest;
      std::getline(LS, Rest);
      if (!Rest.empty() && Rest.front() == ' ')
        Rest.erase(0, 1);
      (Tag == "workload" ? Meta.Workload : Meta.Title) = Rest;
    } else {
      return false;
    }
  }
  return true;
}

ProfileJournal::ProfileJournal(int Fd, std::string Path)
    : Fd(Fd), Path(std::move(Path)) {}

ProfileJournal::~ProfileJournal() {
  // No Close sentinel here on purpose: destruction without closeClean/
  // closeFailed is the crash path's semantics (torn journal), and tests
  // rely on it to build incomplete journals deliberately.
  if (Fd >= 0)
    ::close(Fd);
}

std::unique_ptr<ProfileJournal>
ProfileJournal::open(const std::string &Path, const JournalMeta &Meta,
                     std::string *Error) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    if (Error)
      *Error = std::strerror(errno);
    return nullptr;
  }
  std::unique_ptr<ProfileJournal> J(new ProfileJournal(Fd, Path));
  std::string Header(kJournalFileMagic, sizeof(kJournalFileMagic));
  appendU32(Header, kJournalFormatVersion);
  appendU32(Header, Crc32c::compute(Header.data(), Header.size()));
  J->Pending += Header;
  J->appendSegment(SegmentType::Meta, 0, encodeJournalMeta(Meta));
  J->physFlush();
  return J;
}

void ProfileJournal::appendSegment(SegmentType Type, uint64_t EpochNo,
                                   const std::string &Payload) {
  ++Seq;
  std::string Seg;
  Seg.reserve(kJournalSegmentHeaderBytes + Payload.size());
  appendU32(Seg, kJournalSegmentMagic);
  appendU32(Seg, static_cast<uint32_t>(Type));
  appendU64(Seg, Seq);
  appendU64(Seg, EpochNo);
  appendU32(Seg, static_cast<uint32_t>(Payload.size()));
  // CRC covers everything after the magic: header fields + payload.
  uint32_t Crc = Crc32c::compute(Seg.data() + 4, Seg.size() - 4);
  Crc = Crc32c::compute(Payload.data(), Payload.size(), Crc);
  appendU32(Seg, Crc);
  Seg += Payload;
  // JournalCorruptByte: flip one payload bit after the CRC was computed,
  // so read-back must catch it. Keyed on the segment sequence number — a
  // logical ordinal, so the corrupted set is --jobs-invariant.
  if (!Payload.empty() &&
      FaultInjector::shouldFail(FaultSite::JournalCorruptByte, Seq)) {
    size_t Pos = kJournalSegmentHeaderBytes +
                 posMix(Seq) % Payload.size();
    Seg[Pos] = static_cast<char>(Seg[Pos] ^ (1u << (posMix(Seq ^ 0xb17) % 8)));
  }
  Pending += Seg;
}

void ProfileJournal::bufferEpoch(const DjxPerf &Prof,
                                 const MethodRegistry &Methods,
                                 uint64_t Round) {
  uint64_t EpochNo = Epoch + 1;
  // Method-table delta: ids are registered contiguously, so the reader
  // rebuilds the registry by position.
  if (Methods.size() > MethodsFlushed) {
    std::string P;
    appendU32(P, static_cast<uint32_t>(MethodsFlushed));
    appendU32(P, static_cast<uint32_t>(Methods.size() - MethodsFlushed));
    for (size_t Id = MethodsFlushed; Id < Methods.size(); ++Id) {
      const MethodInfo &M = Methods.get(static_cast<MethodId>(Id));
      appendU32(P, static_cast<uint32_t>(M.ClassName.size()));
      appendU32(P, static_cast<uint32_t>(M.MethodName.size()));
      appendU32(P, static_cast<uint32_t>(M.LineTable.size()));
      P += M.ClassName;
      P += M.MethodName;
      for (const LineEntry &E : M.LineTable) {
        appendU32(P, E.Bci);
        appendU32(P, E.Line);
      }
    }
    appendSegment(SegmentType::MethodTable, EpochNo, P);
    MethodsFlushed = Methods.size();
  }
  // Snapshots: full profile per thread, only when it changed since its
  // last snapshot (last-writer-wins on read-back). profiles() is sorted
  // by thread id, so the byte stream is deterministic.
  for (const ThreadProfile *P : Prof.profiles()) {
    uint64_t &Last = SnapshotVersions[P->threadId()];
    if (Last == P->version() && Last != 0)
      continue;
    std::ostringstream OS;
    P->writeTo(OS);
    std::string Payload;
    appendU64(Payload, P->threadId());
    Payload += OS.str();
    appendSegment(SegmentType::Snapshot, EpochNo, Payload);
    Last = P->version();
  }
  std::string Commit;
  appendU64(Commit, Round);
  appendSegment(SegmentType::Commit, EpochNo, Commit);
  Epoch = EpochNo;
}

void ProfileJournal::bufferClose(const VmError *E, uint64_t SamplesHandled,
                                 uint64_t SamplesDropped) {
  std::string P;
  appendU32(P, E ? 1 : 0);
  appendU32(P, E ? static_cast<uint32_t>(E->Kind) : 0);
  appendU64(P, E ? E->ThreadId : VmError::kNoThread);
  appendU64(P, E ? E->Steps : 0);
  appendU32(P, E ? E->Shard : VmError::kNoShard);
  const std::string &Msg = E ? E->Message : std::string();
  appendU32(P, static_cast<uint32_t>(Msg.size()));
  P += Msg;
  appendU64(P, SamplesHandled);
  appendU64(P, SamplesDropped);
  appendSegment(SegmentType::Close, Epoch, P);
}

void ProfileJournal::flush(const DjxPerf &Prof, const MethodRegistry &Methods,
                           uint64_t Round) {
  if (!active() || Closed)
    return;
  bufferEpoch(Prof, Methods, Round);
  physFlush();
}

void ProfileJournal::closeClean(const DjxPerf &Prof,
                                const MethodRegistry &Methods) {
  if (!active() || Closed)
    return;
  bufferEpoch(Prof, Methods, Epoch == 0 ? 0 : Epoch);
  bufferClose(nullptr, 0, 0);
  Closed = true;
  physFlush();
}

void ProfileJournal::closeFailed(const DjxPerf &Prof,
                                 const MethodRegistry &Methods,
                                 const VmError &E, uint64_t SamplesHandled,
                                 uint64_t SamplesDropped) {
  if (!active() || Closed)
    return;
  bufferEpoch(Prof, Methods, Epoch == 0 ? 0 : Epoch);
  bufferClose(&E, SamplesHandled, SamplesDropped);
  Closed = true;
  physFlush();
}

bool ProfileJournal::physFlush() {
  if (Fd < 0) {
    Pending.clear();
    return false;
  }
  if (Pending.empty())
    return true;
  ++WriteOrdinal;
  // JournalShortWrite: the kernel accepted a prefix, then the process
  // "died" — journaling turns off, the torn tail stays on disk, and the
  // reader's CRC discipline must truncate it away.
  if (FaultInjector::shouldFail(FaultSite::JournalShortWrite,
                                WriteOrdinal)) {
    size_t Cut = posMix(WriteOrdinal ^ 0x57ULL) % Pending.size();
    size_t Done = 0;
    std::string Prefix = Pending.substr(0, Cut);
    writeFrom(Fd, Prefix, Done);
    BytesOut += Done;
    degrade("injected short write (torn tail)");
    return false;
  }
  size_t Done = 0;
  for (unsigned Attempt = 0;; ++Attempt) {
    bool Injected = FaultInjector::shouldFail(FaultSite::JournalWriteError,
                                              WriteOrdinal, Attempt);
    if (!Injected && writeFrom(Fd, Pending, Done))
      break;
    if (Attempt + 1 >= kMaxWriteAttempts) {
      BytesOut += Done;
      degrade(Injected ? std::string("injected write error (EIO)")
                       : std::string("write error: ") +
                             std::strerror(errno));
      return false;
    }
    // Bounded backoff before the retry; the transient-EIO model.
    std::this_thread::sleep_for(std::chrono::milliseconds(1u << Attempt));
  }
  BytesOut += Pending.size();
  Pending.clear();
  return true;
}

void ProfileJournal::degrade(const std::string &Reason) {
  std::fprintf(stderr,
               "djxperf: warning: journal '%s' degraded to off after %s; "
               "run continues without journaling\n",
               Path.c_str(), Reason.c_str());
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
  Pending.clear();
}
