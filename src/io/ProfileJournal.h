//===- io/ProfileJournal.h - Crash-durable profile journal ------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Append-only, checksummed journal of profile state: `djxperf --journal`
/// streams per-epoch profile deltas to disk so a killed or wedged
/// profiler still yields a usable report (`djxperf recover`), and many
/// single-VM journals fold into one fleet report (`djxperf merge`).
///
/// On-disk format (all integers little-endian):
///
///   file header (16 bytes)
///     +0  magic    "DJXJRNL1"                                (8 bytes)
///     +8  version  u32 = 1
///     +12 crc      u32 CRC32C of bytes [0, 12)
///
///   segment (32-byte header + payload), repeated to EOF
///     +0  magic    u32 = kJournalSegmentMagic
///     +4  type     u32 SegmentType
///     +8  seq      u64 monotonic sequence number, 1-based
///     +16 epoch    u64 flush ordinal (0 for Meta)
///     +24 len      u32 payload byte count
///     +28 crc      u32 CRC32C of bytes [4, 28) + payload
///
/// Segment types:
///   Meta        — run/render options (text key-value lines); first
///                 segment of every journal.
///   MethodTable — delta of newly registered methods since the last
///                 flush (binary; ids are assigned contiguously so the
///                 reader rebuilds the registry by position).
///   Snapshot    — one thread's full profile (u64 thread id + the
///                 djxprofile v1 text), written only when the profile
///                 changed since its last snapshot; last-writer-wins.
///   Commit      — epoch sentinel (u64 executor round): everything up
///                 to and including this segment is a consistent
///                 snapshot. Recovery state = state at the last valid
///                 Commit.
///   Close       — terminal sentinel carrying the run's outcome (clean,
///                 or the VmError that degraded it plus the sample
///                 accounting), so `recover` on a complete journal
///                 reproduces the run's report — degraded banner
///                 included — byte for byte.
///
/// Epochs are flushed at executor round barriers (single-threaded
/// windows, so snapshots are race-free and --jobs-invariant), at
/// GC-finish for serial workloads, and on the VmError unwind path after
/// the profiler drained its rings. Writes are buffered per epoch and
/// flushed with plain append write()s: everything the kernel accepted
/// survives SIGKILL, and the CRC + Commit discipline makes the valid
/// prefix a consistent snapshot no matter where the byte stream tears.
///
/// I/O fault sites (FaultInjector, keyed on logical ordinals so plans
/// stay --jobs-invariant): JournalShortWrite (torn tail, journaling then
/// off), JournalWriteError (transient EIO, bounded backoff then
/// journaling off; the run always continues), JournalCorruptByte (bit
/// flip in a buffered segment, caught by CRC on read-back).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_IO_PROFILEJOURNAL_H
#define DJX_IO_PROFILEJOURNAL_H

#include "support/VmError.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace djx {

class DjxPerf;
class MethodRegistry;

/// "DJXJRNL1"
inline constexpr char kJournalFileMagic[8] = {'D', 'J', 'X', 'J',
                                              'R', 'N', 'L', '1'};
inline constexpr uint32_t kJournalFormatVersion = 1;
/// "DJSG" little-endian.
inline constexpr uint32_t kJournalSegmentMagic = 0x47534a44u;
inline constexpr size_t kJournalFileHeaderBytes = 16;
inline constexpr size_t kJournalSegmentHeaderBytes = 32;
/// Upper bound a reader accepts for one payload; a length field above
/// this is corruption, not a big segment.
inline constexpr uint32_t kJournalMaxPayloadBytes = 64u << 20;

enum class SegmentType : uint32_t {
  Meta = 1,
  MethodTable = 2,
  Snapshot = 3,
  Commit = 4,
  Close = 5,
};

/// Run metadata captured at journal open, enough for `recover`/`merge`
/// to render the exact same report without a VM.
struct JournalMeta {
  std::string Workload;
  std::string Title; ///< HTML report title.
  unsigned EventKind = 1; ///< PerfEventKind ordinal of the sort metric.
  unsigned ReportMode = 0; ///< 0 = object, 1 = code, 2 = both.
  unsigned TopGroups = 10;
  unsigned TopAccessContexts = 5;
  double MinShare = 0.0;
  bool ShowNuma = true;
};

/// The journal writer. Degrades to inert (active() == false) after an
/// unrecoverable I/O failure — journaling is an observer; it never fails
/// the run it is recording.
class ProfileJournal {
public:
  /// Creates/truncates \p Path and writes the file header + Meta
  /// segment. \returns null (with \p Error set) when the file cannot be
  /// opened.
  static std::unique_ptr<ProfileJournal>
  open(const std::string &Path, const JournalMeta &Meta,
       std::string *Error = nullptr);

  ~ProfileJournal();

  ProfileJournal(const ProfileJournal &) = delete;
  ProfileJournal &operator=(const ProfileJournal &) = delete;

  /// False once the journal degraded to off (I/O failure).
  bool active() const { return Fd >= 0; }
  const std::string &path() const { return Path; }

  /// Writes one durable epoch: the method-table delta, a snapshot of
  /// every profile whose version changed, then a Commit sentinel for
  /// \p Round; physically flushed before returning. Must be called at a
  /// quiescent point (round barrier / GC finish / after stop()).
  void flush(const DjxPerf &Prof, const MethodRegistry &Methods,
             uint64_t Round);

  /// Final flush + clean Close sentinel. Idempotent once closed.
  void closeClean(const DjxPerf &Prof, const MethodRegistry &Methods);

  /// Final flush + Close sentinel carrying the failure \p E and sample
  /// accounting, mirroring the degraded report the CLI prints. Call
  /// after the profiler drained its rings (stop()), so salvaged samples
  /// reach the journal.
  void closeFailed(const DjxPerf &Prof, const MethodRegistry &Methods,
                   const VmError &E, uint64_t SamplesHandled,
                   uint64_t SamplesDropped);

  uint64_t epochsCommitted() const { return Epoch; }
  uint64_t segmentsWritten() const { return Seq; }
  uint64_t bytesWritten() const { return BytesOut; }

private:
  ProfileJournal(int Fd, std::string Path);

  void appendSegment(SegmentType Type, uint64_t EpochNo,
                     const std::string &Payload);
  /// Delta + snapshots + Commit into the pending buffer (no I/O).
  void bufferEpoch(const DjxPerf &Prof, const MethodRegistry &Methods,
                   uint64_t Round);
  void bufferClose(const VmError *E, uint64_t SamplesHandled,
                   uint64_t SamplesDropped);
  /// Writes the pending buffer through the fault-injection sites.
  /// \returns false when the journal degraded to off.
  bool physFlush();
  void degrade(const std::string &Reason);

  int Fd = -1;
  std::string Path;
  std::string Pending;
  bool Closed = false;
  uint64_t Seq = 0;   ///< Last sequence number appended.
  uint64_t Epoch = 0; ///< Last committed epoch.
  uint64_t BytesOut = 0;
  uint64_t WriteOrdinal = 0; ///< Logical key for write fault draws.
  size_t MethodsFlushed = 0;
  std::map<uint64_t, uint64_t> SnapshotVersions; ///< tid -> version.
};

/// Serialises \p Meta to the Meta segment's text payload.
std::string encodeJournalMeta(const JournalMeta &Meta);
/// Parses a Meta payload. \returns false on malformed input.
bool decodeJournalMeta(const std::string &Payload, JournalMeta &Meta);

} // namespace djx

#endif // DJX_IO_PROFILEJOURNAL_H
