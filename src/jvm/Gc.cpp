//===- Gc.cpp - Stop-the-world mark-compact collector ----------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "jvm/Gc.h"

#include <cassert>
#include <unordered_map>

using namespace djx;

void MarkCompactCollector::traceObject(ObjectRef Obj,
                                       std::vector<ObjectRef> &Worklist) {
  const ObjectInfo &Info = TheHeap.info(Obj);
  const TypeDescriptor &Desc = Types.get(Info.Type);
  auto Visit = [&](uint64_t SlotAddr) {
    ObjectRef Child = TheHeap.rawReadWord(SlotAddr);
    if (Child == kNullRef)
      return;
    assert(TheHeap.isObjectStart(Child) && "ref slot holds a bad pointer");
    ObjectInfo &ChildInfo = TheHeap.info(Child);
    if (ChildInfo.Marked)
      return;
    ChildInfo.Marked = true;
    Worklist.push_back(Child);
  };
  if (Desc.IsArray) {
    if (Desc.ElemIsRef)
      for (uint64_t I = 0; I < Info.Length; ++I)
        Visit(Obj + I * 8);
    return;
  }
  for (uint64_t Off : Desc.RefOffsets)
    Visit(Obj + Off);
}

void MarkCompactCollector::mark(const std::vector<ObjectRef *> &RootSlots) {
  std::vector<ObjectRef> Worklist;
  for (ObjectRef *Slot : RootSlots) {
    ObjectRef Obj = *Slot;
    if (Obj == kNullRef)
      continue;
    assert(TheHeap.isObjectStart(Obj) && "root slot holds a bad pointer");
    ObjectInfo &Info = TheHeap.info(Obj);
    if (Info.Marked)
      continue;
    Info.Marked = true;
    Worklist.push_back(Obj);
  }
  while (!Worklist.empty()) {
    ObjectRef Obj = Worklist.back();
    Worklist.pop_back();
    traceObject(Obj, Worklist);
  }
}

static uint64_t alignUp(uint64_t V, uint64_t A) {
  return (V + A - 1) & ~(A - 1);
}

GcStats MarkCompactCollector::collect(
    const std::vector<ObjectRef *> &RootSlots) {
  Jvmti.publishGcStart();
  GcStats Round;
  Round.Collections = 1;

  mark(RootSlots);

  // Plan the slide shard by shard: each marked object gets its compacted
  // address within its own shard, in ascending address order so every move
  // is leftward (memmove-safe) and stays inside the shard. Shard address
  // ranges ascend with the shard index, so walking shards in order visits
  // objects in global address order — with one shard this is exactly the
  // original whole-heap slide.
  const unsigned NumShards = TheHeap.numShards();
  std::unordered_map<ObjectRef, ObjectRef> Forward;
  std::vector<uint64_t> Cursors(NumShards);
  for (unsigned S = 0; S < NumShards; ++S) {
    uint64_t Cursor = TheHeap.shardBase(S);
    for (const auto &[Addr, Info] : TheHeap.objects(S)) {
      if (!Info.Marked)
        continue;
      Forward.emplace(Addr, Cursor);
      Cursor += alignUp(Info.Size, 8);
    }
    Cursors[S] = Cursor;
  }

  // Publish frees for the dead (finalize interposition) before their bytes
  // can be overwritten by the slide.
  for (unsigned S = 0; S < NumShards; ++S)
    for (const auto &[Addr, Info] : TheHeap.objects(S)) {
      if (Info.Marked)
        continue;
      Jvmti.publishObjectFree(ObjectFreeEvent{Addr, Info.Size});
      ++Round.ObjectsFreed;
      Round.BytesFreed += Info.Size;
    }

  // Rewrite every reference (heap slots first, then roots) through the
  // forwarding table, while objects still sit at their old addresses.
  // References may cross shards; the forwarding table is global.
  auto ForwardRef = [&](uint64_t SlotAddr) {
    ObjectRef Child = TheHeap.rawReadWord(SlotAddr);
    if (Child == kNullRef)
      return;
    auto It = Forward.find(Child);
    assert(It != Forward.end() && "live object points at a dead one");
    if (It->second != Child)
      TheHeap.rawWriteWord(SlotAddr, It->second);
  };
  for (unsigned S = 0; S < NumShards; ++S)
    for (const auto &[Addr, Info] : TheHeap.objects(S)) {
      if (!Info.Marked)
        continue;
      const TypeDescriptor &Desc = Types.get(Info.Type);
      if (Desc.IsArray) {
        if (Desc.ElemIsRef)
          for (uint64_t I = 0; I < Info.Length; ++I)
            ForwardRef(Addr + I * 8);
      } else {
        for (uint64_t Off : Desc.RefOffsets)
          ForwardRef(Addr + Off);
      }
    }
  for (ObjectRef *Slot : RootSlots) {
    if (*Slot == kNullRef)
      continue;
    auto It = Forward.find(*Slot);
    assert(It != Forward.end() && "root points at a dead object");
    *Slot = It->second;
  }

  // Slide the survivors left within each shard and rebuild the side
  // tables. Each physical move is announced through the memmove
  // interposition point.
  for (unsigned S = 0; S < NumShards; ++S) {
    std::map<ObjectRef, ObjectInfo> NewObjects;
    for (auto &[Addr, Info] : TheHeap.objects(S)) {
      if (!Info.Marked)
        continue;
      ObjectRef NewAddr = Forward.at(Addr);
      if (NewAddr != Addr) {
        TheHeap.rawMemmove(NewAddr, Addr, Info.Size);
        Jvmti.publishObjectMove(ObjectMoveEvent{Addr, NewAddr, Info.Size});
        ++Round.ObjectsMoved;
      }
      Info.Marked = false;
      NewObjects.emplace(NewAddr, Info);
    }
    TheHeap.objects(S) = std::move(NewObjects);
    TheHeap.setBumpTop(Cursors[S], S);
  }

  Totals.Collections += Round.Collections;
  Totals.ObjectsMoved += Round.ObjectsMoved;
  Totals.ObjectsFreed += Round.ObjectsFreed;
  Totals.BytesFreed += Round.BytesFreed;
  Jvmti.publishGcFinish(Round);
  return Round;
}
