//===- Gc.h - Stop-the-world mark-compact collector --------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sliding mark-compact garbage collector. It produces exactly the two
/// hazards DJXPerf's §4.5 exists to handle: (a) live objects *move* —
/// surfaced per-object through JvmtiEnv::publishObjectMove, the analogue of
/// interposing on HotSpot's memmove; and (b) dead objects are *reclaimed*
/// and their addresses recycled — surfaced through publishObjectFree, the
/// analogue of interposing on finalize. A GC-finish notification (the
/// GarbageCollectorMXBean analogue) fires after all moves complete.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_JVM_GC_H
#define DJX_JVM_GC_H

#include "jvm/Heap.h"
#include "jvm/Jvmti.h"
#include "jvm/TypeRegistry.h"

#include <vector>

namespace djx {

/// Stop-the-world sliding compactor over a Heap.
class MarkCompactCollector {
public:
  MarkCompactCollector(Heap &H, const TypeRegistry &Types, JvmtiEnv &Jvmti)
      : TheHeap(H), Types(Types), Jvmti(Jvmti) {}

  /// Runs one full collection. \p RootSlots are the addresses of every
  /// live reference outside the heap (workload variables, interpreter
  /// frames); the collector updates them in place when their referents
  /// move. \returns per-collection statistics.
  GcStats collect(const std::vector<ObjectRef *> &RootSlots);

  /// Cumulative statistics across all collections.
  const GcStats &totals() const { return Totals; }

private:
  void mark(const std::vector<ObjectRef *> &RootSlots);
  void traceObject(ObjectRef Obj, std::vector<ObjectRef> &Worklist);

  Heap &TheHeap;
  const TypeRegistry &Types;
  JvmtiEnv &Jvmti;
  GcStats Totals;
};

} // namespace djx

#endif // DJX_JVM_GC_H
