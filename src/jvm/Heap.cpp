//===- Heap.cpp - Bump-allocated, compactable, shardable heap --------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "jvm/Heap.h"

#include <cassert>
#include <cstring>

using namespace djx;

static uint64_t alignUp(uint64_t V, uint64_t A) {
  return (V + A - 1) & ~(A - 1);
}

Heap::Heap(uint64_t CapacityBytes, unsigned NumShards)
    : Capacity(CapacityBytes) {
  assert(NumShards >= 1 && "heap needs at least one shard");
  assert(Capacity > kArenaBase && "heap too small");
  Arena.resize(Capacity, 0);
  Shards.resize(NumShards);
  // Equal contiguous spans, 8-aligned; the last shard absorbs the
  // remainder. One shard degenerates to the original single arena. Every
  // bound is clamped to Capacity so a pathological NumShards-vs-capacity
  // combination yields empty (allocation-failing) shards, never ranges
  // outside the arena.
  assert((Capacity - kArenaBase) / NumShards >= 64 &&
         "heap too small for this shard count");
  ShardSpan = ((Capacity - kArenaBase) / NumShards) & ~7ULL;
  if (ShardSpan < 8)
    ShardSpan = 8;
  for (unsigned S = 0; S < NumShards; ++S) {
    uint64_t Base = kArenaBase + S * ShardSpan;
    uint64_t Limit =
        S + 1 == NumShards ? Capacity : kArenaBase + (S + 1) * ShardSpan;
    Shards[S].Base = Base < Capacity ? Base : Capacity;
    Shards[S].Limit = Limit < Capacity ? Limit : Capacity;
    Shards[S].Top = Shards[S].PeakTop = Shards[S].Base;
  }
}

ObjectRef Heap::allocate(TypeId Type, uint64_t Size, uint64_t Length,
                         unsigned Shard) {
  assert(Size > 0 && "zero-sized object");
  assert(Shard < Shards.size() && "shard out of range");
  struct Shard &S = Shards[Shard];
  uint64_t Aligned = alignUp(Size, 8);
  if (S.Top + Aligned > S.Limit)
    return kNullRef;
  ObjectRef Obj = S.Top;
  S.Top += Aligned;
  if (S.Top > S.PeakTop)
    S.PeakTop = S.Top;
  std::memset(&Arena[Obj], 0, Aligned);
  ObjectInfo Info;
  Info.Type = Type;
  Info.Size = Size;
  Info.Length = Length;
  Info.AllocId = S.NextAllocId++ * Shards.size() + Shard;
  S.Objects.emplace(Obj, Info);
  return Obj;
}

const ObjectInfo &Heap::info(ObjectRef Obj) const {
  const auto &Objects = Shards[shardOf(Obj)].Objects;
  auto It = Objects.find(Obj);
  assert(It != Objects.end() && "not a live object");
  return It->second;
}

ObjectInfo &Heap::info(ObjectRef Obj) {
  auto &Objects = Shards[shardOf(Obj)].Objects;
  auto It = Objects.find(Obj);
  assert(It != Objects.end() && "not a live object");
  return It->second;
}

bool Heap::isObjectStart(ObjectRef Obj) const {
  return Shards[shardOf(Obj)].Objects.count(Obj) != 0;
}

ObjectRef Heap::objectContaining(uint64_t Addr) const {
  const auto &Objects = Shards[shardOf(Addr)].Objects;
  auto It = Objects.upper_bound(Addr);
  if (It == Objects.begin())
    return kNullRef;
  --It;
  if (Addr < It->first + It->second.Size)
    return It->first;
  return kNullRef;
}

void Heap::rawMemmove(uint64_t Dst, uint64_t Src, uint64_t Size) {
  assert(Dst + Size <= Capacity && Src + Size <= Capacity &&
         "memmove out of arena");
  std::memmove(&Arena[Dst], &Arena[Src], Size);
}

void Heap::setBumpTop(uint64_t NewTop, unsigned Shard) {
  struct Shard &S = Shards[Shard];
  assert(NewTop >= S.Base && NewTop <= S.Limit && "bad bump top");
  S.Top = NewTop;
}

uint64_t Heap::usedBytes() const {
  uint64_t Sum = 0;
  for (const Shard &S : Shards)
    Sum += S.Top - S.Base;
  return Sum;
}

uint64_t Heap::peakUsedBytes() const {
  uint64_t Sum = 0;
  for (const Shard &S : Shards)
    Sum += S.PeakTop - S.Base;
  return Sum;
}

uint64_t Heap::liveBytes() const {
  uint64_t Sum = 0;
  for (const Shard &S : Shards)
    for (const auto &[Addr, Info] : S.Objects) {
      (void)Addr;
      Sum += Info.Size;
    }
  return Sum;
}

size_t Heap::numObjects() const {
  size_t Sum = 0;
  for (const Shard &S : Shards)
    Sum += S.Objects.size();
  return Sum;
}

uint64_t Heap::allocationsCount() const {
  uint64_t Sum = 0;
  for (const Shard &S : Shards)
    Sum += S.NextAllocId;
  return Sum;
}
