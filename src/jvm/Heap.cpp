//===- Heap.cpp - Bump-allocated, compactable heap arena -------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "jvm/Heap.h"

#include <cassert>
#include <cstring>

using namespace djx;

Heap::Heap(uint64_t CapacityBytes) : Capacity(CapacityBytes) {
  assert(Capacity > kArenaBase && "heap too small");
  Arena.resize(Capacity, 0);
}

static uint64_t alignUp(uint64_t V, uint64_t A) {
  return (V + A - 1) & ~(A - 1);
}

ObjectRef Heap::allocate(TypeId Type, uint64_t Size, uint64_t Length) {
  assert(Size > 0 && "zero-sized object");
  uint64_t Aligned = alignUp(Size, 8);
  if (Top + Aligned > Capacity)
    return kNullRef;
  ObjectRef Obj = Top;
  Top += Aligned;
  if (Top > PeakTop)
    PeakTop = Top;
  std::memset(&Arena[Obj], 0, Aligned);
  ObjectInfo Info;
  Info.Type = Type;
  Info.Size = Size;
  Info.Length = Length;
  Info.AllocId = NextAllocId++;
  Objects.emplace(Obj, Info);
  return Obj;
}

const ObjectInfo &Heap::info(ObjectRef Obj) const {
  auto It = Objects.find(Obj);
  assert(It != Objects.end() && "not a live object");
  return It->second;
}

ObjectInfo &Heap::info(ObjectRef Obj) {
  auto It = Objects.find(Obj);
  assert(It != Objects.end() && "not a live object");
  return It->second;
}

bool Heap::isObjectStart(ObjectRef Obj) const {
  return Objects.count(Obj) != 0;
}

ObjectRef Heap::objectContaining(uint64_t Addr) const {
  auto It = Objects.upper_bound(Addr);
  if (It == Objects.begin())
    return kNullRef;
  --It;
  if (Addr < It->first + It->second.Size)
    return It->first;
  return kNullRef;
}

void Heap::rawMemmove(uint64_t Dst, uint64_t Src, uint64_t Size) {
  assert(Dst + Size <= Capacity && Src + Size <= Capacity &&
         "memmove out of arena");
  std::memmove(&Arena[Dst], &Arena[Src], Size);
}

void Heap::setBumpTop(uint64_t NewTop) {
  assert(NewTop >= kArenaBase && NewTop <= Capacity && "bad bump top");
  Top = NewTop;
}

uint64_t Heap::liveBytes() const {
  uint64_t Sum = 0;
  for (const auto &[Addr, Info] : Objects) {
    (void)Addr;
    Sum += Info.Size;
  }
  return Sum;
}
