//===- Heap.h - Bump-allocated, compactable heap arena ----------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJVM heap: a flat byte arena with bump allocation and a side
/// table of object metadata ordered by address (so the collector can walk
/// objects in address order for sliding compaction). The heap knows nothing
/// about profiling; allocation/GC events are surfaced by JavaVm.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_JVM_HEAP_H
#define DJX_JVM_HEAP_H

#include "jvm/ObjectModel.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

namespace djx {

/// Flat-arena heap with a bump pointer and per-object side table.
class Heap {
public:
  explicit Heap(uint64_t CapacityBytes);

  /// Allocates \p Size payload bytes (8-byte aligned, zero-filled).
  /// \returns the new object's address, or kNullRef when the arena is full
  /// (the caller runs a GC and retries).
  ObjectRef allocate(TypeId Type, uint64_t Size, uint64_t Length);

  /// Object metadata; \p Obj must be a live object start address.
  const ObjectInfo &info(ObjectRef Obj) const;
  ObjectInfo &info(ObjectRef Obj);

  /// True when \p Obj is the start address of a live object.
  bool isObjectStart(ObjectRef Obj) const;

  /// Object whose payload encloses \p Addr, or kNullRef.
  ObjectRef objectContaining(uint64_t Addr) const;

  /// Raw (unsimulated) little-endian word access into the arena. The
  /// simulated access path lives in JavaVm; these are used by the GC and by
  /// value plumbing after the access has been charged. Inline: they are the
  /// tail of every simulated load/store.
  uint64_t rawReadWord(uint64_t Addr) const {
    assert(Addr + 8 <= Capacity && "read out of arena");
    uint64_t V;
    std::memcpy(&V, &Arena[Addr], 8);
    return V;
  }
  void rawWriteWord(uint64_t Addr, uint64_t Value) {
    assert(Addr + 8 <= Capacity && "write out of arena");
    std::memcpy(&Arena[Addr], &Value, 8);
  }
  uint32_t rawReadU32(uint64_t Addr) const {
    assert(Addr + 4 <= Capacity && "read out of arena");
    uint32_t V;
    std::memcpy(&V, &Arena[Addr], 4);
    return V;
  }
  void rawWriteU32(uint64_t Addr, uint32_t Value) {
    assert(Addr + 4 <= Capacity && "write out of arena");
    std::memcpy(&Arena[Addr], &Value, 4);
  }

  /// memmove within the arena; the GC's object-move primitive.
  void rawMemmove(uint64_t Dst, uint64_t Src, uint64_t Size);

  /// Accessors the collector uses to rewrite the object table wholesale.
  std::map<ObjectRef, ObjectInfo> &objects() { return Objects; }
  const std::map<ObjectRef, ObjectInfo> &objects() const { return Objects; }

  /// Resets the bump pointer after compaction.
  void setBumpTop(uint64_t Top);
  uint64_t bumpTop() const { return Top; }

  uint64_t capacity() const { return Capacity; }
  uint64_t usedBytes() const { return Top - kArenaBase; }
  uint64_t peakUsedBytes() const { return PeakTop - kArenaBase; }
  uint64_t liveBytes() const;
  size_t numObjects() const { return Objects.size(); }
  uint64_t allocationsCount() const { return NextAllocId; }

  /// First usable address; 0..kArenaBase-1 are reserved so 0 can be null.
  static constexpr uint64_t kArenaBase = 64;

private:
  uint64_t Capacity;
  uint64_t Top = kArenaBase;
  uint64_t PeakTop = kArenaBase;
  uint64_t NextAllocId = 0;
  std::vector<uint8_t> Arena;
  std::map<ObjectRef, ObjectInfo> Objects;
};

} // namespace djx

#endif // DJX_JVM_HEAP_H
