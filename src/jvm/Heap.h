//===- Heap.h - Bump-allocated, compactable, shardable heap -----*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJVM heap: a flat byte arena divided into one or more *shards*,
/// each with its own bump pointer and side table of object metadata ordered
/// by address (so the collector can walk objects in address order for
/// sliding compaction). With one shard (the default) the heap behaves
/// exactly as the original single-arena design. With N shards the arena is
/// partitioned into N contiguous address ranges; the parallel runtime
/// assigns each simulated thread its own shard, so concurrent allocations
/// from different threads touch disjoint bump pointers and side tables and
/// never need a lock. Shard addresses are totally ordered (shard i's range
/// lies below shard i+1's), so iterating shards in order visits objects in
/// global address order. The heap knows nothing about profiling;
/// allocation/GC events are surfaced by JavaVm.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_JVM_HEAP_H
#define DJX_JVM_HEAP_H

#include "jvm/ObjectModel.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

namespace djx {

/// Flat-arena heap with per-shard bump pointers and side tables.
class Heap {
public:
  explicit Heap(uint64_t CapacityBytes, unsigned NumShards = 1);

  /// Allocates \p Size payload bytes (8-byte aligned, zero-filled) in
  /// \p Shard. \returns the new object's address, or kNullRef when the
  /// shard is full (the caller runs a GC and retries).
  ObjectRef allocate(TypeId Type, uint64_t Size, uint64_t Length,
                     unsigned Shard = 0);

  /// Object metadata; \p Obj must be a live object start address.
  const ObjectInfo &info(ObjectRef Obj) const;
  ObjectInfo &info(ObjectRef Obj);

  /// True when \p Obj is the start address of a live object.
  bool isObjectStart(ObjectRef Obj) const;

  /// Object whose payload encloses \p Addr, or kNullRef.
  ObjectRef objectContaining(uint64_t Addr) const;

  /// Raw (unsimulated) little-endian word access into the arena. The
  /// simulated access path lives in JavaVm; these are used by the GC and by
  /// value plumbing after the access has been charged. Inline: they are the
  /// tail of every simulated load/store.
  uint64_t rawReadWord(uint64_t Addr) const {
    assert(Addr + 8 <= Capacity && "read out of arena");
    uint64_t V;
    std::memcpy(&V, &Arena[Addr], 8);
    return V;
  }
  void rawWriteWord(uint64_t Addr, uint64_t Value) {
    assert(Addr + 8 <= Capacity && "write out of arena");
    std::memcpy(&Arena[Addr], &Value, 8);
  }
  uint32_t rawReadU32(uint64_t Addr) const {
    assert(Addr + 4 <= Capacity && "read out of arena");
    uint32_t V;
    std::memcpy(&V, &Arena[Addr], 4);
    return V;
  }
  void rawWriteU32(uint64_t Addr, uint32_t Value) {
    assert(Addr + 4 <= Capacity && "write out of arena");
    std::memcpy(&Arena[Addr], &Value, 4);
  }

  /// memmove within the arena; the GC's object-move primitive.
  void rawMemmove(uint64_t Dst, uint64_t Src, uint64_t Size);

  // --- Shard geometry ------------------------------------------------------
  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }
  /// Shard whose address range contains \p Addr. Addresses in the reserved
  /// range [0, kArenaBase) — kNullRef and the guard bytes below the first
  /// shard — map to shard 0 in every configuration (the unsigned
  /// subtraction would otherwise underflow and send them to the *last*
  /// shard whenever NumShards > 1, inconsistent with the single-shard
  /// heap).
  unsigned shardOf(uint64_t Addr) const {
    if (Addr < kArenaBase || Shards.size() == 1)
      return 0;
    uint64_t Idx = (Addr - kArenaBase) / ShardSpan;
    unsigned Last = static_cast<unsigned>(Shards.size()) - 1;
    return Idx < Last ? static_cast<unsigned>(Idx) : Last;
  }
  uint64_t shardBase(unsigned Shard) const { return Shards[Shard].Base; }
  uint64_t shardLimit(unsigned Shard) const { return Shards[Shard].Limit; }

  /// Accessors the collector uses to rewrite a shard's object table
  /// wholesale.
  std::map<ObjectRef, ObjectInfo> &objects(unsigned Shard = 0) {
    return Shards[Shard].Objects;
  }
  const std::map<ObjectRef, ObjectInfo> &objects(unsigned Shard = 0) const {
    return Shards[Shard].Objects;
  }

  /// Resets a shard's bump pointer after compaction.
  void setBumpTop(uint64_t Top, unsigned Shard = 0);
  uint64_t bumpTop(unsigned Shard = 0) const { return Shards[Shard].Top; }

  uint64_t capacity() const { return Capacity; }
  uint64_t usedBytes() const;
  uint64_t peakUsedBytes() const;
  uint64_t liveBytes() const;
  size_t numObjects() const;
  uint64_t allocationsCount() const;
  /// Per-shard allocation ordinal (next shard-local AllocId counter).
  /// Advances only on successful allocation, so it is a logical
  /// coordinate: identical across --jobs for the same program point.
  /// FaultInjector keys forced-exhaustion draws on it.
  uint64_t shardAllocations(unsigned Shard) const {
    return Shards[Shard].NextAllocId;
  }

  /// First usable address; 0..kArenaBase-1 are reserved so 0 can be null.
  static constexpr uint64_t kArenaBase = 64;

private:
  /// One contiguous allocation region: [Base, Limit) with bump pointer Top
  /// and its own address-ordered side table. Object AllocIds are striped
  /// (shard-local counter * numShards + shard) so they stay globally unique
  /// and deterministic however host workers interleave.
  struct Shard {
    uint64_t Base = kArenaBase;
    uint64_t Limit = 0;
    uint64_t Top = kArenaBase;
    uint64_t PeakTop = kArenaBase;
    uint64_t NextAllocId = 0;
    std::map<ObjectRef, ObjectInfo> Objects;
  };

  uint64_t Capacity;
  uint64_t ShardSpan = 0;
  std::vector<uint8_t> Arena;
  std::vector<Shard> Shards;
};

} // namespace djx

#endif // DJX_JVM_HEAP_H
