//===- JavaThread.h - MiniJVM thread state ----------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread state: identity, pinned CPU, the shadow call stack that
/// AsyncGetCallTrace walks, the thread's virtualised PMU context, and the
/// cycle accumulator used as the simulated clock. Threads carry distinct
/// CPUs so NUMA placement and per-thread profiles behave as on a real
/// multicore.
///
/// For the parallel runtime every piece of mutable simulation state a
/// thread touches on its hot path lives here (or is reached through here):
/// the memory-hierarchy pointer (the VM's shared machine by default; a
/// worker-private hierarchy when the Executor adopts the thread), the heap
/// shard the thread allocates from, and the object-header memo that used
/// to be a single VM-wide cache. That ownership split is what lets host
/// workers drive simulated threads concurrently without locks on the
/// access path.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_JVM_JAVATHREAD_H
#define DJX_JVM_JAVATHREAD_H

#include "jvm/MethodRegistry.h"
#include "jvm/ObjectModel.h"
#include "pmu/Pmu.h"

#include <cstdint>
#include <string>
#include <vector>

namespace djx {

/// One call-stack frame: which method, and the bytecode index currently
/// executing inside it.
struct StackFrame {
  MethodId Method = kInvalidMethod;
  uint32_t Bci = 0;
};

/// A MiniJVM thread.
class JavaThread {
public:
  JavaThread(uint64_t Id, std::string Name, uint32_t Cpu)
      : Id(Id), Name(std::move(Name)), Cpu(Cpu), Pmu(Id) {}

  uint64_t id() const { return Id; }
  const std::string &name() const { return Name; }
  uint32_t cpu() const { return Cpu; }

  /// Shadow call stack manipulation (caller-maintained, like the
  /// interpreter's frame pointer chain a real AsyncGetCallTrace walks).
  void pushFrame(MethodId Method, uint32_t Bci = 0) {
    Frames.push_back(StackFrame{Method, Bci});
  }
  void popFrame() {
    assert(!Frames.empty() && "pop of empty stack");
    Frames.pop_back();
  }
  void setBci(uint32_t Bci) {
    assert(!Frames.empty() && "no current frame");
    Frames.back().Bci = Bci;
  }
  const std::vector<StackFrame> &frames() const { return Frames; }
  size_t stackDepth() const { return Frames.size(); }

  /// Simulated clock: cycles this thread has burned.
  void addCycles(uint64_t N) { Cycles += N; }
  /// Rolls back cycles charged for work that is undone (the interpreter
  /// un-charges a faulted allocation opcode's dispatch tick so its
  /// re-execution after a safepoint GC is counted exactly once).
  void subCycles(uint64_t N) {
    assert(Cycles >= N && "cycle rollback underflow");
    Cycles -= N;
  }
  uint64_t cycles() const { return Cycles; }

  PmuContext &pmu() { return Pmu; }
  const PmuContext &pmu() const { return Pmu; }

  bool isAlive() const { return Alive; }
  void markDead() { Alive = false; }

  // --- Simulation-state ownership (parallel runtime) ----------------------
  /// The memory hierarchy this thread's accesses flow through. JavaVm
  /// points it at the shared machine on startThread(); the Executor
  /// repoints it at a worker-private hierarchy so concurrent quanta never
  /// contend on cache/TLB/NUMA state.
  MemoryHierarchy &machine() {
    assert(Machine && "thread has no machine attached");
    return *Machine;
  }
  const MemoryHierarchy *machinePtr() const { return Machine; }
  void setMachine(MemoryHierarchy *M) { Machine = M; }

  /// Heap shard this thread's allocations land in (0 in the serial VM).
  unsigned heapShard() const { return HeapShard; }
  void setHeapShard(unsigned S) { HeapShard = S; }

  /// Agent-private slot, the JVMTI SetThreadLocalStorage analogue: the
  /// profiler parks its per-thread sample context here so quantum-end
  /// callbacks reach the thread's ring without a registry lookup. Owned
  /// by whichever agent installed it; set once at thread start.
  void *agentData() const { return AgentData; }
  void setAgentData(void *D) { AgentData = D; }

  /// Per-thread object-header memo (see JavaVm::objectInfo): array loops
  /// re-resolving one header pay a pointer compare instead of a map walk.
  /// Thread-private so parallel quanta cannot race on it; invalidated when
  /// a GC rewrites the side tables.
  ObjectRef memoObj() const { return MemoObj; }
  const ObjectInfo *memoInfo() const { return MemoInfo; }
  void setObjectMemo(ObjectRef Obj, const ObjectInfo *Info) {
    MemoObj = Obj;
    MemoInfo = Info;
  }
  void invalidateObjectMemo() {
    MemoObj = kNullRef;
    MemoInfo = nullptr;
  }

private:
  uint64_t Id;
  std::string Name;
  uint32_t Cpu;
  std::vector<StackFrame> Frames;
  uint64_t Cycles = 0;
  PmuContext Pmu;
  bool Alive = true;
  MemoryHierarchy *Machine = nullptr;
  void *AgentData = nullptr;
  unsigned HeapShard = 0;
  ObjectRef MemoObj = kNullRef;
  const ObjectInfo *MemoInfo = nullptr;
};

} // namespace djx

#endif // DJX_JVM_JAVATHREAD_H
