//===- JavaThread.h - MiniJVM thread state ----------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread state: identity, pinned CPU, the shadow call stack that
/// AsyncGetCallTrace walks, the thread's virtualised PMU context, and the
/// cycle accumulator used as the simulated clock. Threads are cooperatively
/// scheduled (deterministic), but carry distinct CPUs so NUMA placement and
/// per-thread profiles behave as on a real multicore.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_JVM_JAVATHREAD_H
#define DJX_JVM_JAVATHREAD_H

#include "jvm/MethodRegistry.h"
#include "pmu/Pmu.h"

#include <cstdint>
#include <string>
#include <vector>

namespace djx {

/// One call-stack frame: which method, and the bytecode index currently
/// executing inside it.
struct StackFrame {
  MethodId Method = kInvalidMethod;
  uint32_t Bci = 0;
};

/// A MiniJVM thread.
class JavaThread {
public:
  JavaThread(uint64_t Id, std::string Name, uint32_t Cpu)
      : Id(Id), Name(std::move(Name)), Cpu(Cpu), Pmu(Id) {}

  uint64_t id() const { return Id; }
  const std::string &name() const { return Name; }
  uint32_t cpu() const { return Cpu; }

  /// Shadow call stack manipulation (caller-maintained, like the
  /// interpreter's frame pointer chain a real AsyncGetCallTrace walks).
  void pushFrame(MethodId Method, uint32_t Bci = 0) {
    Frames.push_back(StackFrame{Method, Bci});
  }
  void popFrame() {
    assert(!Frames.empty() && "pop of empty stack");
    Frames.pop_back();
  }
  void setBci(uint32_t Bci) {
    assert(!Frames.empty() && "no current frame");
    Frames.back().Bci = Bci;
  }
  const std::vector<StackFrame> &frames() const { return Frames; }
  size_t stackDepth() const { return Frames.size(); }

  /// Simulated clock: cycles this thread has burned.
  void addCycles(uint64_t N) { Cycles += N; }
  uint64_t cycles() const { return Cycles; }

  PmuContext &pmu() { return Pmu; }
  const PmuContext &pmu() const { return Pmu; }

  bool isAlive() const { return Alive; }
  void markDead() { Alive = false; }

private:
  uint64_t Id;
  std::string Name;
  uint32_t Cpu;
  std::vector<StackFrame> Frames;
  uint64_t Cycles = 0;
  PmuContext Pmu;
  bool Alive = true;
};

} // namespace djx

#endif // DJX_JVM_JAVATHREAD_H
