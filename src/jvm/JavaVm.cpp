//===- JavaVm.cpp - MiniJVM facade -----------------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "jvm/JavaVm.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace djx;

JavaVm::JavaVm(const VmConfig &Cfg)
    : Config(Cfg), Machine(Cfg.Machine), TheHeap(Cfg.HeapBytes),
      Collector(TheHeap, Types, Jvmti) {}

JavaThread &JavaVm::startThread(const std::string &Name, uint32_t Cpu) {
  if (Cpu == kAnyCpu) {
    Cpu = NextCpu;
    NextCpu = (NextCpu + 1) % Machine.numCpus();
  }
  assert(Cpu < Machine.numCpus() && "CPU id out of range");
  Threads.emplace_back(NextThreadId++, Name, Cpu);
  JavaThread &T = Threads.back();
  Jvmti.publishThreadStart(T);
  return T;
}

void JavaVm::endThread(JavaThread &T) {
  assert(T.isAlive() && "ending a dead thread");
  Jvmti.publishThreadEnd(T);
  T.markDead();
}

std::vector<JavaThread *> JavaVm::allThreads() {
  std::vector<JavaThread *> Out;
  Out.reserve(Threads.size());
  for (JavaThread &T : Threads)
    Out.push_back(&T);
  return Out;
}

// Object-header memo refill: the inline objectInfo() calls this only when
// the request misses the memo.
void JavaVm::refreshObjectMemo(ObjectRef Obj) {
  MemoInfo = &TheHeap.info(Obj);
  MemoObj = Obj;
}

double JavaVm::readDouble(JavaThread &T, ObjectRef Obj, uint64_t Offset) {
  uint64_t Bits = readWord(T, Obj, Offset);
  double V;
  std::memcpy(&V, &Bits, 8);
  return V;
}

void JavaVm::writeDouble(JavaThread &T, ObjectRef Obj, uint64_t Offset,
                         double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, 8);
  writeWord(T, Obj, Offset, Bits);
}

void JavaVm::arrayCopy(JavaThread &T, ObjectRef Src, uint64_t SrcOff,
                       ObjectRef Dst, uint64_t DstOff, uint64_t Bytes) {
  assert(Bytes % 8 == 0 && "arrayCopy is word-granular");
  checkAccess(T, Src, SrcOff, Bytes);
  checkAccess(T, Dst, DstOff, Bytes);
  for (uint64_t I = 0; I < Bytes; I += 8) {
    simulateAccess(T, Src + SrcOff + I);
    uint64_t V = TheHeap.rawReadWord(Src + SrcOff + I);
    simulateAccess(T, Dst + DstOff + I);
    TheHeap.rawWriteWord(Dst + DstOff + I, V);
  }
}

void JavaVm::touchNewObject(JavaThread &T, ObjectRef Obj, uint64_t Size) {
  uint32_t Line = Machine.config().L1.LineBytes;
  uint64_t First = Obj / Line;
  uint64_t Last = (Obj + Size - 1) / Line;
  for (uint64_t L = First; L <= Last; ++L)
    simulateAccess(T, L * Line >= Obj ? L * Line : Obj);
}

ObjectRef JavaVm::allocateRaw(JavaThread &T, TypeId Type, uint64_t Size,
                              uint64_t Length) {
  ObjectRef Obj = TheHeap.allocate(Type, Size, Length);
  if (Obj == kNullRef && Config.AutoGc) {
    GcStats S = requestGc();
    T.addCycles(Config.GcPauseBaseCycles +
                Config.GcPausePerObjectCycles *
                    (S.ObjectsMoved + S.ObjectsFreed));
    Obj = TheHeap.allocate(Type, Size, Length);
  }
  if (Obj == kNullRef) {
    std::fprintf(stderr,
                 "djx: OutOfMemoryError: %llu bytes requested, %llu live\n",
                 static_cast<unsigned long long>(Size),
                 static_cast<unsigned long long>(TheHeap.liveBytes()));
    std::abort();
  }
  // Zero-fill stores: the allocating thread first-touches every line.
  touchNewObject(T, Obj, Size);
  if (!AllocationEventsOn)
    return Obj;
  AllocationEvent E;
  E.Thread = &T;
  E.Object = Obj;
  E.Type = Type;
  E.TypeName = Types.get(Type).Name;
  E.Size = Size;
  E.Length = Length;
  Jvmti.publishAllocation(E);
  return Obj;
}

ObjectRef JavaVm::allocateObject(JavaThread &T, TypeId Type) {
  const TypeDescriptor &Desc = Types.get(Type);
  assert(!Desc.IsArray && "use allocateArray for arrays");
  assert(Desc.InstanceSize > 0 && "class with zero instance size");
  return allocateRaw(T, Type, Desc.InstanceSize, 0);
}

ObjectRef JavaVm::allocateArray(JavaThread &T, TypeId ArrayType,
                                uint64_t Length) {
  const TypeDescriptor &Desc = Types.get(ArrayType);
  assert(Desc.IsArray && "use allocateObject for instances");
  uint64_t Size = Desc.ElemSize * Length;
  if (Size == 0)
    Size = 8; // Zero-length arrays still occupy a slot.
  return allocateRaw(T, ArrayType, Size, Length);
}

ObjectRef JavaVm::allocateMultiArray(JavaThread &T, TypeId LeafArrayType,
                                     const std::vector<uint64_t> &Dims) {
  assert(!Dims.empty() && "multianewarray needs at least one dimension");
  if (Dims.size() == 1)
    return allocateArray(T, LeafArrayType, Dims[0]);
  // Outer dimensions are reference arrays pointing at the next level.
  TypeId OuterType = Types.refArrayType(Types.get(LeafArrayType).Name);
  RootScope Roots(*this);
  ObjectRef &Outer = Roots.add(allocateArray(T, OuterType, Dims[0]));
  std::vector<uint64_t> Rest(Dims.begin() + 1, Dims.end());
  for (uint64_t I = 0; I < Dims[0]; ++I) {
    ObjectRef &Child = Roots.add(allocateMultiArray(T, LeafArrayType, Rest));
    writeRef(T, Outer, I * 8, Child);
  }
  return Outer;
}

void JavaVm::addRoot(ObjectRef *Slot) {
  assert(Slot && "null root slot");
  RootSlots.push_back(Slot);
}

void JavaVm::removeRoot(ObjectRef *Slot) {
  for (size_t I = RootSlots.size(); I-- > 0;) {
    if (RootSlots[I] == Slot) {
      RootSlots.erase(RootSlots.begin() + I);
      return;
    }
  }
  assert(false && "removing an unregistered root");
}

uint64_t JavaVm::addRootProvider(RootProvider Fn) {
  uint64_t Token = NextProviderToken++;
  RootProviders.emplace_back(Token, std::move(Fn));
  return Token;
}

void JavaVm::removeRootProvider(uint64_t Token) {
  for (size_t I = RootProviders.size(); I-- > 0;) {
    if (RootProviders[I].first == Token) {
      RootProviders.erase(RootProviders.begin() + I);
      return;
    }
  }
  assert(false && "removing an unregistered root provider");
}

GcStats JavaVm::requestGc() {
  std::vector<ObjectRef *> Slots = RootSlots;
  for (auto &[Token, Fn] : RootProviders) {
    (void)Token;
    Fn(Slots);
  }
  GcStats S = Collector.collect(Slots);
  // Compaction moved objects and rewrote the side table: the header memo
  // is stale, and the close cache levels saw none of it; drop both but
  // keep the large shared L3 warm (see flushCaches).
  invalidateObjectMemo();
  Machine.flushCaches(/*IncludeL3=*/false);
  return S;
}

uint64_t JavaVm::totalCycles() const {
  uint64_t Sum = 0;
  for (const JavaThread &T : Threads)
    Sum += T.cycles();
  return Sum;
}
