//===- JavaVm.cpp - MiniJVM facade -----------------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "jvm/JavaVm.h"

#include "support/FaultInjector.h"
#include "support/VmError.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace djx;

JavaVm::JavaVm(const VmConfig &Cfg)
    : Config(Cfg), Machine(Cfg.Machine),
      TheHeap(Cfg.HeapBytes, Cfg.HeapShards),
      Collector(TheHeap, Types, Jvmti) {}

JavaThread &JavaVm::startThread(const std::string &Name, uint32_t Cpu) {
  JavaThread *T;
  {
    SpinLockGuard G(ThreadsLock);
    if (Cpu == kAnyCpu) {
      Cpu = NextCpu;
      NextCpu = (NextCpu + 1) % Machine.numCpus();
    }
    assert(Cpu < Machine.numCpus() && "CPU id out of range");
    Threads.emplace_back(NextThreadId++, Name, Cpu);
    T = &Threads.back();
    T->setMachine(&Machine);
  }
  Jvmti.publishThreadStart(*T);
  return *T;
}

void JavaVm::endThread(JavaThread &T) {
  assert(T.isAlive() && "ending a dead thread");
  Jvmti.publishThreadEnd(T);
  T.markDead();
}

std::vector<JavaThread *> JavaVm::allThreads() {
  SpinLockGuard G(ThreadsLock);
  std::vector<JavaThread *> Out;
  Out.reserve(Threads.size());
  for (JavaThread &T : Threads)
    Out.push_back(&T);
  return Out;
}

// Object-header memo refill: the inline objectInfo() calls this only when
// the request misses the thread's memo.
void JavaVm::refreshObjectMemo(JavaThread &T, ObjectRef Obj) {
  T.setObjectMemo(Obj, &TheHeap.info(Obj));
}

void JavaVm::invalidateObjectMemos() {
  SpinLockGuard G(ThreadsLock);
  for (JavaThread &T : Threads)
    T.invalidateObjectMemo();
}

double JavaVm::readDouble(JavaThread &T, ObjectRef Obj, uint64_t Offset) {
  uint64_t Bits = readWord(T, Obj, Offset);
  double V;
  std::memcpy(&V, &Bits, 8);
  return V;
}

void JavaVm::writeDouble(JavaThread &T, ObjectRef Obj, uint64_t Offset,
                         double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, 8);
  writeWord(T, Obj, Offset, Bits);
}

void JavaVm::arrayCopy(JavaThread &T, ObjectRef Src, uint64_t SrcOff,
                       ObjectRef Dst, uint64_t DstOff, uint64_t Bytes) {
  assert(Bytes % 8 == 0 && "arrayCopy is word-granular");
  checkAccess(T, Src, SrcOff, Bytes);
  checkAccess(T, Dst, DstOff, Bytes);
  for (uint64_t I = 0; I < Bytes; I += 8) {
    simulateAccess(T, Src + SrcOff + I);
    uint64_t V = TheHeap.rawReadWord(Src + SrcOff + I);
    simulateAccess(T, Dst + DstOff + I);
    TheHeap.rawWriteWord(Dst + DstOff + I, V);
  }
}

void JavaVm::touchNewObject(JavaThread &T, ObjectRef Obj, uint64_t Size) {
  uint32_t Line = T.machine().config().L1.LineBytes;
  uint64_t First = Obj / Line;
  uint64_t Last = (Obj + Size - 1) / Line;
  for (uint64_t L = First; L <= Last; ++L)
    simulateAccess(T, L * Line >= Obj ? L * Line : Obj);
}

ObjectRef JavaVm::allocateRaw(JavaThread &T, TypeId Type, uint64_t Size,
                              uint64_t Length) {
  // Forced shard exhaustion (FaultInjector): the allocation behaves as
  // if the shard were full. Keyed on the shard's allocation ordinal,
  // which does not advance on failure — the post-GC retry of the same
  // allocation draws the same key, so an injected exhaustion escalates
  // deterministically into the OutOfMemory error path.
  auto TryAllocate = [&]() -> ObjectRef {
    if (FaultInjector::shouldFail(FaultSite::HeapAlloc, T.heapShard(),
                                  TheHeap.shardAllocations(T.heapShard())))
      return kNullRef;
    return TheHeap.allocate(Type, Size, Length, T.heapShard());
  };
  ObjectRef Obj = TryAllocate();
  if (Obj == kNullRef && DeferGcToSafepoint)
    // Executor mode: the world must stop before the collector may run.
    // The faulting bytecode re-executes after the safepoint GC.
    throw GcRequest{&T, Size};
  if (Obj == kNullRef && Config.AutoGc) {
    GcStats S = requestGc();
    T.addCycles(gcPauseCycles(Config, S));
    Obj = TryAllocate();
  }
  if (Obj == kNullRef) {
    VmError E(VmErrorKind::OutOfMemory,
              std::to_string(Size) + " bytes requested, " +
                  std::to_string(TheHeap.liveBytes()) +
                  " live after collection");
    E.ThreadId = T.id();
    E.Shard = T.heapShard();
    throw E;
  }
  // Zero-fill stores: the allocating thread first-touches every line.
  touchNewObject(T, Obj, Size);
  if (!AllocationEventsOn)
    return Obj;
  AllocationEvent E;
  E.Thread = &T;
  E.Object = Obj;
  E.Type = Type;
  E.TypeName = Types.get(Type).Name;
  E.Size = Size;
  E.Length = Length;
  Jvmti.publishAllocation(E);
  return Obj;
}

ObjectRef JavaVm::allocateObject(JavaThread &T, TypeId Type) {
  const TypeDescriptor &Desc = Types.get(Type);
  assert(!Desc.IsArray && "use allocateArray for arrays");
  assert(Desc.InstanceSize > 0 && "class with zero instance size");
  return allocateRaw(T, Type, Desc.InstanceSize, 0);
}

ObjectRef JavaVm::allocateArray(JavaThread &T, TypeId ArrayType,
                                uint64_t Length) {
  const TypeDescriptor &Desc = Types.get(ArrayType);
  assert(Desc.IsArray && "use allocateObject for instances");
  uint64_t Size = Desc.ElemSize * Length;
  if (Size == 0)
    Size = 8; // Zero-length arrays still occupy a slot.
  return allocateRaw(T, ArrayType, Size, Length);
}

// Aligned arena footprint of one array allocation (see Heap::allocate).
static uint64_t alignedArrayBytes(uint64_t Elems, uint64_t ElemSize) {
  uint64_t Size = Elems * ElemSize;
  if (Size == 0)
    Size = 8;
  return (Size + 7) & ~7ULL;
}

// Total arena bytes a multianewarray of \p Dims will bump-allocate:
// one ref array per node of every outer level, leaf arrays below.
// Saturates at \p Cap (enough to guarantee the preflight fails).
static uint64_t multiArrayFootprint(const std::vector<uint64_t> &Dims,
                                    uint64_t LeafElemSize, uint64_t Cap) {
  uint64_t Total = 0;
  uint64_t Count = 1;
  uint64_t Level = 0;
  for (size_t K = 0; K + 1 < Dims.size(); ++K) {
    if (__builtin_mul_overflow(Count, alignedArrayBytes(Dims[K], 8),
                               &Level) ||
        __builtin_add_overflow(Total, Level, &Total) ||
        __builtin_mul_overflow(Count, Dims[K], &Count) || Total > Cap ||
        Count > Cap)
      return Cap;
  }
  if (__builtin_mul_overflow(Count, alignedArrayBytes(Dims.back(),
                                                      LeafElemSize),
                             &Level) ||
      __builtin_add_overflow(Total, Level, &Total))
    return Cap;
  return Total > Cap ? Cap : Total;
}

ObjectRef JavaVm::allocateMultiArray(JavaThread &T, TypeId LeafArrayType,
                                     const std::vector<uint64_t> &Dims) {
  assert(!Dims.empty() && "multianewarray needs at least one dimension");
  if (Dims.size() == 1)
    return allocateArray(T, LeafArrayType, Dims[0]);
  if (DeferGcToSafepoint) {
    // Executor mode: the whole multi-level allocation must be GC-atomic.
    // A GcRequest unwinding from a *partially built* multi-array would
    // leave the committed inner arrays' events/cycles/samples counted,
    // and the re-executed bytecode would publish them all again. So
    // preflight the total footprint against the shard's free space and
    // fault up front, before anything is committed; after the check the
    // inner allocations cannot fail (the shard has a single owner).
    uint64_t Free = TheHeap.shardLimit(T.heapShard()) -
                    TheHeap.bumpTop(T.heapShard());
    uint64_t Needed = multiArrayFootprint(
        Dims, Types.get(LeafArrayType).ElemSize, TheHeap.capacity());
    if (Needed > Free)
      throw GcRequest{&T, Needed};
  }
  // Outer dimensions are reference arrays pointing at the next level.
  TypeId OuterType = Types.refArrayType(Types.get(LeafArrayType).Name);
  RootScope Roots(*this);
  ObjectRef &Outer = Roots.add(allocateArray(T, OuterType, Dims[0]));
  std::vector<uint64_t> Rest(Dims.begin() + 1, Dims.end());
  for (uint64_t I = 0; I < Dims[0]; ++I) {
    ObjectRef &Child = Roots.add(allocateMultiArray(T, LeafArrayType, Rest));
    writeRef(T, Outer, I * 8, Child);
  }
  return Outer;
}

void JavaVm::addRoot(ObjectRef *Slot) {
  assert(Slot && "null root slot");
  SpinLockGuard G(RootsLock);
  RootSlots.push_back(Slot);
}

void JavaVm::removeRoot(ObjectRef *Slot) {
  SpinLockGuard G(RootsLock);
  for (size_t I = RootSlots.size(); I-- > 0;) {
    if (RootSlots[I] == Slot) {
      RootSlots.erase(RootSlots.begin() + I);
      return;
    }
  }
  assert(false && "removing an unregistered root");
}

uint64_t JavaVm::addRootProvider(RootProvider Fn) {
  SpinLockGuard G(RootsLock);
  uint64_t Token = NextProviderToken++;
  RootProviders.emplace_back(Token, std::move(Fn));
  return Token;
}

void JavaVm::removeRootProvider(uint64_t Token) {
  SpinLockGuard G(RootsLock);
  for (size_t I = RootProviders.size(); I-- > 0;) {
    if (RootProviders[I].first == Token) {
      RootProviders.erase(RootProviders.begin() + I);
      return;
    }
  }
  assert(false && "removing an unregistered root provider");
}

GcStats JavaVm::requestGc() {
  // Forced no-op collection (FaultInjector): pretend the collector ran
  // and reclaimed nothing. Keyed on the VM's GC request ordinal — a
  // logical coordinate shared by the serial AutoGc path and the
  // Executor's safepoint path. Combined with forced shard exhaustion
  // this drives the genuine OutOfMemory paths.
  ++GcRequests;
  if (FaultInjector::shouldFail(FaultSite::GcCollect, GcRequests))
    return GcStats{};
  // Snapshot slots and providers under the lock, then run the provider
  // callbacks with it released: RootsLock is a leaf lock, and a provider
  // is allowed to call addRoot/addRootProvider (which would self-deadlock
  // on the non-reentrant spin lock otherwise).
  std::vector<ObjectRef *> Slots;
  std::vector<RootProvider> Providers;
  {
    SpinLockGuard G(RootsLock);
    Slots = RootSlots;
    Providers.reserve(RootProviders.size());
    for (auto &[Token, Fn] : RootProviders) {
      (void)Token;
      Providers.push_back(Fn);
    }
  }
  for (const RootProvider &Fn : Providers)
    Fn(Slots);
  GcStats S = Collector.collect(Slots);
  // Compaction moved objects and rewrote the side tables: every thread's
  // header memo is stale, and the close cache levels saw none of it; drop
  // both but keep the large shared L3 warm (see flushCaches). Under the
  // Executor threads carry worker-private hierarchies — flush each
  // distinct one exactly once, in thread order (deterministic).
  invalidateObjectMemos();
  Machine.flushCaches(/*IncludeL3=*/false);
  {
    SpinLockGuard G(ThreadsLock);
    std::vector<MemoryHierarchy *> Flushed;
    for (JavaThread &T : Threads) {
      MemoryHierarchy *M = const_cast<MemoryHierarchy *>(T.machinePtr());
      if (!M || M == &Machine)
        continue;
      if (std::find(Flushed.begin(), Flushed.end(), M) != Flushed.end())
        continue;
      M->flushCaches(/*IncludeL3=*/false);
      Flushed.push_back(M);
    }
  }
  return S;
}

uint64_t JavaVm::totalCycles() const {
  uint64_t Sum = 0;
  for (const JavaThread &T : Threads)
    Sum += T.cycles();
  return Sum;
}
