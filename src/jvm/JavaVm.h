//===- JavaVm.h - MiniJVM facade --------------------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJVM: wires the heap, the mark-compact GC, the type and method
/// registries, the JVMTI-like event surface, the simulated memory
/// hierarchy, and per-thread PMU contexts into one virtual machine that
/// workloads (and the bytecode interpreter) program against. Every
/// simulated load/store flows through readWord()/writeWord() and friends,
/// which (1) consult the cache/TLB/NUMA model, (2) charge latency to the
/// thread's cycle clock, and (3) feed the thread's PMU — so DJXPerf's
/// samples arise from genuine locality behaviour.
///
/// Concurrency model (see docs/ARCHITECTURE.md "Concurrency model"): the
/// access path is lock-free because every mutable structure it touches is
/// owned by the accessing JavaThread — its cycle clock, PMU, header memo,
/// memory hierarchy (worker-private under the Executor), and heap shard.
/// The VM-wide structures (thread list, root slots/providers) take leaf
/// spin locks on mutation; registries are immutable while the Executor is
/// running (freeze()). GC is only entered with the world stopped: either
/// on the single mutator thread (serial mode, AutoGc) or at an Executor
/// safepoint — with deferGcToSafepoint(true), a failed allocation throws
/// GcRequest instead of collecting inline, and the Executor re-executes
/// the faulting bytecode after the stop-the-world collection.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_JVM_JAVAVM_H
#define DJX_JVM_JAVAVM_H

#include "jvm/Gc.h"
#include "jvm/Heap.h"
#include "jvm/JavaThread.h"
#include "jvm/Jvmti.h"
#include "jvm/MethodRegistry.h"
#include "jvm/TypeRegistry.h"
#include "sim/MemoryHierarchy.h"
#include "support/SpinLock.h"

#include <deque>
#include <memory>
#include <vector>

namespace djx {

/// VM-wide configuration.
struct VmConfig {
  uint64_t HeapBytes = 64ULL * 1024 * 1024;
  MachineConfig Machine;
  /// Number of heap shards (per-thread allocation regions). 1 is the
  /// serial single-arena heap; the parallel runtime configures one shard
  /// per simulated thread.
  unsigned HeapShards = 1;
  /// Run a collection automatically when allocation fails.
  bool AutoGc = true;
  /// Stop-the-world pause cost charged to the allocating thread when an
  /// automatic collection runs (memory bloat makes these frequent).
  uint64_t GcPauseBaseCycles = 20000;
  uint64_t GcPausePerObjectCycles = 8;
};

/// Thrown by the allocation path when GC handling is deferred to an
/// Executor safepoint (deferGcToSafepoint): the shard is full and the
/// world must stop before the collector may run. The faulting bytecode
/// re-executes after the safepoint GC.
struct GcRequest {
  JavaThread *Thread = nullptr;
  uint64_t Bytes = 0;
};

/// Stop-the-world pause cost of one collection. Single source of truth:
/// the serial AutoGc path and the Executor's safepoint path must charge
/// the same cycles or jobs-mode clocks diverge from serial ones.
inline uint64_t gcPauseCycles(const VmConfig &Config, const GcStats &S) {
  return Config.GcPauseBaseCycles +
         Config.GcPausePerObjectCycles * (S.ObjectsMoved + S.ObjectsFreed);
}

/// The MiniJVM facade.
class JavaVm {
public:
  explicit JavaVm(const VmConfig &Config = VmConfig());

  // --- Subsystem access -------------------------------------------------
  MemoryHierarchy &machine() { return Machine; }
  Heap &heap() { return TheHeap; }
  const Heap &heap() const { return TheHeap; }
  TypeRegistry &types() { return Types; }
  MethodRegistry &methods() { return Methods; }
  JvmtiEnv &jvmti() { return Jvmti; }
  const VmConfig &config() const { return Config; }

  // --- Threads ----------------------------------------------------------
  /// Starts a thread pinned to \p Cpu (pass kAnyCpu for round-robin) and
  /// fires the JVMTI thread-start event. Safe to call from host worker
  /// threads (the thread list is lock-guarded and reference-stable).
  JavaThread &startThread(const std::string &Name, uint32_t Cpu = kAnyCpu);

  /// Fires the JVMTI thread-end event and marks the thread dead.
  void endThread(JavaThread &T);

  std::vector<JavaThread *> allThreads();

  /// JVMTI AsyncGetCallTrace analogue: snapshot of the thread's shadow
  /// stack, leaf-last, usable at any point (no safepoint bias, §4.4).
  std::vector<StackFrame> asyncGetCallTrace(const JavaThread &T) const {
    return T.frames();
  }

  static constexpr uint32_t kAnyCpu = ~0U;

  // --- Allocation (the four bytecode routines funnel here) ---------------
  /// `new`: allocates an instance of \p Type on \p T.
  ObjectRef allocateObject(JavaThread &T, TypeId Type);

  /// `newarray` / `anewarray`: allocates an array of \p Length elements.
  ObjectRef allocateArray(JavaThread &T, TypeId ArrayType, uint64_t Length);

  /// `multianewarray`: rectangular array-of-arrays, outermost first.
  ObjectRef allocateMultiArray(JavaThread &T, TypeId LeafArrayType,
                               const std::vector<uint64_t> &Dims);

  // --- Simulated memory access -------------------------------------------
  // All sized accessors are inline one-liners over the same path: bounds
  // asserts, one simulated access, then a raw arena read/write. Keeping
  // them in the header lets the compiler fold the whole stack of calls
  // (interpreter -> JavaVm -> Heap/PMU) into straight-line code.
  uint8_t readU8(JavaThread &T, ObjectRef Obj, uint64_t Offset) {
    preAccess(T, Obj, Offset, 1);
    uint64_t A = Obj + Offset;
    return static_cast<uint8_t>(TheHeap.rawReadU32(A & ~3ULL) >>
                                ((A & 3) * 8));
  }
  void writeU8(JavaThread &T, ObjectRef Obj, uint64_t Offset,
               uint8_t Value) {
    preAccess(T, Obj, Offset, 1);
    uint64_t A = (Obj + Offset) & ~3ULL;
    uint32_t Shift = static_cast<uint32_t>(((Obj + Offset) & 3) * 8);
    uint32_t Old = TheHeap.rawReadU32(A);
    TheHeap.rawWriteU32(A, (Old & ~(0xFFU << Shift)) |
                               (static_cast<uint32_t>(Value) << Shift));
  }
  uint64_t readWord(JavaThread &T, ObjectRef Obj, uint64_t Offset) {
    preAccess(T, Obj, Offset, 8);
    return TheHeap.rawReadWord(Obj + Offset);
  }
  void writeWord(JavaThread &T, ObjectRef Obj, uint64_t Offset,
                 uint64_t Value) {
    preAccess(T, Obj, Offset, 8);
    TheHeap.rawWriteWord(Obj + Offset, Value);
  }
  uint32_t readU32(JavaThread &T, ObjectRef Obj, uint64_t Offset) {
    preAccess(T, Obj, Offset, 4);
    return TheHeap.rawReadU32(Obj + Offset);
  }
  void writeU32(JavaThread &T, ObjectRef Obj, uint64_t Offset,
                uint32_t Value) {
    preAccess(T, Obj, Offset, 4);
    TheHeap.rawWriteU32(Obj + Offset, Value);
  }
  double readDouble(JavaThread &T, ObjectRef Obj, uint64_t Offset);
  void writeDouble(JavaThread &T, ObjectRef Obj, uint64_t Offset,
                   double Value);
  ObjectRef readRef(JavaThread &T, ObjectRef Obj, uint64_t Offset) {
    return readWord(T, Obj, Offset);
  }
  void writeRef(JavaThread &T, ObjectRef Obj, uint64_t Offset,
                ObjectRef Value) {
    assert((Value == kNullRef || TheHeap.isObjectStart(Value)) &&
           "storing a bad reference");
    writeWord(T, Obj, Offset, Value);
  }

  /// Memoised object-header resolution: returns the same metadata as
  /// heap().info(Obj) but caches the last resolved object *per thread*, so
  /// array loops re-resolving one header pay a pointer compare instead of
  /// a map walk, and concurrent quanta never race on the memo. The memo is
  /// dropped when a GC rewrites the object tables.
  const ObjectInfo &objectInfo(JavaThread &T, ObjectRef Obj) {
    if (Obj != T.memoObj())
      refreshObjectMemo(T, Obj);
    return *T.memoInfo();
  }
  /// Type descriptor of \p Obj via the same memo (indexing the registry is
  /// cheap; descriptors are not cached because defining a new type mid-run
  /// may relocate them).
  const TypeDescriptor &objectType(JavaThread &T, ObjectRef Obj) {
    return Types.get(objectInfo(T, Obj).Type);
  }

  /// System.arraycopy analogue: word-granularity copy with simulated
  /// accesses on both source and destination.
  void arrayCopy(JavaThread &T, ObjectRef Src, uint64_t SrcOff,
                 ObjectRef Dst, uint64_t DstOff, uint64_t Bytes);

  /// Burns \p N plain execution cycles on \p T (non-memory instructions).
  void tick(JavaThread &T, uint64_t N = 1) { T.addCycles(N); }

  // --- GC ----------------------------------------------------------------
  /// Registers/unregisters an off-heap reference slot as a GC root. The
  /// collector updates the slot in place when its referent moves. Lock
  /// guarded; safe from host worker threads.
  void addRoot(ObjectRef *Slot);
  void removeRoot(ObjectRef *Slot);

  /// Root providers contribute transient root slots (e.g. interpreter
  /// operand stacks) at collection time. \returns a token for removal.
  using RootProvider = std::function<void(std::vector<ObjectRef *> &)>;
  uint64_t addRootProvider(RootProvider Fn);
  void removeRootProvider(uint64_t Token);

  /// Explicit System.gc(). Must only run with the world stopped: on the
  /// mutator in serial mode, or at a safepoint under the Executor. Flushes
  /// every attached memory hierarchy (shared and worker-private) and every
  /// thread's header memo.
  GcStats requestGc();

  /// When enabled, a failed allocation throws GcRequest instead of
  /// collecting inline — the Executor's safepoint protocol owns GC. The
  /// serial path (default off) keeps the original allocate-fail ->
  /// collect -> retry behaviour.
  void setDeferGcToSafepoint(bool On) { DeferGcToSafepoint = On; }
  bool deferGcToSafepoint() const { return DeferGcToSafepoint; }

  /// Enables/disables VM-level allocation event publication. Instrumented
  /// bytecode programs disable it so the ASM hooks are the only channel.
  void setAllocationEventsEnabled(bool On) { AllocationEventsOn = On; }
  bool allocationEventsEnabled() const { return AllocationEventsOn; }

  const GcStats &gcTotals() const { return Collector.totals(); }

  // --- Accounting ---------------------------------------------------------
  /// Sum of all threads' cycle clocks: the simulated program runtime.
  uint64_t totalCycles() const;

  /// Peak heap occupancy, for the memory-overhead experiments.
  uint64_t peakHeapBytes() const { return TheHeap.peakUsedBytes(); }

private:
  /// Simulates the zero-fill of a fresh allocation: one store per cache
  /// line, charged to the allocating thread. This is also the NUMA first
  /// touch, as on a real JVM.
  void touchNewObject(JavaThread &T, ObjectRef Obj, uint64_t Size);

  /// One simulated access of any width (inline: every load/store funnels
  /// through here). Runs against the thread's attached hierarchy — the
  /// shared machine in serial mode, a worker-private one under the
  /// Executor — so parallel quanta never contend here.
  void simulateAccess(JavaThread &T, uint64_t Addr) {
    AccessResult R = T.machine().accessMemory(T.cpu(), Addr);
    T.addCycles(1 + R.LatencyCycles);
    T.pmu().observeAccess(T.cpu(), Addr, R);
  }

  /// Debug-build bounds/liveness checks followed by the simulated access;
  /// the shared head of every sized accessor.
  void preAccess(JavaThread &T, ObjectRef Obj, uint64_t Offset,
                 uint64_t Width) {
    checkAccess(T, Obj, Offset, Width);
    simulateAccess(T, Obj + Offset);
  }

  void checkAccess(const JavaThread &T, ObjectRef Obj, uint64_t Offset,
                   uint64_t Width) const {
    (void)T;
    (void)Obj;
    (void)Offset;
    (void)Width;
    assert(Obj != kNullRef && "null dereference");
    assert(TheHeap.isObjectStart(Obj) && "access to a non-object");
    assert(Offset + Width <= TheHeap.info(Obj).Size &&
           "access beyond object bounds");
  }

  /// Re-points \p T's object memo at \p Obj (out of line: map walk).
  void refreshObjectMemo(JavaThread &T, ObjectRef Obj);
  void invalidateObjectMemos();

  ObjectRef allocateRaw(JavaThread &T, TypeId Type, uint64_t Size,
                        uint64_t Length);

  VmConfig Config;
  MemoryHierarchy Machine;
  Heap TheHeap;
  TypeRegistry Types;
  MethodRegistry Methods;
  JvmtiEnv Jvmti;
  MarkCompactCollector Collector;
  std::deque<JavaThread> Threads;
  std::vector<ObjectRef *> RootSlots;
  std::vector<std::pair<uint64_t, RootProvider>> RootProviders;
  /// Leaf locks (never held while calling out; see the locking-order note
  /// in DjxPerf.h): ThreadsLock guards Threads, RootsLock guards
  /// RootSlots/RootProviders.
  SpinLock ThreadsLock;
  SpinLock RootsLock;
  uint64_t NextThreadId = 1;
  uint64_t NextProviderToken = 1;
  /// GC request ordinal (serial AutoGc and safepoint paths both funnel
  /// through requestGc); FaultInjector keys no-op-collection draws on it.
  uint64_t GcRequests = 0;
  uint32_t NextCpu = 0;
  bool AllocationEventsOn = true;
  bool DeferGcToSafepoint = false;
};

/// RAII helper: pushes a frame on construction, pops on destruction.
class FrameScope {
public:
  FrameScope(JavaThread &T, MethodId Method, uint32_t Bci = 0) : Thread(T) {
    Thread.pushFrame(Method, Bci);
  }
  ~FrameScope() { Thread.popFrame(); }

  /// Updates the current frame's BCI (source position).
  void setBci(uint32_t Bci) { Thread.setBci(Bci); }

  FrameScope(const FrameScope &) = delete;
  FrameScope &operator=(const FrameScope &) = delete;

private:
  JavaThread &Thread;
};

/// RAII collection of GC root slots with stable addresses.
class RootScope {
public:
  explicit RootScope(JavaVm &Vm) : Vm(Vm) {}
  ~RootScope() {
    for (ObjectRef &Slot : Slots)
      Vm.removeRoot(&Slot);
  }

  /// Adds a rooted slot and returns a stable reference to it.
  ObjectRef &add(ObjectRef Init = kNullRef) {
    Slots.push_back(Init);
    Vm.addRoot(&Slots.back());
    return Slots.back();
  }

  RootScope(const RootScope &) = delete;
  RootScope &operator=(const RootScope &) = delete;

private:
  JavaVm &Vm;
  std::deque<ObjectRef> Slots;
};

} // namespace djx

#endif // DJX_JVM_JAVAVM_H
