//===- Jvmti.cpp - Tool interface of the MiniJVM ---------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "jvm/Jvmti.h"

using namespace djx;

void JvmtiEnv::clearSubscribers() {
  ThreadStartFns.clear();
  ThreadEndFns.clear();
  AllocationFns.clear();
  GcStartFns.clear();
  QuantumEndFns.clear();
  GcFinishFns.clear();
  ObjectMoveFns.clear();
  ObjectFreeFns.clear();
}

void JvmtiEnv::publishThreadStart(JavaThread &T) const {
  for (const auto &Fn : ThreadStartFns)
    Fn(T);
}

void JvmtiEnv::publishThreadEnd(JavaThread &T) const {
  for (const auto &Fn : ThreadEndFns)
    Fn(T);
}

void JvmtiEnv::publishAllocation(const AllocationEvent &E) const {
  if (AllocationFns.empty())
    return;
  AllocCallbacks.fetch_add(1, std::memory_order_relaxed);
  for (const auto &Fn : AllocationFns)
    Fn(E);
}

void JvmtiEnv::publishGcStart() const {
  for (const auto &Fn : GcStartFns)
    Fn();
}

void JvmtiEnv::publishQuantumEnd(JavaThread &T) const {
  for (const auto &Fn : QuantumEndFns)
    Fn(T);
}

void JvmtiEnv::publishGcFinish(const GcStats &S) const {
  for (const auto &Fn : GcFinishFns)
    Fn(S);
}

void JvmtiEnv::publishObjectMove(const ObjectMoveEvent &E) const {
  for (const auto &Fn : ObjectMoveFns)
    Fn(E);
}

void JvmtiEnv::publishObjectFree(const ObjectFreeEvent &E) const {
  for (const auto &Fn : ObjectFreeFns)
    Fn(E);
}
