//===- Jvmti.h - Tool interface of the MiniJVM ------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniJVM's tool interface, mirroring the JVMTI surface DJXPerf uses
/// (§3, §4): thread start/end callbacks, GC start/finish callbacks (the
/// latter doubling as the GarbageCollectorMXBean notification), per-object
/// move events (the memmove interposition of §4.5), per-object free events
/// (the finalize interposition), and allocation events (the Java agent's
/// instrumented allocation hooks report through here).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_JVM_JVMTI_H
#define DJX_JVM_JVMTI_H

#include "jvm/JavaThread.h"
#include "jvm/ObjectModel.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace djx {

/// Payload of an allocation event (the "post-allocation hook" of §4.1):
/// object pointer, type, and size, raised on the allocating thread.
struct AllocationEvent {
  JavaThread *Thread = nullptr;
  ObjectRef Object = kNullRef;
  TypeId Type = 0;
  std::string TypeName;
  uint64_t Size = 0;
  uint64_t Length = 0;
};

/// One object relocation performed by the compacting GC.
struct ObjectMoveEvent {
  ObjectRef OldAddr = kNullRef;
  ObjectRef NewAddr = kNullRef;
  uint64_t Size = 0;
};

/// One object reclaimed by the GC (finalize-equivalent).
struct ObjectFreeEvent {
  ObjectRef Addr = kNullRef;
  uint64_t Size = 0;
};

/// Summary delivered with the GC-finish notification.
struct GcStats {
  uint64_t Collections = 0;
  uint64_t ObjectsMoved = 0;
  uint64_t ObjectsFreed = 0;
  uint64_t BytesFreed = 0;
};

/// Callback registry. Agents subscribe; the VM and GC publish.
class JvmtiEnv {
public:
  using ThreadCallback = std::function<void(JavaThread &)>;
  using AllocationCallback = std::function<void(const AllocationEvent &)>;
  using GcStartCallback = std::function<void()>;
  /// Fired by the Executor after each interpreter quantum of a simulated
  /// thread, on the host worker that ran it. The batched sample resolver
  /// drains the thread's ring here; the callback must only touch state
  /// owned by \p T (it runs concurrently with other threads' quanta).
  using QuantumEndCallback = std::function<void(JavaThread &)>;
  using GcFinishCallback = std::function<void(const GcStats &)>;
  using ObjectMoveCallback = std::function<void(const ObjectMoveEvent &)>;
  using ObjectFreeCallback = std::function<void(const ObjectFreeEvent &)>;

  void onThreadStart(ThreadCallback Fn) {
    ThreadStartFns.push_back(std::move(Fn));
  }
  void onThreadEnd(ThreadCallback Fn) {
    ThreadEndFns.push_back(std::move(Fn));
  }
  void onAllocation(AllocationCallback Fn) {
    AllocationFns.push_back(std::move(Fn));
  }
  void onGcStart(GcStartCallback Fn) { GcStartFns.push_back(std::move(Fn)); }
  void onQuantumEnd(QuantumEndCallback Fn) {
    QuantumEndFns.push_back(std::move(Fn));
  }
  void onGcFinish(GcFinishCallback Fn) {
    GcFinishFns.push_back(std::move(Fn));
  }
  void onObjectMove(ObjectMoveCallback Fn) {
    ObjectMoveFns.push_back(std::move(Fn));
  }
  void onObjectFree(ObjectFreeCallback Fn) {
    ObjectFreeFns.push_back(std::move(Fn));
  }

  /// Drops every subscription (agent detach).
  void clearSubscribers();

  // Publication side (VM / GC internal).
  void publishThreadStart(JavaThread &T) const;
  void publishThreadEnd(JavaThread &T) const;
  void publishAllocation(const AllocationEvent &E) const;
  void publishGcStart() const;
  void publishQuantumEnd(JavaThread &T) const;
  void publishGcFinish(const GcStats &S) const;
  void publishObjectMove(const ObjectMoveEvent &E) const;
  void publishObjectFree(const ObjectFreeEvent &E) const;

  /// Number of allocation callbacks delivered (drives the overhead model).
  /// Atomic: allocation events are published from concurrent host workers
  /// under the Executor; a relaxed sum stays deterministic.
  uint64_t allocationCallbacksDelivered() const {
    return AllocCallbacks.load(std::memory_order_relaxed);
  }

private:
  std::vector<ThreadCallback> ThreadStartFns;
  std::vector<ThreadCallback> ThreadEndFns;
  std::vector<AllocationCallback> AllocationFns;
  std::vector<GcStartCallback> GcStartFns;
  std::vector<QuantumEndCallback> QuantumEndFns;
  std::vector<GcFinishCallback> GcFinishFns;
  std::vector<ObjectMoveCallback> ObjectMoveFns;
  std::vector<ObjectFreeCallback> ObjectFreeFns;
  mutable std::atomic<uint64_t> AllocCallbacks{0};
};

} // namespace djx

#endif // DJX_JVM_JVMTI_H
