//===- MethodRegistry.cpp - Methods, line tables, JIT instances -----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "jvm/MethodRegistry.h"

using namespace djx;

MethodId MethodRegistry::registerMethod(const std::string &ClassName,
                                        const std::string &MethodName,
                                        std::vector<LineEntry> LineTable) {
#ifndef NDEBUG
  for (size_t I = 1; I < LineTable.size(); ++I)
    assert(LineTable[I - 1].Bci < LineTable[I].Bci &&
           "line table must be sorted by BCI");
#endif
  assert(!Frozen && "method registered while the registry is frozen "
                    "(parallel execution in progress)");
  MethodInfo Info;
  Info.ClassName = ClassName;
  Info.MethodName = MethodName;
  Info.LineTable = std::move(LineTable);
  Methods.push_back(std::move(Info));
  return static_cast<MethodId>(Methods.size()) - 1;
}

void MethodRegistry::rejit(MethodId Id) {
  assert(Id < Methods.size() && "bad method id");
  ++Methods[Id].JitInstances;
}

uint32_t MethodRegistry::lineForBci(MethodId Id, uint32_t Bci) const {
  const MethodInfo &Info = get(Id);
  uint32_t Line = 0;
  for (const LineEntry &E : Info.LineTable) {
    if (E.Bci > Bci)
      break;
    Line = E.Line;
  }
  return Line;
}

MethodId MethodRegistry::find(const std::string &ClassName,
                              const std::string &MethodName) const {
  for (size_t I = 0; I < Methods.size(); ++I)
    if (Methods[I].ClassName == ClassName &&
        Methods[I].MethodName == MethodName)
      return static_cast<MethodId>(I);
  return kInvalidMethod;
}

MethodId MethodRegistry::getOrRegister(const std::string &ClassName,
                                       const std::string &MethodName,
                                       std::vector<LineEntry> LineTable) {
  MethodId Id = find(ClassName, MethodName);
  if (Id != kInvalidMethod)
    return Id;
  return registerMethod(ClassName, MethodName, std::move(LineTable));
}

std::string MethodRegistry::qualifiedName(MethodId Id) const {
  const MethodInfo &Info = get(Id);
  return Info.ClassName + "." + Info.MethodName;
}
