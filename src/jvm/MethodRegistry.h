//===- MethodRegistry.h - Methods, line tables, JIT instances ---*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of methods known to the VM. Each method carries the class and
/// method names plus a BCI -> source-line table — the state DJXPerf queries
/// via JVMTI GetLineNumberTable (§4.4). A method may be JIT-compiled
/// multiple times; each recompilation bumps its instance counter, mirroring
/// the "method ID distinguishes different JITted instances" behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_JVM_METHODREGISTRY_H
#define DJX_JVM_METHODREGISTRY_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace djx {

/// Identifies a method; stable across reJITs.
using MethodId = uint32_t;
constexpr MethodId kInvalidMethod = ~0U;

/// One (BCI, source line) pair; the table is sorted by BCI.
struct LineEntry {
  uint32_t Bci;
  uint32_t Line;
};

/// Immutable metadata for one method.
struct MethodInfo {
  std::string ClassName;
  std::string MethodName;
  std::vector<LineEntry> LineTable;
  /// Number of times the JIT has (re)compiled this method.
  uint32_t JitInstances = 1;
};

/// Owns all MethodInfos; MethodIds index into it.
class MethodRegistry {
public:
  /// Registers a method. \p LineTable must be sorted by BCI.
  MethodId registerMethod(const std::string &ClassName,
                          const std::string &MethodName,
                          std::vector<LineEntry> LineTable);

  /// Marks a recompilation of \p Id (new JIT instance).
  void rejit(MethodId Id);

  const MethodInfo &get(MethodId Id) const {
    assert(Id < Methods.size() && "bad method id");
    return Methods[Id];
  }

  /// JVMTI GetLineNumberTable analogue: source line for \p Bci, i.e. the
  /// line of the last table entry at or before \p Bci (0 when no table).
  uint32_t lineForBci(MethodId Id, uint32_t Bci) const;

  /// "Class.method" display name.
  std::string qualifiedName(MethodId Id) const;

  /// Finds a method by names; returns kInvalidMethod when absent.
  MethodId find(const std::string &ClassName,
                const std::string &MethodName) const;

  /// find() or registerMethod() in one step.
  MethodId getOrRegister(const std::string &ClassName,
                         const std::string &MethodName,
                         std::vector<LineEntry> LineTable);

  size_t size() const { return Methods.size(); }

  /// Concurrency contract: read-mostly, immutable after load. The
  /// Executor freezes the registry while host workers run; registering a
  /// method then asserts in debug builds. Reads need no lock.
  void freeze() { Frozen = true; }
  void unfreeze() { Frozen = false; }
  bool isFrozen() const { return Frozen; }

private:
  bool Frozen = false;
  std::vector<MethodInfo> Methods;
};

} // namespace djx

#endif // DJX_JVM_METHODREGISTRY_H
