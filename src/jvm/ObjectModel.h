//===- ObjectModel.h - Heap object representation ---------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types describing MiniJVM heap objects. Objects live in a flat arena;
/// an ObjectRef is the arena offset of the object's first byte (0 is null,
/// the arena reserves its first word). Reference fields are 8-byte slots
/// inside the object payload whose positions are listed by the type
/// descriptor (instances) or implied (reference arrays); the garbage
/// collector traces and rewrites them during compaction.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_JVM_OBJECTMODEL_H
#define DJX_JVM_OBJECTMODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace djx {

/// Heap reference: arena offset of the object start. 0 is null.
using ObjectRef = uint64_t;
constexpr ObjectRef kNullRef = 0;

/// Index into the VM's type registry.
using TypeId = uint32_t;

/// Describes one class (instance layout) known to the VM.
struct TypeDescriptor {
  std::string Name;
  /// Instance payload size in bytes (arrays compute size from length).
  uint64_t InstanceSize = 0;
  /// Byte offsets of reference-typed fields inside the payload.
  std::vector<uint64_t> RefOffsets;
  /// True for array types; ElemSize/ElemIsRef then apply.
  bool IsArray = false;
  uint32_t ElemSize = 0;
  bool ElemIsRef = false;
};

/// Per-object metadata kept by the heap side table.
struct ObjectInfo {
  TypeId Type = 0;
  /// Payload size in bytes.
  uint64_t Size = 0;
  /// Element count for arrays, 0 otherwise.
  uint64_t Length = 0;
  /// Monotonic allocation id, stable across GC moves.
  uint64_t AllocId = 0;
  /// Marked bit used by the collector.
  bool Marked = false;
};

} // namespace djx

#endif // DJX_JVM_OBJECTMODEL_H
