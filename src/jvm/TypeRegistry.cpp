//===- TypeRegistry.cpp - Class and array type registry --------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "jvm/TypeRegistry.h"

using namespace djx;

TypeRegistry::TypeRegistry() {
  auto PrimArray = [&](const std::string &Name, uint32_t ElemSize) {
    TypeDescriptor D;
    D.Name = Name;
    D.IsArray = true;
    D.ElemSize = ElemSize;
    D.ElemIsRef = false;
    return addType(std::move(D));
  };
  ByteArrayTy = PrimArray("byte[]", 1);
  IntArrayTy = PrimArray("int[]", 4);
  LongArrayTy = PrimArray("long[]", 8);
  FloatArrayTy = PrimArray("float[]", 4);
  DoubleArrayTy = PrimArray("double[]", 8);
}

TypeId TypeRegistry::addType(TypeDescriptor Desc) {
  assert(!Frozen && "type registered while the registry is frozen "
                    "(parallel execution in progress)");
  assert(!NameToId.count(Desc.Name) && "duplicate type name");
  TypeId Id = static_cast<TypeId>(Types.size());
  NameToId.emplace(Desc.Name, Id);
  Types.push_back(std::move(Desc));
  return Id;
}

TypeId TypeRegistry::defineClass(const std::string &Name,
                                 uint64_t InstanceSize,
                                 std::vector<uint64_t> RefOffsets) {
  TypeDescriptor D;
  D.Name = Name;
  D.InstanceSize = InstanceSize;
  D.RefOffsets = std::move(RefOffsets);
#ifndef NDEBUG
  for (uint64_t Off : D.RefOffsets)
    assert(Off + 8 <= InstanceSize && "ref field outside instance");
#endif
  return addType(std::move(D));
}

TypeId TypeRegistry::refArrayType(const std::string &ElemName) {
  std::string Name = ElemName + "[]";
  auto It = NameToId.find(Name);
  if (It != NameToId.end())
    return It->second;
  TypeDescriptor D;
  D.Name = Name;
  D.IsArray = true;
  D.ElemSize = 8;
  D.ElemIsRef = true;
  return addType(std::move(D));
}

TypeId TypeRegistry::byName(const std::string &Name) const {
  auto It = NameToId.find(Name);
  assert(It != NameToId.end() && "unknown type name");
  return It->second;
}
