//===- TypeRegistry.h - Class and array type registry -----------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of TypeDescriptors. Predefines the primitive array types the
/// bytecode `newarray` opcode can request, and lets workloads define classes
/// (instance layouts with reference fields) and reference array types.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_JVM_TYPEREGISTRY_H
#define DJX_JVM_TYPEREGISTRY_H

#include "jvm/ObjectModel.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <vector>

namespace djx {

/// Owns all TypeDescriptors; TypeIds index into it.
class TypeRegistry {
public:
  TypeRegistry();

  /// Defines an instance class. \p RefOffsets are byte offsets of
  /// reference fields (each 8 bytes wide, inside [0, InstanceSize)).
  TypeId defineClass(const std::string &Name, uint64_t InstanceSize,
                     std::vector<uint64_t> RefOffsets = {});

  /// Defines (or returns) the reference array type "Name[]".
  TypeId refArrayType(const std::string &ElemName);

  /// Primitive array types, matching `newarray` operands.
  TypeId byteArray() const { return ByteArrayTy; }
  TypeId intArray() const { return IntArrayTy; }
  TypeId longArray() const { return LongArrayTy; }
  TypeId floatArray() const { return FloatArrayTy; }
  TypeId doubleArray() const { return DoubleArrayTy; }

  const TypeDescriptor &get(TypeId Id) const {
    assert(Id < Types.size() && "bad type id");
    return Types[Id];
  }

  /// Looks up a type by name; asserts when missing.
  TypeId byName(const std::string &Name) const;
  bool hasName(const std::string &Name) const {
    return NameToId.count(Name) != 0;
  }

  size_t size() const { return Types.size(); }

  /// Concurrency contract: the registry is *read-mostly, immutable after
  /// load*. The Executor freezes it while host workers run; defining a
  /// type then is a bug (it could relocate descriptors under concurrent
  /// readers) and asserts in debug builds. Reads need no lock.
  void freeze() { Frozen = true; }
  void unfreeze() { Frozen = false; }
  bool isFrozen() const { return Frozen; }

private:
  TypeId addType(TypeDescriptor Desc);

  bool Frozen = false;
  std::vector<TypeDescriptor> Types;
  std::unordered_map<std::string, TypeId> NameToId;
  TypeId ByteArrayTy = 0;
  TypeId IntArrayTy = 0;
  TypeId LongArrayTy = 0;
  TypeId FloatArrayTy = 0;
  TypeId DoubleArrayTy = 0;
};

} // namespace djx

#endif // DJX_JVM_TYPEREGISTRY_H
