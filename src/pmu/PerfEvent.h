//===- PerfEvent.h - Precise PMU event definitions --------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event kinds and record layout for the simulated PMU. The names mirror
/// the Intel precise events DJXPerf programs (§4.1): L1 cache misses
/// (MEM_LOAD_UOPS_RETIRED:L1_MISS), DTLB misses (DTLB_LOAD_MISSES), and
/// load latency (MEM_TRANS_RETIRED:LOAD_LATENCY). The sample record carries
/// the PEBS effective address plus the PERF_SAMPLE_CPU field DJXPerf uses
/// for NUMA diagnosis (§4.3).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_PMU_PERFEVENT_H
#define DJX_PMU_PERFEVENT_H

#include "sim/NumaTopology.h"

#include <cstdint>
#include <string>

namespace djx {

/// Hardware events the simulated PMU can count and sample.
enum class PerfEventKind : uint8_t {
  /// Every retired memory access (loads and stores).
  MemAccess,
  /// MEM_LOAD_UOPS_RETIRED:L1_MISS — DJXPerf's default event (§5.1).
  L1Miss,
  /// MEM_LOAD_UOPS_RETIRED:L2_MISS.
  L2Miss,
  /// MEM_LOAD_UOPS_RETIRED:L3_MISS.
  L3Miss,
  /// DTLB_LOAD_MISSES.
  TlbMiss,
  /// MEM_TRANS_RETIRED:LOAD_LATENCY — accesses slower than a threshold.
  LoadLatency,
  /// Accesses served from a remote NUMA node's DRAM.
  RemoteAccess,
};

/// Printable mnemonic matching the Intel event the kind models.
std::string perfEventName(PerfEventKind Kind);

/// Configuration passed to PmuContext::openEvent — the moral equivalent of
/// a perf_event_attr handed to perf_event_open(2).
struct PerfEventAttr {
  PerfEventKind Kind = PerfEventKind::L1Miss;
  /// Deliver one sample every SamplePeriod occurrences of the event.
  uint64_t SamplePeriod = 1000;
  /// Latency threshold in cycles; only meaningful for LoadLatency.
  uint32_t LatencyThreshold = 64;
};

/// A PEBS-style precise sample.
struct PerfSample {
  PerfEventKind Kind = PerfEventKind::L1Miss;
  /// PEBS effective address of the sampled load/store.
  uint64_t EffectiveAddress = 0;
  /// PERF_SAMPLE_CPU — the CPU that retired the access.
  uint32_t Cpu = 0;
  /// PERF_SAMPLE_TID — thread owning the virtualised counter.
  uint64_t ThreadId = 0;
  /// PERF_SAMPLE_WEIGHT — access latency in cycles.
  uint32_t LatencyCycles = 0;
  /// NUMA node where the accessed page resides.
  NumaNodeId HomeNode = kInvalidNode;
  /// True when the access was served by a remote node.
  bool RemoteAccess = false;
};

} // namespace djx

#endif // DJX_PMU_PERFEVENT_H
