//===- Pmu.cpp - Per-thread virtualised PMU sampling -----------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "pmu/Pmu.h"

#include <algorithm>
#include <cassert>

using namespace djx;

std::string djx::perfEventName(PerfEventKind Kind) {
  switch (Kind) {
  case PerfEventKind::MemAccess:
    return "MEM_UOPS_RETIRED:ALL";
  case PerfEventKind::L1Miss:
    return "MEM_LOAD_UOPS_RETIRED:L1_MISS";
  case PerfEventKind::L2Miss:
    return "MEM_LOAD_UOPS_RETIRED:L2_MISS";
  case PerfEventKind::L3Miss:
    return "MEM_LOAD_UOPS_RETIRED:L3_MISS";
  case PerfEventKind::TlbMiss:
    return "DTLB_LOAD_MISSES";
  case PerfEventKind::LoadLatency:
    return "MEM_TRANS_RETIRED:LOAD_LATENCY";
  case PerfEventKind::RemoteAccess:
    return "MEM_LOAD_UOPS_L3_MISS_RETIRED:REMOTE_DRAM";
  }
  return "UNKNOWN";
}

int PmuContext::openEvent(const PerfEventAttr &Attr) {
  assert(Attr.SamplePeriod > 0 && "sampling period must be positive");
  EventState E;
  E.Attr = Attr;
  E.PeriodLeft = Attr.SamplePeriod;
  Events.push_back(E);
  InterestMask |= kindBit(Attr.Kind);
  if (Attr.Kind == PerfEventKind::LoadLatency)
    MinLatencyThreshold = std::min(MinLatencyThreshold, Attr.LatencyThreshold);
  return static_cast<int>(Events.size()) - 1;
}

void PmuContext::setSampleHandler(RawSampleHandler Fn, void *Ctx) {
  HandlerFn = Fn;
  HandlerCtx = Ctx;
  HandlerFnStore = nullptr;
}

void PmuContext::setSampleHandler(PerfSampleHandler H) {
  HandlerFnStore = std::move(H);
  if (HandlerFnStore) {
    HandlerFn = [](void *Ctx, const PerfSample &S) {
      (*static_cast<PerfSampleHandler *>(Ctx))(S);
    };
    HandlerCtx = &HandlerFnStore;
  } else {
    HandlerFn = nullptr;
    HandlerCtx = nullptr;
  }
}

bool PmuContext::eventMatches(const EventState &E, const AccessResult &R) {
  switch (E.Attr.Kind) {
  case PerfEventKind::MemAccess:
    return true;
  case PerfEventKind::L1Miss:
    return R.L1Miss;
  case PerfEventKind::L2Miss:
    return R.L2Miss;
  case PerfEventKind::L3Miss:
    return R.L3Miss;
  case PerfEventKind::TlbMiss:
    return R.TlbMiss;
  case PerfEventKind::LoadLatency:
    return R.LatencyCycles >= E.Attr.LatencyThreshold;
  case PerfEventKind::RemoteAccess:
    return R.RemoteAccess;
  }
  return false;
}

void PmuContext::observeMatching(uint32_t Cpu, uint64_t Addr,
                                 const AccessResult &R) {
  for (EventState &E : Events) {
    if (!eventMatches(E, R))
      continue;
    ++E.Count;
    assert(E.PeriodLeft > 0 && "period underflow");
    if (--E.PeriodLeft > 0)
      continue;
    E.PeriodLeft = E.Attr.SamplePeriod;
    ++SamplesDelivered;
    if (!HandlerFn)
      continue;
    PerfSample S;
    S.Kind = E.Attr.Kind;
    S.EffectiveAddress = Addr;
    S.Cpu = Cpu;
    S.ThreadId = ThreadId;
    S.LatencyCycles = R.LatencyCycles;
    S.HomeNode = R.HomeNode;
    S.RemoteAccess = R.RemoteAccess;
    HandlerFn(HandlerCtx, S);
  }
}

uint64_t PmuContext::eventCount(int Fd) const {
  assert(Fd >= 0 && static_cast<size_t>(Fd) < Events.size() &&
         "bad event descriptor");
  return Events[Fd].Count;
}
