//===- Pmu.h - Per-thread virtualised PMU sampling ---------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread virtualised performance-monitoring unit. Real PMUs are
/// per-core and virtualised by the OS for each thread (§3); here PmuContext
/// is the per-thread view. The JVMTI agent opens events at thread start,
/// the MiniJVM reports every memory access via observeAccess(), and when a
/// counter crosses its sampling period the registered handler — DJXPerf's
/// "signal handler" — receives a precise PerfSample synchronously, exactly
/// like a PEBS overflow interrupt delivered to the faulting thread.
///
/// Hot-path design: openEvent() maintains an interest bitmask over event
/// kinds, and observeAccess() (inlined here) compares it against the
/// access's own result bitmask — an access that cannot match any
/// programmed event (e.g. an L1 hit under the default L1-miss preset)
/// never enters the counter loop. Overflow delivery goes through a raw
/// function pointer plus context ("devirtualised"); the std::function
/// overload is kept for convenience and wraps itself in one.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_PMU_PMU_H
#define DJX_PMU_PMU_H

#include "pmu/PerfEvent.h"
#include "sim/MemoryHierarchy.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace djx {

/// Callback invoked on counter overflow; plays the role of the profiler's
/// SIGIO/SIGPROF handler.
using PerfSampleHandler = std::function<void(const PerfSample &)>;

/// Devirtualised overflow handler: plain function pointer plus context,
/// one indirect call per delivered sample.
using RawSampleHandler = void (*)(void *Ctx, const PerfSample &Sample);

/// One thread's set of programmed PMU events.
///
/// Concurrency contract: thread-confined. A PmuContext belongs to one
/// JavaThread and is only driven from whichever host worker is executing
/// that thread's quantum (the Executor's round barriers order those
/// handoffs); overflow handlers run synchronously on the same worker.
/// Configuration (openEvent/setSampleHandler) happens at thread start,
/// before any concurrent execution.
class PmuContext {
public:
  explicit PmuContext(uint64_t ThreadId) : ThreadId(ThreadId) {}

  // Non-copyable/movable: HandlerCtx may point at this object's own
  // HandlerFnStore, which a default copy/move would leave dangling.
  PmuContext(const PmuContext &) = delete;
  PmuContext &operator=(const PmuContext &) = delete;

  /// Programs an event; the moral equivalent of perf_event_open(2).
  /// \returns an event descriptor usable with eventCount().
  int openEvent(const PerfEventAttr &Attr);

  /// Installs the overflow handler shared by all events of this context
  /// (devirtualised form: \p Fn is called with \p Ctx).
  void setSampleHandler(RawSampleHandler Fn, void *Ctx);

  /// Convenience overload wrapping an arbitrary callable; the stored
  /// std::function is invoked through the raw-pointer path.
  void setSampleHandler(PerfSampleHandler Handler);

  /// Starts/stops counting (ioctl PERF_EVENT_IOC_ENABLE / DISABLE).
  void enable() { Enabled = true; }
  void disable() { Enabled = false; }
  bool isEnabled() const { return Enabled; }

  /// Feeds one retired access into every programmed counter. Called by the
  /// MiniJVM for each load/store this thread performs. Overflowing counters
  /// deliver samples synchronously before this returns. Inlined fast path:
  /// accesses whose outcome can't match any programmed event return after
  /// two bitmask instructions.
  void observeAccess(uint32_t Cpu, uint64_t Addr, const AccessResult &R) {
    if (!Enabled)
      return;
    if (!(resultMask(R) & InterestMask))
      return;
    observeMatching(Cpu, Addr, R);
  }

  /// Total occurrences counted for event descriptor \p Fd.
  uint64_t eventCount(int Fd) const;

  /// Total samples delivered across all events.
  uint64_t samplesDelivered() const { return SamplesDelivered; }

  /// Ring-overflow accounting (batched resolution). The profiler records
  /// here how many times this thread's SampleRing filled and self-drained
  /// mid-quantum, and how many delivered samples were dropped at append
  /// time (fault injection) — so overhead accounting sees
  /// captured-vs-dropped per thread, next to the rest of the PMU stats.
  void noteRingOverflowDrain() { ++RingOverflowDrains; }
  void noteRingDroppedSample() { ++RingDroppedSamples; }
  uint64_t ringOverflowDrains() const { return RingOverflowDrains; }
  uint64_t ringDroppedSamples() const { return RingDroppedSamples; }

  uint64_t threadId() const { return ThreadId; }
  size_t numEvents() const { return Events.size(); }

private:
  struct EventState {
    PerfEventAttr Attr;
    uint64_t Count = 0;      // Total occurrences.
    uint64_t PeriodLeft = 0; // Occurrences until next sample.
  };

  static constexpr uint32_t kindBit(PerfEventKind K) {
    return 1u << static_cast<uint32_t>(K);
  }

  /// Bitmask of event kinds this access can satisfy. LoadLatency is
  /// included when the access is at least as slow as the *least* demanding
  /// programmed threshold; per-event thresholds re-check in the slow path.
  uint32_t resultMask(const AccessResult &R) const {
    uint32_t M = kindBit(PerfEventKind::MemAccess);
    if (R.L1Miss)
      M |= kindBit(PerfEventKind::L1Miss);
    if (R.L2Miss)
      M |= kindBit(PerfEventKind::L2Miss);
    if (R.L3Miss)
      M |= kindBit(PerfEventKind::L3Miss);
    if (R.TlbMiss)
      M |= kindBit(PerfEventKind::TlbMiss);
    if (R.LatencyCycles >= MinLatencyThreshold)
      M |= kindBit(PerfEventKind::LoadLatency);
    if (R.RemoteAccess)
      M |= kindBit(PerfEventKind::RemoteAccess);
    return M;
  }

  /// The counter loop, reached only when some event may match.
  void observeMatching(uint32_t Cpu, uint64_t Addr, const AccessResult &R);

  static bool eventMatches(const EventState &E, const AccessResult &R);

  uint64_t ThreadId;
  bool Enabled = false;
  std::vector<EventState> Events;
  /// Union of kindBit() over programmed events.
  uint32_t InterestMask = 0;
  /// Smallest LatencyThreshold among LoadLatency events (~0 when none).
  uint32_t MinLatencyThreshold = ~0u;
  /// Devirtualised handler + context; HandlerFnStore owns the callable
  /// when the std::function overload was used.
  RawSampleHandler HandlerFn = nullptr;
  void *HandlerCtx = nullptr;
  PerfSampleHandler HandlerFnStore;
  uint64_t SamplesDelivered = 0;
  uint64_t RingOverflowDrains = 0;
  uint64_t RingDroppedSamples = 0;
};

} // namespace djx

#endif // DJX_PMU_PMU_H
