//===- Pmu.h - Per-thread virtualised PMU sampling ---------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread virtualised performance-monitoring unit. Real PMUs are
/// per-core and virtualised by the OS for each thread (§3); here PmuContext
/// is the per-thread view. The JVMTI agent opens events at thread start,
/// the MiniJVM reports every memory access via observeAccess(), and when a
/// counter crosses its sampling period the registered handler — DJXPerf's
/// "signal handler" — receives a precise PerfSample synchronously, exactly
/// like a PEBS overflow interrupt delivered to the faulting thread.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_PMU_PMU_H
#define DJX_PMU_PMU_H

#include "pmu/PerfEvent.h"
#include "sim/MemoryHierarchy.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace djx {

/// Callback invoked on counter overflow; plays the role of the profiler's
/// SIGIO/SIGPROF handler.
using PerfSampleHandler = std::function<void(const PerfSample &)>;

/// One thread's set of programmed PMU events.
class PmuContext {
public:
  explicit PmuContext(uint64_t ThreadId) : ThreadId(ThreadId) {}

  /// Programs an event; the moral equivalent of perf_event_open(2).
  /// \returns an event descriptor usable with eventCount().
  int openEvent(const PerfEventAttr &Attr);

  /// Installs the overflow handler shared by all events of this context.
  void setSampleHandler(PerfSampleHandler Handler);

  /// Starts/stops counting (ioctl PERF_EVENT_IOC_ENABLE / DISABLE).
  void enable() { Enabled = true; }
  void disable() { Enabled = false; }
  bool isEnabled() const { return Enabled; }

  /// Feeds one retired access into every programmed counter. Called by the
  /// MiniJVM for each load/store this thread performs. Overflowing counters
  /// deliver samples synchronously before this returns.
  void observeAccess(uint32_t Cpu, uint64_t Addr, const AccessResult &R);

  /// Total occurrences counted for event descriptor \p Fd.
  uint64_t eventCount(int Fd) const;

  /// Total samples delivered across all events.
  uint64_t samplesDelivered() const { return SamplesDelivered; }

  uint64_t threadId() const { return ThreadId; }
  size_t numEvents() const { return Events.size(); }

private:
  struct EventState {
    PerfEventAttr Attr;
    uint64_t Count = 0;      // Total occurrences.
    uint64_t PeriodLeft = 0; // Occurrences until next sample.
  };

  static bool eventMatches(const EventState &E, const AccessResult &R);

  uint64_t ThreadId;
  bool Enabled = false;
  std::vector<EventState> Events;
  PerfSampleHandler Handler;
  uint64_t SamplesDelivered = 0;
};

} // namespace djx

#endif // DJX_PMU_PMU_H
