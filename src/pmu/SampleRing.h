//===- SampleRing.h - Worker-private buffered-sample ring -------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-capacity buffer for PMU samples whose identity resolution is
/// deferred. The overflow "signal handler" runs synchronously on the
/// faulting thread; with batched resolution it captures only what must be
/// read at sample time — the PEBS effective address, the access context
/// interned into the thread's CCT, the event kind, and the sampling CPU —
/// and appends a BufferedSample here. A per-quantum drain resolves the
/// whole batch against the live-object index's epoch snapshot, sorted by
/// address, amortizing synchronization from per-sample to per-quantum.
///
/// Concurrency contract: thread-confined. Each monitored thread owns one
/// ring; the worker executing that thread's quantum is the only appender,
/// and drains happen either on that same worker (quantum end, capacity) or
/// with the world stopped (GC start, profiler stop).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_PMU_SAMPLERING_H
#define DJX_PMU_SAMPLERING_H

#include "pmu/PerfEvent.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace djx {

/// One deferred sample: everything handleSample() must capture while the
/// faulting thread's stack and counters are live.
struct BufferedSample {
  /// PEBS effective address (resolved against the index at drain time).
  uint64_t EffectiveAddress = 0;
  /// Access context, interned into the owning thread's CCT at sample
  /// time (interning order defines node ids, so it cannot be deferred).
  uint32_t AccessNode = 0;
  /// PERF_SAMPLE_CPU, for the NUMA diagnosis at drain time.
  uint32_t Cpu = 0;
  /// Which programmed event overflowed.
  PerfEventKind Kind = PerfEventKind::L1Miss;
};

/// Bounded append buffer with drain-in-place access.
class SampleRing {
public:
  /// Capacity bound: a drain is forced when the ring fills, so untriggered
  /// windows (a serial workload between GCs) stay at O(capacity) memory.
  static constexpr size_t kCapacity = 4096;

  /// Appends one sample. \returns true when the ring is now full and the
  /// owner must drain before the next append.
  bool push(const BufferedSample &S) {
    if (Samples.capacity() == 0)
      Samples.reserve(kCapacity);
    ++Appends;
    Samples.push_back(S);
    return Samples.size() >= kCapacity;
  }

  /// Records a sample rejected at append time (injected overflow): the
  /// append ordinal still advances — it is the logical coordinate fault
  /// draws key on, and must count attempts, not successes.
  void noteDrop() {
    ++Appends;
    ++Drops;
  }
  /// Records a capacity-forced mid-quantum self-drain (the ring filled
  /// between scheduled drain points).
  void noteCapacityDrain() { ++CapacityDrains; }

  /// Append attempts (successful or dropped) over the ring's lifetime.
  uint64_t totalAppends() const { return Appends; }
  /// Samples rejected at append time (injected overflow).
  uint64_t droppedSamples() const { return Drops; }
  /// Capacity-forced mid-quantum self-drains.
  uint64_t capacityDrains() const { return CapacityDrains; }

  bool empty() const { return Samples.empty(); }
  size_t size() const { return Samples.size(); }

  /// Drain-side access: the owner may reorder entries in place (the
  /// batched resolver sorts by address), then clear().
  std::vector<BufferedSample> &entries() { return Samples; }
  void clear() { Samples.clear(); }

private:
  std::vector<BufferedSample> Samples;
  uint64_t Appends = 0;
  uint64_t Drops = 0;
  uint64_t CapacityDrains = 0;
};

} // namespace djx

#endif // DJX_PMU_SAMPLERING_H
