//===- Executor.cpp - Host-thread executor for simulated threads -----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "runtime/Executor.h"

#include "core/Analyzer.h"
#include "support/FaultInjector.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace djx;

namespace {

/// Stateless mix for FuzzSchedule decisions (splitmix64 finalizer over a
/// combined key). A shared PRNG stream would be consumed in host order by
/// concurrent workers; hashing (seed, logical coordinates) keeps every
/// draw a function of logical state, so fuzzed schedules stay
/// jobs-invariant.
uint64_t fuzzMix(uint64_t Seed, uint64_t A, uint64_t B, uint64_t C) {
  uint64_t Z = Seed ^ (A * 0x9E3779B97F4A7C15ULL) ^
               (B * 0xBF58476D1CE4E5B9ULL) ^ (C * 0x94D049BB133111EBULL);
  Z ^= Z >> 30;
  Z *= 0xBF58476D1CE4E5B9ULL;
  Z ^= Z >> 27;
  Z *= 0x94D049BB133111EBULL;
  Z ^= Z >> 31;
  return Z;
}

/// Uniform double in [0, 1) from a mixed value.
double fuzzUnit(uint64_t Mixed) {
  return static_cast<double>(Mixed >> 11) * 0x1.0p-53;
}

} // namespace

Executor::Executor(JavaVm &Vm, ExecutorConfig Cfg)
    : Vm(Vm), Config(Cfg) {
  assert(Config.QuantumSteps > 0 && "quantum must be positive");
  assert((!Config.Fuzz.Enabled ||
          (Config.Fuzz.MinQuantumSteps > 0 &&
           Config.Fuzz.MinQuantumSteps <= Config.Fuzz.MaxQuantumSteps)) &&
         "fuzz quantum range must be a nonempty positive interval");
  Jobs = Config.Jobs ? Config.Jobs
                     : std::max(1u, std::thread::hardware_concurrency());
}

uint64_t Executor::quantumFor(size_t TaskIndex) const {
  const FuzzSchedule &F = Config.Fuzz;
  if (!F.Enabled)
    return Config.QuantumSteps;
  uint64_t Span = F.MaxQuantumSteps - F.MinQuantumSteps + 1;
  // Key 1: the per-round quantum draw. Rounds is read pre-increment at
  // every call site (both schedules assign budgets before bumping it).
  return F.MinQuantumSteps +
         fuzzMix(F.Seed, Rounds, TaskIndex, 1) % Span;
}

void Executor::maybeFuzzForcedGc(uint64_t Round) {
  const FuzzSchedule &F = Config.Fuzz;
  // Key 2: the forced-GC draw. Runs with the world stopped (the serial
  // loop's barrier, or the MT closer with every peer quiesced on the
  // ticket), exactly where a park-triggered safepoint would run. An empty
  // requester list charges no pause, but the collection itself — moves,
  // frees, index relocations, hierarchy flushes — is real, which is the
  // point: GC timing becomes a seed draw instead of a shard-occupancy
  // accident.
  if (!F.Enabled || fuzzUnit(fuzzMix(F.Seed, Round, 0, 2)) >= F.ForcedGcChance)
    return;
  Safepoint.stopTheWorldGc(Vm, {});
  invalidateTraces();
  applyNumaPlacement();
}

void Executor::invalidateTraces() {
  for (auto &T : Tasks)
    T->Interp->invalidateTraces();
}

Executor::~Executor() {
  // run() joins its own workers; this only matters if run() never ran or
  // unwound exceptionally. The empty lock/unlock rendezvous mirrors
  // publishIteration: a worker mid-predicate cannot miss the store and
  // then sleep through the notify.
  SessionDone.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> L(WakeMutex); }
  WakeCv.notify_all();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
}

size_t Executor::addThread(BytecodeProgram &Program,
                           const std::string &Entry,
                           const std::vector<Value> &Args,
                           const std::string &Name, uint32_t Cpu) {
  auto T = std::make_unique<Task>();
  T->Index = Tasks.size();
  // One heap shard per task is a hard requirement: Heap::allocate is
  // lock-free precisely because each shard has a single owner, and the
  // determinism argument rests on it. Configure VmConfig.HeapShards >=
  // the number of simulated threads (parallelVmConfig does).
  if (T->Index >= Vm.heap().numShards())
    throw VmError(VmErrorKind::Internal,
                  "Executor task " + std::to_string(T->Index) +
                      " needs its own heap shard but the VM has only " +
                      std::to_string(Vm.heap().numShards()) +
                      " (set VmConfig.HeapShards >= task count)");
  // Deterministic CPU placement spread across NUMA nodes, independent of
  // the VM's own NextCpu state (and of Jobs).
  if (Cpu == JavaVm::kAnyCpu)
    Cpu = cpuForTask(T->Index);
  T->Thread = &Vm.startThread(Name, Cpu);
  // Worker-private hierarchy: same machine configuration, private
  // cache/TLB/NUMA/stats state. Merged deterministically afterwards.
  T->Machine = std::make_unique<MemoryHierarchy>(Vm.config().Machine);
  T->Thread->setMachine(T->Machine.get());
  T->Thread->setHeapShard(static_cast<unsigned>(T->Index));
  T->Interp = std::make_unique<Interpreter>(Vm, Program, *T->Thread);
  T->Interp->setTier(Config.Tier);
  T->Interp->startCall(Entry, Args);
  Tasks.push_back(std::move(T));
  return Tasks.size() - 1;
}

uint32_t Executor::cpuForTask(size_t Index) const {
  const NumaConfig &N = Vm.config().Machine.Numa;
  uint32_t Node = static_cast<uint32_t>(Index % N.NumNodes);
  uint32_t Slot = static_cast<uint32_t>((Index / N.NumNodes) % N.CpusPerNode);
  return Node * N.CpusPerNode + Slot;
}

void Executor::applyNumaPlacement() {
  const Heap &H = Vm.heap();
  auto Apply = [&](MemoryHierarchy &M) {
    NumaTopology &Numa = M.numa();
    uint32_t NumNodes = Numa.numNodes();
    uint64_t PageBytes = Numa.config().PageBytes;
    for (unsigned S = 0; S < H.numShards(); ++S) {
      uint64_t Base = H.shardBase(S);
      uint64_t Limit = H.shardLimit(S);
      if (Limit <= Base)
        continue;
      switch (Config.Policy) {
      case NumaPolicy::FirstTouch: {
        // Shard pages are home on the owner's node: the owner's
        // allocation zero-fill is the first touch of every page of its
        // shard, so this *is* global first-touch, made deterministic.
        NumaNodeId Owner = S < Tasks.size()
                               ? Numa.nodeOfCpu(Tasks[S]->Thread->cpu())
                               : Numa.nodeOfCpu(cpuForTask(S));
        Numa.bindRange(Base, Limit - Base, Owner);
        break;
      }
      case NumaPolicy::Bind:
        // numa_alloc_onnode / membind: one node serves the whole heap.
        Numa.bindRange(Base, Limit - Base, 0);
        break;
      case NumaPolicy::Interleave:
        // Absolute page-number round-robin (rather than the cursor-based
        // interleaveRange) so re-application after a compaction maps each
        // page to the same node it had before.
        for (uint64_t A = Base; A < Limit; A += PageBytes)
          Numa.movePage(A, static_cast<NumaNodeId>(Numa.pageOf(A) %
                                                   NumNodes));
        break;
      }
    }
  };
  Apply(Vm.machine());
  for (auto &T : Tasks)
    Apply(*T->Machine);
}

void Executor::runQuantum(Task &T) {
  // Injected QuantumClaim fault: keyed on (round, task) — pure logical
  // coordinates, so the same quantum stalls for every --jobs value. Only
  // armed under a running watchdog; without one the stall would be the
  // very hang this machinery exists to prevent.
  if (WatchdogArmed.load(std::memory_order_relaxed) &&
      FaultInjector::shouldFail(FaultSite::QuantumClaim, T.Round, T.Index)) {
    simulateStall(T);
    return;
  }
  const FuzzSchedule &F = Config.Fuzz;
  for (;;) {
    // Key 3: the split-drain draw. Chunking the budget with a drain
    // between chunks must be invisible to results — the batched resolver
    // only guarantees rings drain *at least* at quantum ends — so fuzzing
    // inserts extra drain points at positions keyed to logical progress
    // (the task's step count), never to host timing.
    uint64_t Chunk = T.StepsLeft;
    uint64_t Steps0 = T.Interp->stepsExecuted();
    if (F.Enabled && Chunk > 1) {
      uint64_t H = fuzzMix(F.Seed, Steps0, T.Index, 3);
      if (fuzzUnit(H) < F.SplitDrainChance)
        Chunk = 1 + fuzzMix(F.Seed, Steps0, T.Index, 4) % Chunk;
    }
    bool Parked = false;
    runChunk(T, Chunk, Parked);
    // Drain after every chunk, not just the last: each publish is a legal
    // quantum-end drain point for the owning worker.
    Vm.jvmti().publishQuantumEnd(*T.Thread);
    Heartbeat.fetch_add(1, std::memory_order_relaxed);
    if (Parked || T.Done || T.StepsLeft == 0)
      return;
  }
}

void Executor::runChunk(Task &T, uint64_t Budget, bool &Parked) {
  uint64_t Before = T.Interp->stepsExecuted();
  try {
    RunState St = T.Interp->resume(Budget);
    uint64_t Used = T.Interp->stepsExecuted() - Before;
    T.StepsLeft -= std::min(T.StepsLeft, Used);
    if (St == RunState::Done) {
      T.Done = true;
      T.StepsLeft = 0;
    }
    // Paused: chunk budget exhausted; the quantum loop or next round
    // picks the task up again.
  } catch (const GcRequest &R) {
    // The faulting bytecode did not execute (and the interpreter rolled
    // back its step/tick), so a park that repeats at the same step count
    // means the previous safepoint collection freed nothing useful:
    // OutOfMemory, reported like the serial path. (Only shard-local data
    // goes in the message — other workers are still mutating their own
    // shards, so whole-heap queries are off limits here.)
    uint64_t Now = T.Interp->stepsExecuted();
    if (T.LastParkSteps == Now) {
      VmError E(VmErrorKind::OutOfMemory,
                std::to_string(R.Bytes) + " bytes requested in heap shard " +
                    std::to_string(T.Thread->heapShard()) + " (" +
                    std::to_string(Vm.heap().shardLimit(T.Thread->heapShard()) -
                                   Vm.heap().shardBase(T.Thread->heapShard())) +
                    "-byte shard) after a safepoint GC freed nothing");
      E.ThreadId = T.Thread->id();
      E.Steps = Now;
      E.Shard = T.Thread->heapShard();
      throw E;
    }
    T.LastParkSteps = Now;
    uint64_t Used = Now - Before;
    T.StepsLeft -= std::min(T.StepsLeft, Used);
    // Guarantee forward progress after the safepoint even when the fault
    // landed exactly on the quantum's last step.
    if (T.StepsLeft == 0)
      T.StepsLeft = 1;
    T.Parked = true;
    Parked = true;
  }
  // The caller (runQuantum) publishes the quantum-end drain: the batched
  // sample resolver drains this thread's ring on the worker that owns the
  // quantum (before any safepoint can mutate the index under the buffered
  // addresses).
}

bool Executor::roundBarrierStop() {
  // Runs on the single thread driving the barrier (serial driver or MT
  // closer with peers quiesced), so the hook may read every task's
  // profile race-free. Hook first, then MaxRounds: a journal flush for
  // round N must land even when N is the last round.
  bool Stop = false;
  if (Config.OnRoundEnd)
    Stop = Config.OnRoundEnd(Rounds);
  if (Config.MaxRounds != 0 && Rounds >= Config.MaxRounds)
    Stop = true;
  return Stop;
}

std::unique_ptr<Executor::IterBatch> Executor::nextIteration() {
  auto Batch = std::make_unique<IterBatch>();
  // Continue the current round: parked tasks that still owe quantum
  // budget (their peers already finished theirs, so StepsLeft > 0 only
  // survives an iteration via a park).
  for (auto &T : Tasks)
    if (!T->Done && T->StepsLeft > 0)
      Batch->Tasks.push_back(T.get());
  if (Batch->Tasks.empty()) {
    // Round barrier crossed (also true for the final barrier, where no
    // task has budget left): fire the hook before opening the next
    // round, at the same logical point as runSerialLoop's barrier.
    if (Rounds > 0 && roundBarrierStop())
      return nullptr; // Clean early end (hook request or MaxRounds).
    // Open the next round. (Budgets are drawn against the
    // pre-increment Rounds value, matching runSerial.)
    for (auto &T : Tasks)
      if (!T->Done) {
        T->StepsLeft = quantumFor(T->Index);
        T->Round = Rounds + 1;
        Batch->Tasks.push_back(T.get());
      }
    if (Batch->Tasks.empty())
      return nullptr; // Every task is done: session over.
    ++Rounds;
    maybeFuzzForcedGc(Rounds);
  }
  Batch->Remaining.store(Batch->Tasks.size(), std::memory_order_relaxed);
  return Batch;
}

void Executor::publishIteration(std::unique_ptr<IterBatch> Batch) {
  // Reclaim retired batches first: a batch whose generation precedes
  // every worker's announced epoch can no longer be loaded or touched
  // (a worker announces the ticket it observed *before* loading
  // CurrentIter, and that load can only return batches at least that
  // new; its touches of the old batch are sequenced before the next
  // announce's release store, which this acquire read synchronizes
  // with). Keeps retention at O(workers) across arbitrarily long runs.
  if (WorkerEpochs) {
    uint64_t MinEpoch = ~0ULL;
    for (unsigned W = 0; W < NumWorkers; ++W)
      MinEpoch = std::min(
          MinEpoch, WorkerEpochs[W].load(std::memory_order_acquire));
    while (!IterStorage.empty() && IterStorage.front()->Gen < MinEpoch)
      IterStorage.pop_front();
  }
  // Every closer-side write — task state, Rounds, and this storage
  // append — must be sequenced before the CurrentIter publication: the
  // release/acquire pair on CurrentIter is what hands closership to
  // whichever worker empties the new batch, and that worker may race
  // ahead the instant the pointer is visible. (Publishing first and
  // appending after would let two closers mutate IterStorage
  // concurrently.)
  IterBatch *Raw = Batch.get();
  Raw->Gen = RoundTicket.load(std::memory_order_relaxed) + 1;
  IterStorage.push_back(std::move(Batch));
  CurrentIter.store(Raw, std::memory_order_release);
  // Release the ticket, then rendezvous with any sleeper: taking the
  // mutex after the bump guarantees a worker mid-wait either saw the new
  // ticket in its predicate or is registered for this notify.
  RoundTicket.fetch_add(1, std::memory_order_release);
  { std::lock_guard<std::mutex> L(WakeMutex); }
  WakeCv.notify_all();
}

void Executor::closeIteration() {
  // Error abort: a captured VmError already ended the session; do not
  // publish further work (peers are unwinding on SessionDone).
  if (SessionDone.load(std::memory_order_acquire))
    return;
  // Reached by exactly one worker per iteration (its Remaining
  // decrement hit zero), with every peer quiesced on the round ticket —
  // the world is stopped by construction, without a handshake.
  std::vector<JavaThread *> Requesters;
  for (auto &T : Tasks)
    if (T->Parked)
      Requesters.push_back(T->Thread);
  if (!Requesters.empty()) {
    // The sense-reversing fallback: this quiescent point widens into a
    // full stop-the-world safepoint, run right here on the last
    // finisher.
    Safepoint.stopTheWorldGc(Vm, Requesters);
    // Deopt-at-safepoint: compiled traces die with the pause; the flat
    // loop owns every resumed frame (hot sites recompile on next visit).
    invalidateTraces();
    // Re-bind after compaction: objects slid within their shard, and a
    // future heap recycle may have released pages — placement must be
    // restored before any post-GC access.
    applyNumaPlacement();
    for (auto &T : Tasks)
      T->Parked = false;
  }
  std::unique_ptr<IterBatch> Next = nextIteration();
  if (!Next) {
    SessionDone.store(true, std::memory_order_release);
    RoundTicket.fetch_add(1, std::memory_order_release);
    { std::lock_guard<std::mutex> L(WakeMutex); }
    WakeCv.notify_all();
    return;
  }
  publishIteration(std::move(Next));
}

uint64_t Executor::waitForTicket(uint64_t Seen) {
  // Short spin: round transitions are fast when peers are actually
  // running. Then sleep — a safepoint GC (or an oversubscribed host) can
  // hold the ticket arbitrarily long, and spinning through it would
  // steal the closer's cycles.
  for (int I = 0; I < 256; ++I) {
    if (RoundTicket.load(std::memory_order_acquire) != Seen ||
        SessionDone.load(std::memory_order_acquire))
      return RoundTicket.load(std::memory_order_acquire);
    cpuRelax();
  }
  std::unique_lock<std::mutex> L(WakeMutex);
  WakeCv.wait(L, [&] {
    return RoundTicket.load(std::memory_order_acquire) != Seen ||
           SessionDone.load(std::memory_order_acquire);
  });
  return RoundTicket.load(std::memory_order_acquire);
}

void Executor::sessionLoop(unsigned Worker) {
  // Host-side fuzz jitter: a per-worker PRNG (free-running, *not* keyed
  // to logical state) perturbs when this worker claims work. Results must
  // be interleaving-invariant, so this may shake out races but can never
  // legally change a byte of output.
  const FuzzSchedule &F = Config.Fuzz;
  Random Jitter(F.Seed ^ (0x5DEECE66DULL * (Worker + 1)));
  uint64_t Seen = RoundTicket.load(std::memory_order_acquire);
  for (;;) {
    if (SessionDone.load(std::memory_order_acquire))
      return;
    if (F.Enabled && Jitter.nextBool(F.WorkerJitterChance)) {
      uint64_t Spins = Jitter.nextBelow(512);
      if (Spins == 0)
        std::this_thread::yield();
      for (uint64_t I = 0; I < Spins; ++I)
        cpuRelax();
    }
    // Epoch announcement: pins every batch published at or after the
    // ticket value read here until the next announcement. Must precede
    // the CurrentIter load (the load returns batches >= this epoch).
    WorkerEpochs[Worker].store(RoundTicket.load(std::memory_order_acquire),
                               std::memory_order_release);
    IterBatch *B = CurrentIter.load(std::memory_order_acquire);
    size_t I = B->Next.fetch_add(1, std::memory_order_relaxed);
    if (I < B->Tasks.size()) {
      Task &T = *B->Tasks[I];
      WorkerClaims[Worker].store(T.Index + 1, std::memory_order_release);
      try {
        runQuantum(T);
      } catch (VmError &E) {
        // First-error capture: this worker's quantum failed. Attribute
        // the error to its task where the throw site could not, record
        // it, and unwind — peers observe SessionDone at their next claim
        // or ticket check (the next round barrier, in effect).
        if (E.ThreadId == VmError::kNoThread)
          E.ThreadId = T.Thread->id();
        if (E.Steps == 0)
          E.Steps = T.Interp->stepsExecuted();
        WorkerClaims[Worker].store(0, std::memory_order_release);
        recordError(std::move(E));
        return;
      }
      WorkerClaims[Worker].store(0, std::memory_order_release);
      if (B->Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
        closeIteration();
      continue;
    }
    // Batch exhausted (possibly a stale pointer from a previous
    // iteration): wait for the ticket to move, then reload.
    Seen = waitForTicket(Seen);
  }
}

void Executor::runSerial() {
  // The legacy serial path: the same logical schedule, driven inline in
  // thread-id order on the calling host thread. A VmError from any
  // quantum ends the session exactly like the MT path's first-error
  // capture (there is only one driver, so it is trivially "first").
  try {
    runSerialLoop();
  } catch (VmError &E) {
    recordError(std::move(E));
  }
}

void Executor::runSerialLoop() {
  for (;;) {
    bool AnyActive = false;
    for (auto &T : Tasks)
      if (!T->Done) {
        T->StepsLeft = quantumFor(T->Index);
        T->Round = Rounds + 1;
        AnyActive = true;
      }
    if (!AnyActive)
      break;
    ++Rounds;
    maybeFuzzForcedGc(Rounds);
    for (;;) {
      bool Ran = false;
      for (auto &T : Tasks)
        if (!T->Done && T->StepsLeft > 0 && !T->Parked) {
          runQuantum(*T);
          // A watchdog-declared stall (injected or real) ends the
          // session while this driver is still inside its round.
          if (SessionDone.load(std::memory_order_acquire))
            return;
          Ran = true;
        }
      std::vector<JavaThread *> Requesters;
      for (auto &T : Tasks)
        if (T->Parked)
          Requesters.push_back(T->Thread);
      if (Requesters.empty()) {
        if (!Ran)
          break;
        continue;
      }
      Safepoint.stopTheWorldGc(Vm, Requesters);
      invalidateTraces();
      applyNumaPlacement();
      for (auto &T : Tasks)
        T->Parked = false;
    }
    // Round barrier: every task is Done or out of budget. Same logical
    // point as the MT closer's empty continue-batch.
    if (roundBarrierStop())
      return;
  }
}

void Executor::recordError(VmError &&E) {
  {
    std::lock_guard<std::mutex> L(ErrorLock);
    if (!FirstError)
      FirstError = std::move(E);
  }
  // End the session: peers unwind at their next claim or ticket check.
  // The empty lock/unlock rendezvous mirrors publishIteration so a
  // worker mid-predicate cannot miss the store and sleep forever.
  SessionDone.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> L(WakeMutex); }
  WakeCv.notify_all();
}

void Executor::simulateStall(Task &T) {
  StalledTask.store(T.Index + 1, std::memory_order_release);
  while (!SessionDone.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

VmError Executor::buildStallError() const {
  // Built from atomics and immutable fields only: the stalled workers
  // are still alive and their Task/Interpreter state is in motion.
  std::string Dump =
      "no forward progress for " + std::to_string(Config.StallTimeoutMs) +
      " ms (round ticket " +
      std::to_string(RoundTicket.load(std::memory_order_acquire)) +
      ", heartbeat " +
      std::to_string(Heartbeat.load(std::memory_order_acquire)) + ")";
  uint64_t Stalled = StalledTask.load(std::memory_order_acquire);
  if (Stalled)
    Dump += "; injected stall on task " + std::to_string(Stalled - 1);
  if (NumWorkers == 0) {
    Dump += "; serial driver";
  } else {
    for (unsigned W = 0; W < NumWorkers; ++W) {
      uint64_t Claim =
          WorkerClaims ? WorkerClaims[W].load(std::memory_order_acquire) : 0;
      Dump += "; worker " + std::to_string(W) + ": epoch " +
              std::to_string(
                  WorkerEpochs[W].load(std::memory_order_acquire)) +
              (Claim ? ", running task " + std::to_string(Claim - 1)
                     : ", idle");
    }
  }
  VmError E(VmErrorKind::WorkerStall, Dump);
  if (Stalled)
    E.ThreadId = Tasks[Stalled - 1]->Thread->id();
  return E;
}

void Executor::watchdogLoop() {
  uint64_t LastBeat = Heartbeat.load(std::memory_order_acquire);
  auto LastChange = std::chrono::steady_clock::now();
  auto Timeout = std::chrono::milliseconds(Config.StallTimeoutMs);
  auto Poll = std::chrono::milliseconds(
      std::min<uint64_t>(std::max<uint64_t>(Config.StallTimeoutMs / 4, 1),
                         100));
  std::unique_lock<std::mutex> L(WatchdogMutex);
  for (;;) {
    WatchdogCv.wait_for(L, Poll, [&] {
      return WatchdogStop.load(std::memory_order_acquire);
    });
    if (WatchdogStop.load(std::memory_order_acquire))
      return;
    uint64_t Beat = Heartbeat.load(std::memory_order_acquire);
    auto Now = std::chrono::steady_clock::now();
    if (Beat != LastBeat) {
      LastBeat = Beat;
      LastChange = Now;
      continue;
    }
    if (SessionDone.load(std::memory_order_acquire))
      continue; // Already unwinding; nothing to convert.
    if (Now - LastChange >= Timeout) {
      recordError(buildStallError());
      return;
    }
  }
}

void Executor::run() {
  if (Tasks.empty())
    return;
  // Shared layers become parallel-safe for the duration of the run:
  // registries freeze (immutable after load), and a failed allocation
  // defers GC to the safepoint protocol instead of collecting inline.
  Vm.setDeferGcToSafepoint(true);
  Vm.types().freeze();
  Vm.methods().freeze();
  // Place each shard's pages per the NUMA policy before the first access
  // (every hierarchy, shared and worker-private, sees the same placement).
  applyNumaPlacement();

  // Host-time watchdog: converts a hung session (a wedged worker, a
  // safepoint that can never complete) into a WorkerStall error.
  std::thread Watchdog;
  WatchdogStop.store(false, std::memory_order_relaxed);
  StalledTask.store(0, std::memory_order_relaxed);
  if (Config.StallTimeoutMs > 0) {
    WatchdogArmed.store(true, std::memory_order_release);
    Watchdog = std::thread([this] { watchdogLoop(); });
  }

  if (Jobs == 1 || Tasks.size() == 1) {
    runSerial();
  } else {
    SessionDone.store(false, std::memory_order_relaxed);
    std::unique_ptr<IterBatch> First = nextIteration();
    if (First) { // False only when every task already ran to completion.
      unsigned N = static_cast<unsigned>(
          std::min<size_t>(Jobs, Tasks.size()));
      NumWorkers = N;
      WorkerEpochs.reset(new std::atomic<uint64_t>[N]);
      WorkerClaims.reset(new std::atomic<uint64_t>[N]);
      for (unsigned I = 0; I < N; ++I) {
        WorkerEpochs[I].store(0, std::memory_order_relaxed);
        WorkerClaims[I].store(0, std::memory_order_relaxed);
      }
      publishIteration(std::move(First));
      Workers.reserve(N);
      for (unsigned I = 0; I < N; ++I)
        Workers.emplace_back([this, I] { sessionLoop(I); });
      for (std::thread &W : Workers)
        W.join();
      Workers.clear();
      CurrentIter.store(nullptr, std::memory_order_relaxed);
      IterStorage.clear();
    }
  }

  WatchdogArmed.store(false, std::memory_order_release);
  WatchdogStop.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> L(WatchdogMutex); }
  WatchdogCv.notify_all();
  if (Watchdog.joinable())
    Watchdog.join();

  Vm.methods().unfreeze();
  Vm.types().unfreeze();
  Vm.setDeferGcToSafepoint(false);
}

uint64_t Executor::totalSteps() const {
  uint64_t Sum = 0;
  for (const auto &T : Tasks)
    Sum += T->Interp->stepsExecuted();
  return Sum;
}

HierarchyStats Executor::mergedMachineStats() const {
  std::vector<HierarchyStats> Parts;
  Parts.reserve(Tasks.size() + 1);
  Parts.push_back(Vm.machine().stats());
  for (const auto &T : Tasks)
    Parts.push_back(T->Machine->stats());
  return mergeHierarchyStats(Parts);
}
