//===- Executor.cpp - Host-thread executor for simulated threads -----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "runtime/Executor.h"

#include "core/Analyzer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace djx;

Executor::Executor(JavaVm &Vm, ExecutorConfig Cfg)
    : Vm(Vm), Config(Cfg) {
  assert(Config.QuantumSteps > 0 && "quantum must be positive");
  Jobs = Config.Jobs ? Config.Jobs
                     : std::max(1u, std::thread::hardware_concurrency());
}

Executor::~Executor() { stopWorkers(); }

size_t Executor::addThread(BytecodeProgram &Program,
                           const std::string &Entry,
                           const std::vector<Value> &Args,
                           const std::string &Name, uint32_t Cpu) {
  auto T = std::make_unique<Task>();
  T->Index = Tasks.size();
  // One heap shard per task is a hard requirement: Heap::allocate is
  // lock-free precisely because each shard has a single owner, and the
  // determinism argument rests on it. Configure VmConfig.HeapShards >=
  // the number of simulated threads (parallelVmConfig does).
  if (T->Index >= Vm.heap().numShards()) {
    std::fprintf(stderr,
                 "djx: Executor task %zu needs its own heap shard but the "
                 "VM has only %u (set VmConfig.HeapShards >= task count)\n",
                 T->Index, Vm.heap().numShards());
    std::abort();
  }
  // Deterministic CPU placement spread across NUMA nodes, independent of
  // the VM's own NextCpu state (and of Jobs).
  if (Cpu == JavaVm::kAnyCpu)
    Cpu = cpuForTask(T->Index);
  T->Thread = &Vm.startThread(Name, Cpu);
  // Worker-private hierarchy: same machine configuration, private
  // cache/TLB/NUMA/stats state. Merged deterministically afterwards.
  T->Machine = std::make_unique<MemoryHierarchy>(Vm.config().Machine);
  T->Thread->setMachine(T->Machine.get());
  T->Thread->setHeapShard(static_cast<unsigned>(T->Index));
  T->Interp = std::make_unique<Interpreter>(Vm, Program, *T->Thread);
  T->Interp->startCall(Entry, Args);
  Tasks.push_back(std::move(T));
  return Tasks.size() - 1;
}

uint32_t Executor::cpuForTask(size_t Index) const {
  const NumaConfig &N = Vm.config().Machine.Numa;
  uint32_t Node = static_cast<uint32_t>(Index % N.NumNodes);
  uint32_t Slot = static_cast<uint32_t>((Index / N.NumNodes) % N.CpusPerNode);
  return Node * N.CpusPerNode + Slot;
}

void Executor::applyNumaPlacement() {
  const Heap &H = Vm.heap();
  auto Apply = [&](MemoryHierarchy &M) {
    NumaTopology &Numa = M.numa();
    uint32_t NumNodes = Numa.numNodes();
    uint64_t PageBytes = Numa.config().PageBytes;
    for (unsigned S = 0; S < H.numShards(); ++S) {
      uint64_t Base = H.shardBase(S);
      uint64_t Limit = H.shardLimit(S);
      if (Limit <= Base)
        continue;
      switch (Config.Policy) {
      case NumaPolicy::FirstTouch: {
        // Shard pages are home on the owner's node: the owner's
        // allocation zero-fill is the first touch of every page of its
        // shard, so this *is* global first-touch, made deterministic.
        NumaNodeId Owner = S < Tasks.size()
                               ? Numa.nodeOfCpu(Tasks[S]->Thread->cpu())
                               : Numa.nodeOfCpu(cpuForTask(S));
        Numa.bindRange(Base, Limit - Base, Owner);
        break;
      }
      case NumaPolicy::Bind:
        // numa_alloc_onnode / membind: one node serves the whole heap.
        Numa.bindRange(Base, Limit - Base, 0);
        break;
      case NumaPolicy::Interleave:
        // Absolute page-number round-robin (rather than the cursor-based
        // interleaveRange) so re-application after a compaction maps each
        // page to the same node it had before.
        for (uint64_t A = Base; A < Limit; A += PageBytes)
          Numa.movePage(A, static_cast<NumaNodeId>(Numa.pageOf(A) %
                                                   NumNodes));
        break;
      }
    }
  };
  Apply(Vm.machine());
  for (auto &T : Tasks)
    Apply(*T->Machine);
}

void Executor::runQuantum(Task &T) {
  uint64_t Before = T.Interp->stepsExecuted();
  try {
    RunState St = T.Interp->resume(T.StepsLeft);
    uint64_t Used = T.Interp->stepsExecuted() - Before;
    T.StepsLeft -= std::min(T.StepsLeft, Used);
    if (St == RunState::Done) {
      T.Done = true;
      T.StepsLeft = 0;
    }
    // Paused: quantum budget exhausted; picked up again next round.
  } catch (const GcRequest &R) {
    // The faulting bytecode did not execute (and the interpreter rolled
    // back its step/tick), so a park that repeats at the same step count
    // means the previous safepoint collection freed nothing useful:
    // OutOfMemory, reported like the serial path. (Only shard-local data
    // goes in the message — other workers are still mutating their own
    // shards, so whole-heap queries are off limits here.)
    uint64_t Now = T.Interp->stepsExecuted();
    if (T.LastParkSteps == Now) {
      std::fprintf(
          stderr,
          "djx: OutOfMemoryError: %llu bytes requested in heap shard %u "
          "(%llu-byte shard) after a safepoint GC freed nothing\n",
          static_cast<unsigned long long>(R.Bytes), T.Thread->heapShard(),
          static_cast<unsigned long long>(
              Vm.heap().shardLimit(T.Thread->heapShard()) -
              Vm.heap().shardBase(T.Thread->heapShard())));
      std::abort();
    }
    T.LastParkSteps = Now;
    uint64_t Used = Now - Before;
    T.StepsLeft -= std::min(T.StepsLeft, Used);
    // Guarantee forward progress after the safepoint even when the fault
    // landed exactly on the quantum's last step.
    if (T.StepsLeft == 0)
      T.StepsLeft = 1;
    T.Parked = true;
  }
}

void Executor::runBatch(const std::vector<Task *> &Batch) {
  if (Batch.empty())
    return;
  // Legacy serial path (and trivial batches): run inline in thread-id
  // order on the calling host thread.
  if (Jobs == 1 || Batch.size() == 1 || Workers.empty()) {
    for (Task *T : Batch)
      runQuantum(*T);
    return;
  }
  {
    std::unique_lock<std::mutex> L(PoolMutex);
    CurrentBatch = &Batch;
    NextTask.store(0, std::memory_order_relaxed);
    TasksFinished = 0;
    ++BatchGeneration;
    PoolCv.notify_all();
    // Wait until every task ran AND every claiming worker left the batch:
    // only then may the batch vector be reused by the caller.
    DoneCv.wait(L, [&] {
      return TasksFinished == Batch.size() && ActiveWorkers == 0;
    });
    CurrentBatch = nullptr;
  }
}

void Executor::startWorkers(unsigned N) {
  if (!Workers.empty())
    return;
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

void Executor::stopWorkers() {
  {
    std::lock_guard<std::mutex> L(PoolMutex);
    ShuttingDown = true;
    PoolCv.notify_all();
  }
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
  ShuttingDown = false;
}

void Executor::workerLoop() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::vector<Task *> *Batch;
    {
      std::unique_lock<std::mutex> L(PoolMutex);
      PoolCv.wait(L, [&] {
        return ShuttingDown ||
               (CurrentBatch && BatchGeneration != SeenGeneration);
      });
      if (ShuttingDown)
        return;
      SeenGeneration = BatchGeneration;
      Batch = CurrentBatch;
      ++ActiveWorkers;
    }
    size_t Completed = 0;
    for (;;) {
      size_t I = NextTask.fetch_add(1, std::memory_order_relaxed);
      if (I >= Batch->size())
        break;
      runQuantum(*(*Batch)[I]);
      ++Completed;
    }
    {
      std::lock_guard<std::mutex> L(PoolMutex);
      TasksFinished += Completed;
      --ActiveWorkers;
      if (TasksFinished == Batch->size() && ActiveWorkers == 0)
        DoneCv.notify_all();
    }
  }
}

void Executor::run() {
  if (Tasks.empty())
    return;
  // Shared layers become parallel-safe for the duration of the run:
  // registries freeze (immutable after load), and a failed allocation
  // defers GC to the safepoint protocol instead of collecting inline.
  Vm.setDeferGcToSafepoint(true);
  Vm.types().freeze();
  Vm.methods().freeze();
  // Place each shard's pages per the NUMA policy before the first access
  // (every hierarchy, shared and worker-private, sees the same placement).
  applyNumaPlacement();
  if (Jobs > 1 && Tasks.size() > 1)
    startWorkers(std::min<size_t>(Jobs, Tasks.size()));

  std::vector<Task *> Batch;
  for (;;) {
    // Open a round: every live task gets one quantum.
    bool AnyActive = false;
    for (auto &T : Tasks)
      if (!T->Done) {
        T->StepsLeft = Config.QuantumSteps;
        AnyActive = true;
      }
    if (!AnyActive)
      break;
    ++Rounds;
    // Drain the round: run all tasks with budget left; any park triggers
    // one safepoint GC serving every requester, then parked tasks finish
    // their budget. Both the park points (shard occupancy at a given step)
    // and the barrier are functions of logical state only, so this
    // schedule — and all its GCs — is identical for any Jobs value.
    for (;;) {
      Batch.clear();
      for (auto &T : Tasks)
        if (!T->Done && T->StepsLeft > 0 && !T->Parked)
          Batch.push_back(T.get());
      if (!Batch.empty())
        runBatch(Batch);
      std::vector<JavaThread *> Requesters;
      for (auto &T : Tasks)
        if (T->Parked)
          Requesters.push_back(T->Thread);
      if (Requesters.empty())
        break;
      Safepoint.stopTheWorldGc(Vm, Requesters);
      // Re-bind after compaction: objects slid within their shard, and a
      // future heap recycle may have released pages — placement must be
      // restored before any post-GC access.
      applyNumaPlacement();
      for (auto &T : Tasks)
        T->Parked = false;
    }
    // Round barrier: every task is Done or out of budget.
  }

  stopWorkers();
  Vm.methods().unfreeze();
  Vm.types().unfreeze();
  Vm.setDeferGcToSafepoint(false);
}

uint64_t Executor::totalSteps() const {
  uint64_t Sum = 0;
  for (const auto &T : Tasks)
    Sum += T->Interp->stepsExecuted();
  return Sum;
}

HierarchyStats Executor::mergedMachineStats() const {
  std::vector<HierarchyStats> Parts;
  Parts.reserve(Tasks.size() + 1);
  Parts.push_back(Vm.machine().stats());
  for (const auto &T : Tasks)
    Parts.push_back(T->Machine->stats());
  return mergeHierarchyStats(Parts);
}
