//===- Executor.h - Host-thread executor for simulated threads --*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs N simulated JavaThreads concurrently on a pool of host workers,
/// with results invariant to host parallelism.
///
/// Logical schedule: execution proceeds in rounds. Each round, every live
/// simulated thread runs one fixed interpreter quantum (QuantumSteps
/// bytecodes) against state only it owns — its heap shard, its
/// worker-private memory hierarchy, its PMU/CCT/profile — so quanta of
/// different threads commute and may run on any workers in any order.
/// Cross-thread effects happen only at the round barrier: a thread whose
/// allocation faults parks (GcRequest unwind, bytecode not yet executed),
/// the barrier drains the remaining quanta, the SafepointController runs
/// one stop-the-world collection in thread-id order over all shards, and
/// parked threads finish their quantum budget. Because parking depends
/// only on shard occupancy (logical state) and the barrier is jobs-
/// independent, the merged profile is byte-identical for --jobs 1/2/4;
/// --jobs 1 *is* the legacy serial path — the same schedule driven inline
/// on the calling host thread with no workers spawned.
///
/// Barrier elision: the round transition is coordinator-free in the
/// common case. Workers claim quanta from an atomic cursor; the worker
/// that completes an iteration's last quantum *is* the barrier — it
/// checks for GC requests, publishes the next iteration's work list, and
/// advances an atomic round ticket that its peers spin on (falling back
/// to a condvar sleep after a bounded spin, so few-core hosts don't burn
/// the GC's timeslice). Only when some task parked with GcRequest does
/// the transition widen into the stop-the-world safepoint — run by that
/// same last finisher, with every peer provably quiesced on the ticket.
/// The logical schedule (round/quantum/park/GC placement) is unchanged
/// from the handshake barrier, so results stay byte-identical; what
/// disappears is the two mutex/condvar round-trips with a coordinator
/// thread per round, which dominated small-quantum runs.
///
/// Shared layers are made safe under this protocol rather than by locks on
/// hot paths: registries are frozen for the duration of run() (immutable
/// after load), the live-object index is sharded by address range, the
/// Profiles map and thread list take leaf spin locks, and per-CPU
/// cache/TLB/NUMA state is worker-private with a deterministic merge
/// (mergedMachineStats(), summed in thread-id order).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_RUNTIME_EXECUTOR_H
#define DJX_RUNTIME_EXECUTOR_H

#include "interp/Interpreter.h"
#include "jvm/JavaVm.h"
#include "runtime/Safepoint.h"
#include "support/VmError.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace djx {

/// Seed-driven schedule fuzzing: every knob the determinism guarantee
/// claims to be robust against, randomized from one printed seed. The
/// perturbations come in two classes with one shared oracle — for a given
/// seed, every observable byte must be identical across --jobs values and
/// batching modes:
///
///  * *Logical-schedule* perturbations (per-round-per-task quantum sizes,
///    forced safepoint GCs at round barriers, mid-quantum drain points).
///    These change results versus the unfuzzed schedule — that is the
///    point, they move where GCs and drains land — but each decision is a
///    pure hash of (Seed, logical state), never of host timing, so the
///    jobs-invariance argument must survive any draw.
///
///  * *Host-side* perturbations (random worker claim jitter). These may
///    never change results at all; they only shake the interleavings the
///    ticket barrier must already tolerate.
///
/// All decisions are stateless hashes rather than a shared PRNG stream:
/// concurrent workers would otherwise consume the stream in host order
/// and the schedule would stop being a function of logical state.
struct FuzzSchedule {
  bool Enabled = false;
  uint64_t Seed = 0;
  /// Each round draws every task's quantum from [MinQuantumSteps,
  /// MaxQuantumSteps] — randomized quantum boundaries.
  uint64_t MinQuantumSteps = 256;
  uint64_t MaxQuantumSteps = 8192;
  /// Chance that a round barrier widens into a forced safepoint GC even
  /// with no allocation fault parked (randomized GC trigger timing).
  double ForcedGcChance = 0.15;
  /// Chance that a task's quantum is split mid-run with a sample-ring
  /// drain published between the chunks (randomized drain points).
  double SplitDrainChance = 0.25;
  /// Chance (per claim, host-side only) that a worker spins/yields before
  /// claiming its next quantum (randomized worker interleavings).
  double WorkerJitterChance = 0.5;
};

struct ExecutorConfig {
  /// Host worker threads. 0 = hardware concurrency; 1 = legacy serial
  /// path (no workers spawned, quanta run inline in thread-id order).
  /// Affects wall-clock only — never results.
  unsigned Jobs = 0;
  /// Interpreter steps per simulated thread per round. Part of the
  /// *logical* schedule: changing it changes where GCs land, so it is a
  /// workload parameter, not a tuning knob derived from Jobs.
  uint64_t QuantumSteps = 65536;
  /// Heap-shard placement policy (see NumaPolicy). Applied to every
  /// attached hierarchy at run() start and re-applied after each
  /// safepoint compaction. Like QuantumSteps it is a *workload* knob: it
  /// changes simulated placement (and therefore remote-access counts),
  /// never the schedule, and results stay independent of Jobs.
  NumaPolicy Policy = NumaPolicy::FirstTouch;
  /// Execution tier for every task's interpreter (`--tier`). Like Jobs it
  /// may never change results: the super tier's traces are observationally
  /// identical to flat dispatch, and compiled traces are invalidated at
  /// every safepoint (deopt-at-safepoint) so the flat loop owns all
  /// resumed frames after a stop-the-world pause.
  TierConfig Tier;
  /// Schedule fuzzing (tests only). When enabled, QuantumSteps is
  /// superseded by per-round seed draws; see FuzzSchedule.
  FuzzSchedule Fuzz;
  /// Host-time watchdog: when > 0, a monitor thread converts a session
  /// that makes no forward progress for this many host milliseconds into
  /// a VmError::WorkerStall (with a per-worker state dump) instead of a
  /// hang. Host time never feeds back into the logical schedule — the
  /// watchdog only ever *ends* a session that is already stuck. 0
  /// disables it (and disarms the QuantumClaim fault-injection site,
  /// which needs the watchdog to unwind the stall it creates).
  uint64_t StallTimeoutMs = 120000;
  /// Round-barrier hook: fired once per completed round, on the single
  /// thread driving the barrier (the serial driver, or the MT closer
  /// with every peer quiesced on the ticket — a safe point to read
  /// profiles or flush a journal). The argument is the just-completed
  /// round (1-based). Return true to end the session cleanly after
  /// this round. Fires at identical logical points for any Jobs value.
  std::function<bool(uint64_t)> OnRoundEnd;
  /// End the session cleanly once this many rounds completed (0 =
  /// unlimited). The reference oracle for journal recovery: a run
  /// truncated at round N must match `recover` of a journal whose last
  /// durable commit is round N.
  uint64_t MaxRounds = 0;
};

/// Drives simulated threads to completion on host workers.
class Executor {
public:
  Executor(JavaVm &Vm, ExecutorConfig Config = ExecutorConfig());
  ~Executor();

  Executor(const Executor &) = delete;
  Executor &operator=(const Executor &) = delete;

  /// Adds a simulated thread: starts a JavaThread named \p Name pinned to
  /// \p Cpu (kAnyCpu: cpuForTask's node-spread round-robin), attaches a
  /// worker-private memory hierarchy, assigns heap shard = task index
  /// (one shard per task is mandatory — lock-free shard allocation
  /// assumes a single owner; aborts if the VM has too few shards), and
  /// prepares an interpreter session for \p Entry(\p Args) of \p Program.
  /// Call before run(), after any profiler is constructed (so its
  /// thread-start hooks fire). \returns the task index.
  size_t addThread(BytecodeProgram &Program, const std::string &Entry,
                   const std::vector<Value> &Args, const std::string &Name,
                   uint32_t Cpu = JavaVm::kAnyCpu);

  /// Runs every task to completion under the round/safepoint protocol.
  /// Never throws and never aborts the process: a VmError raised by any
  /// task (OOM after a fruitless safepoint GC, interpreter step limit,
  /// a watchdog-detected stall) is captured first-error-wins, the
  /// session is ended (peers unwind at their next claim or ticket
  /// check), and the error is exposed via error() so callers can
  /// salvage the profile data collected so far.
  void run();

  /// First VmError captured during run(), if any. Empty after a clean
  /// run. Read only after run() returns.
  const std::optional<VmError> &error() const { return FirstError; }

  // --- Results ------------------------------------------------------------
  size_t numTasks() const { return Tasks.size(); }
  JavaThread &thread(size_t Task) { return *Tasks[Task]->Thread; }
  Interpreter &interpreter(size_t Task) { return *Tasks[Task]->Interp; }
  /// Return value of task \p Task's entry call (after run()).
  std::optional<Value> result(size_t Task) {
    return Tasks[Task]->Interp->takeResult();
  }

  /// Aggregate interpreter steps across all tasks.
  uint64_t totalSteps() const;
  /// Deterministic merge of the shared machine plus every worker-private
  /// hierarchy, in thread-id order.
  HierarchyStats mergedMachineStats() const;
  /// Stop-the-world pauses taken during run().
  uint64_t safepoints() const { return Safepoint.safepoints(); }
  /// Rounds executed (quantum barriers crossed).
  uint64_t rounds() const { return Rounds; }

  unsigned jobs() const { return Jobs; }

  /// Deterministic default CPU for task \p Index: round-robin across NUMA
  /// nodes first (task 0 -> node 0's first CPU, task 1 -> node 1's first
  /// CPU, ...), then across each node's CPUs — so simulated threads spread
  /// over the machine's sockets the way a real scheduler spreads runnable
  /// threads. A function of the task index and the machine shape only,
  /// never of Jobs.
  uint32_t cpuForTask(size_t Index) const;

private:
  struct Task {
    size_t Index = 0;
    JavaThread *Thread = nullptr;
    /// Worker-private machine: same config as the VM's, private state.
    std::unique_ptr<MemoryHierarchy> Machine;
    std::unique_ptr<Interpreter> Interp;
    bool Done = false;
    /// Set when a quantum unwound with GcRequest; cleared at the safepoint.
    bool Parked = false;
    /// Remaining step budget within the current round.
    uint64_t StepsLeft = 0;
    /// Step count at the last GC park: parking twice at the same count
    /// means the safepoint collection did not help — OutOfMemory.
    uint64_t LastParkSteps = ~0ULL;
    /// Round this task's current budget was drawn for (1-based). A
    /// logical coordinate: FaultInjector keys forced-stall draws on
    /// (Round, Index) so injections stay jobs-invariant.
    uint64_t Round = 0;
  };

  /// Deopt-at-safepoint: drops every task's compiled traces after a
  /// stop-the-world pause (hot sites recompile on their next flat visit).
  /// Runs in the safepoint's single-threaded window, so the sweep is
  /// race-free by the same happens-before as the collection itself.
  void invalidateTraces();

  /// Imposes Config.Policy on every attached hierarchy (the VM's shared
  /// machine and each task's worker-private one): each heap shard's page
  /// range is placed per the policy, with the shard's owner node derived
  /// from its task's CPU. Idempotent and a function of logical state only,
  /// so calling it at run() start and after every safepoint compaction
  /// keeps placement identical for any Jobs value.
  void applyNumaPlacement();

  /// Executes one quantum of \p T (worker context) and publishes the
  /// quantum-end JVMTI event (the batched sample resolver's drain point).
  /// Under FuzzSchedule the budget may be split into chunks with a drain
  /// published between them; the split is a hash of logical state only.
  void runQuantum(Task &T);
  /// One resume() call of up to \p Budget steps: charges the task's
  /// StepsLeft, handles Done, and turns a GcRequest unwind into a park
  /// (\p Parked set). Factored out of runQuantum so fuzzed chunking
  /// reuses the exact park/OOM bookkeeping of the unfuzzed path.
  void runChunk(Task &T, uint64_t Budget, bool &Parked);
  /// The legacy serial schedule, driven inline on the calling thread.
  /// Wraps runSerialLoop in the same first-error capture as the MT path.
  void runSerial();
  void runSerialLoop();
  /// Round-barrier bookkeeping shared by both schedules: fires
  /// Config.OnRoundEnd for the just-completed round and evaluates
  /// MaxRounds. \returns true when the session should end cleanly.
  bool roundBarrierStop();

  // --- Failure capture and the stall watchdog ----------------------------
  /// Captures \p E first-error-wins and ends the session: SessionDone is
  /// released and sleepers are notified, so every worker unwinds at its
  /// next claim or ticket check (the "next round barrier" in practice).
  void recordError(VmError &&E);
  /// Injected QuantumClaim fault: publish which task stalled, then stop
  /// making progress until the watchdog ends the session. Models a
  /// worker that wedges mid-quantum (the safepoint can never complete).
  void simulateStall(Task &T);
  /// Watchdog body: declare WorkerStall when Heartbeat stops advancing
  /// for Config.StallTimeoutMs host milliseconds.
  void watchdogLoop();
  /// WorkerStall error with a per-worker state dump built from atomics
  /// only (epochs, claim slots, ticket) — never from racy task state.
  VmError buildStallError() const;

  // --- FuzzSchedule draws (pure hashes of Seed + logical state) -----------
  /// Quantum budget for \p TaskIndex in the round about to open (current
  /// Rounds value, pre-increment). Config.QuantumSteps when fuzz is off.
  uint64_t quantumFor(size_t TaskIndex) const;
  /// Runs a forced safepoint GC at the round barrier when the seed says
  /// round \p Round widens (world must be stopped by the caller's
  /// construction). No-op when fuzz is off.
  void maybeFuzzForcedGc(uint64_t Round);

  // --- Ticket-barrier session (Jobs > 1) ---------------------------------
  /// One inner iteration's immutable work list. Workers claim indices
  /// from Next; the worker that drops Remaining to zero owns the
  /// iteration close. The Tasks vector never mutates after publication —
  /// a laggard still holding a previous batch can only over-claim its
  /// exhausted cursor, never race the next batch's construction.
  struct IterBatch {
    std::vector<Task *> Tasks;
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Remaining{0};
    /// RoundTicket value this batch was published under (its bump's
    /// post-increment value); drives retired-batch reclamation.
    uint64_t Gen = 0;
  };

  /// Publishes \p Batch as the current iteration and releases the round
  /// ticket so waiting workers pick it up.
  void publishIteration(std::unique_ptr<IterBatch> Batch);
  /// Runs on the worker that finished an iteration's last quantum, with
  /// every other worker quiesced (spinning or asleep on the ticket): the
  /// elided round barrier. Performs the safepoint GC if any task parked,
  /// then either continues the round, opens the next round, or ends the
  /// session.
  void closeIteration();
  /// Builds the inner-iteration work list ({!Done, StepsLeft > 0}), or —
  /// when that is empty — opens a new round. \returns nullptr when every
  /// task is done.
  std::unique_ptr<IterBatch> nextIteration();
  /// Worker body: claim-run-close loop until the session ends.
  /// \p Worker indexes this worker's epoch-announcement slot.
  void sessionLoop(unsigned Worker);
  /// Spin-then-sleep wait for the round ticket to move past \p Seen.
  uint64_t waitForTicket(uint64_t Seen);

  JavaVm &Vm;
  ExecutorConfig Config;
  unsigned Jobs;
  std::vector<std::unique_ptr<Task>> Tasks;
  SafepointController Safepoint;
  uint64_t Rounds = 0;

  // Session state. The common-case round transition is coordinator-free:
  // the last finisher publishes the next batch and bumps RoundTicket
  // (release); peers acquire it and claim from the new cursor — no
  // stop-the-world handshake unless a GcRequest forces a safepoint.
  std::vector<std::thread> Workers;
  std::atomic<IterBatch *> CurrentIter{nullptr};
  std::atomic<uint64_t> RoundTicket{0};
  std::atomic<bool> SessionDone{false};
  /// Published batches awaiting reclamation, oldest first. Mutated only
  /// by iteration closers (serialized by the Remaining-drops-to-zero
  /// handoff). A batch is freed once every worker's announced epoch has
  /// moved past its generation: each worker release-stores the ticket it
  /// last observed into its WorkerEpochs slot before loading CurrentIter,
  /// and that acquire-load can only return batches at least as new as
  /// the announced ticket — so min(WorkerEpochs) lower-bounds every
  /// batch any worker may still touch. Keeps the retained set at
  /// O(workers) instead of one batch per iteration for the whole run.
  std::deque<std::unique_ptr<IterBatch>> IterStorage;
  std::unique_ptr<std::atomic<uint64_t>[]> WorkerEpochs;
  unsigned NumWorkers = 0;
  std::mutex WakeMutex;
  std::condition_variable WakeCv; // Sleeping ticket-waiters.

  // Failure capture + watchdog state.
  std::optional<VmError> FirstError;
  std::mutex ErrorLock;
  /// Bumped on every completed chunk (serial and MT) — the watchdog's
  /// forward-progress signal.
  std::atomic<uint64_t> Heartbeat{0};
  /// Per-worker claim slot: task index + 1 while a quantum runs, 0 when
  /// idle. Watchdog dump input; MT sessions only.
  std::unique_ptr<std::atomic<uint64_t>[]> WorkerClaims;
  /// Task index + 1 of an injected stall, 0 otherwise.
  std::atomic<uint64_t> StalledTask{0};
  /// True while a watchdog thread is running; gates stall injection.
  std::atomic<bool> WatchdogArmed{false};
  std::atomic<bool> WatchdogStop{false};
  std::mutex WatchdogMutex;
  std::condition_variable WatchdogCv;
};

} // namespace djx

#endif // DJX_RUNTIME_EXECUTOR_H
