//===- Executor.h - Host-thread executor for simulated threads --*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs N simulated JavaThreads concurrently on a pool of host workers,
/// with results invariant to host parallelism.
///
/// Logical schedule: execution proceeds in rounds. Each round, every live
/// simulated thread runs one fixed interpreter quantum (QuantumSteps
/// bytecodes) against state only it owns — its heap shard, its
/// worker-private memory hierarchy, its PMU/CCT/profile — so quanta of
/// different threads commute and may run on any workers in any order.
/// Cross-thread effects happen only at the round barrier: a thread whose
/// allocation faults parks (GcRequest unwind, bytecode not yet executed),
/// the barrier drains the remaining quanta, the SafepointController runs
/// one stop-the-world collection in thread-id order over all shards, and
/// parked threads finish their quantum budget. Because parking depends
/// only on shard occupancy (logical state) and the barrier is jobs-
/// independent, the merged profile is byte-identical for --jobs 1/2/4;
/// --jobs 1 *is* the legacy serial path — the same schedule driven inline
/// on the calling host thread with no workers spawned.
///
/// Shared layers are made safe under this protocol rather than by locks on
/// hot paths: registries are frozen for the duration of run() (immutable
/// after load), the live-object index is sharded by address range, the
/// Profiles map and thread list take leaf spin locks, and per-CPU
/// cache/TLB/NUMA state is worker-private with a deterministic merge
/// (mergedMachineStats(), summed in thread-id order).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_RUNTIME_EXECUTOR_H
#define DJX_RUNTIME_EXECUTOR_H

#include "interp/Interpreter.h"
#include "jvm/JavaVm.h"
#include "runtime/Safepoint.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace djx {

struct ExecutorConfig {
  /// Host worker threads. 0 = hardware concurrency; 1 = legacy serial
  /// path (no workers spawned, quanta run inline in thread-id order).
  /// Affects wall-clock only — never results.
  unsigned Jobs = 0;
  /// Interpreter steps per simulated thread per round. Part of the
  /// *logical* schedule: changing it changes where GCs land, so it is a
  /// workload parameter, not a tuning knob derived from Jobs.
  uint64_t QuantumSteps = 65536;
  /// Heap-shard placement policy (see NumaPolicy). Applied to every
  /// attached hierarchy at run() start and re-applied after each
  /// safepoint compaction. Like QuantumSteps it is a *workload* knob: it
  /// changes simulated placement (and therefore remote-access counts),
  /// never the schedule, and results stay independent of Jobs.
  NumaPolicy Policy = NumaPolicy::FirstTouch;
};

/// Drives simulated threads to completion on host workers.
class Executor {
public:
  Executor(JavaVm &Vm, ExecutorConfig Config = ExecutorConfig());
  ~Executor();

  Executor(const Executor &) = delete;
  Executor &operator=(const Executor &) = delete;

  /// Adds a simulated thread: starts a JavaThread named \p Name pinned to
  /// \p Cpu (kAnyCpu: cpuForTask's node-spread round-robin), attaches a
  /// worker-private memory hierarchy, assigns heap shard = task index
  /// (one shard per task is mandatory — lock-free shard allocation
  /// assumes a single owner; aborts if the VM has too few shards), and
  /// prepares an interpreter session for \p Entry(\p Args) of \p Program.
  /// Call before run(), after any profiler is constructed (so its
  /// thread-start hooks fire). \returns the task index.
  size_t addThread(BytecodeProgram &Program, const std::string &Entry,
                   const std::vector<Value> &Args, const std::string &Name,
                   uint32_t Cpu = JavaVm::kAnyCpu);

  /// Runs every task to completion under the round/safepoint protocol.
  void run();

  // --- Results ------------------------------------------------------------
  size_t numTasks() const { return Tasks.size(); }
  JavaThread &thread(size_t Task) { return *Tasks[Task]->Thread; }
  Interpreter &interpreter(size_t Task) { return *Tasks[Task]->Interp; }
  /// Return value of task \p Task's entry call (after run()).
  std::optional<Value> result(size_t Task) {
    return Tasks[Task]->Interp->takeResult();
  }

  /// Aggregate interpreter steps across all tasks.
  uint64_t totalSteps() const;
  /// Deterministic merge of the shared machine plus every worker-private
  /// hierarchy, in thread-id order.
  HierarchyStats mergedMachineStats() const;
  /// Stop-the-world pauses taken during run().
  uint64_t safepoints() const { return Safepoint.safepoints(); }
  /// Rounds executed (quantum barriers crossed).
  uint64_t rounds() const { return Rounds; }

  unsigned jobs() const { return Jobs; }

  /// Deterministic default CPU for task \p Index: round-robin across NUMA
  /// nodes first (task 0 -> node 0's first CPU, task 1 -> node 1's first
  /// CPU, ...), then across each node's CPUs — so simulated threads spread
  /// over the machine's sockets the way a real scheduler spreads runnable
  /// threads. A function of the task index and the machine shape only,
  /// never of Jobs.
  uint32_t cpuForTask(size_t Index) const;

private:
  struct Task {
    size_t Index = 0;
    JavaThread *Thread = nullptr;
    /// Worker-private machine: same config as the VM's, private state.
    std::unique_ptr<MemoryHierarchy> Machine;
    std::unique_ptr<Interpreter> Interp;
    bool Done = false;
    /// Set when a quantum unwound with GcRequest; cleared at the safepoint.
    bool Parked = false;
    /// Remaining step budget within the current round.
    uint64_t StepsLeft = 0;
    /// Step count at the last GC park: parking twice at the same count
    /// means the safepoint collection did not help — OutOfMemory.
    uint64_t LastParkSteps = ~0ULL;
  };

  /// Imposes Config.Policy on every attached hierarchy (the VM's shared
  /// machine and each task's worker-private one): each heap shard's page
  /// range is placed per the policy, with the shard's owner node derived
  /// from its task's CPU. Idempotent and a function of logical state only,
  /// so calling it at run() start and after every safepoint compaction
  /// keeps placement identical for any Jobs value.
  void applyNumaPlacement();

  /// Executes one quantum of \p T (worker context).
  void runQuantum(Task &T);
  /// Runs Fn-per-task over \p Batch on the worker pool (or inline when
  /// Jobs == 1 / single task).
  void runBatch(const std::vector<Task *> &Batch);

  // Minimal persistent worker pool (started lazily by run()).
  void startWorkers(unsigned N);
  void stopWorkers();
  void workerLoop();

  JavaVm &Vm;
  ExecutorConfig Config;
  unsigned Jobs;
  std::vector<std::unique_ptr<Task>> Tasks;
  SafepointController Safepoint;
  uint64_t Rounds = 0;

  // Worker pool state. Dispatch is a generation-stamped batch: workers
  // claim task indices from an atomic cursor, so which worker runs which
  // quantum is timing-dependent — harmless, since quanta commute.
  std::vector<std::thread> Workers;
  std::mutex PoolMutex;
  std::condition_variable PoolCv;   // Workers wait for a new batch.
  std::condition_variable DoneCv;   // run() waits for batch completion.
  const std::vector<Task *> *CurrentBatch = nullptr;
  uint64_t BatchGeneration = 0;
  std::atomic<size_t> NextTask{0};
  size_t TasksFinished = 0;
  size_t ActiveWorkers = 0;
  bool ShuttingDown = false;
};

} // namespace djx

#endif // DJX_RUNTIME_EXECUTOR_H
