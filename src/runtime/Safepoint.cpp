//===- Safepoint.cpp - Stop-the-world coordination --------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "runtime/Safepoint.h"

using namespace djx;

GcStats SafepointController::stopTheWorldGc(
    JavaVm &Vm, const std::vector<JavaThread *> &Requesters) {
  // The world is stopped by construction (the Executor's round barrier
  // drained every quantum), so the serial collection entry point is safe:
  // it gathers roots from all threads' synced frames, compacts every heap
  // shard, fires the move/free interpositions and the GC-finish (MXBean)
  // notification — which applies the LiveObjectIndex relocation batch —
  // and flushes each worker-private hierarchy.
  GcStats S = Vm.requestGc();
  uint64_t Pause = gcPauseCycles(Vm.config(), S);
  for (JavaThread *T : Requesters)
    T->addCycles(Pause);
  ++Safepoints;
  Totals.Collections += S.Collections;
  Totals.ObjectsMoved += S.ObjectsMoved;
  Totals.ObjectsFreed += S.ObjectsFreed;
  Totals.BytesFreed += S.BytesFreed;
  return S;
}
