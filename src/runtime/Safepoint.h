//===- Safepoint.h - Stop-the-world coordination ----------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Safepoint protocol of the parallel runtime. A simulated thread whose
/// heap-shard allocation fails cannot collect inline — other host workers
/// are still mutating — so the VM throws GcRequest, the worker unwinds to
/// the Executor with the interpreter parked *before* the faulting
/// bytecode, and the thread is marked as a GC requester. When every
/// in-flight quantum has drained (the Executor's round barrier), the world
/// is stopped by construction and the SafepointController runs one
/// collection serving all requesters: roots are gathered from every
/// thread's synced interpreter frames, the mark-compact collector runs,
/// the GC-finish (MXBean) notification applies the LiveObjectIndex
/// relocation batch exactly as in the serial path, every worker-private
/// memory hierarchy is flushed, and each requester is charged the paper's
/// stop-the-world pause cost. Requesters then re-execute their faulting
/// bytecode. Everything is keyed to logical execution state (step counts,
/// shard occupancy), never to host timing, so the safepoint schedule — and
/// therefore every profile byte — is identical for any --jobs value.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_RUNTIME_SAFEPOINT_H
#define DJX_RUNTIME_SAFEPOINT_H

#include "jvm/JavaVm.h"

#include <cstdint>
#include <vector>

namespace djx {

/// Runs stop-the-world operations for the Executor and accounts for them.
class SafepointController {
public:
  /// Performs one collection on behalf of \p Requesters (threads whose
  /// allocation faulted since the last safepoint). Must only be called
  /// when no quantum is in flight. Charges each requester the configured
  /// pause cost — the deterministic analogue of every stalled thread
  /// waiting out the pause.
  GcStats stopTheWorldGc(JavaVm &Vm,
                         const std::vector<JavaThread *> &Requesters);

  /// Number of stop-the-world pauses performed.
  uint64_t safepoints() const { return Safepoints; }
  /// GC work aggregated across all safepoints.
  const GcStats &totals() const { return Totals; }

private:
  uint64_t Safepoints = 0;
  GcStats Totals;
};

} // namespace djx

#endif // DJX_RUNTIME_SAFEPOINT_H
