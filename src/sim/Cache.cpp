//===- Cache.cpp - Set-associative cache model ----------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"

#include <cassert>

using namespace djx;

Cache::Cache(const CacheConfig &Cfg) : Config(Cfg), NumSets(Cfg.numSets()) {
  assert(NumSets > 0 && "cache too small for its associativity");
  assert((Config.LineBytes & (Config.LineBytes - 1)) == 0 &&
         "line size must be a power of two");
  Lines.resize(NumSets * Config.Ways);
}

bool Cache::access(uint64_t Addr) {
  uint64_t LA = lineAddr(Addr);
  uint64_t Set = setIndex(LA);
  Line *Base = &Lines[Set * Config.Ways];
  ++Clock;

  Line *Victim = nullptr;
  for (uint32_t W = 0; W < Config.Ways; ++W) {
    Line &L = Base[W];
    if (L.Valid && L.Tag == LA) {
      L.LastUse = Clock;
      ++Hits;
      return true;
    }
    if (!Victim || !L.Valid ||
        (Victim->Valid && L.Valid && L.LastUse < Victim->LastUse))
      Victim = &L;
  }
  ++Misses;
  if (Victim->Valid)
    ++Evictions;
  Victim->Valid = true;
  Victim->Tag = LA;
  Victim->LastUse = Clock;
  return false;
}

bool Cache::contains(uint64_t Addr) const {
  uint64_t LA = lineAddr(Addr);
  const Line *Base = &Lines[setIndex(LA) * Config.Ways];
  for (uint32_t W = 0; W < Config.Ways; ++W)
    if (Base[W].Valid && Base[W].Tag == LA)
      return true;
  return false;
}

void Cache::invalidate(uint64_t Addr) {
  uint64_t LA = lineAddr(Addr);
  Line *Base = &Lines[setIndex(LA) * Config.Ways];
  for (uint32_t W = 0; W < Config.Ways; ++W)
    if (Base[W].Valid && Base[W].Tag == LA)
      Base[W].Valid = false;
}

void Cache::flush() {
  for (Line &L : Lines)
    L.Valid = false;
}
