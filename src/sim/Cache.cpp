//===- Cache.cpp - Set-associative cache model ----------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"

#include "support/Bits.h"

#include <cassert>

using namespace djx;

Cache::Cache(const CacheConfig &Cfg) : Config(Cfg), NumSets(Cfg.numSets()) {
  assert(NumSets > 0 && "cache too small for its associativity");
  assert(isPowerOfTwo(Config.LineBytes) &&
         "line size must be a power of two");
  assert(isPowerOfTwo(NumSets) &&
         "set count must be a power of two (pick SizeBytes/LineBytes/Ways "
         "accordingly)");
  LineShift = floorLog2(Config.LineBytes);
  SetMask = NumSets - 1;
  Lines.resize(NumSets * Config.Ways);
}

Cache::Line *Cache::findWay(uint64_t LineAddr) {
  Line *Base = &Lines[setIndex(LineAddr) * Config.Ways];
  for (uint32_t W = 0; W < Config.Ways; ++W)
    if (Base[W].Valid && Base[W].Tag == LineAddr)
      return &Base[W];
  return nullptr;
}

bool Cache::access(uint64_t Addr) {
  uint64_t LA = lineAddr(Addr);
  ++Clock;
  // MRU fast path: repeated access to the line touched last (sequential
  // sweeps hit the same line LineBytes/stride times in a row).
  if (LA == LastLineAddr) {
    LastLine->LastUse = Clock;
    ++Hits;
    return true;
  }
  if (Line *Hit = findWay(LA)) {
    Hit->LastUse = Clock;
    ++Hits;
    LastLineAddr = LA;
    LastLine = Hit;
    return true;
  }
  // Miss: pick the victim exactly as the combined scan used to — the last
  // invalid way if any way is invalid, else the first least-recently-used.
  Line *Base = &Lines[setIndex(LA) * Config.Ways];
  Line *Victim = nullptr;
  for (uint32_t W = 0; W < Config.Ways; ++W) {
    Line &Way = Base[W];
    if (!Victim || !Way.Valid ||
        (Victim->Valid && Way.Valid && Way.LastUse < Victim->LastUse))
      Victim = &Way;
  }
  ++Misses;
  if (Victim->Valid)
    ++Evictions;
  // If the victim happened to be the memoised line, the unconditional
  // memo update below repoints it at the new tag; no stale entry survives.
  Victim->Valid = true;
  Victim->Tag = LA;
  Victim->LastUse = Clock;
  LastLineAddr = LA;
  LastLine = Victim;
  return false;
}

bool Cache::contains(uint64_t Addr) const {
  return findWay(lineAddr(Addr)) != nullptr;
}

void Cache::invalidate(uint64_t Addr) {
  uint64_t LA = lineAddr(Addr);
  if (LA == LastLineAddr) {
    LastLineAddr = ~0ULL;
    LastLine = nullptr;
  }
  if (Line *Way = findWay(LA))
    Way->Valid = false;
}

void Cache::flush() {
  for (Line &L : Lines)
    L.Valid = false;
  LastLineAddr = ~0ULL;
  LastLine = nullptr;
}
