//===- Cache.h - Set-associative cache model --------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Set-associative, LRU-replacement cache model. Instances are composed by
/// MemoryHierarchy into the private-L1 / private-L2 / shared-L3 structure of
/// the paper's evaluation machine (Xeon E5-2650 v4: 32 KiB L1, 256 KiB L2,
/// 30 MiB shared L3, 64 B lines).
///
/// Hot-path design: line and set indexing are precomputed shift/mask
/// operations (line size and set count must be powers of two — every real
/// cache geometry is), and an MRU memo short-circuits the way scan when an
/// access lands on the line touched immediately before, the overwhelmingly
/// common case for sequential sweeps. Both paths produce byte-identical
/// statistics to the plain scan.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SIM_CACHE_H
#define DJX_SIM_CACHE_H

#include <cstdint>
#include <vector>

namespace djx {

/// Geometry of one cache level.
struct CacheConfig {
  uint64_t SizeBytes = 32 * 1024;
  uint32_t LineBytes = 64;
  uint32_t Ways = 8;

  uint64_t numSets() const { return SizeBytes / (LineBytes * Ways); }
};

/// One set-associative cache with true-LRU replacement.
class Cache {
public:
  explicit Cache(const CacheConfig &Config);

  /// Looks up \p Addr; on miss, fills the line (evicting LRU).
  /// \returns true on hit.
  bool access(uint64_t Addr);

  /// Probes without filling. \returns true when the line is resident.
  bool contains(uint64_t Addr) const;

  /// Invalidates the line holding \p Addr, if resident.
  void invalidate(uint64_t Addr);

  /// Drops all contents (e.g. between benchmark repetitions).
  void flush();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t evictions() const { return Evictions; }
  const CacheConfig &config() const { return Config; }

private:
  struct Line {
    uint64_t Tag = ~0ULL;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  uint64_t lineAddr(uint64_t Addr) const { return Addr >> LineShift; }
  uint64_t setIndex(uint64_t LineAddr) const { return LineAddr & SetMask; }

  /// First way in \p LineAddr's set holding it, or nullptr. The single
  /// tag-match loop shared by access/contains/invalidate.
  Line *findWay(uint64_t LineAddr);
  const Line *findWay(uint64_t LineAddr) const {
    return const_cast<Cache *>(this)->findWay(LineAddr);
  }

  CacheConfig Config;
  uint64_t NumSets;
  uint32_t LineShift; ///< log2(LineBytes).
  uint64_t SetMask;   ///< NumSets - 1 (sets are a power of two).
  std::vector<Line> Lines; // NumSets * Ways, row-major by set.
  /// MRU memo: the line (and its tag) hit or filled by the last access.
  uint64_t LastLineAddr = ~0ULL;
  Line *LastLine = nullptr;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

} // namespace djx

#endif // DJX_SIM_CACHE_H
