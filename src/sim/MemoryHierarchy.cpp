//===- MemoryHierarchy.cpp - L1/L2/L3 + TLB + NUMA composition ------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/MemoryHierarchy.h"

#include <algorithm>
#include <cassert>

using namespace djx;

MemoryHierarchy::MemoryHierarchy(const MachineConfig &Cfg)
    : Config(Cfg), Numa(Cfg.Numa) {
  uint32_t Cpus = Numa.numCpus();
  L1s.reserve(Cpus);
  L2s.reserve(Cpus);
  Dtlbs.reserve(Cpus);
  for (uint32_t I = 0; I < Cpus; ++I) {
    L1s.emplace_back(Config.L1);
    L2s.emplace_back(Config.L2);
    Dtlbs.emplace_back(Config.Dtlb);
  }
  L3PerNode.reserve(Numa.numNodes());
  for (uint32_t I = 0; I < Numa.numNodes(); ++I)
    L3PerNode.emplace_back(Config.L3);
  DramTraffic.resize(Numa.numNodes(), 0);
  DramTrafficByCpu.resize(static_cast<size_t>(Numa.numNodes()) * Cpus, 0);
}

AccessResult MemoryHierarchy::accessMemory(uint32_t Cpu, uint64_t Addr) {
  assert(Cpu < numCpus() && "CPU id out of range");
  AccessResult R;
  const LatencyModel &Lat = Config.Latency;

  R.TlbMiss = !Dtlbs[Cpu].access(Addr);
  if (R.TlbMiss)
    R.LatencyCycles += Lat.TlbMissPenalty;

  // First touch places the page; later touches just report its home.
  R.HomeNode = Numa.touch(Addr, Cpu);
  NumaNodeId CpuNode = Numa.nodeOfCpu(Cpu);

  if (L1s[Cpu].access(Addr)) {
    R.LatencyCycles += Lat.L1Hit;
  } else {
    R.L1Miss = true;
    if (L2s[Cpu].access(Addr)) {
      R.LatencyCycles += Lat.L2Hit;
    } else {
      R.L2Miss = true;
      if (L3PerNode[CpuNode].access(Addr)) {
        R.LatencyCycles += Lat.L3Hit;
      } else {
        R.L3Miss = true;
        R.RemoteAccess = R.HomeNode != CpuNode;
        R.LatencyCycles += R.RemoteAccess ? Lat.RemoteDram : Lat.LocalDram;
        // Contention proxy: the busier the home node's memory controller,
        // the slower this access.
        if (Lat.DramContentionMaxPenalty > 0) {
          // Contention proxy: penalty grows with the share of all DRAM
          // traffic that *other* CPUs direct at this page's home node.
          // Counters are cumulative because threads are cooperatively
          // scheduled — logically-concurrent workers execute one after
          // another, so a window of "recent" accesses would only ever see
          // the current thread.
          size_t Slot = static_cast<size_t>(R.HomeNode) * numCpus() + Cpu;
          uint64_t Others =
              DramTraffic[R.HomeNode] - DramTrafficByCpu[Slot];
          R.LatencyCycles += static_cast<uint32_t>(
              static_cast<uint64_t>(Lat.DramContentionMaxPenalty) * Others /
              std::max<uint64_t>(DramTrafficTotal, 1));
          ++DramTraffic[R.HomeNode];
          ++DramTrafficByCpu[Slot];
          ++DramTrafficTotal;
        }
      }
    }
  }

  ++Stats.Accesses;
  Stats.L1Misses += R.L1Miss;
  Stats.L2Misses += R.L2Miss;
  Stats.L3Misses += R.L3Miss;
  Stats.TlbMisses += R.TlbMiss;
  Stats.RemoteAccesses += R.RemoteAccess;
  Stats.TotalLatency += R.LatencyCycles;
  return R;
}

void MemoryHierarchy::invalidateLine(uint64_t Addr) {
  for (Cache &C : L1s)
    C.invalidate(Addr);
  for (Cache &C : L2s)
    C.invalidate(Addr);
  for (Cache &C : L3PerNode)
    C.invalidate(Addr);
}

void MemoryHierarchy::flushCaches(bool IncludeL3) {
  for (Cache &C : L1s)
    C.flush();
  for (Cache &C : L2s)
    C.flush();
  if (IncludeL3)
    for (Cache &C : L3PerNode)
      C.flush();
  for (Tlb &T : Dtlbs)
    T.flush();
}
