//===- MemoryHierarchy.h - L1/L2/L3 + TLB + NUMA composition ----*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composes the per-CPU private L1/L2 caches, the shared L3, the per-CPU
/// data TLB, and the NUMA topology into one access pipeline. Every memory
/// access the MiniJVM performs flows through accessMemory(), which returns
/// the miss profile and latency; the PMU samples from exactly these events,
/// so DJXPerf's hardware metrics are emergent rather than synthetic.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SIM_MEMORYHIERARCHY_H
#define DJX_SIM_MEMORYHIERARCHY_H

#include "sim/Cache.h"
#include "sim/NumaTopology.h"
#include "sim/Tlb.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace djx {

/// Per-level access latencies in cycles, loosely calibrated to the paper's
/// Broadwell Xeon (L1 4, L2 12, L3 ~40, DRAM ~200, remote DRAM ~2x local).
struct LatencyModel {
  uint32_t L1Hit = 4;
  uint32_t L2Hit = 12;
  uint32_t L3Hit = 42;
  uint32_t LocalDram = 200;
  uint32_t RemoteDram = 400;
  uint32_t TlbMissPenalty = 36;
  /// Extra cycles added to a DRAM access when DRAM traffic concentrates on
  /// the accessed page's home node — a simple memory-controller contention
  /// proxy (workers "compete for memory bandwidth", §7.5). The penalty
  /// scales with the share of all other CPUs' DRAM traffic that targets
  /// the same home node.
  uint32_t DramContentionMaxPenalty = 240;
};

/// Full machine configuration.
struct MachineConfig {
  CacheConfig L1{32 * 1024, 64, 8};
  CacheConfig L2{256 * 1024, 64, 8};
  CacheConfig L3{4 * 1024 * 1024, 64, 16}; // Scaled-down shared L3.
  TlbConfig Dtlb{64, 4096};
  NumaConfig Numa{2, 12, 4096};
  LatencyModel Latency;
};

/// Result of one memory access: which levels missed and what it cost.
struct AccessResult {
  bool L1Miss = false;
  bool L2Miss = false;
  bool L3Miss = false;
  bool TlbMiss = false;
  /// True when the access reached DRAM on a node other than the CPU's.
  bool RemoteAccess = false;
  /// Node where the page resides (after first-touch placement).
  NumaNodeId HomeNode = kInvalidNode;
  /// Total latency in cycles.
  uint32_t LatencyCycles = 0;
};

/// Aggregate counters for a hierarchy (whole machine).
struct HierarchyStats {
  uint64_t Accesses = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
  uint64_t L3Misses = 0;
  uint64_t TlbMisses = 0;
  uint64_t RemoteAccesses = 0;
  uint64_t TotalLatency = 0;
};

/// The simulated memory system of the whole machine.
///
/// Concurrency contract: a MemoryHierarchy instance is single-writer —
/// it has no internal locking, and every access mutates cache/TLB/NUMA
/// state. The serial VM drives one shared instance; the parallel runtime
/// gives each simulated thread a worker-private instance (JavaThread::
/// setMachine) and merges the per-instance stats deterministically in
/// thread-id order (Analyzer::mergeHierarchyStats).
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MachineConfig &Config);

  /// Performs one data access from \p Cpu to \p Addr. Stores and loads are
  /// modeled identically (the PMU distinguishes them by event type only).
  AccessResult accessMemory(uint32_t Cpu, uint64_t Addr);

  /// Invalidates the line holding \p Addr in every cache (used by the GC
  /// when it relocates objects, approximating coherence traffic).
  void invalidateLine(uint64_t Addr);

  /// Flushes caches and TLBs; NUMA placement is preserved. When
  /// \p IncludeL3 is false the shared L3 keeps its contents — the paper's
  /// machine has a 30 MiB L3 that typically retains the heap across a GC,
  /// so a post-GC reload costs an L3 hit rather than a DRAM round trip.
  void flushCaches(bool IncludeL3 = true);

  NumaTopology &numa() { return Numa; }
  const NumaTopology &numa() const { return Numa; }
  const HierarchyStats &stats() const { return Stats; }
  void resetStats() { Stats = HierarchyStats(); }
  const MachineConfig &config() const { return Config; }
  uint32_t numCpus() const { return Numa.numCpus(); }

private:
  MachineConfig Config;
  NumaTopology Numa;
  std::vector<Cache> L1s;        // One per CPU.
  std::vector<Cache> L2s;        // One per CPU.
  std::vector<Cache> L3PerNode;  // One shared L3 per socket.
  std::vector<Tlb> Dtlbs;        // One per CPU.
  HierarchyStats Stats;
  /// Decaying per-node DRAM access counters for the contention proxy,
  /// plus a per-(node, cpu) breakdown so an access is only slowed by
  /// *other* CPUs' traffic to the same home node.
  std::vector<uint64_t> DramTraffic;
  std::vector<uint64_t> DramTrafficByCpu; // [Node * NumCpus + Cpu]
  uint64_t DramTrafficTotal = 0;
};

} // namespace djx

#endif // DJX_SIM_MEMORYHIERARCHY_H
