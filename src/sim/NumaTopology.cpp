//===- NumaTopology.cpp - NUMA node and page placement model --------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/NumaTopology.h"

#include "support/Bits.h"

#include <cassert>
#include <utility>

using namespace djx;

const char *djx::numaPolicyName(NumaPolicy Policy) {
  switch (Policy) {
  case NumaPolicy::FirstTouch:
    return "first-touch";
  case NumaPolicy::Bind:
    return "bind";
  case NumaPolicy::Interleave:
    return "interleave";
  }
  return "?";
}

bool djx::parseNumaPolicy(const std::string &Name, NumaPolicy &Out) {
  if (Name == "first-touch") {
    Out = NumaPolicy::FirstTouch;
    return true;
  }
  if (Name == "bind") {
    Out = NumaPolicy::Bind;
    return true;
  }
  if (Name == "interleave") {
    Out = NumaPolicy::Interleave;
    return true;
  }
  return false;
}

void NumaTopology::PageTable::rehash(size_t NewSize) {
  std::vector<Slot> Old = std::move(Slots);
  Slots.clear();
  Slots.resize(NewSize);
  NumFull = 0;
  NumUsed = 0;
  for (const Slot &S : Old)
    if (S.State == kFull)
      set(S.Page, S.Node);
}

void NumaTopology::PageTable::set(uint64_t Page, NumaNodeId Node) {
  // Keep occupancy (full + tombstones) below 70% so probes stay short.
  // Grow only when *live* entries need the room; when tombstones dominate
  // (erase-heavy churn from releaseRange) rehash at the same size, which
  // clears them — otherwise steady-state churn would double the table
  // without bound even though NumFull stays small.
  if ((NumUsed + 1) * 10 >= Slots.size() * 7)
    rehash((NumFull + 1) * 10 >= Slots.size() * 5 ? Slots.size() * 2
                                                  : Slots.size());
  size_t Idx = probeStart(Page);
  size_t FirstTombstone = SIZE_MAX;
  for (;;) {
    Slot &S = Slots[Idx];
    if (S.State == kFull && S.Page == Page) {
      S.Node = Node;
      return;
    }
    if (S.State == kTombstone && FirstTombstone == SIZE_MAX)
      FirstTombstone = Idx;
    if (S.State == kEmpty) {
      size_t Target = FirstTombstone != SIZE_MAX ? FirstTombstone : Idx;
      Slot &T = Slots[Target];
      if (T.State == kEmpty)
        ++NumUsed; // Reusing a tombstone does not raise occupancy.
      T.Page = Page;
      T.Node = Node;
      T.State = kFull;
      ++NumFull;
      return;
    }
    Idx = (Idx + 1) & (Slots.size() - 1);
  }
}

void NumaTopology::PageTable::erase(uint64_t Page) {
  size_t Idx = probeStart(Page);
  for (;;) {
    Slot &S = Slots[Idx];
    if (S.State == kEmpty)
      return;
    if (S.State == kFull && S.Page == Page) {
      S.State = kTombstone;
      --NumFull;
      return;
    }
    Idx = (Idx + 1) & (Slots.size() - 1);
  }
}

NumaTopology::NumaTopology(const NumaConfig &Cfg) : Config(Cfg) {
  assert(Config.NumNodes > 0 && "need at least one NUMA node");
  assert(Config.CpusPerNode > 0 && "need at least one CPU per node");
  assert(isPowerOfTwo(Config.PageBytes) &&
         "page size must be a power of two");
  PageShift = floorLog2(Config.PageBytes);
  CpuToNode.resize(numCpus());
  for (uint32_t C = 0; C < numCpus(); ++C)
    CpuToNode[C] = static_cast<NumaNodeId>(C / Config.CpusPerNode);
  LastTouch.resize(numCpus());
}

NumaNodeId NumaTopology::touchSlow(uint64_t Page, uint32_t Cpu) {
  NumaNodeId Home = Pages.find(Page);
  if (Home != kInvalidNode)
    return Home;
  NumaNodeId Node = nodeOfCpu(Cpu);
  Pages.set(Page, Node);
  return Node;
}

NumaNodeId NumaTopology::nodeOfAddr(uint64_t Addr) const {
  return Pages.find(pageOf(Addr));
}

bool NumaTopology::movePage(uint64_t Addr, NumaNodeId Node) {
  if (Node < 0 || static_cast<uint32_t>(Node) >= Config.NumNodes)
    return false;
  Pages.set(pageOf(Addr), Node);
  invalidateMemos();
  return true;
}

void NumaTopology::interleaveRange(uint64_t Start, uint64_t Size) {
  if (Size == 0)
    return;
  uint64_t FirstPage = pageOf(Start);
  uint64_t LastPage = pageOf(Start + Size - 1);
  for (uint64_t P = FirstPage; P <= LastPage; ++P) {
    Pages.set(P, static_cast<NumaNodeId>(InterleaveCursor % Config.NumNodes));
    ++InterleaveCursor;
  }
  invalidateMemos();
}

void NumaTopology::bindRange(uint64_t Start, uint64_t Size, NumaNodeId Node) {
  assert(Node >= 0 && static_cast<uint32_t>(Node) < Config.NumNodes &&
         "bad NUMA node");
  if (Size == 0)
    return;
  uint64_t FirstPage = pageOf(Start);
  uint64_t LastPage = pageOf(Start + Size - 1);
  for (uint64_t P = FirstPage; P <= LastPage; ++P)
    Pages.set(P, Node);
  invalidateMemos();
}

void NumaTopology::releaseRange(uint64_t Start, uint64_t Size) {
  if (Size == 0)
    return;
  // Contract: only pages *fully inside* [Start, Start+Size) are forgotten.
  // A boundary page that the range covers partially may still back a
  // neighbouring live allocation, whose placement must survive the
  // release.
  uint64_t PageBytes = Config.PageBytes;
  uint64_t FirstFull = (Start + PageBytes - 1) >> PageShift;
  uint64_t EndFull = (Start + Size) >> PageShift; // Exclusive.
  if (FirstFull >= EndFull)
    return; // No page is fully covered.
  for (uint64_t P = FirstFull; P < EndFull; ++P)
    Pages.erase(P);
  invalidateMemos();
}
