//===- NumaTopology.cpp - NUMA node and page placement model --------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/NumaTopology.h"

#include <cassert>

using namespace djx;

NumaTopology::NumaTopology(const NumaConfig &Cfg) : Config(Cfg) {
  assert(Config.NumNodes > 0 && "need at least one NUMA node");
  assert(Config.CpusPerNode > 0 && "need at least one CPU per node");
}

NumaNodeId NumaTopology::nodeOfCpu(uint32_t Cpu) const {
  assert(Cpu < numCpus() && "CPU id out of range");
  return static_cast<NumaNodeId>(Cpu / Config.CpusPerNode);
}

NumaNodeId NumaTopology::touch(uint64_t Addr, uint32_t Cpu) {
  uint64_t Page = pageOf(Addr);
  auto It = PageHome.find(Page);
  if (It != PageHome.end())
    return It->second;
  NumaNodeId Node = nodeOfCpu(Cpu);
  PageHome.emplace(Page, Node);
  return Node;
}

NumaNodeId NumaTopology::nodeOfAddr(uint64_t Addr) const {
  auto It = PageHome.find(pageOf(Addr));
  return It == PageHome.end() ? kInvalidNode : It->second;
}

bool NumaTopology::movePage(uint64_t Addr, NumaNodeId Node) {
  if (Node < 0 || static_cast<uint32_t>(Node) >= Config.NumNodes)
    return false;
  PageHome[pageOf(Addr)] = Node;
  return true;
}

void NumaTopology::interleaveRange(uint64_t Start, uint64_t Size) {
  if (Size == 0)
    return;
  uint64_t FirstPage = pageOf(Start);
  uint64_t LastPage = pageOf(Start + Size - 1);
  for (uint64_t P = FirstPage; P <= LastPage; ++P) {
    PageHome[P] =
        static_cast<NumaNodeId>(InterleaveCursor % Config.NumNodes);
    ++InterleaveCursor;
  }
}

void NumaTopology::bindRange(uint64_t Start, uint64_t Size, NumaNodeId Node) {
  assert(Node >= 0 && static_cast<uint32_t>(Node) < Config.NumNodes &&
         "bad NUMA node");
  if (Size == 0)
    return;
  uint64_t FirstPage = pageOf(Start);
  uint64_t LastPage = pageOf(Start + Size - 1);
  for (uint64_t P = FirstPage; P <= LastPage; ++P)
    PageHome[P] = Node;
}

void NumaTopology::releaseRange(uint64_t Start, uint64_t Size) {
  if (Size == 0)
    return;
  uint64_t FirstPage = pageOf(Start);
  uint64_t LastPage = pageOf(Start + Size - 1);
  for (uint64_t P = FirstPage; P <= LastPage; ++P)
    PageHome.erase(P);
}
