//===- NumaTopology.h - NUMA node and page placement model ------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models a multi-socket NUMA machine: CPUs grouped into nodes, first-touch
/// page placement, and the libnuma operations DJXPerf relies on —
/// move_pages (query the node a page resides on, or migrate it) and
/// numa_alloc_interleaved (§4.3, §7.5, §7.6).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SIM_NUMATOPOLOGY_H
#define DJX_SIM_NUMATOPOLOGY_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace djx {

/// Identifies a NUMA node; kInvalidNode means "page not yet placed".
using NumaNodeId = int32_t;
constexpr NumaNodeId kInvalidNode = -1;

/// Shape of the machine: \p NumNodes sockets with \p CpusPerNode each.
struct NumaConfig {
  uint32_t NumNodes = 2;
  uint32_t CpusPerNode = 12; // Matches the paper's 24-core 2-socket Xeon.
  uint32_t PageBytes = 4096;
};

/// NUMA placement state: which node each touched page resides on.
class NumaTopology {
public:
  explicit NumaTopology(const NumaConfig &Config);

  uint32_t numCpus() const { return Config.NumNodes * Config.CpusPerNode; }
  uint32_t numNodes() const { return Config.NumNodes; }

  /// Node owning \p Cpu.
  NumaNodeId nodeOfCpu(uint32_t Cpu) const;

  /// Records a first touch of \p Addr from \p Cpu: an unplaced page is
  /// allocated on the toucher's node (the default Linux policy).
  /// \returns the node the page resides on after the touch.
  NumaNodeId touch(uint64_t Addr, uint32_t Cpu);

  /// move_pages query mode: node where the page holding \p Addr resides, or
  /// kInvalidNode when never touched (paper: "return the NUMA node where
  /// the page is currently residing").
  NumaNodeId nodeOfAddr(uint64_t Addr) const;

  /// move_pages migrate mode: forces the page holding \p Addr onto
  /// \p Node. \returns true on success (node must exist).
  bool movePage(uint64_t Addr, NumaNodeId Node);

  /// numa_alloc_interleaved: pre-places pages of [Start, Start+Size)
  /// round-robin across all nodes, defeating first-touch.
  void interleaveRange(uint64_t Start, uint64_t Size);

  /// Pre-places pages of [Start, Start+Size) on a single node
  /// (numa_alloc_onnode).
  void bindRange(uint64_t Start, uint64_t Size, NumaNodeId Node);

  /// Forgets placement for pages fully inside [Start, Start+Size); used
  /// when the heap recycles address ranges.
  void releaseRange(uint64_t Start, uint64_t Size);

  uint64_t pageOf(uint64_t Addr) const { return Addr / Config.PageBytes; }
  const NumaConfig &config() const { return Config; }

  /// Number of pages with an assigned home node.
  size_t numPlacedPages() const { return PageHome.size(); }

private:
  NumaConfig Config;
  std::unordered_map<uint64_t, NumaNodeId> PageHome;
  uint64_t InterleaveCursor = 0;
};

} // namespace djx

#endif // DJX_SIM_NUMATOPOLOGY_H
