//===- NumaTopology.h - NUMA node and page placement model ------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models a multi-socket NUMA machine: CPUs grouped into nodes, first-touch
/// page placement, and the libnuma operations DJXPerf relies on —
/// move_pages (query the node a page resides on, or migrate it) and
/// numa_alloc_interleaved (§4.3, §7.5, §7.6).
///
/// Hot-path design: touch() — called for every simulated access — first
/// consults a per-CPU last-page memo (sequential sweeps stay on one page
/// for hundreds of accesses), then a flat open-addressing hash table with
/// linear probing instead of std::unordered_map's bucket chains. Placement
/// mutators (move/bind/interleave/release) invalidate the memos.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SIM_NUMATOPOLOGY_H
#define DJX_SIM_NUMATOPOLOGY_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace djx {

/// Identifies a NUMA node; kInvalidNode means "page not yet placed".
using NumaNodeId = int32_t;
constexpr NumaNodeId kInvalidNode = -1;

/// Heap-placement policy the parallel runtime applies to shard address
/// ranges (the `--numa-policy` knob):
///  * FirstTouch — the deterministic model of Linux first-touch under the
///    Executor: each shard's pages are home on its owner thread's node,
///    because the owner's allocation zero-fill is the first touch of every
///    page it ever uses. This is the default and reproduces the emergent
///    per-thread placement exactly for shard-local workloads.
///  * Bind — every shard bound to node 0 (numa_alloc_onnode / membind:
///    one memory controller serves everything).
///  * Interleave — pages spread round-robin across nodes
///    (numa_alloc_interleaved, the paper's §7.5/§7.6 fix).
enum class NumaPolicy : uint8_t { FirstTouch, Bind, Interleave };

/// Stable spelling used by the CLI/bench ("first-touch", "bind",
/// "interleave").
const char *numaPolicyName(NumaPolicy Policy);

/// Parses a numaPolicyName spelling. \returns false on unknown names
/// (\p Out untouched).
bool parseNumaPolicy(const std::string &Name, NumaPolicy &Out);

/// Shape of the machine: \p NumNodes sockets with \p CpusPerNode each.
struct NumaConfig {
  uint32_t NumNodes = 2;
  uint32_t CpusPerNode = 12; // Matches the paper's 24-core 2-socket Xeon.
  uint32_t PageBytes = 4096;
};

/// NUMA placement state: which node each touched page resides on.
class NumaTopology {
public:
  explicit NumaTopology(const NumaConfig &Config);

  uint32_t numCpus() const { return Config.NumNodes * Config.CpusPerNode; }
  uint32_t numNodes() const { return Config.NumNodes; }

  /// Node owning \p Cpu.
  NumaNodeId nodeOfCpu(uint32_t Cpu) const {
    assert(Cpu < numCpus() && "CPU id out of range");
    return CpuToNode[Cpu];
  }

  /// Records a first touch of \p Addr from \p Cpu: an unplaced page is
  /// allocated on the toucher's node (the default Linux policy).
  /// \returns the node the page resides on after the touch.
  NumaNodeId touch(uint64_t Addr, uint32_t Cpu) {
    uint64_t Page = pageOf(Addr);
    PageMemo &M = LastTouch[Cpu];
    if (M.Page == Page)
      return M.Node;
    NumaNodeId Node = touchSlow(Page, Cpu);
    M.Page = Page;
    M.Node = Node;
    return Node;
  }

  /// move_pages query mode: node where the page holding \p Addr resides, or
  /// kInvalidNode when never touched (paper: "return the NUMA node where
  /// the page is currently residing").
  NumaNodeId nodeOfAddr(uint64_t Addr) const;

  /// move_pages migrate mode: forces the page holding \p Addr onto
  /// \p Node. \returns true on success (node must exist).
  bool movePage(uint64_t Addr, NumaNodeId Node);

  /// numa_alloc_interleaved: pre-places pages of [Start, Start+Size)
  /// round-robin across all nodes, defeating first-touch.
  void interleaveRange(uint64_t Start, uint64_t Size);

  /// Pre-places pages of [Start, Start+Size) on a single node
  /// (numa_alloc_onnode).
  void bindRange(uint64_t Start, uint64_t Size, NumaNodeId Node);

  /// Forgets placement for pages fully inside [Start, Start+Size); used
  /// when the heap recycles address ranges.
  void releaseRange(uint64_t Start, uint64_t Size);

  uint64_t pageOf(uint64_t Addr) const { return Addr >> PageShift; }
  const NumaConfig &config() const { return Config; }

  /// Number of pages with an assigned home node.
  size_t numPlacedPages() const { return Pages.size(); }

  /// Slots in the backing page table (diagnostics/tests: erase-heavy churn
  /// must not grow the table when the live page count stays small).
  size_t pageTableSlots() const { return Pages.numSlots(); }

private:
  /// Open-addressing (linear probe, tombstone-delete) map from page number
  /// to home node. Pages are dense small integers, so a multiplicative
  /// hash into a power-of-two table beats unordered_map's chained buckets
  /// on every probe of the access hot path.
  class PageTable {
  public:
    PageTable() { Slots.resize(kInitialSlots); }

    /// \returns the home of \p Page or kInvalidNode.
    NumaNodeId find(uint64_t Page) const {
      size_t Idx = probeStart(Page);
      for (;;) {
        const Slot &S = Slots[Idx];
        if (S.State == kEmpty)
          return kInvalidNode;
        if (S.State == kFull && S.Page == Page)
          return S.Node;
        Idx = (Idx + 1) & (Slots.size() - 1);
      }
    }

    /// Inserts or overwrites \p Page's home.
    void set(uint64_t Page, NumaNodeId Node);

    /// Removes \p Page if present.
    void erase(uint64_t Page);

    size_t size() const { return NumFull; }
    size_t numSlots() const { return Slots.size(); }

  private:
    enum : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
    struct Slot {
      uint64_t Page = 0;
      NumaNodeId Node = kInvalidNode;
      uint8_t State = kEmpty;
    };

    static uint64_t hash(uint64_t Page) {
      // splitmix64 finalizer: good avalanche for sequential page numbers.
      Page ^= Page >> 30;
      Page *= 0xbf58476d1ce4e5b9ULL;
      Page ^= Page >> 27;
      Page *= 0x94d049bb133111ebULL;
      Page ^= Page >> 31;
      return Page;
    }
    size_t probeStart(uint64_t Page) const {
      return static_cast<size_t>(hash(Page)) & (Slots.size() - 1);
    }
    void rehash(size_t NewSize);

    static constexpr size_t kInitialSlots = 1024;
    std::vector<Slot> Slots;
    size_t NumFull = 0;
    size_t NumUsed = 0; ///< Full + tombstone slots.
  };

  struct PageMemo {
    uint64_t Page = ~0ULL;
    NumaNodeId Node = kInvalidNode;
  };

  /// Table lookup / first-touch placement; fills the caller's memo.
  NumaNodeId touchSlow(uint64_t Page, uint32_t Cpu);

  /// Placement changed: no memo may answer from stale state.
  void invalidateMemos() {
    for (PageMemo &M : LastTouch)
      M.Page = ~0ULL;
  }

  NumaConfig Config;
  uint32_t PageShift; ///< log2(PageBytes).
  PageTable Pages;
  std::vector<NumaNodeId> CpuToNode; ///< Precomputed Cpu -> node.
  std::vector<PageMemo> LastTouch;   ///< Per-CPU last touched page.
  uint64_t InterleaveCursor = 0;
};

} // namespace djx

#endif // DJX_SIM_NUMATOPOLOGY_H
