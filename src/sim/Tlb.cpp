//===- Tlb.cpp - Data TLB model --------------------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/Tlb.h"

#include "support/Bits.h"

#include <cassert>

using namespace djx;

Tlb::Tlb(const TlbConfig &Cfg) : Config(Cfg) {
  assert(Config.Entries > 0 && "TLB needs at least one entry");
  assert(isPowerOfTwo(Config.PageBytes) &&
         "page size must be a power of two");
  PageShift = floorLog2(Config.PageBytes);
  Entries.resize(Config.Entries);
}

bool Tlb::access(uint64_t Addr) {
  uint64_t Page = pageOf(Addr);
  ++Clock;
  // MRU fast path: same page as the previous translation.
  if (Page == LastPage) {
    LastEntry->LastUse = Clock;
    ++Hits;
    return true;
  }
  Entry *Victim = nullptr;
  for (Entry &E : Entries) {
    if (E.Valid && E.Page == Page) {
      E.LastUse = Clock;
      ++Hits;
      LastPage = Page;
      LastEntry = &E;
      return true;
    }
    if (!Victim || !E.Valid ||
        (Victim->Valid && E.Valid && E.LastUse < Victim->LastUse))
      Victim = &E;
  }
  ++Misses;
  Victim->Valid = true;
  Victim->Page = Page;
  Victim->LastUse = Clock;
  LastPage = Page;
  LastEntry = Victim;
  return false;
}

void Tlb::flush() {
  for (Entry &E : Entries)
    E.Valid = false;
  LastPage = ~0ULL;
  LastEntry = nullptr;
}
