//===- Tlb.h - Data TLB model -----------------------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fully-associative data TLB with LRU replacement. DTLB_LOAD_MISSES is one
/// of the precise events DJXPerf can sample (§4.1).
///
/// Hot-path design: page extraction is a precomputed shift, and an MRU
/// memo answers repeat accesses to the last-translated page without
/// scanning the entry array (a 4 KiB page covers 512 word accesses, so
/// sequential sweeps hit the memo almost always). Statistics are
/// byte-identical to the plain scan.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SIM_TLB_H
#define DJX_SIM_TLB_H

#include <cstdint>
#include <vector>

namespace djx {

/// Geometry of the data TLB.
struct TlbConfig {
  uint32_t Entries = 64;
  uint32_t PageBytes = 4096;
};

/// Fully-associative LRU TLB.
class Tlb {
public:
  explicit Tlb(const TlbConfig &Config);

  /// Translates \p Addr; fills on miss. \returns true on hit.
  bool access(uint64_t Addr);

  void flush();

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  const TlbConfig &config() const { return Config; }

  uint64_t pageOf(uint64_t Addr) const { return Addr >> PageShift; }

private:
  struct Entry {
    uint64_t Page = ~0ULL;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  TlbConfig Config;
  uint32_t PageShift; ///< log2(PageBytes).
  std::vector<Entry> Entries;
  /// MRU memo: entry translated by the last access.
  uint64_t LastPage = ~0ULL;
  Entry *LastEntry = nullptr;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace djx

#endif // DJX_SIM_TLB_H
