//===- Bits.h - Small bit-manipulation helpers ------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit tricks shared by the power-of-two-indexed simulator structures
/// (caches, TLB, NUMA page table).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SUPPORT_BITS_H
#define DJX_SUPPORT_BITS_H

#include <cstdint>

namespace djx {

constexpr bool isPowerOfTwo(uint64_t V) {
  return V != 0 && (V & (V - 1)) == 0;
}

/// floor(log2(V)); 0 for V == 0.
constexpr uint32_t floorLog2(uint64_t V) {
  uint32_t R = 0;
  while (V >>= 1)
    ++R;
  return R;
}

} // namespace djx

#endif // DJX_SUPPORT_BITS_H
