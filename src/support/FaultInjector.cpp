//===- support/FaultInjector.cpp - deterministic fault injection ----===//

#include "FaultInjector.h"

#include <atomic>

namespace djx {
namespace {

// Process-global plan. Enabled is the only field read while disarmed;
// the plan body is written under install()/clear() which callers
// serialize against runs (documented contract).
std::atomic<bool> GEnabled{false};
FaultPlan GPlan;
std::atomic<uint64_t> GFired[kNumFaultSites] = {};

// splitmix64 finalizer — the same mixing discipline as the Executor's
// FuzzSchedule draws: hash logical coordinates, never share a stream.
uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

uint64_t faultMix(uint64_t Seed, uint64_t Site, uint64_t K1, uint64_t K2) {
  uint64_t H = mix(Seed ^ 0xfa017eC7ULL);
  H = mix(H ^ mix(Site + 1));
  H = mix(H ^ mix(K1 + 0x51ed270b894792ULL));
  H = mix(H ^ mix(K2 + 0x2545f4914f6cdd1dULL));
  return H;
}

double unitDraw(uint64_t Mixed) {
  return static_cast<double>(Mixed >> 11) * 0x1.0p-53;
}

} // namespace

void FaultInjector::install(const FaultPlan &Plan) {
  GEnabled.store(false, std::memory_order_release);
  GPlan = Plan;
  for (auto &C : GFired)
    C.store(0, std::memory_order_relaxed);
  bool AnyArmed = false;
  for (double R : Plan.Rate)
    AnyArmed |= R > 0.0;
  GEnabled.store(AnyArmed, std::memory_order_release);
}

void FaultInjector::clear() {
  GEnabled.store(false, std::memory_order_release);
  GPlan = FaultPlan{};
  for (auto &C : GFired)
    C.store(0, std::memory_order_relaxed);
}

bool FaultInjector::enabled() {
  return GEnabled.load(std::memory_order_acquire);
}

FaultPlan FaultInjector::plan() { return GPlan; }

bool FaultInjector::shouldFail(FaultSite Site, uint64_t K1, uint64_t K2) {
  if (!GEnabled.load(std::memory_order_acquire))
    return false;
  unsigned I = static_cast<unsigned>(Site);
  double Rate = GPlan.Rate[I];
  if (Rate <= 0.0)
    return false;
  bool Fire =
      Rate >= 1.0 ||
      unitDraw(faultMix(GPlan.Seed, I, K1, K2)) < Rate;
  if (Fire)
    GFired[I].fetch_add(1, std::memory_order_relaxed);
  return Fire;
}

uint64_t FaultInjector::firedCount(FaultSite Site) {
  return GFired[static_cast<unsigned>(Site)].load(std::memory_order_relaxed);
}

} // namespace djx
