//===- support/FaultInjector.h - deterministic fault injection ------===//
//
// Seeded fault-injection layer mirroring FuzzSchedule's discipline:
// every injection decision is a *stateless* splitmix hash of logical
// coordinates — (seed, site, per-site logical counters) — never a
// shared PRNG stream. Because the keys are logical (shard allocation
// ordinals, per-ring append ordinals, GC request ordinals, round/task
// pairs), the set of injected faults is identical across --jobs 1/2/4
// and across host interleavings, so a failing campaign replays exactly
// from its seed (printed as DJX_FAULT_SEED by faultinject_test and the
// CLI).
//
// Sites:
//   HeapAlloc    — forced shard exhaustion: the allocation behaves as
//                  if the shard were full. Keyed on (shard, per-shard
//                  allocation ordinal), so the post-GC retry of the
//                  same allocation draws the same key and the fault
//                  escalates deterministically to OutOfMemory.
//   RingPush     — forced SampleRing overflow: the sample is dropped
//                  and counted instead of buffered. Keyed on (thread,
//                  per-ring append ordinal).
//   GcCollect    — forced no-op collection: requestGc returns empty
//                  stats without collecting. Keyed on the VM's GC
//                  request ordinal.
//   QuantumClaim — forced worker stall: the worker publishes a stalled
//                  state and stops making progress; the Executor's
//                  host-time watchdog converts it into a WorkerStall
//                  error. Keyed on (round, task). Only armed while a
//                  watchdog is running (StallTimeoutMs > 0).
//   JournalShortWrite — torn journal tail: a physical journal flush
//                  writes only a prefix of its buffer, then journaling
//                  degrades to off (the model of a crash mid-write).
//                  Keyed on the journal's write ordinal.
//   JournalWriteError — transient EIO on a journal flush: retried with
//                  bounded backoff, then journaling degrades to off
//                  with a stderr warning; the run continues. Keyed on
//                  (write ordinal, attempt).
//   JournalCorruptByte — one bit flipped in a buffered journal segment
//                  after its CRC was computed; recovery must catch it
//                  on read-back. Keyed on the segment sequence number.
//
// The journal keys are logical ordinals (flushes happen at round
// barriers), so like every other site the injected set is identical
// across --jobs values.
//
// The injector is process-global (installed by tests or the CLI before
// a run; runs never install concurrently). When disabled the hot-path
// cost is one relaxed atomic load.
//
//===----------------------------------------------------------------===//

#ifndef DJX_SUPPORT_FAULTINJECTOR_H
#define DJX_SUPPORT_FAULTINJECTOR_H

#include <cstdint>

namespace djx {

enum class FaultSite : unsigned {
  HeapAlloc = 0,
  RingPush = 1,
  GcCollect = 2,
  QuantumClaim = 3,
  JournalShortWrite = 4,
  JournalWriteError = 5,
  JournalCorruptByte = 6,
};

inline constexpr unsigned kNumFaultSites = 7;

inline const char *faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::HeapAlloc:
    return "heap-alloc";
  case FaultSite::RingPush:
    return "ring-push";
  case FaultSite::GcCollect:
    return "gc-collect";
  case FaultSite::QuantumClaim:
    return "quantum-claim";
  case FaultSite::JournalShortWrite:
    return "journal-short-write";
  case FaultSite::JournalWriteError:
    return "journal-write-error";
  case FaultSite::JournalCorruptByte:
    return "journal-corrupt-byte";
  }
  return "unknown";
}

struct FaultPlan {
  uint64_t Seed = 0;
  /// Per-site injection probability in [0, 1]; 0 disarms the site.
  double Rate[kNumFaultSites] = {};

  double &rate(FaultSite S) { return Rate[static_cast<unsigned>(S)]; }
  double rate(FaultSite S) const { return Rate[static_cast<unsigned>(S)]; }
};

class FaultInjector {
public:
  /// Install a plan process-wide. Must not race with a running VM;
  /// tests and the CLI install before starting a run.
  static void install(const FaultPlan &Plan);

  /// Disarm all sites and reset fired counters.
  static void clear();

  static bool enabled();
  static FaultPlan plan();

  /// Deterministic draw: true iff the splitmix hash of
  /// (seed, site, K1, K2) lands under the site's rate. Returns false
  /// (and costs one relaxed load) when no plan is installed.
  static bool shouldFail(FaultSite Site, uint64_t K1, uint64_t K2 = 0);

  /// Number of injections actually fired per site since install/clear.
  /// Totals are for reporting; host increment order is unspecified.
  static uint64_t firedCount(FaultSite Site);
};

} // namespace djx

#endif // DJX_SUPPORT_FAULTINJECTOR_H
