//===- IntervalSplayTree.h - Interval map on a splay tree -------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Self-adjusting interval map used for object-centric attribution (paper
/// §4.2). The tree stores non-overlapping half-open address ranges
/// [Start, End) and supports the operations DJXPerf needs on the hot path:
/// point lookup (PMU effective address -> enclosing object), insertion on
/// allocation, removal on reclamation, and relocation when the garbage
/// collector moves an object. Lookups splay the touched node to the root, so
/// repeated samples into the same hot object cost amortised O(1).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SUPPORT_INTERVALSPLAYTREE_H
#define DJX_SUPPORT_INTERVALSPLAYTREE_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace djx {

/// An interval map keyed by [Start, End) address ranges.
///
/// Intervals never overlap. Inserting a range that overlaps existing
/// intervals evicts them first (`insert` returns the number of evicted
/// stale intervals); this mirrors DJXPerf's behaviour when the attach mode
/// missed an allocation and a stale range must be superseded (§4.5).
template <typename ValueT> class IntervalSplayTree {
public:
  struct Entry {
    uint64_t Start;
    uint64_t End;
    ValueT Value;
  };

  IntervalSplayTree() = default;
  ~IntervalSplayTree() { clear(); }

  IntervalSplayTree(const IntervalSplayTree &) = delete;
  IntervalSplayTree &operator=(const IntervalSplayTree &) = delete;

  IntervalSplayTree(IntervalSplayTree &&Other) noexcept
      : Root(Other.Root), NumNodes(Other.NumNodes) {
    Other.Root = nullptr;
    Other.NumNodes = 0;
  }

  /// Inserts [Start, Start+Size). Evicts any overlapping stale intervals.
  /// \returns the number of stale intervals that were evicted.
  unsigned insert(uint64_t Start, uint64_t Size, ValueT Value) {
    assert(Size > 0 && "empty interval is not addressable");
    uint64_t End = Start + Size;
    assert(End > Start && "interval wraps the address space");
    unsigned Evicted = removeOverlapping(Start, End);
    Node *N = new Node{Start, End, std::move(Value), nullptr, nullptr};
    if (!Root) {
      Root = N;
      ++NumNodes;
      return Evicted;
    }
    Root = splay(Root, Start);
    if (Start < Root->Start) {
      N->Left = Root->Left;
      N->Right = Root;
      Root->Left = nullptr;
    } else {
      assert(Start > Root->Start && "duplicate start after eviction");
      N->Right = Root->Right;
      N->Left = Root;
      Root->Right = nullptr;
    }
    Root = N;
    ++NumNodes;
    return Evicted;
  }

  /// Finds the interval enclosing \p Addr and splays it to the root.
  /// \returns the entry, or std::nullopt when no interval encloses \p Addr.
  std::optional<Entry> lookup(uint64_t Addr) {
    if (!Root)
      return std::nullopt;
    Root = splay(Root, Addr);
    // After splaying, the root is the node whose Start is closest to Addr.
    // The enclosing interval, if any, is the root itself or the maximum of
    // its left subtree.
    Node *Candidate = Root;
    if (Addr < Candidate->Start) {
      Candidate = Candidate->Left;
      while (Candidate && Candidate->Right)
        Candidate = Candidate->Right;
    }
    if (!Candidate || Addr < Candidate->Start || Addr >= Candidate->End)
      return std::nullopt;
    return Entry{Candidate->Start, Candidate->End, Candidate->Value};
  }

  /// Read-only point query that does not restructure the tree. Useful for
  /// verification; the profiler hot path uses lookup().
  std::optional<Entry> peek(uint64_t Addr) const {
    const Node *N = Root;
    const Node *Best = nullptr;
    while (N) {
      if (Addr < N->Start) {
        N = N->Left;
      } else {
        Best = N;
        N = N->Right;
      }
    }
    if (!Best || Addr >= Best->End)
      return std::nullopt;
    return Entry{Best->Start, Best->End, Best->Value};
  }

  /// Removes the interval that starts exactly at \p Start.
  /// \returns true if an interval was removed.
  bool removeAt(uint64_t Start) {
    if (!Root)
      return false;
    Root = splay(Root, Start);
    if (Root->Start != Start)
      return false;
    removeRoot();
    return true;
  }

  /// Removes the interval enclosing \p Addr, returning its entry when found.
  std::optional<Entry> removeContaining(uint64_t Addr) {
    std::optional<Entry> E = lookup(Addr);
    if (!E)
      return std::nullopt;
    bool Removed = removeAt(E->Start);
    (void)Removed;
    assert(Removed && "lookup hit must be removable");
    return E;
  }

  /// Moves the interval starting at \p OldStart to [NewStart,
  /// NewStart+NewSize), keeping its value. Mirrors a GC relocation.
  /// \returns true when \p OldStart named a live interval.
  bool relocate(uint64_t OldStart, uint64_t NewStart, uint64_t NewSize) {
    if (!Root)
      return false;
    Root = splay(Root, OldStart);
    if (Root->Start != OldStart)
      return false;
    ValueT Value = std::move(Root->Value);
    removeRoot();
    insert(NewStart, NewSize, std::move(Value));
    return true;
  }

  /// Removes every interval overlapping [Start, End).
  /// \returns the number of intervals removed.
  unsigned removeOverlapping(uint64_t Start, uint64_t End) {
    unsigned Removed = 0;
    while (Root) {
      Root = splay(Root, Start);
      Node *Victim = nullptr;
      if (Root->Start < End && Root->End > Start) {
        Victim = Root;
      } else if (Start < Root->Start) {
        // The splayed root starts at or after End; the only other candidate
        // is the left-subtree maximum, which may extend into our range.
        Node *N = Root->Left;
        while (N && N->Right)
          N = N->Right;
        if (N && N->End > Start)
          Victim = N;
      } else {
        // Root is entirely below Start; successors start at or above End.
        Node *N = Root->Right;
        while (N && N->Left)
          N = N->Left;
        if (N && N->Start < End)
          Victim = N;
      }
      if (!Victim)
        break;
      Root = splay(Root, Victim->Start);
      assert(Root == Victim && "splay must surface the victim");
      removeRoot();
      ++Removed;
    }
    return Removed;
  }

  /// Applies \p Fn to every entry in ascending Start order.
  void forEach(const std::function<void(const Entry &)> &Fn) const {
    forEachNode(Root, Fn);
  }

  /// Collects all entries in ascending Start order.
  std::vector<Entry> entries() const {
    std::vector<Entry> Out;
    Out.reserve(NumNodes);
    forEach([&Out](const Entry &E) { Out.push_back(E); });
    return Out;
  }

  size_t size() const { return NumNodes; }
  bool empty() const { return NumNodes == 0; }

  /// Approximate bytes held by the tree, for memory-overhead accounting.
  size_t memoryFootprint() const { return NumNodes * sizeof(Node); }

  /// Per-node cost of the same accounting, for callers that mirror the
  /// node count into a lock-free counter and compute the footprint from
  /// it (LiveObjectIndex's snapshot-read diagnostics).
  static constexpr size_t nodeBytes() { return sizeof(Node); }

  void clear() {
    destroy(Root);
    Root = nullptr;
    NumNodes = 0;
  }

  /// Verifies the BST ordering and non-overlap invariants. Test-only.
  bool checkInvariants() const {
    uint64_t PrevEnd = 0;
    bool First = true;
    bool Ok = true;
    forEach([&](const Entry &E) {
      if (E.Start >= E.End)
        Ok = false;
      if (!First && E.Start < PrevEnd)
        Ok = false;
      PrevEnd = E.End;
      First = false;
    });
    return Ok;
  }

private:
  struct Node {
    uint64_t Start;
    uint64_t End;
    ValueT Value;
    Node *Left;
    Node *Right;
  };

  /// Top-down splay on the Start key (Sleator & Tarjan 1985). After the
  /// call, the root is the node with the largest Start <= Key, or, when all
  /// Starts exceed Key, the node with the smallest Start.
  static Node *splay(Node *T, uint64_t Key) {
    if (!T)
      return nullptr;
    Node Header{0, 0, ValueT(), nullptr, nullptr};
    Node *L = &Header, *R = &Header;
    for (;;) {
      if (Key < T->Start) {
        if (!T->Left)
          break;
        if (Key < T->Left->Start) {
          Node *Y = T->Left; // Rotate right.
          T->Left = Y->Right;
          Y->Right = T;
          T = Y;
          if (!T->Left)
            break;
        }
        R->Left = T; // Link right.
        R = T;
        T = T->Left;
      } else if (Key > T->Start) {
        if (!T->Right)
          break;
        if (Key > T->Right->Start) {
          Node *Y = T->Right; // Rotate left.
          T->Right = Y->Left;
          Y->Left = T;
          T = Y;
          if (!T->Right)
            break;
        }
        L->Right = T; // Link left.
        L = T;
        T = T->Right;
      } else {
        break;
      }
    }
    L->Right = T->Left; // Assemble.
    R->Left = T->Right;
    T->Left = Header.Right;
    T->Right = Header.Left;
    return T;
  }

  /// Removes the current root, joining its subtrees.
  void removeRoot() {
    assert(Root && "no root to remove");
    Node *Old = Root;
    if (!Root->Left) {
      Root = Root->Right;
    } else {
      Node *NewRoot = splay(Root->Left, Old->Start);
      assert(!NewRoot->Right && "max of left subtree has a right child");
      NewRoot->Right = Root->Right;
      Root = NewRoot;
    }
    delete Old;
    --NumNodes;
  }

  static void forEachNode(const Node *N,
                          const std::function<void(const Entry &)> &Fn) {
    if (!N)
      return;
    forEachNode(N->Left, Fn);
    Fn(Entry{N->Start, N->End, N->Value});
    forEachNode(N->Right, Fn);
  }

  static void destroy(Node *N) {
    if (!N)
      return;
    destroy(N->Left);
    destroy(N->Right);
    delete N;
  }

  Node *Root = nullptr;
  size_t NumNodes = 0;
};

} // namespace djx

#endif // DJX_SUPPORT_INTERVALSPLAYTREE_H
