//===- Random.h - Deterministic pseudo-random generator ---------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-seeded xoshiro256** generator. All simulated components
/// (workload data, sampling jitter) draw from explicitly seeded instances so
/// every experiment is reproducible run-to-run.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SUPPORT_RANDOM_H
#define DJX_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace djx {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Random {
public:
  explicit Random(uint64_t Seed = 0x9E3779B97F4A7C15ULL) {
    // Seed the state with SplitMix64 so even seed 0 works.
    uint64_t X = Seed;
    for (uint64_t &S : State) {
      X += 0x9E3779B97F4A7C15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
      S = Z ^ (Z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    // Debiased modulo via rejection sampling.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform value in [Lo, Hi].
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace djx

#endif // DJX_SUPPORT_RANDOM_H
