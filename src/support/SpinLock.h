//===- SpinLock.h - Minimal test-and-set spin lock --------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spin lock guarding the shared object splay tree (paper §5.1: "DJXPerf
/// uses a spin lock to ensure the integrity of the splay tree across
/// threads"). Acquisition counts are tracked so the profiler cost model can
/// charge for synchronisation.
///
/// Since the parallel runtime landed, SpinLock also guards each
/// LiveObjectIndex shard and the VM/profiler leaf structures (thread
/// list, root registry, Profiles map). All of those are leaf locks —
/// never held while calling out — except LiveObjectIndex::
/// applyRelocations, which takes its shard locks in index order; the
/// full ordering is documented in core/DjxPerf.h.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SUPPORT_SPINLOCK_H
#define DJX_SUPPORT_SPINLOCK_H

#include "support/ThreadAnnotations.h"

#include <atomic>
#include <cstdint>

namespace djx {

/// Busy-wait hint: tells the core we are spinning so it can yield pipeline
/// resources to the sibling hyperthread (x86 `pause`, ARM `yield`); a
/// no-op elsewhere.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Test-and-set spin lock with acquisition accounting.
class DJX_CAPABILITY("mutex") SpinLock {
public:
  void lock() DJX_ACQUIRE() {
    while (Flag.test_and_set(std::memory_order_acquire))
      cpuRelax();
    Acquisitions.fetch_add(1, std::memory_order_relaxed);
  }

  bool tryLock() DJX_TRY_ACQUIRE(true) {
    if (Flag.test_and_set(std::memory_order_acquire))
      return false;
    Acquisitions.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void unlock() DJX_RELEASE() { Flag.clear(std::memory_order_release); }

  /// Total successful acquisitions since construction.
  uint64_t acquisitions() const {
    return Acquisitions.load(std::memory_order_relaxed);
  }

private:
  std::atomic_flag Flag = ATOMIC_FLAG_INIT;
  std::atomic<uint64_t> Acquisitions{0};
};

/// RAII guard for SpinLock.
class DJX_SCOPED_CAPABILITY SpinLockGuard {
public:
  explicit SpinLockGuard(SpinLock &L) DJX_ACQUIRE(L) : Lock(L) { Lock.lock(); }
  ~SpinLockGuard() DJX_RELEASE() { Lock.unlock(); }

  SpinLockGuard(const SpinLockGuard &) = delete;
  SpinLockGuard &operator=(const SpinLockGuard &) = delete;

private:
  SpinLock &Lock;
};

} // namespace djx

#endif // DJX_SUPPORT_SPINLOCK_H
