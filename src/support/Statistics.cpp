//===- Statistics.cpp - Summary statistics for experiments ---------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace djx;

SampleStats djx::summarize(const std::vector<double> &Values) {
  SampleStats S;
  S.Count = Values.size();
  if (Values.empty())
    return S;
  double Sum = 0.0;
  S.Min = Values.front();
  S.Max = Values.front();
  for (double V : Values) {
    Sum += V;
    S.Min = std::min(S.Min, V);
    S.Max = std::max(S.Max, V);
  }
  S.Mean = Sum / static_cast<double>(Values.size());
  if (Values.size() < 2)
    return S;
  double SqSum = 0.0;
  for (double V : Values) {
    double D = V - S.Mean;
    SqSum += D * D;
  }
  S.StdDev = std::sqrt(SqSum / static_cast<double>(Values.size() - 1));
  // 1.96 is the normal-approximation z for a 95% interval; adequate for the
  // 30-run samples the harness produces.
  S.Ci95 = 1.96 * S.StdDev / std::sqrt(static_cast<double>(Values.size()));
  return S;
}

double djx::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double djx::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return 0.5 * (Values[N / 2 - 1] + Values[N / 2]);
}
