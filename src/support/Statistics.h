//===- Statistics.h - Summary statistics for experiments --------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mean / stddev / 95% confidence interval / geomean / median helpers used
/// by the benchmark harnesses. The paper reports every speedup as a
/// geometric-mean with a 95% confidence interval over 30 runs (§7).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SUPPORT_STATISTICS_H
#define DJX_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace djx {

/// Summary of a sample of measurements.
struct SampleStats {
  double Mean = 0.0;
  double StdDev = 0.0;
  /// Half-width of the 95% confidence interval on the mean.
  double Ci95 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  size_t Count = 0;
};

/// Computes mean, standard deviation, and the 95% CI half-width of
/// \p Values. Returns a zeroed struct for an empty sample.
SampleStats summarize(const std::vector<double> &Values);

/// Geometric mean of \p Values. All values must be positive; returns 0 for
/// an empty sample.
double geomean(const std::vector<double> &Values);

/// Median of \p Values (average of middle two for even counts).
double median(std::vector<double> Values);

} // namespace djx

#endif // DJX_SUPPORT_STATISTICS_H
