//===- TextTable.cpp - Aligned text table rendering -----------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

using namespace djx;

TextTable::TextTable(std::vector<std::string> Hdr) : Header(std::move(Hdr)) {
  assert(!Header.empty() && "table needs at least one column");
}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row width mismatch");
  Rows.push_back(std::move(Cells));
}

void TextTable::addSeparator() { Rows.emplace_back(); }

std::string TextTable::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto RenderRow = [&](const std::vector<std::string> &Cells,
                       std::ostringstream &OS) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      OS << Cells[I];
      if (I + 1 == Cells.size())
        break;
      for (size_t Pad = Cells[I].size(); Pad < Widths[I] + 2; ++Pad)
        OS << ' ';
    }
    OS << '\n';
  };

  std::ostringstream OS;
  RenderRow(Header, OS);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  std::string Sep(std::max<size_t>(Total > 2 ? Total - 2 : Total, 4), '-');
  OS << Sep << '\n';
  for (const auto &Row : Rows) {
    if (Row.empty()) {
      OS << Sep << '\n';
      continue;
    }
    RenderRow(Row, OS);
  }
  return OS.str();
}

void TextTable::print() const {
  std::string S = render();
  std::fwrite(S.data(), 1, S.size(), stdout);
}

std::string TextTable::fmt(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string TextTable::fmtPlusMinus(double Value, double Error,
                                    int Precision) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%.*f +- %.*f", Precision, Value, Precision,
                Error);
  return Buf;
}

std::string TextTable::fmtPercent(double Fraction, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Precision, Fraction * 100.0);
  return Buf;
}
