//===- TextTable.h - Aligned text table rendering ---------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helper that renders the paper's tables (Table 1, Table 2, the
/// Figure 4 series) as aligned plain-text columns on stdout.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SUPPORT_TEXTTABLE_H
#define DJX_SUPPORT_TEXTTABLE_H

#include <string>
#include <vector>

namespace djx {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends one row; the cell count must match the header.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table (header, separator, rows) to a string.
  std::string render() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  size_t numRows() const { return Rows.size(); }

  /// Formats a double with \p Precision fraction digits.
  static std::string fmt(double Value, int Precision = 2);

  /// Formats "A ± B" the way the paper reports speedups.
  static std::string fmtPlusMinus(double Value, double Error,
                                  int Precision = 2);

  /// Formats a ratio as a percentage string, e.g. "21.4%".
  static std::string fmtPercent(double Fraction, int Precision = 1);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows; // Empty row == separator.
};

} // namespace djx

#endif // DJX_SUPPORT_TEXTTABLE_H
