//===- ThreadAnnotations.h - Clang Thread Safety Analysis macros *- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wrappers for clang's Thread Safety Analysis attributes
/// (-Wthread-safety), applied to the profiler's lock hierarchy: SpinLock
/// and its guard, the LiveObjectIndex shard locks, and DjxPerf's
/// agent/profiles locks. Under any other compiler (the default gcc
/// build) every macro expands to nothing; the dedicated clang CI job
/// compiles with -Wthread-safety -Werror so a guarded member touched
/// without its capability fails the build.
///
/// The locking-order comments in core/DjxPerf.h remain the authoritative
/// design document; the annotations make the per-structure half of that
/// contract machine-checked.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_SUPPORT_THREADANNOTATIONS_H
#define DJX_SUPPORT_THREADANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#define DJX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DJX_THREAD_ANNOTATION(x)
#endif

/// A type that acts as a lock (capability).
#define DJX_CAPABILITY(name) DJX_THREAD_ANNOTATION(capability(name))

/// An RAII type that acquires in its constructor, releases in its
/// destructor.
#define DJX_SCOPED_CAPABILITY DJX_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding \p x.
#define DJX_GUARDED_BY(x) DJX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is guarded by \p x.
#define DJX_PT_GUARDED_BY(x) DJX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define DJX_ACQUIRE(...) DJX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attempts acquisition; first argument is the success value.
#define DJX_TRY_ACQUIRE(...)                                                   \
  DJX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define DJX_RELEASE(...) DJX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Caller must hold the capability across the call.
#define DJX_REQUIRES(...)                                                      \
  DJX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define DJX_EXCLUDES(...) DJX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Return value is a reference to the named capability.
#define DJX_RETURN_CAPABILITY(x) DJX_THREAD_ANNOTATION(lock_returned(x))

/// Opt a function out of the analysis. Used where the locking pattern is
/// beyond the analysis (e.g. LiveObjectIndex::applyRelocations, which
/// takes a dynamic set of shard locks in index order).
#define DJX_NO_THREAD_SAFETY_ANALYSIS                                          \
  DJX_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // DJX_SUPPORT_THREADANNOTATIONS_H
