//===- support/VmError.h - typed VM failure model -------------------===//
//
// Every failure path in the stack (interpreter step limits, heap
// exhaustion, malformed bytecode, stalled workers) raises a VmError
// instead of calling std::abort(). The error carries enough logical
// metadata (kind, simulated thread, step count, heap shard) for the
// CLI to emit a degraded-but-well-formed report and exit with a
// distinct, documented exit code per kind.
//
//===----------------------------------------------------------------===//

#ifndef DJX_SUPPORT_VMERROR_H
#define DJX_SUPPORT_VMERROR_H

#include <cstdint>
#include <exception>
#include <string>

namespace djx {

enum class VmErrorKind {
  OutOfMemory,     ///< Heap shard exhausted even after collection.
  StepLimit,       ///< Interpreter exceeded its step deadline.
  InvalidBytecode, ///< Verifier rejected a malformed program.
  WorkerStall,     ///< Watchdog declared a stalled worker/safepoint.
  Internal,        ///< Configuration or invariant violation.
  JournalCorrupt,  ///< recover/merge input is not a usable journal.
  Interrupted,     ///< SIGINT/SIGTERM ended the run at a round barrier.
};

inline const char *vmErrorKindName(VmErrorKind K) {
  switch (K) {
  case VmErrorKind::OutOfMemory:
    return "OutOfMemory";
  case VmErrorKind::StepLimit:
    return "StepLimit";
  case VmErrorKind::InvalidBytecode:
    return "InvalidBytecode";
  case VmErrorKind::WorkerStall:
    return "WorkerStall";
  case VmErrorKind::Internal:
    return "Internal";
  case VmErrorKind::JournalCorrupt:
    return "JournalCorrupt";
  case VmErrorKind::Interrupted:
    return "Interrupted";
  }
  return "Unknown";
}

/// CLI exit-code contract (documented in docs/ARCHITECTURE.md and the
/// djxperf usage text): 0 = success, 2 = usage error, then one code
/// per failure kind. Internal errors share the generic 1; Interrupted
/// uses the shell convention 128 + SIGINT.
inline int vmErrorExitCode(VmErrorKind K) {
  switch (K) {
  case VmErrorKind::OutOfMemory:
    return 3;
  case VmErrorKind::StepLimit:
    return 4;
  case VmErrorKind::InvalidBytecode:
    return 5;
  case VmErrorKind::WorkerStall:
    return 6;
  case VmErrorKind::JournalCorrupt:
    return 7;
  case VmErrorKind::Interrupted:
    return 130;
  case VmErrorKind::Internal:
    return 1;
  }
  return 1;
}

struct VmError : std::exception {
  static constexpr unsigned kNoShard = ~0u;
  static constexpr uint64_t kNoThread = ~0ULL;

  VmErrorKind Kind = VmErrorKind::Internal;
  std::string Message;
  /// Simulated thread id at the failure point (kNoThread when the
  /// failure is not attributable to one thread).
  uint64_t ThreadId = kNoThread;
  /// Interpreter steps retired by that thread when it failed (0 when
  /// unknown at the throw site; the Executor backfills it).
  uint64_t Steps = 0;
  /// Heap shard involved (allocation failures), kNoShard otherwise.
  unsigned Shard = kNoShard;

  VmError() = default;
  VmError(VmErrorKind K, std::string Msg) : Kind(K), Message(std::move(Msg)) {}

  const char *what() const noexcept override { return Message.c_str(); }

  /// One-line rendering: "OutOfMemory: <msg> [thread 3, steps 42, shard 1]".
  std::string describe() const {
    std::string S = vmErrorKindName(Kind);
    S += ": ";
    S += Message;
    std::string Ctx;
    auto Append = [&Ctx](const std::string &Part) {
      if (!Ctx.empty())
        Ctx += ", ";
      Ctx += Part;
    };
    if (ThreadId != kNoThread)
      Append("thread " + std::to_string(ThreadId));
    if (Steps != 0)
      Append("steps " + std::to_string(Steps));
    if (Shard != kNoShard)
      Append("shard " + std::to_string(Shard));
    if (!Ctx.empty())
      S += " [" + Ctx + "]";
    return S;
  }
};

} // namespace djx

#endif // DJX_SUPPORT_VMERROR_H
