//===- AccuracyCases.cpp - Section 6 accuracy benchmarks -------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workloads/AccuracyCases.h"

#include "workloads/Kernels.h"

using namespace djx;

static std::function<void(JavaVm &)>
onMainThread(std::function<void(JavaVm &, JavaThread &)> Fn) {
  return [Fn = std::move(Fn)](JavaVm &Vm) {
    JavaThread &T = Vm.startThread("main", 0);
    Fn(Vm, T);
    Vm.endThread(T);
  };
}

/// One known-bug benchmark: a loop-allocated object with heavy, poorly
/// cached use, so the bug dominates the L1-miss profile.
static CaseStudy knownBug(std::string App, std::string Code, std::string Cls,
                          std::string Method, uint32_t Line,
                          uint64_t Iterations) {
  // Larger than L1, so a full read pass over the fresh object misses on
  // every line and the bug dominates the L1-miss profile.
  constexpr uint64_t ObjectBytes = 64 * 1024;
  CaseStudy C;
  C.Application = std::move(App);
  C.ProblematicCode = std::move(Code);
  C.Inefficiency = "memory bloat previously reported by [Xu, OOPSLA'12]";
  C.Optimization = "reuse the data structure";
  C.Config.HeapBytes = 4ULL << 20;
  C.ExpectClass = Cls;
  C.ExpectMethod = Method;
  C.ExpectLine = Line;
  BloatParams P;
  P.ClassName = std::move(Cls);
  P.MethodName = std::move(Method);
  P.AllocLine = Line;
  P.CallerClass = "Harness";
  P.CallerMethod = "main";
  P.CallLine = 1;
  P.Iterations = Iterations;
  P.ObjectBytes = ObjectBytes;
  P.AccessesPerObject = ObjectBytes / 8; // One full cold pass per object.
  P.HotBytes = 16 * 1024;
  P.HotAccessesPerIter = 200;
  BloatParams Opt = P;
  Opt.Hoist = true;
  C.Baseline = onMainThread(
      [P](JavaVm &Vm, JavaThread &T) { runBloatKernel(Vm, T, P); });
  C.Optimized = onMainThread(
      [Opt](JavaVm &Vm, JavaThread &T) { runBloatKernel(Vm, T, Opt); });
  return C;
}

std::vector<CaseStudy> djx::section6AccuracyCases() {
  std::vector<CaseStudy> All;
  All.push_back(knownBug("Dacapo 2006 luindex",
                         "DocumentWriter.java (206)", "DocumentWriter",
                         "invertDocument", 206, 120));
  All.push_back(knownBug("Dacapo 2006 bloat", "PrintSCPseudo.java (88)",
                         "PrintSCPseudo", "visitBlock", 88, 120));
  All.push_back(knownBug("Dacapo 2006 lusearch",
                         "IndexSearcher.java (98)", "IndexSearcher",
                         "search", 98, 120));
  All.push_back(knownBug("Dacapo 2006 xalan", "ToStream.java (1260)",
                         "ToStream", "characters", 1260, 120));
  All.push_back(knownBug("SPECjbb2000",
                         "StockLevelTransaction.java (173)",
                         "StockLevelTransaction", "process", 173, 120));
  return All;
}
