//===- AccuracyCases.h - Section 6 accuracy benchmarks ----------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five §6 accuracy benchmarks — luindex, bloat, lusearch, xalan (all
/// Dacapo 2006) and SPECjbb2000 — whose locality issues were previously
/// reported by Xu's reusable-data-structure work [95]. DJXPerf must
/// rediscover each issue: the known problematic allocation context has to
/// surface at the top of the object-centric profile.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_WORKLOADS_ACCURACYCASES_H
#define DJX_WORKLOADS_ACCURACYCASES_H

#include "workloads/CaseStudies.h"

#include <vector>

namespace djx {

/// The five known-bug benchmarks. Baseline() reproduces the buggy
/// behaviour; ExpectClass/Method/Line name the bug DJXPerf must find.
std::vector<CaseStudy> section6AccuracyCases();

} // namespace djx

#endif // DJX_WORKLOADS_ACCURACYCASES_H
