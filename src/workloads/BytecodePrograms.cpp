//===- BytecodePrograms.cpp - Bytecode workload programs -------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workloads/BytecodePrograms.h"

#include "bytecode/MethodBuilder.h"

using namespace djx;

BytecodeProgram djx::buildBatikProgram(TypeRegistry &Types) {
  BytecodeProgram P;

  // ExtendedGeneralPath.makeRoom(nlen): float[] nvals = new float[nlen];
  // for (i = 0; i < nlen; i++) nvals[i] = i;  return nvals;
  {
    MethodBuilder B("ExtendedGeneralPath", "makeRoom", /*NumArgs=*/1,
                    /*NumLocals=*/3);
    B.line(741);
    B.iload(0);
    B.line(743);
    B.newArray(Types.floatArray());
    B.astore(1);
    B.iconst(0).istore(2);
    Label Loop = B.newLabel(), End = B.newLabel();
    B.bind(Loop);
    B.iload(2).iload(0).ifICmp(Opcode::IfICmpGe, End);
    B.line(744);
    B.aload(1).iload(2).iload(2).paStore();
    B.iload(2).iconst(1).iadd().istore(2);
    B.jmp(Loop);
    B.bind(End);
    B.aload(1).aret();

    ClassFile C;
    C.Name = "ExtendedGeneralPath";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }

  // Main.run(iters, nlen): for (i = 0; i < iters; i++) makeRoom(nlen);
  {
    MethodBuilder B("Main", "run", /*NumArgs=*/2, /*NumLocals=*/3);
    B.line(10);
    B.iconst(0).istore(2);
    Label Loop = B.newLabel(), End = B.newLabel();
    B.bind(Loop);
    B.iload(2).iload(0).ifICmp(Opcode::IfICmpGe, End);
    B.line(12);
    B.iload(1);
    B.invoke("ExtendedGeneralPath.makeRoom", 1);
    B.pop();
    B.iload(2).iconst(1).iadd().istore(2);
    B.jmp(Loop);
    B.bind(End);
    B.ret();

    ClassFile C;
    C.Name = "Main";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }
  return P;
}

/// The "Worker" class shared by the parallel-executor programs: batik
/// churn plus a strided hot-array sweep.
static ClassFile buildWorkerClass(TypeRegistry &Types) {
  ClassFile WorkerClass;
  WorkerClass.Name = "Worker";

  // Worker.churn(nlen): batik makeRoom — float[] tmp = new float[nlen];
  // for (j = 0; j < nlen; j++) tmp[j] = j; return tmp (caller drops it).
  {
    MethodBuilder B("Worker", "churn", /*NumArgs=*/1, /*NumLocals=*/3);
    B.line(40);
    B.iload(0);
    B.newArray(Types.floatArray());
    B.astore(1);
    B.iconst(0).istore(2);
    Label Loop = B.newLabel(), End = B.newLabel();
    B.bind(Loop);
    B.iload(2).iload(0).ifICmp(Opcode::IfICmpGe, End);
    B.line(42);
    B.aload(1).iload(2).iload(2).paStore();
    B.iload(2).iconst(1).iadd().istore(2);
    B.jmp(Loop);
    B.bind(End);
    B.aload(1).aret();
    WorkerClass.Methods.push_back(B.build());
  }

  // Worker.sweep(hot, hotlen): acc = 0;
  // for (j = 0; j < hotlen; j += 8) acc += hot[j];  return acc.
  // Stride 8 longs = one 64-byte line per access.
  {
    MethodBuilder B("Worker", "sweep", /*NumArgs=*/2, /*NumLocals=*/4);
    B.line(50);
    B.iconst(0).istore(2);
    B.iconst(0).istore(3);
    Label Loop = B.newLabel(), End = B.newLabel();
    B.bind(Loop);
    B.iload(2).iload(1).ifICmp(Opcode::IfICmpGe, End);
    B.line(52);
    B.aload(0).iload(2).paLoad();
    B.iload(3).iadd().istore(3);
    B.iload(2).iconst(8).iadd().istore(2);
    B.jmp(Loop);
    B.bind(End);
    B.iload(3).iret();
    WorkerClass.Methods.push_back(B.build());
  }
  return WorkerClass;
}

BytecodeProgram djx::buildParallelWorkerProgram(TypeRegistry &Types) {
  BytecodeProgram P;
  P.addClass(buildWorkerClass(Types));

  // Main.run(iters, nlen, hotlen): hot = new long[hotlen]; acc = 0;
  // for (i = 0; i < iters; i++) { churn(nlen); acc += sweep(hot, hotlen); }
  // return acc.
  {
    MethodBuilder B("Main", "run", /*NumArgs=*/3, /*NumLocals=*/6);
    B.line(10);
    B.iload(2);
    B.newArray(Types.longArray());
    B.astore(3);
    B.iconst(0).istore(4);
    B.iconst(0).istore(5);
    Label Loop = B.newLabel(), End = B.newLabel();
    B.bind(Loop);
    B.iload(4).iload(0).ifICmp(Opcode::IfICmpGe, End);
    B.line(12);
    B.iload(1);
    B.invoke("Worker.churn", 1);
    B.pop();
    B.line(13);
    B.aload(3).iload(2);
    B.invoke("Worker.sweep", 2);
    B.iload(5).iadd().istore(5);
    B.iload(4).iconst(1).iadd().istore(4);
    B.jmp(Loop);
    B.bind(End);
    B.iload(5).iret();

    ClassFile C;
    C.Name = "Main";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }
  return P;
}

BytecodeProgram djx::buildNumaWorkerProgram(TypeRegistry &Types) {
  BytecodeProgram P;
  P.addClass(buildWorkerClass(Types));

  // Main.run(iters, nlen, hot, hotlen): acc = 0;
  // for (i = 0; i < iters; i++) { churn(nlen); acc += sweep(hot, hotlen); }
  // return acc. Identical to the parallel worker except that `hot` is the
  // third *argument* (a neighbour's array) instead of a local allocation.
  {
    MethodBuilder B("Main", "run", /*NumArgs=*/4, /*NumLocals=*/6);
    B.line(10);
    B.iconst(0).istore(4);
    B.iconst(0).istore(5);
    Label Loop = B.newLabel(), End = B.newLabel();
    B.bind(Loop);
    B.iload(4).iload(0).ifICmp(Opcode::IfICmpGe, End);
    B.line(12);
    B.iload(1);
    B.invoke("Worker.churn", 1);
    B.pop();
    B.line(13);
    B.aload(2).iload(3);
    B.invoke("Worker.sweep", 2);
    B.iload(5).iadd().istore(5);
    B.iload(4).iconst(1).iadd().istore(4);
    B.jmp(Loop);
    B.bind(End);
    B.iload(5).iret();

    ClassFile C;
    C.Name = "Main";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }
  return P;
}

BytecodeProgram djx::buildLusearchProgram(TypeRegistry &Types) {
  BytecodeProgram P;
  // TopDocCollector: a small instance with two scalar fields.
  TypeId Collector = Types.hasName("TopDocCollector")
                         ? Types.byName("TopDocCollector")
                         : Types.defineClass("TopDocCollector", 64);

  // IndexSearcher.search(nDocs): collector = new TopDocCollector();
  // collector.total = nDocs; return collector.total;
  {
    MethodBuilder B("IndexSearcher", "search", /*NumArgs=*/1,
                    /*NumLocals=*/2);
    B.line(96);
    B.newObject(Collector);
    B.astore(1);
    B.line(98);
    B.aload(1).iload(0).putField(0, 8);
    B.line(99);
    B.aload(1).getField(0, 8);
    B.iret();

    ClassFile C;
    C.Name = "IndexSearcher";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }

  // Main.run(queries): acc = 0; for (i..) acc += search(i); return acc.
  {
    MethodBuilder B("Main", "run", /*NumArgs=*/1, /*NumLocals=*/3);
    B.line(10);
    B.iconst(0).istore(1);
    B.iconst(0).istore(2);
    Label Loop = B.newLabel(), End = B.newLabel();
    B.bind(Loop);
    B.iload(1).iload(0).ifICmp(Opcode::IfICmpGe, End);
    B.line(12);
    B.iload(1);
    B.invoke("IndexSearcher.search", 1);
    B.iload(2).iadd().istore(2);
    B.iload(1).iconst(1).iadd().istore(1);
    B.jmp(Loop);
    B.bind(End);
    B.iload(2).iret();

    ClassFile C;
    C.Name = "Main";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }
  return P;
}
