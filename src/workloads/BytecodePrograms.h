//===- BytecodePrograms.h - Bytecode workload programs ----------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode renditions of paper workloads, used to exercise the full Java
/// agent pathway: ASM-style allocation instrumentation + interpreter hook
/// dispatch (instead of VM-level allocation events).
///
//===----------------------------------------------------------------------===//

#ifndef DJX_WORKLOADS_BYTECODEPROGRAMS_H
#define DJX_WORKLOADS_BYTECODEPROGRAMS_H

#include "bytecode/ClassFile.h"
#include "jvm/TypeRegistry.h"

namespace djx {

/// Dacapo batik's makeRoom pattern (Listing 1): Main.run(iters) calls
/// ExtendedGeneralPath.makeRoom(nlen), which allocates a fresh float[nlen]
/// (line 743) and initialises it — memory bloat in bytecode form.
/// The program is unloaded; call load() before execution.
BytecodeProgram buildBatikProgram(TypeRegistry &Types);

/// lusearch's TopDocCollector pattern (Listing 2): IndexSearcher.search
/// allocates a small collector object per query (line 98) and barely
/// touches it — the insignificant-object counterpart.
BytecodeProgram buildLusearchProgram(TypeRegistry &Types);

/// Per-thread body of the parallel executor workloads:
/// Main.run(iters, nlen, hotlen) allocates a long-lived long[hotlen] and
/// then interleaves batik-style float[nlen] churn (GC pressure on the
/// thread's heap shard) with a strided sweep of the hot array (one access
/// per cache line, so a hot array larger than L1 yields attributable
/// L1-miss samples). Returns the sweep checksum.
BytecodeProgram buildParallelWorkerProgram(TypeRegistry &Types);

/// Per-thread body of the NUMA case-study pair (§7.5/§7.6 shape):
/// Main.run(iters, nlen, hot, hotlen) is the parallel worker with one
/// twist — the long-lived hot array arrives as a *reference argument*
/// (allocated elsewhere, typically in another thread's heap shard), so
/// every sweep access crosses shards and, depending on placement policy,
/// NUMA nodes. The churn keeps GC pressure on the thread's own shard.
BytecodeProgram buildNumaWorkerProgram(TypeRegistry &Types);

} // namespace djx

#endif // DJX_WORKLOADS_BYTECODEPROGRAMS_H
