//===- CaseStudies.cpp - Table 1 case-study workloads ----------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workloads/CaseStudies.h"

#include "workloads/Kernels.h"

#include <cassert>

using namespace djx;

/// Wraps a single-threaded kernel with thread start/end.
static std::function<void(JavaVm &)>
onMainThread(std::function<void(JavaVm &, JavaThread &)> Fn) {
  return [Fn = std::move(Fn)](JavaVm &Vm) {
    JavaThread &T = Vm.startThread("main", 0);
    Fn(Vm, T);
    Vm.endThread(T);
  };
}

/// Builds a memory-bloat case study (baseline allocates in the loop, the
/// optimization hoists it — the singleton pattern).
static CaseStudy bloatCase(std::string App, std::string Code,
                           double PaperS, double PaperErr, BloatParams P,
                           uint64_t HeapBytes, double MinS, double MaxS) {
  CaseStudy C;
  C.Application = std::move(App);
  C.ProblematicCode = std::move(Code);
  C.Inefficiency = "memory bloat (allocation in loop)";
  C.Optimization = "hoist allocation out of loop (singleton pattern)";
  C.PaperSpeedup = PaperS;
  C.PaperError = PaperErr;
  C.MinSpeedup = MinS;
  C.MaxSpeedup = MaxS;
  C.Config.HeapBytes = HeapBytes;
  C.ExpectClass = P.ClassName;
  C.ExpectMethod = P.MethodName;
  C.ExpectLine = P.AllocLine;
  BloatParams Opt = P;
  Opt.Hoist = true;
  C.Baseline = onMainThread(
      [P](JavaVm &Vm, JavaThread &T) { runBloatKernel(Vm, T, P); });
  C.Optimized = onMainThread(
      [Opt](JavaVm &Vm, JavaThread &T) { runBloatKernel(Vm, T, Opt); });
  return C;
}

std::vector<CaseStudy> djx::table1CaseStudies() {
  std::vector<CaseStudy> All;

  // --- FindBugs 3.0.1 (§7.2): char[1024] buf + IdentityHashMap allocated
  // in loops; paper speedup 1.11x, peak memory halved.
  {
    BloatParams P;
    P.ClassName = "ClassParserUsingASM";
    P.MethodName = "parse";
    P.AllocLine = 643;
    P.CallerClass = "AnalysisContext";
    P.CallerMethod = "setAppClassList";
    P.CallLine = 637;
    P.Iterations = 600;
    P.ObjectBytes = 1024;
    P.AccessesPerObject = 256;
    P.HotBytes = 64 * 1024;
    P.HotAccessesPerIter = 4600;
    All.push_back(bloatCase("FindBugs 3.0.1",
                            "ClassParserUsingASM.java (643)", 1.11, 0.01, P,
                            (1ULL << 20), 1.02, 1.35));
  }

  // --- Ranklib 2.3: merge buffers allocated per sort call; 1.25x.
  {
    BloatParams P;
    P.ClassName = "MergeSorter";
    P.MethodName = "sort";
    P.AllocLine = 137;
    P.CallerClass = "CoorAscent";
    P.CallerMethod = "learn";
    P.CallLine = 218;
    P.Iterations = 700;
    P.ObjectBytes = 2048;
    P.AccessesPerObject = 256;
    P.HotBytes = 64 * 1024;
    P.HotAccessesPerIter = 4100;
    All.push_back(bloatCase("Ranklib 2.3", "MergeSorter.java (137, 138)",
                            1.25, 0.05, P, (2ULL << 20), 1.08, 1.6));
  }

  // --- Cache2k 1.2.0: Hash2 rehash arrays; 1.09x.
  {
    BloatParams P;
    P.ClassName = "Hash2";
    P.MethodName = "rehash";
    P.AllocLine = 313;
    P.CallerClass = "Cache2kBench";
    P.CallerMethod = "run";
    P.CallLine = 50;
    P.Iterations = 500;
    P.ObjectBytes = 1024;
    P.AccessesPerObject = 128;
    P.HotBytes = 64 * 1024;
    P.HotAccessesPerIter = 6000;
    All.push_back(bloatCase("Cache2k 1.2.0", "Hash2.java (313)", 1.09, 0.02,
                            P, (1ULL << 20), 1.02, 1.3));
  }

  // --- Apache SAMOA 0.5.0: ArffLoader per-instance buffers; 1.17x.
  {
    BloatParams P;
    P.ClassName = "ArffLoader";
    P.MethodName = "readInstance";
    P.AllocLine = 165;
    P.CallerClass = "PrequentialEvaluation";
    P.CallerMethod = "run";
    P.CallLine = 80;
    P.Iterations = 500;
    P.ObjectBytes = 2048;
    P.AccessesPerObject = 192;
    P.HotBytes = 64 * 1024;
    P.HotAccessesPerIter = 6400;
    All.push_back(bloatCase("Apache SAMOA 0.5.0", "ArffLoader.java (165)",
                            1.17, 0.04, P, (2ULL << 20), 1.05, 1.45));
  }

  // --- Apache Commons Collections 4.2: AbstractHashedMap entries; 1.08x.
  {
    BloatParams P;
    P.ClassName = "AbstractHashedMap";
    P.MethodName = "createEntry";
    P.AllocLine = 151;
    P.CallerClass = "CollectionsBench";
    P.CallerMethod = "populate";
    P.CallLine = 30;
    P.Iterations = 400;
    P.ObjectBytes = 1024;
    P.AccessesPerObject = 128;
    P.HotBytes = 64 * 1024;
    P.HotAccessesPerIter = 6800;
    All.push_back(bloatCase("Apache Commons Collections 4.2",
                            "AbstractHashedMap.java (151)", 1.08, 0.01, P,
                            (1ULL << 20), 1.01, 1.3));
  }

  // --- ObjectLayout 1.0.5 (§7.1): intAddressableElements allocated inside
  // allocateInternalStorage, invoked in a loop; 1.45x.
  {
    BloatParams P;
    P.ClassName = "AbstractStructuredArrayBase";
    P.MethodName = "allocateInternalStorage";
    P.AllocLine = 292;
    P.CallerClass = "SAHashMap";
    P.CallerMethod = "newInstance";
    P.CallLine = 120;
    P.Iterations = 120;
    // Bigger than L1: the full read pass over each fresh instance misses
    // on every line, so the object dominates the L1-miss profile (paper:
    // "accounts for 30.4% of L1 cache misses").
    P.ObjectBytes = 64 * 1024;
    P.AccessesPerObject = 8192;
    P.HotBytes = 16 * 1024; // L1-resident: dilutes cycles, not misses.
    P.HotAccessesPerIter = 28000;
    All.push_back(bloatCase("ObjectLayout 1.0.5",
                            "AbstractStructuredArrayBase.java (292)", 1.45,
                            0.07, P, (4ULL << 20), 1.15, 2.2));
  }

  // --- JGFMonteCarloBench 2.0: RatePath arrays; 1.07x.
  {
    BloatParams P;
    P.ClassName = "RatePath";
    P.MethodName = "getPrices";
    P.AllocLine = 205;
    P.CallerClass = "AppDemo";
    P.CallerMethod = "runSerial";
    P.CallLine = 90;
    P.Iterations = 300;
    P.ObjectBytes = 1024;
    P.AccessesPerObject = 128;
    P.HotBytes = 64 * 1024;
    P.HotAccessesPerIter = 7800;
    All.push_back(bloatCase("JGFMonteCarloBench 2.0", "RatePath.java (205)",
                            1.07, 0.03, P, (1ULL << 20), 1.01, 1.25));
  }

  // --- Renaissance 0.10 scala-stm-bench7 (§7.3): _wDispatch initial
  // capacity 8 causes frequent grow+copy; fix raises it to 512; 1.12x.
  {
    CaseStudy C;
    C.Application = "Renaissance 0.10: scala-stm-bench7";
    C.ProblematicCode = "AccessHistory.scala (619)";
    C.Inefficiency = "frequent capacity growth from tiny initial size";
    C.Optimization = "enlarge initial allocation size (8 -> 512)";
    C.PaperSpeedup = 1.12;
    C.PaperError = 0.04;
    C.MinSpeedup = 1.03;
    C.MaxSpeedup = 1.5;
    C.Config.HeapBytes = 2ULL << 20;
    C.ExpectClass = "AccessHistory";
    C.ExpectMethod = "grow";
    C.ExpectLine = 619;
    // Typical transactions touch ~500 slots: starting at 8 forces ~6
    // grow+copy rounds per transaction, starting at 512 none.
    GrowParams Base;
    Base.InitialCapacity = 8;
    Base.FinalElements = 300;
    Base.Rounds = 100;
    Base.HotBytes = 64 * 1024;
    Base.HotAccessesPerRound = 16000;
    GrowParams Opt = Base;
    Opt.InitialCapacity = 512;
    C.Baseline = onMainThread(
        [Base](JavaVm &Vm, JavaThread &T) { runGrowKernel(Vm, T, Base); });
    C.Optimized = onMainThread(
        [Opt](JavaVm &Vm, JavaThread &T) { runGrowKernel(Vm, T, Opt); });
    All.push_back(std::move(C));
  }

  // --- SPECjvm2008 Scimark.fft.large (§7.4): strided butterflies; loop
  // interchange; 2.37x, cache misses -70%.
  {
    CaseStudy C;
    C.Application = "SPECjvm2008: Scimark.fft.large";
    C.ProblematicCode = "FFT.java (171, 172, 174, 175)";
    C.Inefficiency = "large-stride access, poor spatial locality";
    C.Optimization = "loop interchange";
    C.PaperSpeedup = 2.37;
    C.PaperError = 0.07;
    C.MinSpeedup = 1.5;
    C.MaxSpeedup = 4.0;
    C.Config.HeapBytes = 8ULL << 20;
    // The paper's "large" input dwarfs the 30 MiB L3; scale the cache
    // hierarchy down with the input so the working set exceeds L3.
    C.Config.Machine.L2 = CacheConfig{128 * 1024, 64, 8};
    C.Config.Machine.L3 = CacheConfig{256 * 1024, 64, 16};
    C.ExpectClass = "FFT";
    C.ExpectMethod = "transform_internal";
    C.ExpectLine = 165;
    FftParams Base;
    Base.LogN = 15;
    Base.Reps = 1;
    FftParams Opt = Base;
    Opt.Interchanged = true;
    C.Baseline = onMainThread(
        [Base](JavaVm &Vm, JavaThread &T) { runFftKernel(Vm, T, Base); });
    C.Optimized = onMainThread(
        [Opt](JavaVm &Vm, JavaThread &T) { runFftKernel(Vm, T, Opt); });
    All.push_back(std::move(C));
  }

  // --- JGFMolDynBench 2.0: force-loop locality; loop tiling; 1.24x.
  {
    CaseStudy C;
    C.Application = "JGFMolDynBench 2.0";
    C.ProblematicCode = "md.java (348, 349, 350)";
    C.Inefficiency = "high L1 miss rate on particle data";
    C.Optimization = "loop tiling";
    C.PaperSpeedup = 1.24;
    C.PaperError = 0.13;
    C.MinSpeedup = 1.05;
    C.MaxSpeedup = 2.2;
    C.Config.HeapBytes = 16ULL << 20;
    C.ExpectClass = "md";
    C.ExpectMethod = "force";
    C.ExpectLine = 346;
    TilingParams Base;
    Base.Rows = 512;
    Base.Cols = 256;
    Base.Reps = 2;
    Base.ComputeCycles = 30;
    Base.RowMajorPasses = 3;
    TilingParams Opt = Base;
    Opt.Tiled = true;
    Opt.TileRows = 16;
    C.Baseline = onMainThread(
        [Base](JavaVm &Vm, JavaThread &T) { runTilingKernel(Vm, T, Base); });
    C.Optimized = onMainThread(
        [Opt](JavaVm &Vm, JavaThread &T) { runTilingKernel(Vm, T, Opt); });
    All.push_back(std::move(C));
  }

  // --- Apache Druid (§7.6): bitmap first-touched by the constructor's
  // thread, read by workers on all nodes; parallel first touch; 1.75x,
  // remote accesses -47%.
  {
    CaseStudy C;
    C.Application = "Apache Druid";
    C.ProblematicCode = "WrappedImmutableBitSetBitmap.java (37)";
    C.Inefficiency = "NUMA remote access (single-node first touch)";
    C.Optimization = "parallelize allocation+init (per-thread first touch)";
    C.PaperSpeedup = 1.75;
    C.PaperError = 0.05;
    C.MinSpeedup = 1.25;
    C.MaxSpeedup = 2.6;
    C.Config.HeapBytes = 64ULL << 20;
    C.Config.Machine.L3 = CacheConfig{512 * 1024, 64, 16};
    // BitmapIterationBenchmark is bandwidth-bound: deeper queuing at the
    // saturated controller and a costlier cross-socket hop.
    C.Config.Machine.Latency.DramContentionMaxPenalty = 520;
    C.Config.Machine.Latency.RemoteDram = 480;
    C.ExpectClass = "WrappedImmutableBitSetBitmap";
    C.ExpectMethod = "<init>";
    C.ExpectLine = 37;
    NumaParams Base;
    Base.ArrayBytes = 8ULL << 20;
    Base.Workers = 8;
    Base.ReadsPerWorker = 1ULL << 19; // ~4 passes over a 1 MiB chunk.
    Base.Place = NumaParams::Placement::MasterFirstTouch;
    NumaParams Opt = Base;
    Opt.Place = NumaParams::Placement::WorkerPartitions;
    C.Baseline = [Base](JavaVm &Vm) { runNumaKernel(Vm, Base); };
    C.Optimized = [Opt](JavaVm &Vm) { runNumaKernel(Vm, Opt); };
    All.push_back(std::move(C));
  }

  // --- Eclipse Collections (§7.5): Integer[] result allocated+initialised
  // by the master, consumed by workers; interleaved allocation; 1.13x,
  // remote accesses -41%.
  {
    CaseStudy C;
    C.Application = "Eclipse Collections";
    C.ProblematicCode = "Interval.java (758)";
    C.Inefficiency = "NUMA remote access (master-node allocation)";
    C.Optimization = "allocate/initialize across NUMA domains";
    C.Optimization = "replicate allocation+init in every NUMA domain";
    C.PaperSpeedup = 1.13;
    C.PaperError = 0.04;
    C.MinSpeedup = 1.03;
    C.MaxSpeedup = 1.6;
    C.Config.HeapBytes = 64ULL << 20;
    C.ExpectClass = "Interval";
    C.ExpectMethod = "toArray";
    C.ExpectLine = 758;
    NumaParams Base;
    Base.ClassName = "Interval";
    Base.AllocMethod = "toArray";
    Base.AllocLine = 758;
    Base.AccessClass = "InternalArrayIterate";
    Base.AccessMethod = "batchFastListCollect";
    Base.AccessLine = 245;
    Base.ArrayBytes = 4ULL << 20;
    Base.Workers = 8;
    Base.ReadsPerWorker = 1ULL << 16; // One pass over a 512 KiB chunk.
    Base.Place = NumaParams::Placement::MasterFirstTouch;
    NumaParams Opt = Base;
    // Paper 7.5: "allocating and initializing the object result in every
    // NUMA domain" -- per-domain replicas, modelled as worker partitions.
    Opt.Place = NumaParams::Placement::WorkerPartitions;
    C.Config.Machine.L3 = CacheConfig{256 * 1024, 64, 16};
    C.Baseline = [Base](JavaVm &Vm) { runNumaKernel(Vm, Base); };
    C.Optimized = [Opt](JavaVm &Vm) { runNumaKernel(Vm, Opt); };
    All.push_back(std::move(C));
  }

  // --- NPB 3.0 SP: solver arrays on one node; interleaved allocation;
  // 1.10x.
  {
    CaseStudy C;
    C.Application = "NPB SP";
    C.ProblematicCode = "SPBase.java (155)";
    C.Inefficiency = "NUMA remote access (single-node solver arrays)";
    C.Optimization = "numa_alloc_interleaved placement";
    C.PaperSpeedup = 1.10;
    C.PaperError = 0.03;
    C.MinSpeedup = 1.02;
    C.MaxSpeedup = 1.5;
    C.Config.HeapBytes = 48ULL << 20;
    C.ExpectClass = "SPBase";
    C.ExpectMethod = "<init>";
    C.ExpectLine = 155;
    NumaParams Base;
    Base.ClassName = "SPBase";
    Base.AllocMethod = "<init>";
    Base.AllocLine = 155;
    Base.AccessClass = "SP";
    Base.AccessMethod = "adi";
    Base.AccessLine = 400;
    Base.ArrayBytes = 4ULL << 20;
    Base.Workers = 4;
    Base.ReadsPerWorker = 3ULL << 15; // 3/4 pass over a 1 MiB chunk.
    Base.Place = NumaParams::Placement::MasterFirstTouch;
    NumaParams Opt = Base;
    Opt.Place = NumaParams::Placement::Interleaved;
    C.Config.Machine.L3 = CacheConfig{256 * 1024, 64, 16};
    C.Baseline = [Base](JavaVm &Vm) { runNumaKernel(Vm, Base); };
    C.Optimized = [Opt](JavaVm &Vm) { runNumaKernel(Vm, Opt); };
    All.push_back(std::move(C));
  }

  return All;
}

const CaseStudy &djx::findCaseStudy(const std::vector<CaseStudy> &All,
                                    const std::string &Application) {
  for (const CaseStudy &C : All)
    if (C.Application == Application)
      return C;
  assert(false && "unknown case study");
  return All.front();
}
