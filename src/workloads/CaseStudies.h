//===- CaseStudies.h - Table 1 case-study workloads -------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thirteen Table 1 case studies: each row carries a baseline kernel
/// reproducing the application's problematic pattern and an optimized
/// kernel applying the paper's fix, plus the paper's reported whole-program
/// speedup so the harness can compare shapes. Speedups here are emergent —
/// they come from the simulated memory hierarchy, allocation costs and GC
/// pauses, not from hardcoded factors.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_WORKLOADS_CASESTUDIES_H
#define DJX_WORKLOADS_CASESTUDIES_H

#include "jvm/JavaVm.h"

#include <functional>
#include <string>
#include <vector>

namespace djx {

/// One Table 1 row.
struct CaseStudy {
  std::string Application;
  std::string ProblematicCode;
  std::string Inefficiency;
  std::string Optimization;
  /// Paper-reported whole-program speedup and 95% CI half-width.
  double PaperSpeedup = 1.0;
  double PaperError = 0.0;
  /// Acceptance band for the measured speedup (shape check).
  double MinSpeedup = 1.0;
  double MaxSpeedup = 10.0;
  /// VM configuration (heap sizing creates the paper's GC pressure).
  VmConfig Config;
  /// Kernels. Single-threaded kernels receive a started thread; NUMA
  /// kernels manage their own threads.
  std::function<void(JavaVm &)> Baseline;
  std::function<void(JavaVm &)> Optimized;
  /// Where DJXPerf should point: the expected top allocation context.
  std::string ExpectClass;
  std::string ExpectMethod;
  uint32_t ExpectLine = 0;
};

/// All Table 1 rows, in paper order.
std::vector<CaseStudy> table1CaseStudies();

/// Looks a case study up by application name; asserts when missing.
const CaseStudy &findCaseStudy(const std::vector<CaseStudy> &All,
                               const std::string &Application);

} // namespace djx

#endif // DJX_WORKLOADS_CASESTUDIES_H
