//===- Figure1.cpp - Motivating example workload ---------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workloads/Figure1.h"

#include <cassert>
#include <string>
#include <vector>

using namespace djx;

namespace {
/// One access site of Figure 1a: instruction \p Site touches object
/// \p Object for \p Units units (1 unit = 40 cache-line-granular reads).
struct SiteSpec {
  const char *Site;
  unsigned Object; // 1, 2 or 3.
  unsigned Units;  // Figure 1's percentage.
};
} // namespace

void djx::runFigure1Workload(JavaVm &Vm) {
  JavaThread &T = Vm.startThread("main", 0);
  MethodRegistry &MR = Vm.methods();
  TypeId LongArr = Vm.types().longArray();

  // Three objects, each allocated at its own context. 64 KiB: bigger than
  // L1, so a sequential line walk misses every access, while the zero-fill
  // cost at allocation stays small relative to the measured accesses.
  constexpr uint64_t kObjBytes = 64 * 1024;
  RootScope Roots(Vm);
  std::vector<ObjectRef *> Objects;
  std::vector<uint64_t> Cursor(4, 0);
  for (unsigned I = 1; I <= 3; ++I) {
    MethodId M = MR.getOrRegister("Demo", "allocO" + std::to_string(I),
                                  {{0, 10 * I}});
    FrameScope F(T, M, 0);
    Objects.push_back(&Roots.add(
        Vm.allocateArray(T, LongArr, kObjBytes / 8)));
  }

  // Figure 1a's timeline: <O1,Ia> <O2,Ib> <O3,Ic> <O1,Id> <O1,Ie> <O2,If>
  // <O1,Ig> <O1,Ih> <O1,Ii> <O2,Ij>, with the figure's miss percentages.
  const SiteSpec Sites[] = {
      {"Ia", 1, 4}, {"Ib", 2, 8},  {"Ic", 3, 24}, {"Id", 1, 8},
      {"Ie", 1, 10}, {"If", 2, 12}, {"Ig", 1, 8},  {"Ih", 1, 12},
      {"Ii", 1, 8}, {"Ij", 2, 6},
  };
  unsigned Line = 1;
  for (const SiteSpec &S : Sites) {
    MethodId M = MR.getOrRegister("Demo", S.Site, {{0, Line++}});
    FrameScope F(T, M, 0);
    ObjectRef Obj = *Objects[S.Object - 1];
    uint64_t &Cur = Cursor[S.Object];
    uint64_t Acc = 0;
    // 320 reads per unit, each touching a different 64-byte line of the
    // object; the walk cycles through a working set larger than L1, so
    // every read is an L1 miss.
    for (unsigned K = 0; K < S.Units * 320; ++K) {
      uint64_t Off = (Cur * 64) % kObjBytes;
      Acc += Vm.readWord(T, Obj, Off);
      ++Cur;
    }
    (void)Acc;
  }
  Vm.endThread(T);
}
