//===- Figure1.h - Motivating example workload ------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 1 scenario: three objects (O1, O2, O3) accessed by ten
/// instructions (Ia..Ij) with cache-miss shares Ia 4%, Ib 8%, Ic 24%,
/// Id 8%, Ie 10%, If 12%, Ig 8%, Ih 12%, Ii 8%, Ij 6%. Code-centric
/// profiling ranks Ic (24%) first; object-centric profiling aggregates to
/// O1 50%, O2 26%, O3 24%, flipping the diagnosis to O1.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_WORKLOADS_FIGURE1_H
#define DJX_WORKLOADS_FIGURE1_H

#include "jvm/JavaVm.h"

namespace djx {

/// Runs the Figure 1 access mix. Objects are named "O1"/"O2"/"O3" via
/// allocator methods and each access site Ia..Ij is its own method, so the
/// resulting profiles can be checked against the figure's percentages.
void runFigure1Workload(JavaVm &Vm);

} // namespace djx

#endif // DJX_WORKLOADS_FIGURE1_H
