//===- Insignificant.cpp - Table 2 insignificant-object workloads ---------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workloads/Insignificant.h"

#include "workloads/Kernels.h"

using namespace djx;

/// Wraps a single-threaded kernel with thread start/end.
static std::function<void(JavaVm &)>
onMainThread(std::function<void(JavaVm &, JavaThread &)> Fn) {
  return [Fn = std::move(Fn)](JavaVm &Vm) {
    JavaThread &T = Vm.startThread("main", 0);
    Fn(Vm, T);
    Vm.endThread(T);
  };
}

/// Builds one insignificant-object row: the site allocates \p Allocs times
/// but each object is touched only a couple of times, while a dominant hot
/// loop does the program's real work. Hoisting the allocation therefore
/// changes nothing measurable.
static InsignificantCase makeCase(std::string App, std::string Code,
                                  std::string Cls, std::string Method,
                                  uint32_t Line, uint64_t PaperAllocs,
                                  double PaperPct) {
  // Scale allocation counts so the kernels stay seconds-scale while the
  // hot loop still dominates (documented in EXPERIMENTS.md).
  uint64_t Allocs = PaperAllocs > 1500 ? 1500 : PaperAllocs;
  InsignificantCase IC;
  IC.PaperAllocationTimes = PaperAllocs;
  IC.PaperSpeedupPct = PaperPct;

  CaseStudy &C = IC.Study;
  C.Application = std::move(App);
  C.ProblematicCode = std::move(Code);
  C.Inefficiency = "memory bloat with negligible cache-miss share";
  C.Optimization = "hoist allocation (no measurable benefit)";
  C.PaperSpeedup = 1.0 + PaperPct / 100.0;
  C.PaperError = 0.01;
  C.MinSpeedup = 0.97;
  C.MaxSpeedup = 1.06;
  // A small heap keeps the allocation churn region cache-resident, so the
  // zero-fill cost of these tiny objects stays negligible — as it is on a
  // real JVM with TLAB bump allocation.
  C.Config.HeapBytes = 256ULL << 10;
  // Young-gen-sized heap => frequent but tiny pauses.
  C.Config.GcPauseBaseCycles = 4000;
  C.ExpectClass = Cls;
  C.ExpectMethod = Method;
  C.ExpectLine = Line;

  BloatParams P;
  P.ClassName = std::move(Cls);
  P.MethodName = std::move(Method);
  P.AllocLine = Line;
  P.CallerClass = "Main";
  P.CallerMethod = "run";
  P.CallLine = 1;
  P.Iterations = Allocs;
  // Tiny, barely-touched objects (the paper's are collector/entry-sized):
  // each is touched only twice, so its cache-miss share is negligible.
  P.ObjectBytes = 256;
  P.AccessesPerObject = 2;
  // The real work: a hot loop dominating the cycle count.
  P.HotBytes = 128 * 1024;
  P.HotAccessesPerIter = 2600;
  BloatParams Opt = P;
  Opt.Hoist = true;
  C.Baseline = onMainThread(
      [P](JavaVm &Vm, JavaThread &T) { runBloatKernel(Vm, T, P); });
  C.Optimized = onMainThread(
      [Opt](JavaVm &Vm, JavaThread &T) { runBloatKernel(Vm, T, Opt); });
  return IC;
}

std::vector<InsignificantCase> djx::table2InsignificantCases() {
  std::vector<InsignificantCase> All;
  All.push_back(makeCase("NPB 3.0 SP", "SP.java (2086)", "SP", "lhsinit",
                         2086, 400, 0.5));
  All.push_back(makeCase("Dacapo 2006 chart", "Datasets.java (397, 408)",
                         "Datasets", "createTimeSeries", 397, 3760, 1.0));
  All.push_back(makeCase("Dacapo 2006 antlr", "Preprocessor.java (564)",
                         "Preprocessor", "expand", 564, 2840, 1.0));
  All.push_back(makeCase("Dacapo 2006 luindex",
                         "DocumentWriter.java (206)", "DocumentWriter",
                         "invertDocument", 206, 3055, 0.0));
  All.push_back(makeCase("Dacapo 9.12 lusearch",
                         "IndexSearcher.java (98)", "IndexSearcher",
                         "search", 98, 15179, 0.0));
  All.push_back(makeCase("Dacapo 9.12 lusearch-fix",
                         "FastCharStream.java (54)", "FastCharStream",
                         "refill", 54, 225060, 0.5));
  All.push_back(makeCase("Dacapo 9.12 batik",
                         "ExtendedGeneralPath.java (743)",
                         "ExtendedGeneralPath", "makeRoom", 743, 2470,
                         0.0));
  All.push_back(makeCase("SPECjbb2000",
                         "StockLevelTransaction.java (173)",
                         "StockLevelTransaction", "process", 173, 116376,
                         1.0));
  All.push_back(makeCase("JGFMonteCarloBench 2.0", "RatePath.java (296)",
                         "RatePath", "inc_pathValue", 296, 60000, 0.0));
  return All;
}
