//===- Insignificant.h - Table 2 insignificant-object workloads -*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 2 (§7.7): nine applications whose memory-bloat sites allocate
/// frequently but account for almost no cache misses — optimizing them
/// yields negligible speedups. These are what a frequency-only bloat
/// detector (e.g. Xu's reusable-data-structures work) would flag and what
/// DJXPerf's PMU metrics correctly de-prioritise.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_WORKLOADS_INSIGNIFICANT_H
#define DJX_WORKLOADS_INSIGNIFICANT_H

#include "workloads/CaseStudies.h"

#include <vector>

namespace djx {

/// One Table 2 row, reusing the CaseStudy harness shape; the paper reports
/// allocation counts, the (tiny) L1-miss share, and ~zero speedups.
struct InsignificantCase {
  CaseStudy Study;
  /// The paper's reported allocation count for the site.
  uint64_t PaperAllocationTimes = 0;
  /// Paper's whole-program speedup after "optimizing" (at or near 1.0).
  double PaperSpeedupPct = 0.0;
};

/// All Table 2 rows, in paper order. Allocation counts above 20k are
/// scaled down 10x to keep simulation time reasonable (documented in
/// EXPERIMENTS.md).
std::vector<InsignificantCase> table2InsignificantCases();

} // namespace djx

#endif // DJX_WORKLOADS_INSIGNIFICANT_H
