//===- Kernels.cpp - Reusable workload kernels -----------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"

#include <cassert>

using namespace djx;

void djx::runHotArray(JavaVm &Vm, JavaThread &T, const HotArrayParams &P) {
  MethodId M = Vm.methods().getOrRegister(P.ClassName, P.MethodName,
                                          {{0, P.Line}, {1, P.Line + 1}});
  RootScope Roots(Vm);
  FrameScope F(T, M, 0);
  uint64_t Elems = P.Bytes / 8;
  assert(Elems > 0 && "hot array too small");
  ObjectRef &Hot =
      Roots.add(Vm.allocateArray(T, Vm.types().longArray(), Elems));
  F.setBci(1);
  uint64_t Acc = 0;
  for (uint64_t K = 0; K < P.Reads; ++K)
    Acc += Vm.readWord(T, Hot, (K % Elems) * 8);
  (void)Acc;
}

void djx::runBloatKernel(JavaVm &Vm, JavaThread &T, const BloatParams &P) {
  MethodRegistry &MR = Vm.methods();
  MethodId Caller = MR.getOrRegister(P.CallerClass, P.CallerMethod,
                                     {{0, P.CallLine}, {1, P.CallLine + 1}});
  MethodId Alloc =
      MR.getOrRegister(P.ClassName, P.MethodName,
                       {{0, P.AllocLine}, {1, P.AllocLine + 1}});
  TypeId LongArr = Vm.types().longArray();
  uint64_t Elems = P.ObjectBytes / 8;
  assert(Elems > 0 && "bloat object too small");

  RootScope Roots(Vm);
  FrameScope CallerFrame(T, Caller, 0);

  ObjectRef &Hot = Roots.add();
  uint64_t HotElems = P.HotBytes / 8;
  if (HotElems > 0) {
    CallerFrame.setBci(1);
    Hot = Vm.allocateArray(T, LongArr, HotElems);
  }

  ObjectRef &Obj = Roots.add();
  CallerFrame.setBci(0);
  if (P.Hoist) {
    // Singleton pattern: one allocation reused across iterations.
    FrameScope AllocFrame(T, Alloc, 0);
    Obj = Vm.allocateArray(T, LongArr, Elems);
  }

  uint64_t Acc = 0;
  for (uint64_t Iter = 0; Iter < P.Iterations; ++Iter) {
    {
      FrameScope AllocFrame(T, Alloc, 0);
      if (!P.Hoist)
        Obj = Vm.allocateArray(T, LongArr, Elems);
      // Use the object: sequential read-modify-write traffic.
      AllocFrame.setBci(1);
      for (uint64_t K = 0; K < P.AccessesPerObject; ++K) {
        uint64_t Off = (K % Elems) * 8;
        Acc += Vm.readWord(T, Obj, Off);
        if ((K & 3) == 0)
          Vm.writeWord(T, Obj, Off, Acc);
      }
    }
    if (HotElems > 0) {
      CallerFrame.setBci(1);
      for (uint64_t K = 0; K < P.HotAccessesPerIter; ++K)
        Acc += Vm.readWord(T, Hot, ((Iter + K) % HotElems) * 8);
      CallerFrame.setBci(0);
    }
    if (P.ColdAccessesPerIter > 0) {
      FrameScope UseFrame(T, Alloc, 1);
      for (uint64_t K = 0; K < P.ColdAccessesPerIter; ++K)
        Acc += Vm.readWord(T, Obj, ((K * 8) % Elems) * 8);
    }
    if (!P.Hoist)
      Obj = kNullRef; // Lifetimes never overlap: instantly garbage.
  }
  (void)Acc;
}

void djx::runFftKernel(JavaVm &Vm, JavaThread &T, const FftParams &P) {
  MethodId M = Vm.methods().getOrRegister(
      "FFT", "transform_internal",
      {{0, 165}, {1, 166}, {2, 167}, {3, 168}, {4, 169}, {5, 170},
       {6, 171}, {7, 172}, {8, 173}, {9, 174}, {10, 175}});
  uint64_t N = 1ULL << P.LogN; // Complex points.
  uint64_t Len = 2 * N;        // Doubles.
  RootScope Roots(Vm);
  FrameScope F(T, M, 0);
  ObjectRef &Data =
      Roots.add(Vm.allocateArray(T, Vm.types().doubleArray(), Len));

  // Seed the array (sequential, identical in both variants).
  for (uint64_t I = 0; I < Len; ++I)
    Vm.writeDouble(T, Data, I * 8, static_cast<double>(I & 255) * 0.5);

  // One butterfly: touches data[j], data[j+1], data[i], data[i+1] at the
  // paper's lines 171/172/173/174/175.
  auto Butterfly = [&](uint64_t B, uint64_t A, uint64_t Dual, double WR,
                       double WI) {
    uint64_t I = 2 * (B + A);
    uint64_t J = 2 * (B + A + Dual);
    F.setBci(6);
    double Z1R = Vm.readDouble(T, Data, J * 8);
    F.setBci(7);
    double Z1I = Vm.readDouble(T, Data, (J + 1) * 8);
    double WdR = WR * Z1R - WI * Z1I;
    double WdI = WR * Z1I + WI * Z1R;
    F.setBci(8);
    double XR = Vm.readDouble(T, Data, I * 8);
    double XI = Vm.readDouble(T, Data, (I + 1) * 8);
    F.setBci(9);
    Vm.writeDouble(T, Data, J * 8, XR - WdR);
    F.setBci(10);
    Vm.writeDouble(T, Data, (J + 1) * 8, XI - WdI);
    Vm.writeDouble(T, Data, I * 8, XR + WdR);
    Vm.writeDouble(T, Data, (I + 1) * 8, XI + WdI);
    Vm.tick(T, 8); // The butterfly arithmetic.
  };

  for (uint32_t Rep = 0; Rep < P.Reps; ++Rep) {
    uint64_t Dual = 1;
    for (uint32_t Bit = 0; Bit < P.LogN; ++Bit, Dual *= 2) {
      // Twiddle rotation per a; constants stand in for sin/cos.
      double WR = 1.0, WI = 0.0;
      const double CR = 0.999953, CI = -0.009709;
      if (!P.Interchanged) {
        // Paper's original order: a outer, b inner with stride 2*dual.
        for (uint64_t A = 0; A < Dual; ++A) {
          for (uint64_t B = 0; B + A + Dual < N; B += 2 * Dual)
            Butterfly(B, A, Dual, WR, WI);
          double NWR = WR * CR - WI * CI;
          WI = WR * CI + WI * CR;
          WR = NWR;
          Vm.tick(T, 4);
        }
      } else {
        // Optimized order: b outer, a inner with unit stride.
        for (uint64_t B = 0; B + Dual < N; B += 2 * Dual) {
          WR = 1.0;
          WI = 0.0;
          for (uint64_t A = 0; A < Dual && B + A + Dual < N; ++A) {
            Butterfly(B, A, Dual, WR, WI);
            double NWR = WR * CR - WI * CI;
            WI = WR * CI + WI * CR;
            WR = NWR;
            Vm.tick(T, 4);
          }
        }
      }
    }
  }
}

void djx::runGrowKernel(JavaVm &Vm, JavaThread &T, const GrowParams &P) {
  MethodRegistry &MR = Vm.methods();
  MethodId Grow = MR.getOrRegister("AccessHistory", "grow",
                                   {{0, 615}, {1, 619}, {2, 620}});
  MethodId Append = MR.getOrRegister("AccessHistory", "append",
                                     {{0, 600}, {1, 601}});
  TypeId LongArr = Vm.types().longArray();
  RootScope Roots(Vm);

  ObjectRef &Hot = Roots.add();
  uint64_t HotElems = P.HotBytes / 8;
  HotArrayParams HotP;
  if (HotElems > 0)
    Hot = Vm.allocateArray(T, LongArr, HotElems);
  (void)HotP;

  ObjectRef &Arr = Roots.add();
  ObjectRef &NewArr = Roots.add();
  FrameScope AppendFrame(T, Append, 0);
  uint64_t Acc = 0;
  for (uint32_t Round = 0; Round < P.Rounds; ++Round) {
    uint64_t Cap = P.InitialCapacity;
    {
      FrameScope GrowFrame(T, Grow, 1);
      Arr = Vm.allocateArray(T, LongArr, Cap);
    }
    for (uint64_t K = 0; K < P.FinalElements; ++K) {
      if (K == Cap) {
        // _wDispatch = new Array[Int](_wCapacity) at line 619, plus copy.
        FrameScope GrowFrame(T, Grow, 1);
        uint64_t NewCap = Cap * 2;
        NewArr = Vm.allocateArray(T, LongArr, NewCap);
        GrowFrame.setBci(2);
        Vm.arrayCopy(T, Arr, 0, NewArr, 0, Cap * 8);
        Arr = NewArr;
        NewArr = kNullRef;
        Cap = NewCap;
      }
      AppendFrame.setBci(1);
      Vm.writeWord(T, Arr, K * 8, K);
    }
    Arr = kNullRef;
    if (HotElems > 0)
      for (uint64_t K = 0; K < P.HotAccessesPerRound; ++K)
        Acc += Vm.readWord(T, Hot, ((Round + K) % HotElems) * 8);
  }
  (void)Acc;
}

void djx::runTilingKernel(JavaVm &Vm, JavaThread &T, const TilingParams &P) {
  MethodId M = Vm.methods().getOrRegister(
      "md", "force", {{0, 346}, {1, 348}, {2, 349}, {3, 350}});
  TypeId LongArr = Vm.types().longArray();
  uint64_t Elems = static_cast<uint64_t>(P.Rows) * P.Cols;
  RootScope Roots(Vm);
  FrameScope F(T, M, 0);
  ObjectRef &Mat = Roots.add(Vm.allocateArray(T, LongArr, Elems));

  uint64_t Acc = 0;
  for (uint32_t Rep = 0; Rep < P.Reps; ++Rep) {
    F.setBci(1);
    if (!P.Tiled) {
      // Column-major walk of a row-major matrix: stride Cols*8 bytes.
      for (uint32_t C = 0; C < P.Cols; ++C)
        for (uint32_t R = 0; R < P.Rows; ++R) {
          Acc += Vm.readWord(
              T, Mat, (static_cast<uint64_t>(R) * P.Cols + C) * 8);
          Vm.tick(T, P.ComputeCycles);
        }
    } else {
      // Tiled: a block of TileRows rows stays cache-resident while the
      // column index sweeps.
      for (uint32_t R0 = 0; R0 < P.Rows; R0 += P.TileRows)
        for (uint32_t C = 0; C < P.Cols; ++C)
          for (uint32_t R = R0; R < R0 + P.TileRows && R < P.Rows; ++R) {
            Acc += Vm.readWord(
                T, Mat, (static_cast<uint64_t>(R) * P.Cols + C) * 8);
            Vm.tick(T, P.ComputeCycles);
          }
    }
    // Row-major update sweeps, identical in both variants (md's other
    // per-timestep phases).
    F.setBci(2);
    uint64_t Elems2 = static_cast<uint64_t>(P.Rows) * P.Cols;
    for (uint32_t Pass = 0; Pass < P.RowMajorPasses; ++Pass)
      for (uint64_t I = 0; I < Elems2; ++I) {
        Acc += Vm.readWord(T, Mat, I * 8);
        Vm.tick(T, P.ComputeCycles);
      }
  }
  (void)Acc;
}

void djx::runNumaKernel(JavaVm &Vm, const NumaParams &P) {
  MethodRegistry &MR = Vm.methods();
  MethodId AllocM = MR.getOrRegister(P.ClassName, P.AllocMethod,
                                     {{0, P.AllocLine}});
  MethodId AccessM = MR.getOrRegister(P.AccessClass, P.AccessMethod,
                                      {{0, P.AccessLine}});
  TypeId LongArr = Vm.types().longArray();
  uint64_t Elems = P.ArrayBytes / 8;
  uint64_t Chunk = Elems / P.Workers;
  assert(Chunk > 0 && "array smaller than worker count");

  RootScope Roots(Vm);
  NumaTopology &Numa = Vm.machine().numa();
  uint32_t NumCpus = Vm.machine().numCpus();
  assert(P.Workers > 0 && P.Workers <= NumCpus && "bad worker count");

  JavaThread &Master = Vm.startThread("master", 0);
  ObjectRef &Shared = Roots.add();
  if (P.Place != NumaParams::Placement::WorkerPartitions) {
    // Master allocates; the zero-fill stores are the first touch, so every
    // page lands on the master's node.
    FrameScope F(Master, AllocM, 0);
    Shared = Vm.allocateArray(Master, LongArr, Elems);
    if (P.Place == NumaParams::Placement::Interleaved)
      // numa_alloc_interleaved: spread the pages round-robin.
      Numa.interleaveRange(Shared, P.ArrayBytes);
  }

  // Workers spread evenly over all CPUs (and therefore both nodes).
  uint64_t Acc = 0;
  for (uint32_t W = 0; W < P.Workers; ++W) {
    uint32_t Cpu = (W * NumCpus) / P.Workers;
    JavaThread &Worker = Vm.startThread("worker" + std::to_string(W), Cpu);
    FrameScope F(Worker, AccessM, 0);
    ObjectRef &Local = Roots.add();
    ObjectRef Base = Shared;
    uint64_t Offset = W * Chunk;
    if (P.Place == NumaParams::Placement::WorkerPartitions) {
      // Parallel first touch: each worker allocates its own slice.
      FrameScope AF(Worker, AllocM, 0);
      Local = Vm.allocateArray(Worker, LongArr, Chunk);
      Base = Local;
      Offset = 0;
    }
    for (uint64_t K = 0; K < P.ReadsPerWorker; ++K) {
      uint64_t Idx = Offset + (K % Chunk);
      Acc += Vm.readWord(Worker, Base, Idx * 8);
    }
    Vm.endThread(Worker);
  }
  Vm.endThread(Master);
  (void)Acc;
}
