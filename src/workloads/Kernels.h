//===- Kernels.h - Reusable workload kernels --------------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterised kernels reproducing the access/allocation patterns behind
/// the paper's case studies: memory-bloat loops (batik/lusearch/FindBugs/
/// ObjectLayout pattern), strided array traversal (scimark FFT), capacity
/// growth (scala-stm-bench7), tiled vs untiled matrix walks (JGF MolDyn),
/// NUMA master-init vs parallel/interleaved placement (Druid, Eclipse
/// Collections, NPB SP), and a plain hot-array loop used as background
/// work. Every kernel registers methods with real class/method/line names
/// from the paper so reports read like the originals.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_WORKLOADS_KERNELS_H
#define DJX_WORKLOADS_KERNELS_H

#include "jvm/JavaVm.h"

#include <cstdint>
#include <string>

namespace djx {

/// Memory-bloat loop: allocate an object per iteration inside a named
/// method, touch it, drop it (lifetimes never overlap). The optimized
/// variant hoists the allocation out of the loop (singleton pattern).
struct BloatParams {
  std::string ClassName = "ExtendedGeneralPath";
  std::string MethodName = "makeRoom";
  uint32_t AllocLine = 743;
  std::string CallerClass = "Main";
  std::string CallerMethod = "run";
  uint32_t CallLine = 10;
  /// Loop trip count (the paper's per-site allocation counts).
  uint64_t Iterations = 2478;
  /// Payload bytes per allocation (>= 1 KiB to pass the S filter).
  uint64_t ObjectBytes = 4096;
  /// Sequential 8-byte reads+writes issued over the object per iteration.
  uint64_t AccessesPerObject = 64;
  /// Hoist the allocation out of the loop (the optimization).
  bool Hoist = false;
  /// Optional background work per iteration over a shared hot array.
  uint64_t HotBytes = 0;
  uint64_t HotAccessesPerIter = 0;
  /// Re-reads of the object *after* the hot phase evicted it: these miss
  /// in both variants, so they shape the profile (the object's measured
  /// miss share) without shifting the baseline/optimized ratio much.
  uint64_t ColdAccessesPerIter = 0;
};
void runBloatKernel(JavaVm &Vm, JavaThread &T, const BloatParams &P);

/// scimark.fft-style butterfly loop nest over a complex double array. The
/// baseline iterates (bit, a, b) with stride 2*dual in the inner loop; the
/// optimized variant interchanges the a and b loops (§7.4).
struct FftParams {
  uint32_t LogN = 15; ///< N complex points => 2^(LogN+1) doubles.
  bool Interchanged = false;
  uint32_t Reps = 1;
};
void runFftKernel(JavaVm &Vm, JavaThread &T, const FftParams &P);

/// Capacity-growth loop (scala-stm-bench7 grow(), §7.3): append elements,
/// doubling the array capacity and arraycopy-ing on overflow.
struct GrowParams {
  uint64_t InitialCapacity = 8; ///< The optimization raises this to 512.
  uint64_t FinalElements = 4096;
  uint32_t Rounds = 64;
  /// Background work per round.
  uint64_t HotBytes = 0;
  uint64_t HotAccessesPerRound = 0;
};
void runGrowKernel(JavaVm &Vm, JavaThread &T, const GrowParams &P);

/// Matrix walk with poor stride (column-major over a row-major matrix) vs
/// a tiled walk (JGF MolDyn md.java fix).
struct TilingParams {
  uint32_t Rows = 512;
  uint32_t Cols = 256;
  uint32_t Reps = 2;
  bool Tiled = false;
  uint32_t TileRows = 16;
  /// Force-computation cycles charged per element (pair interactions).
  uint32_t ComputeCycles = 30;
  /// Row-major sweeps per rep common to both variants (the rest of md's
  /// per-timestep work), diluting the tiling win to the paper's scale.
  uint32_t RowMajorPasses = 3;
};
void runTilingKernel(JavaVm &Vm, JavaThread &T, const TilingParams &P);

/// NUMA shared-array kernel: a master thread on node 0 allocates (and
/// first-touches) a large array; worker threads spread over all nodes then
/// read it heavily. Placement determines the remote-access rate.
struct NumaParams {
  enum class Placement {
    MasterFirstTouch,   ///< Baseline: all pages land on the master's node.
    WorkerPartitions,   ///< Fix A: each worker allocates its own chunk
                        ///< (parallel first touch, §7.6 Druid).
    Interleaved,        ///< Fix B: numa_alloc_interleaved (§7.5 / NPB SP).
  };
  Placement Place = Placement::MasterFirstTouch;
  uint64_t ArrayBytes = 16ULL << 20;
  uint32_t Workers = 8;
  /// Sequential 8-byte reads each worker performs over its share.
  uint64_t ReadsPerWorker = 1 << 16;
  std::string ClassName = "WrappedImmutableBitSetBitmap";
  std::string AllocMethod = "<init>";
  uint32_t AllocLine = 37;
  std::string AccessClass = "WrappedImmutableBitSetBitmap";
  std::string AccessMethod = "next";
  uint32_t AccessLine = 120;
};
void runNumaKernel(JavaVm &Vm, const NumaParams &P);

/// Plain hot loop over one array — the "rest of the program" that dilutes
/// insignificant-object optimizations (Table 2).
struct HotArrayParams {
  uint64_t Bytes = 256 * 1024;
  uint64_t Reads = 1 << 18;
  std::string ClassName = "Hot";
  std::string MethodName = "work";
  uint32_t Line = 1;
};
void runHotArray(JavaVm &Vm, JavaThread &T, const HotArrayParams &P);

} // namespace djx

#endif // DJX_WORKLOADS_KERNELS_H
