//===- Parallel.cpp - Multi-threaded executor workloads --------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workloads/Parallel.h"

#include "runtime/Executor.h"
#include "workloads/BytecodePrograms.h"

#include <string>
#include <vector>

using namespace djx;

VmConfig djx::parallelVmConfig(const ParallelConfig &Config) {
  VmConfig Vc;
  Vc.HeapBytes = Config.HeapBytesPerThread * Config.SimThreads;
  Vc.HeapShards = Config.SimThreads;
  return Vc;
}

DjxPerfConfig djx::parallelAgentConfig(const ParallelConfig &Config,
                                       DjxPerfConfig Base) {
  Base.IndexShards = Config.SimThreads;
  return Base;
}

ParallelOutcome djx::runParallelWorkload(JavaVm &Vm, DjxPerf *Prof,
                                         const ParallelConfig &Config) {
  BytecodeProgram Program = buildParallelWorkerProgram(Vm.types());
  Program.load(Vm);
  if (Prof && Config.Instrumented)
    Prof->instrument(Program);

  ExecutorConfig Ec;
  Ec.Jobs = Config.Jobs;
  Ec.QuantumSteps = Config.QuantumSteps;
  Executor Ex(Vm, Ec);
  for (unsigned I = 0; I < Config.SimThreads; ++I) {
    size_t Task = Ex.addThread(
        Program, "Main.run",
        {Value::fromInt(Config.Iters), Value::fromInt(Config.Nlen),
         Value::fromInt(Config.HotElems)},
        "worker-" + std::to_string(I));
    if (Prof && Config.Instrumented)
      Prof->attachInterpreter(Ex.interpreter(Task));
  }

  Ex.run();

  ParallelOutcome Out;
  Out.Steps = Ex.totalSteps();
  Out.Safepoints = Ex.safepoints();
  Out.Rounds = Ex.rounds();
  Out.Machine = Ex.mergedMachineStats();
  // End threads in task (= thread-id) order, deterministically.
  for (size_t I = 0; I < Ex.numTasks(); ++I)
    Vm.endThread(Ex.thread(I));
  return Out;
}
