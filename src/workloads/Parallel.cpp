//===- Parallel.cpp - Multi-threaded executor workloads --------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workloads/Parallel.h"

#include "runtime/Executor.h"
#include "workloads/BytecodePrograms.h"

#include <cassert>
#include <string>
#include <vector>

using namespace djx;

VmConfig djx::parallelVmConfig(const ParallelConfig &Config) {
  VmConfig Vc;
  Vc.HeapBytes = Config.HeapBytesPerThread * Config.SimThreads;
  Vc.HeapShards = Config.SimThreads;
  return Vc;
}

VmConfig djx::numaRemoteVmConfig(const ParallelConfig &Config) {
  VmConfig Vc = parallelVmConfig(Config);
  Vc.Machine.L2 = CacheConfig{64 * 1024, 64, 8};
  Vc.Machine.L3 = CacheConfig{128 * 1024, 64, 16};
  return Vc;
}

DjxPerfConfig djx::parallelAgentConfig(const ParallelConfig &Config,
                                       DjxPerfConfig Base) {
  Base.IndexShards = Config.SimThreads;
  return Base;
}

ParallelOutcome djx::runParallelWorkload(JavaVm &Vm, DjxPerf *Prof,
                                         const ParallelConfig &Config) {
  BytecodeProgram Program = buildParallelWorkerProgram(Vm.types());
  Program.load(Vm);
  std::vector<StaticSiteFacts> StaticSites;
  if (Prof && Config.Instrumented) {
    Prof->instrument(Program);
    StaticSites = collectStaticSiteFacts(Program, Prof->sites());
  }

  ExecutorConfig Ec;
  Ec.Jobs = Config.Jobs;
  Ec.QuantumSteps = Config.QuantumSteps;
  Ec.Policy = Config.Policy;
  Ec.Tier = Config.Tier;
  Ec.Fuzz = Config.Fuzz;
  Ec.StallTimeoutMs = Config.StallTimeoutMs;
  Ec.OnRoundEnd = Config.OnRoundEnd;
  Ec.MaxRounds = Config.MaxRounds;
  Executor Ex(Vm, Ec);
  for (unsigned I = 0; I < Config.SimThreads; ++I) {
    size_t Task = Ex.addThread(
        Program, "Main.run",
        {Value::fromInt(Config.Iters), Value::fromInt(Config.Nlen),
         Value::fromInt(Config.HotElems)},
        "worker-" + std::to_string(I));
    if (Prof && Config.Instrumented)
      Prof->attachInterpreter(Ex.interpreter(Task));
  }

  Ex.run();

  // Failed session: end threads first (their rings drain into the
  // profile — the salvage substrate), then surface the captured error to
  // the caller, who still holds the profiler with all pre-failure data.
  if (Ex.error()) {
    for (size_t I = 0; I < Ex.numTasks(); ++I)
      Vm.endThread(Ex.thread(I));
    throw *Ex.error();
  }

  ParallelOutcome Out;
  Out.Steps = Ex.totalSteps();
  Out.Safepoints = Ex.safepoints();
  Out.Rounds = Ex.rounds();
  Out.Machine = Ex.mergedMachineStats();
  Out.StaticSites = std::move(StaticSites);
  if (Config.DumpTraces)
    for (size_t I = 0; I < Ex.numTasks(); ++I)
      Out.TraceDump += "== task " + std::to_string(I) + " ==\n" +
                       Ex.interpreter(I).renderTraces();
  // End threads in task (= thread-id) order, deterministically.
  for (size_t I = 0; I < Ex.numTasks(); ++I)
    Vm.endThread(Ex.thread(I));
  return Out;
}

ParallelOutcome djx::runNumaRemoteWorkload(JavaVm &Vm, DjxPerf *Prof,
                                           const ParallelConfig &Config) {
  (void)Prof; // Attach-mode: VM allocation events feed the agent.
  assert(Config.SimThreads >= 2 && "neighbour handoff needs >= 2 threads");
  BytecodeProgram Program = buildNumaWorkerProgram(Vm.types());
  Program.load(Vm);

  // Setup phase (serial, before the Executor exists, so it is trivially
  // Jobs-independent): one thread allocates every worker's hot array into
  // that worker's shard, each at its own source line — the paper's "one
  // thread initialises the shared structures" scenario, with per-array
  // object groups in the report.
  TypeId LongArr = Vm.types().longArray();
  std::vector<LineEntry> Lines;
  for (unsigned I = 0; I < Config.SimThreads; ++I)
    Lines.push_back(LineEntry{I, 90 + I});
  MethodId AllocM =
      Vm.methods().getOrRegister("NumaRemote", "allocateHot", Lines);
  RootScope Roots(Vm);
  std::vector<ObjectRef *> Hot(Config.SimThreads);
  JavaThread &Setup = Vm.startThread("numa-setup", 0);
  for (unsigned I = 0; I < Config.SimThreads; ++I) {
    Setup.setHeapShard(I);
    FrameScope F(Setup, AllocM, I);
    Hot[I] = &Roots.add();
    *Hot[I] = Vm.allocateArray(Setup, LongArr, Config.HotElems);
  }
  Setup.setHeapShard(0);
  Vm.endThread(Setup);

  ExecutorConfig Ec;
  Ec.Jobs = Config.Jobs;
  Ec.QuantumSteps = Config.QuantumSteps;
  Ec.Policy = Config.Policy;
  Ec.Tier = Config.Tier;
  Ec.Fuzz = Config.Fuzz;
  Ec.StallTimeoutMs = Config.StallTimeoutMs;
  Ec.OnRoundEnd = Config.OnRoundEnd;
  Ec.MaxRounds = Config.MaxRounds;
  Executor Ex(Vm, Ec);
  for (unsigned I = 0; I < Config.SimThreads; ++I) {
    // Worker I sweeps its neighbour's array: the producer/consumer handoff
    // that first-touch placement punishes with all-remote sweeps.
    ObjectRef Neighbour = *Hot[(I + 1) % Config.SimThreads];
    Ex.addThread(Program, "Main.run",
                 {Value::fromInt(Config.Iters), Value::fromInt(Config.Nlen),
                  Value::fromRef(Neighbour),
                  Value::fromInt(Config.HotElems)},
                 "numa-worker-" + std::to_string(I));
  }

  Ex.run();

  if (Ex.error()) {
    for (size_t I = 0; I < Ex.numTasks(); ++I)
      Vm.endThread(Ex.thread(I));
    throw *Ex.error();
  }

  ParallelOutcome Out;
  Out.Steps = Ex.totalSteps();
  Out.Safepoints = Ex.safepoints();
  Out.Rounds = Ex.rounds();
  Out.Machine = Ex.mergedMachineStats();
  if (Config.DumpTraces)
    for (size_t I = 0; I < Ex.numTasks(); ++I)
      Out.TraceDump += "== task " + std::to_string(I) + " ==\n" +
                       Ex.interpreter(I).renderTraces();
  for (size_t I = 0; I < Ex.numTasks(); ++I)
    Vm.endThread(Ex.thread(I));
  return Out;
}
