//===- Parallel.h - Multi-threaded executor workloads -----------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-threaded workloads driven through the runtime Executor: N
/// simulated threads, each interpreting a worker program (batik-style
/// makeRoom churn plus a hot-array sweep) on its own heap shard with a
/// worker-private machine model.
/// The paper's measurement setting is exactly this shape — per-thread PMU
/// sampling feeding one shared live-object index — so these workloads are
/// what exercises DJXPerf's cross-thread path. Host parallelism (--jobs)
/// changes wall-clock only; the profile is byte-identical for any value.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_WORKLOADS_PARALLEL_H
#define DJX_WORKLOADS_PARALLEL_H

#include "analysis/StaticReport.h"
#include "core/DjxPerf.h"
#include "jvm/JavaVm.h"
#include "runtime/Executor.h"
#include "sim/MemoryHierarchy.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace djx {

/// Shape of one parallel run. SimThreads/QuantumSteps/Iters/Nlen define
/// the *logical* workload (they change results); Jobs is host-side only.
struct ParallelConfig {
  unsigned SimThreads = 4;
  /// Host worker threads (0 = hardware concurrency, 1 = serial).
  unsigned Jobs = 1;
  /// Interpreter steps per simulated thread per round.
  uint64_t QuantumSteps = 32768;
  /// Per-thread iterations / churn-array length / hot-array length
  /// (Main.run arguments; see buildParallelWorkerProgram). The default
  /// hot array (16384 longs = 128 KiB) exceeds L1, so sweeps produce
  /// attributable L1-miss samples.
  int64_t Iters = 400;
  int64_t Nlen = 256;
  int64_t HotElems = 16384;
  /// Heap bytes *per simulated thread* (one shard each). Small enough by
  /// default that safepoint GCs actually happen.
  uint64_t HeapBytesPerThread = 4ULL << 20;
  /// Route allocations through ASM-style bytecode instrumentation instead
  /// of VM allocation events (requires a profiler).
  bool Instrumented = false;
  /// Shard placement policy the Executor applies (`--numa-policy`).
  /// Logical-workload knob: it changes simulated placement and remote
  /// counts, never the schedule; results stay Jobs-independent.
  NumaPolicy Policy = NumaPolicy::FirstTouch;
  /// Seed-driven schedule fuzzing, forwarded to the Executor. A fuzzed
  /// logical schedule is still a *workload* (quantum sizes and GC points
  /// become seed draws), so for one seed the results remain byte-identical
  /// across Jobs values — the fuzzsched test's oracle.
  FuzzSchedule Fuzz;
  /// Forwarded to ExecutorConfig.StallTimeoutMs (stall watchdog).
  uint64_t StallTimeoutMs = 120000;
  /// Execution tier for every simulated thread's interpreter (`--tier`),
  /// forwarded to ExecutorConfig.Tier. Like Jobs it never changes
  /// results: super-tier profiles are byte-identical to interp-tier ones
  /// (the tier tests' oracle).
  TierConfig Tier;
  /// Render every compiled trace into ParallelOutcome.TraceDump after the
  /// run (`--dump-traces`; super tier only).
  bool DumpTraces = false;
  /// Round-barrier hook forwarded to ExecutorConfig.OnRoundEnd (the
  /// CLI's journal flush point; see Executor.h for the contract).
  std::function<bool(uint64_t)> OnRoundEnd;
  /// Forwarded to ExecutorConfig.MaxRounds: end the run cleanly after
  /// this many rounds (`--max-rounds`; 0 = unlimited).
  uint64_t MaxRounds = 0;
};

/// VM configuration matching \p Config: sharded heap (one shard per
/// simulated thread) and the default machine model.
VmConfig parallelVmConfig(const ParallelConfig &Config);

/// VM configuration for the numaRemote pair: parallelVmConfig on a
/// machine whose outer cache levels are scaled down (L2 64 KiB, L3
/// 128 KiB per node) so the neighbour sweeps are DRAM-bound. The paper's
/// NUMA case studies concern structures that exceed the LLC — remote
/// traffic that actually reaches the memory controllers — and the
/// simulator's hot arrays must exceed *its* (scaled) LLC for the same
/// physics to emerge.
VmConfig numaRemoteVmConfig(const ParallelConfig &Config);

/// Profiler configuration matching \p Config: the live-object index is
/// sharded like the heap. Workload-determined, never Jobs-determined.
DjxPerfConfig parallelAgentConfig(const ParallelConfig &Config,
                                  DjxPerfConfig Base = DjxPerfConfig());

/// Everything observable from one parallel run.
struct ParallelOutcome {
  uint64_t Steps = 0;       ///< Aggregate interpreter steps.
  uint64_t Safepoints = 0;  ///< Stop-the-world pauses taken.
  uint64_t Rounds = 0;      ///< Executor rounds (quantum barriers).
  HierarchyStats Machine;   ///< Deterministic merge across hierarchies.
  /// Per-task compiled-trace listings (Config.DumpTraces; empty
  /// otherwise — including in the interp tier, which compiles nothing).
  std::string TraceDump;
  /// Static analysis facts per instrumented allocation site (populated
  /// only on instrumented runs; the CLI's --static-report joins these
  /// against the merged dynamic profile). Deterministic: derived from
  /// the instrumented bytecode alone.
  std::vector<StaticSiteFacts> StaticSites;
};

/// Runs SimThreads interpreted batik instances to completion under the
/// Executor. \p Prof may be null (native run); when given and
/// Config.Instrumented is set, the program is instrumented and every
/// interpreter attached — otherwise VM allocation events feed the agent.
/// The caller owns profiler start()/stop().
ParallelOutcome runParallelWorkload(JavaVm &Vm, DjxPerf *Prof,
                                    const ParallelConfig &Config);

/// The NUMA case-study workload (remote-heavy producer/consumer handoff,
/// the shape of the paper's §7.5/§7.6 studies): a setup thread allocates
/// one hot long[HotElems] array *into each worker's heap shard* (distinct
/// allocation sites, so the profiler reports one group per array), then
/// every worker churns its own shard while sweeping its *neighbour's* hot
/// array. Under the default first-touch placement each array is home on
/// its owner's node, so every sweep access is remote; Config.Policy =
/// Interleave (or Bind) is the placement fix that lowers the remote
/// ratio. Config.Instrumented is ignored (the hot arrays are API-level
/// allocations, so VM events feed the agent). Drive it on a
/// numaRemoteVmConfig(Config) VM with HotElems * 8 above that machine's
/// L3, so the sweeps reach DRAM instead of being absorbed by the LLC.
/// The caller owns profiler start()/stop().
ParallelOutcome runNumaRemoteWorkload(JavaVm &Vm, DjxPerf *Prof,
                                      const ParallelConfig &Config);

} // namespace djx

#endif // DJX_WORKLOADS_PARALLEL_H
