//===- Suites.cpp - Figure 4 benchmark-suite workloads ---------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "workloads/Suites.h"

#include <algorithm>
#include <cassert>

using namespace djx;

void djx::runSuiteEntry(JavaVm &Vm, const SuiteEntry &E) {
  JavaThread &T = Vm.startThread("main", 0);
  MethodId Main = Vm.methods().getOrRegister(
      E.Name, "main", {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  TypeId LongArr = Vm.types().longArray();

  RootScope Roots(Vm);
  FrameScope F(T, Main, 0);

  uint64_t HotElems = E.HotBytes / 8;
  ObjectRef &Hot = Roots.add(Vm.allocateArray(T, LongArr, HotElems));
  ObjectRef &Ballast =
      Roots.add(Vm.allocateArray(T, LongArr, E.BallastBytes / 8));
  (void)Ballast;

  // Live ring of tracked objects: these populate the splay tree and the
  // profiler's object tables (memory overhead).
  std::vector<ObjectRef *> Ring;
  Ring.reserve(E.LiveTracked);
  for (uint32_t I = 0; I < E.LiveTracked; ++I)
    Ring.push_back(&Roots.add());

  uint64_t TrackedElems = std::max<uint64_t>(E.TrackedBytes / 8, 1);
  uint64_t Acc = 0;

  // Interleave the three activities in 16 rounds so allocation, GC and
  // access behaviour mix as in a real run.
  constexpr uint32_t Rounds = 16;
  for (uint32_t Round = 0; Round < Rounds; ++Round) {
    // Small, short-lived allocations: each fires the agent's allocation
    // hook but fails the size filter (the paper's callback storm).
    F.setBci(1);
    for (uint64_t I = 0; I < E.SmallAllocs / Rounds; ++I) {
      ObjectRef Tmp = Vm.allocateArray(T, LongArr, 8); // 64 B.
      (void)Tmp;                                       // Instant garbage.
    }
    // Tracked allocations: rotate through distinct BCIs so each round
    // exercises several allocation contexts.
    for (uint64_t I = 0; I < E.TrackedAllocs / Rounds; ++I) {
      uint64_t Site = (Round * (E.TrackedAllocs / Rounds) + I);
      F.setBci(2 + static_cast<uint32_t>(Site % 1021));
      *Ring[Site % E.LiveTracked] =
          Vm.allocateArray(T, LongArr, TrackedElems);
    }
    // The hot loop: the program's real work.
    F.setBci(3);
    for (uint64_t I = 0; I < E.HotReads / Rounds; ++I)
      Acc += Vm.readWord(T, Hot, (I % HotElems) * 8);
  }
  (void)Acc;
  Vm.endThread(T);
}

/// Derives workload parameters from the paper's published overheads. The
/// runtime overhead is driven by allocation-callback volume; the memory
/// overhead by the number of tracked live objects.
static SuiteEntry makeEntry(std::string Suite, std::string Name,
                            double PaperRt, double PaperMem) {
  SuiteEntry E;
  E.Suite = std::move(Suite);
  E.Name = std::move(Name);
  E.PaperRuntimeOverhead = PaperRt;
  E.PaperMemoryOverhead = PaperMem;

  // Memory: the profiler holds ~226 bytes (splay node + CCT + group) per
  // live tracked 1 KiB object, so the achievable overhead saturates near
  // 1.18; targets are clamped into that range (shape preserved: heavy
  // entries stay heaviest). R = live tracked KiB.
  double F = std::clamp(PaperMem - 1.0, 0.005, 0.12);
  E.TrackedBytes = 1024;
  // Peak heap ~= capacity (the bump pointer reaches the top before each
  // GC), so solve tracked count N from F = 226N / (2.5MiB + 1208N).
  uint64_t N = static_cast<uint64_t>(F * 2621440.0 / (226.0 - 1208.0 * F));
  E.TrackedAllocs = std::clamp<uint64_t>(N, 32, 4096);
  E.LiveTracked = static_cast<uint32_t>(E.TrackedAllocs); // Keep all live.
  E.Config.HeapBytes = 2621440 + E.TrackedAllocs * 1208;

  // Give memory-heavy entries a longer base run so their tracked-object
  // bookkeeping does not distort the runtime overhead.
  E.HotBytes = 64 * 1024;
  E.HotReads = 200000 + 700 * E.TrackedAllocs;

  // Runtime: empirically fitted cost model (see EXPERIMENTS.md):
  //   measured - 1 ~= offset + h*A / (N0 + a*A)
  // with h ~= 60.7 and a ~= 44.7 cycles per small allocation, offset
  // ~= 0.035 from tracked-allocation bookkeeping, and N0 the native base.
  double T = std::max(PaperRt, 1.0);
  double Excess = std::max(0.0, T - 1.035);
  double N0 = static_cast<double>(E.HotReads) * 6.0 +
              static_cast<double>(E.TrackedAllocs) * 550.0 +
              static_cast<double>(E.BallastBytes / 64) * 210.0;
  double Denom = 60.7 - 44.7 * Excess;
  assert(Denom > 0 && "overhead target out of model range");
  E.SmallAllocs = static_cast<uint64_t>(Excess * N0 / Denom);
  return E;
}

std::vector<SuiteEntry> djx::figure4Suites() {
  std::vector<SuiteEntry> All;
  auto R = [&All](const char *N, double T, double M) {
    All.push_back(makeEntry("Renaissance", N, T, M));
  };
  auto D = [&All](const char *N, double T, double M) {
    All.push_back(makeEntry("Dacapo 9.12", N, T, M));
  };
  auto S = [&All](const char *N, double T, double M) {
    All.push_back(makeEntry("SPECjvm2008", N, T, M));
  };

  // Renaissance 0.10 (paper Figure 4 values: runtime, memory).
  R("akka-uct", 1.71, 1.05);
  R("als", 1.01, 1.02);
  R("chi-square", 1.07, 0.94);
  R("db-shootout", 1.45, 1.00);
  R("dec-tree", 1.41, 0.98);
  R("dotty", 1.00, 1.02);
  R("finagle-http", 1.02, 0.94);
  R("fj-kmeans", 1.30, 1.00);
  R("future-genetic", 1.02, 1.47);
  R("gauss-mix", 1.01, 1.06);
  R("log-regression", 1.00, 0.93);
  R("mnemonics", 1.55, 1.08);
  R("movie-lens", 1.04, 1.05);
  R("naive-bayes", 1.01, 0.91);
  R("neo4j-analytics", 1.30, 1.08);
  R("page-rank", 1.05, 1.00);
  R("par-mnemonics", 1.45, 1.08);
  R("philosophers", 1.00, 1.15);
  R("reactors", 1.02, 0.92);
  R("rx-scrabble", 1.00, 1.01);
  R("scala-doku", 1.01, 1.32);
  R("scala-kmeans", 1.00, 1.06);
  R("scala-stm-bench7", 1.12, 0.99);
  R("scrabble", 1.35, 1.00);

  // Dacapo 9.12.
  D("avrora", 1.44, 1.19);
  D("batik", 1.18, 1.15);
  D("eclipse", 1.40, 0.94);
  D("h2", 1.03, 0.76);
  D("jython", 1.15, 1.12);
  D("luindex", 1.28, 1.31);
  D("lusearch", 1.56, 1.06);
  D("lusearch-fix", 1.40, 1.01);
  D("tradebeans", 1.47, 1.08);
  D("sunflow", 1.03, 1.05);
  D("xalan", 1.20, 1.02);

  // SPECjvm2008.
  S("compress", 1.00, 1.13);
  S("derby", 1.10, 1.00);
  S("mpegaudio", 1.00, 1.12);
  S("serial", 1.17, 1.01);
  S("sunflow", 1.08, 1.07);
  S("scimark.fft.large", 1.10, 1.03);
  S("scimark.lu.large", 1.09, 1.01);
  S("scimark.monte_carlo", 1.39, 1.09);
  S("scimark.sor.large", 1.02, 1.17);
  S("scimark.sparse.large", 1.05, 1.23);
  S("compiler.sunflow", 1.08, 1.03);
  S("crypto.aes", 1.03, 1.15);
  S("crypto.rsa", 1.00, 1.13);
  S("crypto.signverify", 1.08, 1.05);
  S("xml.validation", 1.00, 1.11);

  assert(All.size() == 50 && "Figure 4 has 50 benchmarks");
  return All;
}
