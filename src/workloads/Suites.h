//===- Suites.h - Figure 4 benchmark-suite workloads ------------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the 50 Figure 4 benchmarks (Renaissance 0.10,
/// Dacapo 9.12, SPECjvm2008). Each entry is parameterised by the paper's
/// published characteristics — most importantly the allocation-callback
/// intensity, which the paper identifies as the driver of runtime overhead
/// ("more than 400 million [callbacks] for mnemonics, par-mnemonics,
/// scrabble, akka-uct, db-shootout, dec-tree, and neo4j-analytics") — and
/// by a tracked-allocation profile that drives the memory overhead. The
/// harness then *measures* both overheads; nothing is hardcoded.
///
//===----------------------------------------------------------------------===//

#ifndef DJX_WORKLOADS_SUITES_H
#define DJX_WORKLOADS_SUITES_H

#include "jvm/JavaVm.h"

#include <string>
#include <vector>

namespace djx {

/// One Figure 4 benchmark.
struct SuiteEntry {
  std::string Suite; ///< "Renaissance" | "Dacapo 9.12" | "SPECjvm2008".
  std::string Name;
  /// Paper-reported runtime / memory overheads at a 5M period (Figure 4),
  /// kept for side-by-side reporting.
  double PaperRuntimeOverhead = 1.0;
  double PaperMemoryOverhead = 1.0;
  /// Workload shape.
  uint64_t SmallAllocs = 0;     ///< Below-S allocations (hook cost only).
  uint64_t TrackedAllocs = 0;   ///< Above-S allocations (fully tracked).
  uint64_t TrackedBytes = 2048; ///< Size of each tracked allocation.
  uint32_t LiveTracked = 32;    ///< Tracked objects kept live (ring).
  uint64_t HotReads = 200000;   ///< Base work over the hot array.
  uint64_t HotBytes = 64 * 1024;
  /// Long-lived application data (uniform across entries so memory
  /// overheads are comparable).
  uint64_t BallastBytes = 1ULL << 20;
  VmConfig Config;
};

/// Runs one suite entry on a fresh VM (creates and ends its own thread).
void runSuiteEntry(JavaVm &Vm, const SuiteEntry &E);

/// All 50 Figure 4 entries, grouped by suite in paper order.
std::vector<SuiteEntry> figure4Suites();

} // namespace djx

#endif // DJX_WORKLOADS_SUITES_H
