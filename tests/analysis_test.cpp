//===- analysis_test.cpp - Static-analysis framework unit tests -----------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Oracle tests for src/analysis/: CFG construction (blocks, dominators,
/// natural-loop depths) against hand-derived structure, the generic
/// worklist solver in both directions, type-state inference and its
/// definite-misuse diagnostics (the Verifier's upgraded second pass —
/// at least eight negative programs, plus a zero-false-positive sweep
/// over the workload catalog), allocation-site escape analysis, backward
/// liveness, the analysis-proven trace fusions (CmpBranchLI and
/// hook-spanning superblocks) with an interp-vs-super execution parity
/// check, and the static allocation-site report.
///
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"
#include "analysis/Liveness.h"
#include "analysis/MethodAnalysis.h"
#include "analysis/StaticReport.h"
#include "analysis/TypeState.h"
#include "bytecode/MethodBuilder.h"
#include "bytecode/TraceCompiler.h"
#include "bytecode/Verifier.h"
#include "core/DjxPerf.h"
#include "instrument/AllocationInstrumenter.h"
#include "interp/Interpreter.h"
#include "jvm/JavaVm.h"
#include "workloads/BytecodePrograms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(analysis_test, 84.0, 50.0,
    "src/analysis/Cfg.cpp",
    "src/analysis/Cfg.h",
    "src/analysis/Dataflow.h",
    "src/analysis/Liveness.cpp",
    "src/analysis/Liveness.h",
    "src/analysis/MethodAnalysis.h",
    "src/analysis/StaticReport.cpp",
    "src/analysis/StaticReport.h",
    "src/analysis/TypeState.cpp",
    "src/analysis/TypeState.h");

/// Wraps one hand-built method into a one-class program.
BytecodeProgram oneMethod(BytecodeMethod M) {
  ClassFile C;
  C.Name = M.ClassName;
  C.Methods.push_back(std::move(M));
  BytecodeProgram P;
  P.addClass(std::move(C));
  return P;
}

/// if (1) { L0 = 10 } else { L0 = 20 }; return L0 — the diamond every
/// dominator test wants.
///   0: iconst 1   1: ifeq @5
///   2: iconst 10  3: istore 0  4: goto @7
///   5: iconst 20  6: istore 0
///   7: iload 0    8: iret
BytecodeMethod diamondMethod() {
  MethodBuilder B("C", "diamond", 0, 1);
  Label Else = B.newLabel(), Join = B.newLabel();
  B.iconst(1).ifEq(Else);
  B.iconst(10).istore(0).jmp(Join);
  B.bind(Else);
  B.iconst(20).istore(0);
  B.bind(Join);
  B.iload(0).iret();
  return B.build();
}

/// for (i = 0; i < n; ++i) a[i] = i over a fresh int[n]; returns i.
/// Locals: 0 = n, 1 = a, 2 = i. Loop head at pc 7.
BytecodeMethod sweepMethod(TypeRegistry &Types, int64_t N) {
  MethodBuilder B("C", "sweep", 0, 3);
  B.iconst(N).istore(0);
  B.iload(0).newArray(Types.intArray()).astore(1);
  B.iconst(0).istore(2);
  Label Head = B.newLabel(), End = B.newLabel();
  B.bind(Head);
  B.iload(2).iload(0).ifICmp(Opcode::IfICmpGe, End);
  B.aload(1).iload(2).iload(2).paStore();
  B.iload(2).iconst(1).iadd().istore(2);
  B.jmp(Head);
  B.bind(End);
  B.iload(2).iret();
  return B.build();
}

constexpr uint32_t kSweepHead = 7;

// --- Cfg -----------------------------------------------------------------

TEST(Cfg, LinearCodeIsOneBlock) {
  MethodBuilder B("C", "m", 0, 1);
  B.iconst(1).istore(0).iload(0).iret();
  BytecodeMethod M = B.build();
  Cfg G = Cfg::build(M);
  ASSERT_EQ(G.blocks().size(), 1u);
  EXPECT_EQ(G.blocks()[0].Start, 0u);
  EXPECT_EQ(G.blocks()[0].End, 4u);
  EXPECT_TRUE(G.blocks()[0].Succs.empty());
  EXPECT_EQ(G.blockOf(3), 0u);
  EXPECT_EQ(G.blockOf(99), kNoBlock);
  EXPECT_EQ(G.rpo(), (std::vector<uint32_t>{0}));
  EXPECT_TRUE(G.dominates(0, 0)); // Reflexive.
  EXPECT_EQ(G.idom(0), 0u);       // Entry dominates itself.
  EXPECT_EQ(G.loopDepth(0), 0u);
  EXPECT_TRUE(G.backEdges().empty());
  EXPECT_NE(G.str().find("b0"), std::string::npos);
}

TEST(Cfg, DiamondDominators) {
  Cfg G = Cfg::build(diamondMethod());
  uint32_t Cond = G.blockOf(0), Then = G.blockOf(2), Else = G.blockOf(5),
           Join = G.blockOf(7);
  ASSERT_EQ(G.blocks().size(), 4u);
  EXPECT_NE(Then, Else);
  // Edges: cond -> {then, else}, both arms -> join.
  auto HasSucc = [&](uint32_t From, uint32_t To) {
    const std::vector<uint32_t> &S = G.blocks()[From].Succs;
    return std::find(S.begin(), S.end(), To) != S.end();
  };
  EXPECT_TRUE(HasSucc(Cond, Then));
  EXPECT_TRUE(HasSucc(Cond, Else));
  EXPECT_TRUE(HasSucc(Then, Join));
  EXPECT_TRUE(HasSucc(Else, Join));
  EXPECT_EQ(G.blocks()[Join].Preds.size(), 2u);
  // The join's idom is the branch, not either arm.
  EXPECT_EQ(G.idom(Join), Cond);
  EXPECT_TRUE(G.dominates(Cond, Join));
  EXPECT_FALSE(G.dominates(Then, Join));
  EXPECT_FALSE(G.dominates(Else, Join));
  // RPO starts at the entry and visits all four blocks.
  ASSERT_EQ(G.rpo().size(), 4u);
  EXPECT_EQ(G.rpo()[0], Cond);
  EXPECT_TRUE(G.backEdges().empty());
  EXPECT_EQ(G.loopDepth(7), 0u);
}

TEST(Cfg, LoopHasBackEdgeAndDepthOne) {
  JavaVm Vm;
  BytecodeMethod M = sweepMethod(Vm.types(), 8);
  Cfg G = Cfg::build(M);
  uint32_t Head = G.blockOf(kSweepHead);
  uint32_t Body = G.blockOf(kSweepHead + 3);
  ASSERT_EQ(G.backEdges().size(), 1u);
  EXPECT_EQ(G.backEdges()[0].second, Head);
  EXPECT_TRUE(G.dominates(Head, Body));
  // Head and body are in the loop; prologue and epilogue are not.
  EXPECT_EQ(G.loopDepth(kSweepHead), 1u);
  EXPECT_EQ(G.loopDepth(kSweepHead + 3), 1u);
  EXPECT_EQ(G.loopDepth(0), 0u);
  EXPECT_EQ(G.loopDepth(static_cast<uint32_t>(M.Code.size() - 1)), 0u);
}

TEST(Cfg, NestedLoopDepthsReachTwo) {
  // for (i = 0; i < 3; ++i) for (j = 0; j < 3; ++j) ++j-body.
  MethodBuilder B("C", "nested", 0, 2);
  B.iconst(0).istore(0);
  Label Outer = B.newLabel(), EndO = B.newLabel();
  Label Inner = B.newLabel(), EndI = B.newLabel();
  B.bind(Outer);
  uint32_t OuterHead = B.currentBci();
  B.iload(0).iconst(3).ifICmp(Opcode::IfICmpGe, EndO);
  B.iconst(0).istore(1);
  B.bind(Inner);
  uint32_t InnerHead = B.currentBci();
  B.iload(1).iconst(3).ifICmp(Opcode::IfICmpGe, EndI);
  uint32_t InnerBody = B.currentBci();
  B.iload(1).iconst(1).iadd().istore(1);
  B.jmp(Inner);
  B.bind(EndI);
  uint32_t OuterLatch = B.currentBci();
  B.iload(0).iconst(1).iadd().istore(0);
  B.jmp(Outer);
  B.bind(EndO);
  uint32_t Exit = B.currentBci();
  B.iload(0).iret();
  Cfg G = Cfg::build(B.build());
  EXPECT_EQ(G.backEdges().size(), 2u);
  EXPECT_EQ(G.loopDepth(InnerBody), 2u);
  EXPECT_EQ(G.loopDepth(InnerHead), 2u);
  EXPECT_EQ(G.loopDepth(OuterHead), 1u);
  EXPECT_EQ(G.loopDepth(OuterLatch), 1u);
  EXPECT_EQ(G.loopDepth(Exit), 0u);
}

TEST(Cfg, SkippedBlockIsEntryUnreachable) {
  // goto L; <dead>; L: ret
  MethodBuilder B("C", "dead", 0, 0);
  Label L = B.newLabel();
  B.jmp(L);
  B.iconst(1).pop();
  B.bind(L);
  B.ret();
  Cfg G = Cfg::build(B.build());
  uint32_t Dead = G.blockOf(1);
  ASSERT_NE(Dead, kNoBlock);
  EXPECT_FALSE(G.reachable(Dead));
  EXPECT_EQ(G.idom(Dead), kNoBlock);
  EXPECT_TRUE(G.reachable(G.blockOf(0)));
  EXPECT_TRUE(G.reachable(G.blockOf(3)));
  // Unreachable blocks never appear in the RPO.
  EXPECT_EQ(std::count(G.rpo().begin(), G.rpo().end(), Dead), 0);
}

// --- Generic worklist solver ---------------------------------------------

/// Shortest path length (in blocks) from the boundary, the textbook
/// dataflow problem: join = min, transfer = +1.
struct DistanceProblem {
  using State = int;
  static constexpr int kUnreached = 1 << 20;
  State boundary() { return 0; }
  State initial() { return kUnreached; }
  State transfer(uint32_t, const State &In) {
    return In == kUnreached ? In : In + 1;
  }
  bool join(State &Dest, const State &Src) {
    if (Src < Dest) {
      Dest = Src;
      return true;
    }
    return false;
  }
};

TEST(Dataflow, ForwardDistancesOnDiamond) {
  Cfg G = Cfg::build(diamondMethod());
  DistanceProblem P;
  std::vector<int> D = solveDataflow(G, DataflowDirection::Forward, P);
  EXPECT_EQ(D[G.blockOf(0)], 0); // Entry gets the boundary state.
  EXPECT_EQ(D[G.blockOf(2)], 1);
  EXPECT_EQ(D[G.blockOf(5)], 1);
  EXPECT_EQ(D[G.blockOf(7)], 2); // Joined over both arms: min(2, 2).
}

TEST(Dataflow, BackwardDistancesOnDiamond) {
  Cfg G = Cfg::build(diamondMethod());
  DistanceProblem P;
  std::vector<int> D = solveDataflow(G, DataflowDirection::Backward, P);
  EXPECT_EQ(D[G.blockOf(7)], 0); // Exit block is the backward boundary.
  EXPECT_EQ(D[G.blockOf(2)], 1);
  EXPECT_EQ(D[G.blockOf(5)], 1);
  EXPECT_EQ(D[G.blockOf(0)], 2);
}

// --- Type-state inference ------------------------------------------------

TEST(TypeState, TracksTagsAndAllocationSitesPerPc) {
  JavaVm Vm;
  //   0: iconst 4   1: newarray    2: astore 1
  //   3: aload 1    4: iconst 0    5: iconst 7   6: pastore
  //   7: iconst 0   8: iret
  MethodBuilder B("C", "m", 0, 2);
  B.iconst(4).newArray(Vm.types().intArray()).astore(1);
  B.aload(1).iconst(0).iconst(7).paStore();
  B.iconst(0).iret();
  BytecodeMethod M = B.build();
  Cfg G = Cfg::build(M);
  TypeStateResult R = inferTypeStates(M, G);
  EXPECT_TRUE(R.Errors.empty());
  EXPECT_FALSE(R.Incomplete);
  // Untouched locals enter as int-tagged zero.
  EXPECT_EQ(R.AtPc[0].Locals[0].str(), "int0");
  // After the astore, local 1 is the array produced by site 0.
  EXPECT_EQ(R.AtPc[3].Locals[1].str(), "arr@{0}");
  // Entering the pastore: [arr, int, int], depth 3.
  EXPECT_EQ(R.depthAt(6), 3);
  EXPECT_EQ(R.AtPc[6].Stack[0].str(), "arr@{0}");
  EXPECT_TRUE(R.AtPc[6].Stack[1].mayInt());
  // Site bookkeeping: one newarray at pc 1, local to the method.
  ASSERT_EQ(R.Sites.size(), 1u);
  EXPECT_EQ(R.Sites[0].Pc, 1u);
  EXPECT_EQ(R.Sites[0].Op, Opcode::NewArray);
  EXPECT_EQ(R.siteAtPc(1), &R.Sites[0]);
  EXPECT_EQ(R.siteAtPc(0), nullptr);
  EXPECT_FALSE(R.Sites[0].escapes());
  // depthAt on an out-of-range pc answers "unknown".
  EXPECT_EQ(R.depthAt(999), -1);
}

TEST(TypeState, ArgumentLocalsEnterAsTop) {
  MethodBuilder B("C", "m", 1, 2);
  B.iconst(0).iret();
  BytecodeMethod M = B.build();
  Cfg G = Cfg::build(M);
  TypeStateResult R = inferTypeStates(M, G);
  EXPECT_EQ(R.AtPc[0].Locals[0].str(), "top");
  EXPECT_EQ(R.AtPc[0].Locals[1].str(), "int0");
}

TEST(TypeState, EscapeRouteReturn) {
  JavaVm Vm;
  MethodBuilder B("C", "m", 0, 1);
  B.iconst(4).newArray(Vm.types().intArray()).aret();
  BytecodeMethod M = B.build();
  Cfg G = Cfg::build(M);
  TypeStateResult R = inferTypeStates(M, G);
  ASSERT_EQ(R.Sites.size(), 1u);
  EXPECT_EQ(R.Sites[0].Routes, kEscReturn);
  EXPECT_TRUE(R.Sites[0].escapes());
  EXPECT_EQ(escapeRoutesStr(R.Sites[0].Routes), "return");
}

TEST(TypeState, EscapeRouteStore) {
  JavaVm Vm;
  TypeId Obj = Vm.types().defineClass("Obj", 16);
  // Stores a fresh object into a caller-supplied array: arg0[0] = new Obj.
  MethodBuilder B("C", "m", 1, 1);
  B.aload(0).iconst(0).newObject(Obj).aaStore().ret();
  BytecodeMethod M = B.build();
  Cfg G = Cfg::build(M);
  TypeStateResult R = inferTypeStates(M, G);
  EXPECT_TRUE(R.Errors.empty()); // arg0 is top: may be an array.
  ASSERT_EQ(R.Sites.size(), 1u);
  EXPECT_EQ(R.Sites[0].Routes, kEscStore);
  EXPECT_EQ(escapeRoutesStr(R.Sites[0].Routes), "store");
}

TEST(TypeState, EscapeRouteCall) {
  JavaVm Vm;
  TypeId Obj = Vm.types().defineClass("Obj", 16);
  MethodBuilder CalleeB("C", "sink", 1, 1);
  CalleeB.ret();
  BytecodeMethod Callee = CalleeB.build();
  MethodBuilder B("C", "m", 0, 1);
  B.newObject(Obj).invoke("C.sink", 1).ret();
  BytecodeMethod M = B.build();
  Cfg G = Cfg::build(M);
  CalleeResolver Resolve =
      [&Callee](const Instruction &) -> const BytecodeMethod * {
    return &Callee;
  };
  TypeStateResult R = inferTypeStates(M, G, Resolve);
  EXPECT_FALSE(R.Incomplete);
  ASSERT_EQ(R.Sites.size(), 1u);
  EXPECT_EQ(R.Sites[0].Routes, kEscCall);
  EXPECT_EQ(escapeRoutesStr(kEscStore | kEscCall), "store+call");
  EXPECT_EQ(escapeRoutesStr(0), "none");
}

TEST(TypeState, SitesBeyondMaskWidthAreConservativelyEscaping) {
  JavaVm Vm;
  TypeId Obj = Vm.types().defineClass("Obj", 16);
  MethodBuilder B("C", "many", 0, 1);
  for (int I = 0; I < 66; ++I)
    B.newObject(Obj).pop();
  B.ret();
  BytecodeMethod M = B.build();
  Cfg G = Cfg::build(M);
  TypeStateResult R = inferTypeStates(M, G);
  ASSERT_EQ(R.Sites.size(), 66u);
  EXPECT_TRUE(R.Sites[63].Tracked);
  EXPECT_FALSE(R.Sites[63].escapes()); // Popped on the spot: local.
  EXPECT_FALSE(R.Sites[64].Tracked);
  EXPECT_TRUE(R.Sites[64].escapes()); // Beyond the mask: assume escape.
}

TEST(TypeState, UnresolvedInvokeMarksIncompleteAndMutesUnreachable) {
  MethodBuilder B("C", "m", 0, 1);
  B.invoke("Ghost.callee", 0);
  Label L = B.newLabel();
  B.jmp(L);
  B.iconst(1).pop(); // Entry-unreachable, but reachability is partial.
  B.bind(L);
  B.ret();
  BytecodeMethod M = B.build();
  Cfg G = Cfg::build(M);
  TypeStateResult R = inferTypeStates(M, G, nullptr);
  EXPECT_TRUE(R.Incomplete);
  for (const TypeStateError &E : R.Errors)
    EXPECT_EQ(E.Msg.find("unreachable"), std::string::npos) << E.Msg;
}

// --- Verifier upgrade: definite type misuse is InvalidBytecode -----------
//
// Each negative program is structurally fine (the old underflow-only
// verifier accepted this whole class of bugs) and is now rejected by the
// type-state pass with a diagnostic naming the pc and inferred state.

/// The full program-level verdict, which runs the type-state pass.
VerifyResult verify(BytecodeMethod M) {
  return verifyProgram(oneMethod(std::move(M)));
}

bool hasError(const VerifyResult &R, const std::string &Needle) {
  for (const std::string &E : R.Errors)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

TEST(VerifierTypeState, RejectsILoadOfReference) {
  JavaVm Vm;
  MethodBuilder B("C", "m", 0, 1);
  B.iconst(4).newArray(Vm.types().intArray()).astore(0);
  B.iload(0).pop().ret();
  VerifyResult R = verify(B.build());
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "iload of a reference local L0")) << R.Errors[0];
  // Diagnostics carry the bci and the inferred state.
  EXPECT_TRUE(hasError(R, "bci 3"));
  EXPECT_TRUE(hasError(R, "arr"));
}

TEST(VerifierTypeState, RejectsIStoreOfReference) {
  JavaVm Vm;
  MethodBuilder B("C", "m", 0, 1);
  B.iconst(4).newArray(Vm.types().intArray()).istore(0).ret();
  VerifyResult R = verify(B.build());
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "istore of a reference into L0"));
}

TEST(VerifierTypeState, RejectsAStoreOfInteger) {
  MethodBuilder B("C", "m", 0, 1);
  B.iconst(5).astore(0).ret();
  VerifyResult R = verify(B.build());
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "astore of a non-reference into L0"));
}

TEST(VerifierTypeState, RejectsArithmeticOnReference) {
  JavaVm Vm;
  MethodBuilder B("C", "m", 0, 1);
  B.iconst(1).iconst(4).newArray(Vm.types().intArray());
  B.iadd().pop().ret();
  VerifyResult R = verify(B.build());
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "iadd on a reference operand"));
}

TEST(VerifierTypeState, RejectsIReturnOfReference) {
  JavaVm Vm;
  MethodBuilder B("C", "m", 0, 1);
  B.iconst(4).newArray(Vm.types().intArray()).iret();
  VerifyResult R = verify(B.build());
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "ireturn of a reference"));
}

TEST(VerifierTypeState, RejectsAReturnOfInteger) {
  MethodBuilder B("C", "m", 0, 1);
  B.iconst(5).aret();
  VerifyResult R = verify(B.build());
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "areturn of a non-reference"));
}

TEST(VerifierTypeState, RejectsArrayAccessOnNonArray) {
  JavaVm Vm;
  TypeId Obj = Vm.types().defineClass("Obj", 16);
  MethodBuilder B("C", "m", 0, 1);
  B.newObject(Obj).iconst(0).paLoad().pop().ret();
  VerifyResult R = verify(B.build());
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "paload on a non-array operand"));
}

TEST(VerifierTypeState, RejectsUnreachableCode) {
  MethodBuilder B("C", "m", 0, 0);
  Label L = B.newLabel();
  B.jmp(L);
  B.iconst(1).pop(); // No control path reaches these.
  B.bind(L);
  B.ret();
  VerifyResult R = verify(B.build());
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "unreachable code"));
}

TEST(VerifierTypeState, RejectsStackDepthMismatchAtMerge) {
  // Taken path reaches L with depth 0, fall-through with depth 1.
  MethodBuilder B("C", "m", 0, 0);
  Label L = B.newLabel();
  B.iconst(0).ifEq(L);
  B.iconst(7);
  B.bind(L);
  B.iconst(1).pop().ret();
  VerifyResult R = verify(B.build());
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "operand stack depth mismatch at merge"));
}

TEST(VerifierTypeState, RejectsIfNullOnInteger) {
  MethodBuilder B("C", "m", 0, 0);
  Label L = B.newLabel();
  B.iconst(5).ifNull(L);
  B.bind(L);
  B.ret();
  VerifyResult R = verify(B.build());
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "ifnull on an integer operand"));
}

TEST(VerifierTypeState, RejectsHookPostWithoutReferenceOnTos) {
  // Hand-assembled: allochook_post peeks the fresh ref, but TOS is an
  // integer. (No builder emits this; instrumentation bugs would.)
  MethodBuilder B("C", "m", 0, 0);
  B.iconst(1);
  BytecodeMethod M = B.build();
  M.Code.push_back(Instruction{Opcode::AllocHookPost, 0, 0});
  M.Code.push_back(Instruction{Opcode::Pop, 0, 0});
  M.Code.push_back(Instruction{Opcode::Return, 0, 0});
  VerifyResult R = verify(std::move(M));
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(hasError(R, "allochook_post without a reference on TOS"));
}

TEST(VerifierTypeState, ZeroFalsePositivesAcrossWorkloadCatalog) {
  // Every program the workload catalog can put in front of the verifier
  // must still verify cleanly — including after instrumentation, which
  // is the bytecode the --static-report path analyzes.
  JavaVm Vm;
  std::vector<BytecodeProgram> Programs;
  Programs.push_back(buildBatikProgram(Vm.types()));
  Programs.push_back(buildLusearchProgram(Vm.types()));
  Programs.push_back(buildParallelWorkerProgram(Vm.types()));
  Programs.push_back(buildNumaWorkerProgram(Vm.types()));
  for (BytecodeProgram &P : Programs) {
    VerifyResult Before = verifyProgram(P);
    EXPECT_TRUE(Before.ok()) << (Before.ok() ? "" : Before.Errors[0]);
    P.load(Vm);
    AllocationSiteTable Sites;
    instrumentProgram(P, Sites);
    VerifyResult After = verifyProgram(P);
    EXPECT_TRUE(After.ok()) << (After.ok() ? "" : After.Errors[0]);
  }
}

// --- Liveness ------------------------------------------------------------

TEST(Liveness, OverwrittenLocalIsDeadUntilTheStore) {
  // 0: iconst 1  1: istore 0  2: iconst 2  3: istore 0  4: iload 0  5: iret
  MethodBuilder B("C", "m", 0, 1);
  B.iconst(1).istore(0).iconst(2).istore(0).iload(0).iret();
  BytecodeMethod M = B.build();
  Cfg G = Cfg::build(M);
  TypeStateResult TS = inferTypeStates(M, G);
  LivenessResult L = computeLiveness(M, G, TS);
  ASSERT_TRUE(L.knownAt(2));
  // Entering pc 2 the first store's value is dead (rewritten at pc 3
  // before any load); entering pc 4 the second store's value is live.
  EXPECT_FALSE(L.localLiveAt(2, 0));
  EXPECT_TRUE(L.localLiveAt(4, 0));
}

TEST(Liveness, StackSlotFeedingOnlyPopIsDead) {
  // 0: iconst 7  1: pop  2: iconst 1  3: iret
  MethodBuilder B("C", "m", 0, 0);
  B.iconst(7).pop().iconst(1).iret();
  BytecodeMethod M = B.build();
  Cfg G = Cfg::build(M);
  TypeStateResult TS = inferTypeStates(M, G);
  LivenessResult L = computeLiveness(M, G, TS);
  ASSERT_TRUE(L.knownAt(1));
  EXPECT_FALSE(L.stackLiveAt(1, 0)); // The 7 only feeds the pop.
  ASSERT_TRUE(L.knownAt(3));
  EXPECT_TRUE(L.stackLiveAt(3, 0)); // The 1 feeds the return.
  EXPECT_EQ(L.liveStackSlotsAbove(1, 0), 0u);
  EXPECT_EQ(L.liveStackSlotsAbove(3, 0), 1u);
}

TEST(Liveness, LoopCarriedLocalsStayLive) {
  JavaVm Vm;
  BytecodeMethod M = sweepMethod(Vm.types(), 8);
  Cfg G = Cfg::build(M);
  TypeStateResult TS = inferTypeStates(M, G);
  LivenessResult L = computeLiveness(M, G, TS);
  ASSERT_TRUE(L.knownAt(kSweepHead));
  // n, a and i are all read again around the loop.
  EXPECT_TRUE(L.localLiveAt(kSweepHead, 0));
  EXPECT_TRUE(L.localLiveAt(kSweepHead, 1));
  EXPECT_TRUE(L.localLiveAt(kSweepHead, 2));
  // The loop never holds operands across the head.
  EXPECT_EQ(L.liveStackSlotsAbove(kSweepHead, 0), 0u);
}

TEST(MethodAnalysis, BundlesAllThreeViews) {
  JavaVm Vm;
  BytecodeMethod M = sweepMethod(Vm.types(), 8);
  MethodAnalysis A = MethodAnalysis::analyze(M);
  EXPECT_FALSE(A.G.blocks().empty());
  EXPECT_EQ(A.Types.AtPc.size(), M.Code.size());
  EXPECT_FALSE(A.Types.Incomplete);
  EXPECT_TRUE(A.Live.knownAt(0));
  EXPECT_EQ(A.Types.depthAt(kSweepHead), 0);
}

// --- Analysis-proven trace fusions ---------------------------------------

TierConfig superTier(uint32_t HotThreshold = 2) {
  TierConfig Cfg;
  Cfg.Tier = ExecTier::Super;
  Cfg.HotThreshold = HotThreshold;
  return Cfg;
}

/// Hot loop with an immediate-compare head and a *non-escaping*
/// instrumentable allocation in the body:
///   for (i = 0; i < iters; ++i) { a = new int[16]; a[0] = i; }
/// Locals: 0 = i, 1 = a. Returns i.
BytecodeProgram hookLoopProgram(TypeRegistry &Types, int64_t Iters) {
  MethodBuilder B("H", "main", 0, 2);
  B.line(1).iconst(0).istore(0);
  Label Head = B.newLabel(), End = B.newLabel();
  B.bind(Head);
  B.iload(0).iconst(Iters).ifICmp(Opcode::IfICmpGe, End);
  B.line(2).iconst(16).newArray(Types.intArray()).astore(1);
  B.aload(1).iconst(0).iload(0).paStore();
  B.iload(0).iconst(1).iadd().istore(0);
  B.jmp(Head);
  B.bind(End);
  B.iload(0).iret();
  ClassFile C;
  C.Name = "H";
  C.Methods.push_back(B.build());
  BytecodeProgram P;
  P.addClass(std::move(C));
  return P;
}

std::vector<SuperOp> opKinds(const CompiledTrace &T) {
  std::vector<SuperOp> Kinds;
  for (const TraceOp &O : T.Ops)
    Kinds.push_back(O.Kind);
  return Kinds;
}

bool hasOp(const CompiledTrace &T, SuperOp K) {
  std::vector<SuperOp> Kinds = opKinds(T);
  return std::find(Kinds.begin(), Kinds.end(), K) != Kinds.end();
}

TEST(TraceAnalysis, CmpBranchLIRequiresTheLivenessProof) {
  JavaVm Vm;
  BytecodeProgram P = hookLoopProgram(Vm.types(), 100);
  const BytecodeMethod &M = P.classes()[0].Methods[0];
  MethodAnalysis A = MethodAnalysis::analyze(M);
  // Loop head pc: iconst + istore prologue.
  constexpr uint32_t Head = 2;
  auto Proven = compileTrace(M, Head, superTier(), &A);
  ASSERT_TRUE(Proven.has_value());
  EXPECT_TRUE(hasOp(*Proven, SuperOp::CmpBranchLI));
  EXPECT_EQ(Proven->Ops.front().Kind, SuperOp::CmpBranchLI);
  EXPECT_EQ(Proven->Ops.front().NumSteps, 3u); // Retires all 3 opcodes.
  // Without the analysis the same region compiles to base encodings
  // only — the fused form is never emitted on syntax alone.
  auto Base = compileTrace(M, Head, superTier(), nullptr);
  ASSERT_TRUE(Base.has_value());
  EXPECT_FALSE(hasOp(*Base, SuperOp::CmpBranchLI));
  EXPECT_EQ(Base->Ops.front().Kind, SuperOp::ILoad);
}

TEST(TraceAnalysis, SuperblockSpansNonEscapingAllocationSite) {
  JavaVm Vm;
  BytecodeProgram P = hookLoopProgram(Vm.types(), 100);
  P.load(Vm);
  AllocationSiteTable Sites;
  ASSERT_EQ(instrumentProgram(P, Sites), 1u);
  const BytecodeMethod &M = P.method(0);
  MethodAnalysis A = MethodAnalysis::analyze(M);
  constexpr uint32_t Head = 2;
  auto Proven = compileTrace(M, Head, superTier(), &A);
  ASSERT_TRUE(Proven.has_value());
  // The trace runs through the hook triple instead of ending at it...
  EXPECT_TRUE(hasOp(*Proven, SuperOp::HookPre));
  EXPECT_TRUE(hasOp(*Proven, SuperOp::HookPost));
  std::vector<SuperOp> Kinds = opKinds(*Proven);
  auto Pre = std::find(Kinds.begin(), Kinds.end(), SuperOp::HookPre);
  ASSERT_NE(Pre, Kinds.end());
  EXPECT_EQ(*(Pre + 1), SuperOp::Alloc);
  EXPECT_EQ(*(Pre + 2), SuperOp::HookPost);
  // ...and keeps going: the astore and the array store after the
  // allocation are in-trace.
  EXPECT_TRUE(hasOp(*Proven, SuperOp::AStore));
  EXPECT_TRUE(hasOp(*Proven, SuperOp::Access));
  // Without analysis facts the hook still ends the trace.
  auto Base = compileTrace(M, Head, superTier(), nullptr);
  ASSERT_TRUE(Base.has_value());
  EXPECT_FALSE(hasOp(*Base, SuperOp::HookPre));
}

TEST(TraceAnalysis, EscapingSiteStillEndsTheTrace) {
  JavaVm Vm;
  // Same loop shape, but the allocation escapes through aastore into a
  // caller-visible array — the proof fails and the hook stays a trace
  // terminator.
  TypeId IntArr = Vm.types().intArray();
  TypeId ArrArr = Vm.types().refArrayType("int[]");
  MethodBuilder B("H", "main", 0, 2);
  B.iconst(8).aNewArray(ArrArr).astore(1);
  Label Head = B.newLabel(), End = B.newLabel();
  B.bind(Head);
  B.iload(0).iconst(100).ifICmp(Opcode::IfICmpGe, End);
  B.aload(1).iconst(0).iconst(16).newArray(IntArr).aaStore();
  B.iload(0).iconst(1).iadd().istore(0);
  B.jmp(Head);
  B.bind(End);
  B.iload(0).iret();
  ClassFile C;
  C.Name = "H";
  C.Methods.push_back(B.build());
  BytecodeProgram P;
  P.addClass(std::move(C));
  P.load(Vm);
  AllocationSiteTable Sites;
  ASSERT_EQ(instrumentProgram(P, Sites), 2u);
  const BytecodeMethod &M = P.method(0);
  // Instrumentation shifted every pc; re-locate the loop head as the
  // iload two instructions before the loop's compare branch.
  uint32_t HeadPc = 0;
  for (uint32_t Pc = 0; Pc < M.Code.size(); ++Pc)
    if (M.Code[Pc].Op == Opcode::IfICmpGe) {
      HeadPc = Pc - 2;
      break;
    }
  ASSERT_EQ(M.Code[HeadPc].Op, Opcode::ILoad);
  MethodAnalysis A = MethodAnalysis::analyze(M);
  auto T = compileTrace(M, HeadPc, superTier(), &A);
  ASSERT_TRUE(T.has_value());
  EXPECT_FALSE(hasOp(*T, SuperOp::HookPre));
  EXPECT_FALSE(hasOp(*T, SuperOp::Alloc));
}

TEST(TraceAnalysis, HookSpanningExecutionParity) {
  // The fusion contract end to end: an instrumented hot loop whose
  // allocation site is proven non-escaping must produce the identical
  // hook event stream, return value and step count in the interp tier,
  // the super tier with analysis fusion, and the super tier without it.
  struct HookEvent {
    uint64_t Site;
    bool Post;
    ObjectRef Obj;
    bool operator==(const HookEvent &O) const {
      return Site == O.Site && Post == O.Post && Obj == O.Obj;
    }
  };
  auto Run = [&](bool Super, bool Fusion, std::string *Traces) {
    JavaVm Vm;
    BytecodeProgram P = hookLoopProgram(Vm.types(), 300);
    P.load(Vm);
    AllocationSiteTable Sites;
    instrumentProgram(P, Sites);
    JavaThread &Th = Vm.startThread("parity", 0);
    Interpreter I(Vm, P, Th);
    if (Super) {
      TierConfig Cfg = superTier();
      Cfg.AnalysisFusion = Fusion;
      I.setTier(Cfg);
    }
    std::vector<HookEvent> Events;
    AllocationHooks Hooks;
    Hooks.Pre = [&](uint64_t Site) {
      Events.push_back({Site, false, kNullRef});
    };
    Hooks.Post = [&](uint64_t Site, ObjectRef Obj) {
      Events.push_back({Site, true, Obj});
    };
    I.setAllocationHooks(std::move(Hooks));
    auto R = I.run("H.main");
    if (Traces)
      *Traces = I.renderTraces();
    uint64_t Steps = I.stepsExecuted();
    Vm.endThread(Th);
    EXPECT_TRUE(R.has_value());
    return std::make_tuple(R->asInt(), Steps, Events);
  };
  std::string FusedTraces;
  auto Fused = Run(true, true, &FusedTraces);
  auto Plain = Run(true, false, nullptr);
  auto Interp = Run(false, false, nullptr);
  // The fused run really took the analysis-proven path.
  EXPECT_NE(FusedTraces.find("hook_pre"), std::string::npos) << FusedTraces;
  EXPECT_NE(FusedTraces.find("hook_post"), std::string::npos);
  EXPECT_NE(FusedTraces.find("cmp_branch_li"), std::string::npos);
  // 300 iterations, one pre + one post each.
  EXPECT_EQ(std::get<2>(Interp).size(), 600u);
  EXPECT_EQ(std::get<0>(Interp), 300);
  // Observational identity across all three executions.
  EXPECT_TRUE(Fused == Interp);
  EXPECT_TRUE(Plain == Interp);
}

// --- Static allocation-site report ---------------------------------------

TEST(StaticReport, CollectsEscapeClassAndLoopDepthPerSite) {
  JavaVm Vm;
  TypeId IntArr = Vm.types().intArray();
  BytecodeProgram P;
  {
    // Hot.loop: non-escaping allocation inside a depth-1 loop.
    MethodBuilder B("Hot", "loop", 0, 2);
    B.line(5).iconst(0).istore(0);
    Label Head = B.newLabel(), End = B.newLabel();
    B.bind(Head);
    B.iload(0).iconst(10).ifICmp(Opcode::IfICmpGe, End);
    B.line(6).iconst(8).newArray(IntArr).astore(1);
    B.aload(1).iconst(0).iload(0).paStore();
    B.iload(0).iconst(1).iadd().istore(0);
    B.jmp(Head);
    B.bind(End);
    B.iconst(0).iret();
    ClassFile C;
    C.Name = "Hot";
    C.Methods.push_back(B.build());
    // Hot.make: straight-line allocation that escapes by return.
    MethodBuilder B2("Hot", "make", 0, 0);
    B2.line(9).iconst(4).newArray(IntArr).aret();
    C.Methods.push_back(B2.build());
    P.addClass(std::move(C));
  }
  P.load(Vm);
  AllocationSiteTable Sites;
  ASSERT_EQ(instrumentProgram(P, Sites), 2u);

  std::vector<StaticSiteFacts> Facts = collectStaticSiteFacts(P, Sites);
  ASSERT_EQ(Facts.size(), 2u);
  EXPECT_EQ(Facts[0].MethodName, "Hot.loop");
  EXPECT_EQ(Facts[0].Line, 6u);
  EXPECT_EQ(Facts[0].AllocOp, Opcode::NewArray);
  EXPECT_TRUE(Facts[0].Analyzed);
  EXPECT_EQ(Facts[0].LoopDepth, 1u); // Instrumentation keeps loop depth.
  EXPECT_EQ(Facts[0].Routes, 0u);
  EXPECT_TRUE(Facts[0].provenLocal());
  EXPECT_EQ(Facts[1].MethodName, "Hot.make");
  EXPECT_EQ(Facts[1].Line, 9u);
  EXPECT_EQ(Facts[1].LoopDepth, 0u);
  EXPECT_TRUE(Facts[1].Analyzed);
  EXPECT_EQ(Facts[1].Routes, kEscReturn);
  EXPECT_FALSE(Facts[1].provenLocal());

  // Rendering joins against an (empty) dynamic profile without a crash
  // and classifies both sites.
  MergedProfile Prof;
  std::string Out =
      renderStaticReport(Facts, Prof, Vm.methods(), PerfEventKind::L1Miss);
  EXPECT_NE(Out.find("static allocation-site report"), std::string::npos);
  EXPECT_NE(Out.find("1 proven method-local, 1 escaping, 0 unknown"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("Hot.loop"), std::string::npos);
  EXPECT_NE(Out.find("depth 1"), std::string::npos);
  EXPECT_NE(Out.find("return"), std::string::npos);
}

TEST(StaticReport, JoinsDynamicProfileByMethodAndLine) {
  // The real --static-report path: an instrumented profiled run whose
  // merged profile joins the static facts by (method, line) — the row
  // must show the dynamic allocation count and a sample share.
  JavaVm Vm;
  DjxPerfConfig Cfg;
  Cfg.Events = {PerfEventAttr{PerfEventKind::MemAccess, 10, 64}};
  Cfg.MinObjectSize = 16;
  DjxPerf Prof(Vm, Cfg);
  BytecodeProgram P = hookLoopProgram(Vm.types(), 200);
  P.load(Vm);
  JavaThread &Th = Vm.startThread("main", 0);
  {
    Interpreter I(Vm, P, Th);
    ASSERT_EQ(Prof.instrument(P, I), 1u);
    std::vector<StaticSiteFacts> Facts =
        collectStaticSiteFacts(P, Prof.sites());
    ASSERT_EQ(Facts.size(), 1u);
    EXPECT_TRUE(Facts[0].provenLocal());
    EXPECT_EQ(Facts[0].LoopDepth, 1u);
    Prof.start();
    auto R = I.run("H.main");
    Prof.stop();
    EXPECT_TRUE(R.has_value());
    MergedProfile M = Prof.analyze();
    std::string Out =
        renderStaticReport(Facts, M, Vm.methods(), PerfEventKind::MemAccess);
    EXPECT_NE(Out.find("1 proven method-local, 0 escaping, 0 unknown"),
              std::string::npos)
        << Out;
    EXPECT_NE(Out.find("H.main"), std::string::npos);
    // Dynamic columns joined in: 200 allocations and a sample share.
    EXPECT_NE(Out.find("200"), std::string::npos) << Out;
    EXPECT_NE(Out.find("%)"), std::string::npos) << Out;
  }
  Vm.endThread(Th);
}

TEST(StaticReport, EmptyFactsRenderAHint) {
  JavaVm Vm;
  MergedProfile Prof;
  std::string Out =
      renderStaticReport({}, Prof, Vm.methods(), PerfEventKind::L1Miss);
  EXPECT_NE(Out.find("no instrumented allocation sites"), std::string::npos);
}

} // namespace
