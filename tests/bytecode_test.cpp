//===- bytecode_test.cpp - Unit tests for src/bytecode -----------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Disassembler.h"
#include "bytecode/MethodBuilder.h"
#include "bytecode/Verifier.h"
#include "jvm/JavaVm.h"
#include "support/VmError.h"

#include <gtest/gtest.h>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(bytecode_test, 50.0, 28.0,
    "src/bytecode/ClassFile.cpp",
    "src/bytecode/ClassFile.h",
    "src/bytecode/Disassembler.cpp",
    "src/bytecode/Disassembler.h",
    "src/bytecode/MethodBuilder.cpp",
    "src/bytecode/MethodBuilder.h",
    "src/bytecode/Opcode.cpp",
    "src/bytecode/Opcode.h",
    "src/bytecode/Verifier.cpp",
    "src/bytecode/Verifier.h");

TEST(Opcode, NamesAreDistinctive) {
  EXPECT_EQ(opcodeName(Opcode::New), "new");
  EXPECT_EQ(opcodeName(Opcode::NewArray), "newarray");
  EXPECT_EQ(opcodeName(Opcode::ANewArray), "anewarray");
  EXPECT_EQ(opcodeName(Opcode::MultiANewArray), "multianewarray");
  EXPECT_EQ(opcodeName(Opcode::IfICmpLt), "if_icmplt");
}

TEST(Opcode, BranchClassification) {
  EXPECT_TRUE(isBranch(Opcode::Goto));
  EXPECT_TRUE(isBranch(Opcode::IfICmpGe));
  EXPECT_TRUE(isBranch(Opcode::IfNull));
  EXPECT_FALSE(isBranch(Opcode::IAdd));
  EXPECT_FALSE(isBranch(Opcode::Invoke));
  EXPECT_FALSE(isBranch(Opcode::Return));
}

TEST(Opcode, AllocationClassification) {
  EXPECT_TRUE(isAllocation(Opcode::New));
  EXPECT_TRUE(isAllocation(Opcode::NewArray));
  EXPECT_TRUE(isAllocation(Opcode::ANewArray));
  EXPECT_TRUE(isAllocation(Opcode::MultiANewArray));
  EXPECT_FALSE(isAllocation(Opcode::ALoad));
  EXPECT_FALSE(isAllocation(Opcode::AllocHookPre));
}

TEST(MethodBuilder, EmitsInstructionsInOrder) {
  MethodBuilder B("C", "m", 0, 1);
  B.iconst(5).istore(0).iload(0).iret();
  BytecodeMethod M = B.build();
  ASSERT_EQ(M.Code.size(), 4u);
  EXPECT_EQ(M.Code[0].Op, Opcode::IConst);
  EXPECT_EQ(M.Code[0].A, 5);
  EXPECT_EQ(M.Code[3].Op, Opcode::IReturn);
}

TEST(MethodBuilder, ForwardLabelFixup) {
  MethodBuilder B("C", "m", 0, 0);
  Label L = B.newLabel();
  B.jmp(L);       // bci 0 -> 2
  B.iconst(1);    // bci 1 (skipped)
  B.bind(L);
  B.ret();        // bci 2
  BytecodeMethod M = B.build();
  EXPECT_EQ(M.Code[0].Op, Opcode::Goto);
  EXPECT_EQ(M.Code[0].A, 2);
}

TEST(MethodBuilder, BackwardLabel) {
  MethodBuilder B("C", "m", 0, 0);
  Label Top = B.newLabel();
  B.bind(Top);
  B.iconst(0);
  B.ifNe(Top);
  B.ret();
  BytecodeMethod M = B.build();
  EXPECT_EQ(M.Code[1].A, 0);
}

TEST(MethodBuilder, LineTableMapsBcis) {
  MethodBuilder B("C", "m", 0, 0);
  B.line(10).iconst(1);
  B.pop();
  B.line(12).iconst(2);
  B.pop().ret();
  BytecodeMethod M = B.build();
  ASSERT_EQ(M.LineTable.size(), 2u);
  EXPECT_EQ(M.LineTable[0].Bci, 0u);
  EXPECT_EQ(M.LineTable[0].Line, 10u);
  EXPECT_EQ(M.LineTable[1].Bci, 2u);
  EXPECT_EQ(M.LineTable[1].Line, 12u);
}

TEST(MethodBuilder, InvokeRecordsCalleeRef) {
  MethodBuilder B("C", "m", 0, 0);
  B.invoke("D.helper", 2);
  B.ret();
  BytecodeMethod M = B.build();
  ASSERT_EQ(M.CalleeRefs.size(), 1u);
  EXPECT_EQ(M.CalleeRefs[0], "D.helper");
  EXPECT_EQ(M.Code[0].A, 0); // Callee-table index before linking.
  EXPECT_EQ(M.Code[0].B, 2);
}

TEST(Verifier, AcceptsWellFormedMethod) {
  MethodBuilder B("C", "m", 1, 2);
  Label L = B.newLabel();
  B.iload(0).ifEq(L).iconst(1).istore(1).bind(L).ret();
  BytecodeMethod M = B.build();
  EXPECT_TRUE(verifyMethod(M).ok());
}

TEST(Verifier, RejectsEmptyCode) {
  BytecodeMethod M;
  M.ClassName = "C";
  M.MethodName = "m";
  VerifyResult R = verifyMethod(M);
  EXPECT_FALSE(R.ok());
}

TEST(Verifier, RejectsBranchOutOfRange) {
  BytecodeMethod M;
  M.ClassName = "C";
  M.MethodName = "m";
  M.Code.push_back(Instruction{Opcode::Goto, 99, 0});
  VerifyResult R = verifyMethod(M);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("branch target"), std::string::npos);
}

TEST(Verifier, RejectsLocalOutOfRange) {
  BytecodeMethod M;
  M.ClassName = "C";
  M.MethodName = "m";
  M.NumLocals = 1;
  M.Code.push_back(Instruction{Opcode::ILoad, 3, 0});
  M.Code.push_back(Instruction{Opcode::Return, 0, 0});
  EXPECT_FALSE(verifyMethod(M).ok());
}

TEST(Verifier, RejectsMissingTerminator) {
  BytecodeMethod M;
  M.ClassName = "C";
  M.MethodName = "m";
  M.Code.push_back(Instruction{Opcode::Nop, 0, 0});
  VerifyResult R = verifyMethod(M);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("return"), std::string::npos);
}

TEST(Verifier, RejectsUnsortedLineTable) {
  MethodBuilder B("C", "m", 0, 0);
  B.ret();
  BytecodeMethod M = B.build();
  M.LineTable = {{5, 1}, {3, 2}};
  EXPECT_FALSE(verifyMethod(M).ok());
}

TEST(Program, LoadLinksInvokesAndRegistersMethods) {
  JavaVm Vm;
  BytecodeProgram P;
  {
    MethodBuilder B("C", "callee", 0, 0);
    B.iconst(7).iret();
    ClassFile C;
    C.Name = "C";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }
  {
    MethodBuilder B("D", "caller", 0, 0);
    B.invoke("C.callee", 0).iret();
    ClassFile C;
    C.Name = "D";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }
  P.load(Vm);
  EXPECT_TRUE(P.isLoaded());
  EXPECT_EQ(P.numMethods(), 2u);
  size_t CalleeIdx = P.methodIndex("C.callee");
  const BytecodeMethod &Caller = P.method(P.methodIndex("D.caller"));
  EXPECT_EQ(Caller.Code[0].A, static_cast<int64_t>(CalleeIdx));
  // Methods are registered with the VM (symbolisation works).
  EXPECT_NE(Caller.RegistryId, kInvalidMethod);
  EXPECT_EQ(Vm.methods().qualifiedName(Caller.RegistryId), "D.caller");
}

TEST(Program, VerifyProgramAggregatesErrors) {
  JavaVm Vm;
  BytecodeProgram P;
  BytecodeMethod Bad;
  Bad.ClassName = "C";
  Bad.MethodName = "bad";
  ClassFile C;
  C.Name = "C";
  C.Methods.push_back(Bad);
  P.addClass(std::move(C));
  VerifyResult R = verifyProgram(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("C.bad"), std::string::npos);
}

TEST(Verifier, RejectsStackUnderflow) {
  // IAdd pops two, but only one value was ever pushed: a definite
  // underflow the interval dataflow must flag without a false positive
  // elsewhere.
  MethodBuilder B("C", "m", 0, 1);
  B.iconst(1);
  BytecodeMethod M = B.build();
  M.Code.push_back(Instruction{Opcode::IAdd, 0, 0});
  M.Code.push_back(Instruction{Opcode::Return, 0, 0});
  VerifyResult R = verifyMethod(M);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("stack underflow"), std::string::npos);
}

TEST(Verifier, RejectsArgCountExceedingLocals) {
  MethodBuilder B("C", "m", 0, 1);
  B.ret();
  BytecodeMethod M = B.build();
  M.NumArgs = 3; // Arguments land in locals [0,3) but only 1 slot exists.
  VerifyResult R = verifyMethod(M);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("argument count exceeds local slots"),
            std::string::npos);
}

TEST(Program, VerifyProgramRejectsInvokeArityMismatch) {
  BytecodeProgram P;
  {
    MethodBuilder B("C", "callee", 2, 2);
    B.iconst(7).iret();
    ClassFile C;
    C.Name = "C";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }
  {
    // Passes one argument to a two-argument callee.
    MethodBuilder B("D", "caller", 0, 1);
    B.iconst(1).invoke("C.callee", 1).iret();
    ClassFile C;
    C.Name = "D";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }
  VerifyResult R = verifyProgram(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("invoke passes 1"), std::string::npos);
  EXPECT_NE(R.Errors[0].find("C.callee"), std::string::npos);
}

TEST(Program, VerifyProgramRejectsUnresolvedCallee) {
  BytecodeProgram P;
  MethodBuilder B("C", "m", 0, 0);
  B.invoke("Ghost.method", 0).ret();
  ClassFile C;
  C.Name = "C";
  C.Methods.push_back(B.build());
  P.addClass(std::move(C));
  VerifyResult R = verifyProgram(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("Ghost.method"), std::string::npos);
}

TEST(Program, LoadThrowsTypedErrorOnMalformedProgram) {
  // load() runs class-load-time verification: a malformed program must
  // surface as VmError::InvalidBytecode (CLI exit code 5), never reach
  // the interpreter's asserts.
  JavaVm Vm;
  BytecodeProgram P;
  BytecodeMethod M;
  M.ClassName = "C";
  M.MethodName = "jump";
  M.Code.push_back(Instruction{Opcode::Goto, 99, 0}); // Out of range.
  ClassFile C;
  C.Name = "C";
  C.Methods.push_back(M);
  P.addClass(std::move(C));
  try {
    P.load(Vm);
    FAIL() << "load() accepted a malformed program";
  } catch (const VmError &E) {
    EXPECT_EQ(E.Kind, VmErrorKind::InvalidBytecode);
    std::string W = E.what();
    EXPECT_NE(W.find("program verification failed"), std::string::npos);
    EXPECT_NE(W.find("branch target"), std::string::npos);
  }
  EXPECT_FALSE(P.isLoaded());
}

TEST(Disassembler, ListsInstructionsAndLines) {
  MethodBuilder B("FFT", "transform", 1, 2);
  B.line(165).iload(0);
  B.line(171).newArray(3);
  B.astore(1).aload(1).aret();
  BytecodeMethod M = B.build();
  std::string S = disassemble(M);
  EXPECT_NE(S.find("FFT.transform"), std::string::npos);
  EXPECT_NE(S.find("// line 165"), std::string::npos);
  EXPECT_NE(S.find("// line 171"), std::string::npos);
  EXPECT_NE(S.find("newarray"), std::string::npos);
  EXPECT_NE(S.find("areturn"), std::string::npos);
}

TEST(Disassembler, ShowsCalleeNamesBeforeLinking) {
  MethodBuilder B("C", "m", 0, 0);
  B.invoke("X.y", 1).ret();
  BytecodeMethod M = B.build();
  std::string S = disassemble(M);
  EXPECT_NE(S.find("invoke X.y"), std::string::npos);
}

} // namespace
