//===- cli_smoke_test.cpp - End-to-end smoke test for the djxperf CLI ----===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the built `djxperf` binary (path passed by ctest as the first
/// program argument) on a tiny workload and asserts that it exits 0 and
/// emits a non-empty object-centric report.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>

#include "harness/TestModule.h"

namespace {

DJX_TEST_MODULE(cli_smoke_test, 60.0, 32.0,
    "tools/djxperf.cpp");

std::string DjxperfPath; // Set from argv in main() below.

// Runs `Cmd`, capturing stdout; returns {exit status, captured output}.
std::pair<int, std::string> run(const std::string &Cmd) {
  std::string Out;
  // Fold stderr in so diagnostic output shows up in test failures.
  FILE *Pipe = popen((Cmd + " 2>&1").c_str(), "r");
  if (!Pipe)
    return {-1, Out};
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Out.append(Buf.data(), N);
  int Status = pclose(Pipe);
  int Exit = (Status >= 0 && WIFEXITED(Status)) ? WEXITSTATUS(Status) : -1;
  return {Exit, Out};
}

TEST(CliSmoke, ListWorkloads) {
  auto [Exit, Out] = run("'" + DjxperfPath + "' --list");
  EXPECT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("figure1"), std::string::npos) << Out;
}

TEST(CliSmoke, RunsTinyWorkloadAndEmitsObjectReport) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' --period 64 --size-threshold 0 figure1");
  ASSERT_EQ(Exit, 0) << Out;
  // Stderr (the stats line) is folded into Out, so assert on markers only
  // the rendered report itself produces: the header and at least one
  // ranked object group with its allocation context.
  EXPECT_NE(Out.find("=== DJXPerf object-centric profile ==="),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("#1 object"), std::string::npos) << Out;
  EXPECT_NE(Out.find("alloc ctx:"), std::string::npos) << Out;
}

TEST(CliSmoke, UnknownWorkloadFailsCleanly) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' definitely-not-a-workload");
  EXPECT_EQ(Exit, 2) << Out; // Usage errors exit 2, by contract.
  EXPECT_NE(Out.find("unknown workload"), std::string::npos) << Out;
}

TEST(CliSmoke, JobsValidationRejectsZero) {
  auto [Exit, Out] = run("'" + DjxperfPath + "' --jobs 0 parallel2");
  EXPECT_EQ(Exit, 2) << Out;
  EXPECT_NE(Out.find("--jobs must be positive"), std::string::npos) << Out;
}

TEST(CliSmoke, MissingWorkloadPrintsUsageAndExitCodes) {
  auto [Exit, Out] = run("'" + DjxperfPath + "'");
  EXPECT_EQ(Exit, 2) << Out;
  EXPECT_NE(Out.find("usage:"), std::string::npos) << Out;
  // The exit-code contract is part of the help text.
  EXPECT_NE(Out.find("exit codes:"), std::string::npos) << Out;
}

// The graceful-degradation contract end to end: an undersized heap makes
// the workload run out of memory, and the CLI must exit with the
// documented OutOfMemory code (3) after salvaging a partial profile and
// marking the report DEGRADED.
TEST(CliSmoke, OutOfMemoryExitsWithDocumentedCodeAndDegradedReport) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' --heap-bytes 65536 figure1");
  ASSERT_EQ(Exit, 3) << Out;
  EXPECT_NE(Out.find("DEGRADED"), std::string::npos) << Out;
  EXPECT_NE(Out.find("OutOfMemory"), std::string::npos) << Out;
  // The salvaged (partial) report still renders after the banner.
  EXPECT_NE(Out.find("=== DJXPerf object-centric profile ==="),
            std::string::npos)
      << Out;
}

// Injected faults replay from a seed: the same --fault-seed must reach
// the same outcome, and the seed is always printed for reproduction.
TEST(CliSmoke, InjectedAllocFaultIsSeedReproducible) {
  const std::string Cmd = "'" + DjxperfPath +
                          "' --fault-rate alloc=1.0 --fault-seed 42 figure1";
  auto [Exit1, Out1] = run(Cmd);
  auto [Exit2, Out2] = run(Cmd);
  EXPECT_EQ(Exit1, 3) << Out1;
  EXPECT_EQ(Exit2, 3) << Out2;
  EXPECT_NE(Out1.find("DJX_FAULT_SEED=0x2a"), std::string::npos) << Out1;
  EXPECT_NE(Out1.find("DEGRADED"), std::string::npos) << Out1;
}

TEST(CliSmoke, BadFaultRateIsUsageError) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' --fault-rate bogus=0.5 figure1");
  EXPECT_EQ(Exit, 2) << Out;
  EXPECT_NE(Out.find("bad --fault-rate"), std::string::npos) << Out;
}

TEST(CliSmoke, ParallelWorkloadRunsUnderJobs) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' --jobs 2 parallel2");
  ASSERT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("=== DJXPerf object-centric profile ==="),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("#1 object"), std::string::npos) << Out;
}

// The tentpole determinism guarantee, end to end through the real binary:
// stdout (the report) and the stderr stats line are byte-identical for
// any --jobs value. Streams are captured separately so interleaving
// cannot produce false mismatches.
TEST(CliSmoke, ParallelReportIsByteIdenticalAcrossJobs) {
  // Subshell so the inner 2>/dev/null survives run()'s trailing 2>&1:
  // only stdout (the report) is compared.
  auto RunSplit = [&](const std::string &Jobs) {
    return run("( '" + DjxperfPath + "' --jobs " + Jobs +
               " parallel4 2>/dev/null )");
  };
  auto [Exit1, Out1] = RunSplit("1");
  auto [Exit2, Out2] = RunSplit("2");
  auto [Exit4, Out4] = RunSplit("4");
  ASSERT_EQ(Exit1, 0) << Out1;
  ASSERT_EQ(Exit2, 0) << Out2;
  ASSERT_EQ(Exit4, 0) << Out4;
  EXPECT_EQ(Out1, Out2);
  EXPECT_EQ(Out1, Out4);
  EXPECT_NE(Out1.find("#1 object"), std::string::npos) << Out1;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: cli_smoke_test <path-to-djxperf-binary>\n");
    return 2;
  }
  DjxperfPath = argv[1];
  return RUN_ALL_TESTS();
}
