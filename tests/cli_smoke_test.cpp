//===- cli_smoke_test.cpp - End-to-end smoke test for the djxperf CLI ----===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the built `djxperf` binary (path passed by ctest as the first
/// program argument) on a tiny workload and asserts that it exits 0 and
/// emits a non-empty object-centric report.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

#include "harness/TestModule.h"

namespace {

DJX_TEST_MODULE(cli_smoke_test, 60.0, 32.0,
    "tools/djxperf.cpp");

std::string DjxperfPath; // Set from argv in main() below.

// Runs `Cmd`, capturing stdout; returns {exit status, captured output}.
std::pair<int, std::string> run(const std::string &Cmd) {
  std::string Out;
  // Fold stderr in so diagnostic output shows up in test failures.
  FILE *Pipe = popen((Cmd + " 2>&1").c_str(), "r");
  if (!Pipe)
    return {-1, Out};
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Out.append(Buf.data(), N);
  int Status = pclose(Pipe);
  int Exit = (Status >= 0 && WIFEXITED(Status)) ? WEXITSTATUS(Status) : -1;
  return {Exit, Out};
}

TEST(CliSmoke, ListWorkloads) {
  auto [Exit, Out] = run("'" + DjxperfPath + "' --list");
  EXPECT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("figure1"), std::string::npos) << Out;
}

TEST(CliSmoke, RunsTinyWorkloadAndEmitsObjectReport) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' --period 64 --size-threshold 0 figure1");
  ASSERT_EQ(Exit, 0) << Out;
  // Stderr (the stats line) is folded into Out, so assert on markers only
  // the rendered report itself produces: the header and at least one
  // ranked object group with its allocation context.
  EXPECT_NE(Out.find("=== DJXPerf object-centric profile ==="),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("#1 object"), std::string::npos) << Out;
  EXPECT_NE(Out.find("alloc ctx:"), std::string::npos) << Out;
}

TEST(CliSmoke, UnknownWorkloadFailsCleanly) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' definitely-not-a-workload");
  EXPECT_EQ(Exit, 2) << Out; // Usage errors exit 2, by contract.
  EXPECT_NE(Out.find("unknown workload"), std::string::npos) << Out;
}

TEST(CliSmoke, JobsValidationRejectsZero) {
  auto [Exit, Out] = run("'" + DjxperfPath + "' --jobs 0 parallel2");
  EXPECT_EQ(Exit, 2) << Out;
  EXPECT_NE(Out.find("--jobs must be positive"), std::string::npos) << Out;
}

TEST(CliSmoke, MissingWorkloadPrintsUsageAndExitCodes) {
  auto [Exit, Out] = run("'" + DjxperfPath + "'");
  EXPECT_EQ(Exit, 2) << Out;
  EXPECT_NE(Out.find("usage:"), std::string::npos) << Out;
  // The exit-code contract is part of the help text.
  EXPECT_NE(Out.find("exit codes:"), std::string::npos) << Out;
}

// The graceful-degradation contract end to end: an undersized heap makes
// the workload run out of memory, and the CLI must exit with the
// documented OutOfMemory code (3) after salvaging a partial profile and
// marking the report DEGRADED.
TEST(CliSmoke, OutOfMemoryExitsWithDocumentedCodeAndDegradedReport) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' --heap-bytes 65536 figure1");
  ASSERT_EQ(Exit, 3) << Out;
  EXPECT_NE(Out.find("DEGRADED"), std::string::npos) << Out;
  EXPECT_NE(Out.find("OutOfMemory"), std::string::npos) << Out;
  // The salvaged (partial) report still renders after the banner.
  EXPECT_NE(Out.find("=== DJXPerf object-centric profile ==="),
            std::string::npos)
      << Out;
}

// Injected faults replay from a seed: the same --fault-seed must reach
// the same outcome, and the seed is always printed for reproduction.
TEST(CliSmoke, InjectedAllocFaultIsSeedReproducible) {
  const std::string Cmd = "'" + DjxperfPath +
                          "' --fault-rate alloc=1.0 --fault-seed 42 figure1";
  auto [Exit1, Out1] = run(Cmd);
  auto [Exit2, Out2] = run(Cmd);
  EXPECT_EQ(Exit1, 3) << Out1;
  EXPECT_EQ(Exit2, 3) << Out2;
  EXPECT_NE(Out1.find("DJX_FAULT_SEED=0x2a"), std::string::npos) << Out1;
  EXPECT_NE(Out1.find("DEGRADED"), std::string::npos) << Out1;
}

TEST(CliSmoke, BadFaultRateIsUsageError) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' --fault-rate bogus=0.5 figure1");
  EXPECT_EQ(Exit, 2) << Out;
  EXPECT_NE(Out.find("bad --fault-rate"), std::string::npos) << Out;
}

TEST(CliSmoke, ParallelWorkloadRunsUnderJobs) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' --jobs 2 parallel2");
  ASSERT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("=== DJXPerf object-centric profile ==="),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("#1 object"), std::string::npos) << Out;
}

// The tentpole determinism guarantee, end to end through the real binary:
// stdout (the report) and the stderr stats line are byte-identical for
// any --jobs value. Streams are captured separately so interleaving
// cannot produce false mismatches.
TEST(CliSmoke, ParallelReportIsByteIdenticalAcrossJobs) {
  // Subshell so the inner 2>/dev/null survives run()'s trailing 2>&1:
  // only stdout (the report) is compared.
  auto RunSplit = [&](const std::string &Jobs) {
    return run("( '" + DjxperfPath + "' --jobs " + Jobs +
               " parallel4 2>/dev/null )");
  };
  auto [Exit1, Out1] = RunSplit("1");
  auto [Exit2, Out2] = RunSplit("2");
  auto [Exit4, Out4] = RunSplit("4");
  ASSERT_EQ(Exit1, 0) << Out1;
  ASSERT_EQ(Exit2, 0) << Out2;
  ASSERT_EQ(Exit4, 0) << Out4;
  EXPECT_EQ(Out1, Out2);
  EXPECT_EQ(Out1, Out4);
  EXPECT_NE(Out1.find("#1 object"), std::string::npos) << Out1;
}

// --- Crash-durable journaling (--journal / recover / merge) ----------------

std::string tmpFile(const std::string &Name) {
  return testing::TempDir() + "djx_cli_" + Name;
}

std::string slurpBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

void spitBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

// Stdout-only capture (subshell keeps the inner 2>/dev/null effective).
std::pair<int, std::string> runStdout(const std::string &Args) {
  return run("( '" + DjxperfPath + "' " + Args + " 2>/dev/null )");
}

// A journaled run's stdout is byte-identical to a plain run's, and
// `recover` of the complete journal reproduces those bytes again —
// journaling is an observer, and a clean Close means nothing was lost.
TEST(CliJournal, JournaledRunAndRecoverMatchPlainRunExactly) {
  std::string J = tmpFile("clean.djxj");
  auto [PlainExit, Plain] = runStdout("--jobs 2 parallel2");
  auto [JrExit, Journaled] =
      runStdout("--jobs 2 --journal '" + J + "' parallel2");
  ASSERT_EQ(PlainExit, 0) << Plain;
  ASSERT_EQ(JrExit, 0) << Journaled;
  EXPECT_EQ(Plain, Journaled);
  auto [RecExit, Recovered] = runStdout("recover '" + J + "'");
  ASSERT_EQ(RecExit, 0) << Recovered;
  EXPECT_EQ(Plain, Recovered);
  std::remove(J.c_str());
}

// The journal file itself is --jobs-invariant: flushes happen at logical
// round barriers, never at host-time points.
TEST(CliJournal, JournalFileBytesAreJobsInvariant) {
  std::string J1 = tmpFile("jobs1.djxj");
  std::string J4 = tmpFile("jobs4.djxj");
  auto [E1, O1] = runStdout("--jobs 1 --journal '" + J1 + "' parallel2");
  auto [E4, O4] = runStdout("--jobs 4 --journal '" + J4 + "' parallel2");
  ASSERT_EQ(E1, 0) << O1;
  ASSERT_EQ(E4, 0) << O4;
  std::string B1 = slurpBytes(J1);
  EXPECT_FALSE(B1.empty());
  EXPECT_EQ(B1, slurpBytes(J4));
  std::remove(J1.c_str());
  std::remove(J4.c_str());
}

// Torn journals (the SIGKILL shape) recover with exit 0, a DEGRADED
// banner, and truthful kept/dropped accounting.
TEST(CliJournal, RecoverOfTruncatedJournalIsDegradedButExitsZero) {
  std::string J = tmpFile("torn.djxj");
  auto [RunExit, RunOut] =
      runStdout("--jobs 2 --journal '" + J + "' parallel2");
  ASSERT_EQ(RunExit, 0) << RunOut;
  std::string Full = slurpBytes(J);
  ASSERT_GT(Full.size(), 4000u);
  spitBytes(J, Full.substr(0, Full.size() / 2));
  auto [Exit, Out] = run("'" + DjxperfPath + "' recover '" + J + "'");
  ASSERT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("DEGRADED"), std::string::npos) << Out;
  EXPECT_NE(Out.find("last durable epoch"), std::string::npos) << Out;
  EXPECT_NE(Out.find("kept"), std::string::npos) << Out;
  EXPECT_NE(Out.find("=== DJXPerf object-centric profile ==="),
            std::string::npos)
      << Out;
  std::remove(J.c_str());
}

// A file that is not a journal at all exits with the documented
// JournalCorrupt code (7) — distinct from a salvageable torn journal.
TEST(CliJournal, RecoverOfGarbageExitsJournalCorruptCode) {
  std::string J = tmpFile("garbage.djxj");
  spitBytes(J, "this is not a journal\n");
  auto [Exit, Out] = run("'" + DjxperfPath + "' recover '" + J + "'");
  EXPECT_EQ(Exit, 7) << Out;
  EXPECT_NE(Out.find("FAILED"), std::string::npos) << Out;
  std::remove(J.c_str());
}

// merge folds N journals into one aggregate report with per-file
// accounting; unusable inputs are skipped, not fatal.
TEST(CliJournal, MergeAggregatesJournalsAndSkipsGarbage) {
  std::string J1 = tmpFile("m1.djxj");
  std::string J2 = tmpFile("m2.djxj");
  std::string Bad = tmpFile("mbad.djxj");
  runStdout("--jobs 2 --journal '" + J1 + "' parallel2");
  runStdout("--jobs 2 --journal '" + J2 + "' parallel2");
  spitBytes(Bad, "junk");
  auto [Exit, Out] = run("'" + DjxperfPath + "' merge '" + J1 + "' '" +
                         J2 + "' '" + Bad + "'");
  ASSERT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("skipped"), std::string::npos) << Out;
  // Two 2-thread journals fold into one 4-thread aggregate.
  EXPECT_NE(Out.find("4 thread(s)"), std::string::npos) << Out;
  auto [BadExit, BadOut] =
      run("'" + DjxperfPath + "' merge '" + Bad + "'");
  EXPECT_EQ(BadExit, 7) << BadOut;
  std::remove(J1.c_str());
  std::remove(J2.c_str());
  std::remove(Bad.c_str());
}

// Journal I/O failure degrades journaling to off with a warning; the
// run itself still succeeds with its normal report.
TEST(CliJournal, WriteErrorDegradesJournalNotTheRun) {
  std::string J = tmpFile("werror.djxj");
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' --jobs 2 --journal '" + J +
          "' --fault-rate journal-error=1.0 --fault-seed 7 parallel2");
  ASSERT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("degraded to off"), std::string::npos) << Out;
  EXPECT_NE(Out.find("=== DJXPerf object-centric profile ==="),
            std::string::npos)
      << Out;
  std::remove(J.c_str());
}

// SIGTERM mid-run: the executor ends the session at the next round
// barrier, the journal is flushed and closed, and the exit code is the
// shell convention 130. Tolerates the race where the run finishes
// before the signal lands (exit 0); either way the journal recovers.
TEST(CliJournal, SigtermFlushesAndClosesTheJournal) {
  std::string J = tmpFile("sigterm.djxj");
  auto [Exit, Out] = run("( '" + DjxperfPath + "' --jobs 2 --journal '" +
                         J + "' parallel8 >/dev/null 2>&1 & P=$!; "
                         "sleep 0.3; kill -TERM $P 2>/dev/null; wait $P; "
                         "echo RC=$? )");
  ASSERT_EQ(Exit, 0) << Out;
  bool Interrupted = Out.find("RC=130") != std::string::npos;
  bool Finished = Out.find("RC=0") != std::string::npos;
  EXPECT_TRUE(Interrupted || Finished) << Out;
  auto [RecExit, RecOut] = run("'" + DjxperfPath + "' recover '" + J + "'");
  EXPECT_EQ(RecExit, 0) << RecOut;
  if (Interrupted)
    EXPECT_NE(RecOut.find("Interrupted"), std::string::npos) << RecOut;
  std::remove(J.c_str());
}

// Atomic report writing: SIGKILL at arbitrary points can abandon the
// run, but the --html target is either absent or a complete document —
// never a torn prefix (tmp + fsync + rename).
TEST(CliJournal, KillDuringRunNeverLeavesTornHtmlReport) {
  for (const char *Delay : {"0.05", "0.15", "0.3", "0.6"}) {
    std::string H = tmpFile(std::string("kill_") + Delay + ".html");
    std::remove(H.c_str());
    run("( '" + DjxperfPath + "' --jobs 2 --html '" + H +
        "' parallel2 >/dev/null 2>&1 & P=$!; sleep " + Delay +
        "; kill -KILL $P 2>/dev/null; wait $P 2>/dev/null; true )");
    std::string Bytes = slurpBytes(H);
    if (!Bytes.empty())
      EXPECT_NE(Bytes.find("</html>"), std::string::npos)
          << H << ": torn report (" << Bytes.size() << " bytes)";
    std::remove(H.c_str());
    std::remove((H + ".tmp").c_str());
  }
}

// --max-rounds ends an mt run cleanly after N barriers: the documented
// reference oracle for truncated-journal recovery.
TEST(CliJournal, MaxRoundsStopsCleanly) {
  auto [Exit, Out] = runStdout("--jobs 2 --max-rounds 5 parallel2");
  ASSERT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("=== DJXPerf object-centric profile ==="),
            std::string::npos)
      << Out;
}

// The help text documents the verbs and the extended exit-code table.
TEST(CliJournal, UsageDocumentsJournalVerbsAndExitCodes) {
  auto [Exit, Out] = run("'" + DjxperfPath + "' --help");
  ASSERT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("recover <journal>"), std::string::npos) << Out;
  EXPECT_NE(Out.find("merge <journal>"), std::string::npos) << Out;
  EXPECT_NE(Out.find("--journal"), std::string::npos) << Out;
  EXPECT_NE(Out.find("7 unusable journal"), std::string::npos) << Out;
  EXPECT_NE(Out.find("130 interrupted"), std::string::npos) << Out;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: cli_smoke_test <path-to-djxperf-binary>\n");
    return 2;
  }
  DjxperfPath = argv[1];
  return RUN_ALL_TESTS();
}
