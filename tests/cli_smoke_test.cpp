//===- cli_smoke_test.cpp - End-to-end smoke test for the djxperf CLI ----===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the built `djxperf` binary (path passed by ctest as the first
/// program argument) on a tiny workload and asserts that it exits 0 and
/// emits a non-empty object-centric report.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/wait.h>

namespace {

std::string DjxperfPath; // Set from argv in main() below.

// Runs `Cmd`, capturing stdout; returns {exit status, captured output}.
std::pair<int, std::string> run(const std::string &Cmd) {
  std::string Out;
  // Fold stderr in so diagnostic output shows up in test failures.
  FILE *Pipe = popen((Cmd + " 2>&1").c_str(), "r");
  if (!Pipe)
    return {-1, Out};
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Out.append(Buf.data(), N);
  int Status = pclose(Pipe);
  int Exit = (Status >= 0 && WIFEXITED(Status)) ? WEXITSTATUS(Status) : -1;
  return {Exit, Out};
}

TEST(CliSmoke, ListWorkloads) {
  auto [Exit, Out] = run("'" + DjxperfPath + "' --list");
  EXPECT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("figure1"), std::string::npos) << Out;
}

TEST(CliSmoke, RunsTinyWorkloadAndEmitsObjectReport) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' --period 64 --size-threshold 0 figure1");
  ASSERT_EQ(Exit, 0) << Out;
  // Stderr (the stats line) is folded into Out, so assert on markers only
  // the rendered report itself produces: the header and at least one
  // ranked object group with its allocation context.
  EXPECT_NE(Out.find("=== DJXPerf object-centric profile ==="),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("#1 object"), std::string::npos) << Out;
  EXPECT_NE(Out.find("alloc ctx:"), std::string::npos) << Out;
}

TEST(CliSmoke, UnknownWorkloadFailsCleanly) {
  auto [Exit, Out] =
      run("'" + DjxperfPath + "' definitely-not-a-workload");
  EXPECT_NE(Exit, 0);
  EXPECT_NE(Out.find("unknown workload"), std::string::npos) << Out;
}

} // namespace

int main(int argc, char **argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: cli_smoke_test <path-to-djxperf-binary>\n");
    return 2;
  }
  DjxperfPath = argv[1];
  return RUN_ALL_TESTS();
}
