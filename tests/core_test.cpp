//===- core_test.cpp - Unit tests for src/core ---------------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/Cct.h"
#include "core/DjxPerf.h"
#include "core/LiveObjectIndex.h"
#include "core/Report.h"
#include "core/ThreadProfile.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(core_test, 72.0, 42.0,
    "src/core/Analyzer.cpp",
    "src/core/Analyzer.h",
    "src/core/Cct.cpp",
    "src/core/Cct.h",
    "src/core/DjxPerf.cpp",
    "src/core/DjxPerf.h",
    "src/core/LiveObjectIndex.cpp",
    "src/core/LiveObjectIndex.h",
    "src/core/Metrics.h",
    "src/core/Report.cpp",
    "src/core/Report.h",
    "src/core/ThreadProfile.cpp",
    "src/core/ThreadProfile.h");

// --- Cct ------------------------------------------------------------------------

TEST(Cct, RootExists) {
  Cct T;
  EXPECT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.path(kCctRoot).empty());
}

TEST(Cct, ChildInterning) {
  Cct T;
  CctNodeId A = T.child(kCctRoot, 1, 10);
  CctNodeId B = T.child(kCctRoot, 1, 10);
  CctNodeId C = T.child(kCctRoot, 1, 11);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(T.size(), 3u);
}

TEST(Cct, PrefixSharing) {
  Cct T;
  std::vector<StackFrame> P1 = {{1, 0}, {2, 5}, {3, 7}};
  std::vector<StackFrame> P2 = {{1, 0}, {2, 5}, {4, 9}};
  T.insertPath(P1);
  size_t AfterFirst = T.size(); // Root + 3.
  T.insertPath(P2);
  EXPECT_EQ(AfterFirst, 4u);
  EXPECT_EQ(T.size(), 5u) << "shared prefix must not duplicate";
}

TEST(Cct, PathRoundTrip) {
  Cct T;
  std::vector<StackFrame> P = {{10, 1}, {20, 2}, {30, 3}};
  CctNodeId Leaf = T.insertPath(P);
  std::vector<StackFrame> Back = T.path(Leaf);
  ASSERT_EQ(Back.size(), 3u);
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_EQ(Back[I].Method, P[I].Method);
    EXPECT_EQ(Back[I].Bci, P[I].Bci);
  }
}

TEST(Cct, EmptyPathIsRoot) {
  Cct T;
  EXPECT_EQ(T.insertPath({}), kCctRoot);
}

TEST(Cct, ParentLinks) {
  Cct T;
  CctNodeId A = T.child(kCctRoot, 1, 0);
  CctNodeId B = T.child(A, 2, 0);
  EXPECT_EQ(T.parentOf(B), A);
  EXPECT_EQ(T.parentOf(A), kCctRoot);
  EXPECT_EQ(T.methodOf(B), 2u);
}

TEST(Cct, MemoryFootprintGrows) {
  Cct T;
  size_t Empty = T.memoryFootprint();
  for (uint32_t I = 0; I < 100; ++I)
    T.child(kCctRoot, I, 0);
  EXPECT_GT(T.memoryFootprint(), Empty);
}

// --- LiveObjectIndex ---------------------------------------------------------------

LiveObject obj(uint64_t Thread, CctNodeId Node, uint64_t Size = 64) {
  LiveObject O;
  O.AllocThread = Thread;
  O.AllocNode = Node;
  O.Size = Size;
  return O;
}

TEST(LiveObjectIndex, InsertLookupErase) {
  LiveObjectIndex Idx;
  Idx.insert(0x1000, 64, obj(1, 5));
  auto Hit = Idx.lookup(0x1020);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->AllocThread, 1u);
  EXPECT_EQ(Hit->AllocNode, 5u);
  EXPECT_FALSE(Idx.lookup(0x2000).has_value());
  EXPECT_TRUE(Idx.erase(0x1000));
  EXPECT_FALSE(Idx.lookup(0x1020).has_value());
  EXPECT_EQ(Idx.inserts(), 1u);
  EXPECT_EQ(Idx.lookups(), 3u);
  EXPECT_EQ(Idx.lookupMisses(), 2u);
}

TEST(LiveObjectIndex, RelocationBatchMovesObjects) {
  LiveObjectIndex Idx;
  Idx.insert(0x1000, 64, obj(1, 5));
  Idx.recordMove(0x1000, 0x3000, 64);
  EXPECT_EQ(Idx.pendingRelocations(), 1u);
  // Before the batch applies, the tree still maps the old range.
  EXPECT_TRUE(Idx.lookup(0x1000).has_value());
  unsigned Applied = Idx.applyRelocations(LiveObject());
  EXPECT_EQ(Applied, 1u);
  EXPECT_EQ(Idx.pendingRelocations(), 0u);
  EXPECT_FALSE(Idx.lookup(0x1000).has_value());
  auto Hit = Idx.lookup(0x3010);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->AllocNode, 5u);
}

TEST(LiveObjectIndex, SlidingRelocationsOverlapSafely) {
  // Classic compaction: B slides into A's old range while A also moves.
  // Order of map iteration must not matter.
  LiveObjectIndex Idx;
  Idx.insert(100, 64, obj(1, 1));
  Idx.insert(200, 64, obj(1, 2));
  Idx.insert(300, 64, obj(1, 3));
  Idx.recordMove(100, 64, 64);
  Idx.recordMove(200, 128, 64); // New range overlaps A's old [100,164).
  Idx.recordMove(300, 192, 64); // Overlaps B's old [200,264)? No: [192,256).
  EXPECT_EQ(Idx.applyRelocations(LiveObject()), 3u);
  EXPECT_EQ(Idx.lookup(64)->AllocNode, 1u);
  EXPECT_EQ(Idx.lookup(128)->AllocNode, 2u);
  EXPECT_EQ(Idx.lookup(192)->AllocNode, 3u);
  EXPECT_EQ(Idx.liveCount(), 3u);
}

TEST(LiveObjectIndex, UnknownMoveInsertsFreshInterval) {
  // Attach mode missed the allocation; the move must still be tracked.
  LiveObjectIndex Idx;
  Idx.recordMove(0x5000, 0x1000, 128);
  LiveObject Unknown; // Root identity.
  EXPECT_EQ(Idx.applyRelocations(Unknown), 1u);
  auto Hit = Idx.lookup(0x1040);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->AllocThread, 0u);
  EXPECT_EQ(Hit->AllocNode, kCctRoot);
  EXPECT_EQ(Hit->Size, 128u);
}

TEST(LiveObjectIndex, DiscardRelocations) {
  LiveObjectIndex Idx;
  Idx.insert(0x1000, 64, obj(1, 5));
  Idx.recordMove(0x1000, 0x3000, 64);
  Idx.discardRelocations();
  EXPECT_EQ(Idx.applyRelocations(LiveObject()), 0u);
  EXPECT_TRUE(Idx.lookup(0x1000).has_value()) << "stale mapping remains";
}

TEST(LiveObjectIndex, LockAcquisitionsCounted) {
  LiveObjectIndex Idx;
  Idx.insert(0, 8, obj(1, 1));
  Idx.lookup(0);
  Idx.erase(0);
  EXPECT_GE(Idx.lockAcquisitions(), 3u);
}

// --- ThreadProfile -----------------------------------------------------------------

TEST(ThreadProfile, RecordsAllocationsByContext) {
  ThreadProfile P(1, "main");
  CctNodeId N = P.cct().child(kCctRoot, 3, 7);
  P.recordAllocation(N, "int[]", 400);
  P.recordAllocation(N, "int[]", 400);
  const auto &G = P.groups().at(AllocKey{1, N});
  EXPECT_EQ(G.AllocCount, 2u);
  EXPECT_EQ(G.AllocBytes, 800u);
  EXPECT_EQ(G.TypeName, "int[]");
}

TEST(ThreadProfile, RecordsObjectSamplesWithBreakdown) {
  ThreadProfile P(1, "main");
  CctNodeId Access1 = P.cct().child(kCctRoot, 9, 1);
  CctNodeId Access2 = P.cct().child(kCctRoot, 9, 2);
  AllocKey Key{2, 17}; // Allocated by another thread.
  P.recordObjectSample(Key, "Foo", PerfEventKind::L1Miss, Access1, false);
  P.recordObjectSample(Key, "Foo", PerfEventKind::L1Miss, Access1, true);
  P.recordObjectSample(Key, "Foo", PerfEventKind::L1Miss, Access2, false);
  const auto &G = P.groups().at(Key);
  EXPECT_EQ(G.Metrics.get(PerfEventKind::L1Miss), 3u);
  EXPECT_EQ(G.RemoteSamples, 1u);
  EXPECT_EQ(G.AddressSamples, 3u);
  EXPECT_EQ(G.AccessBreakdown.at(Access1).get(PerfEventKind::L1Miss), 2u);
  EXPECT_EQ(G.AccessBreakdown.at(Access2).get(PerfEventKind::L1Miss), 1u);
  EXPECT_EQ(P.totals().get(PerfEventKind::L1Miss), 3u);
}

TEST(ThreadProfile, UnattributedCountsInTotals) {
  ThreadProfile P(1, "main");
  P.recordUnattributed(PerfEventKind::L1Miss);
  EXPECT_EQ(P.unattributedSamples(), 1u);
  EXPECT_EQ(P.totals().get(PerfEventKind::L1Miss), 1u);
}

TEST(ThreadProfile, SerializationRoundTrip) {
  ThreadProfile P(7, "worker3");
  CctNodeId A = P.cct().insertPath({{1, 2}, {3, 4}});
  CctNodeId B = P.cct().insertPath({{1, 2}, {5, 6}});
  P.recordAllocation(A, "double[]", 8192);
  P.recordObjectSample(AllocKey{7, A}, "double[]", PerfEventKind::L1Miss, B,
                       true);
  P.recordCodeSample(B, PerfEventKind::L1Miss);
  P.recordUnattributed(PerfEventKind::TlbMiss);

  std::stringstream SS;
  P.writeTo(SS);
  ThreadProfile Q;
  ASSERT_TRUE(Q.readFrom(SS));
  EXPECT_EQ(Q.threadId(), 7u);
  EXPECT_EQ(Q.threadName(), "worker3");
  EXPECT_EQ(Q.cct().size(), P.cct().size());
  const auto &G = Q.groups().at(AllocKey{7, A});
  EXPECT_EQ(G.TypeName, "double[]");
  EXPECT_EQ(G.AllocCount, 1u);
  EXPECT_EQ(G.AllocBytes, 8192u);
  EXPECT_EQ(G.RemoteSamples, 1u);
  EXPECT_EQ(G.Metrics.get(PerfEventKind::L1Miss), 1u);
  EXPECT_EQ(G.AccessBreakdown.at(B).get(PerfEventKind::L1Miss), 1u);
  EXPECT_EQ(Q.codeCentric().at(B).get(PerfEventKind::L1Miss), 1u);
  EXPECT_EQ(Q.unattributedSamples(), 1u);
  // Round-trip again: identical bytes.
  std::stringstream S2, S3;
  P.writeTo(S2);
  Q.writeTo(S3);
  EXPECT_EQ(S2.str(), S3.str());
}

TEST(ThreadProfile, ReadRejectsGarbage) {
  std::stringstream SS("not a profile\n");
  ThreadProfile P;
  EXPECT_FALSE(P.readFrom(SS));
  std::stringstream Truncated("djxprofile v1\nthread 1 t\n");
  EXPECT_FALSE(P.readFrom(Truncated)) << "missing end marker";
}

// --- Analyzer -----------------------------------------------------------------------

TEST(Analyzer, MergesEqualPathsAcrossThreads) {
  // Two threads allocate at the *same* call path; the analyzer must
  // coalesce them into one group (§5.2).
  ThreadProfile P1(1, "t1"), P2(2, "t2");
  std::vector<StackFrame> Path = {{1, 0}, {2, 3}};
  CctNodeId N1 = P1.cct().insertPath(Path);
  CctNodeId N2 = P2.cct().insertPath(Path);
  P1.recordAllocation(N1, "Foo", 100);
  P2.recordAllocation(N2, "Foo", 100);
  P1.recordObjectSample(AllocKey{1, N1}, "Foo", PerfEventKind::L1Miss, N1,
                        false);
  P2.recordObjectSample(AllocKey{2, N2}, "Foo", PerfEventKind::L1Miss, N2,
                        false);

  MergedProfile M = mergeProfiles({&P1, &P2});
  EXPECT_EQ(M.ThreadsMerged, 2u);
  ASSERT_EQ(M.Groups.size(), 1u) << "same alloc path must merge";
  const MergedGroup &G = M.Groups.begin()->second;
  EXPECT_EQ(G.AllocCount, 2u);
  EXPECT_EQ(G.Metrics.get(PerfEventKind::L1Miss), 2u);
}

TEST(Analyzer, CrossThreadAttributionResolvesAllocPath) {
  // Thread 1 allocates; thread 2 samples accesses to the object. The
  // merged group must sit under thread 1's allocation path.
  ThreadProfile P1(1, "alloc"), P2(2, "access");
  CctNodeId AllocN = P1.cct().insertPath({{10, 0}});
  P1.recordAllocation(AllocN, "Buf", 4096);
  CctNodeId AccessN = P2.cct().insertPath({{20, 5}});
  P2.recordObjectSample(AllocKey{1, AllocN}, "Buf", PerfEventKind::L1Miss,
                        AccessN, true);

  MergedProfile M = mergeProfiles({&P1, &P2});
  ASSERT_EQ(M.Groups.size(), 1u);
  const MergedGroup &G = M.Groups.begin()->second;
  EXPECT_EQ(G.AllocCount, 1u);
  EXPECT_EQ(G.Metrics.get(PerfEventKind::L1Miss), 1u);
  EXPECT_EQ(G.RemoteSamples, 1u);
  auto Path = M.Tree.path(G.AllocNode);
  ASSERT_EQ(Path.size(), 1u);
  EXPECT_EQ(Path[0].Method, 10u);
  ASSERT_EQ(G.AccessBreakdown.size(), 1u);
  auto APath = M.Tree.path(G.AccessBreakdown.begin()->first);
  ASSERT_EQ(APath.size(), 1u);
  EXPECT_EQ(APath[0].Method, 20u);
}

TEST(Analyzer, MissingAllocatorDegradesToUnknown) {
  ThreadProfile P2(2, "access");
  CctNodeId AccessN = P2.cct().insertPath({{20, 5}});
  P2.recordObjectSample(AllocKey{99, 42}, "Ghost", PerfEventKind::L1Miss,
                        AccessN, false);
  MergedProfile M = mergeProfiles({&P2});
  ASSERT_EQ(M.Groups.size(), 1u);
  EXPECT_EQ(M.Groups.begin()->first, kCctRoot);
}

TEST(Analyzer, GroupsSortByMetric) {
  ThreadProfile P(1, "t");
  CctNodeId A = P.cct().insertPath({{1, 0}});
  CctNodeId B = P.cct().insertPath({{2, 0}});
  for (int I = 0; I < 3; ++I)
    P.recordObjectSample(AllocKey{1, A}, "Small", PerfEventKind::L1Miss, A,
                         false);
  for (int I = 0; I < 10; ++I)
    P.recordObjectSample(AllocKey{1, B}, "Big", PerfEventKind::L1Miss, B,
                         false);
  MergedProfile M = mergeProfiles({&P});
  auto Sorted = M.groupsByMetric(PerfEventKind::L1Miss);
  ASSERT_EQ(Sorted.size(), 2u);
  EXPECT_EQ(Sorted[0]->TypeName, "Big");
  EXPECT_NEAR(M.shareOf(*Sorted[0], PerfEventKind::L1Miss), 10.0 / 13.0,
              1e-9);
}

TEST(Analyzer, CodeCentricMerges) {
  ThreadProfile P1(1, "a"), P2(2, "b");
  std::vector<StackFrame> Path = {{5, 1}};
  P1.recordCodeSample(P1.cct().insertPath(Path), PerfEventKind::L1Miss);
  P2.recordCodeSample(P2.cct().insertPath(Path), PerfEventKind::L1Miss);
  MergedProfile M = mergeProfiles({&P1, &P2});
  ASSERT_EQ(M.CodeCentric.size(), 1u);
  EXPECT_EQ(M.CodeCentric.begin()->second.get(PerfEventKind::L1Miss), 2u);
}

TEST(Analyzer, DirectoryRoundTrip) {
  ThreadProfile P(1, "main");
  CctNodeId N = P.cct().insertPath({{1, 0}});
  P.recordAllocation(N, "X", 64);
  std::string Dir = ::testing::TempDir() + "/djxprof_dir_test";
  std::filesystem::create_directories(Dir);
  {
    std::ofstream Out(Dir + "/thread_1.djxprof");
    P.writeTo(Out);
  }
  auto M = mergeProfileDir(Dir);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->Groups.size(), 1u);
  EXPECT_FALSE(mergeProfileDir(Dir + "/nonexistent").has_value());
}

// --- Report -------------------------------------------------------------------------

TEST(Report, ObjectCentricShowsPathsAndShares) {
  MethodRegistry MR;
  MethodId Alloc = MR.registerMethod("Pool", "create", {{0, 42}});
  MethodId Access = MR.registerMethod("Worker", "use", {{0, 99}});
  ThreadProfile P(1, "t");
  CctNodeId AN = P.cct().insertPath({{Alloc, 0}});
  CctNodeId XN = P.cct().insertPath({{Access, 0}});
  P.recordAllocation(AN, "Buf[]", 2048);
  for (int I = 0; I < 4; ++I)
    P.recordObjectSample(AllocKey{1, AN}, "Buf[]", PerfEventKind::L1Miss,
                         XN, I == 0);
  MergedProfile M = mergeProfiles({&P});
  std::string S = renderObjectCentric(M, MR);
  EXPECT_NE(S.find("Buf[]"), std::string::npos);
  EXPECT_NE(S.find("Pool.create:42"), std::string::npos);
  EXPECT_NE(S.find("Worker.use:99"), std::string::npos);
  EXPECT_NE(S.find("100.0%"), std::string::npos);
  EXPECT_NE(S.find("allocated 1 time(s)"), std::string::npos);
  EXPECT_NE(S.find("NUMA"), std::string::npos);
}

TEST(Report, CodeCentricRanksHotLines) {
  MethodRegistry MR;
  MethodId M1 = MR.registerMethod("A", "hot", {{0, 7}});
  MethodId M2 = MR.registerMethod("B", "cold", {{0, 8}});
  ThreadProfile P(1, "t");
  CctNodeId H = P.cct().insertPath({{M1, 0}});
  CctNodeId C = P.cct().insertPath({{M2, 0}});
  for (int I = 0; I < 9; ++I)
    P.recordCodeSample(H, PerfEventKind::L1Miss);
  P.recordCodeSample(C, PerfEventKind::L1Miss);
  // Totals come from object samples/unattributed; record via
  // recordUnattributed to fill totals.
  for (int I = 0; I < 10; ++I)
    P.recordUnattributed(PerfEventKind::L1Miss);
  MergedProfile M = mergeProfiles({&P});
  std::string S = renderCodeCentric(M, MR);
  size_t HotPos = S.find("A.hot:7");
  size_t ColdPos = S.find("B.cold:8");
  ASSERT_NE(HotPos, std::string::npos);
  ASSERT_NE(ColdPos, std::string::npos);
  EXPECT_LT(HotPos, ColdPos) << "hot line must rank first";
}

TEST(Report, EmptyProfileDegradesGracefully) {
  MethodRegistry MR;
  MergedProfile M;
  EXPECT_NE(renderObjectCentric(M, MR).find("no object groups"),
            std::string::npos);
  EXPECT_NE(renderCodeCentric(M, MR).find("no samples"), std::string::npos);
}

TEST(Report, TopGroupsLimitRespected) {
  MethodRegistry MR;
  MethodId M1 = MR.registerMethod("C", "m", {{0, 1}});
  ThreadProfile P(1, "t");
  for (uint32_t I = 0; I < 20; ++I) {
    CctNodeId N = P.cct().insertPath({{M1, I}});
    P.recordObjectSample(AllocKey{1, N}, "T" + std::to_string(I),
                         PerfEventKind::L1Miss, N, false);
  }
  MergedProfile M = mergeProfiles({&P});
  ReportOptions Opts;
  Opts.TopGroups = 3;
  std::string S = renderObjectCentric(M, MR, Opts);
  EXPECT_NE(S.find("#3 "), std::string::npos);
  EXPECT_EQ(S.find("#4 "), std::string::npos);
}

// --- DjxPerf end-to-end (small) -------------------------------------------------------

TEST(DjxPerf, TracksAllocationsAboveSizeFilter) {
  JavaVm Vm;
  DjxPerfConfig Cfg;
  Cfg.MinObjectSize = 1024;
  DjxPerf Prof(Vm, Cfg);
  Prof.start();
  JavaThread &T = Vm.startThread("main", 0);
  MethodId M = Vm.methods().registerMethod("C", "m", {{0, 1}});
  FrameScope F(T, M, 0);
  Vm.allocateArray(T, Vm.types().longArray(), 256); // 2 KiB: tracked.
  Vm.allocateArray(T, Vm.types().longArray(), 8);   // 64 B: filtered.
  Prof.stop();
  EXPECT_EQ(Prof.allocationCallbacks(), 2u);
  EXPECT_EQ(Prof.allocationsTracked(), 1u);
  EXPECT_EQ(Prof.index().liveCount(), 1u);
}

TEST(DjxPerf, SampleAttributionEndToEnd) {
  JavaVm Vm;
  DjxPerfConfig Cfg;
  Cfg.Events = {PerfEventAttr{PerfEventKind::MemAccess, 10, 64}};
  Cfg.MinObjectSize = 64;
  DjxPerf Prof(Vm, Cfg);
  Prof.start();
  JavaThread &T = Vm.startThread("main", 0);
  MethodId MA = Vm.methods().registerMethod("App", "alloc", {{0, 5}});
  MethodId MU = Vm.methods().registerMethod("App", "use", {{0, 9}});
  RootScope Roots(Vm);
  ObjectRef &A = Roots.add();
  {
    FrameScope F(T, MA, 0);
    A = Vm.allocateArray(T, Vm.types().longArray(), 512);
  }
  {
    FrameScope F(T, MU, 0);
    for (int I = 0; I < 2000; ++I)
      Vm.readWord(T, A, (static_cast<uint64_t>(I) % 512) * 8);
  }
  Prof.stop();
  EXPECT_GT(Prof.samplesHandled(), 100u);
  MergedProfile M = Prof.analyze();
  ASSERT_GE(M.Groups.size(), 1u);
  auto Sorted = M.groupsByMetric(PerfEventKind::MemAccess);
  const MergedGroup &G = *Sorted[0];
  EXPECT_EQ(G.TypeName, "long[]");
  auto Path = M.Tree.path(G.AllocNode);
  ASSERT_FALSE(Path.empty());
  EXPECT_EQ(Vm.methods().qualifiedName(Path.back().Method), "App.alloc");
  // Most samples land in the use loop.
  ASSERT_FALSE(G.AccessBreakdown.empty());
  uint64_t UseSamples = 0;
  for (const auto &[Node, Counts] : G.AccessBreakdown) {
    auto AP = M.Tree.path(Node);
    if (!AP.empty() &&
        Vm.methods().qualifiedName(AP.back().Method) == "App.use")
      UseSamples += Counts.get(PerfEventKind::MemAccess);
  }
  EXPECT_GT(UseSamples, G.Metrics.get(PerfEventKind::MemAccess) / 2);
}

TEST(DjxPerf, StopFreezesSampling) {
  JavaVm Vm;
  DjxPerfConfig Cfg;
  Cfg.Events = {PerfEventAttr{PerfEventKind::MemAccess, 5, 64}};
  Cfg.MinObjectSize = 64;
  DjxPerf Prof(Vm, Cfg);
  Prof.start();
  JavaThread &T = Vm.startThread("main", 0);
  RootScope Roots(Vm);
  ObjectRef &A = Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 64));
  for (int I = 0; I < 100; ++I)
    Vm.readWord(T, A, 0);
  uint64_t AtStop = Prof.samplesHandled();
  Prof.stop();
  for (int I = 0; I < 100; ++I)
    Vm.readWord(T, A, 0);
  EXPECT_EQ(Prof.samplesHandled(), AtStop);
}

// The tentpole guarantee of batched resolution: once the workload's
// tracked objects exist, the sample path — overflow handler, ring, and
// batched snapshot drain — acquires zero live-object-index locks.
TEST(DjxPerf, SteadyStateSamplePathAcquiresNoIndexLocks) {
  JavaVm Vm;
  DjxPerf Prof(Vm); // Default agent: batched resolution, L1-miss preset.
  ASSERT_TRUE(Prof.batchedResolutionActive());
  Prof.start();
  JavaThread &T = Vm.startThread("steady", 0);
  RootScope Roots(Vm);
  // 512 KiB hot array: tracked, and big enough to miss L1 constantly.
  ObjectRef &Hot =
      Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 65536));
  uint64_t Locks = Prof.index().lockAcquisitions();
  uint64_t Samples = Prof.samplesHandled();
  // Long enough to overflow the sample ring several times, so the
  // capacity-triggered self-drain is covered too, not just stop().
  for (int I = 0; I < 400000; ++I)
    Vm.readWord(T, Hot, (static_cast<uint64_t>(I) % 65536) * 8);
  Prof.stop(); // Final drain of the ring's tail.
  EXPECT_GT(Prof.samplesHandled(), Samples);
  EXPECT_EQ(Prof.index().lockAcquisitions(), Locks)
      << "sample resolution must run lock-free in steady state";
  // Attribution still happened: the steady-state samples reached the hot
  // array's group. (The handful of unattributed ones are the array's own
  // zero-fill stores, sampled before its index insert — exactly what
  // inline resolution reports too.)
  MergedProfile M = Prof.analyze();
  ASSERT_FALSE(M.Groups.empty());
  EXPECT_LT(M.UnattributedSamples, 32u);
  EXPECT_GT(M.Groups.begin()->second.AddressSamples, 50u);
  Vm.endThread(T);
}

TEST(DjxPerf, WriteProfilesProducesLoadableFiles) {
  JavaVm Vm;
  DjxPerfConfig Cfg;
  Cfg.Events = {PerfEventAttr{PerfEventKind::MemAccess, 10, 64}};
  Cfg.MinObjectSize = 64;
  DjxPerf Prof(Vm, Cfg);
  Prof.start();
  JavaThread &T = Vm.startThread("main", 0);
  RootScope Roots(Vm);
  ObjectRef &A =
      Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 128));
  for (int I = 0; I < 500; ++I)
    Vm.readWord(T, A, (static_cast<uint64_t>(I) % 128) * 8);
  Prof.stop();
  std::string Dir = ::testing::TempDir() + "/djxperf_profiles";
  unsigned Written = Prof.writeProfiles(Dir);
  EXPECT_GE(Written, 1u);
  auto M = mergeProfileDir(Dir);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->Totals.get(PerfEventKind::MemAccess),
            Prof.analyze().Totals.get(PerfEventKind::MemAccess));
}

TEST(DjxPerf, MemoryFootprintGrowsWithTrackedObjects) {
  JavaVm Vm;
  DjxPerfConfig Cfg;
  Cfg.MinObjectSize = 64;
  DjxPerf Prof(Vm, Cfg);
  Prof.start();
  JavaThread &T = Vm.startThread("main", 0);
  size_t Before = Prof.memoryFootprint();
  RootScope Roots(Vm);
  for (int I = 0; I < 100; ++I)
    Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 16));
  EXPECT_GT(Prof.memoryFootprint(), Before);
}

} // namespace
