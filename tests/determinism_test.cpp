//===- determinism_test.cpp - Golden determinism of the simulation pipeline -===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guards the hot-path optimisations (interpreter frame arena, shift/mask
/// caches, MRU memos, NUMA page table, PMU interest mask): a fixed
/// workload must produce byte-identical profiler reports and
/// value-identical hierarchy statistics on every run. Any fast path that
/// changes a simulated outcome — rather than just reaching it faster —
/// trips these comparisons.
///
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"
#include "core/Report.h"
#include "workloads/BytecodePrograms.h"
#include "workloads/Parallel.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(determinism_test, 0.0, 0.0);

/// Everything observable from one profiled run of the fixed VM workload.
struct RunOutcome {
  std::string ObjectReport;
  std::string CodeReport;
  HierarchyStats Machine;
  uint64_t TotalCycles = 0;
  uint64_t PeakHeap = 0;
  uint64_t Samples = 0;
  uint64_t AllocCallbacks = 0;
};

void expectSameStats(const HierarchyStats &A, const HierarchyStats &B) {
  EXPECT_EQ(A.Accesses, B.Accesses);
  EXPECT_EQ(A.L1Misses, B.L1Misses);
  EXPECT_EQ(A.L2Misses, B.L2Misses);
  EXPECT_EQ(A.L3Misses, B.L3Misses);
  EXPECT_EQ(A.TlbMisses, B.TlbMisses);
  EXPECT_EQ(A.RemoteAccesses, B.RemoteAccesses);
  EXPECT_EQ(A.TotalLatency, B.TotalLatency);
}

/// A fixed direct-VM workload (no interpreter): allocation churn that
/// triggers GCs, a hot-array sweep, and enough tracked objects to populate
/// the profiler's index.
SuiteEntry fixedEntry() {
  SuiteEntry E;
  E.Suite = "determinism";
  E.Name = "golden";
  E.SmallAllocs = 20000;
  E.TrackedAllocs = 256;
  E.TrackedBytes = 1024;
  E.LiveTracked = 256;
  E.HotReads = 100000;
  E.HotBytes = 64 * 1024;
  E.Config.HeapBytes = 4 << 20;
  return E;
}

RunOutcome runFixedVmWorkload() {
  SuiteEntry E = fixedEntry();
  JavaVm Vm(E.Config);
  DjxPerf Prof(Vm);
  Prof.start();
  runSuiteEntry(Vm, E);
  Prof.stop();

  RunOutcome O;
  MergedProfile P = Prof.analyze();
  O.ObjectReport = renderObjectCentric(P, Vm.methods());
  O.CodeReport = renderCodeCentric(P, Vm.methods());
  O.Machine = Vm.machine().stats();
  O.TotalCycles = Vm.totalCycles();
  O.PeakHeap = Vm.peakHeapBytes();
  O.Samples = Prof.samplesHandled();
  O.AllocCallbacks = Prof.allocationCallbacks();
  return O;
}

/// A fixed interpreted workload through the instrumented-bytecode agent
/// path: method invocation, allocation hooks, prim-array stores, GC.
RunOutcome runFixedInterpWorkload(uint64_t *StepsOut = nullptr) {
  VmConfig Cfg;
  Cfg.HeapBytes = 4 << 20;
  JavaVm Vm(Cfg);
  BytecodeProgram Program = buildBatikProgram(Vm.types());
  Program.load(Vm);
  JavaThread &T = Vm.startThread("golden", 0);
  Interpreter Interp(Vm, Program, T);
  DjxPerf Prof(Vm);
  Prof.instrument(Program, Interp);
  Prof.start();
  Interp.run("Main.run", {Value::fromInt(400), Value::fromInt(512)});
  Prof.stop();
  Vm.endThread(T);

  RunOutcome O;
  MergedProfile P = Prof.analyze();
  O.ObjectReport = renderObjectCentric(P, Vm.methods());
  O.CodeReport = renderCodeCentric(P, Vm.methods());
  O.Machine = Vm.machine().stats();
  O.TotalCycles = Vm.totalCycles();
  O.PeakHeap = Vm.peakHeapBytes();
  O.Samples = Prof.samplesHandled();
  O.AllocCallbacks = Prof.allocationCallbacks();
  if (StepsOut)
    *StepsOut = Interp.stepsExecuted();
  return O;
}

TEST(GoldenDeterminism, VmWorkloadIsByteIdenticalAcrossRuns) {
  RunOutcome A = runFixedVmWorkload();
  RunOutcome B = runFixedVmWorkload();
  EXPECT_EQ(A.ObjectReport, B.ObjectReport);
  EXPECT_EQ(A.CodeReport, B.CodeReport);
  expectSameStats(A.Machine, B.Machine);
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
  EXPECT_EQ(A.PeakHeap, B.PeakHeap);
  EXPECT_EQ(A.Samples, B.Samples);
  EXPECT_EQ(A.AllocCallbacks, B.AllocCallbacks);
  // Sanity: the workload actually exercised the pipeline.
  EXPECT_GT(A.Machine.Accesses, 0u);
  EXPECT_GT(A.Samples, 0u);
  EXPECT_FALSE(A.ObjectReport.empty());
}

TEST(GoldenDeterminism, InterpWorkloadIsByteIdenticalAcrossRuns) {
  uint64_t StepsA = 0, StepsB = 0;
  RunOutcome A = runFixedInterpWorkload(&StepsA);
  RunOutcome B = runFixedInterpWorkload(&StepsB);
  EXPECT_EQ(StepsA, StepsB);
  EXPECT_EQ(A.ObjectReport, B.ObjectReport);
  EXPECT_EQ(A.CodeReport, B.CodeReport);
  expectSameStats(A.Machine, B.Machine);
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
  EXPECT_EQ(A.PeakHeap, B.PeakHeap);
  EXPECT_EQ(A.Samples, B.Samples);
  EXPECT_EQ(A.AllocCallbacks, B.AllocCallbacks);
  EXPECT_GT(StepsA, 0u);
  EXPECT_GT(A.AllocCallbacks, 0u);
}

/// A fixed multi-threaded workload through the parallel runtime: 4
/// simulated threads on sharded heap/index with safepoint GCs. \p Jobs
/// sets host parallelism only; every observable byte must be invariant.
RunOutcome runFixedMtWorkload(unsigned Jobs, uint64_t *SafepointsOut) {
  ParallelConfig Pc;
  Pc.SimThreads = 4;
  Pc.Jobs = Jobs;
  Pc.QuantumSteps = 8192;
  Pc.Iters = 500; // 500 KiB churn per 512 KiB shard: safepoints happen.
  Pc.Nlen = 256;
  Pc.HotElems = 16384;               // 128 KiB: sweeps miss L1.
  Pc.HeapBytesPerThread = 512 << 10; // Churn forces safepoint GCs.

  JavaVm Vm(parallelVmConfig(Pc));
  DjxPerf Prof(Vm, parallelAgentConfig(Pc));
  Prof.start();
  ParallelOutcome Run = runParallelWorkload(Vm, &Prof, Pc);
  Prof.stop();

  RunOutcome O;
  MergedProfile P = Prof.analyze();
  O.ObjectReport = renderObjectCentric(P, Vm.methods());
  O.CodeReport = renderCodeCentric(P, Vm.methods());
  O.Machine = Run.Machine; // Deterministic merge across worker machines.
  O.TotalCycles = Vm.totalCycles();
  O.PeakHeap = Vm.peakHeapBytes();
  O.Samples = Prof.samplesHandled();
  O.AllocCallbacks = Prof.allocationCallbacks();
  if (SafepointsOut)
    *SafepointsOut = Run.Safepoints;
  return O;
}

/// The tentpole guarantee of the parallel runtime: the merged profile and
/// reports are byte-identical for any --jobs value (1 = legacy serial
/// path), even with safepoint GCs and index relocation batches in play.
TEST(GoldenDeterminism, MtWorkloadIsByteIdenticalAcrossJobs) {
  uint64_t Sp1 = 0, Sp2 = 0, Sp4 = 0;
  RunOutcome J1 = runFixedMtWorkload(1, &Sp1);
  RunOutcome J2 = runFixedMtWorkload(2, &Sp2);
  RunOutcome J4 = runFixedMtWorkload(4, &Sp4);

  for (const RunOutcome *O : {&J2, &J4}) {
    EXPECT_EQ(O->ObjectReport, J1.ObjectReport);
    EXPECT_EQ(O->CodeReport, J1.CodeReport);
    expectSameStats(O->Machine, J1.Machine);
    EXPECT_EQ(O->TotalCycles, J1.TotalCycles);
    EXPECT_EQ(O->PeakHeap, J1.PeakHeap);
    EXPECT_EQ(O->Samples, J1.Samples);
    EXPECT_EQ(O->AllocCallbacks, J1.AllocCallbacks);
  }
  EXPECT_EQ(Sp2, Sp1);
  EXPECT_EQ(Sp4, Sp1);
  // Sanity: the run exercised the cross-thread machinery for real.
  EXPECT_GT(Sp1, 0u);
  EXPECT_GT(J1.Samples, 0u);
  EXPECT_NE(J1.ObjectReport.find("long[]"), std::string::npos)
      << J1.ObjectReport;
}

/// Batched sample resolution (ring buffer + epoch-snapshot lookups) must
/// be a pure performance change: toggling it may not move a single byte
/// of any report, nor any counter the overhead model feeds on. Covers the
/// serial inline-GC path (drains at GC start / allocation commit / stop)
/// and the safepointed MT path (drains at quantum ends).
TEST(GoldenDeterminism, BatchedResolutionMatchesInlineByteForByte) {
  auto RunMt = [](bool Batched) {
    ParallelConfig Pc;
    Pc.SimThreads = 4;
    Pc.Jobs = 2;
    Pc.QuantumSteps = 8192;
    Pc.Iters = 500;
    Pc.Nlen = 256;
    Pc.HotElems = 16384;
    Pc.HeapBytesPerThread = 512 << 10; // Safepoint GCs happen.
    JavaVm Vm(parallelVmConfig(Pc));
    DjxPerfConfig Agent = parallelAgentConfig(Pc);
    Agent.BatchedSampleResolution = Batched;
    DjxPerf Prof(Vm, Agent);
    EXPECT_EQ(Prof.batchedResolutionActive(), Batched);
    Prof.start();
    runParallelWorkload(Vm, &Prof, Pc);
    Prof.stop();
    MergedProfile P = Prof.analyze();
    return std::make_tuple(renderObjectCentric(P, Vm.methods()),
                           renderCodeCentric(P, Vm.methods()),
                           Vm.totalCycles(), Prof.samplesHandled(),
                           Prof.memoryFootprint());
  };
  EXPECT_EQ(RunMt(true), RunMt(false));

  auto RunSerial = [](bool Batched) {
    VmConfig Cfg;
    Cfg.HeapBytes = 4 << 20; // Small heap: inline AutoGc collections.
    JavaVm Vm(Cfg);
    BytecodeProgram Program = buildBatikProgram(Vm.types());
    Program.load(Vm);
    JavaThread &T = Vm.startThread("golden", 0);
    Interpreter Interp(Vm, Program, T);
    DjxPerfConfig Agent;
    Agent.BatchedSampleResolution = Batched;
    DjxPerf Prof(Vm, Agent);
    Prof.instrument(Program, Interp);
    Prof.start();
    Interp.run("Main.run", {Value::fromInt(400), Value::fromInt(512)});
    Prof.stop();
    Vm.endThread(T);
    MergedProfile P = Prof.analyze();
    return std::make_tuple(renderObjectCentric(P, Vm.methods()),
                           renderCodeCentric(P, Vm.methods()),
                           Vm.totalCycles(), Prof.samplesHandled(),
                           Prof.memoryFootprint());
  };
  EXPECT_EQ(RunSerial(true), RunSerial(false));
}

/// The GC ablations disable the interpositions batching depends on; the
/// profiler must fall back to inline resolution rather than misattribute.
TEST(GoldenDeterminism, BatchingForcedOffWithoutGcInterpositions) {
  JavaVm Vm;
  DjxPerfConfig Agent;
  Agent.HandleGcMoves = false;
  Agent.HandleGcFrees = false;
  DjxPerf Prof(Vm, Agent);
  EXPECT_FALSE(Prof.batchedResolutionActive());
}

/// Native (unprofiled) runs must also be reproducible: the simulator's
/// cycle accounting feeds every overhead experiment.
TEST(GoldenDeterminism, NativeRunReproducesCyclesAndStats) {
  SuiteEntry E = fixedEntry();
  JavaVm VmA(E.Config);
  runSuiteEntry(VmA, E);
  JavaVm VmB(E.Config);
  runSuiteEntry(VmB, E);
  expectSameStats(VmA.machine().stats(), VmB.machine().stats());
  EXPECT_EQ(VmA.totalCycles(), VmB.totalCycles());
  EXPECT_EQ(VmA.peakHeapBytes(), VmB.peakHeapBytes());
}

} // namespace
