//===- faultinject_test.cpp - Seeded fault-injection campaigns -------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness tests for the typed-failure path: seeded fault campaigns
/// drive the injector's four sites (heap exhaustion, sample-ring drops,
/// no-op GC, worker stalls) through real parallel workloads and assert
/// the graceful-degradation contract:
///
///  - no crash, hang, or leak for any drawn fault plan (the binary runs
///    under asan and tsan in CI);
///  - whether a run fails — and, for single-site plans, with which
///    VmError kind — agrees across --jobs 1/2/4, because every fault key
///    is a logical coordinate, never a host-side one;
///  - fault-free runs (zero rates, or injector cleared) remain
///    byte-identical to an uninstrumented run;
///  - after any failure the partial profile is still analyzable and the
///    degraded banner names the failure.
///
/// Reproducing a failure: every run prints its base seed as
///   [faultinject] DJX_FAULT_SEED=0x....
/// Export that variable and re-run the binary to replay the identical
/// fault plans. Failures also print the per-case seed.
///
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"
#include "core/Report.h"
#include "support/FaultInjector.h"
#include "support/VmError.h"
#include "workloads/Parallel.h"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(faultinject_test, 90.0, 62.0,
    "src/support/FaultInjector.cpp",
    "src/support/FaultInjector.h",
    "src/support/VmError.h");

/// Campaigns drawn per property test. With the five-preset rotation this
/// covers every site alone plus a mixed plan, each at 5+ distinct seeds.
constexpr int kCampaigns = 25;

/// splitmix64: derives per-case seeds from the base seed so one printed
/// value reproduces the whole sequence.
uint64_t mixSeed(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

/// Base seed: DJX_FAULT_SEED when set (replay), fresh entropy otherwise.
/// Printed exactly once per binary run.
uint64_t baseSeed() {
  static uint64_t Seed = [] {
    uint64_t S;
    if (const char *Env = std::getenv("DJX_FAULT_SEED")) {
      S = std::strtoull(Env, nullptr, 0);
    } else {
      std::random_device Rd;
      S = (static_cast<uint64_t>(Rd()) << 32) ^ Rd();
    }
    std::printf("[faultinject] DJX_FAULT_SEED=0x%016" PRIx64
                " (export to reproduce)\n",
                S);
    return S;
  }();
  return Seed;
}

/// Clears the process-global injector on scope exit so a failing
/// assertion cannot leak an armed plan into the next test.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::clear(); }
};

/// A small-but-real parallel workload: churn forces safepoint GCs (so
/// the GcCollect and HeapAlloc sites actually matter) and the hot arrays
/// overflow L1 (so samples flow through the rings being dropped).
ParallelConfig campaignWorkload() {
  ParallelConfig Pc;
  Pc.SimThreads = 3;
  Pc.Iters = 60;
  Pc.Nlen = 128;
  Pc.HotElems = 8192;                // 64 KiB: misses L1.
  Pc.HeapBytesPerThread = 256 << 10; // Churn forces safepoint GCs.
  Pc.StallTimeoutMs = 200;           // Stalls convert fast in tests.
  return Pc;
}

/// The five plan presets a campaign rotates through. Rates are tuned so
/// the site fires on some seeds and not others — both outcomes must
/// behave.
FaultPlan campaignPlan(uint64_t CaseSeed, int Preset) {
  FaultPlan Plan;
  Plan.Seed = CaseSeed;
  switch (Preset) {
  case 0: // Heap exhaustion; fired injections escalate to OutOfMemory.
    Plan.Rate[static_cast<int>(FaultSite::HeapAlloc)] = 2e-4;
    break;
  case 1: // Ring drops only: degrades the profile, never fails the run.
    Plan.Rate[static_cast<int>(FaultSite::RingPush)] = 0.3;
    break;
  case 2: // No-op collections; may starve the heap into OutOfMemory.
    Plan.Rate[static_cast<int>(FaultSite::GcCollect)] = 0.5;
    break;
  case 3: // Worker stalls; the watchdog converts any hit to WorkerStall.
    Plan.Rate[static_cast<int>(FaultSite::QuantumClaim)] = 2e-3;
    break;
  default: // Mixed plan: everything at once.
    Plan.Rate[static_cast<int>(FaultSite::HeapAlloc)] = 1e-4;
    Plan.Rate[static_cast<int>(FaultSite::RingPush)] = 0.1;
    Plan.Rate[static_cast<int>(FaultSite::GcCollect)] = 0.2;
    break;
  }
  return Plan;
}

/// True when the preset arms exactly one site, in which case the failure
/// kind (not just the failure verdict) must agree across Jobs values.
bool singleSite(int Preset) { return Preset < 4; }

/// Everything observable from one campaign run.
struct Outcome {
  bool Failed = false;
  VmErrorKind Kind = VmErrorKind::Internal;
  std::string Banner;       ///< Degraded banner (failed runs only).
  std::string ObjectReport; ///< Always renderable, even after failure.
  uint64_t Samples = 0;
  uint64_t Drops = 0;
  uint64_t Steps = 0;
  uint64_t Safepoints = 0;
  uint64_t TotalCycles = 0;
};

/// Runs the campaign workload under \p Plan with \p Jobs host workers.
/// The injector is armed for exactly the duration of the run.
Outcome runCampaign(const FaultPlan &Plan, unsigned Jobs) {
  ParallelConfig Pc = campaignWorkload();
  Pc.Jobs = Jobs;
  JavaVm Vm(parallelVmConfig(Pc));
  DjxPerf Prof(Vm, parallelAgentConfig(Pc));
  Prof.start();
  FaultInjector::install(Plan);
  Outcome O;
  try {
    ParallelOutcome Run = runParallelWorkload(Vm, &Prof, Pc);
    O.Steps = Run.Steps;
    O.Safepoints = Run.Safepoints;
  } catch (const VmError &E) {
    O.Failed = true;
    O.Kind = E.Kind;
    O.Banner = renderDegradedBanner(E, Prof.samplesHandled(),
                                    Prof.samplesDropped());
  }
  FaultInjector::clear();
  Prof.stop();
  MergedProfile P = Prof.analyze();
  O.ObjectReport = renderObjectCentric(P, Vm.methods());
  O.Samples = Prof.samplesHandled();
  O.Drops = Prof.samplesDropped();
  O.TotalCycles = Vm.totalCycles();
  return O;
}

std::string caseLabel(int Case, uint64_t CaseSeed) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf),
                "case %d seed 0x%016" PRIx64
                " (set DJX_FAULT_SEED to the printed base seed)",
                Case, CaseSeed);
  return Buf;
}

// --- Exit-code and kind-name contract --------------------------------------

TEST(VmErrorContract, ExitCodesAreDocumented) {
  EXPECT_EQ(vmErrorExitCode(VmErrorKind::OutOfMemory), 3);
  EXPECT_EQ(vmErrorExitCode(VmErrorKind::StepLimit), 4);
  EXPECT_EQ(vmErrorExitCode(VmErrorKind::InvalidBytecode), 5);
  EXPECT_EQ(vmErrorExitCode(VmErrorKind::WorkerStall), 6);
  EXPECT_EQ(vmErrorExitCode(VmErrorKind::JournalCorrupt), 7);
  // Shell convention 128 + SIGINT for signal-interrupted runs.
  EXPECT_EQ(vmErrorExitCode(VmErrorKind::Interrupted), 130);
  EXPECT_EQ(vmErrorExitCode(VmErrorKind::Internal), 1);
}

TEST(VmErrorContract, JournalKindsHaveNames) {
  EXPECT_STREQ(vmErrorKindName(VmErrorKind::JournalCorrupt),
               "JournalCorrupt");
  EXPECT_STREQ(vmErrorKindName(VmErrorKind::Interrupted), "Interrupted");
}

// The journal I/O sites are full citizens of the injector: named,
// counted, and drawn from the same stateless splitmix keys — so a
// journal fault plan is as replayable and --jobs-invariant as the
// original four sites.
TEST(FaultSiteContract, JournalSitesAreRegistered) {
  ASSERT_EQ(kNumFaultSites, 7u);
  EXPECT_STREQ(faultSiteName(FaultSite::JournalShortWrite),
               "journal-short-write");
  EXPECT_STREQ(faultSiteName(FaultSite::JournalWriteError),
               "journal-write-error");
  EXPECT_STREQ(faultSiteName(FaultSite::JournalCorruptByte),
               "journal-corrupt-byte");
}

TEST(FaultSiteContract, JournalDrawsAreStatelessAndSeedDeterministic) {
  InjectorGuard Guard;
  FaultPlan Plan;
  Plan.Seed = 0xfeedULL;
  Plan.rate(FaultSite::JournalShortWrite) = 0.5;
  Plan.rate(FaultSite::JournalCorruptByte) = 0.5;
  FaultInjector::install(Plan);
  // Record a draw sequence, interleave other draws, re-draw: stateless
  // hashing means the answers depend only on (seed, site, keys).
  std::vector<bool> First;
  for (uint64_t K = 0; K < 64; ++K)
    First.push_back(FaultInjector::shouldFail(FaultSite::JournalShortWrite,
                                              K));
  for (uint64_t K = 0; K < 16; ++K)
    FaultInjector::shouldFail(FaultSite::JournalCorruptByte, K);
  for (uint64_t K = 0; K < 64; ++K)
    EXPECT_EQ(FaultInjector::shouldFail(FaultSite::JournalShortWrite, K),
              First[K])
        << K;
  // A disarmed site never fires regardless of the armed ones.
  for (uint64_t K = 0; K < 64; ++K)
    EXPECT_FALSE(FaultInjector::shouldFail(FaultSite::JournalWriteError, K));
}

TEST(VmErrorContract, KindNamesAreStable) {
  EXPECT_STREQ(vmErrorKindName(VmErrorKind::OutOfMemory), "OutOfMemory");
  EXPECT_STREQ(vmErrorKindName(VmErrorKind::StepLimit), "StepLimit");
  EXPECT_STREQ(vmErrorKindName(VmErrorKind::InvalidBytecode),
               "InvalidBytecode");
  EXPECT_STREQ(vmErrorKindName(VmErrorKind::WorkerStall), "WorkerStall");
  EXPECT_STREQ(vmErrorKindName(VmErrorKind::Internal), "Internal");
}

TEST(VmErrorContract, DescribeCarriesMetadata) {
  VmError E(VmErrorKind::OutOfMemory, "shard full");
  E.ThreadId = 7;
  E.Steps = 1234;
  E.Shard = 2;
  std::string D = E.describe();
  EXPECT_NE(D.find("OutOfMemory"), std::string::npos);
  EXPECT_NE(D.find("shard full"), std::string::npos);
  EXPECT_NE(D.find("thread 7"), std::string::npos);
  EXPECT_NE(D.find("steps 1234"), std::string::npos);
  EXPECT_NE(D.find("shard 2"), std::string::npos);
  EXPECT_STREQ(E.what(), "shard full");
  // Metadata the throw site didn't know stays out of the rendering.
  VmError Bare(VmErrorKind::Internal, "oops");
  std::string B = Bare.describe();
  EXPECT_EQ(B, "Internal: oops");
  EXPECT_EQ(B.find("thread"), std::string::npos);
}

// --- Injector unit behavior -------------------------------------------------

TEST(FaultInjector, DisabledByDefaultAndWhenAllRatesZero) {
  InjectorGuard G;
  EXPECT_FALSE(FaultInjector::enabled());
  EXPECT_FALSE(FaultInjector::shouldFail(FaultSite::HeapAlloc, 0, 0));
  FaultPlan Zero;
  Zero.Seed = 42;
  FaultInjector::install(Zero);
  EXPECT_FALSE(FaultInjector::enabled());
  EXPECT_FALSE(FaultInjector::shouldFail(FaultSite::RingPush, 1, 2));
  EXPECT_EQ(FaultInjector::firedCount(FaultSite::RingPush), 0u);
}

TEST(FaultInjector, DrawsAreDeterministicInTheKey) {
  InjectorGuard G;
  FaultPlan Plan;
  Plan.Seed = baseSeed();
  Plan.Rate[static_cast<int>(FaultSite::RingPush)] = 0.5;
  FaultInjector::install(Plan);
  EXPECT_TRUE(FaultInjector::enabled());
  EXPECT_EQ(FaultInjector::plan().Seed, Plan.Seed);
  EXPECT_EQ(FaultInjector::plan().rate(FaultSite::RingPush), 0.5);
  // The same (site, key) always draws the same verdict; distinct keys
  // draw independently (at rate 0.5 over 256 keys, both outcomes occur).
  int Fired = 0;
  for (uint64_t K = 0; K < 256; ++K) {
    bool A = FaultInjector::shouldFail(FaultSite::RingPush, 7, K);
    bool B = FaultInjector::shouldFail(FaultSite::RingPush, 7, K);
    EXPECT_EQ(A, B) << "key " << K;
    Fired += A ? 2 : 0;
  }
  EXPECT_GT(Fired, 0);
  EXPECT_LT(Fired, 512);
  EXPECT_EQ(FaultInjector::firedCount(FaultSite::RingPush),
            static_cast<uint64_t>(Fired));
  // Unarmed sites never fire even while the injector is enabled.
  EXPECT_FALSE(FaultInjector::shouldFail(FaultSite::GcCollect, 0, 0));
  FaultInjector::clear();
  EXPECT_FALSE(FaultInjector::enabled());
  EXPECT_EQ(FaultInjector::firedCount(FaultSite::RingPush), 0u);
}

TEST(FaultInjector, RateOneAlwaysFires) {
  InjectorGuard G;
  FaultPlan Plan;
  Plan.Seed = 1;
  Plan.Rate[static_cast<int>(FaultSite::HeapAlloc)] = 1.0;
  FaultInjector::install(Plan);
  for (uint64_t K = 0; K < 32; ++K)
    EXPECT_TRUE(FaultInjector::shouldFail(FaultSite::HeapAlloc, K, K));
}

// --- Forced single-site failures --------------------------------------------

TEST(FaultInjectCampaign, ForcedHeapExhaustionSalvagesPartialProfile) {
  InjectorGuard G;
  for (unsigned Jobs : {1u, 2u}) {
    FaultPlan Plan;
    Plan.Seed = mixSeed(baseSeed() ^ 0xA110C);
    Plan.Rate[static_cast<int>(FaultSite::HeapAlloc)] = 1.0;
    Outcome O = runCampaign(Plan, Jobs);
    ASSERT_TRUE(O.Failed) << "jobs " << Jobs;
    EXPECT_EQ(O.Kind, VmErrorKind::OutOfMemory) << "jobs " << Jobs;
    // The degraded banner names the failure and its exit code, and the
    // salvaged profile still renders.
    EXPECT_NE(O.Banner.find("DEGRADED"), std::string::npos);
    EXPECT_NE(O.Banner.find("OutOfMemory"), std::string::npos);
    EXPECT_NE(O.Banner.find("exit code 3"), std::string::npos);
    EXPECT_FALSE(O.ObjectReport.empty());
  }
}

TEST(FaultInjectCampaign, WatchdogConvertsInjectedStall) {
  InjectorGuard G;
  for (unsigned Jobs : {1u, 2u}) {
    FaultPlan Plan;
    Plan.Seed = mixSeed(baseSeed() ^ 0x57A11);
    Plan.Rate[static_cast<int>(FaultSite::QuantumClaim)] = 1.0;
    Outcome O = runCampaign(Plan, Jobs);
    ASSERT_TRUE(O.Failed) << "jobs " << Jobs;
    EXPECT_EQ(O.Kind, VmErrorKind::WorkerStall) << "jobs " << Jobs;
    EXPECT_NE(O.Banner.find("WorkerStall"), std::string::npos);
    EXPECT_NE(O.Banner.find("exit code 6"), std::string::npos);
    // The stall dump names the injected stall and per-worker state.
    EXPECT_NE(O.Banner.find("no forward progress"), std::string::npos);
    EXPECT_NE(O.Banner.find("injected stall"), std::string::npos);
  }
}

TEST(FaultInjectCampaign, RingDropsDegradeButNeverFail) {
  InjectorGuard G;
  FaultPlan Plan;
  Plan.Seed = mixSeed(baseSeed() ^ 0x21196);
  Plan.Rate[static_cast<int>(FaultSite::RingPush)] = 0.5;
  Outcome O = runCampaign(Plan, 2);
  EXPECT_FALSE(O.Failed);
  EXPECT_GT(O.Drops, 0u);
  EXPECT_GT(O.Samples, O.Drops); // Most samples still land.
  EXPECT_FALSE(O.ObjectReport.empty());
}

// --- The campaign property ---------------------------------------------------

/// For any drawn fault plan, host parallelism changes nothing observable:
/// the same seeds fail (or not) with the same kind across --jobs 1/2/4,
/// and *successful* degraded runs are byte-identical, because every
/// injection key is a logical coordinate.
TEST(FaultInjectCampaign, CampaignsAreJobsInvariant) {
  InjectorGuard G;
  uint64_t Base = baseSeed();
  int Failures = 0, Successes = 0;
  for (int Case = 0; Case < kCampaigns; ++Case) {
    uint64_t CaseSeed = mixSeed(Base + static_cast<uint64_t>(Case));
    FaultPlan Plan = campaignPlan(CaseSeed, Case % 5);
    // The final campaign always exhausts the heap so the
    // both-outcomes-occur assertion below cannot depend on seed luck
    // (the ring-only preset already guarantees successes).
    if (Case == kCampaigns - 1)
      Plan.Rate[static_cast<int>(FaultSite::HeapAlloc)] = 1.0;
    Outcome Serial = runCampaign(Plan, 1);
    for (unsigned Jobs : {2u, 4u}) {
      Outcome Mt = runCampaign(Plan, Jobs);
      ASSERT_EQ(Serial.Failed, Mt.Failed)
          << caseLabel(Case, CaseSeed) << " jobs " << Jobs;
      if (Serial.Failed && singleSite(Case % 5)) {
        EXPECT_EQ(Serial.Kind, Mt.Kind)
            << caseLabel(Case, CaseSeed) << " jobs " << Jobs;
      }
      if (!Serial.Failed) {
        // Success: the run — including injected drops and no-op GCs —
        // must be byte-identical to the serial golden.
        EXPECT_EQ(Serial.ObjectReport, Mt.ObjectReport)
            << caseLabel(Case, CaseSeed) << " jobs " << Jobs;
        EXPECT_EQ(Serial.Samples, Mt.Samples)
            << caseLabel(Case, CaseSeed) << " jobs " << Jobs;
        EXPECT_EQ(Serial.Drops, Mt.Drops)
            << caseLabel(Case, CaseSeed) << " jobs " << Jobs;
        EXPECT_EQ(Serial.Steps, Mt.Steps)
            << caseLabel(Case, CaseSeed) << " jobs " << Jobs;
        EXPECT_EQ(Serial.Safepoints, Mt.Safepoints)
            << caseLabel(Case, CaseSeed) << " jobs " << Jobs;
        EXPECT_EQ(Serial.TotalCycles, Mt.TotalCycles)
            << caseLabel(Case, CaseSeed) << " jobs " << Jobs;
      }
    }
    if (Serial.Failed) {
      ++Failures;
      EXPECT_NE(Serial.Banner.find("DEGRADED"), std::string::npos)
          << caseLabel(Case, CaseSeed);
      EXPECT_NE(Serial.Banner.find(vmErrorKindName(Serial.Kind)),
                std::string::npos)
          << caseLabel(Case, CaseSeed);
      EXPECT_FALSE(Serial.ObjectReport.empty()) << caseLabel(Case, CaseSeed);
    } else {
      ++Successes;
    }
  }
  // The rotation is tuned so both outcomes occur; a campaign that only
  // ever succeeds (or only ever fails) is not testing degradation.
  EXPECT_GT(Failures, 0);
  EXPECT_GT(Successes, 0);
  std::printf("[faultinject] %d/%d campaigns failed (by design)\n",
              Failures, kCampaigns);
}

// --- Fault-free runs are untouched ------------------------------------------

/// A cleared (or never-installed, or zero-rate) injector leaves the
/// profile byte-identical: the fast path is one relaxed atomic load and
/// no report text changes unless a failure actually happened.
TEST(FaultInjectCampaign, FaultFreeRunsAreByteIdentical) {
  InjectorGuard G;
  FaultInjector::clear();
  FaultPlan Zero;
  Zero.Seed = mixSeed(baseSeed() ^ 0xFAB1);
  Outcome Bare = runCampaign(Zero, 2);  // install() with all-zero rates
  Outcome Again = runCampaign(Zero, 2); // stays disabled.
  EXPECT_FALSE(Bare.Failed);
  EXPECT_EQ(Bare.Drops, 0u);
  EXPECT_EQ(Bare.ObjectReport, Again.ObjectReport);
  EXPECT_EQ(Bare.Samples, Again.Samples);
  EXPECT_EQ(Bare.TotalCycles, Again.TotalCycles);
  EXPECT_EQ(Bare.ObjectReport.find("DEGRADED"), std::string::npos);
}

} // namespace
