//===- fuzzsched_test.cpp - Seed-driven scheduler fuzzing ------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property test for the parallel runtime's determinism contract. Each
/// case draws a random *logical* schedule from a printed seed — per-round
/// quantum sizes, forced safepoint-GC rounds, mid-quantum sample-ring
/// drain points, plus host-side worker claim jitter — and asserts that
/// every observable byte of the profile matches the serial (--jobs 1)
/// golden of the *same* seed, across host parallelism and across the
/// batched/inline sample-resolution modes. This generalizes the
/// hand-picked configurations of determinism_test into a reusable oracle:
/// any schedule the fuzzer can draw must satisfy the same guarantee.
///
/// Reproducing a failure: every run prints its base seed as
///   [fuzzsched] DJX_FUZZSCHED_SEED=0x....
/// Export that variable and re-run the binary to replay the identical
/// schedule sequence. Failures also print the per-case seed.
///
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"
#include "core/Report.h"
#include "workloads/Parallel.h"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <tuple>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(fuzzsched_test, 0.0, 0.0);

/// Number of random schedules each property test draws. The acceptance
/// bar for the harness is >= 25 total; FuzzedScheduleIsJobsInvariant alone
/// runs that many.
constexpr int kSchedules = 25;

/// splitmix64: derives per-case seeds from the base seed so one printed
/// value reproduces the whole sequence.
uint64_t mixSeed(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

/// Base seed: DJX_FUZZSCHED_SEED when set (replay), fresh entropy
/// otherwise. Printed exactly once per binary run.
uint64_t baseSeed() {
  static uint64_t Seed = [] {
    uint64_t S;
    if (const char *Env = std::getenv("DJX_FUZZSCHED_SEED")) {
      S = std::strtoull(Env, nullptr, 0);
    } else {
      std::random_device Rd;
      S = (static_cast<uint64_t>(Rd()) << 32) ^ Rd();
    }
    std::printf("[fuzzsched] DJX_FUZZSCHED_SEED=0x%016" PRIx64
                " (export to reproduce)\n",
                S);
    return S;
  }();
  return Seed;
}

/// A small-but-real parallel workload: churn forces park-triggered
/// safepoints on top of the fuzzer's forced ones, and the hot arrays
/// overflow L1 so PMU samples flow through the rings being fuzzed.
ParallelConfig fuzzWorkload(uint64_t CaseSeed) {
  ParallelConfig Pc;
  Pc.SimThreads = 3;
  Pc.Iters = 100;
  Pc.Nlen = 128;
  Pc.HotElems = 8192;                // 64 KiB: misses L1.
  Pc.HeapBytesPerThread = 256 << 10; // Churn forces safepoint GCs.
  Pc.Fuzz.Enabled = true;
  Pc.Fuzz.Seed = CaseSeed;
  return Pc;
}

/// Everything observable from one fuzzed run.
struct Outcome {
  std::string ObjectReport;
  std::string CodeReport;
  uint64_t Steps = 0;
  uint64_t Safepoints = 0;
  uint64_t Rounds = 0;
  uint64_t TotalCycles = 0;
  uint64_t PeakHeap = 0;
  uint64_t Samples = 0;
  uint64_t AllocCallbacks = 0;
  HierarchyStats Machine;

  bool operator==(const Outcome &O) const {
    return ObjectReport == O.ObjectReport && CodeReport == O.CodeReport &&
           Steps == O.Steps && Safepoints == O.Safepoints &&
           Rounds == O.Rounds && TotalCycles == O.TotalCycles &&
           PeakHeap == O.PeakHeap && Samples == O.Samples &&
           AllocCallbacks == O.AllocCallbacks &&
           Machine.Accesses == O.Machine.Accesses &&
           Machine.L1Misses == O.Machine.L1Misses &&
           Machine.RemoteAccesses == O.Machine.RemoteAccesses &&
           Machine.TotalLatency == O.Machine.TotalLatency;
  }
};

Outcome runFuzzed(uint64_t CaseSeed, unsigned Jobs, bool Batched) {
  ParallelConfig Pc = fuzzWorkload(CaseSeed);
  Pc.Jobs = Jobs;
  JavaVm Vm(parallelVmConfig(Pc));
  DjxPerfConfig Agent = parallelAgentConfig(Pc);
  Agent.BatchedSampleResolution = Batched;
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  ParallelOutcome Run = runParallelWorkload(Vm, &Prof, Pc);
  Prof.stop();

  Outcome O;
  MergedProfile P = Prof.analyze();
  O.ObjectReport = renderObjectCentric(P, Vm.methods());
  O.CodeReport = renderCodeCentric(P, Vm.methods());
  O.Steps = Run.Steps;
  O.Safepoints = Run.Safepoints;
  O.Rounds = Run.Rounds;
  O.TotalCycles = Vm.totalCycles();
  O.PeakHeap = Vm.peakHeapBytes();
  O.Samples = Prof.samplesHandled();
  O.AllocCallbacks = Prof.allocationCallbacks();
  O.Machine = Run.Machine;
  return O;
}

std::string caseLabel(int Case, uint64_t CaseSeed) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf),
                "case %d seed 0x%016" PRIx64
                " (set DJX_FUZZSCHED_SEED to the printed base seed)",
                Case, CaseSeed);
  return Buf;
}

/// The core property: for any drawn schedule, host parallelism is
/// invisible. The serial run *is* the golden — same seed, --jobs 1 —
/// and jobs 2/4 (with claim jitter active) must reproduce it exactly.
TEST(FuzzSched, FuzzedScheduleIsJobsInvariant) {
  uint64_t Base = baseSeed();
  for (int Case = 0; Case < kSchedules; ++Case) {
    uint64_t CaseSeed = mixSeed(Base + static_cast<uint64_t>(Case));
    Outcome Golden = runFuzzed(CaseSeed, 1, true);
    // Alternate the host-parallel arm so the sweep covers both a narrow
    // and a wide worker pool without doubling the runtime.
    unsigned Jobs = (Case % 2) ? 4 : 2;
    Outcome Mt = runFuzzed(CaseSeed, Jobs, true);
    ASSERT_TRUE(Mt == Golden)
        << caseLabel(Case, CaseSeed) << " jobs=" << Jobs
        << "\n--- golden object report ---\n"
        << Golden.ObjectReport << "\n--- mt object report ---\n"
        << Mt.ObjectReport;
    // Sanity: the draw actually produced schedule structure worth
    // testing (rounds advanced; samples flowed).
    ASSERT_GT(Golden.Rounds, 1u) << caseLabel(Case, CaseSeed);
    ASSERT_GT(Golden.Samples, 0u) << caseLabel(Case, CaseSeed);
  }
}

/// Batched sample resolution must stay a pure performance change under
/// fuzzed drain points and GC timing, not just at the hand-picked
/// configurations determinism_test pins.
TEST(FuzzSched, FuzzedScheduleIsBatchingInvariant) {
  uint64_t Base = baseSeed();
  for (int Case = 0; Case < 6; ++Case) {
    uint64_t CaseSeed = mixSeed(Base + 0x10000 + static_cast<uint64_t>(Case));
    Outcome Batched = runFuzzed(CaseSeed, 2, true);
    Outcome Inline = runFuzzed(CaseSeed, 2, false);
    ASSERT_TRUE(Batched == Inline) << caseLabel(Case, CaseSeed);
  }
}

/// Forced safepoints really fire: across a seed sweep, some schedule must
/// take more stop-the-world pauses than the allocation pressure alone
/// demands (the unfuzzed workload's count), proving the GC-timing fuzz is
/// not a no-op. Uses a fixed seed so the property is stable in CI.
TEST(FuzzSched, ForcedGcRoundsActuallyWiden) {
  ParallelConfig Plain = fuzzWorkload(0);
  Plain.Fuzz.Enabled = false;
  Plain.Jobs = 1;
  Plain.QuantumSteps = 4096;
  JavaVm Vm(parallelVmConfig(Plain));
  ParallelOutcome Unfuzzed = runParallelWorkload(Vm, nullptr, Plain);

  uint64_t MaxSafepoints = 0;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    ParallelConfig Pc = fuzzWorkload(mixSeed(Seed));
    Pc.Jobs = 1;
    JavaVm FuzzVm(parallelVmConfig(Pc));
    ParallelOutcome Run = runParallelWorkload(FuzzVm, nullptr, Pc);
    MaxSafepoints = std::max(MaxSafepoints, Run.Safepoints);
  }
  EXPECT_GT(MaxSafepoints, Unfuzzed.Safepoints)
      << "no fuzzed schedule forced an extra safepoint; the GC-timing "
         "fuzz is not reaching the executor";
}

/// Replay contract: the same seed draws the same schedule — byte-for-byte
/// outcome equality on a re-run, which is what makes the printed seed a
/// reproduction recipe rather than a hint.
TEST(FuzzSched, SameSeedReplaysIdentically) {
  uint64_t CaseSeed = mixSeed(baseSeed() + 0x20000);
  Outcome A = runFuzzed(CaseSeed, 2, true);
  Outcome B = runFuzzed(CaseSeed, 2, true);
  ASSERT_TRUE(A == B) << caseLabel(0, CaseSeed);
}

} // namespace
