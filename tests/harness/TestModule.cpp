//===- TestModule.cpp - Self-describing test-module registry ---------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "harness/TestModule.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

namespace djx {
namespace testing {

namespace {
const TestModule *&moduleSlot() {
  static const TestModule *Slot = nullptr;
  return Slot;
}
} // namespace

const TestModule *registeredModule() { return moduleSlot(); }

TestModuleRegistrar::TestModuleRegistrar(TestModule Module) {
  if (moduleSlot() != nullptr) {
    std::fprintf(stderr,
                 "djx test harness: duplicate DJX_TEST_MODULE in one "
                 "binary (%s after %s)\n",
                 Module.Name.c_str(), moduleSlot()->Name.c_str());
    std::abort();
  }
  static TestModule Owned;
  Owned = std::move(Module);
  moduleSlot() = &Owned;
}

std::string sourceRoot() {
#ifdef DJX_SOURCE_ROOT
  return DJX_SOURCE_ROOT;
#else
  return ".";
#endif
}

} // namespace testing
} // namespace djx

namespace {

using djx::testing::registeredModule;
using djx::testing::sourceRoot;

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode);
}

/// Per-binary self-checks, compiled into every suite via the harness
/// library. The cross-binary checks (no-dupes, no-missing over all of
/// src/) live in harness_meta_test and read the generated manifest.
TEST(TestModuleSelfCheck, SuiteDeclaresExactlyOneModule) {
  ASSERT_NE(registeredModule(), nullptr)
      << "this test binary has no DJX_TEST_MODULE declaration; every "
         "suite must describe the files it owns (or declare none)";
  EXPECT_FALSE(registeredModule()->Name.empty());
}

TEST(TestModuleSelfCheck, DeclaredFilesExist) {
  const auto *M = registeredModule();
  ASSERT_NE(M, nullptr);
  for (const std::string &File : M->Files)
    EXPECT_TRUE(fileExists(sourceRoot() + "/" + File))
        << M->Name << " declares " << File << " which does not exist";
}

TEST(TestModuleSelfCheck, FloorsAreSanePercentages) {
  const auto *M = registeredModule();
  ASSERT_NE(M, nullptr);
  EXPECT_GE(M->LineFloorPct, 0.0);
  EXPECT_LE(M->LineFloorPct, 100.0);
  EXPECT_GE(M->BranchFloorPct, 0.0);
  EXPECT_LE(M->BranchFloorPct, 100.0);
  if (!M->Files.empty()) {
    EXPECT_GT(M->LineFloorPct, 0.0)
        << M->Name << " owns files but gates nothing: a module with owned "
        << "files must carry a positive line-coverage floor";
  }
}

} // namespace
