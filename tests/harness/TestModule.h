//===- TestModule.h - Self-describing test-module registry ------*- C++ -*-===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The testmodule idiom: every test suite *declares* the source files it
/// owns plus the line/branch coverage floors its tests must clear. The
/// declaration is one DJX_TEST_MODULE(...) block per suite, which serves
/// three consumers at once:
///
///  1. this registry, linked into the suite's binary, which runs
///     per-binary self-checks (exactly one declaration; declared files
///     exist on disk);
///  2. tools/gen_test_manifest.py, which lexes the blocks out of
///     tests/*_test.cpp and generates both tests/harness/modules.json and
///     the CMake/ctest wiring (tests/modules.generated.cmake) — with a
///     --check mode wired into ctest so a stale manifest fails the suite;
///  3. tools/coverage_gate.py, which runs each suite in isolation under
///     GCOV_PREFIX and enforces the floors against gcov's measurements —
///     a module whose tests stop exercising its own files fails CI.
///
/// Cross-binary meta-tests (no file owned twice, no src/ file owned by
/// nothing) live in tests/harness_meta_test.cpp and read the generated
/// manifest.
///
/// Declaration syntax (floors are percentages; a suite with no owned
/// files — a cross-cutting golden or property suite — declares none and
/// its floors are ignored):
///
/// \code
///   DJX_TEST_MODULE(jvm_test, 85.0, 60.0,
///                   "src/jvm/Heap.cpp", "src/jvm/Heap.h");
///   DJX_TEST_MODULE(determinism_test, 0.0, 0.0);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DJX_TESTS_HARNESS_TESTMODULE_H
#define DJX_TESTS_HARNESS_TESTMODULE_H

#include <string>
#include <vector>

namespace djx {
namespace testing {

/// One suite's self-description.
struct TestModule {
  std::string Name;              ///< Must equal the test binary's name.
  double LineFloorPct = 0;       ///< Min line coverage of owned files.
  double BranchFloorPct = 0;     ///< Min branch coverage of owned files.
  std::vector<std::string> Files; ///< Repo-relative owned source files.
};

/// The binary's registered module, or null before registration. Each test
/// binary declares exactly one module (enforced by the harness's
/// self-check test).
const TestModule *registeredModule();

/// Registration hook used by DJX_TEST_MODULE; aborts on a second
/// registration in the same binary.
struct TestModuleRegistrar {
  explicit TestModuleRegistrar(TestModule Module);
};

/// Repo root the self-checks resolve declared files against (injected by
/// the build as DJX_SOURCE_ROOT).
std::string sourceRoot();

} // namespace testing
} // namespace djx

// NOTE: tools/gen_test_manifest.py lexes calls of this macro out of
// tests/*_test.cpp. Keep the call shape (name, line floor, branch floor,
// string literals...) if you change the implementation.
#define DJX_TEST_MODULE(NAME, LINE_FLOOR_PCT, BRANCH_FLOOR_PCT, ...)       \
  static const ::djx::testing::TestModuleRegistrar kDjxTestModuleReg{      \
      ::djx::testing::TestModule{#NAME, (LINE_FLOOR_PCT),                  \
                                 (BRANCH_FLOOR_PCT), {__VA_ARGS__}}}

#endif // DJX_TESTS_HARNESS_TESTMODULE_H
