//===- harness_meta_test.cpp - Cross-binary test-module meta-checks --------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-binary half of the testmodule harness. Each suite's
/// per-binary self-checks (tests/harness/TestModule.cpp) can only see
/// their own DJX_TEST_MODULE declaration; this suite reads the generated
/// manifest (tests/harness/modules.json, kept fresh by the manifest_check
/// ctest test) and enforces the global ownership invariants:
///
///   * no source file is owned by two modules (double coverage credit),
///   * every file under src/ and every tool source is owned by exactly
///     one module (nothing ships untested and un-gated),
///   * every declared file exists and every manifest module corresponds
///     to a real tests/<name>.cpp suite.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/TestModule.h"

namespace fs = std::filesystem;

namespace {

DJX_TEST_MODULE(harness_meta_test, 0.0, 0.0);

/// Minimal recursive-descent JSON reader — just enough for the manifest
/// our own generator emits (objects, arrays, strings, numbers). Kept
/// local so the test suite needs no third-party dependency.
class JsonParser {
public:
  struct Value {
    enum class Kind { Object, Array, String, Number } Tag = Kind::Object;
    std::map<std::string, Value> Object;
    std::vector<Value> Array;
    std::string String;
    double Number = 0;
  };

  explicit JsonParser(std::string Text) : Text(std::move(Text)) {}

  Value parse() {
    Value V = parseValue();
    skipWs();
    if (Pos != Text.size())
      fail("trailing characters");
    return V;
  }

  const std::string &error() const { return Error; }
  bool failed() const { return !Error.empty(); }

private:
  std::string Text;
  size_t Pos = 0;
  std::string Error;

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at offset " + std::to_string(Pos);
    Pos = Text.size(); // Stop making progress.
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Value parseValue() {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return {};
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"')
      return parseString();
    return parseNumber();
  }

  Value parseObject() {
    Value V;
    V.Tag = Value::Kind::Object;
    consume('{');
    if (consume('}'))
      return V;
    do {
      Value Key = parseString();
      if (!consume(':'))
        fail("expected ':'");
      V.Object[Key.String] = parseValue();
    } while (consume(','));
    if (!consume('}'))
      fail("expected '}'");
    return V;
  }

  Value parseArray() {
    Value V;
    V.Tag = Value::Kind::Array;
    consume('[');
    if (consume(']'))
      return V;
    do {
      V.Array.push_back(parseValue());
    } while (consume(','));
    if (!consume(']'))
      fail("expected ']'");
    return V;
  }

  Value parseString() {
    Value V;
    V.Tag = Value::Kind::String;
    if (!consume('"')) {
      fail("expected string");
      return V;
    }
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\' && Pos < Text.size()) {
        char E = Text[Pos++];
        switch (E) {
        case 'n': C = '\n'; break;
        case 't': C = '\t'; break;
        default: C = E; break; // \" \\ \/ and anything exotic.
        }
      }
      V.String += C;
    }
    if (Pos >= Text.size())
      fail("unterminated string");
    else
      ++Pos; // Closing quote.
    return V;
  }

  Value parseNumber() {
    Value V;
    V.Tag = Value::Kind::Number;
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '-' || Text[Pos] == '+' || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E'))
      ++Pos;
    if (Pos == Start) {
      fail("expected number");
      return V;
    }
    V.Number = std::stod(Text.substr(Start, Pos - Start));
    return V;
  }
};

struct ManifestModule {
  std::string Name;
  double LineFloorPct = 0;
  double BranchFloorPct = 0;
  std::vector<std::string> Files;
};

/// Loads tests/harness/modules.json (freshness is manifest_check's job).
std::vector<ManifestModule> loadManifest(std::string &Error) {
  std::string Path =
      djx::testing::sourceRoot() + "/tests/harness/modules.json";
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open " + Path;
    return {};
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  JsonParser Parser(Buf.str());
  JsonParser::Value Root = Parser.parse();
  if (Parser.failed()) {
    Error = "parse error in " + Path + ": " + Parser.error();
    return {};
  }
  std::vector<ManifestModule> Modules;
  auto It = Root.Object.find("modules");
  if (It == Root.Object.end()) {
    Error = Path + " has no \"modules\" key";
    return {};
  }
  for (const auto &[Name, Body] : It->second.Object) {
    ManifestModule M;
    M.Name = Name;
    auto Num = [&](const char *Key) {
      auto F = Body.Object.find(Key);
      return F == Body.Object.end() ? 0.0 : F->second.Number;
    };
    M.LineFloorPct = Num("line_floor_pct");
    M.BranchFloorPct = Num("branch_floor_pct");
    auto F = Body.Object.find("files");
    if (F != Body.Object.end())
      for (const auto &Entry : F->second.Array)
        M.Files.push_back(Entry.String);
    Modules.push_back(std::move(M));
  }
  return Modules;
}

const std::vector<ManifestModule> &manifest() {
  static std::string Error;
  static std::vector<ManifestModule> Modules = loadManifest(Error);
  EXPECT_TRUE(Error.empty()) << Error;
  return Modules;
}

/// Source files the harness requires an owner for: everything under src/
/// plus the CLI entry point. Generated/binary artifacts do not appear in
/// those trees.
std::vector<std::string> gateableSources() {
  std::string Root = djx::testing::sourceRoot();
  std::vector<std::string> Out;
  for (const auto &Entry : fs::recursive_directory_iterator(Root + "/src")) {
    if (!Entry.is_regular_file())
      continue;
    std::string Ext = Entry.path().extension().string();
    if (Ext != ".cpp" && Ext != ".h")
      continue;
    Out.push_back(fs::relative(Entry.path(), Root).generic_string());
  }
  Out.push_back("tools/djxperf.cpp");
  return Out;
}

TEST(HarnessMeta, ManifestLoadsAndIsNonTrivial) {
  const auto &Modules = manifest();
  // The repo ships >15 suites; an empty or tiny manifest means the
  // generator lexed nothing and the harness is wiring a ghost.
  EXPECT_GE(Modules.size(), 15u);
}

TEST(HarnessMeta, NoFileIsOwnedByTwoModules) {
  std::map<std::string, std::vector<std::string>> Owners;
  for (const auto &M : manifest())
    for (const auto &File : M.Files)
      Owners[File].push_back(M.Name);
  for (const auto &[File, Who] : Owners) {
    std::string List;
    for (const auto &W : Who)
      List += (List.empty() ? "" : ", ") + W;
    EXPECT_EQ(Who.size(), 1u)
        << File << " is owned by multiple modules (" << List
        << "); coverage credit must have a single accountable suite";
  }
}

TEST(HarnessMeta, EveryGateableSourceFileIsOwned) {
  std::set<std::string> Owned;
  for (const auto &M : manifest())
    Owned.insert(M.Files.begin(), M.Files.end());
  for (const auto &File : gateableSources())
    EXPECT_TRUE(Owned.count(File))
        << File << " is owned by no test module; add it to the suite "
        << "that exercises it (DJX_TEST_MODULE in tests/*_test.cpp) and "
        << "regenerate the manifest";
}

TEST(HarnessMeta, OwnedFilesAllExist) {
  std::string Root = djx::testing::sourceRoot();
  for (const auto &M : manifest())
    for (const auto &File : M.Files)
      EXPECT_TRUE(fs::is_regular_file(Root + "/" + File))
          << M.Name << " owns " << File << " which does not exist";
}

TEST(HarnessMeta, EveryModuleHasAMatchingSuiteSource) {
  std::string Root = djx::testing::sourceRoot();
  for (const auto &M : manifest())
    EXPECT_TRUE(fs::is_regular_file(Root + "/tests/" + M.Name + ".cpp"))
        << "manifest module " << M.Name << " has no tests/" << M.Name
        << ".cpp — regenerate the manifest";
}

TEST(HarnessMeta, ThisSuiteIsInTheManifest) {
  bool Found = false;
  for (const auto &M : manifest())
    Found = Found || M.Name == "harness_meta_test";
  EXPECT_TRUE(Found) << "the manifest is stale: it predates this suite";
}

} // namespace
