//===- html_report_test.cpp - Unit tests for the HTML renderer ---------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "core/HtmlReport.h"

#include <gtest/gtest.h>

#include <fstream>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(html_report_test, 75.0, 40.0,
    "src/core/HtmlReport.cpp",
    "src/core/HtmlReport.h");

MergedProfile sampleProfile(MethodRegistry &MR) {
  MethodId Alloc = MR.registerMethod("Pool", "create", {{0, 42}});
  MethodId Use = MR.registerMethod("Worker", "use", {{0, 99}});
  ThreadProfile P(1, "t");
  CctNodeId AN = P.cct().insertPath({{Alloc, 0}});
  CctNodeId UN = P.cct().insertPath({{Use, 0}});
  P.recordAllocation(AN, "Buf<x>[]", 2048);
  for (int I = 0; I < 4; ++I)
    P.recordObjectSample(AllocKey{1, AN}, "Buf<x>[]",
                         PerfEventKind::L1Miss, UN, I == 0);
  P.recordCodeSample(UN, PerfEventKind::L1Miss);
  return mergeProfiles({&P});
}

TEST(HtmlReport, ContainsGroupsPathsAndMetrics) {
  MethodRegistry MR;
  MergedProfile P = sampleProfile(MR);
  std::string Html = renderHtmlReport(P, MR);
  EXPECT_NE(Html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(Html.find("Pool.create:42"), std::string::npos);
  EXPECT_NE(Html.find("Worker.use:99"), std::string::npos);
  EXPECT_NE(Html.find("100.0%"), std::string::npos);
  EXPECT_NE(Html.find("code-centric"), std::string::npos);
  EXPECT_NE(Html.find("NUMA remote"), std::string::npos);
}

TEST(HtmlReport, EscapesTypeNames) {
  MethodRegistry MR;
  MergedProfile P = sampleProfile(MR);
  std::string Html = renderHtmlReport(P, MR);
  EXPECT_EQ(Html.find("Buf<x>"), std::string::npos)
      << "raw angle brackets must be escaped";
  EXPECT_NE(Html.find("Buf&lt;x&gt;"), std::string::npos);
}

TEST(HtmlReport, EmptyProfileRendersPlaceholder) {
  MethodRegistry MR;
  MergedProfile P;
  std::string Html = renderHtmlReport(P, MR);
  EXPECT_NE(Html.find("no object groups"), std::string::npos);
}

TEST(HtmlReport, RespectsTopGroupsAndTitle) {
  MethodRegistry MR;
  MergedProfile P = sampleProfile(MR);
  ReportOptions Opts;
  Opts.TopGroups = 0;
  std::string Html = renderHtmlReport(P, MR, Opts, "My <Run>");
  EXPECT_NE(Html.find("<title>My &lt;Run&gt;</title>"), std::string::npos);
  EXPECT_EQ(Html.find("#1 "), std::string::npos);
}

TEST(HtmlReport, WriteToFileRoundTrips) {
  MethodRegistry MR;
  MergedProfile P = sampleProfile(MR);
  std::string Path = ::testing::TempDir() + "/djx_report.html";
  ASSERT_TRUE(writeHtmlReport(P, MR, Path));
  std::ifstream In(Path);
  std::string Contents((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(Contents, renderHtmlReport(P, MR));
  EXPECT_FALSE(writeHtmlReport(P, MR, "/nonexistent-dir/x.html"));
}

} // namespace
