//===- index_concurrency_test.cpp - Sharded live-object index under threads -===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises LiveObjectIndex from concurrent host threads — insert, lookup,
/// erase, and recordMove racing across shards — followed by a safepointed
/// applyRelocations(), including the attach-mode UnknownIdentity path.
/// Also covers the epoch-snapshot read path: lock-free lookupSnapshot()
/// racing inserts/erases/relocation batches, hint-memo correctness,
/// out-of-order rebuilds, and the zero-lock guarantee of both the
/// snapshot lookups and the snapshot-read diagnostics. Run under the tsan
/// preset these tests double as the data-race check for the index's
/// sharded locking and its lock-free epoch publication.
///
//===----------------------------------------------------------------------===//

#include "core/LiveObjectIndex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(index_concurrency_test, 0.0, 0.0);

constexpr unsigned kThreads = 4;
constexpr uint64_t kSpan = 1 << 20; // 1 MiB address range per shard.
constexpr uint64_t kObjSize = 64;
constexpr unsigned kObjsPerThread = 2000;

uint64_t addrOf(unsigned Thread, unsigned I) {
  // Objects live in "their" thread's shard, 64-byte spaced.
  return static_cast<uint64_t>(Thread) * kSpan + 64 + I * kObjSize;
}

TEST(IndexConcurrency, ConcurrentInsertLookupEraseAcrossShards) {
  LiveObjectIndex Index;
  Index.configureShards(kThreads, kSpan);

  std::vector<std::thread> Workers;
  std::atomic<uint64_t> Hits{0};
  for (unsigned T = 0; T < kThreads; ++T) {
    Workers.emplace_back([&, T] {
      // Phase 1: populate own range; interleave lookups into *all* ranges
      // (cross-shard readers racing with writers).
      for (unsigned I = 0; I < kObjsPerThread; ++I) {
        Index.insert(addrOf(T, I), kObjSize,
                     LiveObject{T + 1, kCctRoot, 0, kObjSize});
        if (auto E = Index.lookup(addrOf(T, I) + kObjSize / 2)) {
          EXPECT_EQ(E->AllocThread, T + 1);
          Hits.fetch_add(1, std::memory_order_relaxed);
        }
        // Foreign lookups may hit or miss depending on progress; they
        // must never crash or corrupt.
        Index.lookup(addrOf((T + 1) % kThreads, I));
      }
      // Phase 2: erase every other object in own range.
      for (unsigned I = 0; I < kObjsPerThread; I += 2)
        EXPECT_TRUE(Index.erase(addrOf(T, I)));
    });
  }
  for (std::thread &W : Workers)
    W.join();

  // Every own-range lookup must have hit.
  EXPECT_EQ(Hits.load(), uint64_t(kThreads) * kObjsPerThread);
  EXPECT_EQ(Index.liveCount(), size_t(kThreads) * kObjsPerThread / 2);
  EXPECT_EQ(Index.inserts(), uint64_t(kThreads) * kObjsPerThread);
  // Survivors resolve with the right identity; erased ones miss.
  for (unsigned T = 0; T < kThreads; ++T) {
    auto Live = Index.lookup(addrOf(T, 1));
    ASSERT_TRUE(Live.has_value());
    EXPECT_EQ(Live->AllocThread, T + 1);
    EXPECT_FALSE(Index.lookup(addrOf(T, 0)).has_value());
  }
}

TEST(IndexConcurrency, BoundaryCrossingIntervalResolvesFromNextShard) {
  LiveObjectIndex Index;
  Index.configureShards(2, kSpan);
  // Interval starting just below the shard boundary, extending past it.
  uint64_t Start = kSpan - 32;
  Index.insert(Start, 128, LiveObject{7, kCctRoot, 0, 128});
  // An address inside the interval but mapped to shard 1 must still
  // resolve (fallback probe of the preceding shard).
  auto E = Index.lookup(kSpan + 16);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->AllocThread, 7u);
}

TEST(IndexConcurrency, SafepointedApplyRelocationsWithConcurrentReaders) {
  LiveObjectIndex Index;
  Index.configureShards(kThreads, kSpan);

  for (unsigned T = 0; T < kThreads; ++T)
    for (unsigned I = 0; I < 512; ++I)
      Index.insert(addrOf(T, I), kObjSize,
                   LiveObject{T + 1, kCctRoot, 0, kObjSize});

  // Record cross-shard moves: thread T's objects slide into the range of
  // shard (T+1)%kThreads, as a compacting GC could produce.
  for (unsigned T = 0; T < kThreads; ++T)
    for (unsigned I = 0; I < 512; ++I)
      Index.recordMove(addrOf(T, I), addrOf((T + 1) % kThreads, I) + 8,
                       kObjSize);
  EXPECT_EQ(Index.pendingRelocations(), size_t(kThreads) * 512);

  // Readers race with the batch application (applyRelocations holds every
  // shard lock, so they serialize against it but stay data-race free).
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Readers;
  for (unsigned T = 0; T < 2; ++T)
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire))
        for (unsigned I = 0; I < 512; I += 7)
          Index.lookup(addrOf(I % kThreads, I));
    });

  LiveObject Unknown; // AllocThread 0 / kCctRoot = unknown provenance.
  unsigned Applied = Index.applyRelocations(Unknown);
  Stop.store(true, std::memory_order_release);
  for (std::thread &R : Readers)
    R.join();

  EXPECT_EQ(Applied, kThreads * 512u);
  EXPECT_EQ(Index.pendingRelocations(), 0u);
  EXPECT_EQ(Index.liveCount(), size_t(kThreads) * 512);
  // Old addresses are gone; new addresses carry the original identity.
  EXPECT_FALSE(Index.lookup(addrOf(0, 0)).has_value());
  for (unsigned T = 0; T < kThreads; ++T) {
    auto E = Index.lookup(addrOf((T + 1) % kThreads, 3) + 8);
    ASSERT_TRUE(E.has_value());
    EXPECT_EQ(E->AllocThread, T + 1);
  }
}

TEST(IndexConcurrency, ApplyRelocationsInsertsUnknownIdentityForMissed) {
  LiveObjectIndex Index;
  Index.configureShards(2, kSpan);
  // Attach mode: the mover was never inserted (allocated before attach).
  Index.recordMove(/*OldAddr=*/4096, /*NewAddr=*/kSpan + 4096, 256);
  LiveObject Unknown;
  EXPECT_EQ(Index.applyRelocations(Unknown), 1u);
  auto E = Index.lookup(kSpan + 4096 + 100);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->AllocThread, 0u);
  EXPECT_EQ(E->AllocNode, kCctRoot);
  EXPECT_EQ(E->Size, 256u);
}

// --- Epoch-snapshot read path -----------------------------------------------

TEST(IndexSnapshot, LookupMatchesSplayAndTakesNoLocks) {
  LiveObjectIndex Index;
  Index.configureShards(kThreads, kSpan);
  for (unsigned T = 0; T < kThreads; ++T)
    for (unsigned I = 0; I < 512; ++I)
      Index.insert(addrOf(T, I), kObjSize,
                   LiveObject{T + 1, kCctRoot, 0, kObjSize});
  for (unsigned T = 0; T < kThreads; ++T)
    for (unsigned I = 0; I < 512; I += 3)
      Index.erase(addrOf(T, I));

  uint64_t LocksBefore = Index.lockAcquisitions();
  LiveObjectIndex::SnapshotHint Hint;
  for (unsigned T = 0; T < kThreads; ++T)
    for (unsigned I = 0; I < 512; ++I) {
      auto Snap = Index.lookupSnapshot(addrOf(T, I) + kObjSize / 2, &Hint);
      if (I % 3 == 0) {
        EXPECT_FALSE(Snap.has_value());
      } else {
        ASSERT_TRUE(Snap.has_value());
        EXPECT_EQ(Snap->AllocThread, T + 1);
      }
    }
  // Addresses beyond each shard's populated run miss.
  for (unsigned T = 0; T < kThreads; ++T)
    EXPECT_FALSE(Index.lookupSnapshot(addrOf(T, 600)).has_value());
  EXPECT_EQ(Index.lockAcquisitions(), LocksBefore)
      << "snapshot lookups must acquire zero index locks";
  EXPECT_GT(Index.lookups(), 0u);
  EXPECT_GT(Index.lookupMisses(), 0u);

  // The locked splay path agrees on every probe (checked after the
  // lock-free pass so the lock counter assertion above stays clean).
  for (unsigned T = 0; T < kThreads; ++T)
    for (unsigned I = 0; I < 512; ++I) {
      uint64_t A = addrOf(T, I) + kObjSize / 2;
      EXPECT_EQ(Index.lookupSnapshot(A).has_value(),
                Index.lookup(A).has_value());
    }
}

TEST(IndexSnapshot, DiagnosticsTakeNoLocks) {
  LiveObjectIndex Index;
  Index.configureShards(2, kSpan);
  Index.insert(addrOf(0, 0), kObjSize, LiveObject{1, kCctRoot, 0, kObjSize});
  Index.insert(addrOf(1, 0), kObjSize, LiveObject{2, kCctRoot, 0, kObjSize});
  Index.recordMove(addrOf(0, 0), addrOf(0, 1), kObjSize);
  uint64_t LocksBefore = Index.lockAcquisitions();
  EXPECT_EQ(Index.liveCount(), 2u);
  EXPECT_EQ(Index.pendingRelocations(), 1u);
  EXPECT_GT(Index.memoryFootprint(), 0u);
  EXPECT_EQ(Index.lockAcquisitions(), LocksBefore)
      << "reporting-path diagnostics must not contend with samples";
  Index.discardRelocations();
}

TEST(IndexSnapshot, OutOfOrderAndEvictingInsertsRebuildCorrectly) {
  LiveObjectIndex Index; // Single shard: everything lands together.
  // Descending inserts break the sorted-append invariant every time.
  for (int I = 15; I >= 0; --I)
    Index.insert(1024 + static_cast<uint64_t>(I) * 128, 64,
                 LiveObject{static_cast<uint64_t>(I + 1), kCctRoot, 0, 64});
  for (int I = 0; I < 16; ++I) {
    auto E = Index.lookupSnapshot(1024 + static_cast<uint64_t>(I) * 128 + 8);
    ASSERT_TRUE(E.has_value());
    EXPECT_EQ(E->AllocThread, static_cast<uint64_t>(I + 1));
  }
  // Overlapping insert evicts two stale intervals (attach-mode
  // supersede); the snapshot must follow.
  Index.insert(1024 + 0 * 128, 256, LiveObject{99, kCctRoot, 0, 256});
  auto E = Index.lookupSnapshot(1024 + 130);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->AllocThread, 99u);
  // The gap after the surviving [1280, 1344) interval still misses.
  EXPECT_FALSE(Index.lookupSnapshot(1024 + 350).has_value());
}

TEST(IndexSnapshot, ReclaimRetiredEpochsKeepsOnlyThePublishedOne) {
  LiveObjectIndex Index;
  Index.configureShards(2, kSpan);
  // Enough appends to outgrow the initial capacity several times, plus
  // a relocation batch: multiple retired epochs accumulate per shard.
  for (unsigned T = 0; T < 2; ++T)
    for (unsigned I = 0; I < 300; ++I)
      Index.insert(addrOf(T, I), kObjSize,
                   LiveObject{T + 1, kCctRoot, 0, kObjSize});
  for (unsigned I = 0; I < 16; ++I)
    Index.recordMove(addrOf(0, I), addrOf(0, 400 + I), kObjSize);
  LiveObject Unknown;
  Index.applyRelocations(Unknown);
  EXPECT_GT(Index.retainedSnapshotBuffers(), 2u);

  Index.reclaimRetiredSnapshots(); // World-stopped by the test itself.
  EXPECT_EQ(Index.retainedSnapshotBuffers(), 2u);
  // The published epochs survive intact.
  for (unsigned T = 0; T < 2; ++T) {
    auto E = Index.lookupSnapshot(addrOf(T, 100) + 8);
    ASSERT_TRUE(E.has_value());
    EXPECT_EQ(E->AllocThread, T + 1);
  }
  auto Moved = Index.lookupSnapshot(addrOf(0, 400) + 8);
  ASSERT_TRUE(Moved.has_value());
  EXPECT_EQ(Moved->AllocThread, 1u);
}

TEST(IndexSnapshot, BoundaryCrossingIntervalResolvesFromNextShard) {
  LiveObjectIndex Index;
  Index.configureShards(2, kSpan);
  uint64_t Start = kSpan - 32;
  Index.insert(Start, 128, LiveObject{7, kCctRoot, 0, 128});
  auto E = Index.lookupSnapshot(kSpan + 16);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->AllocThread, 7u);
  // Hint from a preceding-shard hit must not poison later lookups.
  LiveObjectIndex::SnapshotHint Hint;
  ASSERT_TRUE(Index.lookupSnapshot(kSpan + 16, &Hint).has_value());
  EXPECT_FALSE(Index.lookupSnapshot(kSpan + 4096, &Hint).has_value());
}

TEST(IndexSnapshot, ConcurrentBatchedReadersDuringInsertErase) {
  LiveObjectIndex Index;
  Index.configureShards(kThreads, kSpan);

  // Pre-populate a stable prefix every reader can rely on.
  constexpr unsigned kStable = 256;
  for (unsigned T = 0; T < kThreads; ++T)
    for (unsigned I = 0; I < kStable; ++I)
      Index.insert(addrOf(T, I), kObjSize,
                   LiveObject{T + 1, kCctRoot, 0, kObjSize});

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> StableHits{0};
  std::vector<std::thread> Threads;
  // Writers: bump-ordered inserts past the stable prefix, then erases of
  // their own churn — the executor's per-shard mutation pattern.
  for (unsigned T = 0; T < kThreads / 2; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = kStable; I < kStable + kObjsPerThread; ++I) {
        Index.insert(addrOf(T, I), kObjSize,
                     LiveObject{T + 1, kCctRoot, 0, kObjSize});
        if (I % 2)
          Index.erase(addrOf(T, I));
      }
    });
  // Readers: sorted batches with a hint, across every shard, racing the
  // writers. Stable-prefix probes must always hit with the right
  // identity; churn probes may hit or miss but never misattribute.
  for (unsigned R = 0; R < 2; ++R)
    Threads.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire)) {
        LiveObjectIndex::SnapshotHint Hint;
        for (unsigned T = 0; T < kThreads; ++T)
          for (unsigned I = 0; I < kStable + 64; I += 5) {
            auto E = Index.lookupSnapshot(addrOf(T, I) + 8, &Hint);
            if (I < kStable) {
              if (E && E->AllocThread == T + 1)
                StableHits.fetch_add(1, std::memory_order_relaxed);
              else
                ADD_FAILURE() << "stable object misresolved";
            } else if (E) {
              EXPECT_EQ(E->AllocThread, T + 1);
            }
          }
      }
    });
  for (unsigned T = 0; T < kThreads / 2; ++T)
    Threads[T].join();
  Stop.store(true, std::memory_order_release);
  for (size_t T = kThreads / 2; T < Threads.size(); ++T)
    Threads[T].join();
  EXPECT_GT(StableHits.load(), 0u);
}

TEST(IndexSnapshot, RelocationBatchRepublishesIncludingUnknowns) {
  LiveObjectIndex Index;
  Index.configureShards(2, kSpan);
  for (unsigned I = 0; I < 64; ++I)
    Index.insert(addrOf(0, I), kObjSize,
                 LiveObject{1, kCctRoot, 0, kObjSize});
  // Known movers cross into shard 1; one mover was never tracked
  // (attach-mode miss) and must surface as UnknownIdentity.
  for (unsigned I = 0; I < 64; ++I)
    Index.recordMove(addrOf(0, I), addrOf(1, I), kObjSize);
  Index.recordMove(/*OldAddr=*/kSpan - 4096, /*NewAddr=*/addrOf(1, 100),
                   256);

  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    LiveObjectIndex::SnapshotHint Hint;
    while (!Stop.load(std::memory_order_acquire))
      for (unsigned I = 0; I < 64; I += 3) {
        Index.lookupSnapshot(addrOf(0, I) + 4, &Hint);
        Index.lookupSnapshot(addrOf(1, I) + 4, &Hint);
      }
  });
  LiveObject Unknown;
  EXPECT_EQ(Index.applyRelocations(Unknown), 65u);
  Stop.store(true, std::memory_order_release);
  Reader.join();

  EXPECT_FALSE(Index.lookupSnapshot(addrOf(0, 0) + 4).has_value());
  for (unsigned I = 0; I < 64; ++I) {
    auto E = Index.lookupSnapshot(addrOf(1, I) + 4);
    ASSERT_TRUE(E.has_value());
    EXPECT_EQ(E->AllocThread, 1u);
  }
  auto U = Index.lookupSnapshot(addrOf(1, 100) + 16);
  ASSERT_TRUE(U.has_value());
  EXPECT_EQ(U->AllocThread, 0u);
  EXPECT_EQ(U->AllocNode, kCctRoot);
  EXPECT_EQ(U->Size, 256u);
}

TEST(IndexConcurrency, SingleShardBehavesLikeOriginalDesign) {
  LiveObjectIndex Index; // Default: one shard, unbounded span.
  EXPECT_EQ(Index.numShards(), 1u);
  Index.insert(1024, 512, LiveObject{1, kCctRoot, 0, 512});
  EXPECT_TRUE(Index.lookup(1500).has_value());
  EXPECT_EQ(Index.lookups(), 1u);
  EXPECT_EQ(Index.lookupMisses(), 0u);
  Index.recordMove(1024, 8192, 512);
  LiveObject Unknown;
  EXPECT_EQ(Index.applyRelocations(Unknown), 1u);
  EXPECT_FALSE(Index.lookup(1025).has_value());
  auto E = Index.lookup(8200);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->AllocThread, 1u);
}

} // namespace
