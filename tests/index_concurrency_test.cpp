//===- index_concurrency_test.cpp - Sharded live-object index under threads -===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises LiveObjectIndex from concurrent host threads — insert, lookup,
/// erase, and recordMove racing across shards — followed by a safepointed
/// applyRelocations(), including the attach-mode UnknownIdentity path.
/// Run under the tsan preset these tests double as the data-race check for
/// the index's sharded locking.
///
//===----------------------------------------------------------------------===//

#include "core/LiveObjectIndex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace djx;

namespace {

constexpr unsigned kThreads = 4;
constexpr uint64_t kSpan = 1 << 20; // 1 MiB address range per shard.
constexpr uint64_t kObjSize = 64;
constexpr unsigned kObjsPerThread = 2000;

uint64_t addrOf(unsigned Thread, unsigned I) {
  // Objects live in "their" thread's shard, 64-byte spaced.
  return static_cast<uint64_t>(Thread) * kSpan + 64 + I * kObjSize;
}

TEST(IndexConcurrency, ConcurrentInsertLookupEraseAcrossShards) {
  LiveObjectIndex Index;
  Index.configureShards(kThreads, kSpan);

  std::vector<std::thread> Workers;
  std::atomic<uint64_t> Hits{0};
  for (unsigned T = 0; T < kThreads; ++T) {
    Workers.emplace_back([&, T] {
      // Phase 1: populate own range; interleave lookups into *all* ranges
      // (cross-shard readers racing with writers).
      for (unsigned I = 0; I < kObjsPerThread; ++I) {
        Index.insert(addrOf(T, I), kObjSize,
                     LiveObject{T + 1, kCctRoot, 0, kObjSize});
        if (auto E = Index.lookup(addrOf(T, I) + kObjSize / 2)) {
          EXPECT_EQ(E->AllocThread, T + 1);
          Hits.fetch_add(1, std::memory_order_relaxed);
        }
        // Foreign lookups may hit or miss depending on progress; they
        // must never crash or corrupt.
        Index.lookup(addrOf((T + 1) % kThreads, I));
      }
      // Phase 2: erase every other object in own range.
      for (unsigned I = 0; I < kObjsPerThread; I += 2)
        EXPECT_TRUE(Index.erase(addrOf(T, I)));
    });
  }
  for (std::thread &W : Workers)
    W.join();

  // Every own-range lookup must have hit.
  EXPECT_EQ(Hits.load(), uint64_t(kThreads) * kObjsPerThread);
  EXPECT_EQ(Index.liveCount(), size_t(kThreads) * kObjsPerThread / 2);
  EXPECT_EQ(Index.inserts(), uint64_t(kThreads) * kObjsPerThread);
  // Survivors resolve with the right identity; erased ones miss.
  for (unsigned T = 0; T < kThreads; ++T) {
    auto Live = Index.lookup(addrOf(T, 1));
    ASSERT_TRUE(Live.has_value());
    EXPECT_EQ(Live->AllocThread, T + 1);
    EXPECT_FALSE(Index.lookup(addrOf(T, 0)).has_value());
  }
}

TEST(IndexConcurrency, BoundaryCrossingIntervalResolvesFromNextShard) {
  LiveObjectIndex Index;
  Index.configureShards(2, kSpan);
  // Interval starting just below the shard boundary, extending past it.
  uint64_t Start = kSpan - 32;
  Index.insert(Start, 128, LiveObject{7, kCctRoot, 0, 128});
  // An address inside the interval but mapped to shard 1 must still
  // resolve (fallback probe of the preceding shard).
  auto E = Index.lookup(kSpan + 16);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->AllocThread, 7u);
}

TEST(IndexConcurrency, SafepointedApplyRelocationsWithConcurrentReaders) {
  LiveObjectIndex Index;
  Index.configureShards(kThreads, kSpan);

  for (unsigned T = 0; T < kThreads; ++T)
    for (unsigned I = 0; I < 512; ++I)
      Index.insert(addrOf(T, I), kObjSize,
                   LiveObject{T + 1, kCctRoot, 0, kObjSize});

  // Record cross-shard moves: thread T's objects slide into the range of
  // shard (T+1)%kThreads, as a compacting GC could produce.
  for (unsigned T = 0; T < kThreads; ++T)
    for (unsigned I = 0; I < 512; ++I)
      Index.recordMove(addrOf(T, I), addrOf((T + 1) % kThreads, I) + 8,
                       kObjSize);
  EXPECT_EQ(Index.pendingRelocations(), size_t(kThreads) * 512);

  // Readers race with the batch application (applyRelocations holds every
  // shard lock, so they serialize against it but stay data-race free).
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Readers;
  for (unsigned T = 0; T < 2; ++T)
    Readers.emplace_back([&] {
      while (!Stop.load(std::memory_order_acquire))
        for (unsigned I = 0; I < 512; I += 7)
          Index.lookup(addrOf(I % kThreads, I));
    });

  LiveObject Unknown; // AllocThread 0 / kCctRoot = unknown provenance.
  unsigned Applied = Index.applyRelocations(Unknown);
  Stop.store(true, std::memory_order_release);
  for (std::thread &R : Readers)
    R.join();

  EXPECT_EQ(Applied, kThreads * 512u);
  EXPECT_EQ(Index.pendingRelocations(), 0u);
  EXPECT_EQ(Index.liveCount(), size_t(kThreads) * 512);
  // Old addresses are gone; new addresses carry the original identity.
  EXPECT_FALSE(Index.lookup(addrOf(0, 0)).has_value());
  for (unsigned T = 0; T < kThreads; ++T) {
    auto E = Index.lookup(addrOf((T + 1) % kThreads, 3) + 8);
    ASSERT_TRUE(E.has_value());
    EXPECT_EQ(E->AllocThread, T + 1);
  }
}

TEST(IndexConcurrency, ApplyRelocationsInsertsUnknownIdentityForMissed) {
  LiveObjectIndex Index;
  Index.configureShards(2, kSpan);
  // Attach mode: the mover was never inserted (allocated before attach).
  Index.recordMove(/*OldAddr=*/4096, /*NewAddr=*/kSpan + 4096, 256);
  LiveObject Unknown;
  EXPECT_EQ(Index.applyRelocations(Unknown), 1u);
  auto E = Index.lookup(kSpan + 4096 + 100);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->AllocThread, 0u);
  EXPECT_EQ(E->AllocNode, kCctRoot);
  EXPECT_EQ(E->Size, 256u);
}

TEST(IndexConcurrency, SingleShardBehavesLikeOriginalDesign) {
  LiveObjectIndex Index; // Default: one shard, unbounded span.
  EXPECT_EQ(Index.numShards(), 1u);
  Index.insert(1024, 512, LiveObject{1, kCctRoot, 0, 512});
  EXPECT_TRUE(Index.lookup(1500).has_value());
  EXPECT_EQ(Index.lookups(), 1u);
  EXPECT_EQ(Index.lookupMisses(), 0u);
  Index.recordMove(1024, 8192, 512);
  LiveObject Unknown;
  EXPECT_EQ(Index.applyRelocations(Unknown), 1u);
  EXPECT_FALSE(Index.lookup(1025).has_value());
  auto E = Index.lookup(8200);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->AllocThread, 1u);
}

} // namespace
