//===- instrument_test.cpp - Unit tests for src/instrument --------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bytecode/MethodBuilder.h"
#include "bytecode/Verifier.h"
#include "instrument/AllocationInstrumenter.h"
#include "instrument/MethodTransformer.h"
#include "interp/Interpreter.h"
#include "workloads/BytecodePrograms.h"

#include <gtest/gtest.h>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(instrument_test, 90.0, 55.0,
    "src/instrument/AllocationInstrumenter.cpp",
    "src/instrument/AllocationInstrumenter.h",
    "src/instrument/MethodTransformer.cpp",
    "src/instrument/MethodTransformer.h");

TEST(MethodTransformer, IdentityVisitPreservesCode) {
  MethodBuilder B("C", "m", 0, 1);
  Label L = B.newLabel();
  B.iconst(1).ifNe(L).iconst(2).pop().bind(L).ret();
  BytecodeMethod M = B.build();
  std::vector<Instruction> Before = M.Code;
  int64_t Added = transformMethod(
      M, [](const Instruction &I, uint32_t, std::vector<Instruction> &Out) {
        Out.push_back(I);
      });
  EXPECT_EQ(Added, 0);
  ASSERT_EQ(M.Code.size(), Before.size());
  for (size_t I = 0; I < Before.size(); ++I) {
    EXPECT_EQ(M.Code[I].Op, Before[I].Op);
    EXPECT_EQ(M.Code[I].A, Before[I].A);
  }
}

TEST(MethodTransformer, ExpansionRemapsBranchTargets) {
  // goto over an expanded instruction must land on the same logical spot.
  MethodBuilder B("C", "m", 0, 0);
  Label L = B.newLabel();
  B.jmp(L);      // 0: goto 3
  B.iconst(1);   // 1 (dead)
  B.pop();       // 2 (dead)
  B.bind(L);
  B.ret();       // 3
  BytecodeMethod M = B.build();
  int64_t Added = transformMethod(
      M, [](const Instruction &I, uint32_t, std::vector<Instruction> &Out) {
        if (I.Op == Opcode::IConst) { // Expand 1 -> 3 instructions.
          Out.push_back(Instruction{Opcode::Nop, 0, 0});
          Out.push_back(I);
          Out.push_back(Instruction{Opcode::Nop, 0, 0});
        } else {
          Out.push_back(I);
        }
      });
  EXPECT_EQ(Added, 2);
  EXPECT_EQ(M.Code[0].Op, Opcode::Goto);
  EXPECT_EQ(M.Code[0].A, 5); // Old 3 -> new 5.
  EXPECT_EQ(M.Code[5].Op, Opcode::Return);
  EXPECT_TRUE(verifyMethod(M).ok());
}

TEST(MethodTransformer, RemapsLineTable) {
  MethodBuilder B("C", "m", 0, 0);
  B.line(10).iconst(1);
  B.line(11).pop();
  B.ret();
  BytecodeMethod M = B.build();
  transformMethod(
      M, [](const Instruction &I, uint32_t, std::vector<Instruction> &Out) {
        Out.push_back(Instruction{Opcode::Nop, 0, 0});
        Out.push_back(I);
      });
  ASSERT_EQ(M.LineTable.size(), 2u);
  EXPECT_EQ(M.LineTable[0].Bci, 0u); // Line marker moves to the Nop.
  EXPECT_EQ(M.LineTable[1].Bci, 2u);
}

TEST(AllocationInstrumenter, WrapsAllFourAllocationOpcodes) {
  JavaVm Vm;
  BytecodeProgram P;
  TypeId Obj = Vm.types().defineClass("Obj", 16);
  TypeId IntArr = Vm.types().intArray();
  TypeId ObjArr = Vm.types().refArrayType("Obj");
  MethodBuilder B("C", "m", 0, 4);
  B.line(100).newObject(Obj).astore(0);
  B.line(101).iconst(4).newArray(IntArr).astore(1);
  B.line(102).iconst(4).aNewArray(ObjArr).astore(2);
  B.line(103).iconst(2).iconst(2).multiANewArray(IntArr, 2).astore(3);
  B.ret();
  ClassFile C;
  C.Name = "C";
  C.Methods.push_back(B.build());
  P.addClass(std::move(C));
  P.load(Vm);

  AllocationSiteTable Sites;
  unsigned N = instrumentProgram(P, Sites);
  EXPECT_EQ(N, 4u);
  ASSERT_EQ(Sites.size(), 4u);
  EXPECT_EQ(Sites.get(0).AllocOp, Opcode::New);
  EXPECT_EQ(Sites.get(0).Line, 100u);
  EXPECT_EQ(Sites.get(1).AllocOp, Opcode::NewArray);
  EXPECT_EQ(Sites.get(1).Line, 101u);
  EXPECT_EQ(Sites.get(2).AllocOp, Opcode::ANewArray);
  EXPECT_EQ(Sites.get(3).AllocOp, Opcode::MultiANewArray);
  EXPECT_EQ(Sites.get(3).Line, 103u);

  // Each allocation is bracketed pre/post.
  const BytecodeMethod &M = P.method(0);
  for (size_t I = 0; I < M.Code.size(); ++I) {
    if (!isAllocation(M.Code[I].Op))
      continue;
    ASSERT_GT(I, 0u);
    EXPECT_EQ(M.Code[I - 1].Op, Opcode::AllocHookPre);
    EXPECT_EQ(M.Code[I + 1].Op, Opcode::AllocHookPost);
    EXPECT_EQ(M.Code[I - 1].A, M.Code[I + 1].A) << "site ids must match";
  }
  EXPECT_TRUE(verifyMethod(M).ok());
}

TEST(AllocationInstrumenter, PreservesProgramSemantics) {
  // The batik bytecode program must compute the same result before and
  // after instrumentation.
  VmConfig Cfg;
  Cfg.HeapBytes = 4 << 20;
  auto RunIt = [&Cfg](bool Instrument) -> uint64_t {
    JavaVm Vm(Cfg);
    BytecodeProgram P = buildBatikProgram(Vm.types());
    P.load(Vm);
    AllocationSiteTable Sites;
    if (Instrument)
      instrumentProgram(P, Sites);
    JavaThread &T = Vm.startThread("t", 0);
    Interpreter I(Vm, P, T);
    I.run("Main.run", {Value::fromInt(20), Value::fromInt(64)});
    return Vm.heap().allocationsCount();
  };
  EXPECT_EQ(RunIt(false), RunIt(true));
}

TEST(AllocationInstrumenter, SiteIdsAreStableAcrossMethods) {
  JavaVm Vm;
  BytecodeProgram P = buildBatikProgram(Vm.types());
  P.load(Vm);
  AllocationSiteTable Sites;
  unsigned N = instrumentProgram(P, Sites);
  EXPECT_EQ(N, 1u); // Only makeRoom allocates.
  const AllocationSite &S = Sites.get(0);
  EXPECT_EQ(Vm.methods().qualifiedName(S.Method),
            "ExtendedGeneralPath.makeRoom");
  EXPECT_EQ(S.Line, 743u);
}

TEST(AllocationInstrumenter, LoopAllocationFiresHookPerIteration) {
  VmConfig Cfg;
  Cfg.HeapBytes = 4 << 20;
  JavaVm Vm(Cfg);
  BytecodeProgram P = buildBatikProgram(Vm.types());
  P.load(Vm);
  AllocationSiteTable Sites;
  instrumentProgram(P, Sites);
  JavaThread &T = Vm.startThread("t", 0);
  Interpreter I(Vm, P, T);
  int Hooks = 0;
  AllocationHooks H;
  H.Post = [&](uint64_t, ObjectRef) { ++Hooks; };
  I.setAllocationHooks(std::move(H));
  I.run("Main.run", {Value::fromInt(17), Value::fromInt(32)});
  EXPECT_EQ(Hooks, 17);
}

TEST(AllocationInstrumenter, LusearchProgramInstrumentable) {
  JavaVm Vm;
  BytecodeProgram P = buildLusearchProgram(Vm.types());
  P.load(Vm);
  AllocationSiteTable Sites;
  unsigned N = instrumentProgram(P, Sites);
  EXPECT_EQ(N, 1u);
  EXPECT_EQ(Sites.get(0).AllocOp, Opcode::New);
  JavaThread &T = Vm.startThread("t", 0);
  Interpreter I(Vm, P, T);
  auto R = I.run("Main.run", {Value::fromInt(10)});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->asInt(), 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9);
}

} // namespace
