//===- integration_test.cpp - Cross-module behaviour of the profiler ---------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end checks of the paper's claims: accuracy on known bugs (§6),
/// the Figure 1 object-vs-code-centric flip, GC-interference handling
/// (§4.5), NUMA diagnosis (§4.3), attach mode (§5.1), the size filter
/// trade-off, and the bytecode-instrumentation pathway (§4.1).
///
//===----------------------------------------------------------------------===//

#include "core/DjxPerf.h"
#include "core/Report.h"
#include "instrument/AllocationInstrumenter.h"
#include "workloads/AccuracyCases.h"
#include "workloads/BytecodePrograms.h"
#include "workloads/CaseStudies.h"
#include "workloads/Figure1.h"
#include "workloads/Insignificant.h"
#include "workloads/Kernels.h"
#include "workloads/Suites.h"

#include <gtest/gtest.h>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(integration_test, 0.0, 0.0);

/// Returns the qualified name + line of a merged group's allocation leaf.
std::string allocLeafName(const MergedProfile &M, const MergedGroup &G,
                          const MethodRegistry &MR) {
  auto Path = M.Tree.path(G.AllocNode);
  if (Path.empty())
    return "<unknown>";
  const StackFrame &Leaf = Path.back();
  return MR.qualifiedName(Leaf.Method) + ":" +
         std::to_string(MR.lineForBci(Leaf.Method, Leaf.Bci));
}

/// Runs a case-study baseline under the profiler and returns its merged
/// profile plus the VM's method registry snapshot via a callback.
MergedProfile profileBaseline(const CaseStudy &C, const DjxPerfConfig &Cfg,
                              std::string *TopName = nullptr) {
  JavaVm Vm(C.Config);
  DjxPerf Prof(Vm, Cfg);
  Prof.start();
  C.Baseline(Vm);
  Prof.stop();
  MergedProfile M = Prof.analyze();
  if (TopName) {
    auto Sorted = M.groupsByMetric(PerfEventKind::L1Miss);
    *TopName = Sorted.empty() ? "<none>"
                              : allocLeafName(M, *Sorted[0], Vm.methods());
  }
  return M;
}

DjxPerfConfig defaultAgent() {
  DjxPerfConfig Cfg;
  Cfg.Events = {PerfEventAttr{PerfEventKind::L1Miss, 64, 64}};
  return Cfg;
}

/// Native cycles + DRAM traffic of one run.
struct RunsCycles {
  uint64_t Cycles = 0;
  uint64_t DramAccesses = 0;
  uint64_t RemoteDramAccesses = 0;
};

RunsCycles runCycles(const VmConfig &Config,
                     const std::function<void(JavaVm &)> &Fn) {
  JavaVm Vm(Config);
  Fn(Vm);
  RunsCycles R;
  R.Cycles = Vm.totalCycles();
  R.DramAccesses = Vm.machine().stats().L3Misses;
  R.RemoteDramAccesses = Vm.machine().stats().RemoteAccesses;
  return R;
}

// --- §6 accuracy: DJXPerf rediscovers the known locality bugs ----------------

class AccuracyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AccuracyTest, KnownBugRanksFirst) {
  CaseStudy C = section6AccuracyCases()[GetParam()];
  std::string Top;
  MergedProfile M = profileBaseline(C, defaultAgent(), &Top);
  std::string Expect =
      C.ExpectClass + "." + C.ExpectMethod + ":" +
      std::to_string(C.ExpectLine);
  EXPECT_EQ(Top, Expect) << "profile must rank the known bug first for "
                         << C.Application;
  // And it must matter: a majority share of L1 misses.
  auto Sorted = M.groupsByMetric(PerfEventKind::L1Miss);
  ASSERT_FALSE(Sorted.empty());
  EXPECT_GT(M.shareOf(*Sorted[0], PerfEventKind::L1Miss), 0.3);
}

INSTANTIATE_TEST_SUITE_P(AllFive, AccuracyTest,
                         ::testing::Range<size_t>(0, 5));

// --- Figure 1: object-centric vs code-centric ---------------------------------

TEST(Figure1, ObjectCentricFlipsTheDiagnosis) {
  VmConfig Cfg;
  Cfg.HeapBytes = 8 << 20;
  JavaVm Vm(Cfg);
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, 16, 64}};
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  runFigure1Workload(Vm);
  Prof.stop();
  MergedProfile M = Prof.analyze();

  // Code-centric: Ic is the single hottest instruction (~24%).
  std::vector<std::pair<std::string, uint64_t>> Code;
  for (const auto &[Node, Counts] : M.CodeCentric) {
    auto Path = M.Tree.path(Node);
    ASSERT_FALSE(Path.empty());
    Code.emplace_back(Vm.methods().qualifiedName(Path.back().Method),
                      Counts.get(PerfEventKind::L1Miss));
  }
  std::sort(Code.begin(), Code.end(),
            [](const auto &A, const auto &B) { return A.second > B.second; });
  ASSERT_FALSE(Code.empty());
  EXPECT_EQ(Code[0].first, "Demo.Ic");

  // Object-centric: O1 aggregates ~50% and outranks O3 (Ic's target).
  auto Sorted = M.groupsByMetric(PerfEventKind::L1Miss);
  ASSERT_GE(Sorted.size(), 3u);
  std::string TopAlloc = allocLeafName(M, *Sorted[0], Vm.methods());
  EXPECT_NE(TopAlloc.find("allocO1"), std::string::npos)
      << "object-centric view must surface O1, not O3";
  double O1Share = M.shareOf(*Sorted[0], PerfEventKind::L1Miss);
  EXPECT_NEAR(O1Share, 0.50, 0.08);
  double O2Share = M.shareOf(*Sorted[1], PerfEventKind::L1Miss);
  double O3Share = M.shareOf(*Sorted[2], PerfEventKind::L1Miss);
  EXPECT_NEAR(O2Share + O3Share, 0.50, 0.08);
  // O1's accesses are scattered over six sites, each individually smaller
  // than Ic.
  EXPECT_GE(Sorted[0]->AccessBreakdown.size(), 6u);
}

// --- §4.5 GC interference ------------------------------------------------------

/// A workload whose survivor is heavily sampled after a compacting GC has
/// moved it. With GC handling ON the samples attribute to the survivor's
/// real context; OFF they are lost or misattributed.
void gcInterferenceWorkload(JavaVm &Vm) {
  JavaThread &T = Vm.startThread("main", 0);
  MethodRegistry &MR = Vm.methods();
  MethodId MAlloc = MR.getOrRegister("App", "allocSurvivor", {{0, 11}});
  MethodId MJunk = MR.getOrRegister("App", "allocJunk", {{0, 22}});
  MethodId MUse = MR.getOrRegister("App", "useSurvivor", {{0, 33}});
  TypeId LongArr = Vm.types().longArray();
  RootScope Roots(Vm);
  // Junk first so compaction has something to slide over.
  ObjectRef &Survivor = Roots.add();
  {
    FrameScope F(T, MJunk, 0);
    Vm.allocateArray(T, LongArr, 1024);
  }
  {
    FrameScope F(T, MAlloc, 0);
    Survivor = Vm.allocateArray(T, LongArr, 512);
  }
  Vm.requestGc(); // Junk dies; survivor slides left.
  {
    FrameScope F(T, MUse, 0);
    for (int I = 0; I < 4000; ++I)
      Vm.readWord(T, Survivor, (static_cast<uint64_t>(I) % 512) * 8);
  }
  Vm.endThread(T);
}

TEST(GcInterference, HandlingOnAttributesCorrectly) {
  VmConfig Cfg;
  Cfg.HeapBytes = 1 << 20;
  JavaVm Vm(Cfg);
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::MemAccess, 8, 64}};
  Agent.MinObjectSize = 1024;
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  gcInterferenceWorkload(Vm);
  Prof.stop();
  MergedProfile M = Prof.analyze();
  auto Sorted = M.groupsByMetric(PerfEventKind::MemAccess);
  ASSERT_FALSE(Sorted.empty());
  EXPECT_NE(allocLeafName(M, *Sorted[0], Vm.methods())
                .find("allocSurvivor"),
            std::string::npos);
  // Nearly everything attributes.
  EXPECT_LT(static_cast<double>(M.UnattributedSamples) /
                static_cast<double>(M.Totals.get(PerfEventKind::MemAccess)),
            0.2);
}

TEST(GcInterference, IgnoringGcLosesAttribution) {
  VmConfig Cfg;
  Cfg.HeapBytes = 1 << 20;
  JavaVm Vm(Cfg);
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::MemAccess, 8, 64}};
  Agent.MinObjectSize = 1024;
  Agent.HandleGcMoves = false; // The ablation.
  Agent.HandleGcFrees = false;
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  gcInterferenceWorkload(Vm);
  Prof.stop();
  MergedProfile M = Prof.analyze();
  // The survivor moved; its samples now either miss the (stale) tree or
  // hit the junk object's stale interval — a misattribution either way.
  uint64_t Correct = 0;
  for (const auto &[Node, G] : M.Groups) {
    (void)Node;
    if (allocLeafName(M, G, Vm.methods()).find("allocSurvivor") !=
        std::string::npos)
      Correct = G.Metrics.get(PerfEventKind::MemAccess);
  }
  uint64_t Total = M.Totals.get(PerfEventKind::MemAccess);
  EXPECT_LT(static_cast<double>(Correct) / static_cast<double>(Total), 0.2)
      << "without GC handling most samples must misattribute";
}

TEST(GcInterference, FreedObjectsLeaveTheIndex) {
  VmConfig Cfg;
  Cfg.HeapBytes = 1 << 20;
  JavaVm Vm(Cfg);
  DjxPerfConfig Agent;
  Agent.MinObjectSize = 64;
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  JavaThread &T = Vm.startThread("main", 0);
  for (int I = 0; I < 10; ++I)
    Vm.allocateArray(T, Vm.types().longArray(), 64);
  EXPECT_EQ(Prof.index().liveCount(), 10u);
  Vm.requestGc();
  EXPECT_EQ(Prof.index().liveCount(), 0u);
  Prof.stop();
}

// --- §4.3 NUMA diagnosis ----------------------------------------------------------

TEST(Numa, RemoteAccessRateDropsWithDomainReplication) {
  auto Cases = table1CaseStudies();
  const CaseStudy &C = findCaseStudy(Cases, "Eclipse Collections");
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, 64, 64}};
  Agent.MinObjectSize = 1024;

  auto RemoteRate = [&](const std::function<void(JavaVm &)> &Fn) {
    JavaVm Vm(C.Config);
    DjxPerf Prof(Vm, Agent);
    Prof.start();
    Fn(Vm);
    Prof.stop();
    MergedProfile M = Prof.analyze();
    auto Sorted = M.groupsByMetric(PerfEventKind::L1Miss);
    if (Sorted.empty() || Sorted[0]->AddressSamples == 0)
      return 0.0;
    return static_cast<double>(Sorted[0]->RemoteSamples) /
           static_cast<double>(Sorted[0]->AddressSamples);
  };
  double Baseline = RemoteRate(C.Baseline);
  double Optimized = RemoteRate(C.Optimized);
  EXPECT_GT(Baseline, 0.3) << "master-placed array is mostly remote";
  EXPECT_LT(Optimized, Baseline * 0.5)
      << "per-domain replication must cut remote accesses";
}

TEST(Numa, InterleavingBalancesPlacementAndSpeedsUp) {
  // NPB SP's fix: numa_alloc_interleaved does not reduce the *rate* of
  // remote accesses (every worker sees ~50%), but it spreads the DRAM
  // traffic over both memory controllers and relieves contention.
  auto Cases = table1CaseStudies();
  const CaseStudy &C = findCaseStudy(Cases, "NPB SP");
  RunsCycles Base = runCycles(C.Config, C.Baseline);
  RunsCycles Opt = runCycles(C.Config, C.Optimized);
  EXPECT_LT(Opt.Cycles, Base.Cycles) << "interleaving must speed SP up";
  // Placement balance: with interleaving both nodes serve DRAM traffic.
  EXPECT_GT(Opt.RemoteDramAccesses, 0u);
  EXPECT_LT(Opt.RemoteDramAccesses, Opt.DramAccesses)
      << "but not everything is remote";
}

TEST(Numa, PartitionedPlacementEliminatesRemote) {
  auto Cases = table1CaseStudies();
  const CaseStudy &C = findCaseStudy(Cases, "Apache Druid");
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, 64, 64}};
  JavaVm Vm(C.Config);
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  C.Optimized(Vm); // Worker partitions: every access local.
  Prof.stop();
  MergedProfile M = Prof.analyze();
  auto Sorted = M.groupsByMetric(PerfEventKind::L1Miss);
  ASSERT_FALSE(Sorted.empty());
  EXPECT_LT(static_cast<double>(Sorted[0]->RemoteSamples + 1) /
                static_cast<double>(Sorted[0]->AddressSamples + 1),
            0.05);
}

// --- §5.1 attach mode -----------------------------------------------------------

TEST(AttachMode, LateStartMissesOldAllocationsButCatchesNew) {
  JavaVm Vm;
  DjxPerfConfig Agent;
  Agent.MinObjectSize = 64;
  Agent.Events = {PerfEventAttr{PerfEventKind::MemAccess, 8, 64}};
  DjxPerf Prof(Vm, Agent);
  JavaThread &T = Vm.startThread("service", 0); // Before attach.
  RootScope Roots(Vm);
  ObjectRef &Old = Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 64));
  EXPECT_EQ(Prof.allocationsTracked(), 0u);

  Prof.start(); // Attach to the running "service".
  ObjectRef &New = Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 64));
  EXPECT_EQ(Prof.allocationsTracked(), 1u);
  for (int I = 0; I < 200; ++I) {
    Vm.readWord(T, Old, 0);
    Vm.readWord(T, New, 0);
  }
  Prof.stop();
  MergedProfile M = Prof.analyze();
  // Old-object samples are unattributed; new-object samples attribute.
  EXPECT_GT(M.UnattributedSamples, 0u);
  EXPECT_FALSE(M.Groups.empty());
}

TEST(AttachMode, MovedUnknownObjectsGetFreshIntervals) {
  VmConfig Cfg;
  Cfg.HeapBytes = 64 * 1024;
  JavaVm Vm(Cfg);
  DjxPerfConfig Agent;
  Agent.MinObjectSize = 64;
  Agent.Events = {PerfEventAttr{PerfEventKind::MemAccess, 4, 64}};
  DjxPerf Prof(Vm, Agent);
  JavaThread &T = Vm.startThread("service", 0);
  RootScope Roots(Vm);
  ObjectRef &Junk = Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 512));
  ObjectRef &Unknown =
      Roots.add(Vm.allocateArray(T, Vm.types().longArray(), 128));
  Prof.start(); // Attach after both allocations.
  Junk = kNullRef;
  Vm.requestGc(); // Unknown object slides; agent saw only the move.
  for (int I = 0; I < 200; ++I)
    Vm.readWord(T, Unknown, (static_cast<uint64_t>(I) % 128) * 8);
  Prof.stop();
  MergedProfile M = Prof.analyze();
  // Samples attribute to the "<unknown>" group inserted from the move.
  bool FoundUnknown = false;
  for (const auto &[Node, G] : M.Groups)
    if (Node == kCctRoot && G.Metrics.get(PerfEventKind::MemAccess) > 0)
      FoundUnknown = true;
  EXPECT_TRUE(FoundUnknown);
}

// --- Size filter S (§5.1 / §6) -----------------------------------------------------

TEST(SizeFilter, SZeroTracksEverythingAndCostsMore) {
  auto RunWith = [](uint64_t S, uint64_t &Tracked) {
    JavaVm Vm;
    DjxPerfConfig Agent;
    Agent.MinObjectSize = S;
    DjxPerf Prof(Vm, Agent);
    Prof.start();
    JavaThread &T = Vm.startThread("main", 0);
    RootScope Roots(Vm);
    for (int I = 0; I < 50; ++I) {
      Vm.allocateArray(T, Vm.types().longArray(), 8);    // 64 B.
      Vm.allocateArray(T, Vm.types().longArray(), 256);  // 2 KiB.
    }
    Tracked = Prof.allocationsTracked();
    Prof.stop();
    return Vm.totalCycles();
  };
  uint64_t TrackedAll = 0, TrackedFiltered = 0;
  uint64_t CyclesAll = RunWith(0, TrackedAll);
  uint64_t CyclesFiltered = RunWith(1024, TrackedFiltered);
  EXPECT_EQ(TrackedAll, 100u);
  EXPECT_EQ(TrackedFiltered, 50u);
  EXPECT_GT(CyclesAll, CyclesFiltered) << "S=0 must cost more";
}

// --- Bytecode instrumentation pathway (§4.1) ---------------------------------------

TEST(BytecodeAgent, InstrumentedProgramProfilesLikeApiWorkload) {
  VmConfig Cfg;
  Cfg.HeapBytes = 4 << 20;
  JavaVm Vm(Cfg);
  BytecodeProgram P = buildBatikProgram(Vm.types());
  P.load(Vm);
  DjxPerfConfig Agent;
  Agent.MinObjectSize = 1024;
  Agent.Events = {PerfEventAttr{PerfEventKind::MemAccess, 16, 64}};
  DjxPerf Prof(Vm, Agent);
  JavaThread &T = Vm.startThread("main", 0);
  Interpreter I(Vm, P, T);
  unsigned Sites = Prof.instrument(P, I);
  EXPECT_EQ(Sites, 1u);
  Prof.start();
  I.run("Main.run", {Value::fromInt(40), Value::fromInt(512)});
  Prof.stop();

  // 40 makeRoom calls, each allocating a 2 KiB float[512].
  EXPECT_EQ(Prof.allocationsTracked(), 40u);
  MergedProfile M = Prof.analyze();
  auto Sorted = M.groupsByMetric(PerfEventKind::MemAccess);
  ASSERT_FALSE(Sorted.empty());
  EXPECT_EQ(Sorted[0]->TypeName, "float[]");
  EXPECT_EQ(Sorted[0]->AllocCount, 40u);
  auto Path = M.Tree.path(Sorted[0]->AllocNode);
  ASSERT_FALSE(Path.empty());
  EXPECT_EQ(Vm.methods().qualifiedName(Path.back().Method),
            "ExtendedGeneralPath.makeRoom");
  // The allocation BCI resolves to the paper's line 743.
  EXPECT_EQ(Vm.methods().lineForBci(Path.back().Method, Path.back().Bci),
            743u);
}

TEST(BytecodeAgent, NoVmDoubleCounting) {
  VmConfig Cfg;
  Cfg.HeapBytes = 4 << 20;
  JavaVm Vm(Cfg);
  BytecodeProgram P = buildBatikProgram(Vm.types());
  P.load(Vm);
  DjxPerfConfig Agent;
  Agent.MinObjectSize = 64;
  DjxPerf Prof(Vm, Agent);
  JavaThread &T = Vm.startThread("main", 0);
  Interpreter I(Vm, P, T);
  Prof.instrument(P, I);
  Prof.start();
  I.run("Main.run", {Value::fromInt(10), Value::fromInt(64)});
  Prof.stop();
  EXPECT_EQ(Prof.allocationCallbacks(), 10u)
      << "one callback per allocation, not two";
}

// --- Table 2 sanity: insignificant objects have tiny miss shares --------------------

TEST(Insignificant, TrackedButColdObjectsHaveSmallShare) {
  auto Cases = table2InsignificantCases();
  const CaseStudy &C = Cases[4].Study; // lusearch.
  DjxPerfConfig Agent;
  Agent.Events = {PerfEventAttr{PerfEventKind::L1Miss, 32, 64}};
  Agent.MinObjectSize = 128; // Track the small collectors too.
  JavaVm Vm(C.Config);
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  C.Baseline(Vm);
  Prof.stop();
  MergedProfile M = Prof.analyze();
  double Share = 0.0;
  for (const auto &[Node, G] : M.Groups) {
    (void)Node;
    if (allocLeafName(M, G, Vm.methods()).find(C.ExpectMethod) !=
        std::string::npos)
      Share = M.shareOf(G, PerfEventKind::L1Miss);
  }
  EXPECT_LT(Share, 0.05) << "the bloat site must be insignificant";
}

// --- Suite entries smoke ----------------------------------------------------------

TEST(Suites, AllFiftyEntriesRunNatively) {
  auto Entries = figure4Suites();
  ASSERT_EQ(Entries.size(), 50u);
  // Spot-run a few entries end-to-end (full sweep lives in the bench).
  for (size_t I : {0UL, 11UL, 24UL, 35UL, 49UL}) {
    JavaVm Vm(Entries[I].Config);
    runSuiteEntry(Vm, Entries[I]);
    EXPECT_GT(Vm.totalCycles(), 0u) << Entries[I].Name;
  }
}

// --- Multi-threaded profile merge ---------------------------------------------------

TEST(MultiThread, PerThreadProfilesMergeAcrossThreads) {
  JavaVm Vm;
  DjxPerfConfig Agent;
  Agent.MinObjectSize = 64;
  Agent.Events = {PerfEventAttr{PerfEventKind::MemAccess, 8, 64}};
  DjxPerf Prof(Vm, Agent);
  Prof.start();
  MethodId MA = Vm.methods().registerMethod("Shared", "alloc", {{0, 1}});
  MethodId MU = Vm.methods().registerMethod("Shared", "use", {{0, 2}});
  RootScope Roots(Vm);
  JavaThread &T1 = Vm.startThread("producer", 0);
  ObjectRef &Buf = Roots.add();
  {
    FrameScope F(T1, MA, 0);
    Buf = Vm.allocateArray(T1, Vm.types().longArray(), 512);
  }
  Vm.endThread(T1);
  JavaThread &T2 = Vm.startThread("consumer", 13); // Other node.
  {
    FrameScope F(T2, MU, 0);
    for (int I = 0; I < 1000; ++I)
      Vm.readWord(T2, Buf, (static_cast<uint64_t>(I) % 512) * 8);
  }
  Vm.endThread(T2);
  Prof.stop();

  EXPECT_EQ(Prof.profiles().size(), 2u);
  MergedProfile M = Prof.analyze();
  ASSERT_FALSE(M.Groups.empty());
  auto Sorted = M.groupsByMetric(PerfEventKind::MemAccess);
  const MergedGroup &G = *Sorted[0];
  // Allocated by producer, sampled by consumer, merged into one group
  // under the producer's allocation path.
  EXPECT_EQ(G.AllocCount, 1u);
  EXPECT_GT(G.Metrics.get(PerfEventKind::MemAccess), 0u);
  auto Path = M.Tree.path(G.AllocNode);
  ASSERT_FALSE(Path.empty());
  EXPECT_EQ(Vm.methods().qualifiedName(Path.back().Method), "Shared.alloc");
  // Cross-node consumption shows up as remote accesses.
  EXPECT_GT(G.RemoteSamples, 0u);
}

} // namespace
