//===- interp_test.cpp - Unit tests for src/interp ---------------------------===//
//
// Part of the DJXPerf reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "bytecode/MethodBuilder.h"
#include "interp/Interpreter.h"
#include "support/VmError.h"

#include <gtest/gtest.h>

#include "harness/TestModule.h"

using namespace djx;

namespace {

DJX_TEST_MODULE(interp_test, 76.0, 45.0,
    "src/interp/Interpreter.cpp",
    "src/interp/Interpreter.h");

/// Builds, loads and runs a single 0-arg method, returning its result.
std::optional<Value> runSingle(JavaVm &Vm,
                               std::function<void(MethodBuilder &)> Body,
                               uint32_t NumLocals = 4) {
  BytecodeProgram P;
  MethodBuilder B("T", "main", 0, NumLocals);
  Body(B);
  ClassFile C;
  C.Name = "T";
  C.Methods.push_back(B.build());
  P.addClass(std::move(C));
  P.load(Vm);
  JavaThread &T = Vm.startThread("interp", 0);
  Interpreter I(Vm, P, T);
  return I.run("T.main");
}

TEST(Interpreter, ArithmeticChain) {
  JavaVm Vm;
  auto R = runSingle(Vm, [](MethodBuilder &B) {
    // ((10 - 3) * 4 + 2) / 3 % 4 = 30/3 % 4 = 10 % 4 = 2.
    B.iconst(10).iconst(3).isub();
    B.iconst(4).imul();
    B.iconst(2).iadd();
    B.iconst(3).idiv();
    B.iconst(4).irem();
    B.iret();
  });
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->asInt(), 2);
}

TEST(Interpreter, BitwiseAndShifts) {
  JavaVm Vm;
  auto R = runSingle(Vm, [](MethodBuilder &B) {
    // ((0xF0 & 0x3C) | 0x01) ^ 0x02 = (0x30|0x01)^0x02 = 0x33.
    B.iconst(0xF0).iconst(0x3C).iand();
    B.iconst(0x01).ior();
    B.iconst(0x02).ixor();
    B.iconst(2).ishl();  // 0x33 << 2 = 0xCC.
    B.iconst(1).ishr();  // 0xCC >> 1 = 0x66.
    B.iret();
  });
  EXPECT_EQ(R->asInt(), 0x66);
}

TEST(Interpreter, NegationAndLocals) {
  JavaVm Vm;
  auto R = runSingle(Vm, [](MethodBuilder &B) {
    B.iconst(42).ineg().istore(0);
    B.iload(0).ineg().iret();
  });
  EXPECT_EQ(R->asInt(), 42);
}

TEST(Interpreter, StackOps) {
  JavaVm Vm;
  auto R = runSingle(Vm, [](MethodBuilder &B) {
    B.iconst(1).iconst(2).swap(); // 2, 1 on stack (1 on top).
    B.isub();                     // 2 - 1 = 1.
    B.dup().iadd();               // 2.
    B.iconst(9).pop();
    B.iret();
  });
  EXPECT_EQ(R->asInt(), 2);
}

TEST(Interpreter, LoopComputesSum) {
  JavaVm Vm;
  auto R = runSingle(Vm, [](MethodBuilder &B) {
    // for (i = 0, s = 0; i < 10; i++) s += i; return s; // 45
    B.iconst(0).istore(0);
    B.iconst(0).istore(1);
    Label Loop = B.newLabel(), End = B.newLabel();
    B.bind(Loop);
    B.iload(0).iconst(10).ifICmp(Opcode::IfICmpGe, End);
    B.iload(1).iload(0).iadd().istore(1);
    B.iload(0).iconst(1).iadd().istore(0);
    B.jmp(Loop);
    B.bind(End);
    B.iload(1).iret();
  });
  EXPECT_EQ(R->asInt(), 45);
}

TEST(Interpreter, ConditionalBranchKinds) {
  JavaVm Vm;
  auto R = runSingle(Vm, [](MethodBuilder &B) {
    Label A = B.newLabel(), B2 = B.newLabel(), Done = B.newLabel();
    B.iconst(0).ifEq(A);
    B.iconst(-1).iret();
    B.bind(A);
    B.iconst(-5).ifLt(B2);
    B.iconst(-2).iret();
    B.bind(B2);
    B.iconst(3).ifGe(Done);
    B.iconst(-3).iret();
    B.bind(Done);
    B.iconst(7).iret();
  });
  EXPECT_EQ(R->asInt(), 7);
}

TEST(Interpreter, PrimArrayRoundTrip) {
  JavaVm Vm;
  TypeId IntArr = Vm.types().intArray();
  auto R = runSingle(Vm, [&](MethodBuilder &B) {
    B.iconst(10).newArray(IntArr).astore(0);
    // a[3] = 77; return a[3] + a.length.
    B.aload(0).iconst(3).iconst(77).paStore();
    B.aload(0).iconst(3).paLoad();
    B.aload(0).arrayLength().iadd();
    B.iret();
  });
  EXPECT_EQ(R->asInt(), 87);
}

TEST(Interpreter, ByteAndLongArrays) {
  JavaVm Vm;
  auto R = runSingle(Vm, [&](MethodBuilder &B) {
    TypeId ByteArr = 0; // byte[] is type 0 in a fresh registry.
    B.iconst(16).newArray(ByteArr).astore(0);
    B.aload(0).iconst(2).iconst(0x1FF).paStore(); // Truncates to 0xFF.
    B.aload(0).iconst(2).paLoad();
    B.iret();
  });
  EXPECT_EQ(R->asInt(), 0xFF);
}

TEST(Interpreter, RefArraysAndNullChecks) {
  JavaVm Vm;
  TypeId Obj = Vm.types().defineClass("Obj", 16);
  TypeId ObjArr = Vm.types().refArrayType("Obj");
  auto R = runSingle(Vm, [&](MethodBuilder &B) {
    B.iconst(4).aNewArray(ObjArr).astore(0);
    // arr[1] = new Obj(); return arr[1] != null && arr[0] == null.
    B.aload(0).iconst(1).newObject(Obj).aaStore();
    Label NonNull = B.newLabel(), Fail = B.newLabel();
    B.aload(0).iconst(1).aaLoad().ifNonNull(NonNull);
    B.bind(Fail);
    B.iconst(0).iret();
    B.bind(NonNull);
    Label Null2 = B.newLabel();
    B.aload(0).iconst(0).aaLoad().ifNull(Null2);
    B.jmp(Fail);
    B.bind(Null2);
    B.iconst(1).iret();
  });
  EXPECT_EQ(R->asInt(), 1);
}

TEST(Interpreter, FieldsOnInstances) {
  JavaVm Vm;
  TypeId Pair = Vm.types().defineClass("Pair", 16);
  auto R = runSingle(Vm, [&](MethodBuilder &B) {
    B.newObject(Pair).astore(0);
    B.aload(0).iconst(11).putField(0, 8);
    B.aload(0).iconst(31).putField(8, 4);
    B.aload(0).getField(0, 8);
    B.aload(0).getField(8, 4);
    B.iadd().iret();
  });
  EXPECT_EQ(R->asInt(), 42);
}

TEST(Interpreter, RefFieldsLinkObjects) {
  JavaVm Vm;
  TypeId Node = Vm.types().defineClass("Node", 16, {8});
  auto R = runSingle(Vm, [&](MethodBuilder &B) {
    B.newObject(Node).astore(0); // head
    B.newObject(Node).astore(1); // tail
    B.aload(1).iconst(5).putField(0, 8);
    B.aload(0).aload(1).putRefField(8);
    B.aload(0).getRefField(8).getField(0, 8);
    B.iret();
  });
  EXPECT_EQ(R->asInt(), 5);
}

TEST(Interpreter, MultiANewArrayBuildsMatrix) {
  JavaVm Vm;
  TypeId IntArr = Vm.types().intArray();
  auto R = runSingle(Vm, [&](MethodBuilder &B) {
    // int[2][3] m; m[1][2] = 9; return m[1][2] + m.length.
    B.iconst(2).iconst(3).multiANewArray(IntArr, 2).astore(0);
    B.aload(0).iconst(1).aaLoad().astore(1);
    B.aload(1).iconst(2).iconst(9).paStore();
    B.aload(1).iconst(2).paLoad();
    B.aload(0).arrayLength().iadd();
    B.iret();
  });
  EXPECT_EQ(R->asInt(), 11);
}

TEST(Interpreter, MethodCallsWithArguments) {
  JavaVm Vm;
  BytecodeProgram P;
  {
    MethodBuilder B("M", "add3", 3, 3);
    B.iload(0).iload(1).iadd().iload(2).iadd().iret();
    ClassFile C;
    C.Name = "M";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }
  {
    MethodBuilder B("M2", "main", 0, 0);
    B.iconst(1).iconst(2).iconst(3);
    B.invoke("M.add3", 3).iret();
    ClassFile C;
    C.Name = "M2";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
  }
  P.load(Vm);
  JavaThread &T = Vm.startThread("t", 0);
  Interpreter I(Vm, P, T);
  EXPECT_EQ(I.run("M2.main")->asInt(), 6);
}

TEST(Interpreter, RecursionFactorial) {
  JavaVm Vm;
  BytecodeProgram P;
  MethodBuilder B("R", "fact", 1, 1);
  Label Base = B.newLabel();
  B.iload(0).iconst(2).ifICmp(Opcode::IfICmpLt, Base);
  B.iload(0);
  B.iload(0).iconst(1).isub();
  B.invoke("R.fact", 1);
  B.imul().iret();
  B.bind(Base);
  B.iconst(1).iret();
  ClassFile C;
  C.Name = "R";
  C.Methods.push_back(B.build());
  P.addClass(std::move(C));
  P.load(Vm);
  JavaThread &T = Vm.startThread("t", 0);
  Interpreter I(Vm, P, T);
  EXPECT_EQ(I.run("R.fact", {Value::fromInt(10)})->asInt(), 3628800);
}

TEST(Interpreter, VoidMethodsReturnNothing) {
  JavaVm Vm;
  auto R = runSingle(Vm, [](MethodBuilder &B) { B.ret(); });
  EXPECT_FALSE(R.has_value());
}

TEST(Interpreter, ShadowStackTracksBci) {
  JavaVm Vm;
  BytecodeProgram P;
  MethodBuilder B("S", "main", 0, 0);
  B.iconst(1).pop().ret();
  ClassFile C;
  C.Name = "S";
  C.Methods.push_back(B.build());
  P.addClass(std::move(C));
  P.load(Vm);
  JavaThread &T = Vm.startThread("t", 0);
  Interpreter I(Vm, P, T);
  I.run("S.main");
  EXPECT_EQ(T.stackDepth(), 0u) << "frames popped after return";
  EXPECT_GT(I.stepsExecuted(), 0u);
}

TEST(InterpreterDeathTest, StepLimitRaisesVmError) {
  // The step limit must fire in every build mode (it used to live in an
  // assert that NDEBUG compiled out, letting release builds spin
  // forever) — and it raises a typed, salvageable error, not an abort.
  JavaVm Vm;
  BytecodeProgram P;
  MethodBuilder B("R", "spin", 0, 0);
  Label Loop = B.newLabel();
  B.bind(Loop);
  B.jmp(Loop);
  ClassFile C;
  C.Name = "R";
  C.Methods.push_back(B.build());
  P.addClass(std::move(C));
  P.load(Vm);
  JavaThread &T = Vm.startThread("t", 0);
  Interpreter I(Vm, P, T);
  I.setStepLimit(10000);
  try {
    I.run("R.spin");
    FAIL() << "runaway loop must raise VmError";
  } catch (const VmError &E) {
    EXPECT_EQ(E.Kind, VmErrorKind::StepLimit);
    EXPECT_NE(std::string(E.what()).find("step limit"), std::string::npos);
    EXPECT_EQ(E.ThreadId, T.id());
    EXPECT_GT(E.Steps, 10000u);
  }
}

TEST(Interpreter, GcDuringExecutionRelocatesOperands) {
  // Tiny heap: the loop's allocations force collections while references
  // live in interpreter locals; the root provider must keep them valid.
  VmConfig Cfg;
  Cfg.HeapBytes = 8 * 1024;
  JavaVm Vm(Cfg);
  TypeId IntArr = Vm.types().intArray();
  auto R = runSingle(Vm, [&](MethodBuilder &B) {
    // keep = new int[8]; keep[0] = 123;
    B.iconst(8).newArray(IntArr).astore(0);
    B.aload(0).iconst(0).iconst(123).paStore();
    // for (i = 0; i < 200; i++) { garbage = new int[200]; }
    B.iconst(0).istore(1);
    Label Loop = B.newLabel(), End = B.newLabel();
    B.bind(Loop);
    B.iload(1).iconst(200).ifICmp(Opcode::IfICmpGe, End);
    B.iconst(200).newArray(IntArr).astore(2);
    B.iload(1).iconst(1).iadd().istore(1);
    B.jmp(Loop);
    B.bind(End);
    B.aload(0).iconst(0).paLoad().iret();
  });
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->asInt(), 123);
  EXPECT_GT(Vm.gcTotals().Collections, 5u);
}

TEST(Interpreter, AllocationHooksFire) {
  JavaVm Vm;
  BytecodeProgram P;
  MethodBuilder B("H", "main", 0, 1);
  B.iconst(4).newArray(Vm.types().intArray()).astore(0);
  B.ret();
  ClassFile C;
  C.Name = "H";
  C.Methods.push_back(B.build());
  P.addClass(std::move(C));
  P.load(Vm);
  // Manually splice hooks around the allocation (what the instrumenter
  // does automatically).
  BytecodeMethod &M = P.method(0);
  std::vector<Instruction> NewCode;
  for (const Instruction &I : M.Code) {
    if (isAllocation(I.Op)) {
      NewCode.push_back(Instruction{Opcode::AllocHookPre, 7, 0});
      NewCode.push_back(I);
      NewCode.push_back(Instruction{Opcode::AllocHookPost, 7, 0});
    } else {
      NewCode.push_back(I);
    }
  }
  M.Code = std::move(NewCode);

  JavaThread &T = Vm.startThread("t", 0);
  Interpreter I(Vm, P, T);
  std::vector<std::pair<uint64_t, ObjectRef>> Posts;
  int Pres = 0;
  AllocationHooks Hooks;
  Hooks.Pre = [&](uint64_t Site) {
    ++Pres;
    EXPECT_EQ(Site, 7u);
  };
  Hooks.Post = [&](uint64_t Site, ObjectRef Obj) {
    Posts.emplace_back(Site, Obj);
  };
  I.setAllocationHooks(std::move(Hooks));
  I.run("H.main");
  EXPECT_EQ(Pres, 1);
  ASSERT_EQ(Posts.size(), 1u);
  EXPECT_EQ(Posts[0].first, 7u);
  EXPECT_TRUE(Vm.heap().isObjectStart(Posts[0].second));
}

TEST(Interpreter, ExecutionChargesCycles) {
  JavaVm Vm;
  JavaThread *Thread = nullptr;
  {
    BytecodeProgram P;
    MethodBuilder B("C", "main", 0, 1);
    B.iconst(0).istore(0);
    for (int I = 0; I < 10; ++I)
      B.iload(0).iconst(1).iadd().istore(0);
    B.ret();
    ClassFile C;
    C.Name = "C";
    C.Methods.push_back(B.build());
    P.addClass(std::move(C));
    P.load(Vm);
    Thread = &Vm.startThread("t", 0);
    Interpreter I(Vm, P, *Thread);
    I.run("C.main");
  }
  EXPECT_GE(Thread->cycles(), 43u); // At least one cycle per instruction.
}

} // namespace
